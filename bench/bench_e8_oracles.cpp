// E8 — the role of the oracle (ablation).
//
// Foreback et al. proved the FDP unsolvable without an oracle; the paper
// picks SINGLE for its weakness and practical implementability "via
// timeouts". This harness quantifies the design space:
//   SINGLE        — safe and live (the paper's choice).
//   NIDEC         — safe and live but strictly stronger (waits for zero
//                   references, typically slower to fire).
//   quiet:<k>     — the practical timeout heuristic: live, but UNSAFE in
//                   principle; the table reports how often it actually
//                   breaks connectivity at various patience levels.
//   always-true   — no oracle information at all: exits immediately,
//                   demonstrably unsafe (this is the impossibility made
//                   visible).
//   always-false  — never exits: trivially safe, no liveness.
#include "bench_common.hpp"
#include "analysis/experiment.hpp"
#include "analysis/metrics.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 20));
  flags.reject_unknown();

  bench::banner("E8 / oracle ablation",
                "SINGLE is safe+live; weaker information is unsafe, "
                "stronger is slower, none at all loses liveness");

  Table t("E8: oracle comparison (n=24, line topology, 40% leaving)");
  t.set_header({"oracle", "solved", "safety violations", "exits done",
                "steps (solved runs)"});
  for (const char* oracle :
       {"single", "incident:0", "incident:2", "incident:3", "nidec",
        "quiet:4", "quiet:16", "always-true", "always-false"}) {
    std::uint64_t solved = 0, unsafe = 0, exits = 0;
    std::uint64_t expected_exits = 0;
    Stat steps;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      ScenarioConfig cfg;
      cfg.n = 24;
      cfg.topology = "line";  // lines make premature exits bite hardest
      cfg.leave_fraction = 0.4;
      cfg.oracle = oracle;
      cfg.seed = seed * 13;
      Scenario sc = build_departure_scenario(cfg);
      expected_exits += sc.leaving_count;
      RunOptions opt;
      opt.max_steps = 120'000;
      opt.with_monitors = true;
      opt.monitor_stride = 4;
      const RunResult r = run_to_legitimacy(sc, Exclusion::Gone, opt);
      if (r.reached_legitimate) {
        ++solved;
        steps.add(static_cast<double>(r.steps));
      }
      if (!r.safety_ok) ++unsafe;
      exits += sc.world->exits();
    }
    t.add_row({oracle, Table::num(solved) + "/" + Table::num(seeds),
               Table::num(unsafe),
               Table::num(exits) + "/" + Table::num(expected_exits),
               solved ? Table::pm(steps.mean(), steps.sd(), 0) : "-"});
  }
  t.print();

  std::printf(
      "\nReading: always-true exits everything but disconnects stayers\n"
      "(safety violations, unsolved runs); always-false never exits\n"
      "(0 exits). incident:k generalizes SINGLE (= incident:1): k >= 2 is\n"
      "unsafe (the leaver may be the only path between two neighbors),\n"
      "k = 0 is safe but can deadlock pairs of leaving processes — k = 1\n"
      "is the unique safe+live member, which is why the paper chose it.\n"
      "quiet:<k> (the timeout heuristic) carries no guarantee: impatient\n"
      "settings violate safety, patient ones starve because the anchor\n"
      "verification chatter keeps the leaver's channel busy. SINGLE and\n"
      "NIDEC are always clean, with SINGLE firing earlier.\n");

  return 0;
}
