// E8 — the role of the oracle (ablation).
//
// Foreback et al. proved the FDP unsolvable without an oracle; the paper
// picks SINGLE for its weakness and practical implementability "via
// timeouts". This harness quantifies the design space:
//   SINGLE        — safe and live (the paper's choice).
//   NIDEC         — safe and live but strictly stronger (waits for zero
//                   references, typically slower to fire).
//   quiet:<k>     — the practical timeout heuristic: live, but UNSAFE in
//                   principle; the table reports how often it actually
//                   breaks connectivity at various patience levels.
//   always-true   — no oracle information at all: exits immediately,
//                   demonstrably unsafe (this is the impossibility made
//                   visible).
//   always-false  — never exits: trivially safe, no liveness.
#include "bench_common.hpp"
#include "analysis/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 20));
  const ExperimentDriver driver = bench::driver_from_flags(flags);
  flags.reject_unknown();

  bench::banner("E8 / oracle ablation",
                "SINGLE is safe+live; weaker information is unsafe, "
                "stronger is slower, none at all loses liveness");

  Table t("E8: oracle comparison (n=24, line topology, 40% leaving)");
  t.set_header({"oracle", "solved", "safety violations", "exits done",
                "steps (solved runs)"});
  for (const char* oracle :
       {"single", "incident:0", "incident:2", "incident:3", "nidec",
        "quiet:4", "quiet:16", "always-true", "always-false"}) {
    ScenarioSpec sc;
    sc.config.n = 24;
    sc.config.topology = "line";  // lines make premature exits bite hardest
    sc.config.leave_fraction = 0.4;
    sc.config.oracle = oracle;
    ExperimentSpec spec;
    spec.scenario(sc)
        .max_steps(120'000)
        .monitors(true, 4)
        .seeds(1, seeds)
        .seed_mix(13, 0);
    const Aggregate a = driver.run(spec).agg;
    t.add_row({oracle, Table::num(a.solved) + "/" + Table::num(a.trials),
               Table::num(a.safety_violations),
               Table::num(a.total_exits) + "/" + Table::num(a.expected_exits),
               a.solved ? Table::pm(a.steps.mean(), a.steps.sd(), 0) : "-"});
  }
  t.print();

  std::printf(
      "\nReading: always-true exits everything but disconnects stayers\n"
      "(safety violations, unsolved runs); always-false never exits\n"
      "(0 exits). incident:k generalizes SINGLE (= incident:1): k >= 2 is\n"
      "unsafe (the leaver may be the only path between two neighbors),\n"
      "k = 0 is safe but can deadlock pairs of leaving processes — k = 1\n"
      "is the unique safe+live member, which is why the paper chose it.\n"
      "quiet:<k> (the timeout heuristic) carries no guarantee: impatient\n"
      "settings violate safety, patient ones starve because the anchor\n"
      "verification chatter keeps the leaver's channel busy. SINGLE and\n"
      "NIDEC are always clean, with SINGLE firing earlier.\n");

  return 0;
}
