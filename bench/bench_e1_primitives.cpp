// E1 — Lemma 1: the four primitives preserve weak connectivity; the first
// three additionally preserve directed reachability.
//
// Workload: random legal primitive sequences on random weakly connected
// multigraphs. Every op is followed by a connectivity re-check (the table
// reports the violation count, which Lemma 1 predicts to be exactly 0),
// and for the three-primitive subset we verify the initial reachability
// matrix is still dominated at the end of each run. Seeds fan out across
// the driver's worker pool; the violation counts are aggregated in seed
// order and independent of --workers.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "universality/rewriter.hpp"
#include "util/table.hpp"

namespace fdp {
namespace {

struct SeedTally {
  std::uint64_t ops = 0;
  std::uint64_t weak_violations = 0;
  std::uint64_t strong_losses = 0;  // 3-primitive subset runs
};

struct Row {
  std::size_t n = 0;
  std::uint64_t ops = 0;
  std::uint64_t weak_violations = 0;
  std::uint64_t strong_losses = 0;
  double ops_per_sec = 0;
};

RewriteOp random_op(Rng& rng, std::size_t n, bool allow_reversal) {
  const NodeId u = static_cast<NodeId>(rng.below(n));
  const NodeId v = static_cast<NodeId>(rng.below(n));
  const NodeId w = static_cast<NodeId>(rng.below(n));
  switch (rng.below(allow_reversal ? 5u : 4u)) {
    case 0: return RewriteOp::introduction(u, v, w);
    case 1: return RewriteOp::self_introduction(u, v);
    case 2: return RewriteOp::delegation(u, v, w);
    case 3: return RewriteOp::fusion(u, v);
    default: return RewriteOp::reversal(u, v);
  }
}

SeedTally run_seed(std::size_t n, std::uint64_t target_ops,
                   std::uint64_t seed) {
  SeedTally tally;
  Rng rng(seed * 7919 + n);
  // All four primitives, connectivity verified after every op.
  {
    DiGraph g = gen::random_weakly_connected(n, n, 0.3, rng);
    GraphRewriter rw(std::move(g), /*verify=*/true);
    std::uint64_t guard = 0;
    while (rw.ops_applied() < target_ops && ++guard < 50 * target_ops) {
      (void)rw.apply(random_op(rng, n, /*allow_reversal=*/true));
    }
    tally.ops += rw.ops_applied();
    tally.weak_violations += rw.connectivity_violations();
  }
  // Introduction/Delegation/Fusion only: reachability must be preserved.
  {
    DiGraph g = gen::random_weakly_connected(n, n, 0.3, rng);
    std::vector<std::vector<bool>> reach0;
    for (NodeId u = 0; u < n; ++u) reach0.push_back(reachable_from(g, u));
    GraphRewriter rw(std::move(g));
    std::uint64_t guard = 0;
    while (rw.ops_applied() < target_ops / 2 &&
           ++guard < 50 * target_ops) {
      (void)rw.apply(random_op(rng, n, /*allow_reversal=*/false));
    }
    tally.ops += rw.ops_applied();
    for (NodeId u = 0; u < n; ++u) {
      const auto now = reachable_from(rw.graph(), u);
      for (NodeId v = 0; v < n; ++v)
        if (reach0[u][v] && !now[v]) ++tally.strong_losses;
    }
  }
  return tally;
}

Row run_scale(const ExperimentDriver& driver, std::size_t n,
              std::uint64_t target_ops, std::uint64_t seeds) {
  Row row;
  row.n = n;
  bench::Timer timer;
  const std::vector<SeedTally> tallies =
      driver.map(seeds, [&](std::uint64_t i) {
        return run_seed(n, target_ops, i + 1);
      });
  for (const SeedTally& tally : tallies) {
    row.ops += tally.ops;
    row.weak_violations += tally.weak_violations;
    row.strong_losses += tally.strong_losses;
  }
  row.ops_per_sec = static_cast<double>(row.ops) / timer.seconds();
  return row;
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 5));
  const std::uint64_t ops =
      static_cast<std::uint64_t>(flags.get_int("ops", 2000));
  const ExperimentDriver driver = bench::driver_from_flags(flags);
  flags.reject_unknown();

  bench::banner("E1 / Lemma 1",
                "every primitive application preserves weak connectivity; "
                "Introduction+Delegation+Fusion preserve reachability");

  Table t("E1: primitive safety sweep (expected: all violation columns 0)");
  t.set_header({"n", "applied ops", "weak-conn violations",
                "reachability losses", "ops/sec"});
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    const Row r = run_scale(driver, n, ops, seeds);
    t.add_row({Table::num(static_cast<std::uint64_t>(r.n)),
               Table::num(r.ops), Table::num(r.weak_violations),
               Table::num(r.strong_losses), Table::fixed(r.ops_per_sec, 0)});
  }
  t.print();

  return 0;
}
