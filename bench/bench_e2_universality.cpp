// E2 — Theorem 1: universality of the four primitives, and the proof's
// O(log n) clique-building claim.
//
// Table 1: introduction rounds to the clique vs n, for the worst-case
//          diameter start (line) and random starts — expect ~log2(n).
// Table 2: full random G -> G' transformations — success rate, op counts
//          by phase and primitive (all with per-op connectivity checking).
// Per-seed work fans out across the driver's worker pool.
#include <cmath>

#include "bench_common.hpp"
#include "analysis/metrics.hpp"
#include "graph/generators.hpp"
#include "universality/planner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 10));
  const ExperimentDriver driver = bench::driver_from_flags(flags);
  flags.reject_unknown();

  bench::banner("E2 / Theorem 1",
                "the four primitives transform any weakly connected graph "
                "into any other; clique building needs O(log n) rounds");

  {
    Table t("E2a: introduction rounds to the clique (expect ~ log2 n)");
    t.set_header({"n", "log2(n)", "rounds from line", "rounds from random"});
    for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
      GraphRewriter line_rw(gen::line(n));
      const std::uint64_t line_rounds = clique_rounds(line_rw);
      const std::vector<std::uint64_t> rounds =
          driver.map(seeds, [&](std::uint64_t i) {
            Rng rng(i + 1);
            GraphRewriter rw(
                gen::random_weakly_connected(n, n / 2, 0.3, rng));
            return clique_rounds(rw);
          });
      Stat rnd;
      for (std::uint64_t r : rounds) rnd.add(static_cast<double>(r));
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::fixed(std::log2(static_cast<double>(n)), 1),
                 Table::num(line_rounds), Table::pm(rnd.mean(), rnd.sd(), 1)});
    }
    t.print();
  }

  {
    Table t("E2b: random G -> G' transformations (per-op connectivity check)");
    t.set_header({"n", "runs", "success", "conn violations", "total ops",
                  "intro", "delegate", "fuse", "reverse"});
    for (std::size_t n : {8u, 16u, 32u, 64u}) {
      const std::vector<TransformStats> stats =
          driver.map(seeds, [&](std::uint64_t i) {
            Rng rng((i + 1) * 13 + n);
            const DiGraph start =
                gen::random_weakly_connected(n, n / 2, 0.4, rng);
            const DiGraph target =
                gen::random_weakly_connected(n, n / 2, 0.2, rng);
            return transform_graph(start, target, /*verify=*/true);
          });
      std::uint64_t successes = 0;
      std::uint64_t violations = 0;
      Stat ops;
      PrimitiveCounts counts;
      for (const TransformStats& s : stats) {
        successes += s.success ? 1 : 0;
        violations += s.connectivity_violations;
        ops.add(static_cast<double>(s.total_ops()));
        counts += s.counts;
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(seeds),
                 Table::num(successes),
                 Table::num(violations),
                 Table::pm(ops.mean(), ops.sd(), 0),
                 Table::num(counts.introductions),
                 Table::num(counts.delegations),
                 Table::num(counts.fusions),
                 Table::num(counts.reversals)});
    }
    t.print();
  }

  return 0;
}
