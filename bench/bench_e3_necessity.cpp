// E3 — Theorem 2: each primitive is necessary for universality.
//
// Exhaustive reachability over small multigraph state spaces: for every
// subset of primitives with one removed, the table shows the size of the
// reachable state space and whether the proof's witness target is still
// reachable (expected: NO for each dropped primitive, YES with all four).
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "universality/reachability.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace fdp {
namespace {

struct Witness {
  const char* dropped;
  unsigned mask;
  std::size_t n;
  DiGraph start;
  DiGraph target;
  const char* description;
};

std::vector<Witness> witnesses() {
  std::vector<Witness> out;

  // Reversal: the paper's own example — {(u,v)} to {(v,u)}.
  {
    DiGraph start(2), target(2);
    start.add_edge(0, 1);
    target.add_edge(1, 0);
    out.push_back({"reversal",
                   kAllowIntroduction | kAllowDelegation | kAllowFusion, 2,
                   start, target, "{(u,v)} -> {(v,u)}"});
  }
  // Introduction: any target with more edges.
  {
    DiGraph start(2), target(2);
    start.add_edge(0, 1);
    target.add_edge(0, 1);
    target.add_edge(1, 0);
    out.push_back({"introduction",
                   kAllowDelegation | kAllowFusion | kAllowReversal, 2,
                   start, target, "grow |E| from 1 to 2"});
  }
  // Fusion: any target with fewer edges.
  out.push_back({"fusion",
                 kAllowIntroduction | kAllowDelegation | kAllowReversal, 3,
                 gen::clique(3), gen::line(3), "shrink K3 to a path"});
  // Delegation: make two adjacent processes non-adjacent.
  {
    DiGraph target(3);
    target.add_edge(0, 2);
    target.add_edge(2, 0);
    target.add_edge(2, 1);
    target.add_edge(1, 2);
    out.push_back({"delegation",
                   kAllowIntroduction | kAllowFusion | kAllowReversal, 3,
                   gen::clique(3), target, "disconnect the pair {0,1}"});
  }
  return out;
}

}  // namespace
}  // namespace fdp

namespace fdp {
namespace {

struct WitnessRow {
  bool reachable_without = false;
  bool reachable_all = false;
  std::uint64_t states_without = 0;
  std::uint64_t states_all = 0;
};

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint32_t cap =
      static_cast<std::uint32_t>(flags.get_int("cap", 2));
  const ExperimentDriver driver = bench::driver_from_flags(flags);
  flags.reject_unknown();

  bench::banner("E3 / Theorem 2",
                "dropping any one primitive makes specific weakly connected "
                "targets unreachable; all four together reach them");

  Table t("E3: necessity witnesses (exhaustive BFS, multiplicity cap)");
  t.set_header({"dropped primitive", "witness", "reachable w/o it",
                "reachable with all 4", "states w/o", "states all-4"});
  const std::vector<Witness> ws = witnesses();
  const std::vector<WitnessRow> rows =
      driver.map(ws.size(), [&](std::uint64_t i) {
        const Witness& w = ws[i];
        const ReachabilityExplorer ex(w.n, cap);
        const auto without = ex.explore(w.start, w.mask);
        const auto with_all = ex.explore(w.start, kAllowAll);
        WitnessRow row;
        row.reachable_without = without.count(ex.encode(w.target)) > 0;
        row.reachable_all = with_all.count(ex.encode(w.target)) > 0;
        row.states_without = without.size();
        row.states_all = with_all.size();
        return row;
      });
  for (std::size_t i = 0; i < ws.size(); ++i) {
    const Witness& w = ws[i];
    const WitnessRow& row = rows[i];
    t.add_row({w.dropped, w.description,
               row.reachable_without ? "YES (!)" : "no",
               row.reachable_all ? "yes" : "NO (!)",
               Table::num(row.states_without),
               Table::num(row.states_all)});
  }
  t.print();

  // State-space size context: how much of the capped universe each
  // primitive subset can explore from a line start.
  Table t2("E3b: reachable-state counts from a 3-node line, by subset");
  t2.set_header({"subset", "reachable states"});
  struct Sub {
    const char* name;
    unsigned mask;
  };
  const std::vector<Sub> subs = {
      {"all four", kAllowAll},
      {"-introduction", kAllowAll & ~kAllowIntroduction},
      {"-delegation", kAllowAll & ~kAllowDelegation},
      {"-fusion", kAllowAll & ~kAllowFusion},
      {"-reversal", kAllowAll & ~kAllowReversal},
      {"intro+deleg+fusion (weakly universal)",
       kAllowIntroduction | kAllowDelegation | kAllowFusion},
  };
  const std::vector<std::uint64_t> sizes =
      driver.map(subs.size(), [&](std::uint64_t i) {
        const ReachabilityExplorer ex(3, cap);
        return static_cast<std::uint64_t>(
            ex.explore(gen::line(3), subs[i].mask).size());
      });
  for (std::size_t i = 0; i < subs.size(); ++i) {
    t2.add_row({subs[i].name, Table::num(sizes[i])});
  }
  t2.print();

  return 0;
}
