// Pump-throughput microbench for the live runtime's batched hot path.
//
// A fleet of minimal ping actors (one inline-reference message to the
// next peer round-robin per timeout — no protocol-layer allocation, no
// departures) drives the runtime flat out, and the bench reports what the
// transport accounting says about the loop:
//
//   frames/sec          medium-accepted frames per wall-clock second
//   syscalls/frame      (send_calls + recv_calls) / frames_sent — the
//                       number sendmmsg/recvmmsg batching drives below 1
//   allocs (steady)     operator new calls inside the measured window
//                       (the alloc hook is linked into this binary; the
//                       warmed-up pump must not allocate at all)
//
// Three configurations: the deterministic in-memory medium (the upper
// bound — no syscalls at all), loopback UDP with mmsg batching, and
// loopback UDP restricted to the portable per-frame path. The CI gate
// (scripts/check_net_throughput.py) requires batched UDP to beat
// unbatched by 2x on frames/sec at n=256.
//
// --json writes the records for the gate script / BENCH_net.json.
#include "bench_common.hpp"
#include "net/runtime.hpp"
#include "sim/context.hpp"
#include "util/alloc_stats.hpp"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace fdp {
namespace {

using net::MemTransport;
using net::NetConfig;
using net::NetRuntime;
using net::Transport;
using net::TransportStats;
using net::UdpTransport;

/// Minimal alloc-free traffic generator (the twin of the one in
/// tests/test_net_batching.cpp, plus burst knobs): each timeout sends
/// `fanout` pings spread over a window of `width` peers, then slides the
/// window. The shape matters: protocol actions fan several frames to a
/// handful of neighbors at once (a departing node hands its whole
/// neighborhood to its successor, a lookup hops along the same route),
/// and both sendmmsg batches and same-destination coalescing only exist
/// when an action enqueues more than one frame before the flush. A
/// fanout of 1 degenerates every batch to a single one-frame datagram.
class PingProcess final : public Process {
 public:
  PingProcess(Ref self, Mode mode, std::uint64_t key)
      : Process(self, mode, key) {}
  void set_peers(std::vector<Ref> peers, std::size_t fanout,
                 std::size_t width) {
    peers_ = std::move(peers);
    fanout_ = fanout;
    width_ = width < 1 ? 1 : width;
  }
  void on_timeout(Context& ctx) override {
    if (peers_.empty()) return;
    const std::size_t width = width_ < peers_.size() ? width_ : peers_.size();
    const std::size_t base = next_;
    for (std::size_t k = 0; k < fanout_; ++k) {
      const Ref to = peers_[(base + k % width) % peers_.size()];
      ctx.send(to, Message{Verb::User, 0, 0, {self_info()}});
    }
    next_ = base + width;
  }
  void on_message(Context&, const Message&) override {}
  void collect_refs(std::vector<RefInfo>& out) const override {
    for (const Ref r : peers_)
      out.push_back(RefInfo{r, ModeInfo::Unknown, 0});
  }
  [[nodiscard]] const char* protocol_name() const override { return "ping"; }

 private:
  std::vector<Ref> peers_;
  std::size_t fanout_ = 1;
  std::size_t width_ = 1;
  std::size_t next_ = 0;
};

struct Record {
  std::string transport;
  bool batching = false;
  std::size_t n = 0;
  std::size_t fanout = 0;
  std::size_t pumps = 0;
  double wall_s = 0.0;
  TransportStats stats;  ///< transport-level: one "frame" = one datagram
  std::uint64_t frames = 0;  ///< application frames delivered end-to-end
  std::uint64_t steady_allocs = 0;
  bool alloc_hooked = false;

  [[nodiscard]] double frames_per_sec() const {
    return wall_s > 0 ? static_cast<double>(frames) / wall_s : 0;
  }
  [[nodiscard]] double syscalls_per_frame() const {
    return frames > 0
               ? static_cast<double>(stats.send_calls + stats.recv_calls) /
                     static_cast<double>(frames)
               : 0;
  }
  [[nodiscard]] double frames_per_datagram() const {
    return stats.frames_sent > 0 ? static_cast<double>(frames) /
                                       static_cast<double>(stats.frames_sent)
                                 : 0;
  }
};

std::unique_ptr<Transport> make_transport(const std::string& kind) {
  if (kind == "mem") return std::make_unique<MemTransport>();
  if (kind == "udp-nobatch")
    return std::make_unique<UdpTransport>(/*batching=*/false);
  return std::make_unique<UdpTransport>();
}

Record run_config(const std::string& kind, std::size_t n, std::size_t fanout,
                  std::size_t width, std::size_t warmup, std::size_t pumps) {
  NetConfig rcfg;
  rcfg.seed = 42;
  // "udp-nobatch" is the pre-optimization baseline end to end: per-frame
  // sendto/recv at the transport AND one frame per datagram at the flush.
  rcfg.coalesce_frames = kind != "udp-nobatch";
  auto transport = make_transport(kind);
  Transport* tp = transport.get();
  auto rt = std::make_unique<NetRuntime>(std::move(transport), rcfg);
  for (ProcessId id = 0; id < n; ++id)
    (void)rt->spawn<PingProcess>(Mode::Staying, id + 1);
  for (ProcessId id = 0; id < n; ++id) {
    std::vector<Ref> peers;
    peers.reserve(n - 1);
    for (ProcessId p = 0; p < n; ++p)
      if (p != id) peers.push_back(Ref::make(p));
    rt->process_as<PingProcess>(id).set_peers(std::move(peers), fanout, width);
  }
  rt->start();

  for (std::size_t i = 0; i < warmup; ++i) rt->pump(0);

  Record rec;
  rec.transport = kind;
  rec.n = n;
  rec.fanout = fanout;
  rec.pumps = pumps;
  rec.alloc_hooked = alloc_stats::hooked();
  if (const auto* udp = dynamic_cast<const UdpTransport*>(tp))
    rec.batching = udp->batching();

  const TransportStats before_stats = tp->stats();
  const alloc_stats::Counters before_allocs = alloc_stats::snapshot();
  const std::uint64_t before_frames = rt->deliveries();
  bench::Timer timer;
  for (std::size_t i = 0; i < pumps; ++i) rt->pump(0);
  rec.wall_s = timer.seconds();
  rec.steady_allocs = alloc_stats::allocs_since(before_allocs);
  rec.frames = rt->deliveries() - before_frames;
  const TransportStats after = tp->stats();
  rec.stats.send_calls = after.send_calls - before_stats.send_calls;
  rec.stats.recv_calls = after.recv_calls - before_stats.recv_calls;
  rec.stats.poll_calls = after.poll_calls - before_stats.poll_calls;
  rec.stats.frames_sent = after.frames_sent - before_stats.frames_sent;
  rec.stats.frames_received =
      after.frames_received - before_stats.frames_received;
  return rec;
}

void print_record(const Record& r) {
  std::printf(
      "%-12s n=%-5zu batching=%-3s  %10.0f frames/s  %5.3f syscalls/frame  "
      "%4.1f frames/datagram  %4llu allocs%s  (%llu frames, %.2fs)\n",
      r.transport.c_str(), r.n, r.batching ? "on" : "off",
      r.frames_per_sec(), r.syscalls_per_frame(), r.frames_per_datagram(),
      static_cast<unsigned long long>(r.steady_allocs),
      r.alloc_hooked ? "" : " (hook absent!)",
      static_cast<unsigned long long>(r.frames), r.wall_s);
  std::fflush(stdout);
}

void write_json(const std::string& path, const std::vector<Record>& recs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_net_throughput: cannot write %s\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"net_throughput\",\n");
  std::fprintf(f, "  \"mmsg_supported\": %s,\n",
               UdpTransport::mmsg_supported() ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(
        f,
        "    {\"transport\": \"%s\", \"batching\": %s, \"n\": %zu, "
        "\"fanout\": %zu, \"pumps\": %zu, \"wall_s\": %.6f, "
        "\"frames\": %llu, \"datagrams_sent\": %llu, "
        "\"datagrams_received\": %llu, \"send_calls\": %llu, "
        "\"recv_calls\": %llu, \"poll_calls\": %llu, "
        "\"frames_per_sec\": %.1f, \"syscalls_per_frame\": %.4f, "
        "\"frames_per_datagram\": %.2f, \"steady_allocs\": %llu, "
        "\"alloc_hooked\": %s}%s\n",
        r.transport.c_str(), r.batching ? "true" : "false", r.n, r.fanout,
        r.pumps, r.wall_s, static_cast<unsigned long long>(r.frames),
        static_cast<unsigned long long>(r.stats.frames_sent),
        static_cast<unsigned long long>(r.stats.frames_received),
        static_cast<unsigned long long>(r.stats.send_calls),
        static_cast<unsigned long long>(r.stats.recv_calls),
        static_cast<unsigned long long>(r.stats.poll_calls),
        r.frames_per_sec(), r.syscalls_per_frame(), r.frames_per_datagram(),
        static_cast<unsigned long long>(r.steady_allocs),
        r.alloc_hooked ? "true" : "false", i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 256));
  const std::size_t fanout =
      static_cast<std::size_t>(flags.get_int("fanout", 16));
  const std::size_t width =
      static_cast<std::size_t>(flags.get_int("width", 4));
  const std::size_t pumps =
      static_cast<std::size_t>(flags.get_int("pumps", 3000));
  const std::size_t warmup =
      static_cast<std::size_t>(flags.get_int("warmup", 1000));
  const std::string only = flags.get_string("transport", "all");
  const std::string json_path = flags.get_string("json", "");
  (void)flags.get_int("workers", 0);  // accepted for driver uniformity
  flags.reject_unknown();

  bench::banner("net throughput",
                "syscall batching and frame arenas keep the live pump "
                "allocation-free and drive syscalls/frame below 1");

  std::vector<std::string> kinds;
  if (only == "all")
    kinds = {"mem", "udp", "udp-nobatch"};
  else
    kinds = {only};

  std::vector<Record> recs;
  for (const std::string& kind : kinds) {
    recs.push_back(run_config(kind, n, fanout, width, warmup, pumps));
    print_record(recs.back());
  }
  if (!json_path.empty()) write_json(json_path, recs);
  return 0;
}
