// E9 — kernel micro-benchmarks (google-benchmark): the engineering
// substrate costs that every experiment in this repository pays.
#include <benchmark/benchmark.h>

#include <memory>
#include <utility>

#include "analysis/experiment.hpp"
#include "analysis/monitors.hpp"
#include "analysis/scenario.hpp"
#include "util/alloc_stats.hpp"
#include "core/legitimacy.hpp"
#include "core/oracle.hpp"
#include "core/potential.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/process_graph.hpp"
#include "sim/context.hpp"
#include "universality/rewriter.hpp"

namespace fdp {
namespace {

// The quiescent bulk of a large overlay: present and awake, but currently
// taking no protocol actions beyond consuming its kernel timeouts.
class IdleProcess final : public Process {
 public:
  IdleProcess(Ref self, Mode mode, std::uint64_t key)
      : Process(self, mode, key) {}
  void on_timeout(Context&) override {}
  void on_message(Context&, const Message&) override {}
  void collect_refs(std::vector<RefInfo>&) const override {}
  [[nodiscard]] const char* protocol_name() const override { return "idle"; }
};

// A small active set that keeps reference-carrying messages moving around a
// fixed ring, independent of the world size.
class ChurnProcess final : public Process {
 public:
  ChurnProcess(Ref self, Mode mode, std::uint64_t key)
      : Process(self, mode, key) {}
  void set_next(Ref next) { next_ = next; }
  void on_timeout(Context& ctx) override {
    if (next_.valid()) ctx.send(next_, Message::present(self_info()));
  }
  void on_message(Context&, const Message&) override {}
  void collect_refs(std::vector<RefInfo>& out) const override {
    if (next_.valid()) out.push_back(RefInfo{next_, ModeInfo::Staying, 0});
  }
  [[nodiscard]] const char* protocol_name() const override { return "churn"; }

 private:
  Ref next_;
};

void BM_WorldStep(benchmark::State& state) {
  // Per-step *kernel* cost as a function of world size — the tentpole claim
  // of the index rewrite. The per-step workload is held constant (one
  // scheduler decision plus one bounded action: an idle timeout, or a send
  // or delivery on an 8-process churn ring) while the total world size n
  // grows, so any growth in per-step time is kernel overhead. With the
  // maintained indices the curve must stay flat; the old O(n)-scan kernel
  // grows linearly (scripts/check_kernel_scaling.py gates CI on n=16 vs
  // n=256 vs n=4096). BM_WorldStepDense below measures the complementary
  // shape where every process acts.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kChurners = 8;
  World w(42);
  std::vector<Ref> ring;
  for (std::size_t i = 0; i < kChurners; ++i)
    ring.push_back(w.spawn<ChurnProcess>(Mode::Staying, i));
  for (std::size_t i = 0; i < kChurners; ++i)
    w.process_as<ChurnProcess>(ring[i].id())
        .set_next(ring[(i + 1) % kChurners]);
  for (std::size_t i = kChurners; i < n; ++i)
    w.spawn<IdleProcess>(Mode::Staying, i);
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  for (auto _ : state) {
    w.step(*sched);  // awake processes always exist: never exhausts
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorldStep)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

void BM_WorldStepAllocs(benchmark::State& state) {
  // The zero-allocation steady-state claim, measured: same churn-ring
  // workload as BM_WorldStep, but instead of time it reports heap
  // allocations per step via the counting operator new linked into this
  // binary (src/util/alloc_stats_hook.cpp). After a warm-up that lets
  // every arena, hash table and heap reach its high-water capacity, a
  // step must not allocate at all — scripts/check_kernel_scaling.py gates
  // CI on allocs_per_step == 0 (and on alloc_hook == 1, so a binary
  // missing the hook cannot pass vacuously).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kChurners = 8;
  World w(42);
  std::vector<Ref> ring;
  for (std::size_t i = 0; i < kChurners; ++i)
    ring.push_back(w.spawn<ChurnProcess>(Mode::Staying, i));
  for (std::size_t i = 0; i < kChurners; ++i)
    w.process_as<ChurnProcess>(ring[i].id())
        .set_next(ring[(i + 1) % kChurners]);
  for (std::size_t i = kChurners; i < n; ++i)
    w.spawn<IdleProcess>(Mode::Staying, i);
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  for (std::size_t i = 0; i < 50000; ++i) w.step(*sched);  // warm-up

  const auto before = alloc_stats::snapshot();
  std::uint64_t steps = 0;
  for (auto _ : state) {
    w.step(*sched);
    ++steps;
  }
  const double allocs =
      static_cast<double>(alloc_stats::allocs_since(before));
  state.counters["allocs_per_step"] =
      benchmark::Counter(steps > 0 ? allocs / static_cast<double>(steps)
                                   : 0.0);
  state.counters["alloc_hook"] =
      benchmark::Counter(alloc_stats::hooked() ? 1.0 : 0.0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorldStepAllocs)->Arg(16)->Arg(4096);

void BM_WorldStepDense(benchmark::State& state) {
  // The full departure scenario: every process runs the protocol, so each
  // step touches a different process's state and the resident set grows
  // with n. Per-step time therefore includes the workload's inherent cache
  // footprint on top of the kernel cost isolated by BM_WorldStep — expect a
  // mild upward drift with n from memory effects alone (it was ~500x
  // before the index rewrite, when the kernel itself did O(n + m) scans
  // per step).
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.3;
  cfg.oracle = "single";
  cfg.seed = 42;
  Scenario sc = build_departure_scenario(cfg);
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  for (auto _ : state) {
    if (!sc.world->step(*sched)) {
      state.PauseTiming();
      sc = build_departure_scenario(cfg);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorldStepDense)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

void BM_Snapshot(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.inflight_per_node = 2.0;
  cfg.seed = 7;
  const Scenario sc = build_departure_scenario(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(take_snapshot(*sc.world));
  }
}
// Snapshots stay O(n + m) by design (they copy the state); the contrast
// with BM_WorldStep's flat curve is what justifies keeping phi()
// recomputes off the hot path.
BENCHMARK(BM_Snapshot)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

void BM_SingleOracle(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.seed = 7;
  const Scenario sc = build_departure_scenario(cfg);
  const OracleFn oracle = make_single_oracle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle(*sc.world, 0));
  }
}
BENCHMARK(BM_SingleOracle)->Arg(16)->Arg(64)->Arg(256);

void BM_Potential(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.invalid_mode_prob = 0.5;
  cfg.inflight_per_node = 2.0;
  cfg.seed = 7;
  const Scenario sc = build_departure_scenario(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phi(*sc.world));
  }
}
BENCHMARK(BM_Potential)->Arg(16)->Arg(64)->Arg(256);

void BM_LegitimacyCheck(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.3;
  cfg.seed = 7;
  const Scenario sc = build_departure_scenario(cfg);
  const LegitimacyChecker checker(*sc.world, Exclusion::Gone);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(*sc.world));
  }
}
BENCHMARK(BM_LegitimacyCheck)->Arg(16)->Arg(64)->Arg(256);

void BM_WeakComponents(benchmark::State& state) {
  Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const DiGraph g = gen::gnp_connected(n, 4.0 / static_cast<double>(n), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(weak_components(g));
  }
}
BENCHMARK(BM_WeakComponents)->Arg(64)->Arg(256)->Arg(1024);

void BM_RewriterOp(benchmark::State& state) {
  Rng rng(5);
  const std::size_t n = 64;
  GraphRewriter rw(gen::random_weakly_connected(n, n, 0.3, rng));
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    const NodeId w = static_cast<NodeId>(rng.below(n));
    benchmark::DoNotOptimize(rw.apply(RewriteOp::introduction(u, v, w)));
    benchmark::DoNotOptimize(rw.apply(RewriteOp::delegation(v, w, u)));
    benchmark::DoNotOptimize(rw.apply(RewriteOp::fusion(u, v)));
  }
}
BENCHMARK(BM_RewriterOp);

void BM_OldestLiveMessage(benchmark::State& state) {
  // The fair-receipt query: O(log m) amortized via the lazily-compacted
  // min-seq heap (was a full channel scan). Interleave with steps so the
  // heap keeps taking stale entries.
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.inflight_per_node = 2.0;
  cfg.seed = 11;
  Scenario sc = build_departure_scenario(cfg);
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sc.world->oldest_live_message());
    if (!sc.world->step(*sched)) {
      state.PauseTiming();
      sc = build_departure_scenario(cfg);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_OldestLiveMessage)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ChannelIndexOfSeq(benchmark::State& state) {
  // Seq lookup in one channel: O(1) expected via the seq -> slot hash
  // (was a linear scan of the message vector).
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Channel ch;
  for (std::size_t s = 1; s <= m; ++s) {
    Message msg;
    msg.seq = s;
    ch.push(std::move(msg));
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.index_of_seq(1 + rng.below(m)));
  }
}
BENCHMARK(BM_ChannelIndexOfSeq)->Arg(16)->Arg(256)->Arg(4096);

void BM_MonitoredWorldStep(benchmark::State& state) {
  // Stride-1 Φ monitoring on every step. Incremental maintenance makes
  // this O(refs touched by the action) — compare against BM_WorldStep at
  // the same n to read off the monitoring overhead.
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.oracle = "single";
  cfg.seed = 42;
  auto fresh = [&cfg] {
    Scenario sc = build_departure_scenario(cfg);
    auto mon = std::make_unique<PotentialMonitor>(*sc.world, 1);
    mon->set_crosscheck_every(0);
    sc.world->add_observer(mon.get());
    return std::pair(std::move(sc), std::move(mon));
  };
  auto [sc, mon] = fresh();
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  for (auto _ : state) {
    if (!sc.world->step(*sched)) {
      state.PauseTiming();
      std::tie(sc, mon) = fresh();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MonitoredWorldStep)->Arg(16)->Arg(256)->Arg(4096);

void BM_ScenarioBuild(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "wild";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.inflight_per_node = 1.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(build_departure_scenario(cfg));
  }
}
BENCHMARK(BM_ScenarioBuild)->Arg(64)->Arg(256);

}  // namespace
}  // namespace fdp

BENCHMARK_MAIN();
