// E9 — kernel micro-benchmarks (google-benchmark): the engineering
// substrate costs that every experiment in this repository pays.
#include <benchmark/benchmark.h>

#include "analysis/scenario.hpp"
#include "core/legitimacy.hpp"
#include "core/oracle.hpp"
#include "core/potential.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/process_graph.hpp"
#include "universality/rewriter.hpp"

namespace fdp {
namespace {

void BM_WorldStep(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.3;
  cfg.oracle = "single";
  cfg.seed = 42;
  Scenario sc = build_departure_scenario(cfg);
  RandomScheduler sched;
  for (auto _ : state) {
    if (!sc.world->step(sched)) {
      state.PauseTiming();
      sc = build_departure_scenario(cfg);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorldStep)->Arg(16)->Arg(64)->Arg(256);

void BM_Snapshot(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.inflight_per_node = 2.0;
  cfg.seed = 7;
  const Scenario sc = build_departure_scenario(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(take_snapshot(*sc.world));
  }
}
BENCHMARK(BM_Snapshot)->Arg(16)->Arg(64)->Arg(256);

void BM_SingleOracle(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.seed = 7;
  const Scenario sc = build_departure_scenario(cfg);
  const OracleFn oracle = make_single_oracle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle(*sc.world, 0));
  }
}
BENCHMARK(BM_SingleOracle)->Arg(16)->Arg(64)->Arg(256);

void BM_Potential(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.invalid_mode_prob = 0.5;
  cfg.inflight_per_node = 2.0;
  cfg.seed = 7;
  const Scenario sc = build_departure_scenario(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phi(*sc.world));
  }
}
BENCHMARK(BM_Potential)->Arg(16)->Arg(64)->Arg(256);

void BM_LegitimacyCheck(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.3;
  cfg.seed = 7;
  const Scenario sc = build_departure_scenario(cfg);
  const LegitimacyChecker checker(*sc.world, Exclusion::Gone);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(*sc.world));
  }
}
BENCHMARK(BM_LegitimacyCheck)->Arg(16)->Arg(64)->Arg(256);

void BM_WeakComponents(benchmark::State& state) {
  Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const DiGraph g = gen::gnp_connected(n, 4.0 / static_cast<double>(n), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(weak_components(g));
  }
}
BENCHMARK(BM_WeakComponents)->Arg(64)->Arg(256)->Arg(1024);

void BM_RewriterOp(benchmark::State& state) {
  Rng rng(5);
  const std::size_t n = 64;
  GraphRewriter rw(gen::random_weakly_connected(n, n, 0.3, rng));
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    const NodeId w = static_cast<NodeId>(rng.below(n));
    benchmark::DoNotOptimize(rw.apply(RewriteOp::introduction(u, v, w)));
    benchmark::DoNotOptimize(rw.apply(RewriteOp::delegation(v, w, u)));
    benchmark::DoNotOptimize(rw.apply(RewriteOp::fusion(u, v)));
  }
}
BENCHMARK(BM_RewriterOp);

void BM_ScenarioBuild(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(state.range(0));
  cfg.topology = "wild";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.inflight_per_node = 1.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(build_departure_scenario(cfg));
  }
}
BENCHMARK(BM_ScenarioBuild)->Arg(64)->Arg(256);

}  // namespace
}  // namespace fdp

BENCHMARK_MAIN();
