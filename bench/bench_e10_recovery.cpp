// E10 — runtime fault injection and recovery.
//
// E4 stresses *initial-state* corruption and the chaos runs stress
// *delivery*; this harness perturbs the protocol while it runs (see
// sim/fault.hpp): crash-restarts to arbitrary-but-legal local states,
// neighbor-knowledge scrambling, message duplication bursts and timed
// partition windows, plus an unreliable SINGLE oracle. Claims measured:
//   (a) no fault class that respects the model (references are never
//       destroyed, deliveries only delayed) breaks Lemma 2 safety or
//       registers a protocol Φ increase — the runs re-stabilize;
//   (b) oracle false POSITIVES break the model, and the safety monitors
//       flag every resulting disconnection (no silent failures);
//   (c) every perturbation gets a finite measured steps-to-re-legitimacy
//       (the RecoveryMonitor closes each one).
#include "bench_common.hpp"
#include "analysis/metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace fdp;

ScenarioSpec corrupted_scenario() {
  ScenarioSpec sc;
  sc.config.n = 24;
  sc.config.topology = "wild";
  sc.config.leave_fraction = 0.3;
  sc.config.invalid_mode_prob = 0.3;
  sc.config.random_anchor_prob = 0.2;
  sc.config.inflight_per_node = 1.0;
  return sc;
}

ExperimentSpec fault_sweep(const FaultPlan& plan, std::uint64_t seeds) {
  ExperimentSpec spec;
  spec.scenario(corrupted_scenario())
      .max_steps(600'000)
      .monitors(true, 4)
      .closure_steps(200)
      .faults(plan)
      .seeds(1, seeds)
      .seed_mix(17, 3);
  return spec;
}

std::string relegit(const Aggregate& a) {
  if (a.recovery_steps.count() == 0) return "-";
  return Table::pm(a.recovery_steps.mean(), a.recovery_steps.sd(), 0) +
         " (max " + Table::fixed(a.recovery_steps.percentile(1.0), 0) + ")";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 20));
  const ExperimentDriver driver = bench::driver_from_flags(flags);
  flags.reject_unknown();

  bench::banner("E10 / runtime faults & recovery",
                "model-respecting runtime faults never break safety and "
                "every perturbation has a finite measured recovery; "
                "oracle false positives are flagged 100%");

  // --- (a)+(c): fault classes, one sweep each -------------------------
  struct Row {
    const char* name;
    FaultPlan plan;
  };
  std::vector<Row> rows;
  {
    FaultPlan p;  // repeated single-victim restarts
    p.at(100, FaultKind::CrashRestart)
        .at(400, FaultKind::CrashRestart)
        .at(800, FaultKind::CrashRestart);
    rows.push_back({"crash-restart x3", p});
  }
  {
    FaultPlan p;
    p.at(100, FaultKind::Scramble)
        .at(400, FaultKind::Scramble)
        .at(800, FaultKind::Scramble);
    rows.push_back({"scramble x3", p});
  }
  {
    FaultPlan p;
    p.at(100, FaultKind::DuplicateBurst, 8).at(500, FaultKind::DuplicateBurst, 8);
    rows.push_back({"dup-burst x2 (8 msgs)", p});
  }
  {
    FaultPlan p;
    p.at(100, FaultKind::PartitionStart).at(600, FaultKind::PartitionStart);
    p.partition_window = 96;
    rows.push_back({"partition x2 (96 steps)", p});
  }
  {
    FaultPlan p;
    p.p_crash = 0.003;
    p.p_scramble = 0.003;
    p.p_duplicate = 0.003;
    p.p_partition = 0.001;
    p.stochastic_until = 2'000;
    rows.push_back({"stochastic storm (2k steps)", p});
  }
  {
    rows.push_back({"everything at once", [] {
                      FaultPlan p;
                      p.at(50, FaultKind::CrashRestart)
                          .at(150, FaultKind::Scramble)
                          .at(250, FaultKind::DuplicateBurst, 6)
                          .at(350, FaultKind::PartitionStart);
                      p.p_crash = 0.002;
                      p.p_scramble = 0.002;
                      p.stochastic_until = 1'500;
                      return p;
                    }()});
  }

  Table t1("E10a: fault classes (n=24 wild, 30% leaving, corrupted start)");
  t1.set_header({"fault class", "solved", "safety", "phi", "injected",
                 "unrecovered", "steps to re-legitimacy"});
  bool all_recovered = true;
  for (const Row& row : rows) {
    const Aggregate a = driver.run(fault_sweep(row.plan, seeds)).agg;
    t1.add_row({row.name, Table::num(a.solved) + "/" + Table::num(a.trials),
                Table::num(a.safety_violations), Table::num(a.phi_violations),
                Table::num(a.faults_injected),
                Table::num(a.faults_unrecovered), relegit(a)});
    all_recovered &= a.faults_unrecovered == 0 && a.solved == a.trials &&
                     a.safety_violations == 0 && a.phi_violations == 0;
  }
  t1.print();
  std::printf("verdict: %s\n",
              all_recovered ? "every class survived, every perturbation "
                              "measurably recovered"
                            : "VIOLATIONS ABOVE — investigate");

  // --- (a) continued: lying oracle, safe direction --------------------
  Table t2("E10b: unreliable SINGLE oracle — false negatives (safe lies)");
  t2.set_header(
      {"p_false_neg", "solved", "safety", "steps (solved runs)"});
  for (double p : {0.0, 0.25, 0.5}) {
    ScenarioSpec sc = corrupted_scenario();
    sc.config.oracle_p_false_neg = p;
    ExperimentSpec spec;
    spec.scenario(sc)
        .max_steps(600'000)
        .monitors(true, 4)
        .seeds(1, seeds)
        .seed_mix(17, 3);
    const Aggregate a = driver.run(spec).agg;
    t2.add_row({Table::fixed(p, 2),
                Table::num(a.solved) + "/" + Table::num(a.trials),
                Table::num(a.safety_violations),
                a.solved ? Table::pm(a.steps.mean(), a.steps.sd(), 0) : "-"});
  }
  t2.print();

  // --- (b): lying oracle, unsafe direction ----------------------------
  // A false positive can authorize an exit that disconnects stayers; the
  // point of this table is that NO such disconnection goes unflagged: a
  // trial either converges with safety intact, or the safety monitor
  // raised a violation. "silent" counts trials that failed without a
  // safety flag — it must be 0 for the monitors to be trustworthy.
  Table t3("E10c: oracle false positives on a line (worst case) — detection");
  t3.set_header({"p_false_pos", "solved+safe", "safety flagged", "silent"});
  bool none_silent = true;
  for (double p : {0.2, 0.5, 0.8}) {
    ScenarioSpec sc;
    sc.config.n = 16;
    sc.config.topology = "line";  // leavers are cut vertices
    sc.config.leave_fraction = 0.4;
    sc.config.oracle_p_false_pos = p;
    ExperimentSpec spec;
    spec.scenario(sc)
        .max_steps(200'000)
        .monitors(true, 1)
        .seeds(1, seeds)
        .seed_mix(17, 3);
    const ExperimentResult res = driver.run(spec);
    std::uint64_t clean = 0, flagged = 0, silent = 0;
    for (const TrialResult& tr : res.trials) {
      if (!tr.run.safety_ok) {
        ++flagged;
      } else if (tr.run.reached_legitimate) {
        ++clean;
      } else {
        ++silent;  // failed run the monitors did not explain
      }
    }
    none_silent &= silent == 0;
    t3.add_row({Table::fixed(p, 2), Table::num(clean), Table::num(flagged),
                Table::num(silent)});
  }
  t3.print();
  std::printf("verdict: %s\n\n",
              none_silent ? "0 silent failures — the safety monitor "
                            "explains every non-converged trial"
                          : "SILENT FAILURES — monitor coverage gap");

  std::printf(
      "Reading: crash-restart rebuilds a victim's state arbitrarily (but\n"
      "legally: no reference destroyed), scrambling flips stored mode\n"
      "knowledge, bursts duplicate in-flight messages, partitions delay a\n"
      "random cut for a window. All are within the self-stabilization\n"
      "model, so Lemma 2 holds throughout and Φ re-drains — the recovery\n"
      "column is the measured re-stabilization time. Oracle false\n"
      "negatives only delay exits (safe); false positives leave the model\n"
      "and are caught by the safety monitor on every occurrence.\n");

  return 0;
}
