// E7 — the Finite Sleep Problem: replacing exit with sleep removes the
// oracle entirely.
//
// Table a: FSP convergence (all leaving hibernating) vs n — no oracle
//          consulted, zero exits, safety clean.
// Table b: wake-up behavior — poke every sleeper once after legitimacy;
//          the system must resettle, counting the wakes it costs.
#include "bench_common.hpp"
#include "analysis/experiment.hpp"
#include "analysis/metrics.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 8));
  flags.reject_unknown();

  bench::banner("E7 / FSP",
                "with sleep instead of exit, legitimacy (all leaving "
                "hibernating) is reached with NO oracle");

  {
    Table t("E7a: FSP convergence (gnp, 40% leaving, corrupted, random "
            "scheduler)");
    t.set_header({"n", "solved", "steps", "sleeps", "wakes", "exits"});
    for (std::size_t n : {8u, 16u, 32u, 64u}) {
      std::uint64_t solved = 0;
      Stat steps, sleeps, wakes;
      std::uint64_t exits = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        ScenarioConfig cfg;
        cfg.n = n;
        cfg.topology = "gnp";
        cfg.leave_fraction = 0.4;
        cfg.policy = DeparturePolicy::Sleep;
        cfg.invalid_mode_prob = 0.3;
        cfg.inflight_per_node = 1.0;
        cfg.seed = seed * 17 + n;
        Scenario sc = build_departure_scenario(cfg);
        RunOptions opt;
        opt.max_steps = 3'000'000;
        const RunResult r = run_to_legitimacy(sc, Exclusion::Hibernating, opt);
        if (r.reached_legitimate) {
          ++solved;
          steps.add(static_cast<double>(r.steps));
          sleeps.add(static_cast<double>(r.sleeps));
          wakes.add(static_cast<double>(r.wakes));
        }
        exits += sc.world->exits();
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(solved) + "/" + Table::num(seeds),
                 Table::pm(steps.mean(), steps.sd(), 0),
                 Table::pm(sleeps.mean(), sleeps.sd(), 0),
                 Table::pm(wakes.mean(), wakes.sd(), 0),
                 Table::num(exits)});
    }
    t.print();
  }

  {
    Table t("E7b: resettling after poking every sleeper (n=24)");
    t.set_header({"seed", "resettled", "extra steps", "extra wakes"});
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      ScenarioConfig cfg;
      cfg.n = 24;
      cfg.topology = "gnp";
      cfg.leave_fraction = 0.4;
      cfg.policy = DeparturePolicy::Sleep;
      cfg.seed = seed;
      Scenario sc = build_departure_scenario(cfg);
      RunOptions opt;
      opt.max_steps = 3'000'000;
      const RunResult r = run_to_legitimacy(sc, Exclusion::Hibernating, opt);
      if (!r.reached_legitimate) {
        t.add_row({Table::num(seed), "no (initial run failed)", "-", "-"});
        continue;
      }
      // Poke every sleeping leaver with a reference to some stayer.
      ProcessId stayer = kNoProcess;
      for (ProcessId p = 0; p < sc.world->size(); ++p)
        if (sc.world->mode(p) == Mode::Staying) stayer = p;
      for (ProcessId p = 0; p < sc.world->size(); ++p) {
        if (sc.world->mode(p) == Mode::Leaving &&
            sc.world->life(p) == LifeState::Asleep) {
          sc.world->post(
              sc.refs[p],
              Message::forward(RefInfo{sc.refs[stayer], ModeInfo::Staying,
                                       sc.world->process(stayer).key()}));
        }
      }
      const std::uint64_t steps0 = sc.world->steps();
      const std::uint64_t wakes0 = sc.world->wakes();
      LegitimacyChecker checker(*sc.world, Exclusion::Hibernating);
      RandomScheduler sched;
      bool resettled = false;
      for (int block = 0; block < 2000 && !resettled; ++block) {
        for (int i = 0; i < 200; ++i) (void)sc.world->step(sched);
        resettled = checker.legitimate(*sc.world);
      }
      t.add_row({Table::num(seed), resettled ? "yes" : "NO",
                 Table::num(sc.world->steps() - steps0),
                 Table::num(sc.world->wakes() - wakes0)});
    }
    t.print();
  }

  return 0;
}
