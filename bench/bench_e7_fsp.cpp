// E7 — the Finite Sleep Problem: replacing exit with sleep removes the
// oracle entirely.
//
// Table a: FSP convergence (all leaving hibernating) vs n — no oracle
//          consulted, zero exits, safety clean.
// Table b: wake-up behavior — poke every sleeper once after legitimacy;
//          the system must resettle, counting the wakes it costs.
#include "bench_common.hpp"
#include "analysis/experiment.hpp"
#include "analysis/metrics.hpp"
#include "util/table.hpp"

namespace fdp {
namespace {

ScenarioSpec fsp_scenario(std::size_t n) {
  ScenarioSpec sc;
  sc.config.n = n;
  sc.config.topology = "gnp";
  sc.config.leave_fraction = 0.4;
  sc.config.policy = DeparturePolicy::Sleep;
  return sc;
}

/// Table-b trial: run to FSP legitimacy, poke every sleeper, count the
/// cost of resettling. One self-contained unit of work per seed.
struct ResettleRow {
  bool initial_ok = false;
  bool resettled = false;
  std::uint64_t extra_steps = 0;
  std::uint64_t extra_wakes = 0;
};

ResettleRow resettle_trial(std::uint64_t seed) {
  ScenarioSpec scenario = fsp_scenario(24);
  ExperimentSpec spec;
  spec.scenario(scenario)
      .max_steps(3'000'000)
      .exclusion(Exclusion::Hibernating);
  Scenario sc = scenario.build(seed);
  ResettleRow row;
  const RunResult r = run_to_legitimacy(sc, spec);
  if (!r.reached_legitimate) return row;
  row.initial_ok = true;
  // Poke every sleeping leaver with a reference to some stayer.
  ProcessId stayer = kNoProcess;
  for (ProcessId p = 0; p < sc.world->size(); ++p)
    if (sc.world->mode(p) == Mode::Staying) stayer = p;
  for (ProcessId p = 0; p < sc.world->size(); ++p) {
    if (sc.world->mode(p) == Mode::Leaving &&
        sc.world->life(p) == LifeState::Asleep) {
      sc.world->post(
          sc.refs[p],
          Message::forward(RefInfo{sc.refs[stayer], ModeInfo::Staying,
                                   sc.world->process(stayer).key()}));
    }
  }
  const std::uint64_t steps0 = sc.world->steps();
  const std::uint64_t wakes0 = sc.world->wakes();
  LegitimacyChecker checker(*sc.world, Exclusion::Hibernating);
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  for (int block = 0; block < 2000 && !row.resettled; ++block) {
    for (int i = 0; i < 200; ++i) (void)sc.world->step(*sched);
    row.resettled = checker.legitimate(*sc.world);
  }
  row.extra_steps = sc.world->steps() - steps0;
  row.extra_wakes = sc.world->wakes() - wakes0;
  return row;
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 8));
  const ExperimentDriver driver = bench::driver_from_flags(flags);
  flags.reject_unknown();

  bench::banner("E7 / FSP",
                "with sleep instead of exit, legitimacy (all leaving "
                "hibernating) is reached with NO oracle");

  {
    Table t("E7a: FSP convergence (gnp, 40% leaving, corrupted, random "
            "scheduler)");
    t.set_header({"n", "solved", "steps", "sleeps", "wakes", "exits"});
    for (std::size_t n : {8u, 16u, 32u, 64u}) {
      ScenarioSpec sc = fsp_scenario(n);
      sc.config.invalid_mode_prob = 0.3;
      sc.config.inflight_per_node = 1.0;
      ExperimentSpec spec;
      spec.scenario(sc)
          .max_steps(3'000'000)
          .exclusion(Exclusion::Hibernating)
          .seeds(1, seeds)
          .seed_mix(17, n);
      const Aggregate a = driver.run(spec).agg;
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(a.solved) + "/" + Table::num(a.trials),
                 Table::pm(a.steps.mean(), a.steps.sd(), 0),
                 Table::pm(a.sleeps.mean(), a.sleeps.sd(), 0),
                 Table::pm(a.wakes.mean(), a.wakes.sd(), 0),
                 Table::num(a.total_exits)});
    }
    t.print();
  }

  {
    Table t("E7b: resettling after poking every sleeper (n=24)");
    t.set_header({"seed", "resettled", "extra steps", "extra wakes"});
    const std::vector<ResettleRow> rows =
        driver.map(seeds, [](std::uint64_t i) { return resettle_trial(i + 1); });
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const ResettleRow& row = rows[seed - 1];
      if (!row.initial_ok) {
        t.add_row({Table::num(seed), "no (initial run failed)", "-", "-"});
        continue;
      }
      t.add_row({Table::num(seed), row.resettled ? "yes" : "NO",
                 Table::num(row.extra_steps), Table::num(row.extra_wakes)});
    }
    t.print();
  }

  return 0;
}
