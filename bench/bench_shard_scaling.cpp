// Shard-scaling benchmark: epoch throughput of the sharded kernel
// (sim/sharded_world.hpp) on the E4 churn shape as a function of shard
// count, plus the classic per-action step loop as the baseline.
//
// BM_ShardedChurn/k/n measures actions per second of a k-shard run; the
// sharded contract makes the executed trace identical for every k, so any
// items/sec difference is pure kernel parallelism (scripts/
// check_shard_scaling.py gates the k=8 vs k=1 speedup on multi-core CI
// and records the curve in BENCH_shard.json). BM_ClassicChurn/n is the
// same scenario on World::step — the overhead floor the 1-shard engine is
// gated against.
//
// Invoked as `bench_shard_scaling --campaign [n] [shards]` the binary
// instead runs ONE full churn campaign to termination and prints a
// wall-clock summary — the million-process acceptance run recorded in
// EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "core/potential.hpp"
#include "core/primitives.hpp"
#include "sim/sharded_world.hpp"

namespace fdp {
namespace {

// The E4 departure-under-churn shape: sparse random overlay, 30% leavers,
// corrupted mode knowledge, initial in-flight traffic.
ScenarioConfig churn_config(std::size_t n) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.inflight_per_node = 1.0;
  cfg.oracle = "single";
  cfg.seed = 42;
  return cfg;
}

void BM_ShardedChurn(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const ScenarioConfig cfg = churn_config(n);

  Scenario sc = build_departure_scenario(cfg);
  auto sw = std::make_unique<ShardedWorld>(*sc.world, k, ShardPolicy{},
                                           /*seed=*/0xC0FFEE);
  std::uint64_t actions = 0;
  for (auto _ : state) {
    if (!sw->epoch()) {
      state.PauseTiming();
      actions += sc.world->steps();
      sw.reset();  // join workers before the world goes away
      sc = build_departure_scenario(cfg);
      sw = std::make_unique<ShardedWorld>(*sc.world, k, ShardPolicy{},
                                          /*seed=*/0xC0FFEE);
      state.ResumeTiming();
    }
  }
  actions += sc.world->steps();
  // One iteration is one epoch; items/sec reports executed actions/sec so
  // shard counts are comparable (the trace, hence the action total, is
  // k-invariant).
  state.SetItemsProcessed(static_cast<std::int64_t>(actions));
}
BENCHMARK(BM_ShardedChurn)
    ->Args({1, 4096})
    ->Args({2, 4096})
    ->Args({4, 4096})
    ->Args({8, 4096})
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_ClassicChurn(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ScenarioConfig cfg = churn_config(n);
  Scenario sc = build_departure_scenario(cfg);
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  for (auto _ : state) {
    if (!sc.world->step(*sched)) {
      state.PauseTiming();
      sc = build_departure_scenario(cfg);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassicChurn)->Arg(4096)->UseRealTime();

int run_campaign(std::size_t n, unsigned k) {
  using clock = std::chrono::steady_clock;
  std::printf("building E4 churn scenario: n=%zu ...\n", n);
  const auto t0 = clock::now();
  Scenario sc = build_departure_scenario(churn_config(n));
  World& w = *sc.world;
  const auto t1 = clock::now();
  std::printf("build: %.1fs  leavers=%zu  phi0=%llu\n",
              std::chrono::duration<double>(t1 - t0).count(), sc.leaving_count,
              static_cast<unsigned long long>(phi(w)));

  // The run ends at the FDP objective — every leaver excluded — not at
  // kernel quiescence: staying processes keep exchanging keep-alive
  // traffic indefinitely, so E4 worlds have no terminal configuration.
  ShardedWorld sw(w, k, ShardPolicy{}, /*seed=*/0xC0FFEE);
  std::uint64_t epochs = 0;
  while (w.exits() < sc.leaving_count && sw.epoch()) {
    ++epochs;
    if ((epochs & 15) == 0) {
      std::printf("  epoch %llu: steps=%llu exits=%llu/%zu\n",
                  static_cast<unsigned long long>(epochs),
                  static_cast<unsigned long long>(w.steps()),
                  static_cast<unsigned long long>(w.exits()),
                  sc.leaving_count);
      std::fflush(stdout);
    }
  }
  sw.finalize();
  const auto t2 = clock::now();
  const double secs = std::chrono::duration<double>(t2 - t1).count();
  const bool done = all_leaving_gone(w);
  std::printf(
      "campaign: shards=%u epochs=%llu steps=%llu sends=%llu exits=%llu/%zu "
      "phi=%llu %s in %.1fs (%.2fM actions/s)\n",
      k, static_cast<unsigned long long>(sw.epochs()),
      static_cast<unsigned long long>(w.steps()),
      static_cast<unsigned long long>(w.sends()),
      static_cast<unsigned long long>(w.exits()), sc.leaving_count,
      static_cast<unsigned long long>(phi(w)),
      done ? "CONVERGED" : "NOT-CONVERGED", secs,
      static_cast<double>(w.steps()) / secs / 1e6);
  return done ? 0 : 1;
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--campaign") == 0) {
      const std::size_t n =
          i + 1 < argc ? std::strtoull(argv[i + 1], nullptr, 10) : 1'000'000;
      const unsigned k = i + 2 < argc
                             ? static_cast<unsigned>(std::atoi(argv[i + 2]))
                             : 8;
      return fdp::run_campaign(n, k);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
