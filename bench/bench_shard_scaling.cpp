// Shard-scaling benchmark: epoch throughput of the sharded kernel
// (sim/sharded_world.hpp) on the E4 churn shape as a function of shard
// count, plus the classic per-action step loop as the baseline.
//
// BM_ShardedChurn/k/n measures actions per second of a k-shard run; the
// sharded contract makes the executed trace identical for every k, so any
// items/sec difference is pure kernel parallelism (scripts/
// check_shard_scaling.py gates the k=8 vs k=1 speedup on multi-core CI
// and records the curve in BENCH_shard.json). BM_ClassicChurn/n is the
// same scenario on World::step — the overhead floor the 1-shard engine is
// gated against.
//
// Invoked as `bench_shard_scaling --campaign [n] [shards]` the binary
// instead runs ONE full churn campaign to termination and prints a
// wall-clock summary — the million-process acceptance run recorded in
// EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "core/potential.hpp"
#include "core/primitives.hpp"
#include "sim/sharded_world.hpp"
#include "util/alloc_stats.hpp"

namespace fdp {
namespace {

// The E4 departure-under-churn shape: sparse random overlay, 30% leavers,
// corrupted mode knowledge, initial in-flight traffic.
ScenarioConfig churn_config(std::size_t n) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.inflight_per_node = 1.0;
  cfg.oracle = "single";
  cfg.seed = 42;
  return cfg;
}

void BM_ShardedChurn(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const ScenarioConfig cfg = churn_config(n);

  Scenario sc = build_departure_scenario(cfg);
  auto sw = std::make_unique<ShardedWorld>(*sc.world, k, ShardPolicy{},
                                           /*seed=*/0xC0FFEE);
  std::uint64_t actions = 0;
  for (auto _ : state) {
    if (!sw->epoch()) {
      state.PauseTiming();
      actions += sc.world->steps();
      sw.reset();  // join workers before the world goes away
      sc = build_departure_scenario(cfg);
      sw = std::make_unique<ShardedWorld>(*sc.world, k, ShardPolicy{},
                                          /*seed=*/0xC0FFEE);
      state.ResumeTiming();
    }
  }
  actions += sc.world->steps();
  // One iteration is one epoch; items/sec reports executed actions/sec so
  // shard counts are comparable (the trace, hence the action total, is
  // k-invariant).
  state.SetItemsProcessed(static_cast<std::int64_t>(actions));
}
BENCHMARK(BM_ShardedChurn)
    ->Args({1, 4096})
    ->Args({2, 4096})
    ->Args({4, 4096})
    ->Args({8, 4096})
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_ClassicChurn(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ScenarioConfig cfg = churn_config(n);
  Scenario sc = build_departure_scenario(cfg);
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  for (auto _ : state) {
    if (!sc.world->step(*sched)) {
      state.PauseTiming();
      sc = build_departure_scenario(cfg);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassicChurn)->Arg(4096)->UseRealTime();

void print_footprint(const char* when, const World& w, std::size_t n) {
  const alloc_stats::ByteBuckets cap = w.footprint(/*capacity=*/true);
  const alloc_stats::ByteBuckets live = w.footprint(/*capacity=*/false);
  const double mb = 1.0 / (1024.0 * 1024.0);
  std::printf(
      "mem[%s]: procs=%.1fMB chans=%.1fMB idx=%.1fMB scratch=%.1fMB "
      "total=%.1fMB (%.1f B/proc alloc, %.1f B/proc live)  rss=%.1fMB\n",
      when, static_cast<double>(cap.processes) * mb,
      static_cast<double>(cap.channels_messages) * mb,
      static_cast<double>(cap.indices) * mb,
      static_cast<double>(cap.scratch) * mb,
      static_cast<double>(cap.total()) * mb,
      static_cast<double>(cap.total()) / static_cast<double>(n),
      static_cast<double>(live.total()) / static_cast<double>(n),
      static_cast<double>(alloc_stats::rss_now_kb()) / 1024.0);
  std::printf(
      "mem[%s live]: procs=%.1fMB chans=%.1fMB idx=%.1fMB scratch=%.1fMB\n",
      when, static_cast<double>(live.processes) * mb,
      static_cast<double>(live.channels_messages) * mb,
      static_cast<double>(live.indices) * mb,
      static_cast<double>(live.scratch) * mb);
}

int run_campaign(std::size_t n, unsigned k) {
  using clock = std::chrono::steady_clock;
  std::printf("building E4 churn scenario: n=%zu ...\n", n);
  const auto t0 = clock::now();
  Scenario sc = build_departure_scenario(churn_config(n));
  World& w = *sc.world;
  const auto t1 = clock::now();
  const double build_secs = std::chrono::duration<double>(t1 - t0).count();
  const std::uint64_t build_rss_kb = alloc_stats::rss_peak_kb();
  std::printf("build: %.1fs  leavers=%zu  phi0=%llu\n", build_secs,
              sc.leaving_count, static_cast<unsigned long long>(phi(w)));
  print_footprint("after build", w, n);

  // The run ends at the FDP objective — every leaver excluded — not at
  // kernel quiescence: staying processes keep exchanging keep-alive
  // traffic indefinitely, so E4 worlds have no terminal configuration.
  ShardedWorld sw(w, k, ShardPolicy{}, /*seed=*/0xC0FFEE);
  std::uint64_t epochs = 0;
  // Steady-state allocation probe: record cumulative (allocs, steps) at
  // every epoch boundary and evaluate allocs/action over the FINAL quarter
  // of the run, where capacities have reached their high-water mark (the
  // run length is unknown up front, so the window is picked afterwards).
  // Meaningful only when the alloc hook TU is linked and k == 1 (the
  // counters are thread-local; worker-thread traffic is invisible unless
  // the shard work runs inline on this thread). Reserved up front so the
  // probe's own bookkeeping never allocates inside the measured region.
  struct EpochMark {
    std::uint64_t allocs;
    std::uint64_t steps;
  };
  std::vector<EpochMark> marks;
  marks.reserve(65536);
  marks.push_back({alloc_stats::snapshot().allocs, w.steps()});
  while (w.exits() < sc.leaving_count && sw.epoch()) {
    ++epochs;
    if (marks.size() < marks.capacity())
      marks.push_back({alloc_stats::snapshot().allocs, w.steps()});
    if ((epochs & 15) == 0) {
      std::printf("  epoch %llu: steps=%llu exits=%llu/%zu\n",
                  static_cast<unsigned long long>(epochs),
                  static_cast<unsigned long long>(w.steps()),
                  static_cast<unsigned long long>(w.exits()),
                  sc.leaving_count);
      std::fflush(stdout);
    }
  }
  double steady_allocs_per_action = -1.0;
  if (marks.size() >= 2) {
    const EpochMark& from = marks[marks.size() - 1 - (marks.size() - 1) / 4];
    const EpochMark& to = marks.back();
    if (to.steps > from.steps)
      steady_allocs_per_action =
          static_cast<double>(to.allocs - from.allocs) /
          static_cast<double>(to.steps - from.steps);
  }
  sw.finalize();
  const auto t2 = clock::now();
  const double secs = std::chrono::duration<double>(t2 - t1).count();
  const bool done = all_leaving_gone(w);
  const alloc_stats::ByteBuckets cap = w.footprint(/*capacity=*/true);
  const alloc_stats::ByteBuckets live = w.footprint(/*capacity=*/false);
  std::printf(
      "campaign: shards=%u epochs=%llu steps=%llu sends=%llu exits=%llu/%zu "
      "phi=%llu %s in %.1fs (%.2fM actions/s)\n",
      k, static_cast<unsigned long long>(sw.epochs()),
      static_cast<unsigned long long>(w.steps()),
      static_cast<unsigned long long>(w.sends()),
      static_cast<unsigned long long>(w.exits()), sc.leaving_count,
      static_cast<unsigned long long>(phi(w)),
      done ? "CONVERGED" : "NOT-CONVERGED", secs,
      static_cast<double>(w.steps()) / secs / 1e6);
  print_footprint("at end", w, n);
  if (alloc_stats::hooked()) {
    std::printf(
        "steady-state allocs/action: %.4f (final quarter of %llu epochs)\n",
        steady_allocs_per_action, static_cast<unsigned long long>(epochs));
  }
  // Machine-readable summary consumed by scripts/check_mem_footprint.py;
  // one line, stable key order.
  std::printf(
      "MEMJSON {\"schema\": \"fdp-mem-bench/1\", \"n\": %zu, \"shards\": %u, "
      "\"build_seconds\": %.2f, \"campaign_seconds\": %.2f, \"epochs\": %llu, "
      "\"steps\": %llu, \"actions_per_sec\": %.0f, \"converged\": %s, "
      "\"bytes_per_process\": %.1f, \"live_bytes_per_process\": %.1f, "
      "\"world_bytes\": {\"processes\": %llu, \"channels_messages\": %llu, "
      "\"indices\": %llu, \"scratch\": %llu}, \"build_rss_kb\": %llu, "
      "\"peak_rss_kb\": %llu, \"steady_allocs_per_action\": %.4f, "
      "\"alloc_hook\": %s}\n",
      n, k, build_secs, secs, static_cast<unsigned long long>(sw.epochs()),
      static_cast<unsigned long long>(w.steps()),
      static_cast<double>(w.steps()) / secs, done ? "true" : "false",
      static_cast<double>(cap.total()) / static_cast<double>(n),
      static_cast<double>(live.total()) / static_cast<double>(n),
      static_cast<unsigned long long>(cap.processes),
      static_cast<unsigned long long>(cap.channels_messages),
      static_cast<unsigned long long>(cap.indices),
      static_cast<unsigned long long>(cap.scratch),
      static_cast<unsigned long long>(build_rss_kb),
      static_cast<unsigned long long>(alloc_stats::rss_peak_kb()),
      steady_allocs_per_action, alloc_stats::hooked() ? "true" : "false");
  return done ? 0 : 1;
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--campaign") == 0) {
      const std::size_t n =
          i + 1 < argc ? std::strtoull(argv[i + 1], nullptr, 10) : 1'000'000;
      const unsigned k = i + 2 < argc
                             ? static_cast<unsigned>(std::atoi(argv[i + 2]))
                             : 8;
      return fdp::run_campaign(n, k);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
