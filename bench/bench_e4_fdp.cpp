// E4 — Theorem 3 / Lemmas 2-3: the departure protocol is a self-
// stabilizing FDP solution.
//
// Table a: convergence cost vs n (steps, asynchronous rounds, messages),
//          with safety/Φ/audit verdict columns (expected all clean).
// Table b: convergence vs leave fraction.
// Table c: convergence vs corruption level (self-stabilization cost).
// Table d: scheduler family comparison.
//
// All sweeps run on the parallel ExperimentDriver; aggregate tables are
// byte-identical for any --workers value. --csv <path> dumps the raw
// per-trial rows of the scaling sweep for offline plotting.
#include "bench_common.hpp"
#include "analysis/metrics.hpp"
#include "util/table.hpp"

namespace fdp {
namespace {

ScenarioSpec corrupted_gnp(std::size_t n) {
  ScenarioSpec sc;
  sc.config.n = n;
  sc.config.topology = "gnp";
  sc.config.leave_fraction = 0.3;
  sc.config.invalid_mode_prob = 0.3;
  sc.config.random_anchor_prob = 0.3;
  sc.config.inflight_per_node = 1.0;
  return sc;
}

ExperimentSpec sweep_spec(ScenarioSpec scenario, SchedulerKind sched,
                          std::uint64_t seeds, bool monitors) {
  const std::uint64_t salt = scenario.config.n;
  ExperimentSpec spec;
  spec.scenario(std::move(scenario))
      .scheduler(SchedulerSpec::of(sched))
      .max_steps(3'000'000)
      .seeds(1, seeds)
      .seed_mix(977, salt);
  if (monitors) spec.monitors(true, 4);
  return spec;
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 10));
  const std::string csv_path = flags.get_string("csv", "");
  const ExperimentDriver driver = bench::driver_from_flags(flags);
  flags.reject_unknown();

  bench::banner("E4 / Theorem 3",
                "self-stabilizing FDP: from corrupted states all leaving "
                "processes exit; connectivity never breaks; Phi never grows");

  {
    Table t("E4a: scaling with n (gnp topology, 30% leaving, corrupted, "
            "round scheduler)");
    t.set_header({"n", "rounds", "steps", "steps p50/p95", "messages",
                  "phi drained", "verdict"});
    for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
      const ExperimentSpec spec =
          sweep_spec(corrupted_gnp(n), SchedulerKind::Rounds, seeds, n <= 32);
      const ExperimentResult res = driver.run(spec);
      const Aggregate& a = res.agg;
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::pm(a.rounds.mean(), a.rounds.sd(), 1),
                 Table::pm(a.steps.mean(), a.steps.sd(), 0),
                 Table::quantiles(a.steps.median(), a.steps.percentile(0.95)),
                 Table::pm(a.sends.mean(), a.sends.sd(), 0),
                 Table::pm(a.phi_drain.mean(), a.phi_drain.sd(), 0),
                 a.verdict()});
      if (!csv_path.empty() && n == 32) {
        const std::string err = write_trials_csv(csv_path, spec, res.trials);
        if (!err.empty()) std::fprintf(stderr, "E4a csv: %s\n", err.c_str());
      }
    }
    t.print();
  }

  {
    Table t("E4b: leave fraction sweep (n=32, gnp, corrupted)");
    t.set_header({"leaving %", "rounds", "messages", "verdict"});
    for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      ScenarioSpec sc = corrupted_gnp(32);
      sc.config.leave_fraction = frac;
      sc.config.random_anchor_prob = 0.0;
      const Aggregate a =
          driver.run(sweep_spec(sc, SchedulerKind::Rounds, seeds, false)).agg;
      t.add_row({Table::num(static_cast<std::int64_t>(frac * 100)),
                 Table::pm(a.rounds.mean(), a.rounds.sd(), 1),
                 Table::pm(a.sends.mean(), a.sends.sd(), 0), a.verdict()});
    }
    t.print();
  }

  {
    Table t("E4c: corruption sweep (n=32, wild, 30% leaving)");
    t.set_header({"corruption", "phi_0 proxy", "rounds", "verdict"});
    for (double c : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      ScenarioSpec sc;
      sc.config.n = 32;
      sc.config.topology = "wild";
      sc.config.leave_fraction = 0.3;
      sc.config.invalid_mode_prob = c;
      sc.config.random_anchor_prob = c;
      sc.config.inflight_per_node = 2 * c;
      // Measure initial phi on one representative scenario.
      const std::uint64_t phi0 = phi(*sc.build(1).world);
      const Aggregate a =
          driver.run(sweep_spec(sc, SchedulerKind::Rounds, seeds, false)).agg;
      t.add_row({Table::fixed(c, 2), Table::num(phi0),
                 Table::pm(a.rounds.mean(), a.rounds.sd(), 1), a.verdict()});
    }
    t.print();
  }

  {
    Table t("E4d: scheduler families (n=32, gnp, 30% leaving, corrupted)");
    t.set_header({"scheduler", "steps", "messages", "verdict"});
    for (SchedulerKind k :
         {SchedulerKind::Random, SchedulerKind::RoundRobin,
          SchedulerKind::Rounds, SchedulerKind::Adversarial}) {
      ScenarioSpec sc = corrupted_gnp(32);
      sc.config.random_anchor_prob = 0.0;
      const Aggregate a = driver.run(sweep_spec(sc, k, seeds, false)).agg;
      t.add_row({to_string(k), Table::pm(a.steps.mean(), a.steps.sd(), 0),
                 Table::pm(a.sends.mean(), a.sends.sd(), 0), a.verdict()});
    }
    t.print();
  }

  return 0;
}
