// E4 — Theorem 3 / Lemmas 2-3: the departure protocol is a self-
// stabilizing FDP solution.
//
// Table a: convergence cost vs n (steps, asynchronous rounds, messages),
//          with safety/Φ/audit verdict columns (expected all clean).
// Table b: convergence vs leave fraction.
// Table c: convergence vs corruption level (self-stabilization cost).
// Table d: scheduler family comparison.
#include "bench_common.hpp"
#include "analysis/experiment.hpp"
#include "analysis/metrics.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace fdp {
namespace {

struct Agg {
  Stat steps, rounds, sends;
  std::uint64_t runs = 0, ok = 0, safety_bad = 0, phi_bad = 0, audit_bad = 0;
};

Agg sweep(ScenarioConfig base, SchedulerKind sched, std::uint64_t seeds,
          bool monitors) {
  Agg a;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    base.seed = seed * 977 + base.n;
    Scenario sc = build_departure_scenario(base);
    RunOptions opt;
    opt.max_steps = 3'000'000;
    opt.scheduler = sched;
    opt.with_monitors = monitors;
    opt.monitor_stride = 4;
    const RunResult r = run_to_legitimacy(sc, Exclusion::Gone, opt);
    ++a.runs;
    if (r.reached_legitimate) ++a.ok;
    if (!r.safety_ok) ++a.safety_bad;
    if (!r.phi_monotone) ++a.phi_bad;
    if (!r.audit_ok) ++a.audit_bad;
    a.steps.add(static_cast<double>(r.steps));
    a.rounds.add(static_cast<double>(r.rounds));
    a.sends.add(static_cast<double>(r.sends));
  }
  return a;
}

std::string verdict(const Agg& a) {
  if (a.ok == a.runs && !a.safety_bad && !a.phi_bad && !a.audit_bad)
    return "clean";
  return "ok=" + std::to_string(a.ok) + "/" + std::to_string(a.runs) +
         " safety!=" + std::to_string(a.safety_bad) +
         " phi!=" + std::to_string(a.phi_bad) +
         " audit!=" + std::to_string(a.audit_bad);
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 10));
  flags.reject_unknown();

  bench::banner("E4 / Theorem 3",
                "self-stabilizing FDP: from corrupted states all leaving "
                "processes exit; connectivity never breaks; Phi never grows");

  {
    Table t("E4a: scaling with n (gnp topology, 30% leaving, corrupted, "
            "round scheduler)");
    t.set_header({"n", "rounds", "steps", "messages", "verdict"});
    for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
      ScenarioConfig cfg;
      cfg.n = n;
      cfg.topology = "gnp";
      cfg.leave_fraction = 0.3;
      cfg.invalid_mode_prob = 0.3;
      cfg.random_anchor_prob = 0.3;
      cfg.inflight_per_node = 1.0;
      const Agg a = sweep(cfg, SchedulerKind::Rounds, seeds, n <= 32);
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::pm(a.rounds.mean(), a.rounds.sd(), 1),
                 Table::pm(a.steps.mean(), a.steps.sd(), 0),
                 Table::pm(a.sends.mean(), a.sends.sd(), 0), verdict(a)});
    }
    t.print();
  }

  {
    Table t("E4b: leave fraction sweep (n=32, gnp, corrupted)");
    t.set_header({"leaving %", "rounds", "messages", "verdict"});
    for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      ScenarioConfig cfg;
      cfg.n = 32;
      cfg.topology = "gnp";
      cfg.leave_fraction = frac;
      cfg.invalid_mode_prob = 0.3;
      cfg.inflight_per_node = 1.0;
      const Agg a = sweep(cfg, SchedulerKind::Rounds, seeds, false);
      t.add_row({Table::num(static_cast<std::int64_t>(frac * 100)),
                 Table::pm(a.rounds.mean(), a.rounds.sd(), 1),
                 Table::pm(a.sends.mean(), a.sends.sd(), 0), verdict(a)});
    }
    t.print();
  }

  {
    Table t("E4c: corruption sweep (n=32, wild, 30% leaving)");
    t.set_header({"corruption", "phi_0 proxy", "rounds", "verdict"});
    for (double c : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      ScenarioConfig cfg;
      cfg.n = 32;
      cfg.topology = "wild";
      cfg.leave_fraction = 0.3;
      cfg.invalid_mode_prob = c;
      cfg.random_anchor_prob = c;
      cfg.inflight_per_node = 2 * c;
      // Measure initial phi on one representative scenario.
      cfg.seed = 1;
      const std::uint64_t phi0 = phi(*build_departure_scenario(cfg).world);
      const Agg a = sweep(cfg, SchedulerKind::Rounds, seeds, false);
      t.add_row({Table::fixed(c, 2), Table::num(phi0),
                 Table::pm(a.rounds.mean(), a.rounds.sd(), 1), verdict(a)});
    }
    t.print();
  }

  {
    Table t("E4d: scheduler families (n=32, gnp, 30% leaving, corrupted)");
    t.set_header({"scheduler", "steps", "messages", "verdict"});
    for (SchedulerKind k :
         {SchedulerKind::Random, SchedulerKind::RoundRobin,
          SchedulerKind::Rounds, SchedulerKind::Adversarial}) {
      ScenarioConfig cfg;
      cfg.n = 32;
      cfg.topology = "gnp";
      cfg.leave_fraction = 0.3;
      cfg.invalid_mode_prob = 0.3;
      cfg.inflight_per_node = 1.0;
      const Agg a = sweep(cfg, k, seeds, false);
      t.add_row({to_string(k), Table::pm(a.steps.mean(), a.steps.sd(), 0),
                 Table::pm(a.sends.mean(), a.sends.sd(), 0), verdict(a)});
    }
    t.print();
  }

  return 0;
}
