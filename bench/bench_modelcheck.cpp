// E11 — exhaustive bounded verification of the departure protocol.
//
// For every small configuration below, the model checker explores ALL
// interleavings (up to the in-flight bound) and reports the full state
// space together with the three machine-checked theorem obligations:
// safety violations (Lemma 2), Φ increases (Lemma 3) and stuck states
// (bounded liveness / Theorem 3). Expected: all three columns zero.
#include "bench_common.hpp"
#include "analysis/modelcheck.hpp"
#include "core/departure_process.hpp"
#include "core/oracle.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace fdp {
namespace {

struct Config {
  const char* name;
  std::vector<Mode> modes;
  // from, to, lie
  std::vector<std::tuple<ProcessId, ProcessId, bool>> edges;
  DeparturePolicy policy = DeparturePolicy::ExitWithOracle;
  Exclusion exclusion = Exclusion::Gone;
};

ModelChecker::Factory factory_for(const Config& c) {
  return [&c]() {
    auto w = std::make_unique<World>(1);
    std::vector<Ref> refs;
    for (std::size_t i = 0; i < c.modes.size(); ++i)
      refs.push_back(
          w->spawn<DepartureProcess>(c.modes[i], 100 + i * 10, c.policy));
    for (const auto& [from, to, lie] : c.edges) {
      const Mode actual = c.modes[to];
      const ModeInfo info =
          lie ? (actual == Mode::Leaving ? ModeInfo::Staying
                                         : ModeInfo::Leaving)
              : to_info(actual);
      w->process_as<DepartureProcess>(from).nbrs_mut().insert(
          RefInfo{refs[to], info, w->process(to).key()});
    }
    w->set_oracle(make_single_oracle());
    return w;
  };
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::size_t inflight =
      static_cast<std::size_t>(flags.get_int("inflight", 6));
  flags.reject_unknown();

  bench::banner("E11 / bounded model checking",
                "all interleavings of small worlds satisfy safety, Phi "
                "monotonicity and bounded liveness");

  const Mode S = Mode::Staying;
  const Mode L = Mode::Leaving;
  std::vector<Config> configs = {
      {"stay<->leave pair", {S, L}, {{0, 1, false}, {1, 0, false}}},
      {"pair, mutual lies", {S, L}, {{0, 1, true}, {1, 0, true}}},
      {"leave cut vertex (S-L-S)",
       {S, L, S},
       {{0, 1, false}, {1, 0, false}, {1, 2, false}, {2, 1, false}}},
      {"two leavers, hub stayer",
       {L, S, L},
       {{0, 1, false}, {1, 0, false}, {2, 1, false}, {1, 2, false}}},
      {"adjacent leavers + lies",
       {L, L, S},
       {{0, 1, true}, {1, 0, true}, {1, 2, false}, {2, 1, false},
        {0, 2, false}}},
      {"directed chain S->L->S",
       {S, L, S},
       {{0, 1, false}, {1, 2, false}}},
      {"FSP pair",
       {S, L},
       {{0, 1, false}, {1, 0, false}},
       DeparturePolicy::Sleep,
       Exclusion::Hibernating},
      {"FSP leave cut vertex",
       {S, L, S},
       {{0, 1, false}, {1, 0, false}, {1, 2, false}, {2, 1, false}},
       DeparturePolicy::Sleep,
       Exclusion::Hibernating},
  };

  Table t("E11: exhaustive exploration (in-flight bound " +
          std::to_string(inflight) + ")");
  t.set_header({"configuration", "states", "transitions", "legit states",
                "safety viol.", "phi increases", "stuck states",
                "truncated"});
  for (const Config& c : configs) {
    ModelCheckConfig cfg;
    cfg.max_inflight = inflight;
    cfg.exclusion = c.exclusion;
    ModelChecker mc(factory_for(c), cfg);
    const ModelCheckResult r = mc.run();
    t.add_row({c.name, Table::num(r.states), Table::num(r.transitions),
               Table::num(r.legitimate_states),
               Table::num(r.safety_violations), Table::num(r.phi_increases),
               Table::num(r.stuck_states), Table::num(r.truncated_states)});
    if (!r.clean()) {
      std::printf("FIRST VIOLATION (%s): %s\n", c.name,
                  r.first_violation.c_str());
    }
  }
  t.print();

  return 0;
}
