// E14 — departures under network chaos: the live substrate behind a
// deterministically shaped link (loss x latency/jitter), with optional
// live crash-restart faults.
//
// E13 established the departure claim over a well-behaved medium; E14
// asks what a BAD medium costs. The ShapedTransport decorator drops,
// delays, and jitters datagrams from a seeded per-link stream, the
// in-flight ledger retransmits what the medium destroys, and the bench
// records what that buys and what it costs: do all leavers still exit
// (they must, at any loss rate the retransmit ceiling can out-wait), how
// much longer does it take (pumps to all-gone), how much extra traffic
// does recovery inject (retransmit amplification = retransmits/sends),
// and what happens to served lookup latency.
//
// Grid: loss {0, 1, 5, 10, 20}% x latency/jitter {(0,0), (2,1), (8,4)}
// ticks x {linearization, skiplist}. --loss P runs a single cell instead
// (the CI lossy smoke). --crashes K schedules K live crash-restarts per
// trial and reports RecoveryMonitor re-legitimization.
//
// scripts/check_loss_recovery.py gates the emitted BENCH_loss.json: at
// every loss rate <= 10% all departures complete with zero safety
// violations, zero wire errors, zero retransmit give-ups, and bounded
// amplification.
#include "bench_common.hpp"
#include "analysis/monitors.hpp"
#include "analysis/workload.hpp"
#include "net/live_scenario.hpp"
#include "net/net_faults.hpp"
#include "net/shaped_transport.hpp"
#include "overlay/topology_checks.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace fdp {
namespace {

using net::LiveScenario;
using net::MemTransport;
using net::NetConfig;
using net::NetFaultInjector;
using net::ShapeConfig;
using net::ShapedTransport;
using net::Transport;
using net::UdpTransport;

struct Cell {
  std::string overlay;
  double loss_pct = 0.0;
  std::uint32_t latency = 0;
  std::uint32_t jitter = 0;
};

struct LossTrial {
  std::uint64_t seed = 0;
  bool departures_done = false;
  std::uint64_t exits = 0;
  std::uint64_t leaving = 0;
  std::uint64_t pumps_to_gone = 0;  ///< departure-completion time
  std::uint64_t safety_violations = 0;
  std::uint64_t wire_errors = 0;
  std::uint64_t sends = 0;        ///< frames admitted by actors
  std::uint64_t retransmits = 0;  ///< ledger re-queues after presumed loss
  std::uint64_t gave_up = 0;      ///< retransmit-ceiling exhaustions
  std::uint64_t dropped = 0;      ///< datagrams the shaper destroyed
  std::uint64_t crashes = 0;      ///< crash-restarts actually applied
  std::uint64_t injected = 0;     ///< perturbations RecoveryMonitor tracked
  std::uint64_t recovered = 0;    ///< ...that re-reached legitimacy
  WorkloadReport wl;
  double wall_s = 0.0;

  /// Recovery efficiency: retransmits per datagram the shaper destroyed.
  /// ~1 means each loss cost one retry; growth past that is backoff
  /// re-fires and frames coalesced into an unlucky datagram. The gate
  /// bounds this — recovery must not amplify loss into a send storm.
  /// (Not retransmits/sends: converged actors keep exchanging periodic
  /// heartbeat traffic, which would dilute the ratio to zero.)
  [[nodiscard]] double retransmit_ratio() const {
    return retransmits > 0
               ? static_cast<double>(retransmits) /
                     static_cast<double>(dropped > 0 ? dropped : 1)
               : 0;
  }
};

std::unique_ptr<Transport> make_inner(const std::string& kind) {
  if (kind == "mem") return std::make_unique<MemTransport>();
  return std::make_unique<UdpTransport>(true);
}

LossTrial run_trial(std::size_t n, const Cell& cell,
                      const std::string& transport, std::uint64_t seed,
                      std::size_t lookups, std::uint64_t crashes) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.25;
  cfg.invalid_mode_prob = 0.2;
  cfg.random_anchor_prob = 0.1;
  cfg.seed = seed;

  ShapeConfig shape;
  shape.seed = seed ^ 0xE14C4A05ULL;
  shape.loss = cell.loss_pct / 100.0;
  shape.latency_ticks = cell.latency;
  shape.jitter_ticks = cell.jitter;

  NetConfig rcfg;
  // Above the worst shaping delay (8 + 4 + 1 ticks), so a frame is only
  // presumed lost once it actually can be; keeps recovery snappy without
  // spurious retransmits inflating the amplification column.
  rcfg.retransmit_ticks = 16;

  bench::Timer timer;
  auto shaped = std::make_unique<ShapedTransport>(make_inner(transport), shape);
  ShapedTransport* sp = shaped.get();
  LiveScenario sc = net::build_live_framework_scenario(cfg, cell.overlay,
                                                       std::move(shaped), rcfg);
  // Coarser safety stride than E13: an E14 trial is dominated by the
  // post-convergence grace pumps, where periodic reference-carrying
  // traffic marks the monitor dirty on nearly every action — n/16 would
  // re-BFS ~100k times per trial. A violation cannot self-heal, so a
  // 4n-action stride delays detection by at most one stride, never
  // misses it.
  SafetyMonitor safety(*sc.net, 4 * n);
  sc.net->add_observer(&safety);
  RecoveryMonitor recovery(*sc.net);
  sc.net->add_observer(&recovery);

  FaultPlan plan;
  for (std::uint64_t i = 0; i < crashes; ++i)
    plan.at(50 + 100 * i, FaultKind::CrashRestart);
  NetFaultInjector injector(*sc.net, sp, plan, seed ^ plan.seed);

  WorkloadConfig wcfg;
  wcfg.total = lookups;
  wcfg.interval = 2;
  wcfg.absent_prob = 0.2;
  wcfg.seed = seed;
  std::vector<std::uint64_t> keys;
  for (ProcessId p = 0; p < sc.net->size(); ++p)
    keys.push_back(sc.net->process(p).key());
  LookupWorkload workload(sc.refs, std::move(keys), sc.leaving, wcfg);
  sc.net->add_observer(&workload);

  LossTrial res;
  res.seed = seed;
  res.leaving = sc.leaving_count;

  const int timeout_ms = transport == "mem" ? 0 : 1;
  const std::uint64_t max_pumps = 400'000;
  bool gone = false;
  for (std::uint64_t i = 0; i < max_pumps; ++i) {
    injector.pump();
    workload.pump(*sc.net);
    sc.net->pump(timeout_ms);
    if (!gone && all_leaving_gone(*sc.net)) {
      gone = true;
      res.pumps_to_gone = i + 1;
    }
    if (gone && workload.all_issued() && injector.exhausted()) break;
  }
  // Grace: straggler verdicts may still be in the (slow) medium. Bounded
  // by PROGRESS, not a fixed pump count: a lookup whose frame died with a
  // departing resolver can never resolve (that unanswered request is the
  // availability signal the success column reports), and converged actors
  // keep exchanging periodic traffic forever — so "no resolution for a
  // stall window" is the only honest stop. The window generously covers
  // the slowest possible round trip (max shaping delay x retransmit
  // backoff).
  std::uint64_t last_resolved = workload.resolved();
  for (int i = 0, stalled = 0;
       i < 20'000 && !workload.all_resolved() && stalled < 600; ++i) {
    sc.net->pump(timeout_ms);
    const std::uint64_t now_resolved = workload.resolved();
    stalled = now_resolved == last_resolved ? stalled + 1 : 0;
    last_resolved = now_resolved;
  }
  recovery.finalize(*sc.net);

  res.departures_done = all_leaving_gone(*sc.net);
  res.exits = sc.net->exits();
  res.safety_violations = safety.violations().size();
  res.wire_errors = sc.net->wire_errors();
  res.sends = sc.net->sends();
  res.retransmits = sc.net->retransmits();
  res.gave_up = sc.net->retransmit_gave_up();
  res.dropped = sp->shape_stats().dropped();
  res.crashes = injector.crashes();
  res.injected = recovery.injected();
  res.recovered = recovery.recovered();
  res.wl = workload.report();
  res.wall_s = timer.seconds();
  return res;
}

struct AggCell {
  Cell cell;
  LossTrial r;  ///< counters summed over seeds, worst-latency wl kept
};

LossTrial aggregate(const Cell& cell, const std::string& transport,
                      std::size_t n, std::uint64_t seeds, std::size_t lookups,
                      std::uint64_t crashes, CsvWriter* csv) {
  LossTrial agg;
  agg.departures_done = true;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const LossTrial r = run_trial(n, cell, transport, seed, lookups, crashes);
    agg.exits += r.exits;
    agg.leaving += r.leaving;
    agg.departures_done = agg.departures_done && r.departures_done;
    agg.pumps_to_gone = std::max(agg.pumps_to_gone, r.pumps_to_gone);
    agg.safety_violations += r.safety_violations;
    agg.wire_errors += r.wire_errors;
    agg.sends += r.sends;
    agg.retransmits += r.retransmits;
    agg.gave_up += r.gave_up;
    agg.dropped += r.dropped;
    agg.crashes += r.crashes;
    agg.injected += r.injected;
    agg.recovered += r.recovered;
    agg.wall_s += r.wall_s;
    if (r.wl.p95_us >= agg.wl.p95_us) agg.wl = r.wl;
    if (csv != nullptr) {
      csv->row({std::to_string(seed), std::to_string(n), cell.overlay,
                transport, std::to_string(cell.loss_pct),
                std::to_string(cell.latency), std::to_string(cell.jitter),
                std::to_string(r.exits), std::to_string(r.leaving),
                r.departures_done ? "1" : "0",
                std::to_string(r.pumps_to_gone),
                std::to_string(r.safety_violations),
                std::to_string(r.wire_errors), std::to_string(r.sends),
                std::to_string(r.retransmits),
                std::to_string(r.retransmit_ratio()),
                std::to_string(r.gave_up), std::to_string(r.dropped),
                std::to_string(r.crashes), std::to_string(r.injected),
                std::to_string(r.recovered), std::to_string(r.wl.issued),
                std::to_string(r.wl.resolved),
                std::to_string(r.wl.success_rate()),
                std::to_string(r.wl.p50_us), std::to_string(r.wl.p95_us),
                std::to_string(r.wall_s)});
    }
  }
  return agg;
}

void add_row(Table& t, const Cell& cell, const LossTrial& agg) {
  t.add_row(
      {Table::fixed(cell.loss_pct, 0),
       std::to_string(cell.latency) + "/" + std::to_string(cell.jitter),
       cell.overlay,
       std::to_string(agg.exits) + "/" + std::to_string(agg.leaving) +
           (agg.departures_done ? " done" : " STUCK"),
       agg.safety_violations == 0
           ? "ok"
           : std::to_string(agg.safety_violations) + " VIOLATIONS",
       Table::num(agg.pumps_to_gone), Table::num(agg.dropped),
       Table::fixed(agg.retransmit_ratio(), 3), Table::num(agg.gave_up),
       std::to_string(agg.recovered) + "/" + std::to_string(agg.injected),
       Table::fixed(100.0 * agg.wl.success_rate(), 1),
       Table::quantiles(static_cast<double>(agg.wl.p50_us),
                        static_cast<double>(agg.wl.p95_us)),
       Table::fixed(agg.wall_s, 2)});
}

void write_json(const std::string& path, const std::string& transport,
                std::size_t n, std::uint64_t seeds, std::uint64_t crashes,
                const std::vector<AggCell>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "E14: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"e14_loss\",\n");
  std::fprintf(f,
               "  \"transport\": \"%s\",\n  \"n\": %zu,\n  \"seeds\": %llu,\n"
               "  \"crashes_per_trial\": %llu,\n",
               transport.c_str(), n, static_cast<unsigned long long>(seeds),
               static_cast<unsigned long long>(crashes));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i].cell;
    const LossTrial& r = cells[i].r;
    std::fprintf(
        f,
        "    {\"overlay\": \"%s\", \"loss_pct\": %.0f, \"latency\": %u, "
        "\"jitter\": %u, \"departures_done\": %s, \"exits\": %llu, "
        "\"leaving\": %llu, \"pumps_to_gone\": %llu, "
        "\"safety_violations\": %llu, \"wire_errors\": %llu, "
        "\"sends\": %llu, \"retransmits\": %llu, \"retransmit_ratio\": %.4f, "
        "\"gave_up\": %llu, \"dropped\": %llu, \"crashes\": %llu, "
        "\"injected\": %llu, \"recovered\": %llu, \"lookup_success\": %.4f, "
        "\"lookup_p50_us\": %llu, \"lookup_p95_us\": %llu, "
        "\"wall_s\": %.3f}%s\n",
        c.overlay.c_str(), c.loss_pct, c.latency, c.jitter,
        r.departures_done ? "true" : "false",
        static_cast<unsigned long long>(r.exits),
        static_cast<unsigned long long>(r.leaving),
        static_cast<unsigned long long>(r.pumps_to_gone),
        static_cast<unsigned long long>(r.safety_violations),
        static_cast<unsigned long long>(r.wire_errors),
        static_cast<unsigned long long>(r.sends),
        static_cast<unsigned long long>(r.retransmits), r.retransmit_ratio(),
        static_cast<unsigned long long>(r.gave_up),
        static_cast<unsigned long long>(r.dropped),
        static_cast<unsigned long long>(r.crashes),
        static_cast<unsigned long long>(r.injected),
        static_cast<unsigned long long>(r.recovered), r.wl.success_rate(),
        static_cast<unsigned long long>(r.wl.p50_us),
        static_cast<unsigned long long>(r.wl.p95_us), r.wall_s,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 64));
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 2));
  const std::size_t lookups =
      static_cast<std::size_t>(flags.get_int("lookups", 100));
  const std::uint64_t crashes =
      static_cast<std::uint64_t>(flags.get_int("crashes", 1));
  // Chaos over the deterministic loopback by default: the shaper is the
  // adversary, so the trial replays bit-for-bit; --transport udp puts the
  // same shaping in front of real sockets.
  const std::string transport = flags.get_string("transport", "mem");
  // --loss P: single cell (latency/jitter from --latency/--jitter) instead
  // of the full grid — the CI lossy smoke uses this.
  const std::int64_t single_loss = flags.get_int("loss", -1);
  const std::uint32_t latency =
      static_cast<std::uint32_t>(flags.get_int("latency", 2));
  const std::uint32_t jitter =
      static_cast<std::uint32_t>(flags.get_int("jitter", 1));
  const std::string csv_path = flags.get_string("csv", "");
  const std::string json_path = flags.get_string("json", "");
  // Single event loop; --workers accepted (the runner passes it) but unused.
  (void)flags.get_int("workers", 0);
  flags.reject_unknown();

  bench::banner("E14 / network chaos",
                "departures over a lossy, laggy, jittery link: every leaver "
                "still exits, and recovery traffic stays bounded");

  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path,
        std::vector<std::string>{
            "seed", "n", "overlay", "transport", "loss_pct", "latency",
            "jitter", "exits", "leaving", "departures_done", "pumps_to_gone",
            "safety_violations", "wire_errors", "sends", "retransmits",
            "retransmit_ratio", "gave_up", "dropped", "crashes", "injected",
            "recovered", "issued", "resolved", "success", "p50_us", "p95_us",
            "wall_s"});
  }

  std::vector<double> loss_grid;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> latjit;
  if (single_loss >= 0) {
    loss_grid = {static_cast<double>(single_loss)};
    latjit = {{latency, jitter}};
  } else {
    loss_grid = {0, 1, 5, 10, 20};
    latjit = {{0, 0}, {2, 1}, {8, 4}};
  }

  const std::string title =
      "E14: loss x latency grid, n=" + std::to_string(n) +
      ", transport=" + transport + ", crashes=" + std::to_string(crashes) +
      "/trial";
  Table t(title.c_str());
  t.set_header({"loss %", "lat/jit", "overlay", "departures", "safety",
                "pumps", "dropped", "rtx ratio", "gave up", "recovered",
                "success %", "p50/p95 us", "wall s"});

  std::vector<AggCell> cells;
  for (const std::string& overlay : {std::string("linearization"),
                                     std::string("skiplist")}) {
    for (const double loss : loss_grid) {
      for (const auto& [lat, jit] : latjit) {
        const Cell cell{overlay, loss, lat, jit};
        const LossTrial agg =
            aggregate(cell, transport, n, seeds, lookups, crashes, csv.get());
        add_row(t, cell, agg);
        cells.push_back(AggCell{cell, agg});
        std::fprintf(
            stderr,
            "  [e14] %s loss=%.0f%% lat=%u/%u: exits %llu/%llu%s, rtx ratio "
            "%.3f, gave up %llu, %.1f s\n",
            overlay.c_str(), loss, lat, jit,
            static_cast<unsigned long long>(agg.exits),
            static_cast<unsigned long long>(agg.leaving),
            agg.departures_done ? "" : " STUCK", agg.retransmit_ratio(),
            static_cast<unsigned long long>(agg.gave_up), agg.wall_s);
      }
    }
  }
  t.print();

  if (!json_path.empty())
    write_json(json_path, transport, n, seeds, crashes, cells);
  if (csv && !csv->finish())
    std::fprintf(stderr, "E14 csv: write to %s failed\n", csv_path.c_str());

  // The non-partition contract (satellite 2): nothing in this bench opens
  // a partition window, so a nonzero give-up count is a runtime bug, not
  // bad luck — fail loudly even without the check script.
  for (const AggCell& c : cells) {
    if (c.r.gave_up != 0) {
      std::fprintf(stderr,
                   "E14: FATAL: retransmit gave up %llu times in a "
                   "non-partition run (%s, loss %.0f%%)\n",
                   static_cast<unsigned long long>(c.r.gave_up),
                   c.cell.overlay.c_str(), c.cell.loss_pct);
      return 1;
    }
  }
  return 0;
}
