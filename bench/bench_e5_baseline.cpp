// E5 — comparison with the prior art (Foreback et al. [15] style
// sorted-list departures).
//
// Expected shape (the paper's qualitative claim): the baseline solves the
// FDP only by forcing every topology into a sorted list (it linearizes as
// it departs), needs a total order on processes, and relies on the
// stronger NIDEC oracle; the paper's protocol departs on ANY topology
// with the weaker SINGLE oracle and leaves the stayers' structure to the
// overlay. On the list itself the baseline's targeted bypass can be
// cheaper — that is the trade-off the table shows.
#include <cstdio>

#include "bench_common.hpp"
#include "analysis/experiment.hpp"
#include "analysis/metrics.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace fdp {
namespace {

struct Agg {
  Stat steps, sends;
  std::uint64_t ok = 0, runs = 0;
};

Agg run_many(bool baseline, const char* topology, std::size_t n,
             std::uint64_t seeds) {
  Agg a;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    ScenarioConfig cfg;
    cfg.n = n;
    cfg.topology = topology;
    cfg.leave_fraction = 0.3;
    cfg.seed = seed * 31 + n;
    Scenario sc = baseline ? build_baseline_scenario(cfg)
                           : build_departure_scenario(cfg);
    RunOptions opt;
    opt.max_steps = 2'000'000;
    const RunResult r = run_to_legitimacy(sc, Exclusion::Gone, opt);
    ++a.runs;
    if (r.reached_legitimate) {
      ++a.ok;
      a.steps.add(static_cast<double>(r.steps));
      a.sends.add(static_cast<double>(r.sends));
    }
  }
  return a;
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 10));
  flags.reject_unknown();

  bench::banner(
      "E5 / prior art",
      "this paper's protocol is topology-agnostic and key-free; the "
      "sorted-list baseline [15] is tied to the list and NIDEC");

  Table t("E5a: ours (SINGLE) vs baseline (NIDEC) across topologies, n=32");
  t.set_header({"topology", "protocol", "solved", "steps", "messages"});
  for (const char* topo : {"line", "ring", "star", "clique", "gnp"}) {
    for (int b = 0; b < 2; ++b) {
      const Agg a = run_many(b == 1, topo, 32, seeds);
      t.add_row({topo, b ? "baseline[15]" : "ours",
                 Table::num(a.ok) + "/" + Table::num(a.runs),
                 a.ok ? Table::pm(a.steps.mean(), a.steps.sd(), 0) : "-",
                 a.ok ? Table::pm(a.sends.mean(), a.sends.sd(), 0) : "-"});
    }
  }
  t.print();

  std::printf(
      "\nNote: the baseline 'solves' non-list topologies only by first\n"
      "linearizing them — the stayers end up in a sorted list, not in the\n"
      "original topology, and the protocol reads process keys throughout.\n"
      "The paper's protocol compares references for equality only (E6\n"
      "shows it composing with real overlay maintenance).\n");

  Table t2("E5b: scaling on the baseline's home topology (line)");
  t2.set_header({"n", "ours steps", "baseline steps", "ours msgs",
                 "baseline msgs"});
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    const Agg ours = run_many(false, "line", n, seeds);
    const Agg base = run_many(true, "line", n, seeds);
    t2.add_row({Table::num(static_cast<std::uint64_t>(n)),
                Table::pm(ours.steps.mean(), ours.steps.sd(), 0),
                Table::pm(base.steps.mean(), base.steps.sd(), 0),
                Table::pm(ours.sends.mean(), ours.sends.sd(), 0),
                Table::pm(base.sends.mean(), base.sends.sd(), 0)});
  }
  t2.print();

  return 0;
}
