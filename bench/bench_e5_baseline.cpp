// E5 — comparison with the prior art (Foreback et al. [15] style
// sorted-list departures).
//
// Expected shape (the paper's qualitative claim): the baseline solves the
// FDP only by forcing every topology into a sorted list (it linearizes as
// it departs), needs a total order on processes, and relies on the
// stronger NIDEC oracle; the paper's protocol departs on ANY topology
// with the weaker SINGLE oracle and leaves the stayers' structure to the
// overlay. On the list itself the baseline's targeted bypass can be
// cheaper — that is the trade-off the table shows.
#include <cstdio>

#include "bench_common.hpp"
#include "analysis/metrics.hpp"
#include "util/table.hpp"

namespace fdp {
namespace {

Aggregate run_many(const ExperimentDriver& driver, bool baseline,
                   const char* topology, std::size_t n,
                   std::uint64_t seeds) {
  ScenarioSpec sc;
  sc.family = baseline ? ScenarioFamily::Baseline : ScenarioFamily::Departure;
  sc.config.n = n;
  sc.config.topology = topology;
  sc.config.leave_fraction = 0.3;
  ExperimentSpec spec;
  spec.scenario(sc).max_steps(2'000'000).seeds(1, seeds).seed_mix(31, n);
  return driver.run(spec).agg;
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 10));
  const ExperimentDriver driver = bench::driver_from_flags(flags);
  flags.reject_unknown();

  bench::banner(
      "E5 / prior art",
      "this paper's protocol is topology-agnostic and key-free; the "
      "sorted-list baseline [15] is tied to the list and NIDEC");

  Table t("E5a: ours (SINGLE) vs baseline (NIDEC) across topologies, n=32");
  t.set_header({"topology", "protocol", "solved", "steps", "messages"});
  for (const char* topo : {"line", "ring", "star", "clique", "gnp"}) {
    for (int b = 0; b < 2; ++b) {
      const Aggregate a = run_many(driver, b == 1, topo, 32, seeds);
      t.add_row({topo, b ? "baseline[15]" : "ours",
                 Table::num(a.solved) + "/" + Table::num(a.trials),
                 a.solved ? Table::pm(a.steps.mean(), a.steps.sd(), 0) : "-",
                 a.solved ? Table::pm(a.sends.mean(), a.sends.sd(), 0) : "-"});
    }
  }
  t.print();

  std::printf(
      "\nNote: the baseline 'solves' non-list topologies only by first\n"
      "linearizing them — the stayers end up in a sorted list, not in the\n"
      "original topology, and the protocol reads process keys throughout.\n"
      "The paper's protocol compares references for equality only (E6\n"
      "shows it composing with real overlay maintenance).\n");

  Table t2("E5b: scaling on the baseline's home topology (line)");
  t2.set_header({"n", "ours steps", "baseline steps", "ours msgs",
                 "baseline msgs"});
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    const Aggregate ours = run_many(driver, false, "line", n, seeds);
    const Aggregate base = run_many(driver, true, "line", n, seeds);
    t2.add_row({Table::num(static_cast<std::uint64_t>(n)),
                Table::pm(ours.steps.mean(), ours.steps.sd(), 0),
                Table::pm(base.steps.mean(), base.steps.sd(), 0),
                Table::pm(ours.sends.mean(), ours.sends.sd(), 0),
                Table::pm(base.sends.mean(), base.sends.sd(), 0)});
  }
  t2.print();

  return 0;
}
