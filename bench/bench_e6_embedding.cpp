// E6 — Theorem 4: the framework P' solves the FDP while P still solves
// its own problem, and what the wrapping costs.
//
// Table a: for each bundled overlay, wrapped runs with departures and
//          corruption — time to exclusion, time to P's topology after
//          exclusion, and the verify/process traffic breakdown.
// Table b: overhead — bare P vs wrapped P' on an all-staying population:
//          messages until first convergence to the target topology.
//
// Both tables fan their per-seed trials (which are two-phase, so more
// than a single run_to_legitimacy) across the driver's worker pool via
// ExperimentDriver::map.
#include "bench_common.hpp"
#include "analysis/experiment.hpp"
#include "analysis/metrics.hpp"
#include "core/framework.hpp"
#include "analysis/monitors.hpp"
#include "graph/generators.hpp"
#include "overlay/topology_checks.hpp"
#include "util/table.hpp"

namespace fdp {
namespace {

/// Steps until check_topology holds, stepping `probe` steps at a time;
/// returns steps used or UINT64_MAX.
std::uint64_t steps_to_topology(World& w, const std::string& overlay,
                                Scheduler& sched, std::uint64_t max_steps,
                                std::uint64_t probe = 200) {
  const std::uint64_t start = w.steps();
  while (w.steps() - start < max_steps) {
    if (check_topology(w, overlay).converged) return w.steps() - start;
    for (std::uint64_t i = 0; i < probe; ++i) {
      if (!w.step(sched)) break;
    }
  }
  return check_topology(w, overlay).converged ? w.steps() - start
                                              : ~0ULL;
}

FrameworkStats total_stats(const World& w) {
  FrameworkStats total;
  for (ProcessId p = 0; p < w.size(); ++p) {
    if (const auto* fp = dynamic_cast<const FrameworkProcess*>(&w.process(p))) {
      const FrameworkStats& s = fp->stats();
      total.verifies_sent += s.verifies_sent;
      total.replies_sent += s.replies_sent;
      total.dispatched += s.dispatched;
      total.postprocessed += s.postprocessed;
      total.gave_up += s.gave_up;
    }
  }
  return total;
}

struct WrappedTrial {
  bool solved = false;
  bool converged = false;
  std::uint64_t excl_steps = 0;
  std::uint64_t topo_steps = 0;
  FrameworkStats stats;
};

WrappedTrial wrapped_trial(const char* overlay, std::size_t n,
                           std::uint64_t seed) {
  ScenarioSpec scenario;
  scenario.family = ScenarioFamily::Framework;
  scenario.overlay = overlay;
  scenario.config.n = n;
  scenario.config.topology = "wild";
  scenario.config.leave_fraction = 0.3;
  scenario.config.invalid_mode_prob = 0.3;
  ExperimentSpec spec;
  spec.scenario(scenario).max_steps(4'000'000);
  Scenario sc = scenario.build(seed * 7 + 1);
  WrappedTrial out;
  const RunResult r = run_to_legitimacy(sc, spec);
  if (!r.reached_legitimate) return out;
  out.solved = true;
  out.excl_steps = r.steps;
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  const std::uint64_t extra =
      steps_to_topology(*sc.world, overlay, *sched, 3'000'000);
  if (extra != ~0ULL) {
    out.converged = true;
    out.topo_steps = extra;
  }
  out.stats = total_stats(*sc.world);
  return out;
}

struct OverheadTrial {
  bool bare_ok = false;
  bool wrapped_ok = false;
  std::uint64_t bare_msgs = 0;
  std::uint64_t wrapped_msgs = 0;
};

OverheadTrial overhead_trial(const char* overlay, std::size_t n,
                             std::uint64_t seed) {
  OverheadTrial out;
  // Bare P.
  {
    World w(seed);
    Rng rng(seed * 1000 + 7);
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < n; ++i) keys.push_back(rng() | 1);
    std::vector<Ref> refs;
    for (std::size_t i = 0; i < n; ++i)
      refs.push_back(w.spawn<PlainOverlayHost>(Mode::Staying, keys[i],
                                               make_overlay(overlay)));
    const DiGraph g = gen::by_name("wild", n, rng);
    for (const auto& [u, v] : g.simple_edges())
      w.process_as<PlainOverlayHost>(u).overlay_mut().integrate(
          RefInfo{refs[v], ModeInfo::Staying, keys[v]});
    auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
    if (steps_to_topology(w, overlay, *sched, 2'000'000) != ~0ULL) {
      out.bare_ok = true;
      out.bare_msgs = w.sends();
    }
  }
  // Wrapped P', same topology/keys distribution.
  {
    ScenarioSpec scenario;
    scenario.family = ScenarioFamily::Framework;
    scenario.overlay = overlay;
    scenario.config.n = n;
    scenario.config.topology = "wild";
    scenario.config.leave_fraction = 0.0;
    Scenario sc = scenario.build(seed);
    auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
    if (steps_to_topology(*sc.world, overlay, *sched, 2'000'000) != ~0ULL) {
      out.wrapped_ok = true;
      out.wrapped_msgs = sc.world->sends();
    }
  }
  return out;
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 6));
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", 16));
  const ExperimentDriver driver = bench::driver_from_flags(flags);
  flags.reject_unknown();

  bench::banner("E6 / Theorem 4",
                "wrapping any P in the framework yields P' that excludes "
                "leaving processes while P still reaches its topology");

  {
    Table t("E6a: wrapped overlays under departures + corruption (n=" +
            std::to_string(n) + ")");
    t.set_header({"overlay", "FDP solved", "steps to exclusion",
                  "steps to topology", "verify msgs", "postproc", "gave up"});
    for (const char* overlay :
       {"linearization", "ring", "clique", "star", "skiplist"}) {
      const std::vector<WrappedTrial> trials =
          driver.map(seeds, [&](std::uint64_t i) {
            return wrapped_trial(overlay, n, i + 1);
          });
      std::uint64_t solved = 0, converged = 0;
      Stat excl, topo;
      FrameworkStats fs;
      for (const WrappedTrial& trial : trials) {
        if (!trial.solved) continue;
        ++solved;
        excl.add(static_cast<double>(trial.excl_steps));
        if (trial.converged) {
          ++converged;
          topo.add(static_cast<double>(trial.topo_steps));
        }
        fs.verifies_sent += trial.stats.verifies_sent;
        fs.postprocessed += trial.stats.postprocessed;
        fs.gave_up += trial.stats.gave_up;
      }
      t.add_row({overlay,
                 Table::num(solved) + "+" + Table::num(converged) + "/" +
                     Table::num(seeds),
                 Table::pm(excl.mean(), excl.sd(), 0),
                 Table::pm(topo.mean(), topo.sd(), 0),
                 Table::num(fs.verifies_sent),
                 Table::num(fs.postprocessed), Table::num(fs.gave_up)});
    }
    t.print();
  }

  {
    Table t("E6b: wrapping overhead, all-staying population (n=" +
            std::to_string(n) + ", wild start)");
    t.set_header({"overlay", "bare P msgs", "wrapped P' msgs",
                  "overhead factor"});
    for (const char* overlay :
       {"linearization", "ring", "clique", "star", "skiplist"}) {
      const std::vector<OverheadTrial> trials =
          driver.map(seeds, [&](std::uint64_t i) {
            return overhead_trial(overlay, n, i + 1);
          });
      Stat bare, wrapped;
      for (const OverheadTrial& trial : trials) {
        if (trial.bare_ok) bare.add(static_cast<double>(trial.bare_msgs));
        if (trial.wrapped_ok)
          wrapped.add(static_cast<double>(trial.wrapped_msgs));
      }
      const double factor =
          bare.mean() > 0 ? wrapped.mean() / bare.mean() : 0.0;
      t.add_row({overlay, Table::pm(bare.mean(), bare.sd(), 0),
                 Table::pm(wrapped.mean(), wrapped.sd(), 0),
                 Table::fixed(factor, 2)});
    }
    t.print();
  }

  return 0;
}
