// E6 — Theorem 4: the framework P' solves the FDP while P still solves
// its own problem, and what the wrapping costs.
//
// Table a: for each bundled overlay, wrapped runs with departures and
//          corruption — time to exclusion, time to P's topology after
//          exclusion, and the verify/process traffic breakdown.
// Table b: overhead — bare P vs wrapped P' on an all-staying population:
//          messages until first convergence to the target topology.
#include "bench_common.hpp"
#include "analysis/experiment.hpp"
#include "analysis/metrics.hpp"
#include "core/framework.hpp"
#include "analysis/monitors.hpp"
#include "graph/generators.hpp"
#include "overlay/topology_checks.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace fdp {
namespace {

/// Steps until check_topology holds, stepping `probe` steps at a time;
/// returns steps used or UINT64_MAX.
std::uint64_t steps_to_topology(World& w, const std::string& overlay,
                                Scheduler& sched, std::uint64_t max_steps,
                                std::uint64_t probe = 200) {
  const std::uint64_t start = w.steps();
  while (w.steps() - start < max_steps) {
    if (check_topology(w, overlay).converged) return w.steps() - start;
    for (std::uint64_t i = 0; i < probe; ++i) {
      if (!w.step(sched)) break;
    }
  }
  return check_topology(w, overlay).converged ? w.steps() - start
                                              : ~0ULL;
}

FrameworkStats total_stats(const World& w) {
  FrameworkStats total;
  for (ProcessId p = 0; p < w.size(); ++p) {
    if (const auto* fp = dynamic_cast<const FrameworkProcess*>(&w.process(p))) {
      const FrameworkStats& s = fp->stats();
      total.verifies_sent += s.verifies_sent;
      total.replies_sent += s.replies_sent;
      total.dispatched += s.dispatched;
      total.postprocessed += s.postprocessed;
      total.gave_up += s.gave_up;
    }
  }
  return total;
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 6));
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", 16));
  flags.reject_unknown();

  bench::banner("E6 / Theorem 4",
                "wrapping any P in the framework yields P' that excludes "
                "leaving processes while P still reaches its topology");

  {
    Table t("E6a: wrapped overlays under departures + corruption (n=" +
            std::to_string(n) + ")");
    t.set_header({"overlay", "FDP solved", "steps to exclusion",
                  "steps to topology", "verify msgs", "postproc", "gave up"});
    for (const char* overlay :
       {"linearization", "ring", "clique", "star", "skiplist"}) {
      std::uint64_t solved = 0, converged = 0;
      Stat excl, topo;
      FrameworkStats fs;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        ScenarioConfig cfg;
        cfg.n = n;
        cfg.topology = "wild";
        cfg.leave_fraction = 0.3;
        cfg.invalid_mode_prob = 0.3;
        cfg.seed = seed * 7 + 1;
        Scenario sc = build_framework_scenario(cfg, overlay);
        RunOptions opt;
        opt.max_steps = 4'000'000;
        const RunResult r = run_to_legitimacy(sc, Exclusion::Gone, opt);
        if (!r.reached_legitimate) continue;
        ++solved;
        excl.add(static_cast<double>(r.steps));
        RandomScheduler sched;
        const std::uint64_t extra = steps_to_topology(
            *sc.world, overlay, sched, 3'000'000);
        if (extra != ~0ULL) {
          ++converged;
          topo.add(static_cast<double>(extra));
        }
        const FrameworkStats s = total_stats(*sc.world);
        fs.verifies_sent += s.verifies_sent;
        fs.postprocessed += s.postprocessed;
        fs.gave_up += s.gave_up;
      }
      t.add_row({overlay,
                 Table::num(solved) + "+" + Table::num(converged) + "/" +
                     Table::num(seeds),
                 Table::pm(excl.mean(), excl.sd(), 0),
                 Table::pm(topo.mean(), topo.sd(), 0),
                 Table::num(fs.verifies_sent),
                 Table::num(fs.postprocessed), Table::num(fs.gave_up)});
    }
    t.print();
  }

  {
    Table t("E6b: wrapping overhead, all-staying population (n=" +
            std::to_string(n) + ", wild start)");
    t.set_header({"overlay", "bare P msgs", "wrapped P' msgs",
                  "overhead factor"});
    for (const char* overlay :
       {"linearization", "ring", "clique", "star", "skiplist"}) {
      Stat bare, wrapped;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        // Bare P.
        {
          World w(seed);
          Rng rng(seed * 1000 + 7);
          std::vector<std::uint64_t> keys;
          for (std::size_t i = 0; i < n; ++i) keys.push_back(rng() | 1);
          std::vector<Ref> refs;
          for (std::size_t i = 0; i < n; ++i)
            refs.push_back(w.spawn<PlainOverlayHost>(Mode::Staying, keys[i],
                                                     make_overlay(overlay)));
          const DiGraph g = gen::by_name("wild", n, rng);
          for (const auto& [u, v] : g.simple_edges())
            w.process_as<PlainOverlayHost>(u).overlay_mut().integrate(
                RefInfo{refs[v], ModeInfo::Staying, keys[v]});
          RandomScheduler sched;
          if (steps_to_topology(w, overlay, sched, 2'000'000) != ~0ULL)
            bare.add(static_cast<double>(w.sends()));
        }
        // Wrapped P', same topology/keys distribution.
        {
          ScenarioConfig cfg;
          cfg.n = n;
          cfg.topology = "wild";
          cfg.leave_fraction = 0.0;
          cfg.seed = seed;
          Scenario sc = build_framework_scenario(cfg, overlay);
          RandomScheduler sched;
          if (steps_to_topology(*sc.world, overlay, sched, 2'000'000) !=
              ~0ULL)
            wrapped.add(static_cast<double>(sc.world->sends()));
        }
      }
      const double factor =
          bare.mean() > 0 ? wrapped.mean() / bare.mean() : 0.0;
      t.add_row({overlay, Table::pm(bare.mean(), bare.sd(), 0),
                 Table::pm(wrapped.mean(), wrapped.sd(), 0),
                 Table::fixed(factor, 2)});
    }
    t.print();
  }

  return 0;
}
