// E13 — the live substrate: the departure protocol running as socket
// actors over loopback UDP, with served lookup traffic.
//
// The simulator experiments (E1-E10) establish the paper's claims under a
// scheduler we control; E13 re-runs the central departure claim on the
// OTHER Substrate implementation — an event-loop runtime where every
// process is an actor behind a real socket and "the adversary" is the
// kernel's datagram scheduling — and adds the service-availability
// question: while leavers depart, do stayers keep answering lookups, and
// at what latency?
//
// Table a: departures + served lookups per seed (linearization overlay).
// Table b: same on the skip-list overlay.
//
// --transport mem swaps the UDP sockets for the deterministic in-process
// loopback (useful under sanitizers); --csv dumps raw per-trial rows.
#include "bench_common.hpp"
#include "analysis/monitors.hpp"
#include "analysis/workload.hpp"
#include "net/live_scenario.hpp"
#include "overlay/topology_checks.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <algorithm>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace fdp {
namespace {

using net::LiveScenario;
using net::MemTransport;
using net::NetConfig;
using net::Transport;
using net::UdpTransport;

struct TrialResult {
  std::uint64_t seed = 0;
  bool departures_done = false;
  std::uint64_t exits = 0;
  std::uint64_t leaving = 0;
  std::uint64_t safety_violations = 0;
  std::uint64_t wire_errors = 0;
  std::uint64_t gave_up = 0;    ///< retransmit-ceiling exhaustions (must be 0)
  std::uint64_t frames = 0;     ///< application messages delivered
  std::uint64_t datagrams = 0;  ///< medium hand-offs carrying them
  std::uint64_t syscalls = 0;   ///< send + recv calls
  WorkloadReport wl;
  double wall_s = 0.0;
  std::string monitor_sample;  ///< first bytes of a live monitor doc

  [[nodiscard]] double frames_per_sec() const {
    return wall_s > 0 ? static_cast<double>(frames) / wall_s : 0;
  }
  [[nodiscard]] double syscalls_per_frame() const {
    return frames > 0
               ? static_cast<double>(syscalls) / static_cast<double>(frames)
               : 0;
  }
};

std::unique_ptr<Transport> make_transport(const std::string& kind,
                                          bool batching) {
  if (kind == "mem") return std::make_unique<MemTransport>();
  return std::make_unique<UdpTransport>(batching);
}

// The monitor is served from inside pump() on this same thread, so a
// synchronous connect-and-read would deadlock (nothing pumps while we
// block in read). Instead: connect, let a few pumps run — the runtime
// accepts, writes the whole document, and closes — then read what the
// kernel buffered for us.
#if defined(__unix__) || defined(__APPLE__)
int monitor_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_usec = 200 * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string monitor_read(int fd) {
  if (fd < 0) return {};
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r <= 0) break;
    out.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return out;
}
#else
int monitor_connect(std::uint16_t) { return -1; }
std::string monitor_read(int) { return {}; }
#endif

TrialResult run_trial(std::size_t n, const std::string& overlay,
                      const std::string& transport, std::uint64_t seed,
                      std::size_t lookups, bool sample_monitor,
                      bool batching = true) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.25;
  cfg.invalid_mode_prob = 0.2;
  cfg.random_anchor_prob = 0.1;
  cfg.seed = seed;

  NetConfig rcfg;
  rcfg.monitor = sample_monitor;
  // "batch off" is the pre-optimization baseline end to end: per-frame
  // sendto/recv at the transport and one frame per datagram at the flush.
  rcfg.coalesce_frames = batching;

  bench::Timer timer;
  LiveScenario sc = net::build_live_framework_scenario(
      cfg, overlay, make_transport(transport, batching), rcfg);
  // Safety checks run a connectivity BFS (O(n + in-flight)); at stride 1
  // the instrument dominates the run past a few hundred actors. Scaling
  // the stride with n keeps the per-action overhead constant, and the
  // dirty flag still forces a BFS after any structurally relevant action,
  // so a real violation (a lost reference cannot self-heal) is caught at
  // the next stride point and fails the trial exactly as before.
  SafetyMonitor safety(*sc.net, std::max<std::uint64_t>(1, n / 16));
  sc.net->add_observer(&safety);

  WorkloadConfig wcfg;
  wcfg.total = lookups;
  wcfg.interval = 2;
  wcfg.absent_prob = 0.2;
  wcfg.seed = seed;
  std::vector<std::uint64_t> keys;
  for (ProcessId p = 0; p < sc.net->size(); ++p)
    keys.push_back(sc.net->process(p).key());
  LookupWorkload workload(sc.refs, std::move(keys), sc.leaving, wcfg);
  sc.net->add_observer(&workload);

  TrialResult res;
  res.seed = seed;
  res.leaving = sc.leaving_count;

  // Real sockets: block 1ms in poll when idle so the loop isn't a busy
  // spin; the deterministic loopback has no kernel to wait on.
  const int timeout_ms = transport == "mem" ? 0 : 1;
  const std::uint64_t max_pumps = 200'000;
  int mon_fd = -1;
  for (std::uint64_t i = 0; i < max_pumps; ++i) {
    workload.pump(*sc.net);
    sc.net->pump(timeout_ms);
    // Long n=1024 trials run for minutes; a stderr heartbeat (stdout is
    // the table) shows whether exits are advancing or the trial is stuck.
    if ((i % 20'000) == 19'999)
      std::fprintf(stderr,
                   "  [n=%zu %s seed=%llu] pump %llu: exits %llu/%llu, "
                   "deliveries %llu\n",
                   n, batching ? "batch" : "nobatch",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(i + 1),
                   static_cast<unsigned long long>(sc.net->exits()),
                   static_cast<unsigned long long>(res.leaving),
                   static_cast<unsigned long long>(sc.net->deliveries()));
    if (sample_monitor && i == 64) mon_fd = monitor_connect(sc.net->monitor_port());
    if (sample_monitor && i == 80 && mon_fd >= 0) {
      res.monitor_sample = monitor_read(mon_fd);
      mon_fd = -1;
    }
    if (all_leaving_gone(*sc.net) && workload.all_issued()) break;
  }
  if (mon_fd >= 0) res.monitor_sample = monitor_read(mon_fd);
  // Grace period: give straggler verdicts a chance to come home. Bounded —
  // a request whose frame died with a departing resolver will never
  // resolve, and that is exactly the availability signal the success-rate
  // column reports; waiting longer cannot change it.
  for (int i = 0; i < 4'000 && !workload.all_resolved(); ++i)
    sc.net->pump(timeout_ms);

  res.departures_done = all_leaving_gone(*sc.net);
  res.exits = sc.net->exits();
  res.safety_violations = safety.violations().size();
  res.wire_errors = sc.net->wire_errors();
  res.gave_up = sc.net->retransmit_gave_up();
  res.frames = sc.net->deliveries();
  const net::TransportStats st = sc.net->transport().stats();
  res.datagrams = st.frames_sent;
  res.syscalls = st.send_calls + st.recv_calls;
  res.wl = workload.report();
  res.wall_s = timer.seconds();
  return res;
}

void run_table(const char* title, std::size_t n, const std::string& overlay,
               const std::string& transport, std::uint64_t seeds,
               std::size_t lookups, CsvWriter* csv) {
  Table t(title);
  t.set_header({"seed", "departures", "safety", "lookups", "success %",
                "p50/p95 clock", "p50/p95 us", "wall s"});
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const TrialResult r =
        run_trial(n, overlay, transport, seed, lookups, seed == 1);
    t.add_row(
        {Table::num(r.seed),
         std::to_string(r.exits) + "/" + std::to_string(r.leaving) +
             (r.departures_done ? " done" : " STUCK"),
         r.safety_violations == 0
             ? "ok"
             : std::to_string(r.safety_violations) + " VIOLATIONS",
         std::to_string(r.wl.resolved) + "/" + std::to_string(r.wl.issued) +
             " (" + std::to_string(r.wl.hits) + "h/" +
             std::to_string(r.wl.misses) + "m)",
         Table::fixed(100.0 * r.wl.success_rate(), 1),
         Table::quantiles(static_cast<double>(r.wl.p50_clock),
                          static_cast<double>(r.wl.p95_clock)),
         Table::quantiles(static_cast<double>(r.wl.p50_us),
                          static_cast<double>(r.wl.p95_us)),
         Table::fixed(r.wall_s, 2)});
    if (!r.monitor_sample.empty()) {
      std::printf("  [seed %llu] live monitor doc (first 120 bytes): %.120s\n",
                  static_cast<unsigned long long>(r.seed),
                  r.monitor_sample.c_str());
    }
    if (csv != nullptr) {
      csv->row({std::to_string(r.seed), std::to_string(n), overlay, transport,
                std::to_string(r.wl.issued), std::to_string(r.wl.resolved),
                std::to_string(r.wl.hits), std::to_string(r.wl.misses),
                std::to_string(r.wl.success_rate()),
                std::to_string(r.wl.p50_clock), std::to_string(r.wl.p95_clock),
                std::to_string(r.wl.p50_us), std::to_string(r.wl.p95_us),
                std::to_string(r.exits), std::to_string(r.leaving),
                std::to_string(r.safety_violations),
                std::to_string(r.wire_errors)});
    }
  }
  t.print();
}

// --sweep: the scaling grid n x {batch on, batch off}, one seed per cell,
// condensed to the numbers the perf gate and BENCH_net.json care about:
// frames/sec, syscalls/frame, lookup latency quantiles, and the safety
// columns that must not degrade while the hot path gets faster.
void run_sweep(const std::string& transport, std::uint64_t seeds,
               std::size_t lookups, const std::string& json_path,
               CsvWriter* csv) {
  struct Cell {
    std::size_t n;
    bool batching;
    TrialResult r;
  };
  std::vector<Cell> cells;
  const std::string title = "E13 sweep: linearization, transport=" + transport;
  Table t(title.c_str());
  t.set_header({"n", "batching", "departures", "safety", "wire errs",
                "frames/s", "syscalls/frame", "p50/p95 us", "wall s"});
  for (const std::size_t n : {std::size_t{64}, std::size_t{256},
                              std::size_t{1024}}) {
    for (const bool batching : {true, false}) {
      TrialResult agg;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const TrialResult r = run_trial(n, "linearization", transport, seed,
                                        lookups, false, batching);
        // Keep the slowest seed's latency profile and sum the counters:
        // one stuck or violating seed must show in the condensed row.
        agg.exits += r.exits;
        agg.leaving += r.leaving;
        agg.departures_done =
            (seed == 1 ? true : agg.departures_done) && r.departures_done;
        agg.safety_violations += r.safety_violations;
        agg.wire_errors += r.wire_errors;
        agg.gave_up += r.gave_up;
        agg.frames += r.frames;
        agg.datagrams += r.datagrams;
        agg.syscalls += r.syscalls;
        agg.wall_s += r.wall_s;
        if (r.wl.p95_us >= agg.wl.p95_us) agg.wl = r.wl;
        if (csv != nullptr) {
          csv->row({std::to_string(seed), std::to_string(n), "linearization",
                    transport + (batching ? "" : "-nobatch"),
                    std::to_string(r.wl.issued), std::to_string(r.wl.resolved),
                    std::to_string(r.wl.hits), std::to_string(r.wl.misses),
                    std::to_string(r.wl.success_rate()),
                    std::to_string(r.wl.p50_clock),
                    std::to_string(r.wl.p95_clock), std::to_string(r.wl.p50_us),
                    std::to_string(r.wl.p95_us), std::to_string(r.exits),
                    std::to_string(r.leaving),
                    std::to_string(r.safety_violations),
                    std::to_string(r.wire_errors)});
        }
      }
      t.add_row({Table::num(n), batching ? "on" : "off",
                 std::to_string(agg.exits) + "/" + std::to_string(agg.leaving) +
                     (agg.departures_done ? " done" : " STUCK"),
                 agg.safety_violations == 0
                     ? "ok"
                     : std::to_string(agg.safety_violations) + " VIOLATIONS",
                 Table::num(agg.wire_errors),
                 Table::fixed(agg.frames_per_sec(), 0),
                 Table::fixed(agg.syscalls_per_frame(), 3),
                 Table::quantiles(static_cast<double>(agg.wl.p50_us),
                                  static_cast<double>(agg.wl.p95_us)),
                 Table::fixed(agg.wall_s, 2)});
      cells.push_back(Cell{n, batching, agg});
      std::fprintf(stderr,
                   "  [sweep] n=%zu %s: exits %llu/%llu%s, %llu violations, "
                   "%.1f s\n",
                   n, batching ? "batch" : "nobatch",
                   static_cast<unsigned long long>(agg.exits),
                   static_cast<unsigned long long>(agg.leaving),
                   agg.departures_done ? "" : " STUCK",
                   static_cast<unsigned long long>(agg.safety_violations),
                   agg.wall_s);
    }
  }
  t.print();

  if (json_path.empty()) return;
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "E13 sweep: cannot write %s\n", json_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"e13_sweep\",\n");
  std::fprintf(f, "  \"transport\": \"%s\",\n  \"seeds\": %llu,\n",
               transport.c_str(), static_cast<unsigned long long>(seeds));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"n\": %zu, \"batching\": %s, \"departures_done\": %s, "
        "\"exits\": %llu, \"leaving\": %llu, \"safety_violations\": %llu, "
        "\"wire_errors\": %llu, \"retransmit_gave_up\": %llu, "
        "\"frames\": %llu, \"datagrams\": %llu, "
        "\"frames_per_sec\": %.1f, \"syscalls_per_frame\": %.4f, "
        "\"lookup_success\": %.4f, \"lookup_p50_us\": %llu, "
        "\"lookup_p95_us\": %llu, \"wall_s\": %.3f}%s\n",
        c.n, c.batching ? "true" : "false",
        c.r.departures_done ? "true" : "false",
        static_cast<unsigned long long>(c.r.exits),
        static_cast<unsigned long long>(c.r.leaving),
        static_cast<unsigned long long>(c.r.safety_violations),
        static_cast<unsigned long long>(c.r.wire_errors),
        static_cast<unsigned long long>(c.r.gave_up),
        static_cast<unsigned long long>(c.r.frames),
        static_cast<unsigned long long>(c.r.datagrams),
        c.r.frames_per_sec(), c.r.syscalls_per_frame(),
        c.r.wl.success_rate(),
        static_cast<unsigned long long>(c.r.wl.p50_us),
        static_cast<unsigned long long>(c.r.wl.p95_us), c.r.wall_s,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace fdp

int main(int argc, char** argv) {
  using namespace fdp;
  Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 64));
  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds", 5));
  const std::size_t lookups =
      static_cast<std::size_t>(flags.get_int("lookups", 200));
  const std::string transport = flags.get_string("transport", "udp");
  const std::string csv_path = flags.get_string("csv", "");
  // --sweep FILE: run the n x batching scaling grid instead of the
  // per-seed tables and write the condensed JSON to FILE.
  const std::string sweep_json = flags.get_string("sweep", "");
  // Live trials are a single event loop, not a driver fan-out; --workers is
  // accepted (the experiment runner passes it to every bench) but unused.
  (void)flags.get_int("workers", 0);
  flags.reject_unknown();

  bench::banner("E13 / live substrate",
                "the departure protocol over real sockets: all leavers exit, "
                "zero safety violations, and stayers keep serving lookups");

  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path,
        std::vector<std::string>{
            "seed", "n", "overlay", "transport", "issued", "resolved", "hits",
            "misses", "success", "p50_clock", "p95_clock", "p50_us", "p95_us",
            "exits", "leaving", "safety_violations", "wire_errors"});
  }

  if (!sweep_json.empty()) {
    run_sweep(transport, seeds, lookups, sweep_json, csv.get());
    if (csv && !csv->finish())
      std::fprintf(stderr, "E13 csv: write to %s failed\n", csv_path.c_str());
    return 0;
  }

  const std::string title_a = "E13a: linearization, n=" + std::to_string(n) +
                              ", transport=" + transport;
  run_table(title_a.c_str(), n, "linearization", transport, seeds, lookups,
            csv.get());

  const std::string title_b = "E13b: skiplist, n=" + std::to_string(n) +
                              ", transport=" + transport;
  run_table(title_b.c_str(), n, "skiplist", transport, seeds, lookups,
            csv.get());

  if (csv && !csv->finish())
    std::fprintf(stderr, "E13 csv: write to %s failed\n", csv_path.c_str());

  return 0;
}
