// Shared helpers for the experiment binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "analysis/driver.hpp"
#include "util/flags.hpp"

namespace fdp::bench {

/// Every bench accepts --workers (0 = one per hardware core) and fans its
/// seed sweeps across the shared parallel driver.
inline ExperimentDriver driver_from_flags(Flags& flags) {
  return ExperimentDriver(
      static_cast<unsigned>(flags.get_int("workers", 0)));
}

/// Wall-clock stopwatch (seconds).
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

inline void banner(const char* id, const char* claim) {
  std::printf("\n############################################################\n");
  std::printf("# %s\n# claim: %s\n", id, claim);
  std::printf("############################################################\n\n");
  std::fflush(stdout);
}

}  // namespace fdp::bench
