#!/usr/bin/env python3
"""Gate sharded-kernel scaling on shard count and baseline overhead.

Reads google-benchmark JSON from bench_shard_scaling
(--benchmark_format=json) and checks:

1. Scaling: BM_ShardedChurn's actions/sec at --top shards must be at
   least min(--speedup-cap, --cores-frac * cpu_count) times the 1-shard
   rate. The executed trace is shard-count invariant, so the speedup is
   pure kernel parallelism. On boxes with fewer than 2 cores the check is
   SKIPPED (marker "skipped (1 core)") — there is nothing to scale onto —
   but the summary is still emitted so the curve is recorded.

2. Overhead floor: the 1-shard sharded engine must stay within
   --max-overhead of the classic per-action loop (BM_ClassicChurn) on the
   same scenario. The epoch machinery buys parallelism; it must not cost
   an order of magnitude when k=1. This check runs regardless of core
   count.

With --emit PATH, writes a condensed machine-readable summary
(actions/sec per shard count, classic baseline, speedup, gate verdicts)
for CI artifact upload / committing as BENCH_shard.json.

Usage: check_shard_scaling.py bench_shard_raw.json
           [--bench BM_ShardedChurn] [--classic-bench BM_ClassicChurn]
           [--n 4096] [--top 8] [--speedup-cap 3.0] [--cores-frac 0.6]
           [--max-overhead 3.0] [--emit BENCH_shard.json]
"""

import argparse
import json
import os
import sys


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def int_segments(name):
    """Integer path segments of 'BM_Foo/1/4096/real_time' -> [1, 4096]."""
    out = []
    for seg in name.split("/")[1:]:
        try:
            out.append(int(seg))
        except ValueError:
            pass  # real_time / process_time suffixes
    return out


def items_per_sec(doc, bench, want):
    """items_per_second of the '<bench>/<want...>' entry, or None."""
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name", "")
        if not name.startswith(bench + "/"):
            continue
        if int_segments(name)[: len(want)] == list(want):
            ips = entry.get("items_per_second")
            return float(ips) if ips is not None else None
    return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path")
    ap.add_argument("--bench", default="BM_ShardedChurn")
    ap.add_argument("--classic-bench", default="BM_ClassicChurn")
    ap.add_argument("--n", type=int, default=4096,
                    help="world size the gate reads")
    ap.add_argument("--shards", default="1,2,4,8",
                    help="shard counts recorded in the summary")
    ap.add_argument("--top", type=int, default=8,
                    help="shard count the speedup gate compares against 1")
    ap.add_argument("--speedup-cap", type=float, default=3.0,
                    help="never require more than this speedup")
    ap.add_argument("--cores-frac", type=float, default=0.6,
                    help="required speedup = min(cap, frac * cpu_count)")
    ap.add_argument("--max-overhead", type=float, default=3.0,
                    help="largest allowed classic/(1-shard) throughput ratio")
    ap.add_argument("--emit", metavar="PATH",
                    help="write a condensed JSON summary")
    args = ap.parse_args()

    doc = load_doc(args.json_path)
    shard_counts = sorted(int(x) for x in args.shards.split(","))
    per_shard = {}
    for k in shard_counts:
        ips = items_per_sec(doc, args.bench, (k, args.n))
        if ips is not None:
            per_shard[k] = ips
            print(f"{args.bench}/{k}/{args.n}: {ips / 1e6:.3f}M actions/s")
    classic = items_per_sec(doc, args.classic_bench, (args.n,))
    if classic is not None:
        print(f"{args.classic_bench}/{args.n}: {classic / 1e6:.3f}M steps/s")

    cores = os.cpu_count() or 1
    ok = True
    speedup = None
    gate = "ok"

    if 1 not in per_shard:
        print(f"FAIL: no {args.bench}/1/{args.n} result to baseline against")
        return 1

    # 1. Speedup gate (multi-core only).
    if cores < 2:
        gate = "skipped (1 core)"
        print(f"SKIP: shard-scaling speedup gate skipped — this host has "
              f"{cores} core(s) and the gate needs at least 2 to measure "
              f"parallel speedup; recording the throughput curve only")
    elif args.top not in per_shard:
        print(f"FAIL: no {args.bench}/{args.top}/{args.n} result")
        ok = False
        gate = "missing top shard count"
    else:
        required = min(args.speedup_cap, args.cores_frac * cores)
        speedup = per_shard[args.top] / per_shard[1]
        print(f"speedup {args.top}-shard vs 1-shard: {speedup:.2f}x "
              f"(required {required:.2f}x on {cores} cores)")
        if speedup < required:
            print("FAIL: the sharded kernel does not scale — epoch barriers "
                  "or the serial epilogue are eating the parallel phases")
            ok = False
            gate = "failed"

    # 2. Overhead floor vs the classic engine (always).
    if classic is not None:
        overhead = classic / per_shard[1]
        print(f"classic vs 1-shard overhead: {overhead:.2f}x "
              f"(limit {args.max_overhead:.2f}x)")
        if overhead > args.max_overhead:
            print("FAIL: the 1-shard epoch engine costs too much over the "
                  "classic step loop — the epoch machinery regressed")
            ok = False
    else:
        print(f"WARN: no {args.classic_bench} result; overhead not checked")

    if args.emit:
        summary = {
            "schema": "fdp-shard-bench/1",
            "n": args.n,
            "cores": cores,
            "gate": gate if ok else "failed",
            # Explicit skip marker so downstream tooling does not have to
            # parse the gate string to tell "skipped" from "passed".
            "skipped": "1 core" if gate == "skipped (1 core)" else None,
            "actions_per_sec_per_shards": {
                str(k): round(v, 1) for k, v in sorted(per_shard.items())
            },
            "classic_steps_per_sec":
                round(classic, 1) if classic is not None else None,
            "speedup_top_vs_1":
                round(speedup, 3) if speedup is not None else None,
        }
        with open(args.emit, "w") as f:
            json.dump(summary, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.emit}")

    if ok:
        print("OK: shard-scaling checks passed"
              if gate == "ok" else f"OK: {gate}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
