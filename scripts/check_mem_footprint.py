#!/usr/bin/env python3
"""Gate the kernel's memory footprint and steady-state allocation rate.

Runs `bench_shard_scaling --campaign <n> <shards>` (or parses an existing
output file via --from-output), extracts the MEMJSON line (schema
fdp-mem-bench/1) and checks:

1. Bytes/process ceiling: capacity-mode world bytes per process must stay
   under --max-bytes-per-process. This is the ISSUE-9 diet gate — the
   pre-diet kernel sat at ~3.1 KB/process at every scale; the dieted
   kernel at ~2.2-2.3 KB. The default ceiling (2600) leaves ~13% headroom
   at smoke scale before the gate trips.

2. Allocation-free steady state: steady_allocs_per_action, measured by
   the counting operator-new hook over the campaign's final quarter of
   epochs, must not exceed --max-steady-allocs (default 0.001 — i.e.
   zero, modulo one-off high-water growth of pooled structures). The
   check requires the bench to have been built with the alloc hook
   (alloc_hook: true in MEMJSON); a hookless binary fails the gate
   because it cannot prove the property.

3. The campaign must converge (every leaving process departed).

With --merge PATH the MEMJSON record is folded into a BENCH_mem.json
document keyed by n under "runs" (other entries preserved), for CI
artifact upload or committing.

Usage:
  check_mem_footprint.py build/bench/bench_shard_scaling
      [--n 10000] [--shards 1]
      [--max-bytes-per-process 2600] [--max-steady-allocs 0.001]
      [--from-output PATH] [--merge BENCH_mem.json]
"""

import argparse
import json
import subprocess
import sys

MEMJSON_PREFIX = "MEMJSON "
SCHEMA = "fdp-mem-bench/1"


def extract_memjson(text):
    """The last MEMJSON record in `text`, or None."""
    rec = None
    for line in text.splitlines():
        line = line.strip()
        if line.startswith(MEMJSON_PREFIX):
            rec = json.loads(line[len(MEMJSON_PREFIX):])
    return rec


def merge_into(path, rec):
    """Fold `rec` into the BENCH_mem.json document at `path`, keyed by n."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        doc = {"schema": SCHEMA, "runs": {}}
    doc.setdefault("schema", SCHEMA)
    doc.setdefault("runs", {})
    doc["runs"][str(rec["n"])] = rec
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"merged n={rec['n']} into {path}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench", help="path to bench_shard_scaling")
    ap.add_argument("--n", type=int, default=10000,
                    help="campaign world size (smoke scale by default)")
    ap.add_argument("--shards", type=int, default=1)
    ap.add_argument("--max-bytes-per-process", type=float, default=2600.0,
                    help="capacity-mode footprint ceiling (gate 1)")
    ap.add_argument("--max-steady-allocs", type=float, default=0.001,
                    help="steady-state allocs per action ceiling (gate 2)")
    ap.add_argument("--from-output", metavar="PATH",
                    help="parse this bench output instead of running")
    ap.add_argument("--merge", metavar="PATH",
                    help="fold the MEMJSON record into this BENCH_mem.json")
    args = ap.parse_args()

    if args.from_output:
        with open(args.from_output) as f:
            text = f.read()
    else:
        cmd = [args.bench, "--campaign", str(args.n), str(args.shards)]
        print("+ " + " ".join(cmd))
        proc = subprocess.run(cmd, capture_output=True, text=True)
        text = proc.stdout + proc.stderr
        if proc.returncode != 0:
            sys.stdout.write(text)
            print(f"FAIL: bench exited with {proc.returncode}")
            return 1

    rec = extract_memjson(text)
    if rec is None:
        print("FAIL: no MEMJSON line in the bench output")
        return 1
    if rec.get("schema") != SCHEMA:
        print(f"FAIL: unexpected MEMJSON schema {rec.get('schema')!r} "
              f"(this checker speaks {SCHEMA})")
        return 1

    bpp = rec["bytes_per_process"]
    steady = rec["steady_allocs_per_action"]
    print(f"n={rec['n']} shards={rec['shards']}: "
          f"{bpp:.1f} B/process (live {rec['live_bytes_per_process']:.1f}), "
          f"peak RSS {rec['peak_rss_kb'] / 1024:.1f} MB, "
          f"{rec['actions_per_sec']} actions/s, "
          f"steady {steady:.4f} allocs/action")

    ok = True
    if not rec.get("converged", False):
        print("FAIL: campaign did not converge — footprint numbers are "
              "from an unfinished run and mean nothing")
        ok = False
    if bpp > args.max_bytes_per_process:
        print(f"FAIL: {bpp:.1f} bytes/process exceeds the "
              f"{args.max_bytes_per_process:.1f} ceiling — the memory diet "
              f"regressed (compact layouts, arena rows or channel slots)")
        ok = False
    if not rec.get("alloc_hook", False):
        print("FAIL: bench binary lacks the counting alloc hook; the "
              "steady-state gate cannot be verified (link fdp_alloc_hook)")
        ok = False
    elif steady > args.max_steady_allocs:
        print(f"FAIL: {steady:.4f} steady-state allocs/action exceeds "
              f"{args.max_steady_allocs} — a per-step heap allocation "
              f"crept back into the hot path (scratch buffers, timeout "
              f"snapshots, channel/arena growth)")
        ok = False

    if args.merge and ok:
        merge_into(args.merge, rec)

    print("OK: memory-footprint gates passed" if ok else
          "check_mem_footprint: FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
