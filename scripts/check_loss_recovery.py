#!/usr/bin/env python3
"""Gate the E14 chaos sweep and condense BENCH_loss.json.

Reads the --json output of bench_e14_loss (departures under deterministic
link shaping: loss x latency/jitter x overlay, with live crash-restarts)
and checks, per cell:

1. Liveness floor at recoverable loss: at every loss rate <= --max-loss
   (default 10%), ALL departures must complete. The retransmit ledger is
   supposed to out-wait any bounded loss rate; a stuck leaver here means
   recovery is broken, not that the network was unlucky.

2. Safety everywhere: 0 safety violations and 0 wire errors at EVERY
   loss rate, including the ones above the liveness floor — chaos may
   delay the protocol, never corrupt it.

3. Bounded retransmit amplification: retransmits per dropped datagram
   <= --max-ratio (default 4.0) at recoverable loss rates. ~1 means each
   destroyed datagram cost one retry; headroom above that covers backoff
   re-fires and multiple coalesced frames re-queued for one unlucky
   datagram. Recovery must not turn a lossy link into a send storm.

4. Zero give-ups: no cell opens a partition window, so the retransmit
   ceiling (high enough that exhausting it by chance is a ~1e-21 event
   per frame at 20% loss) must never trip.

5. Crash recovery: when crash-restarts were injected, every perturbation
   tracked by the RecoveryMonitor must re-reach legitimacy at loss rates
   <= --max-loss.

With --emit PATH, writes the condensed summary (gate verdict + all sweep
rows) for CI artifact upload / committing as BENCH_loss.json.

Usage: check_loss_recovery.py e14_loss.json
           [--max-loss 10] [--max-ratio 4.0] [--emit BENCH_loss.json]
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path", help="bench_e14_loss --json output")
    ap.add_argument("--max-loss", type=float, default=10.0,
                    help="highest loss %% at which liveness is gated")
    ap.add_argument("--max-ratio", type=float, default=4.0,
                    help="retransmits-per-dropped-datagram ceiling at "
                         "gated loss")
    ap.add_argument("--emit", metavar="PATH",
                    help="write a condensed JSON summary")
    args = ap.parse_args()

    with open(args.json_path) as f:
        doc = json.load(f)
    cells = doc.get("results", [])
    if not cells:
        print("FAIL: no sweep cells in", args.json_path)
        return 1

    ok = True
    for c in cells:
        label = (f"{c['overlay']} loss={c['loss_pct']:.0f}% "
                 f"lat={c['latency']}/{c['jitter']}")
        gated = c["loss_pct"] <= args.max_loss
        print(f"{label}: exits {c['exits']}/{c['leaving']}"
              f"{'' if c['departures_done'] else ' STUCK'}, "
              f"{c['safety_violations']} violations, "
              f"{c['wire_errors']} wire errors, "
              f"rtx ratio {c['retransmit_ratio']:.3f}, "
              f"gave up {c['gave_up']}, "
              f"recovered {c['recovered']}/{c['injected']}")

        if c["safety_violations"] != 0 or c["wire_errors"] != 0:
            print(f"FAIL: {label}: chaos corrupted the protocol "
                  f"(safety/wire errors must be 0 at any loss rate)")
            ok = False
        if c["gave_up"] != 0:
            print(f"FAIL: {label}: retransmit ceiling tripped in a "
                  f"non-partition run — a runtime bug, not bad luck")
            ok = False
        if not gated:
            continue
        if not c["departures_done"]:
            print(f"FAIL: {label}: departures stuck at recoverable loss "
                  f"(<= {args.max_loss:.0f}%)")
            ok = False
        if c["retransmit_ratio"] > args.max_ratio:
            print(f"FAIL: {label}: amplification {c['retransmit_ratio']:.3f} "
                  f"> {args.max_ratio} — recovery is a send storm")
            ok = False
        if c["recovered"] != c["injected"]:
            print(f"FAIL: {label}: {c['injected'] - c['recovered']} "
                  f"perturbations never re-reached legitimacy")
            ok = False

    if args.emit:
        summary = {
            "schema": "fdp-loss-bench/1",
            "gate": "ok" if ok else "failed",
            "max_loss_pct": args.max_loss,
            "max_retransmit_ratio": args.max_ratio,
            "transport": doc.get("transport"),
            "n": doc.get("n"),
            "seeds": doc.get("seeds"),
            "crashes_per_trial": doc.get("crashes_per_trial"),
            "sweep": cells,
        }
        with open(args.emit, "w") as f:
            json.dump(summary, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.emit}")

    if ok:
        print("OK: loss-recovery checks passed")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
