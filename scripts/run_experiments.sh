#!/usr/bin/env bash
# Regenerate every experiment table from EXPERIMENTS.md.
#
# The E1–E8 benches fan their seed sweeps across the ExperimentDriver's
# worker pool; --workers picks the pool size (0 = one per hardware core).
# Worker count changes wall-clock only — every table is byte-identical
# for any value, so regenerated outputs diff cleanly.
#
# Usage: scripts/run_experiments.sh [build-dir] [output-file] [workers]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"
WORKERS="${3:-0}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR' does not look like a configured build tree" >&2
  echo "hint: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

{
  for b in "$BUILD_DIR"/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "##### $b"
    case "$(basename "$b")" in
      # The driver-based benches accept --workers; the model checker and
      # the single-kernel microbench are inherently serial.
      bench_e[1-8]_*) "$b" --workers "$WORKERS" ;;
      *) "$b" ;;
    esac
    echo "exit=$?"
  done
} 2>&1 | tee "$OUT"

echo
echo "full output written to $OUT"
