#!/usr/bin/env bash
# Regenerate every experiment table from EXPERIMENTS.md.
#
# Usage: scripts/run_experiments.sh [build-dir] [output-file]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR' does not look like a configured build tree" >&2
  echo "hint: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

{
  for b in "$BUILD_DIR"/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "##### $b"
    "$b"
    echo "exit=$?"
  done
} 2>&1 | tee "$OUT"

echo
echo "full output written to $OUT"
