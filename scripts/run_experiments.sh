#!/usr/bin/env bash
# Regenerate every experiment table from EXPERIMENTS.md.
#
# The driver-based benches fan their seed sweeps across the
# ExperimentDriver's worker pool; --workers picks the pool size (0 = one
# per hardware core). Worker count changes wall-clock only — every table
# is byte-identical for any value, so regenerated outputs diff cleanly.
#
# Usage: scripts/run_experiments.sh [build-dir] [output-file] [workers]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"
WORKERS="${3:-0}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR' does not look like a configured build tree" >&2
  echo "hint: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

# The experiment suite is a fixed set: a missing binary means a broken or
# stale build, and silently skipping it would regenerate an incomplete
# EXPERIMENTS.md. Fail fast instead.
EXPECTED=(
  bench_e1_primitives
  bench_e2_universality
  bench_e3_necessity
  bench_e4_fdp
  bench_e5_baseline
  bench_e6_embedding
  bench_e7_fsp
  bench_e8_oracles
  bench_e10_recovery
  bench_e13_live
  bench_e14_loss
  bench_net_throughput
  bench_modelcheck
  bench_micro_kernel
)
missing=0
for name in "${EXPECTED[@]}"; do
  if [ ! -x "$BUILD_DIR/bench/$name" ]; then
    echo "error: expected bench binary '$BUILD_DIR/bench/$name' is missing or not executable" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo "hint: rebuild with: cmake --build '$BUILD_DIR'" >&2
  exit 1
fi

{
  for name in "${EXPECTED[@]}"; do
    b="$BUILD_DIR/bench/$name"
    echo "##### $b"
    case "$name" in
      # The driver-based benches accept --workers; the model checker and
      # the single-kernel microbench are inherently serial.
      bench_e[0-9]*_*) "$b" --workers "$WORKERS" ;;
      *) "$b" ;;
    esac
    echo "exit=$?"
  done
} 2>&1 | tee "$OUT"

echo
echo "full output written to $OUT"
