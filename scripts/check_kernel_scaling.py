#!/usr/bin/env python3
"""Gate kernel per-step cost on world size.

Reads google-benchmark JSON (--benchmark_format=json) and checks that
BM_WorldStep's per-iteration time stays essentially flat as n grows: the
maintained world indices promise per-step cost independent of world size,
so time(n=4096) must stay within --max-ratio of time(n=16). A linear
kernel regression (any O(n) scan creeping back into the hot path) shows
up as a ~256x ratio and fails loudly.

Usage: check_kernel_scaling.py BENCH_kernel.json
           [--bench BM_WorldStep] [--ns 16,256,4096] [--max-ratio 2.0]
"""

import argparse
import json
import sys


def load_times(path, bench):
    """name -> cpu time in ns for every '<bench>/<n>' entry."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name", "")
        prefix = bench + "/"
        if not name.startswith(prefix):
            continue
        try:
            n = int(name[len(prefix):].split("/")[0])
        except ValueError:
            continue
        unit = entry.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        times[n] = float(entry["cpu_time"]) * scale
    return times


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path")
    ap.add_argument("--bench", default="BM_WorldStep")
    ap.add_argument("--ns", default="16,256,4096",
                    help="comma-separated world sizes to compare")
    ap.add_argument("--max-ratio", type=float, default=2.0,
                    help="largest allowed time(max n) / time(min n)")
    args = ap.parse_args()

    ns = sorted(int(x) for x in args.ns.split(","))
    times = load_times(args.json_path, args.bench)
    missing = [n for n in ns if n not in times]
    if missing:
        print(f"FAIL: {args.json_path} has no {args.bench} results for "
              f"n={missing} (have n={sorted(times)})")
        return 1

    for n in ns:
        print(f"{args.bench}/{n}: {times[n]:.1f} ns/step")

    base, top = times[ns[0]], times[ns[-1]]
    ratio = top / base
    print(f"ratio n={ns[-1]} vs n={ns[0]}: {ratio:.2f}x "
          f"(limit {args.max_ratio:.2f}x)")
    if ratio > args.max_ratio:
        print(f"FAIL: per-step cost grows with world size — some O(n) scan "
              f"is back on the hot path")
        return 1

    # Also reject super-linear blowup between adjacent sampled sizes, so a
    # regression localized to mid-range n cannot hide behind a fast top end.
    for lo, hi in zip(ns, ns[1:]):
        growth = times[hi] / times[lo]
        if growth > args.max_ratio:
            print(f"FAIL: step time grows {growth:.2f}x from n={lo} to "
                  f"n={hi} (limit {args.max_ratio:.2f}x)")
            return 1

    print("OK: per-step kernel cost is flat in world size")
    return 0


if __name__ == "__main__":
    sys.exit(main())
