#!/usr/bin/env python3
"""Gate kernel per-step cost on world size and allocation budget.

Reads google-benchmark JSON (--benchmark_format=json) and checks:

1. Scaling: BM_WorldStep's per-iteration time stays essentially flat as
   n grows. The maintained world indices promise per-step cost
   independent of world size, so time(n=4096) must stay within
   --max-ratio of time(n=16). A linear kernel regression (any O(n) scan
   creeping back into the hot path) shows up as a ~256x ratio and fails
   loudly.

2. Allocation budget: BM_WorldStepAllocs reports the counted heap
   allocations per step in the steady state (after warm-up). The hot
   path is designed to be allocation-free — channel slots, message ref
   buffers, and all world indices reuse high-water-mark storage — so
   allocs_per_step must stay below --max-allocs (default 0.001, i.e.
   at most one residual allocation per thousand steps; the only
   tolerated source is residual capacity growth in long-lived tables).
   The alloc_hook counter must equal 1, proving the counting
   operator new/delete was actually linked in; otherwise the check
   would pass vacuously.

With --emit PATH, also writes a condensed machine-readable summary
(ns/step per n, allocs/step, steps/sec) for CI artifact upload.

Usage: check_kernel_scaling.py bench_output.json
           [--bench BM_WorldStep] [--ns 16,256,4096] [--max-ratio 2.0]
           [--allocs-bench BM_WorldStepAllocs] [--max-allocs 0.001]
           [--skip-allocs] [--emit BENCH_kernel.json]
"""

import argparse
import json
import sys


def load_entries(path, bench):
    """name -> benchmark entry for every '<bench>/<n>' result."""
    with open(path) as f:
        doc = json.load(f)
    entries = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name", "")
        prefix = bench + "/"
        if not name.startswith(prefix):
            continue
        try:
            n = int(name[len(prefix):].split("/")[0])
        except ValueError:
            continue
        entries[n] = entry
    return entries


def cpu_ns(entry):
    unit = entry.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return float(entry["cpu_time"]) * scale


def check_scaling(entries, ns, bench, max_ratio):
    missing = [n for n in ns if n not in entries]
    if missing:
        print(f"FAIL: no {bench} results for n={missing} "
              f"(have n={sorted(entries)})")
        return False

    for n in ns:
        print(f"{bench}/{n}: {cpu_ns(entries[n]):.1f} ns/step")

    base, top = cpu_ns(entries[ns[0]]), cpu_ns(entries[ns[-1]])
    ratio = top / base
    print(f"ratio n={ns[-1]} vs n={ns[0]}: {ratio:.2f}x "
          f"(limit {max_ratio:.2f}x)")
    if ratio > max_ratio:
        print("FAIL: per-step cost grows with world size — some O(n) scan "
              "is back on the hot path")
        return False

    # Also reject super-linear blowup between adjacent sampled sizes, so a
    # regression localized to mid-range n cannot hide behind a fast top end.
    for lo, hi in zip(ns, ns[1:]):
        growth = cpu_ns(entries[hi]) / cpu_ns(entries[lo])
        if growth > max_ratio:
            print(f"FAIL: step time grows {growth:.2f}x from n={lo} to "
                  f"n={hi} (limit {max_ratio:.2f}x)")
            return False

    print("OK: per-step kernel cost is flat in world size")
    return True


def check_allocs(entries, bench, max_allocs):
    if not entries:
        print(f"FAIL: no {bench} results — the allocation budget was not "
              f"measured (was the benchmark filter too narrow?)")
        return False

    ok = True
    for n in sorted(entries):
        entry = entries[n]
        hook = entry.get("alloc_hook")
        allocs = entry.get("allocs_per_step")
        if hook != 1.0:
            print(f"FAIL: {bench}/{n}: alloc_hook={hook!r} — counting "
                  f"operator new/delete not linked; allocs/step is "
                  f"meaningless")
            ok = False
            continue
        if allocs is None:
            print(f"FAIL: {bench}/{n}: no allocs_per_step counter")
            ok = False
            continue
        verdict = "OK" if allocs <= max_allocs else "FAIL"
        print(f"{verdict}: {bench}/{n}: {allocs:.6f} allocs/step "
              f"(budget {max_allocs})")
        if allocs > max_allocs:
            print("      steady-state heap allocation crept back into the "
                  "hot path (Message refs spilling? channel slots not "
                  "pooled? scratch buffer freed per step?)")
            ok = False
    if ok:
        print("OK: steady-state hot path is allocation-free")
    return ok


def emit_summary(path, step_entries, alloc_entries, ns):
    summary = {
        "schema": "fdp-kernel-bench/1",
        "per_n": {},
    }
    for n in ns:
        row = {}
        if n in step_entries:
            t = cpu_ns(step_entries[n])
            row["ns_per_step"] = round(t, 3)
            row["steps_per_sec"] = round(1e9 / t, 1) if t > 0 else None
        if n in alloc_entries:
            row["allocs_per_step"] = alloc_entries[n].get("allocs_per_step")
            row["alloc_hook"] = alloc_entries[n].get("alloc_hook")
        summary["per_n"][str(n)] = row
    with open(path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {path}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path")
    ap.add_argument("--bench", default="BM_WorldStep")
    ap.add_argument("--ns", default="16,256,4096",
                    help="comma-separated world sizes to compare")
    ap.add_argument("--max-ratio", type=float, default=2.0,
                    help="largest allowed time(max n) / time(min n)")
    ap.add_argument("--allocs-bench", default="BM_WorldStepAllocs")
    ap.add_argument("--max-allocs", type=float, default=0.001,
                    help="largest allowed steady-state allocations per step")
    ap.add_argument("--skip-allocs", action="store_true",
                    help="only check scaling, not the allocation budget")
    ap.add_argument("--emit", metavar="PATH",
                    help="write a condensed JSON summary (CI artifact)")
    args = ap.parse_args()

    ns = sorted(int(x) for x in args.ns.split(","))
    step_entries = load_entries(args.json_path, args.bench)
    alloc_entries = load_entries(args.json_path, args.allocs_bench)

    ok = check_scaling(step_entries, ns, args.bench, args.max_ratio)
    if not args.skip_allocs:
        ok = check_allocs(alloc_entries, args.allocs_bench,
                          args.max_allocs) and ok

    if args.emit:
        emit_ns = sorted(set(ns) | set(alloc_entries))
        emit_summary(args.emit, step_entries, alloc_entries, emit_ns)

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
