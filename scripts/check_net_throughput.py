#!/usr/bin/env python3
"""Gate the live-substrate batched hot path and condense BENCH_net.json.

Reads the --json output of bench_net_throughput and (optionally) the
--sweep output of bench_e13_live, then checks:

1. Throughput: batched UDP (sendmmsg/recvmmsg + same-destination frame
   coalescing) must deliver at least --min-speedup x the frames/sec of
   the per-frame baseline ("udp-nobatch") at the same n. When the box
   has no sendmmsg (mmsg_supported false in the bench JSON), the check
   is SKIPPED (marker "skipped (no sendmmsg)") — the portable path is
   the only path — but the summary is still emitted.

2. Zero-allocation pump: the batched configs must report 0 steady-state
   allocations when the alloc hook is linked (alloc_hooked true).

3. Sweep safety floor (only when --sweep is given): every sweep cell
   must complete all departures with 0 safety violations and 0 wire
   errors — scale and speed never buy back correctness.

With --emit PATH, writes the condensed summary (throughput per config,
speedup, sweep rows, gate verdicts) for CI artifact upload / committing
as BENCH_net.json.

Usage: check_net_throughput.py net_throughput.json
           [--sweep e13_sweep.json] [--min-speedup 2.0]
           [--emit BENCH_net.json]
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def by_config(results):
    """{(transport, batching): result} — last entry wins."""
    return {(r["transport"], bool(r["batching"])): r for r in results}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path", help="bench_net_throughput --json output")
    ap.add_argument("--sweep", metavar="PATH",
                    help="bench_e13_live --sweep output")
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="required batched/unbatched frames/sec ratio")
    ap.add_argument("--emit", metavar="PATH",
                    help="write a condensed JSON summary")
    args = ap.parse_args()

    doc = load_doc(args.json_path)
    configs = by_config(doc.get("results", []))
    mmsg = bool(doc.get("mmsg_supported", False))

    for (transport, batching), r in sorted(configs.items()):
        print(f"{transport:12s} batching={str(batching).lower():5s} "
              f"{r['frames_per_sec'] / 1e3:9.1f}k frames/s  "
              f"{r['syscalls_per_frame']:.3f} syscalls/frame  "
              f"{r['steady_allocs']} allocs")

    ok = True
    speedup = None
    gate = "ok"

    # 1. Throughput gate: batched vs the per-frame baseline.
    batched = configs.get(("udp", True))
    baseline = configs.get(("udp-nobatch", False))
    if not mmsg:
        gate = "skipped (no sendmmsg)"
        print("SKIP: throughput gate skipped (no sendmmsg on this kernel) — "
              "recording the numbers only")
    elif batched is None or baseline is None:
        print("FAIL: need both 'udp' (batched) and 'udp-nobatch' results")
        ok = False
        gate = "missing configs"
    else:
        speedup = batched["frames_per_sec"] / baseline["frames_per_sec"]
        print(f"speedup batched vs per-frame: {speedup:.2f}x "
              f"(required {args.min_speedup:.2f}x at n={batched['n']})")
        if speedup < args.min_speedup:
            print("FAIL: batching does not pay — coalescing or mmsg batching "
                  "regressed on the flush/drain path")
            ok = False
            gate = "failed"

    # 2. Zero-allocation steady state.
    for key in (("mem", False), ("udp", True)):
        r = configs.get(key)
        if r is None:
            continue
        if not r.get("alloc_hooked", False):
            print(f"WARN: alloc hook absent in {key[0]}; allocs not checked")
        elif r["steady_allocs"] != 0:
            print(f"FAIL: {key[0]} pump allocated {r['steady_allocs']} times "
                  f"in steady state (contract: 0)")
            ok = False

    # 3. Sweep safety floor.
    sweep = None
    if args.sweep:
        sweep = load_doc(args.sweep)
        for cell in sweep.get("results", []):
            label = f"n={cell['n']} batching={cell['batching']}"
            print(f"sweep {label}: exits {cell['exits']}/{cell['leaving']}, "
                  f"{cell['safety_violations']} violations, "
                  f"{cell['wire_errors']} wire errors, "
                  f"{cell['frames_per_sec'] / 1e3:.1f}k frames/s")
            if (not cell["departures_done"]
                    or cell["safety_violations"] != 0
                    or cell["wire_errors"] != 0):
                print(f"FAIL: sweep cell {label} broke the safety floor")
                ok = False
            # No partition windows exist in E13, so a retransmit give-up is
            # a runtime bug (ceiling too low or a frame stuck in the
            # ledger), never bad luck.
            if cell.get("retransmit_gave_up", 0) != 0:
                print(f"FAIL: sweep cell {label} gave up on "
                      f"{cell['retransmit_gave_up']} retransmits in a "
                      f"non-partition run")
                ok = False

    if args.emit:
        summary = {
            "schema": "fdp-net-bench/1",
            "mmsg_supported": mmsg,
            "gate": gate if ok else "failed",
            # Machine-readable skip marker, mirroring check_shard_scaling's
            # "skipped": "1 core" convention: a box without sendmmsg records
            # numbers but never compares them.
            "skipped": "no sendmmsg" if gate == "skipped (no sendmmsg)"
                       else None,
            "min_speedup": args.min_speedup,
            "speedup_batched_vs_per_frame":
                round(speedup, 3) if speedup is not None else None,
            "throughput": doc.get("results", []),
            "e13_sweep": sweep.get("results", []) if sweep else None,
        }
        with open(args.emit, "w") as f:
            json.dump(summary, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.emit}")

    if ok:
        print("OK: net-throughput checks passed"
              if gate == "ok" else f"OK: {gate}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
