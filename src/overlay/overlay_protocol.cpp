#include "overlay/overlay_protocol.hpp"

#include "util/check.hpp"

namespace fdp {

OverlayProtocol::~OverlayProtocol() = default;

void OverlayProtocol::bind(Ref self, std::uint64_t key) {
  self_ = self;
  key_ = key;
  nbrs_.emplace(self);
}

NeighborSet& OverlayProtocol::store() {
  FDP_CHECK_MSG(nbrs_.has_value(), "overlay used before bind()");
  return *nbrs_;
}

const NeighborSet& OverlayProtocol::store() const {
  FDP_CHECK_MSG(nbrs_.has_value(), "overlay used before bind()");
  return *nbrs_;
}

void OverlayProtocol::on_overlay_message(OverlayCtx& ctx, std::uint32_t tag,
                                         std::span<const RefInfo> refs,
                                         std::uint64_t token) {
  if (tag == kTagLookup) {
    serve_lookup(ctx, refs, token);
    return;
  }
  // Hit/Miss answers (the resolver's reference coming home to the access
  // node) and every structural tag: integrate — the conservative default
  // that never destroys references.
  (void)ctx;
  for (const RefInfo& r : refs) integrate(r);
}

Ref OverlayProtocol::lookup_next_hop(std::uint64_t target) const {
  const auto dist = [target](std::uint64_t k) {
    return k > target ? k - target : target - k;
  };
  std::uint64_t best = dist(key());
  Ref next;  // invalid: we are the closest we know
  for (const RefInfo& r : stored()) {
    if (r.ref == self() || r.mode == ModeInfo::Leaving) continue;
    const std::uint64_t d = dist(r.key);
    if (d < best) {
      best = d;
      next = r.ref;
    }
  }
  return next;
}

void OverlayProtocol::serve_lookup(OverlayCtx& ctx,
                                   std::span<const RefInfo> refs,
                                   std::uint64_t target) {
  // refs[0] is the requester; a frame without it has nothing to answer.
  if (refs.empty()) return;
  const RefInfo requester = refs[0];
  // Any extra references (duplicated or adversarially merged frames):
  // integrate rather than destroy.
  for (std::size_t i = 1; i < refs.size(); ++i) integrate(refs[i]);
  const Ref next = lookup_next_hop(target);
  if (next.valid()) {
    // Delegation one hop closer: the requester's in-flight copy moves on.
    ctx.send_overlay(next, kTagLookup, {requester}, target);
    return;
  }
  // We are the resolver. Keep the requester's reference (the client
  // becomes a neighbor instead of its copy being dropped) and answer —
  // also on requester == self, so an access node resolving its own
  // request still emits the Hit/Miss delivery the workload layer counts.
  if (requester.ref != self()) integrate(requester);
  const std::uint32_t verdict =
      key() == target ? kTagLookupHit : kTagLookupMiss;
  ctx.send_overlay(requester.ref, verdict, {ctx.self_info()}, target);
}

void OverlayProtocol::integrate(const RefInfo& r) { store().insert(r); }

bool OverlayProtocol::remove(Ref r) { return store().erase(r); }

void OverlayProtocol::update_mode(Ref r, ModeInfo m) {
  if (store().contains(r)) store().set_mode(r, m);
}

std::vector<RefInfo> OverlayProtocol::stored() const {
  return store().snapshot();
}

std::vector<RefInfo> OverlayProtocol::take_all() {
  std::vector<RefInfo> out = store().snapshot();
  store().clear();
  return out;
}

bool OverlayProtocol::empty() const { return store().empty(); }

}  // namespace fdp
