#include "overlay/overlay_protocol.hpp"

#include "util/check.hpp"

namespace fdp {

OverlayProtocol::~OverlayProtocol() = default;

void OverlayProtocol::bind(Ref self, std::uint64_t key) {
  self_ = self;
  key_ = key;
  nbrs_.emplace(self);
}

NeighborSet& OverlayProtocol::store() {
  FDP_CHECK_MSG(nbrs_.has_value(), "overlay used before bind()");
  return *nbrs_;
}

const NeighborSet& OverlayProtocol::store() const {
  FDP_CHECK_MSG(nbrs_.has_value(), "overlay used before bind()");
  return *nbrs_;
}

void OverlayProtocol::on_overlay_message(OverlayCtx& ctx, std::uint32_t tag,
                                         std::span<const RefInfo> refs) {
  (void)ctx;
  (void)tag;
  for (const RefInfo& r : refs) integrate(r);
}

void OverlayProtocol::integrate(const RefInfo& r) { store().insert(r); }

bool OverlayProtocol::remove(Ref r) { return store().erase(r); }

void OverlayProtocol::update_mode(Ref r, ModeInfo m) {
  if (store().contains(r)) store().set_mode(r, m);
}

std::vector<RefInfo> OverlayProtocol::stored() const {
  return store().snapshot();
}

std::vector<RefInfo> OverlayProtocol::take_all() {
  std::vector<RefInfo> out = store().snapshot();
  store().clear();
  return out;
}

bool OverlayProtocol::empty() const { return store().empty(); }

}  // namespace fdp
