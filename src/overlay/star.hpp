// Self-stabilizing min-star.
//
// The legitimate topology is a star centered at the process with the
// globally smallest key: the center stores everyone, everyone else stores
// exactly the center. A miniature "supervised overlay" pattern — useful in
// experiments as the topology with maximal asymmetry (the center's degree
// is n-1 while everyone else has degree 1, so departures of the center
// exercise the worst case of the departure protocol).
//
// Maintenance rule: let m be the smallest-key stored reference. If my own
// key is smaller than m's, keep everything (I believe I am the center).
// Otherwise keep m and delegate every other reference to m — knowledge of
// the true minimum spreads monotonically, so the star emerges. Pure
// Introduction/Delegation/Fusion: a member of 𝒫.
#pragma once

#include "overlay/overlay_protocol.hpp"

namespace fdp {

class StarOverlay final : public OverlayProtocol {
 public:
  [[nodiscard]] const char* name() const override { return "star"; }
  void maintain(OverlayCtx& ctx) override;
  /// The believed center introduces itself to everyone; everyone else
  /// only to its believed center.
  [[nodiscard]] std::vector<RefInfo> introduction_targets() const override;
};

}  // namespace fdp
