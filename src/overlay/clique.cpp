#include "overlay/clique.hpp"

namespace fdp {

void CliqueOverlay::maintain(OverlayCtx& ctx) {
  const std::vector<RefInfo> all = stored();
  // Introduce every neighbor to every other neighbor (all ordered pairs;
  // the host's self-introduction covers the self case).
  for (const RefInfo& v : all) {
    for (const RefInfo& w : all) {
      if (v.ref == w.ref) continue;
      introduce(ctx, v.ref, w);
    }
  }
}

}  // namespace fdp
