#include "overlay/skiplist.hpp"

#include <algorithm>

namespace fdp {

void SkipListOverlay::maintain(OverlayCtx& ctx) {
  // --- slot hygiene: evict anything that cannot be a level-1 neighbor
  // (wrong side, short, or equal key — possible only in corrupted
  // states); evicted references rejoin the level-0 flow. ---
  auto sanitize = [&](std::optional<RefInfo>& slot, bool is_left) {
    if (!slot) return;
    const bool ok = slot->ref != self() && skip_is_tall(slot->key) &&
                    (is_left ? slot->key < key() : slot->key > key());
    if (!ok || !skip_is_tall(key())) {
      if (slot->ref != self()) store().insert(*slot);
      slot.reset();
    }
  };
  sanitize(l1_left_, true);
  sanitize(l1_right_, false);

  // --- level 0: linearization. The chain includes the slot references
  // as waypoints (they are level-0 neighbors too), but only base-storage
  // references are ever delegated; the closest one per side is kept. ---
  struct Item {
    RefInfo ref;
    bool slot;
  };
  std::vector<Item> left, right;
  for (const RefInfo& r : store().snapshot()) {
    if (r.key < key()) left.push_back({r, false});
    else if (r.key > key()) right.push_back({r, false});
  }
  if (l1_left_) left.push_back({*l1_left_, true});
  if (l1_right_) right.push_back({*l1_right_, true});
  auto item_less = [](const Item& a, const Item& b) {
    return a.ref.key < b.ref.key;
  };
  std::sort(left.begin(), left.end(), item_less);
  std::sort(right.begin(), right.end(), item_less);
  for (std::size_t i = 0; i + 1 < left.size(); ++i) {
    if (!left[i].slot) delegate(ctx, left[i + 1].ref.ref, left[i].ref);
  }
  for (std::size_t j = right.size(); j > 1; --j) {
    if (!right[j - 1].slot)
      delegate(ctx, right[j - 2].ref.ref, right[j - 1].ref);
  }

  // --- level 1: periodic routed launches (tall processes only) ---
  if (!skip_is_tall(key())) return;
  if (++maintain_count_ % kLaunchEvery != 0) return;
  const RefInfo me{self(), ModeInfo::Unknown, key()};
  if (!left.empty())
    ctx.send_overlay(left.back().ref.ref, kTagTallLeft, {me});
  if (!right.empty())
    ctx.send_overlay(right.front().ref.ref, kTagTallRight, {me});
}

void SkipListOverlay::slot_candidate(std::optional<RefInfo>& slot,
                                     const RefInfo& r) {
  if (slot && slot->ref == r.ref) {
    slot->mode = r.mode;  // fusion
    return;
  }
  const bool closer_left = slot && r.key < key() && r.key > slot->key;
  const bool closer_right = slot && r.key > key() && r.key < slot->key;
  if (!slot || closer_left || closer_right) {
    if (slot) store().insert(*slot);  // displaced: rejoin level 0
    slot = r;
  } else {
    store().insert(r);  // farther than the current candidate
  }
}

void SkipListOverlay::handle_transit(OverlayCtx& ctx, const RefInfo& r,
                                     bool leftward) {
  if (r.ref == self() || r.key == key()) return;  // own ref: drop
  if (skip_is_tall(key())) {
    // First tall process on the travel path: level-1 neighbor candidate.
    // The travel direction tells us which side the origin lies on.
    // Additionally heal the level-0 span: if we know a process strictly
    // BETWEEN us and the candidate, it needs to meet the candidate (we
    // will keep the candidate in a slot, so nothing else would ever
    // deliver that knowledge). Introduce (copy) the candidate to the
    // in-between process closest to it; at convergence that process is
    // the candidate's own level-0 neighbor and the copy just fuses.
    RefInfo between;
    for (const RefInfo& s : store().snapshot()) {
      const bool in_span = r.key > key() ? (s.key > key() && s.key < r.key)
                                         : (s.key < key() && s.key > r.key);
      if (!in_span) continue;
      const bool closer_to_r =
          r.key > key() ? (!between.ref.valid() || s.key > between.key)
                        : (!between.ref.valid() || s.key < between.key);
      if (closer_to_r) between = s;
    }
    if (between.ref.valid()) {
      ctx.send_overlay(between.ref, kTagDeliverRef, {r});
    }
    if (leftward && r.key > key()) {
      slot_candidate(l1_right_, r);
    } else if (!leftward && r.key < key()) {
      slot_candidate(l1_left_, r);
    } else {
      store().insert(r);  // inconsistent direction: plain level-0 info
    }
    return;
  }
  // Short: forward onward without storing.
  RefInfo next;
  for (const RefInfo& s : store().snapshot()) {
    if (leftward && s.key < key()) {
      if (!next.ref.valid() || s.key > next.key) next = s;
    } else if (!leftward && s.key > key()) {
      if (!next.ref.valid() || s.key < next.key) next = s;
    }
  }
  if (next.ref.valid()) {
    ctx.send_overlay(next.ref, leftward ? kTagTallLeft : kTagTallRight, {r});
  } else {
    // Dead end: return the reference to its owner, who discards its own
    // reference for free.
    ctx.send_overlay(r.ref, kTagDeliverRef, {r});
  }
}

void SkipListOverlay::integrate(const RefInfo& r) {
  // Tall-to-tall references belong in the level-1 slots: a level-1
  // neighbor's periodic self-introduction must not pollute the level-0
  // flow (slot_candidate pushes farther candidates into level 0 itself).
  if (r.ref != self() && skip_is_tall(key()) && skip_is_tall(r.key) &&
      r.key != key()) {
    slot_candidate(r.key < key() ? l1_left_ : l1_right_, r);
    return;
  }
  OverlayProtocol::integrate(r);
}

void SkipListOverlay::on_overlay_message(OverlayCtx& ctx, std::uint32_t tag,
                                         std::span<const RefInfo> refs,
                                         std::uint64_t token) {
  if (tag == kTagTallLeft || tag == kTagTallRight) {
    for (const RefInfo& r : refs) handle_transit(ctx, r, tag == kTagTallLeft);
    return;
  }
  OverlayProtocol::on_overlay_message(ctx, tag, refs, token);
}

std::vector<RefInfo> SkipListOverlay::introduction_targets() const {
  // Kept set: closest level-0 neighbor per side (the slot reference may
  // be exactly that) plus the level-1 slots.
  RefInfo l0_left, l0_right;
  for (const RefInfo& r : stored()) {  // base storage AND slots
    if (r.key < key()) {
      if (!l0_left.ref.valid() || r.key > l0_left.key) l0_left = r;
    } else if (r.key > key()) {
      if (!l0_right.ref.valid() || r.key < l0_right.key) l0_right = r;
    }
  }
  std::vector<RefInfo> out;
  auto add = [&out](const RefInfo& r) {
    if (!r.ref.valid()) return;
    for (const RefInfo& x : out)
      if (x.ref == r.ref) return;
    out.push_back(r);
  };
  add(l0_left);
  add(l0_right);
  if (l1_left_) add(*l1_left_);
  if (l1_right_) add(*l1_right_);
  return out;
}

bool SkipListOverlay::remove(Ref r) {
  bool removed = OverlayProtocol::remove(r);
  if (l1_left_ && l1_left_->ref == r) {
    l1_left_.reset();
    removed = true;
  }
  if (l1_right_ && l1_right_->ref == r) {
    l1_right_.reset();
    removed = true;
  }
  return removed;
}

void SkipListOverlay::update_mode(Ref r, ModeInfo m) {
  OverlayProtocol::update_mode(r, m);
  if (l1_left_ && l1_left_->ref == r) l1_left_->mode = m;
  if (l1_right_ && l1_right_->ref == r) l1_right_->mode = m;
}

std::vector<RefInfo> SkipListOverlay::stored() const {
  std::vector<RefInfo> out = OverlayProtocol::stored();
  if (l1_left_) out.push_back(*l1_left_);
  if (l1_right_) out.push_back(*l1_right_);
  return out;
}

std::vector<RefInfo> SkipListOverlay::take_all() {
  std::vector<RefInfo> out = OverlayProtocol::take_all();
  if (l1_left_) {
    out.push_back(*l1_left_);
    l1_left_.reset();
  }
  if (l1_right_) {
    out.push_back(*l1_right_);
    l1_right_.reset();
  }
  return out;
}

bool SkipListOverlay::empty() const {
  return OverlayProtocol::empty() && !l1_left_ && !l1_right_;
}

}  // namespace fdp
