#include "overlay/topology_checks.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "core/framework.hpp"
#include "overlay/clique.hpp"
#include "overlay/linearization.hpp"
#include "overlay/ring.hpp"
#include "overlay/skiplist.hpp"
#include "overlay/star.hpp"
#include "sim/process.hpp"
#include "sim/substrate.hpp"
#include "util/check.hpp"

namespace fdp {

namespace {

using EdgeSet = std::set<std::pair<ProcessId, ProcessId>>;

/// Expected overlay edges for `name` over the staying processes, which are
/// given sorted by key. `key_of` resolves a process's key (needed by the
/// skip list's level coin).
EdgeSet expected_edges(const std::string& name,
                       const std::vector<ProcessId>& by_key,
                       const std::function<std::uint64_t(ProcessId)>& key_of) {
  EdgeSet exp;
  const std::size_t n = by_key.size();
  if (n <= 1) return exp;
  auto chain = [&exp](const std::vector<ProcessId>& order) {
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      exp.insert({order[i], order[i + 1]});
      exp.insert({order[i + 1], order[i]});
    }
  };
  if (name == "linearization") {
    chain(by_key);
  } else if (name == "skiplist") {
    chain(by_key);  // level 0
    std::vector<ProcessId> tall;
    for (ProcessId p : by_key)
      if (skip_is_tall(key_of(p))) tall.push_back(p);
    chain(tall);  // level 1
  } else if (name == "ring") {
    // Bidirected cycle in circular key order. For n == 2 this degenerates
    // to the single bidirected edge.
    for (std::size_t i = 0; i < n; ++i) {
      const ProcessId a = by_key[i];
      const ProcessId b = by_key[(i + 1) % n];
      if (a == b) continue;
      exp.insert({a, b});
      exp.insert({b, a});
    }
  } else if (name == "clique") {
    for (ProcessId a : by_key)
      for (ProcessId b : by_key)
        if (a != b) exp.insert({a, b});
  } else if (name == "star") {
    const ProcessId center = by_key.front();  // smallest key
    for (std::size_t i = 1; i < n; ++i) {
      exp.insert({center, by_key[i]});
      exp.insert({by_key[i], center});
    }
  } else {
    FDP_CHECK_MSG(false, "unknown overlay name in check_topology");
  }
  return exp;
}

}  // namespace

TopologyVerdict check_topology(const Substrate& w,
                               const std::string& overlay_name) {
  TopologyVerdict v;

  std::vector<ProcessId> stayers;
  for (ProcessId p = 0; p < w.size(); ++p) {
    if (w.mode(p) != Mode::Staying) continue;
    if (w.life(p) != LifeState::Awake) {
      v.detail = "staying process " + std::to_string(p) + " not awake";
      return v;
    }
    stayers.push_back(p);
  }
  std::sort(stayers.begin(), stayers.end(), [&](ProcessId a, ProcessId b) {
    return w.process(a).key() < w.process(b).key();
  });

  EdgeSet actual;
  for (ProcessId p : stayers) {
    const auto* host = dynamic_cast<const OverlayHost*>(&w.process(p));
    FDP_CHECK_MSG(host != nullptr, "process does not host an overlay");
    for (const RefInfo& r : host->hosted_overlay().stored()) {
      const ProcessId q = r.ref.id();
      if (w.mode(q) != Mode::Staying) {
        v.detail = "staying process " + std::to_string(p) +
                   " still links to leaving process " + std::to_string(q);
        return v;
      }
      actual.insert({p, q});
    }
  }

  const EdgeSet exp = expected_edges(overlay_name, stayers,
                                     [&w](ProcessId p) {
                                       return w.process(p).key();
                                     });
  if (actual != exp) {
    for (const auto& e : exp) {
      if (!actual.count(e)) {
        v.detail = "missing overlay edge " + std::to_string(e.first) + "->" +
                   std::to_string(e.second);
        return v;
      }
    }
    for (const auto& e : actual) {
      if (!exp.count(e)) {
        v.detail = "surplus overlay edge " + std::to_string(e.first) + "->" +
                   std::to_string(e.second);
        return v;
      }
    }
  }
  v.converged = true;
  return v;
}

std::unique_ptr<OverlayProtocol> make_overlay(const std::string& name) {
  if (name == "linearization") return std::make_unique<Linearization>();
  if (name == "ring") return std::make_unique<RingOverlay>();
  if (name == "clique") return std::make_unique<CliqueOverlay>();
  if (name == "star") return std::make_unique<StarOverlay>();
  if (name == "skiplist") return std::make_unique<SkipListOverlay>();
  FDP_CHECK_MSG(false, "unknown overlay name");
  return nullptr;
}

}  // namespace fdp
