#include "overlay/ring.hpp"

#include <algorithm>

namespace fdp {

namespace {
bool key_less(const RefInfo& a, const RefInfo& b) { return a.key < b.key; }
}  // namespace

void RingOverlay::maintain(OverlayCtx& ctx) {
  // --- 1. list linearization over the base storage ---
  std::vector<RefInfo> left;   // keys < mine, ascending
  std::vector<RefInfo> right;  // keys > mine, ascending
  for (const RefInfo& r : store().snapshot()) {
    if (r.key < key()) left.push_back(r);
    else if (r.key > key()) right.push_back(r);
  }
  std::sort(left.begin(), left.end(), key_less);
  std::sort(right.begin(), right.end(), key_less);

  for (std::size_t i = 0; i + 1 < left.size(); ++i)
    delegate(ctx, left[i + 1].ref, left[i]);
  for (std::size_t j = right.size(); j > 1; --j)
    delegate(ctx, right[j - 2].ref, right[j - 1]);

  // --- 2. wrap maintenance ---
  const bool believed_min = left.empty();
  const bool believed_max = right.empty();

  // Evict a wrap reference that no longer belongs here: re-launch it as a
  // wrap message toward its endpoint (conserves the copy).
  if (wrap_) {
    const bool holds_max_candidate = wrap_->key > key();
    if ((holds_max_candidate && !believed_min) ||
        (!holds_max_candidate && !believed_max)) {
      const RefInfo evicted = *wrap_;
      wrap_.reset();
      handle_wrap(ctx, evicted);
    }
  }

  // Endpoints launch their own reference toward the opposite endpoint.
  // (Self-knowledge is free, so this is a self-introduction.) Periodic —
  // the launch must repeat so stale wrap slots heal — but throttled.
  if (++maintain_count_ % kWrapEvery != 0) return;
  const RefInfo me{self(), ModeInfo::Unknown, key()};
  if (believed_min && !right.empty()) {
    ctx.send_overlay(right.back().ref, kTagWrap, {me});
  }
  if (believed_max && !left.empty()) {
    ctx.send_overlay(left.front().ref, kTagWrap, {me});
  }
}

void RingOverlay::handle_wrap(OverlayCtx& ctx, const RefInfo& r) {
  if (r.ref == self() || r.key == key()) return;  // own ref: drop

  std::vector<RefInfo> left;
  std::vector<RefInfo> right;
  for (const RefInfo& s : store().snapshot()) {
    if (s.key < key()) left.push_back(s);
    else if (s.key > key()) right.push_back(s);
  }

  if (r.key > key()) {
    // Max candidate looking for the minimum: store here if we believe we
    // are the minimum, else forward one hop leftward.
    if (left.empty()) {
      if (!wrap_ || wrap_->key < r.key) {
        if (wrap_ && wrap_->ref != r.ref) {
          // The displaced candidate goes back to regular storage (it is a
          // right neighbor like any other).
          store().insert(*wrap_);
        }
        wrap_ = r;
      } else if (wrap_->ref != r.ref) {
        store().insert(r);
      }
      return;
    }
    const Ref next = std::min_element(left.begin(), left.end(), key_less)->ref;
    ctx.send_overlay(next, kTagWrap, {r});
    return;
  }
  // Min candidate looking for the maximum: mirror image.
  if (right.empty()) {
    if (!wrap_ || wrap_->key > r.key) {
      if (wrap_ && wrap_->ref != r.ref) store().insert(*wrap_);
      wrap_ = r;
    } else if (wrap_->ref != r.ref) {
      store().insert(r);
    }
    return;
  }
  const Ref next = std::max_element(right.begin(), right.end(), key_less)->ref;
  ctx.send_overlay(next, kTagWrap, {r});
}

void RingOverlay::on_overlay_message(OverlayCtx& ctx, std::uint32_t tag,
                                     std::span<const RefInfo> refs,
                                     std::uint64_t token) {
  if (tag == kTagWrap) {
    for (const RefInfo& r : refs) handle_wrap(ctx, r);
    return;
  }
  OverlayProtocol::on_overlay_message(ctx, tag, refs, token);
}

void RingOverlay::integrate(const RefInfo& r) {
  if (wrap_ && wrap_->ref == r.ref) {
    wrap_->mode = r.mode;  // fuse into the wrap slot
    return;
  }
  OverlayProtocol::integrate(r);
}

bool RingOverlay::remove(Ref r) {
  bool removed = OverlayProtocol::remove(r);
  if (wrap_ && wrap_->ref == r) {
    wrap_.reset();
    removed = true;
  }
  return removed;
}

void RingOverlay::update_mode(Ref r, ModeInfo m) {
  OverlayProtocol::update_mode(r, m);
  if (wrap_ && wrap_->ref == r) wrap_->mode = m;
}

std::vector<RefInfo> RingOverlay::introduction_targets() const {
  RefInfo best_left, best_right;
  for (const RefInfo& r : store().snapshot()) {
    if (r.key < key()) {
      if (!best_left.ref.valid() || r.key > best_left.key) best_left = r;
    } else if (r.key > key()) {
      if (!best_right.ref.valid() || r.key < best_right.key) best_right = r;
    }
  }
  std::vector<RefInfo> out;
  if (best_left.ref.valid()) out.push_back(best_left);
  if (best_right.ref.valid()) out.push_back(best_right);
  if (wrap_) out.push_back(*wrap_);
  return out;
}

std::vector<RefInfo> RingOverlay::stored() const {
  std::vector<RefInfo> out = OverlayProtocol::stored();
  if (wrap_) out.push_back(*wrap_);
  return out;
}

std::vector<RefInfo> RingOverlay::take_all() {
  std::vector<RefInfo> out = OverlayProtocol::take_all();
  if (wrap_) {
    out.push_back(*wrap_);
    wrap_.reset();
  }
  return out;
}

bool RingOverlay::empty() const {
  return OverlayProtocol::empty() && !wrap_;
}

}  // namespace fdp
