// Self-stabilizing two-level skip list (in the spirit of Corona / skip
// graphs, references [25]/[4] of the paper, radically simplified).
//
// Every process is deterministically *tall* or *short* (a parity bit of
// its key, so the level travels with every reference). The legitimate
// topology is
//   level 0: the sorted doubly linked list over ALL processes, plus
//   level 1: the sorted doubly linked list over the TALL processes.
//
// Structure (mirrors the ring's wrap design):
//  * The base storage runs UNMODIFIED linearization — level-0 references
//    must keep flowing one hop toward their sorted position, so level-1
//    neighbors are NOT pinned there (pinning them would dam the flow and
//    strand the processes in between).
//  * Each tall process keeps its level-1 neighbors in two dedicated slots
//    (left/right), fed exclusively by routed transit messages: a tall
//    process periodically launches its own reference left and right
//    (kTagTallLeft/kTagTallRight); a short receiver forwards it onward in
//    the same direction through its closest level-0 neighbor WITHOUT
//    storing it; the first tall receiver slots it. Closer candidates
//    displace farther ones (the displaced reference joins the level-0
//    flow); a dead-ended transit reference is returned to its owner, who
//    discards its own reference for free. The converged state is quiet.
//
// All traffic is Introduction/Delegation/Fusion — a member of 𝒫.
#pragma once

#include <bit>
#include <optional>

#include "overlay/overlay_protocol.hpp"

namespace fdp {

inline constexpr std::uint32_t kTagTallLeft = 3;
inline constexpr std::uint32_t kTagTallRight = 4;

/// The deterministic level coin: anyone holding a reference (which always
/// carries the key) can evaluate it.
[[nodiscard]] inline bool skip_is_tall(std::uint64_t key) {
  return (std::popcount(key) & 1) == 0;
}

class SkipListOverlay final : public OverlayProtocol {
 public:
  [[nodiscard]] const char* name() const override { return "skiplist"; }

  void maintain(OverlayCtx& ctx) override;
  using OverlayProtocol::on_overlay_message;
  void on_overlay_message(OverlayCtx& ctx, std::uint32_t tag,
                          std::span<const RefInfo> refs,
                          std::uint64_t token) override;
  [[nodiscard]] std::vector<RefInfo> introduction_targets() const override;

  // Storage: base NeighborSet (level 0) + the two level-1 slots.
  void integrate(const RefInfo& r) override;
  bool remove(Ref r) override;
  void update_mode(Ref r, ModeInfo m) override;
  [[nodiscard]] std::vector<RefInfo> stored() const override;
  std::vector<RefInfo> take_all() override;
  [[nodiscard]] bool empty() const override;

 private:
  /// Route or slot one transit reference (leftward = travelling toward
  /// smaller keys).
  void handle_transit(OverlayCtx& ctx, const RefInfo& r, bool leftward);
  /// Place a tall candidate into the given slot, displacing a farther one
  /// into the level-0 flow. Pre: correct side, tall, not self.
  void slot_candidate(std::optional<RefInfo>& slot, const RefInfo& r);

  std::optional<RefInfo> l1_left_;
  std::optional<RefInfo> l1_right_;
  static constexpr std::uint32_t kLaunchEvery = 4;
  std::uint32_t maintain_count_ = 0;
};

}  // namespace fdp
