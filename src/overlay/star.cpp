#include "overlay/star.hpp"

#include <algorithm>

namespace fdp {

void StarOverlay::maintain(OverlayCtx& ctx) {
  std::vector<RefInfo> all = stored();
  if (all.empty()) return;
  auto min_it = std::min_element(
      all.begin(), all.end(),
      [](const RefInfo& a, const RefInfo& b) { return a.key < b.key; });
  if (key() < min_it->key) return;  // I am the (believed) center
  const RefInfo center = *min_it;
  for (const RefInfo& r : all) {
    if (r.ref == center.ref) continue;
    delegate(ctx, center.ref, r);
  }
}

std::vector<RefInfo> StarOverlay::introduction_targets() const {
  const std::vector<RefInfo> all = stored();
  if (all.empty()) return {};
  auto min_it = std::min_element(
      all.begin(), all.end(),
      [](const RefInfo& a, const RefInfo& b) { return a.key < b.key; });
  if (key() < min_it->key) return all;  // center keeps everyone informed
  return {*min_it};
}

}  // namespace fdp
