// Transitive-closure clique building.
//
// The simplest self-stabilizing overlay (Berns et al., "Building
// self-stabilizing overlay networks with the transitive closure
// framework"): every process continuously introduces all of its neighbors
// to each other. The legitimate topology is the clique. The paper's proof
// of Theorem 1 uses exactly this process for its first phase and claims
// O(log n) communication rounds to completion — "the distances between the
// nodes are essentially cut in half in each round"; experiment E2 measures
// that claim on this overlay.
//
// Pure Introduction (plus Fusion at the receivers): trivially in 𝒫, and
// the only bundled overlay that never deletes a reference.
#pragma once

#include "overlay/overlay_protocol.hpp"

namespace fdp {

class CliqueOverlay final : public OverlayProtocol {
 public:
  [[nodiscard]] const char* name() const override { return "clique"; }
  void maintain(OverlayCtx& ctx) override;
};

}  // namespace fdp
