#include "overlay/linearization.hpp"

#include <algorithm>

namespace fdp {

void Linearization::maintain(OverlayCtx& ctx) {
  std::vector<RefInfo> all = stored();
  std::sort(all.begin(), all.end(), [](const RefInfo& a, const RefInfo& b) {
    return a.key < b.key;
  });

  std::vector<RefInfo> left;   // keys < mine, ascending
  std::vector<RefInfo> right;  // keys > mine, ascending
  for (const RefInfo& r : all) {
    if (r.key < key()) {
      left.push_back(r);
    } else if (r.key > key()) {
      right.push_back(r);
    }
    // Equal keys cannot occur (keys are unique); if a corrupted state ever
    // produced one the reference simply stays put and the periodic
    // self-introduction keeps the edge alive.
  }

  // Delegate farther-left references one hop toward their position: the
  // closest left neighbor is kept, x_i (i < k) goes to x_{i+1}.
  for (std::size_t i = 0; i + 1 < left.size(); ++i) {
    delegate(ctx, left[i + 1].ref, left[i]);
  }
  // Mirror image on the right: keep y_1, y_j (j > 1) goes to y_{j-1}.
  for (std::size_t j = right.size(); j > 1; --j) {
    delegate(ctx, right[j - 2].ref, right[j - 1]);
  }
}

std::vector<RefInfo> Linearization::introduction_targets() const {
  RefInfo best_left, best_right;
  for (const RefInfo& r : stored()) {
    if (r.key < key()) {
      if (!best_left.ref.valid() || r.key > best_left.key) best_left = r;
    } else if (r.key > key()) {
      if (!best_right.ref.valid() || r.key < best_right.key) best_right = r;
    }
  }
  std::vector<RefInfo> out;
  if (best_left.ref.valid()) out.push_back(best_left);
  if (best_right.ref.valid()) out.push_back(best_right);
  return out;
}

}  // namespace fdp
