// Legitimate-topology predicates for the bundled overlays.
//
// A wrapped protocol P′ must (Theorem 4) still solve P's problem for the
// staying processes: after every leaving process is excluded, the staying
// processes' *overlay links* must form P's legitimate topology. These
// checkers read each staying awake process's hosted overlay storage and
// compare the resulting directed edge set against the expected one.
#pragma once

#include <memory>
#include <string>

#include "overlay/overlay_protocol.hpp"

namespace fdp {

class Substrate;

struct TopologyVerdict {
  bool converged = false;
  std::string detail;  // first discrepancy, for diagnostics
};

/// Check the overlay links of all staying awake processes of `w` against
/// the legitimate topology of the named overlay ("linearization", "ring",
/// "clique", "star"). Every process must implement OverlayHost.
[[nodiscard]] TopologyVerdict check_topology(const Substrate& w,
                                             const std::string& overlay_name);

/// Factory for the bundled overlays by the same names.
[[nodiscard]] std::unique_ptr<OverlayProtocol> make_overlay(
    const std::string& name);

}  // namespace fdp
