// Self-stabilizing sorted ring (simplified Re-Chord construction).
//
// The legitimate topology is the bidirected cycle in key order: the sorted
// doubly linked list plus the two wrap edges between the minimum and the
// maximum.
//
// A purely "circular distance" rule is NOT self-stabilizing: a wrongly
// ordered but symmetric cycle (e.g. key order 0-2-1-3) is locally
// indistinguishable from the target and becomes a stuck state. Following
// the Re-Chord idea (Kniesburges, Koutsopoulos, Scheideler, SPAA'11,
// reference [22] of the paper), we therefore maintain the *list* with the
// standard linearization rule — which provably untangles any weakly
// connected state — and close the ring with explicitly routed wrap
// references:
//
//  * A process with no left neighbor (believed minimum) launches its own
//    reference as a wrap message routed rightward; one with no right
//    neighbor (believed maximum) launches one leftward.
//  * A wrap reference r received by u is stored in u's wrap slot when u is
//    the endpoint on r's far side, and forwarded one hop toward that
//    endpoint otherwise (keys strictly progress, so routing terminates).
//  * A wrap slot that turns out wrong (a better endpoint candidate became
//    known) is re-launched as a wrap message — never dropped, so the
//    reference conservation law holds.
//
// All traffic is Introduction/Delegation/Fusion — a member of 𝒫.
#pragma once

#include <optional>

#include "overlay/overlay_protocol.hpp"

namespace fdp {

/// Overlay message tag for wrap references in transit.
inline constexpr std::uint32_t kTagWrap = 2;

class RingOverlay final : public OverlayProtocol {
 public:
  [[nodiscard]] const char* name() const override { return "ring"; }

  void maintain(OverlayCtx& ctx) override;
  using OverlayProtocol::on_overlay_message;
  void on_overlay_message(OverlayCtx& ctx, std::uint32_t tag,
                          std::span<const RefInfo> refs,
                          std::uint64_t token) override;
  /// Kept neighbors only: closest left, closest right and the wrap slot.
  [[nodiscard]] std::vector<RefInfo> introduction_targets() const override;

  // Storage: the base NeighborSet plus the wrap slot.
  void integrate(const RefInfo& r) override;
  bool remove(Ref r) override;
  void update_mode(Ref r, ModeInfo m) override;
  [[nodiscard]] std::vector<RefInfo> stored() const override;
  std::vector<RefInfo> take_all() override;
  [[nodiscard]] bool empty() const override;

 private:
  /// Route or store one wrap reference (see file comment).
  void handle_wrap(OverlayCtx& ctx, const RefInfo& r);

  /// The wrap slot: for the minimum it holds the maximum candidate (the
  /// largest key seen), for the maximum the minimum candidate.
  std::optional<RefInfo> wrap_;
  /// Wrap launches are periodic (self-stabilization needs the refresh)
  /// but throttled: every kWrapEvery-th maintain() call. Under the
  /// framework each launch costs a full verify round per hop, so pacing
  /// them keeps the wrapped overhead sane.
  static constexpr std::uint32_t kWrapEvery = 4;
  std::uint32_t maintain_count_ = 0;
};

}  // namespace fdp
