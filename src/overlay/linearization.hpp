// Self-stabilizing linearization (sorted doubly linked list).
//
// The classic topological self-stabilization target (Gall et al., "Time
// complexity of distributed topological self-stabilization: the case of
// graph linearization"; also the home topology of Foreback et al. [15]).
// Every process has a unique key; the legitimate topology is the sorted
// doubly linked list: each process keeps exactly its closest left and
// closest right neighbor.
//
// Maintenance rule (pure Introduction/Delegation/Fusion — a member of 𝒫):
// sort the stored references by key around the own key; keep the closest
// on each side; delegate every farther left reference to the next-closer
// left neighbor and every farther right reference to the next-closer right
// neighbor. References strictly approach their sorted position, so from any
// weakly connected initial state the sorted list emerges; the host's
// periodic self-introduction makes links bidirectional.
#pragma once

#include "overlay/overlay_protocol.hpp"

namespace fdp {

class Linearization final : public OverlayProtocol {
 public:
  [[nodiscard]] const char* name() const override { return "linearization"; }
  void maintain(OverlayCtx& ctx) override;
  /// Self-introduce only to the kept list neighbors (closest left/right);
  /// in-transit references must not receive introductions or the network
  /// would churn forever.
  [[nodiscard]] std::vector<RefInfo> introduction_targets() const override;
};

}  // namespace fdp
