// Overlay maintenance protocols — the class 𝒫 of the paper.
//
// 𝒫 is the set of distributed protocols whose inter-process interactions
// decompose into the four primitives of Section 2. The paper's Section 4
// shows how to combine any P ∈ 𝒫 (with periodic self-introduction and a
// postprocess action) with the departure protocol to obtain P′ that also
// solves the FDP.
//
// An OverlayProtocol implements only P's *structure*: which references to
// keep, which to delegate or introduce where. The host (FrameworkProcess
// for the wrapped P′, PlainOverlayHost for bare P) provides:
//   - the periodic self-introduction the framework requires of P,
//   - message transport: send_overlay() routes through the framework's
//     preprocess/verify machinery, or directly for the plain host,
//   - storage bookkeeping for the process-graph snapshot.
//
// Overlay send discipline (this is how the primitive decomposition is
// enforced at the API level):
//   * introduce(dest, r): send r's reference keeping the stored copy
//     (Introduction);
//   * delegate(dest, r): remove the stored copy, then send (Delegation;
//     the host conserves the copy inside its message list until the
//     verified send happens).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/ids.hpp"
#include "sim/neighbor_set.hpp"

namespace fdp {

/// Message tag for the single structural action every bundled overlay
/// needs: "store these references" (the receiver integrates them).
inline constexpr std::uint32_t kTagDeliverRef = 1;

/// Served lookup traffic (ROADMAP "monotonic searchability" direction; the
/// OverSim DHTTestApp idiom — see docs/substrate_idioms.md). A lookup is a
/// first-class in-protocol message: token carries the target key, refs[0]
/// carries the requester's reference (so the resolver can answer — and so
/// the process-graph accounting sees the in-flight edge). Routed greedily
/// one hop closer per delivery via lookup_next_hop(); the closest process
/// answers Hit (its key equals the target) or Miss (it does not) with its
/// own reference, token echoed.
inline constexpr std::uint32_t kTagLookup = 16;
inline constexpr std::uint32_t kTagLookupHit = 17;
inline constexpr std::uint32_t kTagLookupMiss = 18;

/// Host interface handed to the overlay during its actions.
class OverlayCtx {
 public:
  virtual ~OverlayCtx() = default;
  [[nodiscard]] virtual Ref self() const = 0;
  [[nodiscard]] virtual std::uint64_t self_key() const = 0;
  /// The host's own reference with its true mode ("the information sent
  /// about oneself is always valid") — lookup answers carry it.
  [[nodiscard]] virtual RefInfo self_info() const = 0;
  /// Send an overlay message (tag + references) to dest. The reference
  /// copies inside remain accounted for by the host. `token` rides along
  /// in Message::token (lookup target keys; 0 for structural traffic).
  virtual void send_overlay(Ref dest, std::uint32_t tag,
                            std::vector<RefInfo> refs,
                            std::uint64_t token = 0) = 0;
};

class OverlayProtocol {
 public:
  virtual ~OverlayProtocol();

  [[nodiscard]] virtual const char* name() const = 0;

  /// Called once by the host before any other method.
  void bind(Ref self, std::uint64_t key);

  /// P-timeout structural work (beyond the host-provided periodic
  /// self-introduction): decide which stored references to keep, delegate
  /// or introduce. Must decompose into the four primitives.
  virtual void maintain(OverlayCtx& ctx) = 0;

  /// A P action arrived. Default: the lookup tags route/answer (see
  /// serve_lookup); kTagDeliverRef integrates every carried reference;
  /// other tags are integrated too (conservative default that never
  /// destroys references). Spans so both std::vector and the kernel's
  /// inline RefList bind without copying. `token` is Message::token (the
  /// lookup target key; 0 for structural traffic).
  virtual void on_overlay_message(OverlayCtx& ctx, std::uint32_t tag,
                                  std::span<const RefInfo> refs,
                                  std::uint64_t token = 0);
  /// Braced-list convenience (a span cannot bind an initializer list);
  /// dispatches to the virtual overload. Overriders re-expose it with
  /// `using OverlayProtocol::on_overlay_message;`.
  void on_overlay_message(OverlayCtx& ctx, std::uint32_t tag,
                          std::initializer_list<RefInfo> refs,
                          std::uint64_t token = 0) {
    on_overlay_message(
        ctx, tag, std::span<const RefInfo>(refs.begin(), refs.size()), token);
  }

  /// Greedy routing decision for served lookups: the stored reference
  /// strictly closer (absolute key distance) to `target` than the own key,
  /// or an invalid Ref when this process is the closest it knows — i.e.
  /// the resolver. Strict progress makes routed lookups loop-free.
  /// References believed leaving are never chosen (routing into a
  /// departure loses the request when the leaver bounces it). The default
  /// scans stored(), which already includes any higher-level links an
  /// overlay keeps (the skip list's tall slots), so express hops come for
  /// free; overlays with smarter routing state may override.
  [[nodiscard]] virtual Ref lookup_next_hop(std::uint64_t target) const;

  // --- storage (default: one NeighborSet) ---

  /// Store a reference (believed staying). Fuses duplicates.
  virtual void integrate(const RefInfo& r);
  /// Remove every stored copy of r; true when something was removed.
  virtual bool remove(Ref r);
  /// Update stored knowledge about r if stored.
  virtual void update_mode(Ref r, ModeInfo m);
  /// Every stored reference (host snapshots, self-introduction, purges).
  [[nodiscard]] virtual std::vector<RefInfo> stored() const;
  /// Remove and return everything (leaving flush).
  virtual std::vector<RefInfo> take_all();
  [[nodiscard]] virtual bool empty() const;

  /// References the periodic self-introduction should target. Defaults to
  /// everything stored.
  [[nodiscard]] virtual std::vector<RefInfo> introduction_targets() const {
    return stored();
  }

 protected:
  /// Handle a kTagLookup delivery: forward one hop closer, or — when this
  /// process is the closest it knows — answer Hit/Miss to the requester
  /// (refs[0]) with the own reference, integrating the requester's
  /// reference first (the served client becomes a neighbor; no reference
  /// copy is ever destroyed). Overriders that claim the lookup tags can
  /// still delegate here.
  void serve_lookup(OverlayCtx& ctx, std::span<const RefInfo> refs,
                    std::uint64_t target);

  /// Introduction: send keeping the copy.
  void introduce(OverlayCtx& ctx, Ref dest, const RefInfo& r) {
    ctx.send_overlay(dest, kTagDeliverRef, {r});
  }
  /// Delegation: remove the stored copy, then send.
  void delegate(OverlayCtx& ctx, Ref dest, const RefInfo& r) {
    remove(r.ref);
    ctx.send_overlay(dest, kTagDeliverRef, {r});
  }

  [[nodiscard]] Ref self() const { return self_; }
  [[nodiscard]] std::uint64_t key() const { return key_; }
  [[nodiscard]] NeighborSet& store();
  [[nodiscard]] const NeighborSet& store() const;

 private:
  Ref self_;
  std::uint64_t key_ = 0;
  std::optional<NeighborSet> nbrs_;
};

}  // namespace fdp
