#include "analysis/monitors.hpp"

#include <algorithm>

#include "sim/world.hpp"

namespace fdp {

SafetyMonitor::SafetyMonitor(const World& w, std::uint64_t stride)
    : checker_(w, Exclusion::Either), stride_(stride == 0 ? 1 : stride) {}

void SafetyMonitor::on_action(const World& world, const ActionRecord& rec) {
  if (++since_ < stride_) return;
  since_ = 0;
  ++checks_;
  if (!checker_.safety_holds(world)) violations_.push_back(rec.step);
}

PotentialMonitor::PotentialMonitor(const World& w, std::uint64_t stride)
    : stride_(stride == 0 ? 1 : stride) {
  initial_ = phi(w);
  last_ = initial_;
  series_.emplace_back(0, initial_);
}

void PotentialMonitor::on_action(const World& world,
                                 const ActionRecord& rec) {
  if (++since_ < stride_) return;
  since_ = 0;
  const std::uint64_t now = phi(world);
  if (now > last_) increases_.push_back({rec.step, last_, now});
  last_ = now;
  series_.emplace_back(rec.step, now);
}

void TrafficMonitor::on_action(const World& world, const ActionRecord& rec) {
  if (sent_by_.size() < world.size()) {
    sent_by_.resize(world.size(), 0);
    received_by_.resize(world.size(), 0);
  }
  if (rec.kind == ActionRecord::Kind::Timeout) {
    ++timeouts_;
  } else {
    ++deliveries_;
    ++received_by_[rec.actor];
  }
  for (const auto& [to, msg] : rec.sent) {
    (void)to;
    ++sent_[static_cast<std::size_t>(msg.verb)];
    ++sent_by_[rec.actor];
  }
}

std::uint64_t TrafficMonitor::total_sent() const {
  std::uint64_t sum = 0;
  for (std::uint64_t s : sent_) sum += s;
  return sum;
}

double TrafficMonitor::receive_imbalance() const {
  if (deliveries_ == 0 || received_by_.empty()) return 0.0;
  std::uint64_t max = 0;
  for (std::uint64_t r : received_by_) max = std::max(max, r);
  const double mean = static_cast<double>(deliveries_) /
                      static_cast<double>(received_by_.size());
  return static_cast<double>(max) / mean;
}

}  // namespace fdp
