#include "analysis/monitors.hpp"

#include <algorithm>

#include "sim/substrate.hpp"
#include "util/check.hpp"

namespace fdp {

namespace {

/// Could this action have changed the process graph's edge set or the
/// relevant set? Deliveries always shrink a channel (hibernation input);
/// sends, ref changes and life transitions speak for themselves. Only a
/// pure no-op timeout — no sends, no stored-ref change, no exit/sleep —
/// is provably verdict-preserving.
bool structurally_relevant(const ActionRecord& rec) {
  return rec.kind == ActionRecord::Kind::Deliver || rec.exited || rec.slept ||
         !rec.sent.empty() || rec.refs_before != rec.refs_after;
}

}  // namespace

SafetyMonitor::SafetyMonitor(const Substrate& w, std::uint64_t stride)
    : checker_(w, Exclusion::Either), stride_(stride == 0 ? 1 : stride) {}

void SafetyMonitor::on_action(const Substrate& world, const ActionRecord& rec) {
  if (structurally_relevant(rec)) dirty_ = true;
  if (++since_ < stride_) return;
  since_ = 0;
  if (!dirty_) {
    // Nothing since the last BFS could have changed the verdict.
    ++skipped_;
    return;
  }
  dirty_ = false;
  ++checks_;
  if (!checker_.safety_holds(world)) violations_.push_back(rec.step);
}

void SafetyMonitor::on_inject(const Substrate& world, ProcessId to,
                              const Message& m) {
  (void)world;
  (void)to;
  (void)m;
  dirty_ = true;
}

void SafetyMonitor::on_remove(const Substrate& world, ProcessId from,
                              const Message& m) {
  (void)world;
  (void)from;
  (void)m;
  dirty_ = true;
}

void SafetyMonitor::on_fault(const Substrate& world, FaultKind kind,
                             ProcessId target, bool applied) {
  (void)world;
  (void)kind;
  (void)target;
  // A fault rearranges stored references behind the ActionRecord stream's
  // back; the next stride check must re-run the BFS. (Legal faults never
  // destroy references, so the verdict itself must still hold — that is
  // exactly what the monitor verifies.)
  if (applied) dirty_ = true;
}

PotentialMonitor::PotentialMonitor(const Substrate& w, std::uint64_t stride)
    : stride_(stride == 0 ? 1 : stride),
#ifdef NDEBUG
      crosscheck_every_(0)
#else
      crosscheck_every_(1024)
#endif
{
  initial_ = phi(w);
  last_ = initial_;
  phi_ = static_cast<std::int64_t>(initial_);
  series_.emplace_back(0, initial_);
}

void PotentialMonitor::apply_action_delta(const Substrate& world,
                                          const ActionRecord& rec) {
  // Reconstruct Φ's change from the action's complete effect record.
  // Every term mirrors one clause of potential()'s accounting; instance
  // verdicts are immutable (true modes never change), so only instance
  // creation/destruction/ownership moves matter.
  std::int64_t d = 0;
  // Stored refs of the actor: replaced wholesale by the action. A gone
  // actor's stored refs stop counting (potential() skips gone holders).
  d -= static_cast<std::int64_t>(invalid_count(world, rec.refs_before));
  if (!rec.exited)
    d += static_cast<std::int64_t>(invalid_count(world, rec.refs_after));
  // The consumed message left the actor's (live) channel.
  if (rec.consumed)
    d += -static_cast<std::int64_t>(invalid_count(world, rec.consumed->refs));
  // Sends enter the destination's channel. Count against the holder's
  // life *before* this action's exit applies: a self-send of an exiting
  // actor is settled by the channel sweep below, and no other process's
  // life can change within the action.
  for (const auto& [to, msg] : rec.sent) {
    if (to.id() == rec.actor || world.life(to.id()) != LifeState::Gone)
      d += static_cast<std::int64_t>(invalid_count(world, msg.refs));
  }
  // Exit kills the whole channel: every in-flight instance (including any
  // self-send from this very action) stops counting.
  if (rec.exited)
    world.each_pending(rec.actor, [&](const Message& m) {
      d -= static_cast<std::int64_t>(invalid_count(world, m.refs));
    });
  phi_ += d;
  FDP_CHECK_MSG(phi_ >= 0, "incremental phi went negative");
}

void PotentialMonitor::on_action(const Substrate& world, const ActionRecord& rec) {
  apply_action_delta(world, rec);

  if (crosscheck_every_ > 0 && ++since_crosscheck_ >= crosscheck_every_) {
    since_crosscheck_ = 0;
    FDP_CHECK_MSG(static_cast<std::uint64_t>(phi_) == phi(world),
                  "incremental phi diverged from full recompute");
  }

  if (++since_ < stride_) return;
  since_ = 0;
  const std::uint64_t now = static_cast<std::uint64_t>(phi_);
  if (now > last_) increases_.push_back({rec.step, last_, now});
  last_ = now;
  series_.emplace_back(rec.step, now);
}

void PotentialMonitor::on_inject(const Substrate& world, ProcessId to,
                                 const Message& m) {
  if (world.life(to) != LifeState::Gone)
    phi_ += static_cast<std::int64_t>(invalid_count(world, m.refs));
}

void PotentialMonitor::on_remove(const Substrate& world, ProcessId from,
                                 const Message& m) {
  if (world.life(from) != LifeState::Gone) {
    phi_ -= static_cast<std::int64_t>(invalid_count(world, m.refs));
    FDP_CHECK_MSG(phi_ >= 0, "incremental phi went negative");
  }
}

void PotentialMonitor::on_fault(const Substrate& world, FaultKind kind,
                                ProcessId target, bool applied) {
  (void)kind;
  (void)target;
  if (!applied) return;
  // Re-baseline from a full recompute: the fault mutated stored state (or
  // injected copies) outside the per-action delta stream, and its Φ jump
  // is legal — Lemma 3 constrains the protocol, not the adversary. From
  // here on only protocol actions can register an increase.
  phi_ = static_cast<std::int64_t>(phi(world));
  last_ = static_cast<std::uint64_t>(phi_);
  since_crosscheck_ = 0;
}

RecoveryMonitor::RecoveryMonitor(const Substrate& w, Exclusion excl,
                                 std::uint64_t stride)
    : checker_(w, excl), stride_(stride == 0 ? 1 : stride) {}

void RecoveryMonitor::on_fault(const Substrate& world, FaultKind kind,
                               ProcessId target, bool applied) {
  if (kind == FaultKind::PartitionEnd) {
    // The window closed: start the open record's recovery clock here —
    // the cut only delays progress, so steps-to-Φ-drain and re-legitimacy
    // are attributed to the release of withheld deliveries, not to the
    // step the window opened. No new record is created.
    if (applied && open_window_ != kNoOpenWindow) {
      Recovery& r = records_[open_window_];
      r.step = world.clock();
      r.phi_after = phi(world);
      if (r.phi_after <= r.phi_before) r.phi_drain_steps = 0;
      open_window_ = kNoOpenWindow;
    }
    return;
  }
  if (!applied) {
    // Snapshot the pre-fault potential; left dangling (harmless) when the
    // victim turns out not to support the fault.
    pre_phi_ = phi(world);
    return;
  }
  Recovery r;
  r.step = world.clock();
  r.kind = kind;
  r.target = target;
  r.phi_before = pre_phi_;
  r.phi_after = phi(world);
  // A perturbation that didn't raise Φ has nothing to drain.
  if (r.phi_after <= r.phi_before) r.phi_drain_steps = 0;
  records_.push_back(r);
  outstanding_ = true;
  if (kind == FaultKind::PartitionStart) {
    // Held out of sweeps until the matching PartitionEnd.
    records_.back().phi_drain_steps = kNotRecovered;
    open_window_ = records_.size() - 1;
  }
}

void RecoveryMonitor::on_action(const Substrate& world, const ActionRecord& rec) {
  if (!outstanding_) return;
  if (++since_ < stride_) return;
  since_ = 0;
  sweep(world, rec.step);
}

void RecoveryMonitor::sweep(const Substrate& world, std::uint64_t now) {
  // An open partition window's record is held out: its clock only starts
  // at the PartitionEnd boundary.
  const auto held = [this](std::size_t i) { return i == open_window_; };
  bool phi_pending = false;
  bool legit_pending = false;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (held(i)) continue;
    phi_pending |= records_[i].phi_drain_steps == kNotRecovered;
    legit_pending |= records_[i].relegit_steps == kNotRecovered;
  }
  if (phi_pending) {
    const std::uint64_t cur = phi(world);
    for (std::size_t i = 0; i < records_.size(); ++i) {
      Recovery& r = records_[i];
      if (!held(i) && r.phi_drain_steps == kNotRecovered &&
          cur <= r.phi_before) {
        r.phi_drain_steps = now - r.step;
      }
    }
  }
  if (legit_pending && checker_.legitimate(world)) {
    for (std::size_t i = 0; i < records_.size(); ++i) {
      Recovery& r = records_[i];
      if (!held(i) && r.relegit_steps == kNotRecovered) {
        r.relegit_steps = now - r.step;
      }
    }
    legit_pending = false;
  }
  outstanding_ = legit_pending || open_window_ != kNoOpenWindow;
  if (!outstanding_) {
    for (const Recovery& r : records_) {
      outstanding_ |= r.phi_drain_steps == kNotRecovered;
    }
  }
}

void RecoveryMonitor::finalize(const Substrate& w) {
  // A window the run ended inside never got its PartitionEnd: release it
  // with its clock still at the open step (best available attribution).
  open_window_ = kNoOpenWindow;
  if (outstanding_) sweep(w, w.clock());
}

std::uint64_t RecoveryMonitor::recovered() const {
  std::uint64_t n = 0;
  for (const Recovery& r : records_) n += r.relegit_steps != kNotRecovered;
  return n;
}

std::uint64_t RecoveryMonitor::worst_relegit_steps() const {
  std::uint64_t worst = 0;
  for (const Recovery& r : records_) {
    if (r.relegit_steps != kNotRecovered)
      worst = std::max(worst, r.relegit_steps);
  }
  return worst;
}

double RecoveryMonitor::mean_relegit_steps() const {
  std::uint64_t sum = 0;
  std::uint64_t n = 0;
  for (const Recovery& r : records_) {
    if (r.relegit_steps != kNotRecovered) {
      sum += r.relegit_steps;
      ++n;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
}

void TrafficMonitor::on_action(const Substrate& world, const ActionRecord& rec) {
  if (sent_by_.size() < world.size()) {
    sent_by_.resize(world.size(), 0);
    received_by_.resize(world.size(), 0);
  }
  if (rec.kind == ActionRecord::Kind::Timeout) {
    ++timeouts_;
  } else {
    ++deliveries_;
    ++received_by_[rec.actor];
  }
  for (const auto& [to, msg] : rec.sent) {
    (void)to;
    ++sent_[static_cast<std::size_t>(msg.verb())];
    ++sent_by_[rec.actor];
  }
}

std::uint64_t TrafficMonitor::total_sent() const {
  std::uint64_t sum = 0;
  for (std::uint64_t s : sent_) sum += s;
  return sum;
}

double TrafficMonitor::receive_imbalance() const {
  if (deliveries_ == 0 || received_by_.empty()) return 0.0;
  std::uint64_t max = 0;
  for (std::uint64_t r : received_by_) max = std::max(max, r);
  const double mean = static_cast<double>(deliveries_) /
                      static_cast<double>(received_by_.size());
  return static_cast<double>(max) / mean;
}

}  // namespace fdp
