#include "analysis/workload.hpp"

#include <algorithm>

#include "overlay/overlay_protocol.hpp"
#include "util/check.hpp"

namespace fdp {

namespace {

std::uint64_t percentile(std::vector<std::uint64_t> v, std::size_t pct) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[pct * (v.size() - 1) / 100];
}

}  // namespace

LookupWorkload::LookupWorkload(std::vector<Ref> refs,
                               std::vector<std::uint64_t> keys,
                               std::vector<bool> leaving, WorkloadConfig cfg)
    : cfg_(cfg),
      refs_(std::move(refs)),
      keys_(std::move(keys)),
      rng_(cfg.seed) {
  for (ProcessId p = 0; p < refs_.size(); ++p)
    if (!leaving[p]) stayers_.push_back(p);
  FDP_CHECK_MSG(!stayers_.empty(),
                "a lookup workload needs at least one staying access node");
}

void LookupWorkload::pump(Substrate& sub) {
  while (issued_ < cfg_.total && sub.clock() >= next_due_) {
    const ProcessId access = stayers_[rng_.below(stayers_.size())];
    std::uint64_t target;
    if (rng_.chance(cfg_.absent_prob)) {
      do {
        target = rng_();
      } while (target == 0);
    } else {
      target = keys_[stayers_[rng_.below(stayers_.size())]];
    }
    Message m;
    m.set_verb(Verb::Overlay);
    m.set_tag(kTagLookup);
    m.token = target;
    // refs[0] = the requester. Access nodes are staying, so this
    // self-description is valid by construction.
    m.refs.push_back(RefInfo{refs_[access], ModeInfo::Staying, keys_[access]});
    sub.inject(refs_[access], std::move(m));
    open_[{access, target}].push_back(
        Issue{sub.clock(), std::chrono::steady_clock::now()});
    ++issued_;
    ++outstanding_;
    next_due_ = sub.clock() + cfg_.interval;
  }
}

void LookupWorkload::on_action(const Substrate& sub, const ActionRecord& rec) {
  if (rec.kind != ActionRecord::Kind::Deliver || !rec.consumed.has_value())
    return;
  const Message& m = *rec.consumed;
  if (m.verb() != Verb::Overlay ||
      (m.tag() != kTagLookupHit && m.tag() != kTagLookupMiss))
    return;
  const auto it = open_.find({rec.actor, m.token});
  if (it == open_.end() || it->second.empty()) return;  // not ours
  const Issue issue = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) open_.erase(it);
  ++resolved_;
  --outstanding_;
  if (m.tag() == kTagLookupHit)
    ++hits_;
  else
    ++misses_;
  lat_clock_.push_back(sub.clock() - issue.clock);
  lat_us_.push_back(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - issue.wall)
          .count()));
}

WorkloadReport LookupWorkload::report() const {
  WorkloadReport r;
  r.issued = issued_;
  r.resolved = resolved_;
  r.hits = hits_;
  r.misses = misses_;
  r.unresolved = outstanding_;
  r.p50_clock = percentile(lat_clock_, 50);
  r.p95_clock = percentile(lat_clock_, 95);
  r.p50_us = percentile(lat_us_, 50);
  r.p95_us = percentile(lat_us_, 95);
  return r;
}

}  // namespace fdp
