// Structured run traces.
//
// TraceRecorder captures every executed action as one JSON-lines record —
// actor, kind, consumed message, sends, exit/sleep/wake — either into an
// in-memory ring (for tests and post-mortem printing) or streamed to a
// file for offline analysis/visualization. The JSON encoder is local and
// tiny; records are flat so any JSONL tooling can consume them.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <string>

#include "sim/observer.hpp"

namespace fdp {

class TraceRecorder final : public Observer {
 public:
  /// Keep the last `ring_capacity` records in memory; if `path` is
  /// non-empty, additionally stream every record to that file.
  explicit TraceRecorder(std::size_t ring_capacity = 256,
                         std::string path = "");

  void on_action(const World& world, const ActionRecord& rec) override;

  [[nodiscard]] const std::deque<std::string>& ring() const { return ring_; }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

  /// Render one action record as a single JSON line (exposed for tests).
  [[nodiscard]] static std::string to_json(const ActionRecord& rec);

  /// Dump the ring to stdout (debugging aid).
  void print_ring() const;

 private:
  std::size_t capacity_;
  std::deque<std::string> ring_;
  std::ofstream out_;
  std::uint64_t recorded_ = 0;
};

}  // namespace fdp
