// Structured run traces.
//
// TraceRecorder captures every executed action as one JSON-lines record —
// actor, kind, consumed message, sends, exit/sleep/wake — either into an
// in-memory ring (for tests and post-mortem printing) or streamed to a
// file for offline analysis/visualization. The JSON encoder is local and
// tiny; records are flat so any JSONL tooling can consume them.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <string>

#include "sim/observer.hpp"

namespace fdp {

// A TraceRecorder owns all of its state (ring, stream, error), so the
// parallel experiment driver can attach one recorder per trial World with
// no sharing between workers — provided each trial streams to its own
// file path.
class TraceRecorder final : public Observer {
 public:
  /// Keep the last `ring_capacity` records in memory; if `path` is
  /// non-empty, additionally stream every record to that file. A path
  /// that cannot be opened is an error — check ok()/error() — and the
  /// recorder keeps working in ring-only mode.
  explicit TraceRecorder(std::size_t ring_capacity = 256,
                         std::string path = "");

  void on_action(const Substrate& world, const ActionRecord& rec) override;

  [[nodiscard]] const std::deque<std::string>& ring() const { return ring_; }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

  /// False when the stream could not be opened or a write failed; the
  /// JSONL output is incomplete in that case (the ring is unaffected).
  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Flush the stream and surface any pending write failure. Called by
  /// the destructor implicitly via ofstream; call explicitly when the
  /// verdict matters before the recorder dies.
  bool flush();

  /// Render one action record as a single JSON line (exposed for tests).
  [[nodiscard]] static std::string to_json(const ActionRecord& rec);

  /// Dump the ring to stdout (debugging aid).
  void print_ring() const;

 private:
  std::size_t capacity_;
  std::deque<std::string> ring_;
  std::ofstream out_;
  std::string path_;
  std::string error_;
  std::uint64_t recorded_ = 0;
};

}  // namespace fdp
