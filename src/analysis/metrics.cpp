#include "analysis/metrics.hpp"

#include "util/check.hpp"

namespace fdp {

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs_) sum += x;
  return sum / static_cast<double>(xs_.size());
}

double Samples::sd() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double x : xs_) m2 += (x - m) * (x - m);
  return std::sqrt(m2 / static_cast<double>(xs_.size() - 1));
}

double Samples::percentile(double q) const {
  FDP_CHECK(q >= 0.0 && q <= 1.0);
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(xs_.size() - 1) + 0.5);
  return xs_[std::min(rank, xs_.size() - 1)];
}

}  // namespace fdp
