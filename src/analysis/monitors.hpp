// Runtime invariant monitors.
//
// These observers turn the paper's proof obligations into machine-checked
// run invariants:
//   SafetyMonitor    — Lemma 2: relevant processes that started in one weak
//                      component stay weakly connected (via relevant
//                      processes) after every action.
//   PotentialMonitor — Lemma 3: Φ never increases.
//   TrafficMonitor   — message/action statistics by verb (for the
//                      experiment tables; no invariant).
//
// Both checking monitors accept a stride: checking after every action is
// exact; larger strides trade completeness for speed in long benches. For
// the *monotone* potential a stride is still sound for detecting sustained
// increases (Φ_t > Φ_{t-stride} implies some step increased it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/legitimacy.hpp"
#include "core/potential.hpp"
#include "sim/observer.hpp"

namespace fdp {

class SafetyMonitor final : public Observer {
 public:
  explicit SafetyMonitor(const World& w, std::uint64_t stride = 1);

  void on_action(const World& world, const ActionRecord& rec) override;

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::uint64_t>& violations() const {
    return violations_;  // step numbers at which safety was broken
  }
  [[nodiscard]] std::uint64_t checks() const { return checks_; }

 private:
  LegitimacyChecker checker_;
  std::uint64_t stride_;
  std::uint64_t since_ = 0;
  std::uint64_t checks_ = 0;
  std::vector<std::uint64_t> violations_;
};

class PotentialMonitor final : public Observer {
 public:
  explicit PotentialMonitor(const World& w, std::uint64_t stride = 1);

  void on_action(const World& world, const ActionRecord& rec) override;

  [[nodiscard]] bool ok() const { return increases_.empty(); }
  /// (step, before, after) triples where Φ increased.
  struct Increase {
    std::uint64_t step;
    std::uint64_t before;
    std::uint64_t after;
  };
  [[nodiscard]] const std::vector<Increase>& increases() const {
    return increases_;
  }
  [[nodiscard]] std::uint64_t initial_phi() const { return initial_; }
  [[nodiscard]] std::uint64_t last_phi() const { return last_; }
  /// Sampled (step, phi) series for decay plots.
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
  series() const {
    return series_;
  }

 private:
  std::uint64_t stride_;
  std::uint64_t since_ = 0;
  std::uint64_t initial_ = 0;
  std::uint64_t last_ = 0;
  std::vector<Increase> increases_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> series_;
};

class TrafficMonitor final : public Observer {
 public:
  void on_action(const World& world, const ActionRecord& rec) override;

  [[nodiscard]] std::uint64_t sent(Verb v) const {
    return sent_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::uint64_t total_sent() const;
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }

  /// Per-process load: messages sent by / delivered to each process.
  /// Useful for hot-spot analysis (e.g. the star's center).
  [[nodiscard]] std::uint64_t sent_by(ProcessId p) const {
    return p < sent_by_.size() ? sent_by_[p] : 0;
  }
  [[nodiscard]] std::uint64_t received_by(ProcessId p) const {
    return p < received_by_.size() ? received_by_[p] : 0;
  }
  /// Largest per-process receive count divided by the mean (1.0 =
  /// perfectly balanced). Returns 0 with no deliveries.
  [[nodiscard]] double receive_imbalance() const;

 private:
  std::uint64_t sent_[6] = {};
  std::uint64_t timeouts_ = 0;
  std::uint64_t deliveries_ = 0;
  std::vector<std::uint64_t> sent_by_;
  std::vector<std::uint64_t> received_by_;
};

}  // namespace fdp
