// Runtime invariant monitors.
//
// These observers turn the paper's proof obligations into machine-checked
// run invariants:
//   SafetyMonitor    — Lemma 2: relevant processes that started in one weak
//                      component stay weakly connected (via relevant
//                      processes) after every action.
//   PotentialMonitor — Lemma 3: Φ never increases.
//   TrafficMonitor   — message/action statistics by verb (for the
//                      experiment tables; no invariant).
//
// Both checking monitors accept a stride: checking after every action is
// exact; larger strides trade completeness for speed in long benches. For
// the *monotone* potential a stride is still sound for detecting sustained
// increases (Φ_t > Φ_{t-stride} implies some step increased it).
//
// Both monitors are *incremental*:
//  * PotentialMonitor never re-snapshots the world. Φ is maintained from
//    each ActionRecord's deltas (stored refs before/after, the consumed
//    message, sends, exit) plus the out-of-action inject/remove hooks
//    (chaos faults, scenario posts) — O(refs touched by the action), so
//    stride=1 monitoring costs the same at n=10k as at n=16. A periodic
//    full-recompute cross-check (on by default in debug builds; see
//    set_crosscheck_every) asserts the maintained value against phi(world).
//  * SafetyMonitor re-runs its weak-connectivity BFS only when something
//    since the last check could have changed the process graph or the
//    relevant set: any delivery, send, exit, sleep, ref change, or
//    external channel mutation. Pure no-op timeouts — the steady state of
//    a converged run — skip the BFS entirely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/legitimacy.hpp"
#include "core/potential.hpp"
#include "sim/observer.hpp"

namespace fdp {

class SafetyMonitor final : public Observer {
 public:
  explicit SafetyMonitor(const Substrate& w, std::uint64_t stride = 1);

  void on_action(const Substrate& world, const ActionRecord& rec) override;
  void on_inject(const Substrate& world, ProcessId to, const Message& m) override;
  void on_remove(const Substrate& world, ProcessId from,
                 const Message& m) override;
  void on_fault(const Substrate& world, FaultKind kind, ProcessId target,
                bool applied) override;

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::uint64_t>& violations() const {
    return violations_;  // step numbers at which safety was broken
  }
  /// Connectivity BFS runs actually performed.
  [[nodiscard]] std::uint64_t checks() const { return checks_; }
  /// Stride points skipped because no action since the last check could
  /// have changed the verdict.
  [[nodiscard]] std::uint64_t skipped() const { return skipped_; }

 private:
  LegitimacyChecker checker_;
  std::uint64_t stride_;
  std::uint64_t since_ = 0;
  std::uint64_t checks_ = 0;
  std::uint64_t skipped_ = 0;
  /// The edge set / relevant set may differ from the last checked state.
  bool dirty_ = true;
  std::vector<std::uint64_t> violations_;
};

class PotentialMonitor final : public Observer {
 public:
  explicit PotentialMonitor(const Substrate& w, std::uint64_t stride = 1);

  void on_action(const Substrate& world, const ActionRecord& rec) override;
  void on_inject(const Substrate& world, ProcessId to, const Message& m) override;
  void on_remove(const Substrate& world, ProcessId from,
                 const Message& m) override;
  /// Runtime faults may legally jump Φ (that is their point); the monitor
  /// re-baselines on the applied announcement so only *protocol* actions
  /// can register an increase, and the incremental value stays in sync
  /// with state the fault mutated behind the ActionRecord stream's back.
  void on_fault(const Substrate& world, FaultKind kind, ProcessId target,
                bool applied) override;

  [[nodiscard]] bool ok() const { return increases_.empty(); }
  /// (step, before, after) triples where Φ increased.
  struct Increase {
    std::uint64_t step;
    std::uint64_t before;
    std::uint64_t after;
  };
  [[nodiscard]] const std::vector<Increase>& increases() const {
    return increases_;
  }
  [[nodiscard]] std::uint64_t initial_phi() const { return initial_; }
  [[nodiscard]] std::uint64_t last_phi() const { return last_; }
  /// The incrementally maintained Φ of the current state (last_phi() is
  /// the value at the last stride sample; this is live).
  [[nodiscard]] std::uint64_t current_phi() const {
    return static_cast<std::uint64_t>(phi_);
  }
  /// Sampled (step, phi) series for decay plots.
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
  series() const {
    return series_;
  }

  /// Cross-check the maintained Φ against a full recompute every `every`
  /// actions (0 disables). Defaults to every 1024 actions in debug builds
  /// and off in NDEBUG builds; a mismatch is an FDP_CHECK failure (the
  /// incremental accounting itself would be broken — continuing would
  /// produce wrong science).
  void set_crosscheck_every(std::uint64_t every) { crosscheck_every_ = every; }

 private:
  void apply_action_delta(const Substrate& world, const ActionRecord& rec);

  std::uint64_t stride_;
  std::uint64_t since_ = 0;
  std::uint64_t initial_ = 0;
  std::uint64_t last_ = 0;
  /// Maintained Φ; signed so a buggy negative excursion trips a check
  /// instead of wrapping.
  std::int64_t phi_ = 0;
  std::uint64_t crosscheck_every_;
  std::uint64_t since_crosscheck_ = 0;
  std::vector<Increase> increases_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> series_;
};

/// Measures how fast the protocol restabilizes after each runtime fault
/// (sim/fault.hpp): per applied perturbation it records the Φ jump and the
/// number of steps until (a) Φ is back at or below its pre-fault value and
/// (b) the run is legitimate again. Both sweeps are full recomputes at a
/// stride — the monitor is meant for fault campaigns on experiment-sized
/// worlds, not for the allocation-free hot path.
class RecoveryMonitor final : public Observer {
 public:
  /// Sentinel for "not (yet) recovered".
  static constexpr std::uint64_t kNotRecovered = ~std::uint64_t{0};

  struct Recovery {
    /// World step the recovery clock starts at. For most faults this is
    /// the step the fault applied; for a partition window it is rebased
    /// to the step the window CLOSED (FaultKind::PartitionEnd) — the cut
    /// only delays progress, so drain/re-legitimacy are attributed to the
    /// boundary where withheld deliveries are released.
    std::uint64_t step = 0;
    FaultKind kind = FaultKind::CrashRestart;
    ProcessId target = kNoProcess;  ///< kNoProcess for world-scoped faults
    std::uint64_t phi_before = 0;
    std::uint64_t phi_after = 0;
    /// Steps until Φ first measured at or below phi_before.
    std::uint64_t phi_drain_steps = kNotRecovered;
    /// Steps until the run first measured legitimate again.
    std::uint64_t relegit_steps = kNotRecovered;
  };

  explicit RecoveryMonitor(const Substrate& w, Exclusion excl = Exclusion::Either,
                           std::uint64_t stride = 8);

  void on_action(const Substrate& world, const ActionRecord& rec) override;
  void on_fault(const Substrate& world, FaultKind kind, ProcessId target,
                bool applied) override;

  /// Close outstanding records against the final state (call once after
  /// the run loop; a run that ends legitimate has every perturbation
  /// recovered by definition).
  void finalize(const Substrate& w);

  [[nodiscard]] const std::vector<Recovery>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t injected() const { return records_.size(); }
  /// Perturbations whose re-legitimacy time was measured.
  [[nodiscard]] std::uint64_t recovered() const;
  [[nodiscard]] bool all_recovered() const {
    return recovered() == injected();
  }
  /// Max / mean measured steps-to-re-legitimacy (0 with no recoveries).
  [[nodiscard]] std::uint64_t worst_relegit_steps() const;
  [[nodiscard]] double mean_relegit_steps() const;

 private:
  void sweep(const Substrate& world, std::uint64_t now);

  LegitimacyChecker checker_;
  std::uint64_t stride_;
  std::uint64_t since_ = 0;
  std::uint64_t pre_phi_ = 0;  ///< set by the before-announcement
  bool outstanding_ = false;
  /// Index into records_ of the partition window currently open, or
  /// kNoOpenWindow. The record is held out of sweeps until PartitionEnd
  /// rebases its clock to the close step.
  static constexpr std::size_t kNoOpenWindow = ~std::size_t{0};
  std::size_t open_window_ = kNoOpenWindow;
  std::vector<Recovery> records_;
};

class TrafficMonitor final : public Observer {
 public:
  void on_action(const Substrate& world, const ActionRecord& rec) override;

  [[nodiscard]] std::uint64_t sent(Verb v) const {
    return sent_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::uint64_t total_sent() const;
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }

  /// Per-process load: messages sent by / delivered to each process.
  /// Useful for hot-spot analysis (e.g. the star's center).
  [[nodiscard]] std::uint64_t sent_by(ProcessId p) const {
    return p < sent_by_.size() ? sent_by_[p] : 0;
  }
  [[nodiscard]] std::uint64_t received_by(ProcessId p) const {
    return p < received_by_.size() ? received_by_[p] : 0;
  }
  /// Largest per-process receive count divided by the mean (1.0 =
  /// perfectly balanced). Returns 0 with no deliveries.
  [[nodiscard]] double receive_imbalance() const;

 private:
  std::uint64_t sent_[6] = {};
  std::uint64_t timeouts_ = 0;
  std::uint64_t deliveries_ = 0;
  std::vector<std::uint64_t> sent_by_;
  std::vector<std::uint64_t> received_by_;
};

}  // namespace fdp
