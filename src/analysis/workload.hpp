// Served-lookup workload generator (the OverSim DHTTestApp idiom — see
// docs/substrate_idioms.md).
//
// The generator plays the client population: it injects kTagLookup
// requests at randomly chosen *staying* access nodes (a client talks to a
// staying access point) and measures, per request, whether a verdict came
// back and how long it took — while departures are running underneath.
// This is the paper's service-availability question made measurable: the
// departure protocol promises that stayers keep a working overlay while
// leavers exit; the workload quantifies "working" as lookup success rate
// and latency.
//
// Mechanics: a request is Message{Verb::Overlay, kTagLookup,
// token = target key, refs[0] = the access node's own RefInfo} admitted
// via Substrate::inject at the access node. The overlay routes it greedily
// (OverlayProtocol::serve_lookup) and the resolver answers
// kTagLookupHit/Miss to refs[0] with the token echoed. The generator is an
// Observer: a completion is the *delivery* of a Hit/Miss message at the
// access node carrying the request's token. Requests that never complete
// (e.g. routed into a leaver that bounced them) stay outstanding and count
// against the success rate — that is signal, not noise.
//
// Latency is recorded in substrate clock units (steps / events;
// substrate-comparable) and wall-clock microseconds (meaningful on the
// live runtime; harmless noise on the simulator).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "sim/observer.hpp"
#include "sim/substrate.hpp"
#include "util/rng.hpp"

namespace fdp {

struct WorkloadConfig {
  /// Total lookup requests to issue.
  std::size_t total = 100;
  /// Substrate clock ticks between consecutive issues.
  std::uint64_t interval = 4;
  /// Probability a request targets a random (almost surely absent) key —
  /// expected Miss; otherwise the key of a random staying process —
  /// expected Hit.
  double absent_prob = 0.0;
  std::uint64_t seed = 1;
};

struct WorkloadReport {
  std::uint64_t issued = 0;
  std::uint64_t resolved = 0;  ///< got a Hit or Miss verdict
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t unresolved = 0;  ///< outstanding at report time
  std::uint64_t p50_clock = 0;  ///< latency percentiles, clock units
  std::uint64_t p95_clock = 0;
  std::uint64_t p50_us = 0;  ///< latency percentiles, wall microseconds
  std::uint64_t p95_us = 0;

  /// A resolved verdict — Hit or Miss — is a success; the overlay answered.
  [[nodiscard]] double success_rate() const {
    return issued == 0 ? 1.0
                       : static_cast<double>(resolved) /
                             static_cast<double>(issued);
  }
};

class LookupWorkload final : public Observer {
 public:
  /// `refs`/`keys`/`leaving` by process id (a Scenario/LiveScenario
  /// population). Register as observer on the substrate yourself.
  LookupWorkload(std::vector<Ref> refs, std::vector<std::uint64_t> keys,
                 std::vector<bool> leaving, WorkloadConfig cfg);

  /// Issue every request whose due time has passed. Call once per driver
  /// loop iteration.
  void pump(Substrate& sub);

  /// Completion detection (Hit/Miss deliveries at access nodes).
  void on_action(const Substrate& sub, const ActionRecord& rec) override;

  [[nodiscard]] bool all_issued() const { return issued_ >= cfg_.total; }
  [[nodiscard]] bool all_resolved() const {
    return all_issued() && outstanding_ == 0;
  }
  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] std::uint64_t resolved() const { return resolved_; }

  [[nodiscard]] WorkloadReport report() const;

 private:
  struct Issue {
    std::uint64_t clock;
    std::chrono::steady_clock::time_point wall;
  };

  WorkloadConfig cfg_;
  std::vector<Ref> refs_;
  std::vector<std::uint64_t> keys_;
  std::vector<ProcessId> stayers_;
  Rng rng_;
  std::uint64_t next_due_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t resolved_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t outstanding_ = 0;
  /// (access node, target key) -> issue times, FIFO per key: repeated
  /// lookups of the same key from the same node match oldest-first.
  std::map<std::pair<ProcessId, std::uint64_t>, std::deque<Issue>> open_;
  std::vector<std::uint64_t> lat_clock_;
  std::vector<std::uint64_t> lat_us_;
};

}  // namespace fdp
