// The parallel multi-trial experiment driver.
//
// Every statistical claim in the paper (Lemma 2 safety, Lemma 3 Φ-drain,
// the O(log n) round bounds) is a statement over *many* seeded
// adversarial schedules. The driver fans an ExperimentSpec's trial matrix
// (scenario spec x scheduler spec x seed range) across a std::thread
// worker pool. Each worker builds its own independent World replica via
// ScenarioSpec::build(seed), so trials share no mutable state; results
// are written into a preallocated slot per trial and aggregated in seed
// order, which makes the output — tables, CSV, aggregates — byte-identical
// whether the sweep ran on 1 thread or N.
//
// Trials are crash-isolated: an exception escaping one trial marks that
// trial failed (TrialResult::threw, with the diagnostic in run.failure)
// and the sweep continues; ExperimentSpec::retries() opts into bounded
// re-attempts first. FDP_CHECK failures are invariant violations and
// still abort the process — isolating those would mask broken science.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/experiment.hpp"

namespace fdp {

/// Workers actually used for a request: `requested`, or one per hardware
/// core when `requested` is 0.
[[nodiscard]] unsigned resolve_workers(unsigned requested);

/// Deterministic parallel map: apply `fn` to every index in [0, count)
/// on `workers` threads and return the results in index order (identical
/// to the sequential result regardless of worker count). R must be
/// default-constructible; `fn` must not touch shared mutable state.
template <typename Fn>
[[nodiscard]] auto parallel_map(std::uint64_t count, unsigned workers, Fn&& fn)
    -> std::vector<decltype(fn(std::uint64_t{}))> {
  using R = decltype(fn(std::uint64_t{}));
  std::vector<R> out(static_cast<std::size_t>(count));
  if (count == 0) return out;
  const unsigned pool = std::min<std::uint64_t>(resolve_workers(workers),
                                                count);
  if (pool <= 1) {
    for (std::uint64_t i = 0; i < count; ++i) out[i] = fn(i);
    return out;
  }
  std::atomic<std::uint64_t> next{0};
  auto work = [&]() {
    for (std::uint64_t i = next.fetch_add(1); i < count;
         i = next.fetch_add(1)) {
      out[i] = fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(pool);
  for (unsigned t = 0; t < pool; ++t) threads.emplace_back(work);
  for (std::thread& t : threads) t.join();
  return out;
}

/// parallel_map with per-worker scratch state: each worker thread owns one
/// default-constructed State for its whole lifetime and `fn(i, state)` may
/// mutate it freely. This is how the driver reuses one World per thread
/// across a trial sweep (the state caches the retired world between
/// trials). Determinism contract: `fn`'s RESULT must not depend on the
/// state's history — state is a capacity cache, not an input — so the
/// output stays byte-identical for any worker count.
template <typename State, typename Fn>
[[nodiscard]] auto parallel_map_with(std::uint64_t count, unsigned workers,
                                     Fn&& fn)
    -> std::vector<decltype(fn(std::uint64_t{}, std::declval<State&>()))> {
  using R = decltype(fn(std::uint64_t{}, std::declval<State&>()));
  std::vector<R> out(static_cast<std::size_t>(count));
  if (count == 0) return out;
  const unsigned pool = std::min<std::uint64_t>(resolve_workers(workers),
                                                count);
  if (pool <= 1) {
    State state{};
    for (std::uint64_t i = 0; i < count; ++i) out[i] = fn(i, state);
    return out;
  }
  std::atomic<std::uint64_t> next{0};
  auto work = [&]() {
    State state{};
    for (std::uint64_t i = next.fetch_add(1); i < count;
         i = next.fetch_add(1)) {
      out[i] = fn(i, state);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(pool);
  for (unsigned t = 0; t < pool; ++t) threads.emplace_back(work);
  for (std::thread& t : threads) t.join();
  return out;
}

/// A finished experiment: per-trial results in seed order plus their
/// deterministic aggregate (and the wall-clock the sweep took, which is
/// the only field allowed to differ between worker counts).
struct ExperimentResult {
  std::vector<TrialResult> trials;
  Aggregate agg;
  unsigned workers_used = 1;
  double wall_seconds = 0.0;
  /// Process-wide VmHWM (peak RSS, kB) sampled after the sweep. Like
  /// wall_seconds this is environment-dependent — it covers the whole
  /// process, not just this sweep — so it must never feed deterministic
  /// output (CSV, aggregates); it is a reporting-only measurement. 0 when
  /// /proc/self/status is unavailable.
  std::uint64_t peak_rss_kb = 0;
};

class ExperimentDriver {
 public:
  /// `workers` = 0 picks one per hardware core. A spec's own workers()
  /// setting (when non-zero) takes precedence per run.
  explicit ExperimentDriver(unsigned workers = 0) : workers_(workers) {}

  [[nodiscard]] unsigned workers() const { return resolve_workers(workers_); }

  /// Execute the spec's full seed sweep. FDP_CHECKs that the spec
  /// validates; call spec.validate() first to handle errors gracefully.
  [[nodiscard]] ExperimentResult run(const ExperimentSpec& spec) const;

  /// Deterministic parallel map over [0, count) using this driver's pool
  /// size — the escape hatch for bench harnesses whose per-seed work is
  /// more than one run_to_legitimacy call.
  template <typename Fn>
  [[nodiscard]] auto map(std::uint64_t count, Fn&& fn) const {
    return parallel_map(count, workers_, std::forward<Fn>(fn));
  }

 private:
  unsigned workers_;
};

/// Dump one row per trial (seed, solved, steps, rounds, messages, Φ,
/// verdicts) to `path`. Returns "" on success or a diagnostic.
[[nodiscard]] std::string write_trials_csv(const std::string& path,
                                           const ExperimentSpec& spec,
                                           const std::vector<TrialResult>&
                                               trials);

}  // namespace fdp
