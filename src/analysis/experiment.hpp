// Experiment runner: drives one scenario to its legitimate state under a
// chosen scheduler, with optional invariant monitors, and reports
// everything the bench tables print.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "analysis/scenario.hpp"
#include "core/legitimacy.hpp"
#include "core/potential.hpp"
#include "sim/scheduler.hpp"

namespace fdp {

enum class SchedulerKind : std::uint8_t {
  Random,
  RoundRobin,
  Rounds,
  Adversarial,
};

[[nodiscard]] const char* to_string(SchedulerKind k);
[[nodiscard]] SchedulerKind scheduler_by_name(const std::string& name);
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(SchedulerKind k);

struct RunOptions {
  std::uint64_t max_steps = 2'000'000;
  /// Attach SafetyMonitor/PotentialMonitor/PrimitiveAuditor. Slows runs by
  /// an O(E) snapshot per checked action.
  bool with_monitors = false;
  /// Monitor stride (actions between checks).
  std::uint64_t monitor_stride = 1;
  /// Steps between (cheap) termination checks.
  std::uint64_t check_every = 64;
  SchedulerKind scheduler = SchedulerKind::Random;
  /// After reaching legitimacy, run this many extra steps and re-check
  /// (closure property).
  std::uint64_t closure_steps = 0;
};

struct RunResult {
  bool reached_legitimate = false;
  bool closure_held = true;          ///< only meaningful with closure_steps
  std::uint64_t steps = 0;           ///< actions executed until legitimacy
  std::uint64_t rounds = 0;          ///< only for SchedulerKind::Rounds
  std::uint64_t sends = 0;
  std::uint64_t exits = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t wakes = 0;
  std::uint64_t phi_initial = 0;
  std::uint64_t phi_final = 0;
  // Monitor verdicts (true when monitors were off).
  bool safety_ok = true;
  bool phi_monotone = true;
  bool audit_ok = true;
  std::string failure;  ///< first diagnostic when something went wrong
};

/// Run a departure-protocol scenario (bare, framework or baseline — the
/// scenario already owns the right process population) until legitimacy.
/// `exclusion` selects the FDP/FSP acceptance criterion.
[[nodiscard]] RunResult run_to_legitimacy(Scenario& sc, Exclusion exclusion,
                                          const RunOptions& opt);

}  // namespace fdp
