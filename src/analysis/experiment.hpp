// Experiment API: a validated, value-semantic description of a trial
// matrix (scenario spec x scheduler spec x seed range) plus the
// single-trial runner that drives one scenario to its legitimate state.
//
// The multi-trial, multi-threaded driver that executes a whole
// ExperimentSpec lives in analysis/driver.hpp; this header owns the
// vocabulary types shared by the driver, the benches and the tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/scenario.hpp"
#include "core/legitimacy.hpp"
#include "core/potential.hpp"
#include "sim/fault.hpp"
#include "sim/observer.hpp"
#include "sim/scheduler.hpp"

namespace fdp {

class Flags;

enum class SchedulerKind : std::uint8_t {
  Random,
  RoundRobin,
  Rounds,
  Adversarial,
};

[[nodiscard]] const char* to_string(SchedulerKind k);
[[nodiscard]] SchedulerKind scheduler_by_name(const std::string& name);

/// A scheduler *description*: kind plus every tuning knob the concrete
/// schedulers expose. This is the ONE scheduler factory — examples,
/// benches, tests and the driver all instantiate through of()/make().
/// Value type, so a trial matrix can carry it by copy and every worker
/// instantiates its own independent Scheduler from it.
struct SchedulerSpec {
  SchedulerKind kind = SchedulerKind::Random;

  // --- RandomScheduler ---
  /// Probability of picking a delivery over a timeout; < 0 = proportional
  /// to the number of enabled actions of each kind.
  double p_deliver = -1.0;
  /// Probability that a delivery picks the globally oldest message.
  double p_oldest = 0.25;

  // --- RoundRobinScheduler ---
  /// Every `timeout_share`-th action is a timeout.
  std::uint32_t timeout_share = 6;

  // --- AdversarialScheduler ---
  /// Withholding delay: a message is deliverable only after it aged this
  /// many world steps.
  std::uint64_t adv_min_age = 8;
  /// Deliveries per timeout once the age gate opens.
  std::uint32_t adv_deliver_burst = 8;

  [[nodiscard]] static SchedulerSpec of(SchedulerKind k) {
    SchedulerSpec s;
    s.kind = k;
    return s;
  }

  /// Instantiate a fresh scheduler configured from this spec.
  [[nodiscard]] std::unique_ptr<Scheduler> make() const;

  [[nodiscard]] const char* name() const { return to_string(kind); }
};

/// Build a SchedulerSpec from command-line flags: --sched (name),
/// --sched-delay (adversarial withholding delay), --sched-burst
/// (adversarial deliver burst), --sched-timeout-share (round-robin).
[[nodiscard]] SchedulerSpec scheduler_spec_from_flags(
    Flags& flags, const std::string& default_kind = "random");

/// Everything one experiment needs: the per-trial run knobs plus the
/// trial matrix (scenario x scheduler x seeds) and driver settings.
/// Builder-style — setters return *this so specs read as one chained
/// expression — and validated: validate() reports the first problem,
/// and the runners refuse invalid specs.
class ExperimentSpec {
 public:
  // --- per-trial run knobs ---
  ExperimentSpec& max_steps(std::uint64_t v) { max_steps_ = v; return *this; }
  /// Attach SafetyMonitor/PotentialMonitor/PrimitiveAuditor, checking
  /// every `stride` actions. Slows runs by an O(E) snapshot per check.
  ExperimentSpec& monitors(bool on, std::uint64_t stride = 1) {
    with_monitors_ = on;
    monitor_stride_ = stride;
    return *this;
  }
  /// Steps between (cheap) termination checks.
  ExperimentSpec& check_every(std::uint64_t v) { check_every_ = v; return *this; }
  /// After reaching legitimacy, run this many extra steps and re-check
  /// (closure property).
  ExperimentSpec& closure_steps(std::uint64_t v) { closure_steps_ = v; return *this; }
  /// FDP (Gone) or FSP (Hibernating) acceptance criterion.
  ExperimentSpec& exclusion(Exclusion e) { exclusion_ = e; return *this; }
  ExperimentSpec& scheduler(SchedulerSpec s) { scheduler_ = s; return *this; }
  /// Inject runtime faults mid-run (sim/fault.hpp; empty plan = off). The
  /// injector wraps the configured scheduler per trial and draws from its
  /// own Rng stream seeded from plan.seed mixed with the trial seed, so
  /// fault campaigns replay byte-identically for any worker count. A
  /// RecoveryMonitor is attached automatically; its measurements land in
  /// RunResult's fault fields.
  ExperimentSpec& faults(FaultPlan plan) {
    faults_ = std::move(plan);
    return *this;
  }
  /// Execute trials on the epoch-stepped sharded kernel
  /// (sim/sharded_world.hpp) with this many shards instead of the classic
  /// per-action step loop (0 = classic). The SchedulerSpec maps onto the
  /// equivalent per-epoch ShardPolicy; the action trace is byte-identical
  /// for every shard count, but NOT to the classic engine's (the epoch
  /// model is a different — equally legal — adversary). Requires a
  /// stateless oracle: validate() rejects "quiet:*" and unreliable-oracle
  /// configurations, whose per-call state is consultation-order-dependent.
  ExperimentSpec& shards(unsigned k) {
    shards_ = k;
    return *this;
  }
  /// Per-trial wall-clock budget in seconds (0 = off), checked between
  /// check_every blocks; an over-budget trial is recorded failed and the
  /// sweep continues. This is a real-time safety net for fault campaigns
  /// with unknown convergence — a sweep that actually trips it is no
  /// longer machine-independent, so deterministic budgets should use
  /// max_steps.
  ExperimentSpec& trial_timeout(double seconds) {
    trial_timeout_ = seconds;
    return *this;
  }
  /// Extra attempts for a trial whose execution THROWS (total attempts =
  /// 1 + retries; each retry rebuilds the scenario from the same seed).
  /// Exception isolation itself is unconditional — a throwing trial is
  /// recorded failed with diagnostics and the sweep continues.
  ExperimentSpec& retries(unsigned r) {
    retries_ = r;
    return *this;
  }
  /// Test/diagnostic hook invoked with the trial seed at the start of
  /// every attempt, inside the driver's isolation scope (so a throwing
  /// hook exercises the failure path). Must be thread-safe; called
  /// concurrently from worker threads.
  ExperimentSpec& on_trial_start(std::function<void(std::uint64_t)> fn) {
    on_trial_start_ = std::move(fn);
    return *this;
  }

  // --- trial matrix ---
  ExperimentSpec& scenario(ScenarioSpec s) { scenario_ = std::move(s); return *this; }
  /// Seed sweep [first, first + count).
  ExperimentSpec& seeds(std::uint64_t first, std::uint64_t count) {
    seed_first_ = first;
    seed_count_ = count;
    return *this;
  }
  /// Decorrelate sweeps: the scenario seed of trial i is
  /// (first + i) * mul + add (mul defaults to 1, add to 0).
  ExperimentSpec& seed_mix(std::uint64_t mul, std::uint64_t add) {
    seed_mul_ = mul;
    seed_add_ = add;
    return *this;
  }

  // --- driver settings ---
  /// Worker threads; 0 = one per hardware core.
  ExperimentSpec& workers(unsigned w) { workers_ = w; return *this; }
  /// When non-empty, every trial streams a JSONL trace to this path with
  /// "{seed}" replaced by the trial's scenario seed (the placeholder is
  /// required so parallel trials never share a stream).
  ExperimentSpec& trace_pattern(std::string pattern) {
    trace_pattern_ = std::move(pattern);
    return *this;
  }

  // --- getters ---
  [[nodiscard]] std::uint64_t max_steps() const { return max_steps_; }
  [[nodiscard]] bool with_monitors() const { return with_monitors_; }
  [[nodiscard]] std::uint64_t monitor_stride() const { return monitor_stride_; }
  [[nodiscard]] std::uint64_t check_every() const { return check_every_; }
  [[nodiscard]] std::uint64_t closure_steps() const { return closure_steps_; }
  [[nodiscard]] Exclusion exclusion() const { return exclusion_; }
  [[nodiscard]] const SchedulerSpec& scheduler() const { return scheduler_; }
  [[nodiscard]] unsigned shards() const { return shards_; }
  [[nodiscard]] const FaultPlan& faults() const { return faults_; }
  [[nodiscard]] double trial_timeout() const { return trial_timeout_; }
  [[nodiscard]] unsigned retries() const { return retries_; }
  [[nodiscard]] const std::function<void(std::uint64_t)>& trial_start_hook()
      const {
    return on_trial_start_;
  }
  [[nodiscard]] const ScenarioSpec& scenario() const { return scenario_; }
  [[nodiscard]] std::uint64_t seed_first() const { return seed_first_; }
  [[nodiscard]] std::uint64_t seed_count() const { return seed_count_; }
  [[nodiscard]] unsigned workers() const { return workers_; }
  [[nodiscard]] const std::string& trace_pattern() const {
    return trace_pattern_;
  }

  /// Scenario seed of trial i (applies the seed_mix affine map).
  [[nodiscard]] std::uint64_t trial_seed(std::uint64_t i) const {
    return (seed_first_ + i) * seed_mul_ + seed_add_;
  }

  /// First problem with this spec, or "" when it is runnable.
  [[nodiscard]] std::string validate() const;

 private:
  std::uint64_t max_steps_ = 2'000'000;
  bool with_monitors_ = false;
  std::uint64_t monitor_stride_ = 1;
  std::uint64_t check_every_ = 64;
  std::uint64_t closure_steps_ = 0;
  Exclusion exclusion_ = Exclusion::Gone;
  SchedulerSpec scheduler_;
  unsigned shards_ = 0;
  FaultPlan faults_;
  double trial_timeout_ = 0.0;
  unsigned retries_ = 0;
  std::function<void(std::uint64_t)> on_trial_start_;
  ScenarioSpec scenario_;
  std::uint64_t seed_first_ = 1;
  std::uint64_t seed_count_ = 1;
  std::uint64_t seed_mul_ = 1;
  std::uint64_t seed_add_ = 0;
  unsigned workers_ = 0;
  std::string trace_pattern_;
};

struct RunResult {
  bool reached_legitimate = false;
  bool closure_held = true;          ///< only meaningful with closure_steps
  std::uint64_t steps = 0;           ///< actions executed until legitimacy
  std::uint64_t rounds = 0;          ///< only for SchedulerKind::Rounds
  std::uint64_t sends = 0;
  std::uint64_t exits = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t wakes = 0;
  std::uint64_t phi_initial = 0;
  std::uint64_t phi_final = 0;
  // Monitor verdicts (true when monitors were off).
  bool safety_ok = true;
  bool phi_monotone = true;
  bool audit_ok = true;
  // Fault-campaign measurements (populated only when the spec carried a
  // FaultPlan; see RecoveryMonitor).
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_recovered = 0;   ///< re-legitimacy time measured
  std::uint64_t recovery_steps_max = 0; ///< worst steps-to-re-legitimacy
  double recovery_steps_mean = 0.0;
  /// World::live_bytes() at the end of the run: the deterministic
  /// (size-based, not capacity-based) resident footprint of the final
  /// configuration. Unlike RSS or capacity numbers this is a pure function
  /// of the trial seed, so it is safe in CSV output and aggregates, which
  /// must stay byte-identical for any worker count.
  std::uint64_t live_bytes = 0;
  std::string failure;  ///< first diagnostic when something went wrong

  /// Invalid-information drained: Φ(start) - Φ(end) (0 if Φ grew, which
  /// the monitors would flag).
  [[nodiscard]] std::uint64_t phi_drain() const {
    return phi_initial >= phi_final ? phi_initial - phi_final : 0;
  }
};

/// One cell of the trial matrix, as executed by the driver.
struct TrialResult {
  std::uint64_t index = 0;       ///< position in the seed sweep
  std::uint64_t seed = 0;        ///< scenario seed actually used
  std::size_t leaving_count = 0; ///< leavers the built scenario contained
  RunResult run;
  std::string trace_error;       ///< non-empty if the JSONL trace failed
  /// Execution attempts consumed (1 + retries used; see
  /// ExperimentSpec::retries).
  unsigned attempts = 1;
  /// True when the final attempt ended in a caught exception; run.failure
  /// carries the diagnostic and the sweep continued (crash isolation).
  bool threw = false;
};

/// Deterministic aggregate over a trial set: population counters plus
/// exact order statistics (mean/p50/p95) of the per-run measurements.
/// Timing samples cover solved trials only; counters cover all trials.
struct Aggregate {
  std::uint64_t trials = 0;
  std::uint64_t solved = 0;
  std::uint64_t safety_violations = 0;
  std::uint64_t phi_violations = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t closure_violations = 0;
  std::uint64_t trace_errors = 0;
  std::uint64_t exceptions = 0;           ///< trials whose execution threw
  std::uint64_t total_exits = 0;          ///< all trials
  std::uint64_t expected_exits = 0;       ///< sum of scenario leaving counts
  std::uint64_t faults_injected = 0;      ///< runtime perturbations applied
  std::uint64_t faults_unrecovered = 0;   ///< no re-legitimacy measured
  Samples steps, rounds, sends, sleeps, wakes, phi_drain;
  /// Per-trial WORST steps-to-re-legitimacy (solved fault trials only).
  Samples recovery_steps;
  /// End-of-run World::live_bytes() (deterministic resident footprint).
  Samples live_bytes;
  std::string first_failure;

  void add(const TrialResult& t);

  [[nodiscard]] bool clean() const {
    return solved == trials && safety_violations == 0 &&
           phi_violations == 0 && audit_violations == 0 &&
           closure_violations == 0 && trace_errors == 0 && exceptions == 0 &&
           faults_unrecovered == 0;
  }
  /// "clean", or a compact breakdown of what went wrong.
  [[nodiscard]] std::string verdict() const;
};

[[nodiscard]] Aggregate aggregate(const std::vector<TrialResult>& trials);

/// Run one departure-protocol scenario (bare, framework or baseline — the
/// scenario already owns the right process population) until legitimacy.
/// Uses only the per-trial knobs of `spec` (max_steps, monitors,
/// check_every, closure_steps, exclusion, scheduler); the trial matrix
/// belongs to the driver. `extra` is attached as an observer for the
/// duration of the run (e.g. a per-trial TraceRecorder).
[[nodiscard]] RunResult run_to_legitimacy(Scenario& sc,
                                          const ExperimentSpec& spec,
                                          Observer* extra = nullptr);

}  // namespace fdp
