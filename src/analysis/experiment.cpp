#include "analysis/experiment.hpp"

#include <chrono>

#include "analysis/monitors.hpp"
#include "core/primitives.hpp"
#include "sim/sharded_world.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace fdp {

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::Random: return "random";
    case SchedulerKind::RoundRobin: return "roundrobin";
    case SchedulerKind::Rounds: return "rounds";
    case SchedulerKind::Adversarial: return "adversarial";
  }
  return "?";
}

SchedulerKind scheduler_by_name(const std::string& name) {
  if (name == "random") return SchedulerKind::Random;
  if (name == "roundrobin") return SchedulerKind::RoundRobin;
  if (name == "rounds") return SchedulerKind::Rounds;
  if (name == "adversarial") return SchedulerKind::Adversarial;
  FDP_CHECK_MSG(false, "unknown scheduler name");
  return SchedulerKind::Random;
}

std::unique_ptr<Scheduler> SchedulerSpec::make() const {
  switch (kind) {
    case SchedulerKind::Random:
      return std::make_unique<RandomScheduler>(p_deliver, p_oldest);
    case SchedulerKind::RoundRobin:
      return std::make_unique<RoundRobinScheduler>(timeout_share);
    case SchedulerKind::Rounds: return std::make_unique<RoundScheduler>();
    case SchedulerKind::Adversarial:
      return std::make_unique<AdversarialScheduler>(adv_min_age,
                                                    adv_deliver_burst);
  }
  return nullptr;
}

SchedulerSpec scheduler_spec_from_flags(Flags& flags,
                                        const std::string& default_kind) {
  SchedulerSpec spec =
      SchedulerSpec::of(scheduler_by_name(flags.get_string("sched",
                                                           default_kind)));
  spec.adv_min_age = static_cast<std::uint64_t>(
      flags.get_int("sched-delay", static_cast<std::int64_t>(spec.adv_min_age)));
  spec.adv_deliver_burst = static_cast<std::uint32_t>(flags.get_int(
      "sched-burst", static_cast<std::int64_t>(spec.adv_deliver_burst)));
  spec.timeout_share = static_cast<std::uint32_t>(flags.get_int(
      "sched-timeout-share", static_cast<std::int64_t>(spec.timeout_share)));
  return spec;
}

std::string ExperimentSpec::validate() const {
  if (max_steps_ == 0) return "max_steps must be > 0";
  if (check_every_ == 0) return "check_every must be > 0";
  if (with_monitors_ && monitor_stride_ == 0)
    return "monitor_stride must be > 0";
  if (seed_count_ == 0) return "seed range is empty (seed count must be > 0)";
  if (seed_mul_ == 0) return "seed_mix multiplier must be > 0";
  if (scenario_.config.n == 0) return "scenario population is empty (n = 0)";
  if (!trace_pattern_.empty() &&
      trace_pattern_.find("{seed}") == std::string::npos)
    return "trace_pattern must contain the {seed} placeholder";
  if (scheduler_.make() == nullptr) return "unknown scheduler kind";
  const std::string fault_problem = faults_.validate();
  if (!fault_problem.empty()) return "faults: " + fault_problem;
  if (trial_timeout_ < 0.0) return "trial_timeout must be >= 0";
  if (shards_ > 0) {
    // The sharded kernel consults the oracle for all active leaving
    // processes concurrently (phase 1), so per-call oracle state would be
    // both racy and consultation-order-dependent. Two oracles keep such
    // state (core/oracle.cpp): the quiet:* family (a shared per-process
    // call counter) and the unreliable wrapper (a shared lie-Rng stream).
    if (scenario_.config.oracle.rfind("quiet", 0) == 0)
      return "sharded runs need a stateless oracle (quiet:* counts calls)";
    if (scenario_.config.oracle_p_false_pos > 0.0 ||
        scenario_.config.oracle_p_false_neg > 0.0)
      return "sharded runs need a reliable oracle (the unreliable wrapper's "
             "lie stream depends on consultation order)";
  }
  return "";
}

void Aggregate::add(const TrialResult& t) {
  const RunResult& r = t.run;
  ++trials;
  total_exits += r.exits;
  expected_exits += t.leaving_count;
  if (!r.safety_ok) ++safety_violations;
  if (!r.phi_monotone) ++phi_violations;
  if (!r.audit_ok) ++audit_violations;
  if (!r.closure_held) ++closure_violations;
  if (!t.trace_error.empty()) {
    ++trace_errors;
    if (first_failure.empty()) first_failure = t.trace_error;
  }
  if (t.threw) ++exceptions;
  faults_injected += r.faults_injected;
  faults_unrecovered += r.faults_injected - r.faults_recovered;
  if (!r.failure.empty() && first_failure.empty()) first_failure = r.failure;
  if (!r.reached_legitimate) return;
  ++solved;
  steps.add(static_cast<double>(r.steps));
  rounds.add(static_cast<double>(r.rounds));
  sends.add(static_cast<double>(r.sends));
  sleeps.add(static_cast<double>(r.sleeps));
  wakes.add(static_cast<double>(r.wakes));
  phi_drain.add(static_cast<double>(r.phi_drain()));
  live_bytes.add(static_cast<double>(r.live_bytes));
  if (r.faults_injected > 0)
    recovery_steps.add(static_cast<double>(r.recovery_steps_max));
}

std::string Aggregate::verdict() const {
  if (clean()) return "clean";
  std::string s =
      "ok=" + std::to_string(solved) + "/" + std::to_string(trials);
  if (safety_violations) s += " safety!=" + std::to_string(safety_violations);
  if (phi_violations) s += " phi!=" + std::to_string(phi_violations);
  if (audit_violations) s += " audit!=" + std::to_string(audit_violations);
  if (closure_violations)
    s += " closure!=" + std::to_string(closure_violations);
  if (trace_errors) s += " trace!=" + std::to_string(trace_errors);
  if (exceptions) s += " threw!=" + std::to_string(exceptions);
  if (faults_unrecovered)
    s += " unrecovered!=" + std::to_string(faults_unrecovered);
  return s;
}

Aggregate aggregate(const std::vector<TrialResult>& trials) {
  Aggregate a;
  for (const TrialResult& t : trials) a.add(t);
  return a;
}

namespace {

ShardPolicy shard_policy_of(const SchedulerSpec& ss) {
  ShardPolicy pol;
  switch (ss.kind) {
    case SchedulerKind::Random: pol.kind = ShardPolicy::Kind::Random; break;
    case SchedulerKind::RoundRobin:
      pol.kind = ShardPolicy::Kind::RoundRobin;
      pol.timeout_share = ss.timeout_share;
      break;
    case SchedulerKind::Rounds: pol.kind = ShardPolicy::Kind::Rounds; break;
    case SchedulerKind::Adversarial:
      pol.kind = ShardPolicy::Kind::Adversarial;
      pol.adv_min_age = ss.adv_min_age;
      pol.adv_deliver_burst = ss.adv_deliver_burst;
      break;
  }
  return pol;
}

// The epoch-stepped twin of the classic loop below. Same monitors and
// termination rules with two substitutions: scheduling state lives in the
// per-epoch ShardPolicy instead of a Scheduler object, and Φ monotonicity
// is checked at epoch granularity by recomputing phi(w) at each barrier —
// the per-action PotentialMonitor double-counts when an exit and a
// same-epoch admission touch the same channel, so it is NOT attached here.
RunResult run_to_legitimacy_sharded(Scenario& sc, const ExperimentSpec& spec,
                                    Observer* extra) {
  World& w = *sc.world;
  RunResult res;
  res.phi_initial = phi(w);

  LegitimacyChecker checker(w, spec.exclusion());

  std::uint64_t tmix = sc.seed ^ 0x5ba2d3f0c4856a11ULL;
  ShardedWorld sw(w, spec.shards(), shard_policy_of(spec.scheduler()),
                  splitmix64(tmix));
  const bool have_faults = !spec.faults().empty();
  if (have_faults) {
    std::uint64_t fmix = spec.faults().seed ^ (sc.seed * 0x9e3779b97f4a7c15ULL);
    sw.set_fault_plan(spec.faults(), splitmix64(fmix));
  }

  if (extra != nullptr) w.add_observer(extra);
  std::unique_ptr<SafetyMonitor> safety;
  std::unique_ptr<PrimitiveAuditor> audit;
  if (spec.with_monitors()) {
    safety = std::make_unique<SafetyMonitor>(w, spec.monitor_stride());
    audit = std::make_unique<PrimitiveAuditor>();
    w.add_observer(safety.get());
    w.add_observer(audit.get());
  }
  std::unique_ptr<RecoveryMonitor> recovery;
  if (have_faults) {
    recovery = std::make_unique<RecoveryMonitor>(
        w, spec.exclusion(),
        spec.with_monitors() ? spec.monitor_stride() : 8);
    w.add_observer(recovery.get());
  }

  const auto cheap_done = [&](const World& world) {
    return spec.exclusion() == Exclusion::Gone
               ? all_leaving_gone(world)
               : all_leaving_inactive(world);
  };
  const auto done_now = [&](const World& world) {
    return cheap_done(world) && (!have_faults || sw.faults_exhausted()) &&
           checker.legitimate(world);
  };

  const bool timed = spec.trial_timeout() > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(spec.trial_timeout()));

  bool phi_ok = true;
  std::uint64_t phi_bad_epoch = 0;
  double prev_phi = res.phi_initial;
  std::uint64_t last_injected = 0;

  bool legit = false;
  while (w.steps() < spec.max_steps()) {
    if (done_now(w)) {
      legit = true;
      break;
    }
    if (timed && std::chrono::steady_clock::now() >= deadline) {
      res.failure = "wall-clock budget exhausted (trial_timeout = " +
                    std::to_string(spec.trial_timeout()) + "s)";
      break;
    }
    if (!sw.epoch()) break;  // terminal configuration
    if (spec.with_monitors()) {
      const double cur = phi(w);
      if (sw.faults_injected() != last_injected) {
        last_injected = sw.faults_injected();  // fault added potential
      } else if (phi_ok && cur > prev_phi + 1e-9) {
        phi_ok = false;
        phi_bad_epoch = sw.epochs();
      }
      prev_phi = cur;
    }
  }
  if (!legit) legit = done_now(w);
  sw.finalize();

  res.reached_legitimate = legit;
  res.steps = w.steps();
  res.sends = w.sends();
  res.exits = w.exits();
  res.sleeps = w.sleeps();
  res.wakes = w.wakes();
  res.phi_final = phi(w);
  res.live_bytes = w.live_bytes();
  // One epoch == one asynchronous round in the Rounds policy.
  if (spec.scheduler().kind == SchedulerKind::Rounds) res.rounds = sw.epochs();

  if (legit && spec.closure_steps() > 0) {
    // finalize() rebuilt the live indices, so the classic loop composes.
    std::unique_ptr<Scheduler> sched = spec.scheduler().make();
    for (std::uint64_t i = 0; i < spec.closure_steps(); ++i) {
      if (!w.step(*sched)) break;
    }
    res.closure_held = checker.legitimate(w);
  }

  if (spec.with_monitors()) {
    res.safety_ok = safety->ok();
    res.phi_monotone = phi_ok;
    res.audit_ok = audit->ok();
    if (!res.safety_ok) {
      res.failure = "safety violated at step " +
                    std::to_string(safety->violations().front());
    } else if (!res.phi_monotone) {
      res.failure =
          "phi increased at epoch " + std::to_string(phi_bad_epoch);
    } else if (!res.audit_ok) {
      res.failure = audit->violations().front();
    }
    w.remove_observer(safety.get());
    w.remove_observer(audit.get());
  }
  if (have_faults) {
    recovery->finalize(w);
    res.faults_injected = recovery->injected();
    res.faults_recovered = recovery->recovered();
    res.recovery_steps_max = recovery->worst_relegit_steps();
    res.recovery_steps_mean = recovery->mean_relegit_steps();
    w.remove_observer(recovery.get());
  }
  if (extra != nullptr) w.remove_observer(extra);
  if (!legit && res.failure.empty()) {
    res.failure = checker.check(w).detail;
  }
  return res;
}

}  // namespace

RunResult run_to_legitimacy(Scenario& sc, const ExperimentSpec& spec,
                            Observer* extra) {
  const std::string problem = spec.validate();
  FDP_CHECK_MSG(problem.empty(), "invalid ExperimentSpec");

  if (spec.shards() > 0) return run_to_legitimacy_sharded(sc, spec, extra);

  World& w = *sc.world;
  RunResult res;
  res.phi_initial = phi(w);

  LegitimacyChecker checker(w, spec.exclusion());
  std::unique_ptr<Scheduler> sched = spec.scheduler().make();

  // Fault campaign: wrap the scheduler in the injector, seeded from the
  // plan seed mixed with the trial seed (own stream — the schedule Rng is
  // untouched, so fault runs replay byte-identically like chaos runs).
  FaultScheduler* injector = nullptr;
  if (!spec.faults().empty()) {
    std::uint64_t mix = spec.faults().seed ^ (sc.seed * 0x9e3779b97f4a7c15ULL);
    auto fs = std::make_unique<FaultScheduler>(std::move(sched), spec.faults(),
                                               splitmix64(mix));
    fs->bind(&w);
    injector = fs.get();
    sched = std::move(fs);
  }

  if (extra != nullptr) w.add_observer(extra);
  std::unique_ptr<SafetyMonitor> safety;
  std::unique_ptr<PotentialMonitor> pot;
  std::unique_ptr<PrimitiveAuditor> audit;
  if (spec.with_monitors()) {
    safety = std::make_unique<SafetyMonitor>(w, spec.monitor_stride());
    pot = std::make_unique<PotentialMonitor>(w, spec.monitor_stride());
    audit = std::make_unique<PrimitiveAuditor>();
    w.add_observer(safety.get());
    w.add_observer(pot.get());
    w.add_observer(audit.get());
  }
  std::unique_ptr<RecoveryMonitor> recovery;
  if (injector != nullptr) {
    recovery = std::make_unique<RecoveryMonitor>(
        w, spec.exclusion(),
        spec.with_monitors() ? spec.monitor_stride() : 8);
    w.add_observer(recovery.get());
  }

  const auto cheap_done = [&](const World& world) {
    return spec.exclusion() == Exclusion::Gone
               ? all_leaving_gone(world)
               : all_leaving_inactive(world);
  };
  // A fault run must not terminate while perturbations are still pending:
  // an "early" legitimate state would cut the campaign short.
  const auto done_now = [&](const World& world) {
    return cheap_done(world) &&
           (injector == nullptr || injector->exhausted(world.steps())) &&
           checker.legitimate(world);
  };

  const bool timed = spec.trial_timeout() > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(spec.trial_timeout()));

  bool legit = false;
  while (w.steps() < spec.max_steps()) {
    if (done_now(w)) {
      legit = true;
      break;
    }
    if (timed && std::chrono::steady_clock::now() >= deadline) {
      res.failure = "wall-clock budget exhausted (trial_timeout = " +
                    std::to_string(spec.trial_timeout()) + "s)";
      break;
    }
    bool progressed = false;
    for (std::uint64_t i = 0; i < spec.check_every(); ++i) {
      if (!w.step(*sched)) break;
      progressed = true;
      if (w.steps() >= spec.max_steps()) break;
    }
    if (!progressed) break;  // terminal configuration
  }
  if (!legit) legit = done_now(w);

  res.reached_legitimate = legit;
  res.steps = w.steps();
  res.sends = w.sends();
  res.exits = w.exits();
  res.sleeps = w.sleeps();
  res.wakes = w.wakes();
  res.phi_final = phi(w);
  res.live_bytes = w.live_bytes();
  Scheduler* base = injector != nullptr ? injector->inner() : sched.get();
  if (auto* rs = dynamic_cast<RoundScheduler*>(base)) {
    res.rounds = rs->rounds();
  }

  if (legit && spec.closure_steps() > 0) {
    for (std::uint64_t i = 0; i < spec.closure_steps(); ++i) {
      if (!w.step(*sched)) break;
    }
    res.closure_held = checker.legitimate(w);
  }

  if (spec.with_monitors()) {
    res.safety_ok = safety->ok();
    res.phi_monotone = pot->ok();
    res.audit_ok = audit->ok();
    if (!res.safety_ok) {
      res.failure = "safety violated at step " +
                    std::to_string(safety->violations().front());
    } else if (!res.phi_monotone) {
      res.failure =
          "phi increased at step " +
          std::to_string(pot->increases().front().step);
    } else if (!res.audit_ok) {
      res.failure = audit->violations().front();
    }
    w.remove_observer(safety.get());
    w.remove_observer(pot.get());
    w.remove_observer(audit.get());
  }
  if (injector != nullptr) {
    recovery->finalize(w);
    res.faults_injected = recovery->injected();
    res.faults_recovered = recovery->recovered();
    res.recovery_steps_max = recovery->worst_relegit_steps();
    res.recovery_steps_mean = recovery->mean_relegit_steps();
    w.remove_observer(recovery.get());
  }
  if (extra != nullptr) w.remove_observer(extra);
  if (!legit && res.failure.empty()) {
    res.failure = checker.check(w).detail;
  }
  return res;
}

}  // namespace fdp
