#include "analysis/experiment.hpp"

#include <chrono>

#include "analysis/monitors.hpp"
#include "core/primitives.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace fdp {

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::Random: return "random";
    case SchedulerKind::RoundRobin: return "roundrobin";
    case SchedulerKind::Rounds: return "rounds";
    case SchedulerKind::Adversarial: return "adversarial";
  }
  return "?";
}

SchedulerKind scheduler_by_name(const std::string& name) {
  if (name == "random") return SchedulerKind::Random;
  if (name == "roundrobin") return SchedulerKind::RoundRobin;
  if (name == "rounds") return SchedulerKind::Rounds;
  if (name == "adversarial") return SchedulerKind::Adversarial;
  FDP_CHECK_MSG(false, "unknown scheduler name");
  return SchedulerKind::Random;
}

std::unique_ptr<Scheduler> SchedulerSpec::make() const {
  switch (kind) {
    case SchedulerKind::Random:
      return std::make_unique<RandomScheduler>(p_deliver, p_oldest);
    case SchedulerKind::RoundRobin:
      return std::make_unique<RoundRobinScheduler>(timeout_share);
    case SchedulerKind::Rounds: return std::make_unique<RoundScheduler>();
    case SchedulerKind::Adversarial:
      return std::make_unique<AdversarialScheduler>(adv_min_age,
                                                    adv_deliver_burst);
  }
  return nullptr;
}

SchedulerSpec scheduler_spec_from_flags(Flags& flags,
                                        const std::string& default_kind) {
  SchedulerSpec spec =
      SchedulerSpec::of(scheduler_by_name(flags.get_string("sched",
                                                           default_kind)));
  spec.adv_min_age = static_cast<std::uint64_t>(
      flags.get_int("sched-delay", static_cast<std::int64_t>(spec.adv_min_age)));
  spec.adv_deliver_burst = static_cast<std::uint32_t>(flags.get_int(
      "sched-burst", static_cast<std::int64_t>(spec.adv_deliver_burst)));
  spec.timeout_share = static_cast<std::uint32_t>(flags.get_int(
      "sched-timeout-share", static_cast<std::int64_t>(spec.timeout_share)));
  return spec;
}

std::string ExperimentSpec::validate() const {
  if (max_steps_ == 0) return "max_steps must be > 0";
  if (check_every_ == 0) return "check_every must be > 0";
  if (with_monitors_ && monitor_stride_ == 0)
    return "monitor_stride must be > 0";
  if (seed_count_ == 0) return "seed range is empty (seed count must be > 0)";
  if (seed_mul_ == 0) return "seed_mix multiplier must be > 0";
  if (scenario_.config.n == 0) return "scenario population is empty (n = 0)";
  if (!trace_pattern_.empty() &&
      trace_pattern_.find("{seed}") == std::string::npos)
    return "trace_pattern must contain the {seed} placeholder";
  if (scheduler_.make() == nullptr) return "unknown scheduler kind";
  const std::string fault_problem = faults_.validate();
  if (!fault_problem.empty()) return "faults: " + fault_problem;
  if (trial_timeout_ < 0.0) return "trial_timeout must be >= 0";
  return "";
}

void Aggregate::add(const TrialResult& t) {
  const RunResult& r = t.run;
  ++trials;
  total_exits += r.exits;
  expected_exits += t.leaving_count;
  if (!r.safety_ok) ++safety_violations;
  if (!r.phi_monotone) ++phi_violations;
  if (!r.audit_ok) ++audit_violations;
  if (!r.closure_held) ++closure_violations;
  if (!t.trace_error.empty()) {
    ++trace_errors;
    if (first_failure.empty()) first_failure = t.trace_error;
  }
  if (t.threw) ++exceptions;
  faults_injected += r.faults_injected;
  faults_unrecovered += r.faults_injected - r.faults_recovered;
  if (!r.failure.empty() && first_failure.empty()) first_failure = r.failure;
  if (!r.reached_legitimate) return;
  ++solved;
  steps.add(static_cast<double>(r.steps));
  rounds.add(static_cast<double>(r.rounds));
  sends.add(static_cast<double>(r.sends));
  sleeps.add(static_cast<double>(r.sleeps));
  wakes.add(static_cast<double>(r.wakes));
  phi_drain.add(static_cast<double>(r.phi_drain()));
  if (r.faults_injected > 0)
    recovery_steps.add(static_cast<double>(r.recovery_steps_max));
}

std::string Aggregate::verdict() const {
  if (clean()) return "clean";
  std::string s =
      "ok=" + std::to_string(solved) + "/" + std::to_string(trials);
  if (safety_violations) s += " safety!=" + std::to_string(safety_violations);
  if (phi_violations) s += " phi!=" + std::to_string(phi_violations);
  if (audit_violations) s += " audit!=" + std::to_string(audit_violations);
  if (closure_violations)
    s += " closure!=" + std::to_string(closure_violations);
  if (trace_errors) s += " trace!=" + std::to_string(trace_errors);
  if (exceptions) s += " threw!=" + std::to_string(exceptions);
  if (faults_unrecovered)
    s += " unrecovered!=" + std::to_string(faults_unrecovered);
  return s;
}

Aggregate aggregate(const std::vector<TrialResult>& trials) {
  Aggregate a;
  for (const TrialResult& t : trials) a.add(t);
  return a;
}

RunResult run_to_legitimacy(Scenario& sc, const ExperimentSpec& spec,
                            Observer* extra) {
  const std::string problem = spec.validate();
  FDP_CHECK_MSG(problem.empty(), "invalid ExperimentSpec");

  World& w = *sc.world;
  RunResult res;
  res.phi_initial = phi(w);

  LegitimacyChecker checker(w, spec.exclusion());
  std::unique_ptr<Scheduler> sched = spec.scheduler().make();

  // Fault campaign: wrap the scheduler in the injector, seeded from the
  // plan seed mixed with the trial seed (own stream — the schedule Rng is
  // untouched, so fault runs replay byte-identically like chaos runs).
  FaultScheduler* injector = nullptr;
  if (!spec.faults().empty()) {
    std::uint64_t mix = spec.faults().seed ^ (sc.seed * 0x9e3779b97f4a7c15ULL);
    auto fs = std::make_unique<FaultScheduler>(std::move(sched), spec.faults(),
                                               splitmix64(mix));
    fs->bind(&w);
    injector = fs.get();
    sched = std::move(fs);
  }

  if (extra != nullptr) w.add_observer(extra);
  std::unique_ptr<SafetyMonitor> safety;
  std::unique_ptr<PotentialMonitor> pot;
  std::unique_ptr<PrimitiveAuditor> audit;
  if (spec.with_monitors()) {
    safety = std::make_unique<SafetyMonitor>(w, spec.monitor_stride());
    pot = std::make_unique<PotentialMonitor>(w, spec.monitor_stride());
    audit = std::make_unique<PrimitiveAuditor>();
    w.add_observer(safety.get());
    w.add_observer(pot.get());
    w.add_observer(audit.get());
  }
  std::unique_ptr<RecoveryMonitor> recovery;
  if (injector != nullptr) {
    recovery = std::make_unique<RecoveryMonitor>(
        w, spec.exclusion(),
        spec.with_monitors() ? spec.monitor_stride() : 8);
    w.add_observer(recovery.get());
  }

  const auto cheap_done = [&](const World& world) {
    return spec.exclusion() == Exclusion::Gone
               ? all_leaving_gone(world)
               : all_leaving_inactive(world);
  };
  // A fault run must not terminate while perturbations are still pending:
  // an "early" legitimate state would cut the campaign short.
  const auto done_now = [&](const World& world) {
    return cheap_done(world) &&
           (injector == nullptr || injector->exhausted(world.steps())) &&
           checker.legitimate(world);
  };

  const bool timed = spec.trial_timeout() > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(spec.trial_timeout()));

  bool legit = false;
  while (w.steps() < spec.max_steps()) {
    if (done_now(w)) {
      legit = true;
      break;
    }
    if (timed && std::chrono::steady_clock::now() >= deadline) {
      res.failure = "wall-clock budget exhausted (trial_timeout = " +
                    std::to_string(spec.trial_timeout()) + "s)";
      break;
    }
    bool progressed = false;
    for (std::uint64_t i = 0; i < spec.check_every(); ++i) {
      if (!w.step(*sched)) break;
      progressed = true;
      if (w.steps() >= spec.max_steps()) break;
    }
    if (!progressed) break;  // terminal configuration
  }
  if (!legit) legit = done_now(w);

  res.reached_legitimate = legit;
  res.steps = w.steps();
  res.sends = w.sends();
  res.exits = w.exits();
  res.sleeps = w.sleeps();
  res.wakes = w.wakes();
  res.phi_final = phi(w);
  Scheduler* base = injector != nullptr ? injector->inner() : sched.get();
  if (auto* rs = dynamic_cast<RoundScheduler*>(base)) {
    res.rounds = rs->rounds();
  }

  if (legit && spec.closure_steps() > 0) {
    for (std::uint64_t i = 0; i < spec.closure_steps(); ++i) {
      if (!w.step(*sched)) break;
    }
    res.closure_held = checker.legitimate(w);
  }

  if (spec.with_monitors()) {
    res.safety_ok = safety->ok();
    res.phi_monotone = pot->ok();
    res.audit_ok = audit->ok();
    if (!res.safety_ok) {
      res.failure = "safety violated at step " +
                    std::to_string(safety->violations().front());
    } else if (!res.phi_monotone) {
      res.failure =
          "phi increased at step " +
          std::to_string(pot->increases().front().step);
    } else if (!res.audit_ok) {
      res.failure = audit->violations().front();
    }
    w.remove_observer(safety.get());
    w.remove_observer(pot.get());
    w.remove_observer(audit.get());
  }
  if (injector != nullptr) {
    recovery->finalize(w);
    res.faults_injected = recovery->injected();
    res.faults_recovered = recovery->recovered();
    res.recovery_steps_max = recovery->worst_relegit_steps();
    res.recovery_steps_mean = recovery->mean_relegit_steps();
    w.remove_observer(recovery.get());
  }
  if (extra != nullptr) w.remove_observer(extra);
  if (!legit && res.failure.empty()) {
    res.failure = checker.check(w).detail;
  }
  return res;
}

}  // namespace fdp
