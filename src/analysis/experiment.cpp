#include "analysis/experiment.hpp"

#include "analysis/monitors.hpp"
#include "core/primitives.hpp"
#include "util/check.hpp"

namespace fdp {

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::Random: return "random";
    case SchedulerKind::RoundRobin: return "roundrobin";
    case SchedulerKind::Rounds: return "rounds";
    case SchedulerKind::Adversarial: return "adversarial";
  }
  return "?";
}

SchedulerKind scheduler_by_name(const std::string& name) {
  if (name == "random") return SchedulerKind::Random;
  if (name == "roundrobin") return SchedulerKind::RoundRobin;
  if (name == "rounds") return SchedulerKind::Rounds;
  if (name == "adversarial") return SchedulerKind::Adversarial;
  FDP_CHECK_MSG(false, "unknown scheduler name");
  return SchedulerKind::Random;
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::Random: return std::make_unique<RandomScheduler>();
    case SchedulerKind::RoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::Rounds: return std::make_unique<RoundScheduler>();
    case SchedulerKind::Adversarial:
      return std::make_unique<AdversarialScheduler>();
  }
  return nullptr;
}

RunResult run_to_legitimacy(Scenario& sc, Exclusion exclusion,
                            const RunOptions& opt) {
  World& w = *sc.world;
  RunResult res;
  res.phi_initial = phi(w);

  LegitimacyChecker checker(w, exclusion);
  std::unique_ptr<Scheduler> sched = make_scheduler(opt.scheduler);

  std::unique_ptr<SafetyMonitor> safety;
  std::unique_ptr<PotentialMonitor> pot;
  std::unique_ptr<PrimitiveAuditor> audit;
  if (opt.with_monitors) {
    safety = std::make_unique<SafetyMonitor>(w, opt.monitor_stride);
    pot = std::make_unique<PotentialMonitor>(w, opt.monitor_stride);
    audit = std::make_unique<PrimitiveAuditor>();
    w.add_observer(safety.get());
    w.add_observer(pot.get());
    w.add_observer(audit.get());
  }

  const auto cheap_done = [&](const World& world) {
    return exclusion == Exclusion::Gone ? all_leaving_gone(world)
                                        : all_leaving_inactive(world);
  };

  bool legit = false;
  while (w.steps() < opt.max_steps) {
    if (cheap_done(w) && checker.legitimate(w)) {
      legit = true;
      break;
    }
    bool progressed = false;
    for (std::uint64_t i = 0; i < opt.check_every; ++i) {
      if (!w.step(*sched)) break;
      progressed = true;
      if (w.steps() >= opt.max_steps) break;
    }
    if (!progressed) break;  // terminal configuration
  }
  if (!legit) legit = cheap_done(w) && checker.legitimate(w);

  res.reached_legitimate = legit;
  res.steps = w.steps();
  res.sends = w.sends();
  res.exits = w.exits();
  res.sleeps = w.sleeps();
  res.wakes = w.wakes();
  res.phi_final = phi(w);
  if (auto* rs = dynamic_cast<RoundScheduler*>(sched.get())) {
    res.rounds = rs->rounds();
  }

  if (legit && opt.closure_steps > 0) {
    for (std::uint64_t i = 0; i < opt.closure_steps; ++i) {
      if (!w.step(*sched)) break;
    }
    res.closure_held = checker.legitimate(w);
  }

  if (opt.with_monitors) {
    res.safety_ok = safety->ok();
    res.phi_monotone = pot->ok();
    res.audit_ok = audit->ok();
    if (!res.safety_ok) {
      res.failure = "safety violated at step " +
                    std::to_string(safety->violations().front());
    } else if (!res.phi_monotone) {
      res.failure =
          "phi increased at step " +
          std::to_string(pot->increases().front().step);
    } else if (!res.audit_ok) {
      res.failure = audit->violations().front();
    }
    w.remove_observer(safety.get());
    w.remove_observer(pot.get());
    w.remove_observer(audit.get());
  }
  if (!legit && res.failure.empty()) {
    res.failure = checker.check(w).detail;
  }
  return res;
}

}  // namespace fdp
