// Scenario construction: initial states for self-stabilization experiments.
//
// The paper's initial states are *arbitrary* up to these constraints
// (Section 1.2): all processes relevant, finitely many action-triggering
// messages, no out-of-system references, and — for the departure results —
// at least one staying process per weakly connected component. A scenario
// starts from a generated topology and then applies controlled corruption:
// invalid mode knowledge, stray anchors, and random in-flight
// present/forward messages.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/departure_process.hpp"
#include "graph/compact_topology.hpp"
#include "sim/world.hpp"

namespace fdp {

struct ScenarioConfig {
  std::size_t n = 16;
  /// Fraction of processes marked leaving (clamped so that at least one
  /// staying process exists).
  double leave_fraction = 0.25;
  /// Topology name for the initial explicit edges (see gen::by_name):
  /// "line", "ring", "star", "clique", "tree", "gnp", "wild".
  std::string topology = "gnp";
  DeparturePolicy policy = DeparturePolicy::ExitWithOracle;

  // --- corruption knobs (self-stabilization stress) ---
  /// Probability that a stored reference carries flipped mode knowledge.
  double invalid_mode_prob = 0.0;
  /// Probability that a process starts with a random anchor (with random,
  /// possibly invalid, mode knowledge) — staying processes included.
  double random_anchor_prob = 0.0;
  /// Expected number of random in-flight present/forward messages per
  /// process, each carrying a random reference with random knowledge.
  double inflight_per_node = 0.0;
  /// Probability that a process starts ASLEEP. The model requires initial
  /// states to contain only relevant processes, so every initial sleeper
  /// is given a pending wake-up message (it must not be hibernating).
  double initial_asleep_prob = 0.0;

  std::uint64_t seed = 1;

  /// Oracle name (see oracle_by_name); the FDP default is "single".
  std::string oracle = "single";

  // --- oracle unreliability (see make_unreliable_oracle) ---
  /// Probability a false oracle answer is reported true. UNSAFE: premature
  /// exits can disconnect stayers — the safety monitors must flag it.
  double oracle_p_false_pos = 0.0;
  /// Probability a true oracle answer is reported false. Safe: exits are
  /// only delayed (the lie re-rolls per consultation).
  double oracle_p_false_neg = 0.0;
};

struct Scenario {
  std::unique_ptr<World> world;
  std::vector<Ref> refs;          ///< by process id
  std::vector<bool> leaving;      ///< by process id
  std::size_t leaving_count = 0;
  /// The seed this instance was built from (run loops derive per-trial
  /// fault streams from it; see run_to_legitimacy).
  std::uint64_t seed = 0;
};

/// Which process population a scenario instantiates.
enum class ScenarioFamily : std::uint8_t {
  Departure,  ///< bare DepartureProcess nodes (Section 3 protocol)
  Framework,  ///< FrameworkProcess hosting an overlay (Section 4, P')
  Baseline,   ///< SortedListDeparture prior art (NIDEC oracle)
};

[[nodiscard]] const char* to_string(ScenarioFamily f);

/// Re-entrant scenario factory: a value type describing *how* to build a
/// trial world, decoupled from any built instance. `build(seed)` can be
/// called concurrently from many threads — every call constructs a fully
/// independent World — which is what lets the parallel ExperimentDriver
/// fan one spec across a worker pool. `clone()` is provided for symmetry
/// with heavier factories; on this value type it is a plain copy.
struct ScenarioSpec {
  ScenarioFamily family = ScenarioFamily::Departure;
  ScenarioConfig config;
  /// Overlay protocol hosted by the framework (ScenarioFamily::Framework
  /// only): "linearization", "ring", "clique", "star", "skiplist".
  std::string overlay = "linearization";

  [[nodiscard]] ScenarioSpec clone() const { return *this; }

  /// Build an independent trial instance. `seed` overrides `config.seed`
  /// so one spec drives a whole seed sweep.
  [[nodiscard]] Scenario build(std::uint64_t seed) const;

  /// Like build(seed), but recycle `reuse` (a World retired from an
  /// earlier trial) instead of constructing a new one: the world is
  /// reset(seed)-rewound, which keeps every channel arena, index table
  /// and scratch buffer at its high-water capacity. Results are
  /// byte-identical to build(seed) — ExperimentDriver workers rely on
  /// this to run a whole sweep with one World per thread. `reuse` may be
  /// null (degenerates to build(seed)).
  [[nodiscard]] Scenario build(std::uint64_t seed,
                               std::unique_ptr<World> reuse) const;

  /// Short label ("departure/gnp/n32") for tables and CSV rows.
  [[nodiscard]] std::string label() const;
};

/// Everything a scenario decides before process types come into play:
/// keys, the leaving set (always >= 1 staying process) and the initial
/// topology. Public so non-simulator population builders (the live
/// runtime's net/live_scenario.cpp) draw the *same* plan from the same
/// seed — the substrate-equivalence tests rely on both substrates being
/// handed byte-identical initial populations.
struct PopulationPlan {
  std::vector<bool> leaving;
  std::vector<std::uint64_t> keys;
  std::size_t leaving_count = 0;
  /// Flat edge-enumeration view; the gnp family is generated banded
  /// (never materialized as a DiGraph) so the build peak stays small at
  /// n = 10^7 — see graph/compact_topology.hpp.
  CompactTopology topology;
};

/// Draw a PopulationPlan from `rng`. The draw sequence is part of the
/// golden-trace contract: changing it changes every seeded scenario.
[[nodiscard]] PopulationPlan plan_population(const ScenarioConfig& cfg,
                                             Rng& rng);

/// Mode knowledge a holder starts with about `target`: valid, or flipped
/// with cfg.invalid_mode_prob.
[[nodiscard]] ModeInfo knowledge_of(const ScenarioConfig& cfg,
                                    const PopulationPlan& pop,
                                    std::size_t target, Rng& rng);

/// Apply the corruption knobs (stray anchors, random in-flight messages,
/// initial sleepers) through substrate-agnostic callbacks, drawing from
/// `rng` in a fixed order shared by every builder. `post` admits an
/// out-of-band message (World::post / Substrate::inject); `make_asleep`
/// forces the process asleep (World::force_life / NetRuntime::force_life).
void corrupt_population(
    const ScenarioConfig& cfg, const PopulationPlan& pop,
    const std::vector<Ref>& refs, Rng& rng,
    const std::function<void(ProcessId, const RefInfo&)>& set_anchor,
    const std::function<void(Ref, Message)>& post,
    const std::function<void(ProcessId)>& make_asleep);

/// Population of bare DepartureProcess nodes (Section 3 protocol). All
/// builders accept an optional retired World to recycle (see
/// ScenarioSpec::build(seed, reuse)).
[[nodiscard]] Scenario build_departure_scenario(
    const ScenarioConfig& cfg, std::unique_ptr<World> reuse = nullptr);

/// Population of FrameworkProcess nodes hosting the named overlay
/// (Section 4 protocol P′).
[[nodiscard]] Scenario build_framework_scenario(
    const ScenarioConfig& cfg, const std::string& overlay,
    std::unique_ptr<World> reuse = nullptr);

/// Population of baseline SortedListDeparture nodes (installs the NIDEC
/// oracle regardless of cfg.oracle).
[[nodiscard]] Scenario build_baseline_scenario(
    const ScenarioConfig& cfg, std::unique_ptr<World> reuse = nullptr);

/// Cheap termination pre-checks used by run loops (full legitimacy is
/// verified separately once these hold).
[[nodiscard]] bool all_leaving_gone(const Substrate& w);
[[nodiscard]] bool all_leaving_inactive(const Substrate& w);  // gone or asleep

}  // namespace fdp
