// Bounded model checking of the departure protocol.
//
// The monitors in this library check invariants along *sampled* fair
// schedules; the model checker instead explores EVERY schedule of a small
// DepartureProcess world breadth-first — all interleavings of timeouts and
// message deliveries — and verifies on the full reachable state space (up
// to an in-flight message bound):
//
//   * Safety (Lemma 2): initially-connected relevant processes stay weakly
//     connected in every reachable state.
//   * Φ monotonicity (Lemma 3's potential argument): no transition
//     increases the invalid-information potential.
//   * Progress (Theorem 3's liveness, in its bounded form): from every
//     fully-expanded reachable state, some path inside the explored graph
//     leads to a legitimate state — i.e. the protocol can never paint
//     itself into a corner.
//
// States are canonical: message sequence numbers and channel order are
// erased, so two worlds that differ only in bookkeeping coincide. Because
// staying processes self-introduce forever, the raw state space is
// infinite; exploration is truncated where a transition would exceed
// `max_inflight` live messages (truncated states are still safety-checked,
// only their successors are skipped, and they are excluded from the
// progress check). Within the bound the result is exhaustive.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/legitimacy.hpp"
#include "sim/world.hpp"

namespace fdp {

struct ModelCheckConfig {
  std::uint64_t max_states = 250'000;
  /// Transitions that would push the live message count beyond this are
  /// not expanded (the source state is marked truncated).
  std::size_t max_inflight = 6;
  Exclusion exclusion = Exclusion::Gone;
};

struct ModelCheckResult {
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  /// States whose expansion was cut short by the in-flight bound.
  std::uint64_t truncated_states = 0;
  /// True when neither the state cap nor truncation was hit.
  bool exhaustive = false;

  std::uint64_t safety_violations = 0;
  std::uint64_t phi_increases = 0;
  std::uint64_t legitimate_states = 0;
  /// Fully-expanded states with NO path to a legitimate state inside the
  /// explored graph (0 = bounded liveness holds).
  std::uint64_t stuck_states = 0;

  /// Canonical encoding of the first offending state, for debugging.
  std::string first_violation;

  [[nodiscard]] bool clean() const {
    return safety_violations == 0 && phi_increases == 0 && stuck_states == 0;
  }
};

class ModelChecker {
 public:
  /// The factory builds the initial world (population, topology, modes,
  /// corruption, oracle). It must produce DepartureProcess instances (the
  /// checker serializes exactly their protocol state) and the same world
  /// on every call.
  using Factory = std::function<std::unique_ptr<World>()>;

  ModelChecker(Factory factory, ModelCheckConfig cfg = {});

  [[nodiscard]] ModelCheckResult run();

  /// Canonical system state (implementation detail, public so the
  /// translation unit's helpers can name it).
  struct SysState;

 private:
  Factory factory_;
  ModelCheckConfig cfg_;
};

}  // namespace fdp
