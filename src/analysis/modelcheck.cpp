#include "analysis/modelcheck.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "core/departure_process.hpp"
#include "core/potential.hpp"
#include "util/check.hpp"

namespace fdp {

namespace {

/// One-shot scheduler: runs exactly the given action.
struct OneShot final : Scheduler {
  ActionChoice choice;
  bool fired = false;
  ActionChoice next(const KernelView&, Rng&) override {
    if (fired) return ActionChoice::none();
    fired = true;
    return choice;
  }
};

struct MsgState {
  ProcessId to;
  Verb verb;
  std::vector<std::pair<ProcessId, ModeInfo>> refs;

  friend auto operator<=>(const MsgState&, const MsgState&) = default;
};

struct ProcState {
  LifeState life;
  // (kNoProcess, _) encodes an empty anchor.
  std::pair<ProcessId, ModeInfo> anchor{kNoProcess, ModeInfo::Unknown};
  std::vector<std::pair<ProcessId, ModeInfo>> nbrs;  // sorted by id

  friend auto operator<=>(const ProcState&, const ProcState&) = default;
};

}  // namespace

struct ModelChecker::SysState {
  std::vector<ProcState> procs;
  std::vector<MsgState> msgs;  // sorted canonical multiset

  friend auto operator<=>(const SysState&, const SysState&) = default;

  [[nodiscard]] std::string describe() const {
    std::string s;
    for (std::size_t p = 0; p < procs.size(); ++p) {
      s += "p" + std::to_string(p) + ":";
      s += to_string(procs[p].life);
      if (procs[p].anchor.first != kNoProcess)
        s += " a=" + std::to_string(procs[p].anchor.first);
      s += " N={";
      for (const auto& [id, mode] : procs[p].nbrs)
        s += std::to_string(id) + std::string(1, mode == ModeInfo::Leaving
                                                     ? 'l'
                                                     : 's');
      s += "} ";
    }
    s += "| msgs:";
    for (const MsgState& m : msgs) {
      s += " ->" + std::to_string(m.to) + ":" + to_string(m.verb) + "(";
      for (const auto& [id, mode] : m.refs) s += std::to_string(id);
      s += ")";
    }
    return s;
  }
};

namespace {

ModelChecker::SysState capture(const World& w) {
  ModelChecker::SysState s;
  s.procs.resize(w.size());
  for (ProcessId p = 0; p < w.size(); ++p) {
    const auto* dp = dynamic_cast<const DepartureProcess*>(&w.process(p));
    FDP_CHECK_MSG(dp != nullptr,
                  "model checker requires DepartureProcess populations");
    ProcState& ps = s.procs[p];
    ps.life = dp->life();
    if (dp->anchor())
      ps.anchor = {dp->anchor()->ref.id(), dp->anchor()->mode};
    for (const RefInfo& r : dp->nbrs().snapshot())
      ps.nbrs.emplace_back(r.ref.id(), r.mode);
    std::sort(ps.nbrs.begin(), ps.nbrs.end());
    // Gone processes' channels are dead: drop them from the state so
    // otherwise-identical states coincide.
    if (dp->life() == LifeState::Gone) continue;
    for (const Message& m : w.channel(p).messages()) {
      MsgState ms;
      ms.to = p;
      ms.verb = m.verb();
      for (const RefInfo& r : m.refs) ms.refs.emplace_back(r.ref.id(), r.mode);
      s.msgs.push_back(std::move(ms));
    }
  }
  std::sort(s.msgs.begin(), s.msgs.end());
  return s;
}

std::unique_ptr<World> restore(const ModelChecker::SysState& s,
                               const ModelChecker::Factory& factory) {
  std::unique_ptr<World> w = factory();
  FDP_CHECK(w->size() == s.procs.size());
  for (ProcessId p = 0; p < w->size(); ++p) {
    auto& dp = w->process_as<DepartureProcess>(p);
    w->force_life(p, s.procs[p].life);
    dp.nbrs_mut().clear();
    for (const auto& [id, mode] : s.procs[p].nbrs)
      dp.nbrs_mut().insert(
          RefInfo{Ref::make(id), mode, w->process(id).key()});
    dp.clear_anchor();
    if (s.procs[p].anchor.first != kNoProcess) {
      const ProcessId a = s.procs[p].anchor.first;
      dp.set_anchor(RefInfo{Ref::make(a), s.procs[p].anchor.second,
                            w->process(a).key()});
    }
    w->clear_channel(p);
  }
  for (const MsgState& m : s.msgs) {
    Message msg;
    msg.set_verb(m.verb);
    for (const auto& [id, mode] : m.refs)
      msg.refs.push_back(RefInfo{Ref::make(id), mode, w->process(id).key()});
    w->post(Ref::make(m.to), msg);
  }
  return w;
}

}  // namespace

ModelChecker::ModelChecker(Factory factory, ModelCheckConfig cfg)
    : factory_(std::move(factory)), cfg_(cfg) {}

ModelCheckResult ModelChecker::run() {
  ModelCheckResult res;

  std::unique_ptr<World> init = factory_();
  const LegitimacyChecker checker(*init, cfg_.exclusion);

  std::map<SysState, std::uint32_t> ids;
  std::vector<SysState> states;
  std::vector<bool> truncated;
  std::vector<bool> legitimate;
  std::vector<std::vector<std::uint32_t>> preds;  // reverse edges

  auto intern = [&](SysState&& s) -> std::pair<std::uint32_t, bool> {
    auto it = ids.find(s);
    if (it != ids.end()) return {it->second, false};
    const std::uint32_t id = static_cast<std::uint32_t>(states.size());
    ids.emplace(s, id);
    states.push_back(std::move(s));
    truncated.push_back(false);
    legitimate.push_back(false);
    preds.emplace_back();
    return {id, true};
  };

  std::deque<std::uint32_t> frontier;
  {
    auto [id, fresh] = intern(capture(*init));
    (void)fresh;
    frontier.push_back(id);
  }

  bool hit_cap = false;
  while (!frontier.empty()) {
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    // Work with a copy: `states` may reallocate during intern().
    const SysState state = states[id];

    const std::unique_ptr<World> w = restore(state, factory_);
    const std::uint64_t phi_here = phi(*w);

    // Per-state checks.
    if (!checker.safety_holds(*w)) {
      if (res.safety_violations++ == 0) res.first_violation = state.describe();
    }
    if (checker.legitimate(*w)) {
      legitimate[id] = true;
      ++res.legitimate_states;
    }

    // Enumerate every enabled action.
    std::vector<ActionChoice> actions;
    for (ProcessId p : w->awake_ids()) actions.push_back(ActionChoice::timeout(p));
    for (ProcessId p = 0; p < w->size(); ++p) {
      if (w->gone(p)) continue;
      std::set<MsgState> seen_contents;
      for (const Message& m : w->channel(p).messages()) {
        MsgState ms;
        ms.to = p;
        ms.verb = m.verb();
        for (const RefInfo& r : m.refs)
          ms.refs.emplace_back(r.ref.id(), r.mode);
        if (seen_contents.insert(ms).second)
          actions.push_back(ActionChoice::deliver(p, m.seq));
      }
    }

    for (const ActionChoice& a : actions) {
      const std::unique_ptr<World> next = restore(state, factory_);
      OneShot once;
      once.choice = a;
      if (a.kind == ActionChoice::Kind::Deliver) {
        // Seq numbers differ between restores; re-locate by position: the
        // restore is deterministic, so the seq from `w` matches `next`'s
        // numbering (both assign seqs in canonical message order).
        // (Verified by construction: post() assigns 1..k in s.msgs order.)
      }
      if (!next->step(once)) continue;
      ++res.transitions;

      if (phi(*next) > phi_here) {
        if (res.phi_increases++ == 0 && res.first_violation.empty())
          res.first_violation = "phi increase from: " + state.describe();
      }

      if (next->live_message_count() > cfg_.max_inflight) {
        truncated[id] = true;
        continue;
      }
      auto [nid, fresh] = intern(capture(*next));
      preds[nid].push_back(id);
      if (fresh) {
        if (states.size() >= cfg_.max_states) {
          hit_cap = true;
          truncated[nid] = true;  // do not expand beyond the cap
        } else {
          frontier.push_back(nid);
        }
      }
    }
  }

  res.states = states.size();
  res.truncated_states = static_cast<std::uint64_t>(
      std::count(truncated.begin(), truncated.end(), true));
  res.exhaustive = !hit_cap && res.truncated_states == 0;

  // Bounded progress: backward reachability from every legitimate OR
  // truncated state. A state that can reach a truncated one might reach
  // legitimacy beyond the exploration bound, so it is not condemned; a
  // state that can reach neither is provably a dead end under every
  // possible extension — "stuck".
  std::vector<bool> can_reach(states.size(), false);
  std::deque<std::uint32_t> queue;
  for (std::uint32_t i = 0; i < states.size(); ++i) {
    if (legitimate[i] || truncated[i]) {
      can_reach[i] = true;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const std::uint32_t i = queue.front();
    queue.pop_front();
    for (std::uint32_t pred : preds[i]) {
      if (!can_reach[pred]) {
        can_reach[pred] = true;
        queue.push_back(pred);
      }
    }
  }
  for (std::uint32_t i = 0; i < states.size(); ++i) {
    if (!can_reach[i]) {
      if (res.stuck_states++ == 0 && res.first_violation.empty())
        res.first_violation = "stuck: " + states[i].describe();
    }
  }
  return res;
}

}  // namespace fdp
