#include "analysis/trace.hpp"

#include <cstdio>

namespace fdp {

namespace {

void append_message_json(std::string& s, const Message& m) {
  s += "{\"verb\":\"";
  s += to_string(m.verb());
  s += "\",\"tag\":" + std::to_string(m.tag());
  s += ",\"seq\":" + std::to_string(m.seq);
  s += ",\"refs\":[";
  for (std::size_t i = 0; i < m.refs.size(); ++i) {
    if (i) s += ',';
    s += "{\"to\":" + std::to_string(m.refs[i].ref.id()) + ",\"mode\":\"";
    s += to_string(m.refs[i].mode);
    s += "\"}";
  }
  s += "]}";
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t ring_capacity, std::string path)
    : capacity_(ring_capacity), path_(std::move(path)) {
  if (path_.empty()) return;
  out_.open(path_);
  if (!out_.is_open())
    error_ = "cannot open trace output '" + path_ + "'";
}

std::string TraceRecorder::to_json(const ActionRecord& rec) {
  std::string s = "{\"step\":" + std::to_string(rec.step);
  s += ",\"actor\":" + std::to_string(rec.actor);
  s += ",\"kind\":\"";
  s += rec.kind == ActionRecord::Kind::Timeout ? "timeout" : "deliver";
  s += "\"";
  if (rec.consumed) {
    s += ",\"consumed\":";
    append_message_json(s, *rec.consumed);
  }
  s += ",\"sent\":[";
  for (std::size_t i = 0; i < rec.sent.size(); ++i) {
    if (i) s += ',';
    s += "{\"dest\":" + std::to_string(rec.sent[i].first.id()) + ",\"msg\":";
    append_message_json(s, rec.sent[i].second);
    s += "}";
  }
  s += "]";
  if (rec.exited) s += ",\"exited\":true";
  if (rec.slept) s += ",\"slept\":true";
  if (rec.woke) s += ",\"woke\":true";
  s += "}";
  return s;
}

void TraceRecorder::on_action(const Substrate& world, const ActionRecord& rec) {
  (void)world;
  std::string line = to_json(rec);
  if (out_.is_open() && error_.empty()) {
    out_ << line << '\n';
    if (!out_)
      error_ = "write failed on trace output '" + path_ + "' after " +
               std::to_string(recorded_) + " records";
  }
  ring_.push_back(std::move(line));
  while (ring_.size() > capacity_) ring_.pop_front();
  ++recorded_;
}

bool TraceRecorder::flush() {
  if (!out_.is_open()) return ok();
  out_.flush();
  if (!out_ && error_.empty())
    error_ = "flush failed on trace output '" + path_ + "'";
  return ok();
}

void TraceRecorder::print_ring() const {
  for (const std::string& line : ring_) std::printf("%s\n", line.c_str());
}

}  // namespace fdp
