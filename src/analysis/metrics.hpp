// Aggregation of per-run measurements across seed sweeps.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fdp {

/// Online accumulator for a scalar measurement.
class Stat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double sd() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container with exact order statistics (for medians/percentiles
/// of convergence-time distributions; Stat is preferred on hot paths).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double sd() const;
  /// q in [0,1]; nearest-rank percentile of the sample.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(0.5); }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

}  // namespace fdp
