#include "analysis/driver.hpp"

#include <chrono>

#include "analysis/trace.hpp"
#include "util/alloc_stats.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"

namespace fdp {

namespace {

std::string substitute_seed(const std::string& pattern, std::uint64_t seed) {
  const auto pos = pattern.find("{seed}");
  if (pos == std::string::npos) return pattern;
  return pattern.substr(0, pos) + std::to_string(seed) +
         pattern.substr(pos + 6);
}

}  // namespace

unsigned resolve_workers(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ExperimentResult ExperimentDriver::run(const ExperimentSpec& spec) const {
  const std::string problem = spec.validate();
  FDP_CHECK_MSG(problem.empty(), "invalid ExperimentSpec");

  const unsigned requested = spec.workers() != 0 ? spec.workers() : workers_;
  const auto t0 = std::chrono::steady_clock::now();

  // Each worker thread keeps one World alive for the whole sweep: a trial
  // recycles the previous trial's world via build(seed, reuse), whose
  // reset-based construction is byte-identical to a fresh build — only the
  // allocator traffic differs.
  struct WorkerState {
    std::unique_ptr<World> world;
  };
  std::vector<TrialResult> trials = parallel_map_with<WorkerState>(
      spec.seed_count(), requested, [&](std::uint64_t i, WorkerState& ws) {
        TrialResult t;
        t.index = i;
        t.seed = spec.trial_seed(i);
        // Crash isolation: a trial that throws is recorded failed and the
        // sweep continues; with retries() > 0 it is re-attempted first.
        // Every attempt rebuilds the scenario from the trial seed, so a
        // retry replays the identical world — useful only against
        // environmental failures (trace I/O, OOM), which is why retries
        // are opt-in. Results stay deterministic either way: the outcome
        // of seed s never depends on what other trials did.
        const unsigned attempts = 1 + spec.retries();
        for (unsigned a = 0; a < attempts; ++a) {
          t.attempts = a + 1;
          t.threw = false;
          t.run = RunResult{};
          t.trace_error.clear();
          try {
            if (spec.trial_start_hook()) spec.trial_start_hook()(t.seed);
            Scenario sc = spec.scenario().build(t.seed, std::move(ws.world));
            t.leaving_count = sc.leaving_count;
            if (spec.trace_pattern().empty()) {
              t.run = run_to_legitimacy(sc, spec);
            } else {
              TraceRecorder trace(
                  /*ring_capacity=*/1,
                  substitute_seed(spec.trace_pattern(), t.seed));
              t.run = run_to_legitimacy(sc, spec, &trace);
              if (!trace.flush()) t.trace_error = trace.error();
            }
            ws.world = std::move(sc.world);  // retire for the next trial
            break;
          } catch (const std::exception& e) {
            t.threw = true;
            t.run = RunResult{};
            t.run.reached_legitimate = false;
            t.run.failure = std::string("trial threw: ") + e.what();
          } catch (...) {
            t.threw = true;
            t.run = RunResult{};
            t.run.reached_legitimate = false;
            t.run.failure = "trial threw: unknown exception";
          }
          // The world may have been half-mutated when the exception
          // unwound; drop it so the next attempt (or trial) builds cold.
          // build(seed, nullptr) is byte-identical to build(seed, reuse),
          // so discarding the cache cannot perturb later results.
          ws.world.reset();
        }
        return t;
      });

  ExperimentResult res;
  res.agg = aggregate(trials);
  res.trials = std::move(trials);
  res.workers_used =
      static_cast<unsigned>(std::min<std::uint64_t>(
          resolve_workers(requested), std::max<std::uint64_t>(
                                          spec.seed_count(), 1)));
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  res.peak_rss_kb = alloc_stats::rss_peak_kb();
  return res;
}

std::string write_trials_csv(const std::string& path,
                             const ExperimentSpec& spec,
                             const std::vector<TrialResult>& trials) {
  CsvWriter csv(path,
                {"scenario", "scheduler", "seed", "solved", "steps", "rounds",
                 "sends", "exits", "sleeps", "wakes", "phi_initial",
                 "phi_final", "phi_drain", "safety_ok", "phi_monotone",
                 "audit_ok", "closure_held", "faults_injected",
                 "faults_recovered", "recovery_steps_max",
                 "recovery_steps_mean", "live_bytes", "attempts", "threw",
                 "failure"});
  if (!csv.ok()) return "cannot open CSV output '" + path + "'";
  const std::string scenario = spec.scenario().label();
  const std::string scheduler = spec.scheduler().name();
  for (const TrialResult& t : trials) {
    const RunResult& r = t.run;
    csv.row({scenario, scheduler, std::to_string(t.seed),
             r.reached_legitimate ? "1" : "0", std::to_string(r.steps),
             std::to_string(r.rounds), std::to_string(r.sends),
             std::to_string(r.exits), std::to_string(r.sleeps),
             std::to_string(r.wakes), std::to_string(r.phi_initial),
             std::to_string(r.phi_final), std::to_string(r.phi_drain()),
             r.safety_ok ? "1" : "0", r.phi_monotone ? "1" : "0",
             r.audit_ok ? "1" : "0", r.closure_held ? "1" : "0",
             std::to_string(r.faults_injected),
             std::to_string(r.faults_recovered),
             std::to_string(r.recovery_steps_max),
             std::to_string(r.recovery_steps_mean),
             std::to_string(r.live_bytes), std::to_string(t.attempts),
             t.threw ? "1" : "0", r.failure});
  }
  if (!csv.finish())
    return "write error while dumping CSV to '" + path + "'";
  return "";
}

}  // namespace fdp
