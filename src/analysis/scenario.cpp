#include "analysis/scenario.hpp"

#include <algorithm>
#include <functional>

#include "baseline/sorted_list_departure.hpp"
#include "core/framework.hpp"
#include "core/oracle.hpp"
#include "graph/generators.hpp"
#include "overlay/topology_checks.hpp"
#include "util/check.hpp"

namespace fdp {

namespace {

/// Open-addressing set of non-zero u64 keys: the duplicate-draw rejection
/// needs only membership, and a std::set node costs ~6x the 8-byte slot
/// this table pays (the old tree peaked near 0.5 GB at n = 10^7).
class KeySet {
 public:
  explicit KeySet(std::size_t expect) {
    std::size_t cap = 16;
    while (cap * 3 < expect * 4) cap *= 2;  // final load factor <= 3/4
    slots_.assign(cap, 0);
  }

  /// True when newly inserted (matches std::set::insert().second).
  bool insert(std::uint64_t key) {
    if ((size_ + 1) * 4 > slots_.size() * 3) rehash();
    std::size_t i = ideal(key, slots_.size());
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

 private:
  static std::size_t ideal(std::uint64_t key, std::size_t cap) {
    std::uint64_t k = key;  // splitmix64 finalizer
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k) & (cap - 1);
  }

  void rehash() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    for (const std::uint64_t k : old) {
      if (k == 0) continue;
      std::size_t i = ideal(k, slots_.size());
      while (slots_[i] != 0) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = k;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

}  // namespace

PopulationPlan plan_population(const ScenarioConfig& cfg, Rng& rng) {
  PopulationPlan pop;
  pop.leaving.assign(cfg.n, false);
  pop.keys.resize(cfg.n);

  // Unique random keys (uniqueness is required by the key-ordered
  // overlays; the departure protocol itself never reads them). Rejection
  // behavior is draw-for-draw identical to the std::set it replaced.
  KeySet used(cfg.n);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    std::uint64_t k;
    do {
      k = rng();
    } while (k == 0 || !used.insert(k));
    pop.keys[i] = k;
  }

  std::size_t want =
      static_cast<std::size_t>(cfg.leave_fraction * static_cast<double>(cfg.n));
  if (cfg.n > 0 && want >= cfg.n) want = cfg.n - 1;  // >= 1 staying process
  // u32 ids: the Fisher-Yates draw sequence depends only on the length,
  // so narrowing the scratch halves it without moving any stream.
  std::vector<std::uint32_t> order(cfg.n);
  for (std::size_t i = 0; i < cfg.n; ++i)
    order[i] = static_cast<std::uint32_t>(i);
  rng.shuffle(order);
  for (std::size_t i = 0; i < want; ++i) pop.leaving[order[i]] = true;
  pop.leaving_count = want;

  if (cfg.topology == "gnp") {
    // Banded generation: same draw stream and edge enumeration as
    // gen::by_name's DiGraph path, ~9x less build memory.
    pop.topology = CompactTopology::gnp_connected(
        cfg.n, 3.0 / static_cast<double>(cfg.n ? cfg.n : 1), rng);
  } else {
    pop.topology = CompactTopology::from_graph(
        gen::by_name(cfg.topology.c_str(), cfg.n, rng));
  }
  return pop;
}

ModeInfo knowledge_of(const ScenarioConfig& cfg, const PopulationPlan& pop,
                      std::size_t target, Rng& rng) {
  const Mode actual = pop.leaving[target] ? Mode::Leaving : Mode::Staying;
  if (rng.chance(cfg.invalid_mode_prob)) {
    return actual == Mode::Leaving ? ModeInfo::Staying : ModeInfo::Leaving;
  }
  return to_info(actual);
}

void corrupt_population(
    const ScenarioConfig& cfg, const PopulationPlan& pop,
    const std::vector<Ref>& refs, Rng& rng,
    const std::function<void(ProcessId, const RefInfo&)>& set_anchor,
    const std::function<void(Ref, Message)>& post,
    const std::function<void(ProcessId)>& make_asleep) {
  const std::size_t n = cfg.n;
  if (n < 2) return;

  // Stray anchors.
  for (ProcessId p = 0; p < n; ++p) {
    if (!rng.chance(cfg.random_anchor_prob)) continue;
    ProcessId t = static_cast<ProcessId>(rng.below(n - 1));
    if (t >= p) ++t;
    set_anchor(p,
               RefInfo{refs[t], knowledge_of(cfg, pop, t, rng), pop.keys[t]});
  }

  // Random in-flight present/forward messages.
  const std::size_t total = static_cast<std::size_t>(
      cfg.inflight_per_node * static_cast<double>(n));
  for (std::size_t k = 0; k < total; ++k) {
    const ProcessId to = static_cast<ProcessId>(rng.below(n));
    const ProcessId about = static_cast<ProcessId>(rng.below(n));
    const RefInfo carried{refs[about], knowledge_of(cfg, pop, about, rng),
                          pop.keys[about]};
    Message m = rng.chance(0.5) ? Message::present(carried)
                                : Message::forward(carried);
    post(refs[to], m);
  }

  // Initial sleepers. Each receives a pending wake-up message so it is
  // relevant (not hibernating), as the model's initial states require.
  for (ProcessId p = 0; p < n; ++p) {
    if (!rng.chance(cfg.initial_asleep_prob)) continue;
    make_asleep(p);
    ProcessId about = static_cast<ProcessId>(rng.below(n - 1));
    if (about >= p) ++about;
    post(refs[p],
         Message::present(RefInfo{refs[about],
                                  knowledge_of(cfg, pop, about, rng),
                                  pop.keys[about]}));
  }
}

namespace {

/// Simulator binding of corrupt_population's callbacks.
void corrupt_and_inject(const ScenarioConfig& cfg, const PopulationPlan& pop,
                        Scenario& sc, Rng& rng,
                        const std::function<void(ProcessId, const RefInfo&)>&
                            set_anchor) {
  corrupt_population(
      cfg, pop, sc.refs, rng, set_anchor,
      [&](Ref to, Message m) { sc.world->post(to, std::move(m)); },
      [&](ProcessId p) { sc.world->force_life(p, LifeState::Asleep); });
}

/// The configured oracle, wrapped to lie when the unreliability knobs are
/// set. The lie stream is seeded from the trial seed so sweeps stay
/// reproducible and trials independent.
OracleFn scenario_oracle(const ScenarioConfig& cfg, OracleFn inner) {
  if (cfg.oracle_p_false_pos > 0.0 || cfg.oracle_p_false_neg > 0.0) {
    return make_unreliable_oracle(std::move(inner), cfg.oracle_p_false_pos,
                                  cfg.oracle_p_false_neg,
                                  cfg.seed ^ 0x0bac1eULL);
  }
  return inner;
}

}  // namespace

const char* to_string(ScenarioFamily f) {
  switch (f) {
    case ScenarioFamily::Departure: return "departure";
    case ScenarioFamily::Framework: return "framework";
    case ScenarioFamily::Baseline: return "baseline";
  }
  return "?";
}

Scenario ScenarioSpec::build(std::uint64_t seed) const {
  return build(seed, nullptr);
}

Scenario ScenarioSpec::build(std::uint64_t seed,
                             std::unique_ptr<World> reuse) const {
  ScenarioConfig cfg = config;
  cfg.seed = seed;
  switch (family) {
    case ScenarioFamily::Departure:
      return build_departure_scenario(cfg, std::move(reuse));
    case ScenarioFamily::Framework:
      return build_framework_scenario(cfg, overlay, std::move(reuse));
    case ScenarioFamily::Baseline:
      return build_baseline_scenario(cfg, std::move(reuse));
  }
  FDP_CHECK_MSG(false, "unknown scenario family");
  return {};
}

std::string ScenarioSpec::label() const {
  std::string s = to_string(family);
  if (family == ScenarioFamily::Framework) s += ":" + overlay;
  s += "/" + config.topology + "/n" + std::to_string(config.n);
  return s;
}

Scenario build_departure_scenario(const ScenarioConfig& cfg,
                                  std::unique_ptr<World> reuse) {
  Rng rng(cfg.seed);
  const PopulationPlan pop = plan_population(cfg, rng);

  Scenario sc;
  // Fresh and recycled worlds take the same reset(seed) path, so a reused
  // world replays byte-identically to a newly constructed one.
  sc.world = reuse != nullptr ? std::move(reuse) : std::make_unique<World>();
  sc.world->reset(cfg.seed ^ 0x5eedULL);
  sc.leaving = pop.leaving;
  sc.leaving_count = pop.leaving_count;
  for (std::size_t i = 0; i < cfg.n; ++i) {
    sc.refs.push_back(sc.world->spawn<DepartureProcess>(
        pop.leaving[i] ? Mode::Leaving : Mode::Staying, pop.keys[i],
        cfg.policy));
  }
  pop.topology.for_each_edge([&](NodeId u, NodeId v) {
    auto& proc = sc.world->process_as<DepartureProcess>(u);
    proc.nbrs_mut().insert(
        RefInfo{sc.refs[v], knowledge_of(cfg, pop, v, rng), pop.keys[v]});
  });
  corrupt_and_inject(cfg, pop, sc, rng,
                     [&](ProcessId p, const RefInfo& a) {
                       sc.world->process_as<DepartureProcess>(p).set_anchor(a);
                     });
  sc.world->set_oracle(scenario_oracle(cfg, oracle_by_name(cfg.oracle)));
  sc.seed = cfg.seed;
  return sc;
}

Scenario build_framework_scenario(const ScenarioConfig& cfg,
                                  const std::string& overlay,
                                  std::unique_ptr<World> reuse) {
  Rng rng(cfg.seed);
  const PopulationPlan pop = plan_population(cfg, rng);

  Scenario sc;
  // Fresh and recycled worlds take the same reset(seed) path, so a reused
  // world replays byte-identically to a newly constructed one.
  sc.world = reuse != nullptr ? std::move(reuse) : std::make_unique<World>();
  sc.world->reset(cfg.seed ^ 0x5eedULL);
  sc.leaving = pop.leaving;
  sc.leaving_count = pop.leaving_count;
  for (std::size_t i = 0; i < cfg.n; ++i) {
    sc.refs.push_back(sc.world->spawn<FrameworkProcess>(
        pop.leaving[i] ? Mode::Leaving : Mode::Staying, pop.keys[i],
        make_overlay(overlay), cfg.policy));
  }
  pop.topology.for_each_edge([&](NodeId u, NodeId v) {
    auto& proc = sc.world->process_as<FrameworkProcess>(u);
    proc.overlay_mut().integrate(
        RefInfo{sc.refs[v], knowledge_of(cfg, pop, v, rng), pop.keys[v]});
  });
  corrupt_and_inject(cfg, pop, sc, rng,
                     [&](ProcessId p, const RefInfo& a) {
                       sc.world->process_as<FrameworkProcess>(p).set_anchor(a);
                     });
  sc.world->set_oracle(scenario_oracle(cfg, oracle_by_name(cfg.oracle)));
  sc.seed = cfg.seed;
  return sc;
}

Scenario build_baseline_scenario(const ScenarioConfig& cfg,
                                 std::unique_ptr<World> reuse) {
  Rng rng(cfg.seed);
  const PopulationPlan pop = plan_population(cfg, rng);

  Scenario sc;
  // Fresh and recycled worlds take the same reset(seed) path, so a reused
  // world replays byte-identically to a newly constructed one.
  sc.world = reuse != nullptr ? std::move(reuse) : std::make_unique<World>();
  sc.world->reset(cfg.seed ^ 0x5eedULL);
  sc.leaving = pop.leaving;
  sc.leaving_count = pop.leaving_count;
  for (std::size_t i = 0; i < cfg.n; ++i) {
    sc.refs.push_back(sc.world->spawn<SortedListDeparture>(
        pop.leaving[i] ? Mode::Leaving : Mode::Staying, pop.keys[i]));
  }
  pop.topology.for_each_edge([&](NodeId u, NodeId v) {
    auto& proc = sc.world->process_as<SortedListDeparture>(u);
    proc.nbrs_mut().insert(
        RefInfo{sc.refs[v], knowledge_of(cfg, pop, v, rng), pop.keys[v]});
  });
  // The baseline has no anchors; only in-flight corruption applies.
  corrupt_and_inject(cfg, pop, sc, rng, [](ProcessId, const RefInfo&) {});
  sc.world->set_oracle(scenario_oracle(cfg, make_nidec_oracle()));
  sc.seed = cfg.seed;
  return sc;
}

bool all_leaving_gone(const Substrate& w) {
  for (ProcessId p = 0; p < w.size(); ++p) {
    if (w.mode(p) == Mode::Leaving && w.life(p) != LifeState::Gone)
      return false;
  }
  return true;
}

bool all_leaving_inactive(const Substrate& w) {
  for (ProcessId p = 0; p < w.size(); ++p) {
    if (w.mode(p) == Mode::Leaving && w.life(p) == LifeState::Awake)
      return false;
  }
  return true;
}

}  // namespace fdp
