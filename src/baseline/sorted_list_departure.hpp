// Baseline: sorted-list-specific departures (Foreback et al. [15] style).
//
// The prior work the paper improves on solved the FDP only for one
// concrete overlay — the sorted doubly linked list — and requires a fixed
// total order on processes (their keys). No public implementation exists;
// this is a reconstruction from the description in the paper's
// introduction and related-work discussion (see DESIGN.md, Substitutions):
//
//  * Staying processes run standard list linearization with periodic
//    self-introduction; a reference whose attached knowledge says
//    "leaving" is dropped immediately, sending the holder's own reference
//    to the leaver in exchange (so the leaver can splice around itself).
//  * A leaving process stops self-introducing. It keeps its closest
//    staying neighbors l and r and repeatedly *introduces them to each
//    other* (the splice); references to fellow leavers are parked with a
//    staying neighbor so they never block anyone's departure.
//  * A leaving process exits when the NIDEC-style oracle says no
//    reference to it remains anywhere and its channel is empty.
//
// The contrast with the paper's protocol (experiment E5): this baseline
// *reads keys* (violating reference opaqueness), is tied to the list
// topology — it actively linearizes whatever it is deployed on — relies
// on the stronger NIDEC oracle, and assumes mode knowledge attached to
// references is valid (it has no analogue of the present/forward
// self-stabilizing knowledge repair). The paper's protocol needs none of
// that.
#pragma once

#include "sim/context.hpp"
#include "sim/neighbor_set.hpp"
#include "sim/process.hpp"

namespace fdp {

/// Overlay tags used by the baseline.
inline constexpr std::uint32_t kTagBaselineIntro = 10;

class SortedListDeparture final : public Process {
 public:
  SortedListDeparture(Ref self, Mode mode, std::uint64_t key)
      : Process(self, mode, key), nbrs_(self) {}

  void on_timeout(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;
  void collect_refs(std::vector<RefInfo>& out) const override;
  [[nodiscard]] const char* protocol_name() const override {
    return "baseline-list";
  }
  [[nodiscard]] std::size_t footprint_bytes(bool capacity) const override {
    return sizeof(*this) + nbrs_.heap_bytes(capacity);
  }

  [[nodiscard]] const NeighborSet& nbrs() const { return nbrs_; }
  [[nodiscard]] NeighborSet& nbrs_mut() { return nbrs_; }

 private:
  /// One step of the standard linearization rule over nbrs_.
  void linearize(Context& ctx);
  /// Closest left / right neighbor believed staying (invalid Ref when
  /// absent).
  [[nodiscard]] RefInfo closest_left_staying() const;
  [[nodiscard]] RefInfo closest_right_staying() const;

  NeighborSet nbrs_;
};

}  // namespace fdp
