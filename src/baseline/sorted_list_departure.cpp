#include "baseline/sorted_list_departure.hpp"

#include <algorithm>

namespace fdp {

RefInfo SortedListDeparture::closest_left_staying() const {
  RefInfo best;
  for (const RefInfo& r : nbrs_.snapshot()) {
    if (r.key >= key() || r.mode == ModeInfo::Leaving) continue;
    if (!best.ref.valid() || r.key > best.key) best = r;
  }
  return best;
}

RefInfo SortedListDeparture::closest_right_staying() const {
  RefInfo best;
  for (const RefInfo& r : nbrs_.snapshot()) {
    if (r.key <= key() || r.mode == ModeInfo::Leaving) continue;
    if (!best.ref.valid() || r.key < best.key) best = r;
  }
  return best;
}

void SortedListDeparture::linearize(Context& ctx) {
  std::vector<RefInfo> left;
  std::vector<RefInfo> right;
  for (const RefInfo& r : nbrs_.snapshot()) {
    if (r.key < key()) left.push_back(r);
    else if (r.key > key()) right.push_back(r);
  }
  auto by_key = [](const RefInfo& a, const RefInfo& b) {
    return a.key < b.key;
  };
  std::sort(left.begin(), left.end(), by_key);
  std::sort(right.begin(), right.end(), by_key);

  // Delegate farther references one hop toward their sorted position.
  for (std::size_t i = 0; i + 1 < left.size(); ++i) {
    nbrs_.erase(left[i].ref);
    ctx.send(left[i + 1].ref,
             Message{Verb::Overlay, kTagBaselineIntro, 0, {left[i]}});
  }
  for (std::size_t j = right.size(); j > 1; --j) {
    nbrs_.erase(right[j - 1].ref);
    ctx.send(right[j - 2].ref,
             Message{Verb::Overlay, kTagBaselineIntro, 0, {right[j - 1]}});
  }
}

void SortedListDeparture::on_timeout(Context& ctx) {
  if (mode() == Mode::Staying) {
    // Drop references to leavers on sight, handing them our own reference
    // in exchange (Reversal) so they can splice around themselves.
    for (const RefInfo& r : nbrs_.snapshot()) {
      if (r.mode == ModeInfo::Leaving) {
        nbrs_.erase(r.ref);
        ctx.send(r.ref,
                 Message{Verb::Overlay, kTagBaselineIntro, 0, {self_info()}});
      }
    }
    linearize(ctx);
    // Periodic self-introduction to the kept neighbors.
    for (const RefInfo& r : nbrs_.snapshot()) {
      ctx.send(r.ref,
               Message{Verb::Overlay, kTagBaselineIntro, 0, {self_info()}});
    }
    return;
  }

  // Leaving. References to fellow leavers cannot rest here — park them
  // with a staying neighbor. (If we know no stayer yet, keep them; a
  // stayer's reversal will teach us one.)
  RefInfo stayer;
  for (const RefInfo& x : nbrs_.snapshot())
    if (x.mode != ModeInfo::Leaving) stayer = x;
  if (stayer.ref.valid()) {
    for (const RefInfo& x : nbrs_.snapshot()) {
      if (x.mode == ModeInfo::Leaving) {
        nbrs_.erase(x.ref);
        ctx.send(stayer.ref,
                 Message{Verb::Overlay, kTagBaselineIntro, 0, {x}});
      }
    }
  }
  // The splice: chain ALL staying neighbors together in key order (we may
  // be a cut vertex whose neighbors sit on the same key side, so a plain
  // l<->r splice would not be enough). Introduction keeps our copies;
  // they die only at the NIDEC-guarded exit, by which point the chain
  // links our neighbors directly. Crucially we never send our OWN
  // reference: no new references to us are minted, so NIDEC can fire.
  std::vector<RefInfo> chain;
  for (const RefInfo& x : nbrs_.snapshot())
    if (x.mode != ModeInfo::Leaving) chain.push_back(x);
  std::sort(chain.begin(), chain.end(),
            [](const RefInfo& a, const RefInfo& b) { return a.key < b.key; });
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    ctx.send(chain[i].ref,
             Message{Verb::Overlay, kTagBaselineIntro, 0, {chain[i + 1]}});
    ctx.send(chain[i + 1].ref,
             Message{Verb::Overlay, kTagBaselineIntro, 0, {chain[i]}});
  }
  // Exit when no reference to us remains anywhere (NIDEC). The splice
  // above was sent within this same atomic action, so the chain is in
  // flight (implicit edges) before our stored copies die with us.
  if (ctx.oracle()) {
    ctx.exit_process();
  }
}

void SortedListDeparture::on_message(Context& ctx, const Message& m) {
  (void)ctx;
  // Every baseline message carries plain references to integrate; the
  // linearization at the next timeout moves them onward. Our own
  // reference is discarded for free.
  for (const RefInfo& r : m.refs) {
    if (r.ref != self()) nbrs_.insert(r);
  }
}

void SortedListDeparture::collect_refs(std::vector<RefInfo>& out) const {
  nbrs_.append_to(out);
}

}  // namespace fdp
