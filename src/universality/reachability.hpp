// Exhaustive reachability under primitive subsets (Theorem 2).
//
// Theorem 2 states that all four primitives are *necessary* for
// universality. We machine-check it two ways:
//
//  1. Invariant arguments (the paper's proof, turned into checkable
//     properties of the rewriter ops):
//       - without Introduction, the total edge count never increases;
//       - without Fusion, it never decreases;
//       - without Delegation, a pair of adjacent processes can never
//         become non-adjacent (Intro adds, Fusion removes duplicates only,
//         Reversal flips);
//       - without Reversal, on the 2-node graph {(u,v)} the target {(v,u)}
//         is unreachable.
//  2. Exhaustive breadth-first search over the full state space of small
//     multigraphs (n <= 3) with a multiplicity cap: enumerate every graph
//     reachable using a chosen subset of the primitives. The cap bounds
//     the (otherwise infinite) space; any state found reachable is truly
//     reachable (the search only applies legal ops), and the witnesses of
//     unreachability produced here are the ones the proof needs (they all
//     live at tiny multiplicities).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "graph/digraph.hpp"

namespace fdp {

/// Bitmask of allowed primitives.
enum : unsigned {
  kAllowIntroduction = 1u << 0,
  kAllowDelegation = 1u << 1,
  kAllowFusion = 1u << 2,
  kAllowReversal = 1u << 3,
  kAllowAll = 0xF,
};

/// Dense encoding of a small multigraph: base-(cap+1) digits over the
/// n*(n-1) ordered pairs (self-loops excluded).
using StateCode = std::uint64_t;

class ReachabilityExplorer {
 public:
  /// n <= 4 and (cap+1)^(n*(n-1)) must fit in 64 bits.
  ReachabilityExplorer(std::size_t n, std::uint32_t cap);

  [[nodiscard]] StateCode encode(const DiGraph& g) const;
  [[nodiscard]] DiGraph decode(StateCode code) const;

  /// All states reachable from `start` using the allowed primitives,
  /// never exceeding the multiplicity cap (ops that would are skipped).
  [[nodiscard]] std::set<StateCode> explore(const DiGraph& start,
                                            unsigned allowed) const;

  /// True when `target` is reachable from `start` under `allowed`.
  [[nodiscard]] bool reachable(const DiGraph& start, const DiGraph& target,
                               unsigned allowed) const;

  [[nodiscard]] std::size_t nodes() const { return n_; }
  [[nodiscard]] std::uint32_t cap() const { return cap_; }

 private:
  /// Successor states of one state under the allowed primitives.
  void successors(const DiGraph& g, unsigned allowed,
                  std::vector<StateCode>& out) const;

  std::size_t n_;
  std::uint32_t cap_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;  // ordered non-self pairs
};

}  // namespace fdp
