#include "universality/planner.hpp"

#include "graph/connectivity.hpp"
#include "util/check.hpp"

namespace fdp {

std::uint64_t clique_rounds(GraphRewriter& rw) {
  const std::size_t n = rw.graph().node_count();
  if (n <= 1) return 0;
  const std::uint64_t full = static_cast<std::uint64_t>(n) * (n - 1);
  std::uint64_t rounds = 0;
  // Guard against a disconnected input (the clique is then unreachable):
  // cap rounds at n (the diameter bound makes ceil(log2) + 1 << n).
  while (rw.graph().simple_edge_count() < full && rounds < n + 2) {
    ++rounds;
    // Synchronous-round semantics: all introductions of a round are based
    // on the adjacency snapshot taken at the round start.
    std::vector<std::vector<NodeId>> snapshot(n);
    for (NodeId u = 0; u < n; ++u) snapshot[u] = rw.graph().out_neighbors(u);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : snapshot[u]) {
        // Self-introduction keeps edges bidirectional.
        if (!rw.graph().has_edge(v, u))
          (void)rw.apply(RewriteOp::self_introduction(u, v));
        for (NodeId w : snapshot[u]) {
          if (v == w || rw.graph().has_edge(v, w)) continue;
          (void)rw.apply(RewriteOp::introduction(u, v, w));
        }
      }
    }
  }
  return rounds;
}

TransformStats transform_graph(const DiGraph& start, const DiGraph& target,
                               bool verify_connectivity) {
  const std::size_t n = start.node_count();
  FDP_CHECK(target.node_count() == n);
  FDP_CHECK_MSG(is_weakly_connected(start), "start must be weakly connected");
  FDP_CHECK_MSG(is_weakly_connected(target),
                "target must be weakly connected");
  for (const auto& [u, v] : target.simple_edges()) {
    FDP_CHECK_MSG(u != v, "target must not contain self-loops");
    FDP_CHECK_MSG(target.multiplicity(u, v) == 1, "target must be simple");
  }

  TransformStats stats;
  GraphRewriter rw(start, verify_connectivity);

  // Normalize: fuse initial duplicate edges down to multiplicity one so
  // phase A's "introduce only when absent" guard keeps the graph simple.
  for (const auto& [u, v] : rw.graph().simple_edges()) {
    while (rw.graph().multiplicity(u, v) > 1)
      (void)rw.apply(RewriteOp::fusion(u, v));
  }

  // --- Phase A: clique via introductions ---
  const std::uint64_t ops0 = rw.ops_applied();
  stats.intro_rounds = clique_rounds(rw);
  stats.phase_a_ops = rw.ops_applied() - ops0;
  if (n > 1 &&
      rw.graph().simple_edge_count() !=
          static_cast<std::uint64_t>(n) * (n - 1)) {
    return stats;  // not weakly connected after all — cannot succeed
  }

  // --- Phase B: prune to the bidirected extension G'' ---
  const DiGraph gpp = target.bidirected();
  const std::uint64_t ops1 = rw.ops_applied();
  for (const auto& [u, w] : rw.graph().simple_edges()) {
    if (gpp.has_edge(u, w)) continue;
    // Delegate (u,w) along the shortest u->w path inside G''. The path's
    // second-to-last node y has (y,w) in G'', where the copy fuses away.
    const std::vector<NodeId> path = shortest_path(gpp, u, w);
    FDP_CHECK_MSG(path.size() >= 3,
                  "G'' strongly connected => path exists with >= 1 hop");
    NodeId holder = u;
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      const bool ok = rw.apply(RewriteOp::delegation(holder, path[i], w));
      FDP_CHECK_MSG(ok, "phase B delegation precondition failed");
      holder = path[i];
    }
    // holder is adjacent to w in G''; the multiplicity on (holder, w) is
    // now 2 — fuse.
    const bool fused = rw.apply(RewriteOp::fusion(holder, w));
    FDP_CHECK_MSG(fused, "phase B fusion precondition failed");
  }
  stats.phase_b_ops = rw.ops_applied() - ops1;

  // --- Phase C: reverse G'' \ G' onto the antiparallel twin and fuse ---
  const std::uint64_t ops2 = rw.ops_applied();
  for (const auto& [u, v] : gpp.simple_edges()) {
    if (target.has_edge(u, v)) continue;
    // (u,v) in G'' but not in G'. Then (v,u) must be in G': G'' is the
    // bidirected extension, so at least one direction exists in G', and
    // it is not (u,v).
    const bool rev = rw.apply(RewriteOp::reversal(u, v));
    FDP_CHECK_MSG(rev, "phase C reversal precondition failed");
    const bool fused = rw.apply(RewriteOp::fusion(v, u));
    FDP_CHECK_MSG(fused, "phase C fusion precondition failed");
  }
  stats.phase_c_ops = rw.ops_applied() - ops2;

  stats.counts = rw.counts();
  stats.connectivity_violations = rw.connectivity_violations();
  stats.success = rw.graph() == target;
  return stats;
}

}  // namespace fdp
