// The constructive transformation of Theorem 1.
//
// Given any weakly connected start graph G and any weakly connected target
// G' on the same nodes, produce a primitive sequence transforming G into
// G', following the paper's three-phase proof exactly:
//
//   Phase A (Introduction):  every node introduces all neighbors to each
//     other, including self-introduction, in synchronous rounds until PG
//     is the clique. The paper claims O(log n) rounds ("distances are
//     essentially cut in half each round") — the planner reports the
//     round count so experiment E2 can verify the logarithmic growth.
//   Phase B (Delegation + Fusion): with G'' the bidirected extension of
//     G', every edge (u,w) outside G'' is delegated hop by hop along the
//     shortest u->w path inside G'' (which is strongly connected) until a
//     node adjacent to w fuses it away.
//   Phase C (Reversal + Fusion): every edge of G'' missing from G' is
//     reversed onto its antiparallel twin and fused.
//
// All operations run through a GraphRewriter, so preconditions and
// (optionally) per-op connectivity are machine-checked.
#pragma once

#include <cstdint>

#include "core/primitives.hpp"
#include "graph/digraph.hpp"
#include "universality/rewriter.hpp"

namespace fdp {

struct TransformStats {
  bool success = false;
  std::uint64_t intro_rounds = 0;   ///< Phase A synchronous rounds
  std::uint64_t phase_a_ops = 0;
  std::uint64_t phase_b_ops = 0;
  std::uint64_t phase_c_ops = 0;
  PrimitiveCounts counts;
  std::uint64_t connectivity_violations = 0;

  [[nodiscard]] std::uint64_t total_ops() const {
    return phase_a_ops + phase_b_ops + phase_c_ops;
  }
};

/// Transform `start` into `target` (both weakly connected, no self-loops,
/// target simple). `verify_connectivity` re-checks Lemma 1 after every op.
[[nodiscard]] TransformStats transform_graph(const DiGraph& start,
                                             const DiGraph& target,
                                             bool verify_connectivity = false);

/// Phase A alone: run introduction rounds until the support is the clique;
/// returns the number of rounds (the O(log n) figure of the proof).
[[nodiscard]] std::uint64_t clique_rounds(GraphRewriter& rw);

}  // namespace fdp
