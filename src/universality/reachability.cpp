#include "universality/reachability.hpp"

#include <deque>

#include "universality/rewriter.hpp"
#include "util/check.hpp"

namespace fdp {

ReachabilityExplorer::ReachabilityExplorer(std::size_t n, std::uint32_t cap)
    : n_(n), cap_(cap) {
  FDP_CHECK(n >= 1 && n <= 4);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = 0; v < n; ++v)
      if (u != v) pairs_.emplace_back(u, v);
  // Overflow guard: digits^pairs must fit 64 bits.
  long double space = 1;
  for (std::size_t i = 0; i < pairs_.size(); ++i)
    space *= static_cast<long double>(cap + 1);
  FDP_CHECK_MSG(space < 1.8e19L, "state space exceeds 64-bit encoding");
}

StateCode ReachabilityExplorer::encode(const DiGraph& g) const {
  StateCode code = 0;
  for (auto it = pairs_.rbegin(); it != pairs_.rend(); ++it) {
    const std::uint64_t m = g.multiplicity(it->first, it->second);
    FDP_CHECK(m <= cap_);
    code = code * (cap_ + 1) + m;
  }
  return code;
}

DiGraph ReachabilityExplorer::decode(StateCode code) const {
  DiGraph g(n_);
  for (const auto& [u, v] : pairs_) {
    const std::uint64_t m = code % (cap_ + 1);
    code /= (cap_ + 1);
    if (m > 0) g.add_edge(u, v, m);
  }
  return g;
}

void ReachabilityExplorer::successors(const DiGraph& g, unsigned allowed,
                                      std::vector<StateCode>& out) const {
  auto try_op = [&](const RewriteOp& op) {
    GraphRewriter rw(g);
    if (!rw.apply(op)) return;
    // Enforce the multiplicity cap on the resulting state.
    for (const auto& [a, b] : rw.graph().simple_edges())
      if (rw.graph().multiplicity(a, b) > cap_) return;
    out.push_back(encode(rw.graph()));
  };

  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v = 0; v < n_; ++v) {
      if (u == v) continue;
      if (allowed & kAllowIntroduction) {
        try_op(RewriteOp::self_introduction(u, v));
        for (NodeId w = 0; w < n_; ++w)
          if (w != u && w != v) try_op(RewriteOp::introduction(u, v, w));
      }
      if (allowed & kAllowDelegation) {
        for (NodeId w = 0; w < n_; ++w)
          if (w != u && w != v) try_op(RewriteOp::delegation(u, v, w));
      }
      if (allowed & kAllowFusion) try_op(RewriteOp::fusion(u, v));
      if (allowed & kAllowReversal) try_op(RewriteOp::reversal(u, v));
    }
  }
}

std::set<StateCode> ReachabilityExplorer::explore(const DiGraph& start,
                                                  unsigned allowed) const {
  std::set<StateCode> seen;
  std::deque<StateCode> frontier;
  const StateCode s0 = encode(start);
  seen.insert(s0);
  frontier.push_back(s0);
  std::vector<StateCode> next;
  while (!frontier.empty()) {
    const StateCode code = frontier.front();
    frontier.pop_front();
    const DiGraph g = decode(code);
    next.clear();
    successors(g, allowed, next);
    for (StateCode c : next) {
      if (seen.insert(c).second) frontier.push_back(c);
    }
  }
  return seen;
}

bool ReachabilityExplorer::reachable(const DiGraph& start,
                                     const DiGraph& target,
                                     unsigned allowed) const {
  const std::set<StateCode> states = explore(start, allowed);
  return states.count(encode(target)) > 0;
}

}  // namespace fdp
