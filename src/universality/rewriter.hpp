// Graph rewriting with the four primitives (paper Section 2).
//
// The rewriter is the *abstract* counterpart of the message-passing layer:
// it applies primitive operations directly to a directed multigraph,
// collapsing message transit (an introduced/delegated reference appears at
// its destination immediately). This is exactly the graph semantics used
// in the proofs of Theorems 1 and 2, and lets us machine-check both.
//
// Preconditions are enforced (an op whose required edges are absent is
// rejected), self-loops are disallowed (the primitives assume pairwise
// distinct endpoints; a process trivially knows itself), and the rewriter
// can optionally verify weak connectivity after every operation — the
// machine-checked form of Lemma 1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/primitives.hpp"
#include "graph/digraph.hpp"

namespace fdp {

struct RewriteOp {
  Primitive kind = Primitive::Introduction;
  /// Introduction u,v,w : requires (u,v) and (u,w); adds (v,w). With
  ///   w == u this is self-introduction: requires (u,v); adds (v,u).
  /// Delegation   u,v,w : requires (u,v) and (u,w); removes (u,w), adds (v,w).
  /// Fusion       u,v   : requires multiplicity(u,v) >= 2; removes one copy.
  /// Reversal     u,v   : requires (u,v); removes it, adds (v,u).
  NodeId u = 0, v = 0, w = 0;

  [[nodiscard]] static RewriteOp introduction(NodeId u, NodeId v, NodeId w) {
    return {Primitive::Introduction, u, v, w};
  }
  [[nodiscard]] static RewriteOp self_introduction(NodeId u, NodeId v) {
    return {Primitive::Introduction, u, v, u};
  }
  [[nodiscard]] static RewriteOp delegation(NodeId u, NodeId v, NodeId w) {
    return {Primitive::Delegation, u, v, w};
  }
  [[nodiscard]] static RewriteOp fusion(NodeId u, NodeId v) {
    return {Primitive::Fusion, u, v, 0};
  }
  [[nodiscard]] static RewriteOp reversal(NodeId u, NodeId v) {
    return {Primitive::Reversal, u, v, 0};
  }
};

class GraphRewriter {
 public:
  /// `verify_connectivity`: re-check weak connectivity after every applied
  /// op (slow; used by the Lemma-1 property tests).
  explicit GraphRewriter(DiGraph g, bool verify_connectivity = false);

  /// Apply one primitive. Returns false (graph unchanged) when the
  /// preconditions do not hold.
  bool apply(const RewriteOp& op);

  [[nodiscard]] const DiGraph& graph() const { return g_; }
  [[nodiscard]] std::uint64_t ops_applied() const { return applied_; }
  [[nodiscard]] std::uint64_t ops_rejected() const { return rejected_; }
  [[nodiscard]] const PrimitiveCounts& counts() const { return counts_; }
  /// Only meaningful with verify_connectivity: number of ops after which
  /// the graph was NOT weakly connected (Lemma 1 says this stays 0 when
  /// the start graph is weakly connected).
  [[nodiscard]] std::uint64_t connectivity_violations() const {
    return violations_;
  }

 private:
  DiGraph g_;
  bool verify_;
  std::uint64_t applied_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t violations_ = 0;
  PrimitiveCounts counts_;
};

}  // namespace fdp
