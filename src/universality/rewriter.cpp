#include "universality/rewriter.hpp"

#include "graph/connectivity.hpp"
#include "util/check.hpp"

namespace fdp {

GraphRewriter::GraphRewriter(DiGraph g, bool verify_connectivity)
    : g_(std::move(g)), verify_(verify_connectivity) {
  FDP_CHECK_MSG(g_.strip_self_loops() == 0,
                "rewriter input must not contain self-loops");
}

bool GraphRewriter::apply(const RewriteOp& op) {
  bool ok = false;
  switch (op.kind) {
    case Primitive::Introduction: {
      if (op.w == op.u) {
        // Self-introduction: u sends its own reference to v.
        ok = op.u != op.v && g_.has_edge(op.u, op.v);
        if (ok) g_.add_edge(op.v, op.u);
      } else {
        ok = op.u != op.v && op.v != op.w && op.u != op.w &&
             g_.has_edge(op.u, op.v) && g_.has_edge(op.u, op.w);
        if (ok) g_.add_edge(op.v, op.w);
      }
      if (ok) ++counts_.introductions;
      break;
    }
    case Primitive::Delegation: {
      ok = op.u != op.v && op.v != op.w && op.u != op.w &&
           g_.has_edge(op.u, op.v) && g_.has_edge(op.u, op.w);
      if (ok) {
        g_.remove_edge(op.u, op.w);
        g_.add_edge(op.v, op.w);
        ++counts_.delegations;
      }
      break;
    }
    case Primitive::Fusion: {
      ok = g_.multiplicity(op.u, op.v) >= 2;
      if (ok) {
        g_.remove_edge(op.u, op.v);
        ++counts_.fusions;
      }
      break;
    }
    case Primitive::Reversal: {
      ok = op.u != op.v && g_.has_edge(op.u, op.v);
      if (ok) {
        g_.remove_edge(op.u, op.v);
        g_.add_edge(op.v, op.u);
        ++counts_.reversals;
      }
      break;
    }
  }
  if (!ok) {
    ++rejected_;
    return false;
  }
  ++applied_;
  if (verify_ && !is_weakly_connected(g_)) ++violations_;
  return true;
}

}  // namespace fdp
