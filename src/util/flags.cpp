#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>

namespace fdp {

Flags::Flags(int argc, char** argv) : program_(argc > 0 ? argv[0] : "") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n",
                   arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) {
  auto it = values_.find(name);
  consumed_[name] = true;
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) {
  auto it = values_.find(name);
  consumed_[name] = true;
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::get_string(const std::string& name, std::string def) {
  auto it = values_.find(name);
  consumed_[name] = true;
  if (it == values_.end()) return def;
  return it->second;
}

bool Flags::get_bool(const std::string& name, bool def) {
  auto it = values_.find(name);
  consumed_[name] = true;
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void Flags::reject_unknown() const {
  bool bad = false;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!consumed_.count(name)) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      bad = true;
    }
  }
  if (bad) std::exit(2);
}

}  // namespace fdp
