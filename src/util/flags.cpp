#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>

namespace fdp {

Flags::Flags(int argc, char** argv) : program_(argc > 0 ? argv[0] : "") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n",
                   arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) {
  auto it = values_.find(name);
  consumed_[name] = true;
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) {
  auto it = values_.find(name);
  consumed_[name] = true;
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::get_string(const std::string& name, std::string def) {
  auto it = values_.find(name);
  consumed_[name] = true;
  if (it == values_.end()) return def;
  return it->second;
}

bool Flags::get_bool(const std::string& name, bool def) {
  auto it = values_.find(name);
  consumed_[name] = true;
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Flags::unknown_flags_message() const {
  std::string msg;
  // The binary's base name: argv[0] may carry a build-tree path.
  std::string bin = program_;
  const auto slash = bin.find_last_of('/');
  if (slash != std::string::npos) bin = bin.substr(slash + 1);
  if (bin.empty()) bin = "(unknown binary)";
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!consumed_.count(name))
      msg += bin + ": unknown flag --" + name + "\n";
  }
  if (msg.empty()) return msg;
  if (consumed_.empty()) {
    msg += bin + " takes no flags\n";
    return msg;
  }
  msg += bin + " knows:";
  for (const auto& [name, seen] : consumed_) {
    (void)seen;
    msg += " --" + name;
  }
  msg += "\n";
  return msg;
}

void Flags::reject_unknown() const {
  const std::string msg = unknown_flags_message();
  if (msg.empty()) return;
  std::fputs(msg.c_str(), stderr);
  std::exit(2);
}

}  // namespace fdp
