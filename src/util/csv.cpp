#include "util/csv.hpp"

#include "util/check.hpp"

namespace fdp {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), arity_(header.size()) {
  if (out_) row(header);
}

std::string CsvWriter::escape(const std::string& s) {
  bool needs = s.find_first_of(",\"\n") != std::string::npos;
  if (!needs) return s;
  std::string q = "\"";
  for (char c : s) {
    if (c == '"') q += "\"\"";
    else q += c;
  }
  q += "\"";
  return q;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!out_) return;
  FDP_CHECK_MSG(cells.size() == arity_, "csv row arity mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

bool CsvWriter::finish() {
  if (!out_.is_open()) return false;
  out_.flush();
  return static_cast<bool>(out_);
}

}  // namespace fdp
