#include "util/alloc_stats.hpp"

#include <cstdio>
#include <cstring>

namespace fdp::alloc_stats {

namespace {

/// Parse one "Vm...:  <kB> kB" line from /proc/self/status. Plain stdio —
/// this runs inside measurement code, so it must not itself churn the
/// allocator via iostreams.
std::uint64_t status_field_kb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  const std::size_t flen = std::strlen(field);
  std::uint64_t out = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, flen) != 0) continue;
    unsigned long long kb = 0;
    if (std::sscanf(line + flen, " %llu", &kb) == 1)
      out = static_cast<std::uint64_t>(kb);
    break;
  }
  std::fclose(f);
  return out;
}

}  // namespace

std::uint64_t rss_now_kb() { return status_field_kb("VmRSS:"); }

std::uint64_t rss_peak_kb() { return status_field_kb("VmHWM:"); }

}  // namespace fdp::alloc_stats
