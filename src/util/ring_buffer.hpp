// Growable power-of-two ring buffer with slot reuse.
//
// The live runtime's inboxes and outboxes used to be std::deque, whose
// block allocation/free churn shows up on the pump hot path at large n.
// RingBuffer keeps elements in one power-of-two array indexed by
// monotonically increasing head/tail counters (masked on access), so in
// steady state push/pop never touch the allocator and — crucially for
// recycling Message spill buffers — popped slots are NOT destroyed: the
// object stays in place and `push_slot()` hands it back to the producer
// for in-place reuse, exactly like the kernel's slot-arena channels.
//
// Growth doubles the array and unwraps the live range into the new
// storage (a wrapped ring must stay contiguous-by-index after rehoming —
// the wrap-around tests pin this).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace fdp {

template <typename T>
class RingBuffer {
 public:
  [[nodiscard]] std::size_t size() const { return tail_ - head_; }
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Advance the tail and return the (possibly recycled) slot object.
  /// The caller assigns into it; the previous occupant's heap capacity
  /// (vector storage, SmallVec spill) is retained for reuse.
  [[nodiscard]] T& push_slot() {
    if (size() == slots_.size()) grow();
    return slots_[tail_++ & mask_];
  }

  void push_back(T v) { push_slot() = std::move(v); }

  [[nodiscard]] T& front() {
    FDP_DCHECK(!empty());
    return slots_[head_ & mask_];
  }
  [[nodiscard]] const T& front() const {
    FDP_DCHECK(!empty());
    return slots_[head_ & mask_];
  }

  /// Element `i` positions behind the front (0 = front).
  [[nodiscard]] const T& at(std::size_t i) const {
    FDP_DCHECK(i < size());
    return slots_[(head_ + i) & mask_];
  }
  [[nodiscard]] T& at(std::size_t i) {
    FDP_DCHECK(i < size());
    return slots_[(head_ + i) & mask_];
  }

  /// Drop the front element WITHOUT destroying it (its heap capacity is
  /// recycled by the next push_slot() that lands on the slot).
  void pop_front() {
    FDP_DCHECK(!empty());
    ++head_;
  }

  /// Drop every element (slots and their capacity retained).
  void clear() { head_ = tail_ = 0; }

 private:
  void grow() {
    const std::size_t old_cap = slots_.size();
    const std::size_t new_cap = old_cap == 0 ? 8 : old_cap * 2;
    std::vector<T> next(new_cap);
    // Unwrap: the live range [head_, tail_) moves to the front of the new
    // array so masked indexing stays correct for any head/tail values.
    for (std::size_t i = 0; i < size(); ++i)
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    tail_ = size();
    head_ = 0;
    slots_ = std::move(next);
    mask_ = new_cap - 1;
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;  ///< monotone pop counter
  std::size_t tail_ = 0;  ///< monotone push counter
};

}  // namespace fdp
