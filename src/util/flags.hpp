// Tiny command-line flag parser for examples and bench harnesses.
//
// Supports `--name=value` and `--name value`; unknown flags abort with a
// usage listing so typos in experiment sweeps are caught rather than
// silently ignored.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fdp {

class Flags {
 public:
  /// Parse argv. Flags must be registered (via get_* defaults) before parse
  /// in usage(), but registration-on-read keeps call sites compact, so we
  /// instead collect raw pairs here and validate on read.
  Flags(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def);
  [[nodiscard]] double get_double(const std::string& name, double def);
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string def);
  [[nodiscard]] bool get_bool(const std::string& name, bool def);

  /// Call after all get_* calls: abort with a message if any provided flag
  /// was never consumed (catches typos). The message names the binary and
  /// lists every flag the binary actually reads, so a typo'd sweep tells
  /// the operator what was meant instead of just what was wrong.
  void reject_unknown() const;

  /// The text reject_unknown would print — empty when every provided flag
  /// was consumed. Split out so the formatting is testable (reject_unknown
  /// itself exits the process).
  [[nodiscard]] std::string unknown_flags_message() const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace fdp
