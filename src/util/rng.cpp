#include "util/rng.hpp"

#include "util/check.hpp"

namespace fdp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed through SplitMix64 so that nearby seeds give unrelated streams.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not be seeded with all zeros; splitmix64 output of any
  // state is never four zeros in a row, but keep a cheap guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  FDP_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  FDP_DCHECK(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() {
  Rng child(0);
  std::uint64_t sm = (*this)();
  for (auto& s : child.s_) s = splitmix64(sm);
  return child;
}

}  // namespace fdp
