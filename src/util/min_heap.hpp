// A min-heap over a reusable vector.
//
// std::priority_queue hides its container, so the only way to empty one is
// to assign a fresh instance — which frees the backing store. The kernel's
// lazily-compacted min-seq heaps live for the whole process and are rewound
// on World::reset, so they need clear()-keeps-capacity semantics (and an
// O(n) bulk rebuild for the lazily built per-channel heaps). Top/pop/push
// behave exactly like std::priority_queue with std::greater: top() is the
// smallest element.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "util/check.hpp"

namespace fdp {

template <typename T>
class MinHeap {
 public:
  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }

  [[nodiscard]] const T& top() const {
    FDP_DCHECK(!v_.empty());
    return v_.front();
  }

  void push(T x) {
    v_.push_back(std::move(x));
    std::push_heap(v_.begin(), v_.end(), std::greater<T>{});
  }

  template <typename... Args>
  void emplace(Args&&... args) {
    push(T{std::forward<Args>(args)...});
  }

  void pop() {
    FDP_DCHECK(!v_.empty());
    std::pop_heap(v_.begin(), v_.end(), std::greater<T>{});
    v_.pop_back();
  }

  /// Empty the heap but keep the backing capacity.
  void clear() { v_.clear(); }

  /// Heap bytes of the backing vector — memory accounting.
  [[nodiscard]] std::size_t heap_bytes() const {
    return v_.capacity() * sizeof(T);
  }

  /// Bulk rebuild from a range: O(n), used by the lazily built per-channel
  /// heaps on their first query.
  template <typename It>
  void assign(It first, It last) {
    v_.assign(first, last);
    std::make_heap(v_.begin(), v_.end(), std::greater<T>{});
  }

 private:
  std::vector<T> v_;
};

}  // namespace fdp
