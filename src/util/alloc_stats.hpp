// Thread-local allocation counters.
//
// The zero-allocation steady-state claim (DESIGN.md, "memory model") is
// enforced, not asserted: benchmarks and tests read these counters around a
// measured region and fail when the count moves. The counters are bumped by
// replacement operator new/delete defined in alloc_stats_hook.cpp — a TU
// linked ONLY into the bench and test binaries, never into the fdp library,
// so shipping code pays nothing. When the hook TU is absent the counters
// simply stay zero; callers must check hooked() before treating a zero
// delta as proof (a gate that cannot fail measures nothing).
#pragma once

#include <atomic>
#include <cstdint>

namespace fdp::alloc_stats {

/// Per-subsystem byte accounting of one World (or of the live runtime's
/// ledger). The four buckets partition everything the kernel owns:
///   processes         — process objects + their protocol storage (u.N,
///                       anchors, overlay links), including the unique_ptr
///                       slots of the roster;
///   channels_messages — channel slot arenas, order/freelist/seq indices,
///                       spilled message-ref buffers and the MessagePool;
///   indices           — world-level maintained indices: Fenwick rosters,
///                       seq->holder hash, oldest heap, and the PG
///                       edge-instance rows (ref_out_/ref_in_/ref_list_);
///   scratch           — reused per-action buffers (sends, diff scratch).
/// Logical bytes: what the structures address, not allocator slack — RSS
/// sampling (below) covers the real pages.
struct ByteBuckets {
  std::uint64_t processes = 0;
  std::uint64_t channels_messages = 0;
  std::uint64_t indices = 0;
  std::uint64_t scratch = 0;

  [[nodiscard]] std::uint64_t total() const {
    return processes + channels_messages + indices + scratch;
  }
  ByteBuckets& operator+=(const ByteBuckets& o) {
    processes += o.processes;
    channels_messages += o.channels_messages;
    indices += o.indices;
    scratch += o.scratch;
    return *this;
  }
};

/// Current resident set size in kB (VmRSS from /proc/self/status), or 0
/// when the platform does not expose it.
[[nodiscard]] std::uint64_t rss_now_kb();

/// Peak resident set size in kB (VmHWM from /proc/self/status), or 0 when
/// unavailable. The kernel tracks the high-water mark itself, so this needs
/// no sampling thread — read it once after the measured phase.
[[nodiscard]] std::uint64_t rss_peak_kb();

struct Counters {
  std::uint64_t allocs = 0;    ///< operator new calls (all variants)
  std::uint64_t deallocs = 0;  ///< operator delete calls (all variants)
  std::uint64_t bytes = 0;     ///< total bytes requested
};

/// Per-thread running totals since thread start. Trivially constructible on
/// purpose: operator new may run before any dynamic initializer.
inline thread_local Counters tl_counters{};

/// Set once by alloc_stats_hook.cpp's initializer; false in binaries that
/// do not link the hook TU.
inline std::atomic<bool> hook_installed{false};

[[nodiscard]] inline bool hooked() {
  return hook_installed.load(std::memory_order_relaxed);
}

[[nodiscard]] inline Counters snapshot() { return tl_counters; }

/// Allocations on this thread since `before` was snapshotted.
[[nodiscard]] inline std::uint64_t allocs_since(const Counters& before) {
  return tl_counters.allocs - before.allocs;
}

}  // namespace fdp::alloc_stats
