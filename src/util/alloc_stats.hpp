// Thread-local allocation counters.
//
// The zero-allocation steady-state claim (DESIGN.md, "memory model") is
// enforced, not asserted: benchmarks and tests read these counters around a
// measured region and fail when the count moves. The counters are bumped by
// replacement operator new/delete defined in alloc_stats_hook.cpp — a TU
// linked ONLY into the bench and test binaries, never into the fdp library,
// so shipping code pays nothing. When the hook TU is absent the counters
// simply stay zero; callers must check hooked() before treating a zero
// delta as proof (a gate that cannot fail measures nothing).
#pragma once

#include <atomic>
#include <cstdint>

namespace fdp::alloc_stats {

struct Counters {
  std::uint64_t allocs = 0;    ///< operator new calls (all variants)
  std::uint64_t deallocs = 0;  ///< operator delete calls (all variants)
  std::uint64_t bytes = 0;     ///< total bytes requested
};

/// Per-thread running totals since thread start. Trivially constructible on
/// purpose: operator new may run before any dynamic initializer.
inline thread_local Counters tl_counters{};

/// Set once by alloc_stats_hook.cpp's initializer; false in binaries that
/// do not link the hook TU.
inline std::atomic<bool> hook_installed{false};

[[nodiscard]] inline bool hooked() {
  return hook_installed.load(std::memory_order_relaxed);
}

[[nodiscard]] inline Counters snapshot() { return tl_counters; }

/// Allocations on this thread since `before` was snapshotted.
[[nodiscard]] inline std::uint64_t allocs_since(const Counters& before) {
  return tl_counters.allocs - before.allocs;
}

}  // namespace fdp::alloc_stats
