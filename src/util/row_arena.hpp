// Slab-pooled storage for many small per-id rows.
//
// The world's lazy edge index keeps three row tables indexed by ProcessId
// (ref_out_, ref_in_, ref_list_). As std::vectors they cost, per process,
// a 24-byte header plus one independently malloc'd block of a few dozen
// bytes — at n = 10^7 that is 3n tiny heap blocks whose allocator metadata
// and fragmentation rival the payload. A RowArena replaces the blocks with
// bump allocations from large slabs:
//
//  * Rows are 16-byte {ptr, size, cap} handles; element storage comes from
//    the arena. Capacities are powers of two (min 4); growth hands out a
//    larger span and RECYCLES the old one through a per-size-class free
//    list, so a row that grows 4 → 8 → 16 leaves spans behind for other
//    rows instead of dead slab bytes. When the growing span happens to sit
//    at the slab's bump cursor it is extended in place for free.
//  * Slabs are stable: a span never moves once handed out, so concurrent
//    readers/owners of OTHER rows are never invalidated by one row's
//    growth. Only the allocator state is shared; it is guarded by a mutex
//    (growth is rare after warmup — the sharded kernel's worker threads
//    hit it only when a row outgrows its span).
//  * clear()ing a row keeps its span (capacity reuse across World::reset),
//    exactly like the vectors it replaces; the arena itself never shrinks —
//    its high-water mark is the steady-state footprint.
//
// Free-list entries live intrusively in the recycled spans themselves (the
// smallest span is 4 elements ≥ 32 bytes, comfortably a pointer); the next
// pointer is memcpy'd to dodge T's alignment.
//
// T must be trivially copyable (rows move by memcpy, slabs are raw
// storage, nothing is destroyed).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace fdp {

template <typename T>
class RowArena {
  static_assert(std::is_trivially_copyable_v<T>,
                "rows relocate by memcpy");
  static_assert(sizeof(T) * 4 >= sizeof(void*),
                "smallest span must hold a free-list link");

 public:
  /// One row: a span of arena storage. Plain handle — copying it would
  /// alias the span, so rows live in exactly one table and are mutated
  /// only through their owning arena (growth) or in place (swap-remove).
  struct Row {
    T* ptr = nullptr;
    std::uint32_t size_ = 0;
    std::uint32_t cap = 0;

    [[nodiscard]] T* begin() { return ptr; }
    [[nodiscard]] T* end() { return ptr + size_; }
    [[nodiscard]] const T* begin() const { return ptr; }
    [[nodiscard]] const T* end() const { return ptr + size_; }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] std::size_t capacity() const { return cap; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] T& operator[](std::size_t i) {
      FDP_DCHECK(i < size_);
      return ptr[i];
    }
    [[nodiscard]] const T& operator[](std::size_t i) const {
      FDP_DCHECK(i < size_);
      return ptr[i];
    }
    [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
    /// Drop the elements, keep the span.
    void clear() { size_ = 0; }
    void pop_back() {
      FDP_DCHECK(size_ > 0);
      --size_;
    }
    /// Element-wise equality against a plain buffer.
    [[nodiscard]] bool equals(const T* src, std::size_t n) const {
      if (size_ != n) return false;
      for (std::size_t i = 0; i < n; ++i)
        if (!(ptr[i] == src[i])) return false;
      return true;
    }
  };

  void push_back(Row& r, const T& v) {
    if (r.size_ == r.cap) grow(r, r.size_ + 1, /*keep=*/true);
    r.ptr[r.size_++] = v;
  }

  void assign(Row& r, const T* src, std::size_t n) {
    if (n > r.cap) grow(r, n, /*keep=*/false);
    if (n > 0) std::memcpy(r.ptr, src, n * sizeof(T));
    r.size_ = static_cast<std::uint32_t>(n);
  }

  /// Total slab bytes owned (live spans + recycled spans + unused slab
  /// tails) — memory accounting. This is the arena's real footprint;
  /// per-row capacity sums undercount it by the free-list inventory.
  [[nodiscard]] std::size_t heap_bytes() const {
    return slab_elems_total_ * sizeof(T);
  }

 private:
  static constexpr std::size_t kSlabElems = std::size_t{1} << 16;
  static constexpr std::size_t kClasses = 32;  // pow2 span sizes 4..2^35

  [[nodiscard]] static std::size_t class_of(std::size_t cap) {
    // cap is a power of two ≥ 4: class 0 holds 4-element spans.
    std::size_t c = 0;
    while ((std::size_t{4} << c) < cap) ++c;
    return c;
  }

  void grow(Row& r, std::size_t need, bool keep) {
    std::size_t cap = 4;
    while (cap < need || cap < std::size_t{r.cap} * 2) cap *= 2;
    std::lock_guard<std::mutex> lock(mu_);
    // Cheapest growth: the span sits at the bump cursor — extend in place.
    if (r.cap > 0 && !slabs_.empty() &&
        r.ptr + r.cap == slabs_.back().get() + used_ &&
        used_ + (cap - r.cap) <= slab_cap_) {
      used_ += cap - r.cap;
      r.cap = static_cast<std::uint32_t>(cap);
      return;
    }
    T* p = pop_free(class_of(cap));
    if (p == nullptr) p = bump_alloc(cap);
    if (keep && r.size_ > 0) std::memcpy(p, r.ptr, r.size_ * sizeof(T));
    if (r.cap > 0) push_free(class_of(r.cap), r.ptr);
    r.ptr = p;
    r.cap = static_cast<std::uint32_t>(cap);
  }

  // Free-list plumbing: intrusive singly linked, link memcpy'd into the
  // first bytes of the recycled span. Caller holds mu_.
  void push_free(std::size_t cls, T* span) {
    std::memcpy(span, &free_heads_[cls], sizeof(void*));
    free_heads_[cls] = span;
  }

  [[nodiscard]] T* pop_free(std::size_t cls) {
    T* head = static_cast<T*>(free_heads_[cls]);
    if (head != nullptr)
      std::memcpy(&free_heads_[cls], head, sizeof(void*));
    return head;
  }

  [[nodiscard]] T* bump_alloc(std::size_t n) {
    if (slabs_.empty() || used_ + n > slab_cap_) {
      // Recycle the dying slab's tail before abandoning it.
      if (!slabs_.empty() && slab_cap_ - used_ >= 4) {
        std::size_t tail = slab_cap_ - used_;
        T* at = slabs_.back().get() + used_;
        // Carve the tail into aligned pow2 spans, largest first.
        while (tail >= 4) {
          std::size_t piece = 4;
          while (piece * 2 <= tail) piece *= 2;
          push_free(class_of(piece), at);
          at += piece;
          tail -= piece;
        }
      }
      const std::size_t cap = n > kSlabElems ? n : kSlabElems;
      slabs_.push_back(std::unique_ptr<T[]>(new T[cap]));
      slab_cap_ = cap;
      used_ = 0;
      slab_elems_total_ += cap;
    }
    T* p = slabs_.back().get() + used_;
    used_ += n;
    return p;
  }

  std::vector<std::unique_ptr<T[]>> slabs_;
  std::size_t slab_cap_ = 0;  ///< element capacity of the current slab
  std::size_t used_ = 0;      ///< elements consumed in the current slab
  std::size_t slab_elems_total_ = 0;
  std::array<void*, kClasses> free_heads_{};
  std::mutex mu_;
};

}  // namespace fdp
