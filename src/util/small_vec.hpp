// A small-buffer vector for trivially copyable elements.
//
// The paper's copy-store-send protocols send at most one or two references
// per message (present(v), forward(v), verify(u), process(v)), yet
// Message::refs used to be a std::vector — one heap allocation per message
// on the kernel's hottest path. SmallVec keeps up to N elements inline in
// the object itself and only spills to the heap beyond that, so the common
// case constructs, copies and destroys without touching the allocator.
//
// Layout: the heap pointer and the inline buffer share a union — a vec is
// either inline (cap_ == N, elements in the buffer) or spilled (cap_ > N,
// elements behind the pointer), never both, so storing the pointer next to
// the buffer would waste 8 bytes in every Message. The discriminant is
// cap_ alone; an inline vec's buffer bytes are meaningless while spilled.
//
// The element type must be trivially copyable: growth and copies are plain
// memcpy, which is what makes a Message move as cheap as copying ~60 bytes.
// Spilled heap buffers are raw ::operator new storage; they can be detached
// with release_heap() and re-attached with adopt_heap(), which is how
// MessagePool recycles the rare oversized buffers instead of freeing them
// (see sim/message_pool.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace fdp {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec relies on memcpy growth");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  /// A detached spilled buffer (raw ::operator new storage of `cap`
  /// elements). Plain handle type so a pool can stash it in a vector.
  struct HeapBuf {
    T* ptr = nullptr;
    std::uint32_t cap = 0;
  };

  SmallVec() = default;

  SmallVec(std::initializer_list<T> il) { append(il.begin(), il.size()); }

  /// Converting constructors: the protocol layers still traffic in
  /// std::vector<RefInfo>; both lvalues and rvalues copy the elements
  /// (they are trivially copyable — there is nothing cheaper to steal
  /// from an allocator-owned buffer we cannot adopt).
  SmallVec(const std::vector<T>& v) {  // NOLINT(google-explicit-constructor)
    append(v.data(), v.size());
  }
  SmallVec(std::vector<T>&& v) {  // NOLINT(google-explicit-constructor)
    append(v.data(), v.size());
  }

  SmallVec(const SmallVec& o) { append(o.data(), o.size()); }

  SmallVec(SmallVec&& o) noexcept { steal(o); }

  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) assign(o.data(), o.size());
    return *this;
  }

  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      free_heap();
      steal(o);
    }
    return *this;
  }

  SmallVec& operator=(std::initializer_list<T> il) {
    assign(il.begin(), il.size());
    return *this;
  }

  ~SmallVec() { free_heap(); }

  [[nodiscard]] T* data() { return spilled() ? heap_ : inline_ptr(); }
  [[nodiscard]] const T* data() const {
    return spilled() ? heap_ : inline_ptr();
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  /// Whether the elements live on the heap (spilled past N).
  [[nodiscard]] bool spilled() const { return cap_ > N; }
  /// Heap bytes owned by this vec (0 unless spilled) — memory accounting.
  [[nodiscard]] std::size_t heap_bytes() const {
    return spilled() ? static_cast<std::size_t>(cap_) * sizeof(T) : 0;
  }

  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }

  [[nodiscard]] T& operator[](std::size_t i) {
    FDP_DCHECK(i < size_);
    return data()[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    FDP_DCHECK(i < size_);
    return data()[i];
  }
  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& x) {
    if (size_ == cap_) grow(size_ + 1);
    data()[size_++] = x;
  }
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    push_back(T{std::forward<Args>(args)...});
    return back();
  }
  void pop_back() {
    FDP_DCHECK(size_ > 0);
    --size_;
  }

  /// Drops the elements but keeps the storage (inline or spilled) for
  /// reuse — clearing never frees.
  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void assign(const T* src, std::size_t n) {
    if (n > cap_) grow_discard(n);
    if (n > 0) std::memcpy(data(), src, n * sizeof(T));
    size_ = static_cast<std::uint32_t>(n);
  }

  /// Detach the spilled buffer, leaving this vec empty on inline storage.
  /// Returns {nullptr, 0} when nothing was spilled.
  [[nodiscard]] HeapBuf release_heap() {
    if (!spilled()) return {};
    HeapBuf b{heap_, cap_};
    size_ = 0;
    cap_ = N;
    return b;
  }

  /// Install a recycled spilled buffer as this vec's storage. Existing
  /// elements are preserved (they fit: callers only adopt larger buffers).
  void adopt_heap(HeapBuf b) {
    FDP_DCHECK(b.ptr != nullptr && b.cap >= size_);
    if (size_ > 0) std::memcpy(b.ptr, data(), size_ * sizeof(T));
    free_heap();
    heap_ = b.ptr;
    cap_ = b.cap;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    const T* ap = a.data();
    const T* bp = b.data();
    for (std::uint32_t i = 0; i < a.size_; ++i)
      if (!(ap[i] == bp[i])) return false;
    return true;
  }

 private:
  [[nodiscard]] T* inline_ptr() {
    return reinterpret_cast<T*>(inline_);  // NOLINT: trivially copyable T
  }
  [[nodiscard]] const T* inline_ptr() const {
    return reinterpret_cast<const T*>(inline_);
  }

  static T* alloc(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void free_heap() {
    if (spilled()) ::operator delete(heap_);
  }

  void grow(std::size_t need) {
    std::size_t cap = cap_ * 2;
    if (cap < need) cap = need;
    T* p = alloc(cap);
    if (size_ > 0) std::memcpy(p, data(), size_ * sizeof(T));
    free_heap();
    heap_ = p;
    cap_ = static_cast<std::uint32_t>(cap);
  }

  /// Grow without preserving contents (assign is about to overwrite).
  void grow_discard(std::size_t need) {
    std::size_t cap = cap_ * 2;
    if (cap < need) cap = need;
    T* p = alloc(cap);
    free_heap();
    heap_ = p;
    cap_ = static_cast<std::uint32_t>(cap);
  }

  void append(const T* src, std::size_t n) {
    if (n > cap_) grow(size_ + n);
    if (n > 0) std::memcpy(data() + size_, src, n * sizeof(T));
    size_ += static_cast<std::uint32_t>(n);
  }

  /// Take over `o`'s contents; `o` is left empty on inline storage. The
  /// caller has already released our own heap buffer (or we have none).
  void steal(SmallVec& o) {
    if (o.spilled()) {
      heap_ = o.heap_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.size_ = 0;
      o.cap_ = N;
    } else {
      size_ = o.size_;
      cap_ = N;
      if (size_ > 0) std::memcpy(inline_ptr(), o.inline_ptr(),
                                 size_ * sizeof(T));
      o.size_ = 0;
    }
  }

  union {
    T* heap_;  ///< valid iff cap_ > N (spilled)
    alignas(T) std::byte inline_[N * sizeof(T)];
  };
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = N;
};

}  // namespace fdp
