// Fenwick (binary indexed) tree over a dense index space.
//
// The kernel's maintained world indices are weight arrays over ProcessId:
// "1 if awake", "channel size if not gone". A Fenwick tree keeps prefix
// sums of such an array under point updates in O(log n), which buys the
// two queries every scheduler needs without scanning the population:
//
//   select(k)        — the position holding the k-th weight unit. Sampling
//                      the k-th awake process / k-th live message in
//                      *ascending index order* — the exact enumeration
//                      order the original O(n) scans used, so index-based
//                      sampling is byte-identical to the scan it replaces.
//   next_positive(i) — the first position >= i with positive weight; the
//                      round-robin cursor advance.
//
// Weights are unsigned; add() takes a signed delta and checks underflow.
//
// The storage width W is a template parameter: the tree's internal nodes
// hold SUBRANGE sums (the root covers half the array), so W must fit the
// TOTAL weight, not just one position's. Fenwick32 halves the footprint of
// the world rosters — two trees per world, 16 bytes/process at u64 — and
// is safe as long as the world never holds 2^32 weight units (awake flags
// are bounded by n, live message counts by the in-flight volume; both are
// DCHECKed on every update).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace fdp {

template <typename W>
class FenwickT {
  static_assert(std::is_unsigned_v<W>, "weights are unsigned");

 public:
  FenwickT() = default;
  explicit FenwickT(std::size_t n) : weight_(n, 0), tree_(n + 1, 0) {}

  [[nodiscard]] std::size_t size() const { return weight_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t weight(std::size_t i) const {
    FDP_DCHECK(i < weight_.size());
    return weight_[i];
  }

  /// Grow the index space by one position of weight `w`.
  void push_back(std::uint64_t w) {
    const std::size_t j = weight_.size() + 1;  // 1-based tree index
    // tree_[j] covers the weight range [j - lowbit(j), j) (0-based); all
    // of it except the new position is already summed by the old tree.
    tree_.push_back(static_cast<W>(prefix(j - 1) -
                                   prefix(j - (j & ~(j - 1)))));
    weight_.push_back(0);
    if (w != 0) add(weight_.size() - 1, static_cast<std::int64_t>(w));
  }

  /// Point update: weight_[i] += delta (must not underflow, and the total
  /// must keep fitting the storage width).
  void add(std::size_t i, std::int64_t delta) {
    if (delta == 0) return;
    FDP_DCHECK(i < weight_.size());
    FDP_DCHECK(delta > 0 ||
               weight_[i] >= static_cast<std::uint64_t>(-delta));
    weight_[i] = static_cast<W>(
        static_cast<std::int64_t>(weight_[i]) + delta);
    total_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(total_) +
                                        delta);
    FDP_DCHECK(total_ <= std::numeric_limits<W>::max());
    for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] = static_cast<W>(
          static_cast<std::int64_t>(tree_[j]) + delta);
    }
  }

  void set(std::size_t i, std::uint64_t w) {
    add(i, static_cast<std::int64_t>(w) -
               static_cast<std::int64_t>(weight(i)));
  }

  /// Sum of weights at positions [0, n).
  [[nodiscard]] std::uint64_t prefix(std::size_t n) const {
    FDP_DCHECK(n <= weight_.size());
    std::uint64_t sum = 0;
    for (std::size_t j = n; j > 0; j -= j & (~j + 1)) sum += tree_[j];
    return sum;
  }

  /// The position p with prefix(p) <= k < prefix(p + 1). Requires
  /// k < total(). For 0/1 weights this is the k-th set position; for
  /// channel-size weights it is the process holding the k-th message in
  /// (process asc, channel slot) enumeration order.
  [[nodiscard]] std::size_t select(std::uint64_t k) const {
    FDP_DCHECK(k < total_);
    std::size_t pos = 0;  // 1-based cursor into tree_
    std::size_t mask = 1;
    while (mask * 2 < tree_.size()) mask *= 2;
    for (; mask > 0; mask /= 2) {
      const std::size_t next = pos + mask;
      if (next < tree_.size() && tree_[next] <= k) {
        pos = next;
        k -= tree_[next];
      }
    }
    return pos;  // 1-based prefix end == 0-based position
  }

  /// Shrink to an empty index space, keeping the backing capacity so a
  /// rebuilt population (World::reset + re-spawn) allocates nothing.
  void clear() {
    weight_.clear();
    tree_.clear();
    tree_.push_back(0);
    total_ = 0;
  }

  /// Heap bytes of both backing arrays — memory accounting.
  [[nodiscard]] std::size_t heap_bytes() const {
    return (weight_.capacity() + tree_.capacity()) * sizeof(W);
  }

  /// Smallest position >= from with positive weight, or size() if none.
  [[nodiscard]] std::size_t next_positive(std::size_t from) const {
    if (from >= weight_.size()) return weight_.size();
    if (weight_[from] > 0) return from;
    const std::uint64_t before = prefix(from);
    if (before >= total_) return weight_.size();
    return select(before);
  }

 private:
  std::vector<W> weight_;
  std::vector<W> tree_{0};  // tree_[0] unused (1-based sentinel)
  std::uint64_t total_ = 0;
};

/// Full-width tree (drop-in for the original class).
using Fenwick = FenwickT<std::uint64_t>;
/// Half-width tree for the world rosters (see the header comment).
using Fenwick32 = FenwickT<std::uint32_t>;

}  // namespace fdp
