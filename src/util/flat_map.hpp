// Open-addressing hash map from non-zero 64-bit keys to small values.
//
// The kernel's seq -> holder / seq -> slot indices used to be
// std::unordered_map, whose node-per-entry layout costs one allocation per
// insert and one free per erase — on the hot path that is one alloc per
// message sent. FlatMap64 stores entries in one power-of-two slot array
// (linear probing, backward-shift deletion), so in steady state — once the
// table has grown to its high-water size — insert and erase never touch
// the allocator, and clear() keeps the capacity for the next trial.
//
// Key 0 is the empty-slot sentinel and must not be inserted; the kernel's
// keys are message sequence numbers, which start at 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace fdp {

template <typename V>
class FlatMap64 {
 public:
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Insert (key, val) if absent. Returns true when inserted, false when
  /// the key was already present (the stored value is left untouched).
  bool emplace(std::uint64_t key, V val) {
    FDP_DCHECK(key != 0);
    reserve_one();
    std::size_t i = ideal(key);
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) return false;
      i = (i + 1) & mask_;
    }
    slots_[i].key = key;
    slots_[i].val = val;
    ++size_;
    return true;
  }

  /// Insert or overwrite.
  void insert_or_assign(std::uint64_t key, V val) {
    FDP_DCHECK(key != 0);
    reserve_one();
    std::size_t i = ideal(key);
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) {
        slots_[i].val = val;
        return;
      }
      i = (i + 1) & mask_;
    }
    slots_[i].key = key;
    slots_[i].val = val;
    ++size_;
  }

  [[nodiscard]] const V* find(std::uint64_t key) const {
    if (size_ == 0) return nullptr;
    std::size_t i = ideal(key);
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) return &slots_[i].val;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  [[nodiscard]] V* find_mut(std::uint64_t key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    return find(key) != nullptr;
  }

  /// Remove the key; true when it was present. Backward-shift deletion:
  /// no tombstones, so probe lengths never degrade over a long run.
  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    std::size_t i = ideal(key);
    while (slots_[i].key != key) {
      if (slots_[i].key == 0) return false;
      i = (i + 1) & mask_;
    }
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (slots_[j].key == 0) break;
      const std::size_t k = ideal(slots_[j].key);
      // Slot j may fill the hole at i iff its ideal position is cyclically
      // outside (i, j] — otherwise moving it would break its probe chain.
      const bool movable = j > i ? (k <= i || k > j) : (k <= i && k > j);
      if (movable) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i].key = 0;
    --size_;
    return true;
  }

  /// Empty the map but keep the slot array (steady-state reuse).
  void clear() {
    for (Slot& s : slots_) s.key = 0;
    size_ = 0;
  }

  /// Heap bytes of the slot array — memory accounting.
  [[nodiscard]] std::size_t heap_bytes() const {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V val{};
  };

  [[nodiscard]] std::size_t ideal(std::uint64_t key) const {
    // splitmix64 finalizer: sequential seqs must not probe sequentially.
    std::uint64_t k = key;
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k) & mask_;
  }

  void reserve_one() {
    if (slots_.empty()) {
      slots_.resize(16);
      mask_ = 15;
      return;
    }
    // Grow at 3/4 load.
    if ((size_ + 1) * 4 <= slots_.size() * 3) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (const Slot& s : old)
      if (s.key != 0) emplace(s.key, s.val);
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace fdp
