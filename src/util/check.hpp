// Assertion helpers used throughout the library.
//
// FDP_CHECK is always on (it guards model invariants whose violation means
// the simulation no longer implements the paper's semantics, so continuing
// would silently produce wrong science). FDP_DCHECK compiles out in NDEBUG
// builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fdp {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "FDP_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace fdp

#define FDP_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) ::fdp::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define FDP_CHECK_MSG(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) ::fdp::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define FDP_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define FDP_DCHECK(cond) FDP_CHECK(cond)
#endif
