// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator (schedulers, generators,
// scenario corruption) draws from an Rng seeded from a single run seed, so a
// run is exactly reproducible from (code version, seed). We use
// xoshiro256** seeded through SplitMix64, the canonical seeding procedure
// recommended by the xoshiro authors; both are tiny, fast and high quality,
// and — unlike std::mt19937_64 with std::uniform_int_distribution — produce
// identical streams on every platform and standard library.
#pragma once

#include <cstdint>
#include <vector>

namespace fdp {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xfdb0'1234'5678'9abcULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derive an independent child generator (for per-component streams).
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace fdp
