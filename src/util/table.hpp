// ASCII table rendering for experiment harnesses.
//
// Every bench binary prints its results as a bordered, column-aligned table
// so the regenerated "paper tables" (EXPERIMENTS.md) can be produced by
// copy-paste from the bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fdp {

/// A simple column-aligned table with a title row and a header row.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Define the header. Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  /// Append one row. Size must match the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format helpers for mixed-type rows.
  static std::string num(std::int64_t v);
  static std::string num(std::uint64_t v);
  static std::string fixed(double v, int digits = 2);
  /// "mean ± sd" cell.
  static std::string pm(double mean, double sd, int digits = 1);
  /// "p50/p95" quantile cell (aggregate sweeps).
  static std::string quantiles(double p50, double p95, int digits = 0);

  /// Render to a string with unicode-free ASCII borders.
  [[nodiscard]] std::string render() const;

  /// Render and write to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fdp
