// Replacement global operator new/delete that count into
// alloc_stats::tl_counters. Linked only into bench and test executables
// (see bench/CMakeLists.txt, tests/CMakeLists.txt) — the fdp library itself
// never carries this TU, so instrumentation cannot leak into normal use.
//
// Every replaceable allocation signature is covered so no call path slips
// past the counters: plain, array, aligned, and nothrow forms. Sized
// deletes funnel into the unsized ones.
#include <cstdlib>
#include <new>

#include "util/alloc_stats.hpp"

namespace {

struct HookInstalledFlag {
  HookInstalledFlag() {
    fdp::alloc_stats::hook_installed.store(true, std::memory_order_relaxed);
  }
} hook_installed_flag;

void* counted_alloc(std::size_t n) {
  auto& c = fdp::alloc_stats::tl_counters;
  ++c.allocs;
  c.bytes += n;
  return std::malloc(n == 0 ? 1 : n);
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  auto& c = fdp::alloc_stats::tl_counters;
  ++c.allocs;
  c.bytes += n;
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, n == 0 ? align : n) != 0) return nullptr;
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  ++fdp::alloc_stats::tl_counters.deallocs;
  std::free(p);
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t n, std::align_val_t al) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t n, std::align_val_t al) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}

void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
