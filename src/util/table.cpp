#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace fdp {

void Table::set_header(std::vector<std::string> header) {
  FDP_CHECK_MSG(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  FDP_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Table::fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string Table::pm(double mean, double sd, int digits) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f +- %.*f", digits, mean, digits, sd);
  return buf;
}

std::string Table::quantiles(double p50, double p95, int digits) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f/%.*f", digits, p50, digits, p95);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto hline = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out;
  out += "== " + title_ + " ==\n";
  out += hline();
  out += line(header_);
  out += hline();
  for (const auto& row : rows_) out += line(row);
  out += hline();
  return out;
}

void Table::print() const {
  std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace fdp
