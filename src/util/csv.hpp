// Minimal CSV writer used by the experiment harness to dump raw per-run data
// next to the rendered ASCII tables (for offline plotting).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace fdp {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header immediately.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// True when the output file could be opened and no write has failed.
  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  /// Append one row; fields are quoted as needed.
  void row(const std::vector<std::string>& cells);

  /// Flush and report whether every write (including this flush) reached
  /// the file — call once at the end so silent stream failures surface.
  [[nodiscard]] bool finish();

 private:
  static std::string escape(const std::string& s);

  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace fdp
