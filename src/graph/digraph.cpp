#include "graph/digraph.hpp"

#include "util/check.hpp"

namespace fdp {

void DiGraph::add_edge(NodeId u, NodeId v, std::uint64_t count) {
  FDP_CHECK(u < n_ && v < n_);
  if (count == 0) return;
  mult_[{u, v}] += count;
  total_ += count;
}

bool DiGraph::remove_edge(NodeId u, NodeId v) {
  auto it = mult_.find({u, v});
  if (it == mult_.end()) return false;
  if (--it->second == 0) mult_.erase(it);
  --total_;
  return true;
}

std::uint64_t DiGraph::multiplicity(NodeId u, NodeId v) const {
  auto it = mult_.find({u, v});
  return it == mult_.end() ? 0 : it->second;
}

std::vector<NodeId> DiGraph::out_neighbors(NodeId u) const {
  std::vector<NodeId> out;
  auto it = mult_.lower_bound({u, 0});
  for (; it != mult_.end() && it->first.first == u; ++it)
    out.push_back(it->first.second);
  return out;
}

std::vector<Edge> DiGraph::simple_edges() const {
  std::vector<Edge> out;
  out.reserve(mult_.size());
  for (const auto& [e, c] : mult_) {
    (void)c;
    out.push_back(e);
  }
  return out;
}

std::vector<Edge> DiGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(total_);
  for (const auto& [e, c] : mult_)
    for (std::uint64_t i = 0; i < c; ++i) out.push_back(e);
  return out;
}

bool DiGraph::same_support(const DiGraph& other) const {
  if (n_ != other.n_) return false;
  if (mult_.size() != other.mult_.size()) return false;
  auto a = mult_.begin();
  auto b = other.mult_.begin();
  for (; a != mult_.end(); ++a, ++b)
    if (a->first != b->first) return false;
  return true;
}

DiGraph DiGraph::bidirected() const {
  DiGraph g(n_);
  for (const auto& [e, c] : mult_) {
    (void)c;
    if (!g.has_edge(e.first, e.second)) g.add_edge(e.first, e.second);
    if (!g.has_edge(e.second, e.first)) g.add_edge(e.second, e.first);
  }
  return g;
}

DiGraph DiGraph::support_union(const DiGraph& other) const {
  FDP_CHECK(n_ == other.n_);
  DiGraph g(n_);
  for (const auto& [e, c] : mult_) {
    (void)c;
    g.add_edge(e.first, e.second);
  }
  for (const auto& [e, c] : other.mult_) {
    (void)c;
    if (!g.has_edge(e.first, e.second)) g.add_edge(e.first, e.second);
  }
  return g;
}

std::uint64_t DiGraph::strip_self_loops() {
  std::uint64_t removed = 0;
  for (auto it = mult_.begin(); it != mult_.end();) {
    if (it->first.first == it->first.second) {
      removed += it->second;
      total_ -= it->second;
      it = mult_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace fdp
