#include "graph/connectivity.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace fdp {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), components_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<NodeId>(i);
}

NodeId UnionFind::find(NodeId x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(NodeId a, NodeId b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --components_;
  return true;
}

Components weak_components(const DiGraph& g) {
  std::vector<bool> all(g.node_count(), true);
  return weak_components_induced(g, all);
}

Components weak_components_induced(const DiGraph& g,
                                   const std::vector<bool>& include) {
  FDP_CHECK(include.size() == g.node_count());
  UnionFind uf(g.node_count());
  for (const auto& [u, v] : g.simple_edges())
    if (include[u] && include[v]) uf.unite(u, v);

  Components comps;
  comps.label.assign(g.node_count(), kNoComponent);
  std::vector<NodeId> remap(g.node_count(), kNoComponent);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!include[v]) continue;
    const NodeId root = uf.find(v);
    if (remap[root] == kNoComponent)
      remap[root] = static_cast<NodeId>(comps.count++);
    comps.label[v] = remap[root];
  }
  return comps;
}

bool is_weakly_connected(const DiGraph& g) {
  return weak_components(g).count <= 1;
}

bool is_weakly_connected_induced(const DiGraph& g,
                                 const std::vector<bool>& include) {
  return weak_components_induced(g, include).count <= 1;
}

std::vector<bool> reachable_from(const DiGraph& g, NodeId src) {
  std::vector<bool> seen(g.node_count(), false);
  if (src >= g.node_count()) return seen;
  std::deque<NodeId> queue{src};
  seen[src] = true;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.out_neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  return seen;
}

bool is_strongly_connected(const DiGraph& g) {
  if (g.node_count() <= 1) return true;
  // Forward reachability from node 0 plus reachability in the reverse
  // graph is equivalent to strong connectivity.
  std::vector<bool> fwd = reachable_from(g, 0);
  if (std::find(fwd.begin(), fwd.end(), false) != fwd.end()) return false;
  DiGraph rev(g.node_count());
  for (const auto& [u, v] : g.simple_edges()) rev.add_edge(v, u);
  std::vector<bool> bwd = reachable_from(rev, 0);
  return std::find(bwd.begin(), bwd.end(), false) == bwd.end();
}

std::vector<NodeId> shortest_path(const DiGraph& g, NodeId src, NodeId dst) {
  if (src >= g.node_count() || dst >= g.node_count()) return {};
  std::vector<NodeId> prev(g.node_count(), kNoComponent);
  std::deque<NodeId> queue{src};
  prev[src] = src;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (u == dst) break;
    for (NodeId v : g.out_neighbors(u)) {
      if (prev[v] == kNoComponent) {
        prev[v] = u;
        queue.push_back(v);
      }
    }
  }
  if (prev[dst] == kNoComponent) return {};
  std::vector<NodeId> path;
  for (NodeId v = dst; v != src; v = prev[v]) path.push_back(v);
  path.push_back(src);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace fdp
