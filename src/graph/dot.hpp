// Graphviz export of process-graph snapshots.
//
// Renders a Snapshot as a DOT digraph for debugging and documentation:
// staying processes are solid ellipses, leaving ones are shaded, gone ones
// dashed gray; explicit edges are solid, implicit (in-flight) edges are
// dashed; invalid mode knowledge is highlighted in red. Pipe the output
// through `dot -Tsvg` to visualize a run state.
#pragma once

#include <string>

#include "graph/process_graph.hpp"

namespace fdp {

struct DotOptions {
  /// Include implicit (in-flight) edges.
  bool implicit_edges = true;
  /// Color edges whose attached mode knowledge is wrong.
  bool highlight_invalid = true;
  /// Label nodes with their keys as well as their ids.
  bool show_keys = false;
};

/// Render the snapshot as a DOT digraph named `name`.
[[nodiscard]] std::string to_dot(const Snapshot& s,
                                 const std::string& name = "PG",
                                 const DotOptions& opt = {});

/// Convenience: snapshot a world and render it.
class Substrate;
[[nodiscard]] std::string world_to_dot(const Substrate& w,
                                       const std::string& name = "PG",
                                       const DotOptions& opt = {});

}  // namespace fdp
