// Topology generators.
//
// These produce the *shapes* on which all experiments run: deterministic
// families (line, ring, star, clique, binary tree) and random families
// (uniform spanning trees, connected Erdős–Rényi, random weakly connected
// digraphs). All random generators take an Rng so runs are reproducible.
//
// All generators return DiGraphs; helpers convert them into World initial
// states (see analysis/scenario.hpp).
#pragma once

#include <cstdint>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace fdp::gen {

/// 0-1-2-...-(n-1), each undirected edge as two arcs.
[[nodiscard]] DiGraph line(std::size_t n);

/// line plus the closing edge (n-1)-0.
[[nodiscard]] DiGraph ring(std::size_t n);

/// node 0 is the hub; arcs both ways between hub and leaves.
[[nodiscard]] DiGraph star(std::size_t n);

/// complete digraph (both arcs between every pair).
[[nodiscard]] DiGraph clique(std::size_t n);

/// complete binary tree rooted at 0, arcs both ways.
[[nodiscard]] DiGraph binary_tree(std::size_t n);

/// Uniform-attachment random tree (each node i>0 attaches to a uniformly
/// random earlier node), arcs both ways. Always connected.
[[nodiscard]] DiGraph random_tree(std::size_t n, Rng& rng);

/// Erdős–Rényi G(n,p) on the undirected skeleton (each undirected pair with
/// probability p, both arcs), then forced connected by overlaying a random
/// tree. Expected degree ≈ p·(n-1) + 2.
[[nodiscard]] DiGraph gnp_connected(std::size_t n, double p, Rng& rng);

/// A random *weakly* connected digraph: a random tree with each tree edge
/// given a random orientation (or both, with probability `p_bidir`), plus
/// `extra_arcs` uniformly random additional arcs. This is the "arbitrary
/// weakly connected graph" family used for universality experiments.
[[nodiscard]] DiGraph random_weakly_connected(std::size_t n,
                                              std::size_t extra_arcs,
                                              double p_bidir, Rng& rng);

/// Sorted doubly linked list by node id (the home topology of the
/// Foreback et al. baseline).
[[nodiscard]] DiGraph sorted_list(std::size_t n);

/// Name-indexed lookup used by experiment sweeps: one of
/// "line", "ring", "star", "clique", "tree", "gnp", "wild".
[[nodiscard]] DiGraph by_name(const char* name, std::size_t n, Rng& rng);

}  // namespace fdp::gen
