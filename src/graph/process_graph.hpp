// Process-graph snapshots.
//
// The paper (Section 1.1): "there is a (directed) edge from a to b if
// process a stores a reference of b in its local memory [explicit edge] or
// has a message in a.Ch carrying the reference of b [implicit edge]."
//
// A Snapshot captures that graph plus everything oracles and checkers need:
// modes, life states, and — crucially for the potential function Φ — every
// reference *instance* with its attached mode knowledge.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/ids.hpp"

namespace fdp {

class Substrate;

struct Snapshot {
  std::vector<Mode> mode;
  std::vector<LifeState> life;
  std::vector<std::uint64_t> key;
  /// Explicit reference instances: stored[p] = all refs p's local memory
  /// holds (from Process::collect_refs).
  std::vector<std::vector<RefInfo>> stored;
  /// Implicit reference instances: in_flight[p] = all refs carried by
  /// messages currently in p.Ch.
  std::vector<std::vector<RefInfo>> in_flight;
  std::vector<std::size_t> channel_size;

  [[nodiscard]] std::size_t size() const { return mode.size(); }

  /// PG over all processes: every explicit and implicit reference instance
  /// contributes one edge (multigraph). Self-loops are kept out (they are
  /// meaningless for connectivity and the kernel never stores them, but a
  /// message may carry a process its own reference).
  [[nodiscard]] DiGraph graph() const;

  /// PG restricted to processes with include[p] == true; only edges with
  /// both endpoints included appear.
  [[nodiscard]] DiGraph graph_induced(const std::vector<bool>& include) const;

  /// Hibernation per the paper: p is hibernating iff p is asleep, p.Ch is
  /// empty, and every non-gone q with a directed path to p in PG is also
  /// asleep with an empty channel. (Gone processes are inert — they can
  /// never send — so they are excluded from the ancestor condition.)
  [[nodiscard]] std::vector<bool> hibernating() const;

  /// Relevant per the paper: neither gone nor hibernating.
  [[nodiscard]] std::vector<bool> relevant() const;

  /// Number of *distinct other* relevant processes v such that PG (over
  /// relevant processes) has an edge (p,v) or (v,p). This is exactly what
  /// the SINGLE oracle inspects.
  [[nodiscard]] std::size_t incident_relevant(ProcessId p) const;

  /// True if any reference to p exists anywhere (stored or in flight) in a
  /// non-gone process — the NIDEC-style oracle of Foreback et al. [15].
  [[nodiscard]] bool referenced_anywhere(ProcessId p) const;
};

/// Capture the current system state of a substrate (simulator world or
/// live runtime alike — everything a snapshot needs is on the Substrate
/// surface).
[[nodiscard]] Snapshot take_snapshot(const Substrate& w);

}  // namespace fdp
