#include "graph/process_graph.hpp"

#include <deque>

#include "sim/message.hpp"
#include "sim/process.hpp"
#include "sim/substrate.hpp"
#include "util/check.hpp"

namespace fdp {

DiGraph Snapshot::graph() const {
  std::vector<bool> all(size(), true);
  return graph_induced(all);
}

DiGraph Snapshot::graph_induced(const std::vector<bool>& include) const {
  FDP_CHECK(include.size() == size());
  DiGraph g(size());
  for (ProcessId p = 0; p < size(); ++p) {
    if (!include[p]) continue;
    for (const RefInfo& r : stored[p]) {
      const ProcessId q = r.ref.id();
      if (q != p && q < size() && include[q]) g.add_edge(p, q);
    }
    for (const RefInfo& r : in_flight[p]) {
      const ProcessId q = r.ref.id();
      if (q != p && q < size() && include[q]) g.add_edge(p, q);
    }
  }
  return g;
}

std::vector<bool> Snapshot::hibernating() const {
  std::vector<bool> hib(size(), false);
  // A process is "quiet" when it could not initiate anything: asleep with
  // an empty channel. Gone processes are inert and ignored entirely.
  std::vector<bool> quiet(size(), false);
  std::vector<bool> active(size(), false);  // non-gone and not quiet
  for (ProcessId p = 0; p < size(); ++p) {
    if (life[p] == LifeState::Gone) continue;
    quiet[p] = life[p] == LifeState::Asleep && channel_size[p] == 0;
    active[p] = !quiet[p];
  }
  // p is hibernating iff p is quiet and no active non-gone q reaches p.
  // Compute forward reachability from all active nodes simultaneously over
  // edges among non-gone processes.
  std::vector<bool> include(size(), false);
  for (ProcessId p = 0; p < size(); ++p)
    include[p] = life[p] != LifeState::Gone;
  const DiGraph g = graph_induced(include);
  std::vector<bool> tainted(size(), false);
  std::deque<ProcessId> queue;
  for (ProcessId p = 0; p < size(); ++p) {
    if (include[p] && active[p]) {
      tainted[p] = true;
      queue.push_back(p);
    }
  }
  while (!queue.empty()) {
    const ProcessId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.out_neighbors(u)) {
      if (!tainted[v]) {
        tainted[v] = true;
        queue.push_back(v);
      }
    }
  }
  for (ProcessId p = 0; p < size(); ++p)
    hib[p] = quiet[p] && !tainted[p];
  return hib;
}

std::vector<bool> Snapshot::relevant() const {
  std::vector<bool> rel(size(), true);
  const std::vector<bool> hib = hibernating();
  for (ProcessId p = 0; p < size(); ++p)
    rel[p] = life[p] != LifeState::Gone && !hib[p];
  return rel;
}

std::size_t Snapshot::incident_relevant(ProcessId p) const {
  const std::vector<bool> rel = relevant();
  const DiGraph g = graph_induced(rel);
  if (p >= size() || !rel[p]) return 0;
  std::vector<bool> seen(size(), false);
  std::size_t count = 0;
  for (NodeId v : g.out_neighbors(p)) {
    if (v != p && !seen[v]) {
      seen[v] = true;
      ++count;
    }
  }
  for (const auto& [u, v] : g.simple_edges()) {
    if (v == p && u != p && !seen[u]) {
      seen[u] = true;
      ++count;
    }
  }
  return count;
}

bool Snapshot::referenced_anywhere(ProcessId p) const {
  for (ProcessId q = 0; q < size(); ++q) {
    if (q == p || life[q] == LifeState::Gone) continue;
    for (const RefInfo& r : stored[q])
      if (r.ref.id() == p) return true;
    for (const RefInfo& r : in_flight[q])
      if (r.ref.id() == p) return true;
  }
  return false;
}

Snapshot take_snapshot(const Substrate& w) {
  Snapshot s;
  const std::size_t n = w.size();
  s.mode.resize(n);
  s.life.resize(n);
  s.key.resize(n);
  s.stored.resize(n);
  s.in_flight.resize(n);
  s.channel_size.resize(n);
  for (ProcessId p = 0; p < n; ++p) {
    const Process& proc = w.process(p);
    s.mode[p] = proc.mode();
    s.life[p] = proc.life();
    s.key[p] = proc.key();
    proc.collect_refs(s.stored[p]);
    s.channel_size[p] = w.channel_depth(p);
    w.each_pending(p, [&](const Message& m) {
      for (const RefInfo& r : m.refs) s.in_flight[p].push_back(r);
    });
  }
  return s;
}

}  // namespace fdp
