// Directed multigraph.
//
// The process graph PG of the paper is a directed *multi*-graph: a process
// can hold several copies of the same reference (one in a variable, more in
// in-flight messages), and the Fusion primitive exists precisely to merge
// such duplicates. DiGraph therefore tracks edge multiplicities exactly.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace fdp {

using NodeId = std::uint32_t;
using Edge = std::pair<NodeId, NodeId>;

class DiGraph {
 public:
  explicit DiGraph(std::size_t n = 0) : n_(n) {}

  [[nodiscard]] std::size_t node_count() const { return n_; }

  /// Grow the node set (never shrinks).
  void ensure_nodes(std::size_t n) {
    if (n > n_) n_ = n;
  }

  void add_edge(NodeId u, NodeId v, std::uint64_t count = 1);

  /// Remove one copy of (u,v); returns false if the edge is absent.
  bool remove_edge(NodeId u, NodeId v);

  [[nodiscard]] std::uint64_t multiplicity(NodeId u, NodeId v) const;
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return multiplicity(u, v) > 0;
  }

  /// Total number of edges counting multiplicity.
  [[nodiscard]] std::uint64_t edge_count() const { return total_; }
  /// Number of distinct (u,v) pairs with at least one edge.
  [[nodiscard]] std::uint64_t simple_edge_count() const {
    return mult_.size();
  }

  /// Distinct out-neighbors of u.
  [[nodiscard]] std::vector<NodeId> out_neighbors(NodeId u) const;

  /// All distinct directed edges (no multiplicity).
  [[nodiscard]] std::vector<Edge> simple_edges() const;

  /// All edges with multiplicity expanded.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// True if the two graphs have the same *support* (distinct edge sets),
  /// ignoring multiplicities.
  [[nodiscard]] bool same_support(const DiGraph& other) const;

  /// Exact equality including multiplicities.
  friend bool operator==(const DiGraph& a, const DiGraph& b) {
    return a.n_ == b.n_ && a.mult_ == b.mult_;
  }

  /// The bidirected extension: for every edge (u,v) both (u,v) and (v,u),
  /// each with multiplicity 1 (paper, proof of Theorem 1: G'').
  [[nodiscard]] DiGraph bidirected() const;

  /// Union of supports of this and other (multiplicity 1 each).
  [[nodiscard]] DiGraph support_union(const DiGraph& other) const;

  /// Drop self-loops; returns number removed (counting multiplicity).
  std::uint64_t strip_self_loops();

  void clear() {
    mult_.clear();
    total_ = 0;
  }

 private:
  std::size_t n_;
  std::map<Edge, std::uint64_t> mult_;
  std::uint64_t total_ = 0;
};

}  // namespace fdp
