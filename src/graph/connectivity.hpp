// Connectivity queries over DiGraph.
//
// Weak connectivity (connectivity of the underlying undirected graph) is
// the safety currency of the whole paper: the four primitives preserve it
// (Lemma 1) and the departure protocol must never break it among relevant
// processes (Lemma 2). Strong reachability is needed for Corollary 1 and
// for the shortest-path routing in the constructive proof of Theorem 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace fdp {

/// Disjoint-set forest with union by size and path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  NodeId find(NodeId x);
  /// Returns true if the two sets were distinct (a merge happened).
  bool unite(NodeId a, NodeId b);
  [[nodiscard]] std::size_t component_count() const { return components_; }
  [[nodiscard]] bool same(NodeId a, NodeId b) { return find(a) == find(b); }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t components_;
};

/// Component label per node (labels are dense in [0, count)).
struct Components {
  std::vector<NodeId> label;
  std::size_t count = 0;
};

/// Weakly connected components of the whole graph.
[[nodiscard]] Components weak_components(const DiGraph& g);

/// Weakly connected components of the subgraph induced by nodes with
/// include[v] == true. Excluded nodes get label kNoComponent.
inline constexpr NodeId kNoComponent = ~NodeId{0};
[[nodiscard]] Components weak_components_induced(
    const DiGraph& g, const std::vector<bool>& include);

/// True when the graph (all nodes) is weakly connected. A graph with zero
/// or one node counts as connected.
[[nodiscard]] bool is_weakly_connected(const DiGraph& g);

/// True when the induced subgraph on `include` is weakly connected.
[[nodiscard]] bool is_weakly_connected_induced(const DiGraph& g,
                                               const std::vector<bool>& include);

/// Directed reachability set from `src`.
[[nodiscard]] std::vector<bool> reachable_from(const DiGraph& g, NodeId src);

/// True when every node can reach every other node via directed edges.
[[nodiscard]] bool is_strongly_connected(const DiGraph& g);

/// Shortest directed path src -> dst (inclusive of both endpoints) by BFS;
/// empty when unreachable.
[[nodiscard]] std::vector<NodeId> shortest_path(const DiGraph& g, NodeId src,
                                                NodeId dst);

}  // namespace fdp
