#include "graph/dot.hpp"

#include "sim/substrate.hpp"

namespace fdp {

namespace {

const char* node_style(Mode m, LifeState l) {
  if (l == LifeState::Gone) return "style=dashed,color=gray";
  if (l == LifeState::Asleep) {
    return "style=\"filled,dashed\",fillcolor=lightblue";
  }
  return m == Mode::Leaving ? "style=filled,fillcolor=lightsalmon"
                            : "style=solid";
}

void emit_edge(std::string& out, ProcessId from, const RefInfo& r,
               const Snapshot& s, bool implicit, const DotOptions& opt) {
  const ProcessId to = r.ref.id();
  if (to >= s.size() || to == from) return;
  out += "  n" + std::to_string(from) + " -> n" + std::to_string(to) + " [";
  if (implicit) out += "style=dashed,";
  const bool invalid = r.mode != ModeInfo::Unknown &&
                       !matches(r.mode, s.mode[to]);
  if (opt.highlight_invalid && invalid) out += "color=red,penwidth=2,";
  out += "arrowsize=0.6];\n";
}

}  // namespace

std::string to_dot(const Snapshot& s, const std::string& name,
                   const DotOptions& opt) {
  std::string out = "digraph " + name + " {\n";
  out += "  rankdir=LR;\n  node [shape=ellipse,fontsize=10];\n";
  for (ProcessId p = 0; p < s.size(); ++p) {
    out += "  n" + std::to_string(p) + " [label=\"" + std::to_string(p);
    if (opt.show_keys) out += "\\nk=" + std::to_string(s.key[p]);
    if (s.mode[p] == Mode::Leaving) out += " (leaving)";
    out += "\"," + std::string(node_style(s.mode[p], s.life[p])) + "];\n";
  }
  for (ProcessId p = 0; p < s.size(); ++p) {
    if (s.life[p] == LifeState::Gone) continue;
    for (const RefInfo& r : s.stored[p])
      emit_edge(out, p, r, s, /*implicit=*/false, opt);
    if (opt.implicit_edges) {
      for (const RefInfo& r : s.in_flight[p])
        emit_edge(out, p, r, s, /*implicit=*/true, opt);
    }
  }
  out += "}\n";
  return out;
}

std::string world_to_dot(const Substrate& w, const std::string& name,
                         const DotOptions& opt) {
  return to_dot(take_snapshot(w), name, opt);
}

}  // namespace fdp
