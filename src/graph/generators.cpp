#include "graph/generators.hpp"

#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace fdp::gen {

namespace {
void both(DiGraph& g, NodeId a, NodeId b) {
  g.add_edge(a, b);
  g.add_edge(b, a);
}
}  // namespace

DiGraph line(std::size_t n) {
  DiGraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) both(g, i, i + 1);
  return g;
}

DiGraph ring(std::size_t n) {
  DiGraph g = line(n);
  if (n > 2) both(g, static_cast<NodeId>(n - 1), 0);
  return g;
}

DiGraph star(std::size_t n) {
  DiGraph g(n);
  for (NodeId i = 1; i < n; ++i) both(g, 0, i);
  return g;
}

DiGraph clique(std::size_t n) {
  DiGraph g(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = 0; j < n; ++j)
      if (i != j) g.add_edge(i, j);
  return g;
}

DiGraph binary_tree(std::size_t n) {
  DiGraph g(n);
  for (NodeId i = 1; i < n; ++i) both(g, i, (i - 1) / 2);
  return g;
}

DiGraph random_tree(std::size_t n, Rng& rng) {
  DiGraph g(n);
  for (NodeId i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.below(i));
    both(g, i, parent);
  }
  return g;
}

DiGraph gnp_connected(std::size_t n, double p, Rng& rng) {
  DiGraph g = random_tree(n, rng);
  if (n < 2 || p <= 0.0) return g;
  if (p >= 1.0) {
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = static_cast<NodeId>(i + 1); j < n; ++j)
        if (!g.has_edge(i, j)) both(g, i, j);
    return g;
  }
  // Geometric edge skipping (Batagelj & Brandes 2005): instead of a
  // Bernoulli trial per pair — O(n^2) draws, which dominated scenario
  // builds beyond n ~ 10^5 — jump directly between successive hits with
  // geometrically distributed gaps. O(n + m) draws; the usual sparse
  // p = c/n case costs O(n). Pairs (w, v), w < v, are visited in the
  // same lexicographic order the nested loop used, but the draw stream
  // differs, so seeds produce different (equally distributed) graphs
  // than the pre-skipping generator.
  const double denom = std::log1p(-p);
  std::size_t v = 1;
  std::size_t w = static_cast<std::size_t>(-1);
  while (v < n) {
    const double skip = std::floor(std::log1p(-rng.uniform()) / denom);
    if (skip >= static_cast<double>(n) * static_cast<double>(n)) break;
    w += 1 + static_cast<std::size_t>(skip);
    while (v < n && w >= v) {
      w -= v;
      ++v;
    }
    if (v < n && !g.has_edge(static_cast<NodeId>(v), static_cast<NodeId>(w)))
      both(g, static_cast<NodeId>(v), static_cast<NodeId>(w));
  }
  return g;
}

DiGraph random_weakly_connected(std::size_t n, std::size_t extra_arcs,
                                double p_bidir, Rng& rng) {
  DiGraph g(n);
  for (NodeId i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.below(i));
    if (rng.chance(p_bidir)) {
      both(g, i, parent);
    } else if (rng.chance(0.5)) {
      g.add_edge(i, parent);
    } else {
      g.add_edge(parent, i);
    }
  }
  for (std::size_t k = 0; k < extra_arcs && n > 1; ++k) {
    const NodeId a = static_cast<NodeId>(rng.below(n));
    NodeId b = static_cast<NodeId>(rng.below(n - 1));
    if (b >= a) ++b;
    if (!g.has_edge(a, b)) g.add_edge(a, b);
  }
  return g;
}

DiGraph sorted_list(std::size_t n) { return line(n); }

DiGraph by_name(const char* name, std::size_t n, Rng& rng) {
  if (!std::strcmp(name, "line")) return line(n);
  if (!std::strcmp(name, "ring")) return ring(n);
  if (!std::strcmp(name, "star")) return star(n);
  if (!std::strcmp(name, "clique")) return clique(n);
  if (!std::strcmp(name, "tree")) return random_tree(n, rng);
  if (!std::strcmp(name, "gnp")) return gnp_connected(n, 3.0 / static_cast<double>(n ? n : 1), rng);
  if (!std::strcmp(name, "wild"))
    return random_weakly_connected(n, n / 2, 0.3, rng);
  FDP_CHECK_MSG(false, "unknown topology name");
  return DiGraph(0);
}

}  // namespace fdp::gen
