#include "graph/generators.hpp"

#include <cstring>

#include "util/check.hpp"

namespace fdp::gen {

namespace {
void both(DiGraph& g, NodeId a, NodeId b) {
  g.add_edge(a, b);
  g.add_edge(b, a);
}
}  // namespace

DiGraph line(std::size_t n) {
  DiGraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) both(g, i, i + 1);
  return g;
}

DiGraph ring(std::size_t n) {
  DiGraph g = line(n);
  if (n > 2) both(g, static_cast<NodeId>(n - 1), 0);
  return g;
}

DiGraph star(std::size_t n) {
  DiGraph g(n);
  for (NodeId i = 1; i < n; ++i) both(g, 0, i);
  return g;
}

DiGraph clique(std::size_t n) {
  DiGraph g(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = 0; j < n; ++j)
      if (i != j) g.add_edge(i, j);
  return g;
}

DiGraph binary_tree(std::size_t n) {
  DiGraph g(n);
  for (NodeId i = 1; i < n; ++i) both(g, i, (i - 1) / 2);
  return g;
}

DiGraph random_tree(std::size_t n, Rng& rng) {
  DiGraph g(n);
  for (NodeId i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.below(i));
    both(g, i, parent);
  }
  return g;
}

DiGraph gnp_connected(std::size_t n, double p, Rng& rng) {
  DiGraph g = random_tree(n, rng);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = static_cast<NodeId>(i + 1); j < n; ++j)
      if (rng.chance(p) && !g.has_edge(i, j)) both(g, i, j);
  return g;
}

DiGraph random_weakly_connected(std::size_t n, std::size_t extra_arcs,
                                double p_bidir, Rng& rng) {
  DiGraph g(n);
  for (NodeId i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.below(i));
    if (rng.chance(p_bidir)) {
      both(g, i, parent);
    } else if (rng.chance(0.5)) {
      g.add_edge(i, parent);
    } else {
      g.add_edge(parent, i);
    }
  }
  for (std::size_t k = 0; k < extra_arcs && n > 1; ++k) {
    const NodeId a = static_cast<NodeId>(rng.below(n));
    NodeId b = static_cast<NodeId>(rng.below(n - 1));
    if (b >= a) ++b;
    if (!g.has_edge(a, b)) g.add_edge(a, b);
  }
  return g;
}

DiGraph sorted_list(std::size_t n) { return line(n); }

DiGraph by_name(const char* name, std::size_t n, Rng& rng) {
  if (!std::strcmp(name, "line")) return line(n);
  if (!std::strcmp(name, "ring")) return ring(n);
  if (!std::strcmp(name, "star")) return star(n);
  if (!std::strcmp(name, "clique")) return clique(n);
  if (!std::strcmp(name, "tree")) return random_tree(n, rng);
  if (!std::strcmp(name, "gnp")) return gnp_connected(n, 3.0 / static_cast<double>(n ? n : 1), rng);
  if (!std::strcmp(name, "wild"))
    return random_weakly_connected(n, n / 2, 0.3, rng);
  FDP_CHECK_MSG(false, "unknown topology name");
  return DiGraph(0);
}

}  // namespace fdp::gen
