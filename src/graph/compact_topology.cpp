#include "graph/compact_topology.hpp"

#include <cmath>

namespace fdp {

CompactTopology CompactTopology::gnp_connected(std::size_t n, double p,
                                               Rng& rng) {
  CompactTopology t;
  t.n_ = n;
  // Tree parents: the exact draw loop of gen::random_tree.
  t.parents_.resize(n > 0 ? n : 0);
  if (n > 0) t.parents_[0] = 0;  // unused sentinel
  for (NodeId i = 1; i < n; ++i)
    t.parents_[i] = static_cast<NodeId>(rng.below(i));

  if (n < 2 || p <= 0.0) {
    t.mode_ = Mode::Banded;
    t.build_index();
    return t;
  }
  if (p >= 1.0) {
    // gen::gnp_connected fills to a clique without further draws.
    t.mode_ = Mode::Clique;
    return t;
  }

  // Geometric edge skipping — the exact draw loop of gen::gnp_connected.
  // Pairs (v, w), w < v, arrive in strictly increasing lexicographic
  // order (the running pair index only ever advances), so the list is
  // sorted and duplicate-free by construction; only collisions with the
  // tree edge (v, parents_[v]) must be skipped, which is what the
  // DiGraph path's has_edge test rejected.
  const double denom = std::log1p(-p);
  std::size_t v = 1;
  std::size_t w = static_cast<std::size_t>(-1);
  while (v < n) {
    const double skip = std::floor(std::log1p(-rng.uniform()) / denom);
    if (skip >= static_cast<double>(n) * static_cast<double>(n)) break;
    w += 1 + static_cast<std::size_t>(skip);
    while (v < n && w >= v) {
      w -= v;
      ++v;
    }
    if (v < n && t.parents_[v] != static_cast<NodeId>(w))
      t.extras_.emplace_back(static_cast<NodeId>(v), static_cast<NodeId>(w));
  }
  t.mode_ = Mode::Banded;
  t.build_index();
  return t;
}

CompactTopology CompactTopology::from_graph(DiGraph g) {
  CompactTopology t;
  t.mode_ = Mode::Graph;
  t.n_ = g.node_count();
  t.graph_ = std::move(g);
  return t;
}

std::uint64_t CompactTopology::simple_edge_count() const {
  switch (mode_) {
    case Mode::Graph: return graph_.simple_edge_count();
    case Mode::Clique:
      return n_ < 2 ? 0 : static_cast<std::uint64_t>(n_) * (n_ - 1);
    case Mode::Banded:
      return 2 * ((n_ > 0 ? static_cast<std::uint64_t>(n_) - 1 : 0) +
                  extras_.size());
  }
  return 0;
}

void CompactTopology::build_index() {
  const std::size_t n = n_;
  FDP_CHECK_MSG(extras_.size() < ~std::uint32_t{0},
                "extras overflow the CSR offset width");
  // Children of u, ascending: counting sort of v by parents_[v]; filling
  // in ascending v keeps each bucket sorted.
  child_off_.assign(n + 1, 0);
  for (NodeId v = 1; v < n; ++v) ++child_off_[parents_[v] + 1];
  for (std::size_t i = 1; i <= n; ++i) child_off_[i] += child_off_[i - 1];
  child_val_.resize(n > 0 ? n - 1 : 0);
  {
    std::vector<std::uint32_t> cursor(child_off_.begin(),
                                      child_off_.end() - 1);
    for (NodeId v = 1; v < n; ++v) child_val_[cursor[parents_[v]]++] = v;
  }
  // Extras grouped by upper endpoint v: extras_ is already sorted by
  // (v, w), so only the run offsets are needed.
  ev_off_.assign(n + 1, 0);
  for (const auto& [v, w] : extras_) ++ev_off_[v + 1];
  for (std::size_t i = 1; i <= n; ++i) ev_off_[i] += ev_off_[i - 1];
  // Extras grouped by lower endpoint w, v ascending within each group:
  // a stable counting sort over the (v, w)-sorted list.
  ew_off_.assign(n + 1, 0);
  for (const auto& [v, w] : extras_) ++ew_off_[w + 1];
  for (std::size_t i = 1; i <= n; ++i) ew_off_[i] += ew_off_[i - 1];
  ew_val_.resize(extras_.size());
  {
    std::vector<std::uint32_t> cursor(ew_off_.begin(), ew_off_.end() - 1);
    for (const auto& [v, w] : extras_) ew_val_[cursor[w]++] = v;
  }
}

}  // namespace fdp
