// Flat, enumeration-only topology for scenario construction.
//
// Scenario builds used to materialize the overlay as a DiGraph — a
// std::map from directed edge to multiplicity — only to walk its sorted
// edge list once while seeding neighbor sets. The map costs ~72 bytes per
// arc in node overhead alone (~360 B per process for the sparse G(n,p)
// overlay), which dominated the build-time memory peak and capped E12
// churn runs near n = 10^6.
//
// CompactTopology stores the same graph in flat arrays:
//
//   * the spanning-tree parent of every node (4 B/node), drawn with
//     exactly the draws gen::random_tree makes, and
//   * the extra G(n,p) pairs from geometric edge-skipping (8 B/pair),
//     drawn with exactly the draws gen::gnp_connected makes,
//
// plus CSR indices (children by parent, extras by upper endpoint) so that
// for_each_edge() replays the *identical* directed-edge enumeration order
// of DiGraph::simple_edges() — lexicographically ascending (u, v) — by
// merging at most two sorted runs per endpoint side. Golden traces are
// byte-identical to the DiGraph path (tests/test_generators.cpp pins this
// equivalence across seeds).
//
// Non-gnp families keep their DiGraph generators: from_graph() wraps any
// DiGraph and enumerates its sorted edge list. The memory win is only
// needed where n is pushed to 10^7 — the gnp churn scenarios.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fdp {

class CompactTopology {
 public:
  CompactTopology() = default;

  /// The G(n,p)-plus-random-tree overlay, drawn with gen::gnp_connected's
  /// exact RNG stream (tree parents first, then geometric skips; no skip
  /// draws when n < 2, p <= 0, or p >= 1).
  [[nodiscard]] static CompactTopology gnp_connected(std::size_t n, double p,
                                                     Rng& rng);

  /// Wrap an already-built DiGraph (non-gnp families).
  [[nodiscard]] static CompactTopology from_graph(DiGraph g);

  [[nodiscard]] std::size_t node_count() const { return n_; }

  /// Number of distinct directed edges for_each_edge will emit.
  [[nodiscard]] std::uint64_t simple_edge_count() const;

  /// Visit every distinct directed edge (u, v) in lexicographically
  /// ascending order — the iteration order of DiGraph::simple_edges().
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    if (mode_ == Mode::Graph) {
      for (const auto& [u, v] : graph_.simple_edges()) fn(u, v);
      return;
    }
    if (mode_ == Mode::Clique) {
      for (NodeId u = 0; u < n_; ++u)
        for (NodeId v = 0; v < n_; ++v)
          if (u != v) fn(u, v);
      return;
    }
    for (NodeId u = 0; u < n_; ++u) {
      // Lower neighbors (< u): the tree parent and the extras whose upper
      // endpoint is u — one sorted run each, merged on the fly.
      std::size_t e = ev_off_[u];
      const std::size_t e_end = ev_off_[u + 1];
      bool parent_left = u > 0;
      const NodeId par = u > 0 ? parents_[u] : 0;
      while (e < e_end || parent_left) {
        if (!parent_left || (e < e_end && extras_[e].second < par)) {
          fn(u, extras_[e].second);
          ++e;
        } else {
          fn(u, par);
          parent_left = false;
        }
      }
      // Higher neighbors (> u): tree children and the extras whose lower
      // endpoint is u — again one sorted run each.
      std::size_t c = child_off_[u];
      const std::size_t c_end = child_off_[u + 1];
      std::size_t x = ew_off_[u];
      const std::size_t x_end = ew_off_[u + 1];
      while (c < c_end || x < x_end) {
        if (x >= x_end || (c < c_end && child_val_[c] < ew_val_[x])) {
          fn(u, child_val_[c]);
          ++c;
        } else {
          fn(u, ew_val_[x]);
          ++x;
        }
      }
    }
  }

 private:
  enum class Mode { Graph, Banded, Clique };

  void build_index();

  Mode mode_ = Mode::Graph;
  std::size_t n_ = 0;
  DiGraph graph_{0};

  /// parents_[v] < v is v's spanning-tree attachment (v >= 1).
  std::vector<NodeId> parents_;
  /// G(n,p) pairs (v, w), w < v, lexicographically ascending, none equal
  /// to a tree edge.
  std::vector<std::pair<NodeId, NodeId>> extras_;

  // CSR indices over parents_/extras_, built once by build_index(). The
  // by-upper-endpoint runs index extras_ itself (already grouped); the
  // by-lower-endpoint runs need re-bucketed values (ew_val_).
  std::vector<std::uint32_t> child_off_, ew_off_, ev_off_;
  std::vector<NodeId> child_val_, ew_val_;
};

}  // namespace fdp
