#include "core/potential.hpp"

#include "sim/substrate.hpp"

namespace fdp {

PotentialBreakdown potential(const Snapshot& s) {
  PotentialBreakdown out;
  auto account = [&](const RefInfo& r, std::uint64_t& invalid_bucket) {
    const ProcessId target = r.ref.id();
    if (target >= s.size()) return;
    if (r.mode == ModeInfo::Unknown) {
      ++out.unknown;
      return;
    }
    if (!matches(r.mode, s.mode[target])) ++invalid_bucket;
  };

  for (ProcessId p = 0; p < s.size(); ++p) {
    if (s.life[p] == LifeState::Gone) continue;
    for (const RefInfo& r : s.stored[p]) account(r, out.invalid_stored);
    for (const RefInfo& r : s.in_flight[p]) account(r, out.invalid_in_flight);
  }
  return out;
}

std::uint64_t phi(const Substrate& w) { return potential(take_snapshot(w)).phi(); }

bool counts_invalid(const Substrate& w, const RefInfo& r) {
  const ProcessId target = r.ref.id();
  if (target >= w.size()) return false;
  if (r.mode == ModeInfo::Unknown) return false;
  return !matches(r.mode, w.mode(target));
}

std::uint64_t invalid_count(const Substrate& w, std::span<const RefInfo> refs) {
  std::uint64_t n = 0;
  for (const RefInfo& r : refs)
    if (counts_invalid(w, r)) ++n;
  return n;
}

}  // namespace fdp
