// Oracles (paper Section 1.3).
//
// An oracle is a predicate O : PG x P -> {true,false} over the process
// graph of relevant processes and the calling process. Foreback et al.
// proved that the FDP cannot be solved without one; the paper's protocol
// relies on SINGLE, chosen because it is "easily implementable via
// timeouts in practice".
//
// This module provides:
//  - SINGLE       (the paper's oracle): true for u iff u has edges with at
//                 most one other relevant process.
//  - NIDEC        (Foreback et al. [15], used by the baseline): true for u
//                 iff no reference to u exists anywhere in the system and
//                 u's channel is empty.
//  - ALWAYS(b)    constant oracles, for ablation: ALWAYS(true) is unsafe
//                 (premature exits can disconnect), ALWAYS(false) removes
//                 liveness (nobody ever exits).
//  - QUIET(k)     the practical timeout heuristic the paper alludes to:
//                 true for u iff u's channel has been observed empty for k
//                 consecutive oracle consultations. Unlike SINGLE this is
//                 not exact — the ablation experiment quantifies the risk.
//  - INCIDENT(k)  the natural generalization of SINGLE: true for u iff u
//                 has edges with at most k other relevant processes.
//                 INCIDENT(1) == SINGLE. INCIDENT(0) is safe but stricter
//                 (it can deadlock: two leaving processes that only know
//                 each other never reach degree 0); INCIDENT(k>=2) is
//                 UNSAFE — u may be the only path between two neighbors.
//                 The ablation experiment shows k = 1 is the unique safe
//                 and live choice, which is why the paper picked it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/substrate.hpp"

namespace fdp {

[[nodiscard]] OracleFn make_single_oracle();
[[nodiscard]] OracleFn make_nidec_oracle();
[[nodiscard]] OracleFn make_always_oracle(bool value);
[[nodiscard]] OracleFn make_quiet_oracle(std::uint32_t consecutive_calls);
[[nodiscard]] OracleFn make_incident_oracle(std::size_t k);

/// Name-indexed factory for experiment sweeps: "single", "nidec",
/// "always-true", "always-false", "quiet:<k>", "incident:<k>".
[[nodiscard]] OracleFn oracle_by_name(const std::string& name);

/// Wrap an oracle so it lies: with probability `p_false_pos` a false inner
/// answer is reported true (UNSAFE — a premature exit can destroy the
/// channel-held references of the leaver; the safety monitors must catch
/// every resulting disconnection), and with probability `p_false_neg` a
/// true inner answer is reported false (safe — exits are merely delayed;
/// liveness still holds because the lie is rolled per consultation, so the
/// oracle stays eventually-true). Lies draw from their own Rng stream
/// seeded with `seed`, keeping runs reproducible.
[[nodiscard]] OracleFn make_unreliable_oracle(OracleFn inner,
                                              double p_false_pos,
                                              double p_false_neg,
                                              std::uint64_t seed);

}  // namespace fdp
