#include "core/legitimacy.hpp"

#include "sim/substrate.hpp"

namespace fdp {

LegitimacyChecker::LegitimacyChecker(const Substrate& w, Exclusion excl)
    : excl_(excl) {
  const Snapshot s = take_snapshot(w);
  initial_ = weak_components(s.graph());
}

bool LegitimacyChecker::groups_connected(
    const Snapshot& s, const std::vector<bool>& paths,
    const std::vector<bool>& endpoints) const {
  // Endpoints that shared an initial component must be in one weak
  // component of the subgraph induced on `paths`.
  const Components now =
      weak_components_induced(s.graph_induced(paths), paths);
  std::vector<NodeId> seen(initial_.count, kNoComponent);
  for (ProcessId p = 0; p < s.size(); ++p) {
    if (!endpoints[p] || !paths[p]) continue;
    const NodeId init = initial_.label[p];
    if (init == kNoComponent) continue;
    if (seen[init] == kNoComponent) {
      seen[init] = now.label[p];
    } else if (seen[init] != now.label[p]) {
      return false;
    }
  }
  return true;
}

LegitimacyChecker::Verdict LegitimacyChecker::check(const Substrate& w) const {
  Verdict v;
  const Snapshot s = take_snapshot(w);

  v.staying_awake = true;
  for (ProcessId p = 0; p < s.size(); ++p) {
    if (s.mode[p] == Mode::Staying && s.life[p] != LifeState::Awake) {
      v.staying_awake = false;
      v.detail = "staying process " + std::to_string(p) + " is " +
                 to_string(s.life[p]);
      break;
    }
  }

  v.leaving_excluded = true;
  std::vector<bool> hib;  // computed lazily (it is the expensive part)
  for (ProcessId p = 0; p < s.size(); ++p) {
    if (s.mode[p] != Mode::Leaving) continue;
    const bool gone = s.life[p] == LifeState::Gone;
    bool ok = false;
    switch (excl_) {
      case Exclusion::Gone:
        ok = gone;
        break;
      case Exclusion::Hibernating:
        if (hib.empty()) hib = s.hibernating();
        ok = hib[p];
        break;
      case Exclusion::Either:
        if (!gone && hib.empty()) hib = s.hibernating();
        ok = gone || (!hib.empty() && hib[p]);
        break;
    }
    if (!ok) {
      v.leaving_excluded = false;
      if (v.detail.empty())
        v.detail = "leaving process " + std::to_string(p) + " not excluded";
      break;
    }
  }

  std::vector<bool> staying(s.size());
  for (ProcessId p = 0; p < s.size(); ++p)
    staying[p] = s.mode[p] == Mode::Staying;
  v.components_preserved = groups_connected(s, staying, staying);
  if (!v.components_preserved && v.detail.empty())
    v.detail = "staying processes of an initial component are disconnected";

  return v;
}

bool LegitimacyChecker::safety_holds(const Substrate& w) const {
  const Snapshot s = take_snapshot(w);
  const std::vector<bool> rel = s.relevant();
  std::vector<bool> staying_rel(s.size());
  for (ProcessId p = 0; p < s.size(); ++p)
    staying_rel[p] = rel[p] && s.mode[p] == Mode::Staying;
  return groups_connected(s, rel, staying_rel);
}

}  // namespace fdp
