#include "core/framework.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fdp {

// ---------------------------------------------------------------------------
// FrameworkProcess
// ---------------------------------------------------------------------------

class FrameworkProcess::WrappedCtx final : public OverlayCtx {
 public:
  WrappedCtx(FrameworkProcess* host, Context* ctx) : host_(host), ctx_(ctx) {}
  [[nodiscard]] Ref self() const override { return host_->self(); }
  [[nodiscard]] std::uint64_t self_key() const override {
    return host_->key();
  }
  [[nodiscard]] RefInfo self_info() const override {
    return host_->self_info();
  }
  void send_overlay(Ref dest, std::uint32_t tag, std::vector<RefInfo> refs,
                    std::uint64_t token) override {
    host_->preprocess(*ctx_, dest, tag, std::move(refs), token);
  }

 private:
  FrameworkProcess* host_;
  Context* ctx_;
};

FrameworkProcess::FrameworkProcess(Ref self, Mode mode, std::uint64_t key,
                                   std::unique_ptr<OverlayProtocol> overlay,
                                   DeparturePolicy policy,
                                   FrameworkConfig cfg)
    : DepartureProcess(self, mode, key, policy),
      overlay_(std::move(overlay)),
      cfg_(cfg) {
  FDP_CHECK(overlay_ != nullptr);
  overlay_->bind(self, key);
  name_ = std::string("framework[") + overlay_->name() + "]";
}

const char* FrameworkProcess::protocol_name() const { return name_.c_str(); }

std::size_t FrameworkProcess::footprint_bytes(bool capacity) const {
  std::size_t b = sizeof(*this) + n_.heap_bytes(capacity) +
                  (capacity ? mlist_.capacity() : mlist_.size()) *
                      sizeof(Pending);
  for (const Pending& e : mlist_)
    b += (capacity ? e.refs.capacity() : e.refs.size()) * sizeof(RefInfo);
  // The hosted overlay's links, approximated by its stored references (the
  // overlay types do not expose their backing stores).
  b += overlay_->stored().size() * sizeof(RefInfo);
  return b;
}

void FrameworkProcess::store_ref(Context& ctx, const RefInfo& v) {
  (void)ctx;
  if (v.ref == self()) return;
  overlay_->integrate(v);
}

void FrameworkProcess::expel_ref(Ref r) {
  overlay_->remove(r);
  n_.erase(r);
}

void FrameworkProcess::stored_neighbors(std::vector<RefInfo>& out) const {
  for (const RefInfo& r : overlay_->stored()) out.push_back(r);
  n_.append_to(out);
}

void FrameworkProcess::take_all_refs(std::vector<RefInfo>& out) {
  for (const RefInfo& r : overlay_->take_all()) out.push_back(r);
  n_.append_to(out);
  n_.clear();
  for (Pending& e : mlist_) {
    out.push_back(RefInfo{e.dest, e.dest_mode, 0});
    for (const RefInfo& r : e.refs) out.push_back(r);
  }
  mlist_.clear();
}

bool FrameworkProcess::storage_empty() const {
  return overlay_->empty() && n_.empty() && mlist_.empty();
}

void FrameworkProcess::introduction_targets(std::vector<RefInfo>& out) const {
  for (const RefInfo& r : overlay_->introduction_targets()) out.push_back(r);
  n_.append_to(out);
}

void FrameworkProcess::collect_refs(std::vector<RefInfo>& out) const {
  DepartureProcess::collect_refs(out);  // n_ and anchor
  for (const RefInfo& r : overlay_->stored()) out.push_back(r);
  for (const Pending& e : mlist_) {
    out.push_back(RefInfo{e.dest, e.dest_mode, 0});
    for (const RefInfo& r : e.refs) out.push_back(r);
  }
}

void FrameworkProcess::preprocess(Context& ctx, Ref dest, std::uint32_t tag,
                                  std::vector<RefInfo> refs,
                                  std::uint64_t token) {
  Pending e;
  e.dest = dest;
  e.tag = tag;
  e.token = token;
  e.refs = std::move(refs);
  // All modes are unverified until the verify/process round trips finish —
  // except knowledge about ourselves, which is always valid.
  for (RefInfo& r : e.refs) {
    r.mode = r.ref == self() ? to_info(mode()) : ModeInfo::Unknown;
    if (r.ref != self()) send_verify(ctx, r.ref);
  }
  e.dest_mode = dest == self() ? to_info(mode()) : ModeInfo::Unknown;
  if (dest != self()) send_verify(ctx, dest);
  mlist_.push_back(std::move(e));
}

void FrameworkProcess::send_verify(Context& ctx, Ref target) {
  ctx.send(target, Message{Verb::Verify, 0, 0, {self_info()}});
  ++stats_.verifies_sent;
}

void FrameworkProcess::on_verify(Context& ctx, const Message& m) {
  // Reply process(self) to every carried reference (normally exactly one:
  // the asker). Leaving processes answer too — that is how the rest of the
  // system learns they are leaving. The asker's reference is consumed by
  // the reply (Reversal).
  for (const RefInfo& asker : m.refs) {
    if (asker.ref == self()) continue;
    ctx.send(asker.ref, Message{Verb::ProcessReply, 0, 0, {self_info()}});
    ++stats_.replies_sent;
  }
}

void FrameworkProcess::on_process_reply(Context& ctx, const Message& m) {
  for (const RefInfo& reporter : m.refs) {
    if (reporter.ref == self()) continue;
    bool copy_retained = false;
    for (Pending& e : mlist_) {
      if (e.dest == reporter.ref && e.dest_mode == ModeInfo::Unknown) {
        e.dest_mode = reporter.mode;
        copy_retained = true;
      }
      for (RefInfo& r : e.refs) {
        if (r.ref == reporter.ref) {
          if (r.mode == ModeInfo::Unknown) r.mode = reporter.mode;
          copy_retained = true;
        }
      }
    }
    // Refresh structural knowledge as well.
    overlay_->update_mode(reporter.ref, reporter.mode);
    if (n_.contains(reporter.ref)) {
      n_.set_mode(reporter.ref, reporter.mode);
      copy_retained = true;
    }
    for (const RefInfo& r : overlay_->stored()) {
      if (r.ref == reporter.ref) {
        copy_retained = true;
        break;
      }
    }
    if (!copy_retained) {
      // Stale reply (a resent verify's duplicate answer) about a process
      // nothing here references anymore. Re-integrating it would re-start
      // the delegation/verify cycle and the duplicate replies would feed
      // it forever; instead reverse: drop the copy and hand the reporter
      // our own reference.
      ctx.send(reporter.ref, Message::forward(self_info()));
    }
  }
  try_complete(ctx);
}

void FrameworkProcess::on_overlay_msg(Context& ctx, const Message& m) {
  if (mode() == Mode::Leaving) {
    // A leaving process does not execute P. It answers every carried
    // reference with a present of itself, so those processes expel it
    // (Reversal per reference).
    for (const RefInfo& r : m.refs) {
      if (r.ref == self()) continue;
      ctx.send(r.ref, Message::present(self_info()));
    }
    return;
  }
  WrappedCtx octx(this, &ctx);
  overlay_->on_overlay_message(octx, m.tag(), m.refs, m.token);
}

void FrameworkProcess::framework_timeout(Context& ctx) {
  for (Pending& e : mlist_) {
    ++e.age;
    const bool resend = e.age % cfg_.resend_every == 0;
    const bool give_up = e.age >= cfg_.give_up_age;
    if (give_up) {
      if (e.dest_mode == ModeInfo::Unknown) e.dest_mode = ModeInfo::Leaving;
      for (RefInfo& r : e.refs)
        if (r.mode == ModeInfo::Unknown) r.mode = ModeInfo::Leaving;
      ++stats_.gave_up;
      continue;
    }
    if (resend) {
      if (e.dest_mode == ModeInfo::Unknown) send_verify(ctx, e.dest);
      for (const RefInfo& r : e.refs)
        if (r.mode == ModeInfo::Unknown) send_verify(ctx, r.ref);
    }
  }
  try_complete(ctx);
}

void FrameworkProcess::try_complete(Context& ctx) {
  std::vector<Pending> ready;
  for (auto it = mlist_.begin(); it != mlist_.end();) {
    const bool dest_known = it->dest_mode != ModeInfo::Unknown;
    const bool params_known =
        std::all_of(it->refs.begin(), it->refs.end(), [](const RefInfo& r) {
          return r.mode != ModeInfo::Unknown;
        });
    if (dest_known && params_known) {
      ready.push_back(std::move(*it));
      it = mlist_.erase(it);
    } else {
      ++it;
    }
  }
  for (Pending& e : ready) {
    const bool all_staying =
        e.dest_mode == ModeInfo::Staying &&
        std::all_of(e.refs.begin(), e.refs.end(), [](const RefInfo& r) {
          return r.mode == ModeInfo::Staying;
        });
    if (all_staying) {
      ctx.send(e.dest, Message{Verb::Overlay, e.tag, e.token, e.refs});
      ++stats_.dispatched;
    } else {
      postprocess(ctx, std::move(e));
    }
  }
}

void FrameworkProcess::postprocess(Context& ctx, Pending entry) {
  ++stats_.postprocessed;
  // Reintegrate staying references into P; expel leaving ones through the
  // departure protocol's forward machinery (forward-to-self keeps the copy
  // alive inside our own channel until act_forward routes it).
  auto handle = [&](const RefInfo& r) {
    if (r.ref == self()) return;
    if (r.mode == ModeInfo::Staying) {
      overlay_->integrate(r);
    } else {
      ctx.send(self(), Message::forward(r));
    }
  };
  handle(RefInfo{entry.dest, entry.dest_mode, 0});
  for (const RefInfo& r : entry.refs) handle(r);
}

void FrameworkProcess::handle_other(Context& ctx, const Message& m) {
  switch (m.verb()) {
    case Verb::Verify:
      on_verify(ctx, m);
      break;
    case Verb::ProcessReply:
      if (mode() == Mode::Leaving) {
        // Route the reporter's reference through the anchor machinery.
        for (const RefInfo& r : m.refs) act_forward(ctx, r);
      } else {
        on_process_reply(ctx, m);
      }
      break;
    case Verb::Overlay:
      on_overlay_msg(ctx, m);
      break;
    default:
      DepartureProcess::handle_other(ctx, m);
      break;
  }
}

void FrameworkProcess::on_timeout(Context& ctx) {
  distrust_leaving_anchor(ctx);
  if (mode() == Mode::Leaving) {
    leaving_timeout(ctx);
    return;
  }
  staying_timeout(ctx);      // purge leaving refs + periodic self-introduction
  framework_timeout(ctx);    // verify resends, give-up, completions
  WrappedCtx octx(this, &ctx);
  overlay_->maintain(octx);  // P-timeout structural work
}

// ---------------------------------------------------------------------------
// PlainOverlayHost
// ---------------------------------------------------------------------------

class PlainOverlayHost::DirectCtx final : public OverlayCtx {
 public:
  DirectCtx(PlainOverlayHost* host, Context* ctx) : host_(host), ctx_(ctx) {}
  [[nodiscard]] Ref self() const override { return host_->self(); }
  [[nodiscard]] std::uint64_t self_key() const override {
    return host_->key();
  }
  [[nodiscard]] RefInfo self_info() const override {
    return host_->self_info();
  }
  void send_overlay(Ref dest, std::uint32_t tag, std::vector<RefInfo> refs,
                    std::uint64_t token) override {
    ctx_->send(dest, Message{Verb::Overlay, tag, token, std::move(refs)});
  }

 private:
  PlainOverlayHost* host_;
  Context* ctx_;
};

PlainOverlayHost::PlainOverlayHost(Ref self, Mode mode, std::uint64_t key,
                                   std::unique_ptr<OverlayProtocol> overlay)
    : Process(self, mode, key), overlay_(std::move(overlay)) {
  FDP_CHECK(overlay_ != nullptr);
  overlay_->bind(self, key);
  name_ = std::string("plain[") + overlay_->name() + "]";
}

const char* PlainOverlayHost::protocol_name() const { return name_.c_str(); }

void PlainOverlayHost::on_timeout(Context& ctx) {
  DirectCtx octx(this, &ctx);
  // Periodic self-introduction required of every P ∈ 𝒫.
  for (const RefInfo& r : overlay_->introduction_targets()) {
    ctx.send(r.ref, Message{Verb::Overlay, kTagDeliverRef, 0, {self_info()}});
  }
  overlay_->maintain(octx);
}

void PlainOverlayHost::on_message(Context& ctx, const Message& m) {
  DirectCtx octx(this, &ctx);
  if (m.verb() == Verb::Overlay) {
    overlay_->on_overlay_message(octx, m.tag(), m.refs, m.token);
  } else {
    // Present/forward/user messages: conservatively integrate every
    // carried reference (the plain host has no departure layer).
    for (const RefInfo& r : m.refs)
      if (r.ref != self()) overlay_->integrate(r);
  }
}

void PlainOverlayHost::collect_refs(std::vector<RefInfo>& out) const {
  for (const RefInfo& r : overlay_->stored()) out.push_back(r);
}

}  // namespace fdp
