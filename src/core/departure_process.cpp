#include "core/departure_process.hpp"

#include "util/rng.hpp"

namespace fdp {

void DepartureProcess::distrust_leaving_anchor(Context& ctx) {
  // Alg. 1, lines 1–3: if the anchor is believed to be leaving it cannot
  // serve as an anchor; re-submit the reference to ourselves as a present
  // message (the copy moves from the variable into our own channel, so no
  // reference is lost) and clear the variable.
  if (anchor_ && anchor_->mode == ModeInfo::Leaving) {
    ctx.send(self(), Message::present(*anchor_));
    anchor_.reset();
  }
}

void DepartureProcess::leaving_timeout(Context& ctx) {
  // Alg. 1, lines 4–14.
  if (storage_empty()) {
    if (policy_ == DeparturePolicy::Sleep) {
      // FSP variant: no oracle — go to sleep; any incoming message wakes
      // us and is handled by present/forward as usual.
      ctx.sleep_process();
      return;
    }
    if (ctx.oracle()) {  // lines 6–7: SINGLE says we touch at most one
      ctx.exit_process();
      return;
    }
    if (anchor_) {  // lines 9–10: verify the anchor is really staying
      ctx.send(anchor_->ref, Message::present(self_info()));
    }
    return;
  }
  // Lines 11–14: flush the whole neighborhood through our own channel as
  // forward messages; the forward action will route every reference to the
  // anchor (or recruit one). Delegation-to-self: no copy is lost.
  std::vector<RefInfo>& flushed = ctx.ref_scratch();
  flushed.clear();
  take_all_refs(flushed);
  for (const RefInfo& v : flushed) {
    ctx.send(self(), Message::forward(v));
  }
}

void DepartureProcess::staying_timeout(Context& ctx) {
  // Alg. 1, lines 15–22.
  if (anchor_) {  // lines 16–18: a staying process needs no anchor
    ctx.send(self(), Message::present(*anchor_));
    anchor_.reset();
  }
  // Lines 19–22. First expel every reference believed leaving (the
  // reversal send below doubles as the paper's "v <- present(u)"), then
  // self-introduce to the kept structural neighbors.
  std::vector<RefInfo>& nbrs = ctx.ref_scratch();
  nbrs.clear();
  stored_neighbors(nbrs);
  for (const RefInfo& v : nbrs) {
    if (v.mode == ModeInfo::Leaving) {
      // Reversal: drop the reference to the leaving neighbor and hand it
      // our own reference so it can route it to its anchor.
      expel_ref(v.ref);
      ctx.send(v.ref, Message::present(self_info()));
    }
  }
  nbrs.clear();
  introduction_targets(nbrs);
  for (const RefInfo& v : nbrs) {
    if (v.mode == ModeInfo::Leaving) continue;  // just expelled above
    ctx.send(v.ref, Message::present(self_info()));
  }
}

void DepartureProcess::on_timeout(Context& ctx) {
  distrust_leaving_anchor(ctx);
  if (mode() == Mode::Leaving) {
    leaving_timeout(ctx);
  } else {
    staying_timeout(ctx);
  }
}

void DepartureProcess::act_present(Context& ctx, const RefInfo& v) {
  // Alg. 2, lines 1–2: fuse with a leaving anchor.
  if (anchor_ && v.ref == anchor_->ref && v.mode == ModeInfo::Leaving) {
    anchor_.reset();
  }
  if (v.ref == self()) return;  // own reference — nothing to learn

  if (v.mode == ModeInfo::Leaving) {
    if (mode() == Mode::Leaving) {
      // Line 5: two leaving processes bounce their own (valid) info.
      ctx.send(v.ref, Message::forward(self_info()));
    } else {
      // Lines 7–9: expel the leaving process and give it our reference.
      expel_ref(v.ref);
      ctx.send(v.ref, Message::forward(self_info()));
    }
    return;
  }
  // v believed staying (Unknown is treated as staying — it can only occur
  // in corrupted initial states; storing it keeps the reference alive and
  // the periodic self-introduction will correct the knowledge).
  if (mode() == Mode::Leaving) {
    if (anchor_) {
      // Lines 12–13: already anchored; send our own reference to v so v
      // learns we are leaving (reversal of the implicit edge).
      ctx.send(v.ref, Message::forward(self_info()));
    } else {
      anchor_ = v;  // line 15: recruit v as anchor
    }
  } else {
    store_ref(ctx, v);  // line 17 (fusion when already present)
  }
}

void DepartureProcess::act_forward(Context& ctx, const RefInfo& v) {
  // Alg. 3, lines 1–2.
  if (anchor_ && v.ref == anchor_->ref && v.mode == ModeInfo::Leaving) {
    anchor_.reset();
  }
  if (v.ref == self()) return;  // own reference — drop

  if (v.mode == ModeInfo::Leaving) {
    if (mode() == Mode::Leaving) {
      if (!anchor_) {
        // Lines 5–6.
        ctx.send(v.ref, Message::forward(self_info()));
      } else {
        // Lines 7–8: delegate to the anchor. Note: possibly invalid
        // information about v travels on, but the copy is not kept — Φ
        // cannot increase (Lemma 3's key observation).
        ctx.send(anchor_->ref, Message::forward(v));
      }
    } else {
      // Lines 10–12.
      expel_ref(v.ref);
      ctx.send(v.ref, Message::forward(self_info()));
    }
    return;
  }
  if (mode() == Mode::Leaving) {
    if (anchor_) {
      ctx.send(anchor_->ref, Message::forward(v));  // lines 15–16
    } else {
      anchor_ = v;  // line 18
    }
  } else {
    store_ref(ctx, v);  // lines 19–20
  }
}

void DepartureProcess::handle_other(Context& ctx, const Message& m) {
  // Base protocol: unknown labels are "ignored" by the paper's model, but
  // a corrupted initial state may contain them carrying references. Treat
  // each carried reference as introduced so no reference is destroyed.
  for (const RefInfo& r : m.refs) act_present(ctx, r);
}

void DepartureProcess::on_message(Context& ctx, const Message& m) {
  switch (m.verb()) {
    case Verb::Present:
      for (const RefInfo& r : m.refs) act_present(ctx, r);
      break;
    case Verb::Forward:
      for (const RefInfo& r : m.refs) act_forward(ctx, r);
      break;
    default:
      handle_other(ctx, m);
      break;
  }
}

void DepartureProcess::collect_refs(std::vector<RefInfo>& out) const {
  n_.append_to(out);
  if (anchor_) out.push_back(*anchor_);
}

bool DepartureProcess::fault_crash_restart(Rng& rng) {
  // Gather every reference the departure layer stores, wipe the layer,
  // and rebuild an arbitrary-but-legal restart state from the survivors.
  std::vector<RefInfo> stored = n_.snapshot();
  if (anchor_) stored.push_back(*anchor_);
  n_.clear();
  anchor_.reset();
  for (RefInfo v : stored) {
    // All knowledge is re-rolled: the restarted process no longer trusts
    // anything it learned. Only Staying/Leaving beliefs are produced —
    // both are legal protocol states; wrongness is what Φ measures.
    v.mode = rng.chance(0.5) ? ModeInfo::Staying : ModeInfo::Leaving;
    n_.insert(v);
  }
  // A restart may come up holding a (copied) anchor it believes staying.
  const std::vector<RefInfo> rebuilt = n_.snapshot();
  if (!rebuilt.empty() && rng.chance(0.5)) {
    RefInfo a = rebuilt[rng.below(rebuilt.size())];
    a.mode = ModeInfo::Staying;  // anchors are believed staying, possibly wrongly
    set_anchor(a);
  }
  return true;
}

bool DepartureProcess::fault_scramble(Rng& rng) {
  // Flip stored mode beliefs in place; occasionally demote the anchor
  // back into u.N (fusing with an existing copy if present). Reference
  // multiset aside from fusion is untouched.
  for (const RefInfo& v : n_.snapshot()) {
    if (rng.chance(0.5)) {
      n_.set_mode(v.ref, v.mode == ModeInfo::Leaving ? ModeInfo::Staying
                                                     : ModeInfo::Leaving);
    }
  }
  if (anchor_ && rng.chance(0.5)) {
    RefInfo a = *anchor_;
    a.mode = rng.chance(0.5) ? ModeInfo::Staying : ModeInfo::Leaving;
    anchor_.reset();
    n_.insert(a);
  }
  return true;
}

}  // namespace fdp
