#include "core/primitives.hpp"

#include <map>

#include "sim/world.hpp"

namespace fdp {

namespace {

struct RefFlow {
  std::uint64_t stored_before = 0;
  std::uint64_t consumed = 0;  // copies in the delivered message
  std::uint64_t stored_after = 0;
  std::uint64_t sent = 0;          // copies in sent messages
  bool self_sent_to = false;       // u's own ref was sent TO this process
};

}  // namespace

bool audit_action(const ActionRecord& rec, PrimitiveCounts& counts,
                  std::vector<std::string>& violations) {
  const ProcessId self = rec.actor;
  std::map<ProcessId, RefFlow> flow;

  for (const RefInfo& r : rec.refs_before) ++flow[r.ref.id()].stored_before;
  if (rec.consumed) {
    for (const RefInfo& r : rec.consumed->refs) ++flow[r.ref.id()].consumed;
  }
  for (const RefInfo& r : rec.refs_after) ++flow[r.ref.id()].stored_after;
  for (const auto& [to, msg] : rec.sent) {
    for (const RefInfo& r : msg.refs) {
      ++flow[r.ref.id()].sent;
      if (r.ref.id() == self) flow[to.id()].self_sent_to = true;
    }
  }

  bool ok = true;
  for (const auto& [id, f] : flow) {
    if (id == self) continue;  // self references are free to mint or drop
    const std::uint64_t before = f.stored_before + f.consumed;
    const std::uint64_t after = f.stored_after + f.sent;
    if (before == 0 && after > 0) {
      // A reference was fabricated — impossible for copy-store-send.
      violations.push_back("process " + std::to_string(self) +
                           " fabricated a reference to " + std::to_string(id));
      ok = false;
      continue;
    }
    if (before > 0 && after == 0) {
      if (rec.exited) continue;  // exit destroys references (oracle-guarded)
      if (!f.self_sent_to) {
        violations.push_back("process " + std::to_string(self) +
                             " destroyed the last reference to " +
                             std::to_string(id) +
                             " without reversal (step " +
                             std::to_string(rec.step) + ")");
        ok = false;
        continue;
      }
      // Reversal: ref to id dropped, own ref sent to id.
      ++counts.reversals;
      continue;
    }
    if (before == 0) continue;  // untouched id bucket

    // Classification of conserving movements (statistics only):
    //  - copies that left a sent message or storage but survive: fusion
    //    when total decreased, otherwise introduction/delegation by
    //    whether storage kept a copy.
    if (after < before) counts.fusions += before - after;
    if (f.sent > 0) {
      if (f.stored_after > 0) {
        counts.introductions += f.sent;
      } else {
        ++counts.delegations;
        if (f.sent > 1) counts.introductions += f.sent - 1;
      }
    }
  }

  // Self-introductions: own reference sent while (trivially) keeping self.
  auto self_it = flow.find(self);
  if (self_it != flow.end() && self_it->second.sent > 0) {
    // Sent copies that were classified as reversals already are not
    // double-counted here: a reversal consumed a ref to the destination.
    counts.introductions += self_it->second.sent;
  }

  return ok;
}

void PrimitiveAuditor::on_action(const Substrate& world, const ActionRecord& rec) {
  (void)world;
  ++actions_;
  if (rec.exited) ++exits_;
  (void)audit_action(rec, counts_, violations_);
}

void PrimitiveAuditor::reset() {
  counts_ = {};
  violations_.clear();
  actions_ = 0;
  exits_ = 0;
}

}  // namespace fdp
