#include "core/oracle.hpp"

#include <cstdlib>
#include <map>

#include "graph/process_graph.hpp"
#include "sim/substrate.hpp"
#include "util/rng.hpp"
#include "util/check.hpp"

namespace fdp {

OracleFn make_single_oracle() { return make_incident_oracle(1); }

OracleFn make_nidec_oracle() {
  return [](const Substrate& w, ProcessId p) {
    // World::referenced_by_other is the maintained-index form of
    // Snapshot::referenced_anywhere: any non-gone q != p holding an
    // instance of p. O(holders of p) instead of an O(n + m) scan.
    return !w.referenced_by_other(p) && w.channel_depth(p) == 0;
  };
}

OracleFn make_always_oracle(bool value) {
  return [value](const Substrate&, ProcessId) { return value; };
}

OracleFn make_quiet_oracle(std::uint32_t consecutive_calls) {
  // Stateful: per-process count of consecutive consultations that saw an
  // empty channel. Captured by shared_ptr so the OracleFn stays copyable.
  auto quiet = std::make_shared<std::map<ProcessId, std::uint32_t>>();
  return [quiet, consecutive_calls](const Substrate& w, ProcessId p) {
    std::uint32_t& count = (*quiet)[p];
    if (w.channel_depth(p) == 0) {
      ++count;
    } else {
      count = 0;
    }
    return count >= consecutive_calls;
  };
}

OracleFn make_incident_oracle(std::size_t k) {
  return [k](const Substrate& w, ProcessId p) {
    // Hibernation needs a quiet process (asleep with an empty channel).
    // With none, "relevant" degenerates to "non-gone" and the maintained
    // edge index answers in O(degree) instead of an O(n + m) snapshot.
    if (w.quiet_count() == 0) return w.incident_nongone(p) <= k;
    const Snapshot s = take_snapshot(w);
    return s.incident_relevant(p) <= k;
  };
}

OracleFn make_unreliable_oracle(OracleFn inner, double p_false_pos,
                                double p_false_neg, std::uint64_t seed) {
  FDP_CHECK_MSG(p_false_pos >= 0.0 && p_false_pos <= 1.0 &&
                    p_false_neg >= 0.0 && p_false_neg <= 1.0,
                "oracle lie probabilities must lie in [0, 1]");
  // Stateful (own Rng stream); shared_ptr keeps the OracleFn copyable,
  // matching the quiet-oracle idiom.
  auto lie_rng = std::make_shared<Rng>(seed);
  return [inner = std::move(inner), p_false_pos, p_false_neg,
          lie_rng](const Substrate& w, ProcessId p) {
    const bool truth = inner(w, p);
    if (truth) {
      return p_false_neg > 0.0 && lie_rng->chance(p_false_neg) ? false : true;
    }
    return p_false_pos > 0.0 && lie_rng->chance(p_false_pos);
  };
}

OracleFn oracle_by_name(const std::string& name) {
  if (name == "single") return make_single_oracle();
  if (name.rfind("incident:", 0) == 0) {
    const long k = std::strtol(name.c_str() + 9, nullptr, 10);
    FDP_CHECK_MSG(k >= 0, "incident:<k> needs k >= 0");
    return make_incident_oracle(static_cast<std::size_t>(k));
  }
  if (name == "nidec") return make_nidec_oracle();
  if (name == "always-true") return make_always_oracle(true);
  if (name == "always-false") return make_always_oracle(false);
  if (name.rfind("quiet:", 0) == 0) {
    const long k = std::strtol(name.c_str() + 6, nullptr, 10);
    FDP_CHECK_MSG(k > 0, "quiet:<k> needs k > 0");
    return make_quiet_oracle(static_cast<std::uint32_t>(k));
  }
  FDP_CHECK_MSG(false, "unknown oracle name");
  return {};
}

}  // namespace fdp
