// The Section-4 framework: P -> P'.
//
// Given any overlay maintenance protocol P ∈ 𝒫 (decomposable into the four
// primitives, with periodic self-introduction and a postprocess action),
// the framework produces P′ which additionally solves the FDP (Theorem 4):
//
//  * Every P-send v <- label(parameters) is intercepted by `preprocess`:
//    the message is parked in the process's message list `mlist`, a
//    verify(u) message is sent to v and to every process reference in
//    parameters, and the send only happens once every one of them answered
//    with a process(x) message reporting mode staying. Unanswered verifies
//    are re-sent in timeout.
//  * If any of them reports leaving, the local `postprocess` action runs
//    instead: leaving references are expelled through the departure
//    protocol's forward machinery and staying references are reintegrated
//    into P.
//  * A leaving process stops executing P: an incoming P message only makes
//    it send present messages to all carried references (so they learn to
//    drop it); its whole P state (overlay links, parked messages) is
//    flushed through forward-to-self, exactly like u.N in Algorithm 1.
//  * Everything else — anchors, present/forward, the SINGLE-guarded exit,
//    the FSP sleep variant — is inherited unchanged from DepartureProcess;
//    the framework only overrides where references are *stored* (P's
//    structured storage instead of the flat u.N), which is precisely the
//    modification the paper describes for staying-to-staying references.
//
// Engineering completion (the paper omits the framework's pseudocode "due
// to space constraints"): a parked message whose verify is never answered
// — possible only when the target exited while we held its reference, i.e.
// we were its single neighbor — would wait forever. After `give_up_age`
// timeouts the unverified references are pessimistically treated as
// leaving and the entry is postprocessed. Mislabeling a slow stayer is
// harmless: the expelled reference bounces back through the departure
// protocol and is reintegrated.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/departure_process.hpp"
#include "overlay/overlay_protocol.hpp"

namespace fdp {

/// Implemented by every process that hosts an OverlayProtocol (the wrapped
/// FrameworkProcess and the bare PlainOverlayHost); lets topology checkers
/// read the overlay's structural links without knowing the host type.
class OverlayHost {
 public:
  virtual ~OverlayHost() = default;
  [[nodiscard]] virtual const OverlayProtocol& hosted_overlay() const = 0;
};

struct FrameworkConfig {
  /// Re-send outstanding verify messages every this many timeouts.
  std::uint32_t resend_every = 4;
  /// After this many timeouts, unverified references in a parked message
  /// are treated as leaving and the message is postprocessed.
  std::uint32_t give_up_age = 64;
};

struct FrameworkStats {
  std::uint64_t verifies_sent = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t dispatched = 0;      ///< parked messages eventually sent
  std::uint64_t postprocessed = 0;   ///< parked messages diverted
  std::uint64_t gave_up = 0;         ///< entries aged out
};

class FrameworkProcess : public DepartureProcess, public OverlayHost {
 public:
  FrameworkProcess(Ref self, Mode mode, std::uint64_t key,
                   std::unique_ptr<OverlayProtocol> overlay,
                   DeparturePolicy policy = DeparturePolicy::ExitWithOracle,
                   FrameworkConfig cfg = {});

  void on_timeout(Context& ctx) override;
  void collect_refs(std::vector<RefInfo>& out) const override;
  [[nodiscard]] const char* protocol_name() const override;
  [[nodiscard]] std::size_t footprint_bytes(bool capacity) const override;

  [[nodiscard]] const OverlayProtocol& hosted_overlay() const override {
    return *overlay_;
  }
  [[nodiscard]] OverlayProtocol& overlay_mut() { return *overlay_; }
  [[nodiscard]] const FrameworkStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t mlist_size() const { return mlist_.size(); }

 protected:
  // DepartureProcess storage hooks: reference storage is P's.
  void store_ref(Context& ctx, const RefInfo& v) override;
  void expel_ref(Ref r) override;
  void stored_neighbors(std::vector<RefInfo>& out) const override;
  void take_all_refs(std::vector<RefInfo>& out) override;
  [[nodiscard]] bool storage_empty() const override;
  void introduction_targets(std::vector<RefInfo>& out) const override;

  void handle_other(Context& ctx, const Message& m) override;

 private:
  struct Pending {
    Ref dest;
    ModeInfo dest_mode = ModeInfo::Unknown;
    std::uint32_t tag = 0;
    std::uint64_t token = 0;  ///< Message::token pass-through (lookup keys)
    std::vector<RefInfo> refs;  // modes Unknown until verified
    std::uint32_t age = 0;      // in timeouts
  };

  /// OverlayCtx implementation routing P-sends through preprocess.
  class WrappedCtx;

  void preprocess(Context& ctx, Ref dest, std::uint32_t tag,
                  std::vector<RefInfo> refs, std::uint64_t token);
  void send_verify(Context& ctx, Ref target);
  void on_verify(Context& ctx, const Message& m);
  void on_process_reply(Context& ctx, const Message& m);
  void on_overlay_msg(Context& ctx, const Message& m);
  void framework_timeout(Context& ctx);
  /// Dispatch or postprocess every fully verified entry.
  void try_complete(Context& ctx);
  void postprocess(Context& ctx, Pending entry);

  std::unique_ptr<OverlayProtocol> overlay_;
  std::vector<Pending> mlist_;
  FrameworkConfig cfg_;
  FrameworkStats stats_;
  std::string name_;
};

/// Bare host for running an overlay P *without* the framework: direct
/// sends, no verification, no departure handling. Used for overlay unit
/// tests and as the E6 overhead baseline (all-staying populations).
class PlainOverlayHost final : public Process, public OverlayHost {
 public:
  PlainOverlayHost(Ref self, Mode mode, std::uint64_t key,
                   std::unique_ptr<OverlayProtocol> overlay);

  void on_timeout(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;
  void collect_refs(std::vector<RefInfo>& out) const override;
  [[nodiscard]] const char* protocol_name() const override;

  [[nodiscard]] const OverlayProtocol& hosted_overlay() const override {
    return *overlay_;
  }
  [[nodiscard]] OverlayProtocol& overlay_mut() { return *overlay_; }

 private:
  class DirectCtx;
  std::unique_ptr<OverlayProtocol> overlay_;
  std::string name_;
};

}  // namespace fdp
