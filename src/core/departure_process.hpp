// The self-stabilizing departure protocol — paper Algorithms 1–3.
//
// Each process keeps the neighborhood set u.N and the special `anchor`
// variable (not part of u.N). The anchor is only used by leaving processes:
// it is a reference to a process that — according to u's local information —
// is staying; whenever a leaving u receives a reference from a third
// process it forwards it to its anchor, eliminating references to itself
// and handing its connectivity duties to a stayer.
//
// The protocol uses two remote actions:
//   present(v)  — v is *introduced* (the sender kept its copy),
//   forward(v)  — v is *delegated* (the sender deleted its copy),
// plus the periodically executed timeout action. Every branch decomposes
// into the four primitives of Section 2 (see core/primitives.hpp), which is
// the whole safety argument (Lemma 2).
//
// Policy selects the problem variant:
//   ExitWithOracle — FDP: a leaving process with empty N consults the
//                    oracle and executes `exit` when it says true.
//   Sleep          — FSP: same situation executes `sleep`; no oracle is
//                    needed, and an incoming message wakes the process.
//
// Deviations from the paper's pseudocode (documented, behavior-preserving):
//  * Self-references are dropped on receipt and never stored. A process
//    trivially knows itself; self-loops are irrelevant for connectivity; and
//    without this rule a pair of leaving processes can bounce their own
//    references forever, which is harmless in the FDP (SINGLE still lets
//    them exit) but would keep an FSP process from ever hibernating.
//  * On Fusion the incoming mode knowledge overwrites the stored knowledge
//    (the message is the fresher observation). Either choice keeps Φ
//    non-increasing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/context.hpp"
#include "sim/neighbor_set.hpp"
#include "sim/process.hpp"

namespace fdp {

enum class DeparturePolicy : std::uint8_t {
  ExitWithOracle,  ///< FDP
  Sleep,           ///< FSP
};

class DepartureProcess : public Process {
 public:
  DepartureProcess(Ref self, Mode mode, std::uint64_t key,
                   DeparturePolicy policy = DeparturePolicy::ExitWithOracle)
      : Process(self, mode, key), n_(self), policy_(policy) {}

  void on_timeout(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;
  void collect_refs(std::vector<RefInfo>& out) const override;
  [[nodiscard]] const char* protocol_name() const override {
    return "departure";
  }
  [[nodiscard]] std::size_t footprint_bytes(bool capacity) const override {
    return sizeof(*this) + n_.heap_bytes(capacity);
  }

  // --- runtime fault hooks (sim/fault.hpp) ---
  // Both operate on the departure layer's own storage (u.N and anchor)
  // directly, NOT through the virtual storage hooks: a Section-4 framework
  // subclass keeps its hosted-overlay links untouched and inherits a
  // perturbation of exactly the state Algorithms 1–3 own. The distinct
  // references stored before and after are identical (duplicates may
  // fuse), so Lemma 2's edge set survives — only knowledge is corrupted.
  bool fault_crash_restart(Rng& rng) override;
  bool fault_scramble(Rng& rng) override;

  // --- scenario / test access ---
  [[nodiscard]] const NeighborSet& nbrs() const { return n_; }
  [[nodiscard]] NeighborSet& nbrs_mut() { return n_; }
  [[nodiscard]] const std::optional<RefInfo>& anchor() const {
    return anchor_;
  }
  /// Sets the anchor; a self-reference is dropped (never stored).
  void set_anchor(const RefInfo& a) {
    if (a.ref != self()) anchor_ = a;
  }
  void clear_anchor() { anchor_.reset(); }
  [[nodiscard]] DeparturePolicy policy() const { return policy_; }

 protected:
  /// Algorithm 2: u.present(v).
  void act_present(Context& ctx, const RefInfo& v);
  /// Algorithm 3: u.forward(v).
  void act_forward(Context& ctx, const RefInfo& v);
  /// Algorithm 1 lines 1–3 (shared prefix of timeout).
  void distrust_leaving_anchor(Context& ctx);
  /// Algorithm 1 lines 4–14, the leaving branch of timeout.
  void leaving_timeout(Context& ctx);
  /// Algorithm 1 lines 15–22, the staying branch of timeout.
  void staying_timeout(Context& ctx);

  /// Hook for subclasses (the Section-4 framework) to handle verbs the
  /// base protocol does not know. The default conservatively treats every
  /// carried reference as if it had been introduced (keeps the
  /// conservation law intact for stray messages in corrupted states).
  virtual void handle_other(Context& ctx, const Message& m);

  // ------ storage hooks (Section-4 framework overrides these) ------
  // The paper modifies present/forward so that "in case a staying process
  // gets a reference from another staying process" the reference is
  // reintegrated into the wrapped protocol P instead of joining u.N, and
  // the timeout's neighborhood iteration ranges over all of P's stored
  // references. The base implementations are exactly Algorithms 1–3.

  /// Store a reference believed staying (Alg. 2 line 17 / Alg. 3 line 20).
  virtual void store_ref(Context& ctx, const RefInfo& v) {
    (void)ctx;
    n_.insert(v);
  }
  /// Remove every stored copy of r (expulsion of a leaving process).
  virtual void expel_ref(Ref r) { n_.erase(r); }
  /// All stored references the timeout action iterates over, appended to
  /// `out`. Append-style (rather than returning a vector) so the caller
  /// can reuse a retained-capacity scratch buffer: timeout runs once per
  /// awake process per epoch, and a fresh vector here was the dominant
  /// steady-state allocation of E12 churn campaigns.
  virtual void stored_neighbors(std::vector<RefInfo>& out) const {
    n_.append_to(out);
  }
  /// Remove every stored reference, appending it to `out` (leaving flush,
  /// Alg. 1 lines 11–14).
  virtual void take_all_refs(std::vector<RefInfo>& out) {
    n_.append_to(out);
    n_.clear();
  }
  /// True when no references are stored (Alg. 1 line 5 guard).
  [[nodiscard]] virtual bool storage_empty() const { return n_.empty(); }

  /// References the periodic self-introduction targets, appended to `out`.
  /// For the flat u.N of Algorithm 1 this is everything stored; a hosted
  /// overlay narrows it to the neighbors it intends to KEEP — self-
  /// introducing to a reference that is merely in transit would spawn a
  /// reverse edge and keep the network churning forever.
  virtual void introduction_targets(std::vector<RefInfo>& out) const {
    n_.append_to(out);
  }

  NeighborSet n_;
  std::optional<RefInfo> anchor_;
  DeparturePolicy policy_;
};

}  // namespace fdp
