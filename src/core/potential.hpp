// The invalid-information potential Φ (paper, proof sketch of Lemma 3).
//
// Φ_t = number of edges (x,y) — explicit or implicit — such that the mode
// knowledge attached to x's reference instance of y differs from y's true
// mode. The liveness proof rests on Φ never increasing (invalid information
// is never duplicated: the only places a third-party reference is forwarded
// are Algorithm 3 lines 8/16, where the sender does not keep the copy) and
// eventually reaching zero.
//
// Reference instances with ModeInfo::Unknown are *unverified*, not invalid
// (they exist only inside the Section-4 framework's message list before the
// verify/process round trip completes) and are counted separately.
#pragma once

#include <cstdint>
#include <span>

#include "graph/process_graph.hpp"

namespace fdp {

struct PotentialBreakdown {
  /// Invalid instances stored in local memories of non-gone processes.
  std::uint64_t invalid_stored = 0;
  /// Invalid instances in flight (channels of non-gone processes).
  std::uint64_t invalid_in_flight = 0;
  /// Unverified (Unknown) instances — framework bookkeeping, not in Φ.
  std::uint64_t unknown = 0;

  [[nodiscard]] std::uint64_t phi() const {
    return invalid_stored + invalid_in_flight;
  }
};

/// Compute Φ (with breakdown) for a snapshot. References held by or in the
/// channels of gone processes are dead — they can never propagate — and are
/// excluded, as are references to out-of-system targets.
[[nodiscard]] PotentialBreakdown potential(const Snapshot& s);

/// Convenience: Φ of a substrate's current state.
class Substrate;
[[nodiscard]] std::uint64_t phi(const Substrate& w);

/// Whether one reference instance counts toward Φ: in-system target,
/// verified (non-Unknown) knowledge, and that knowledge contradicts the
/// target's true mode. True modes are immutable, so an instance's verdict
/// never changes over a run — which is what makes Φ maintainable from
/// per-action deltas (see PotentialMonitor).
[[nodiscard]] bool counts_invalid(const Substrate& w, const RefInfo& r);

/// Number of Φ-counting instances in one reference list. O(|refs|).
/// Takes a span so both std::vector and Message::refs (RefList) callers
/// convert without copying.
[[nodiscard]] std::uint64_t invalid_count(const Substrate& w,
                                          std::span<const RefInfo> refs);

}  // namespace fdp
