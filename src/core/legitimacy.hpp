// Legitimate states (paper Section 1.2).
//
// A system state is legitimate iff
//   (i)   every staying process is awake,
//   (ii)  every leaving process is excluded — gone (FDP) or hibernating
//         (FSP),
//   (iii) for each weakly connected component of the *initial* process
//         graph, the staying processes of that component still form a
//         weakly connected component.
//
// For (iii) we check the strong form: the staying processes of an initial
// component are weakly connected in PG induced on staying processes alone —
// their connectivity does not borrow paths through leaving processes. In
// the FDP this coincides with the natural reading (gone processes have no
// live edges); in the FSP it is the robust interpretation (a hibernating
// process never acts, so a path through it could never be used to route).
//
// The checker also provides the running safety invariant of Lemma 2:
// STAYING processes that started in one component stay weakly connected in
// PG induced on relevant processes (paths may route through relevant
// leaving processes). Note the endpoints are staying processes only: with
// invalid initial knowledge two mutually-anchored leaving processes can
// legitimately strand each other (each adopts the other as anchor, one
// exits under SINGLE, the survivor's anchor dangles) — the model checker
// reproduces this — and the paper's conditions never promise more than
// connectivity among the stayers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/connectivity.hpp"
#include "graph/process_graph.hpp"

namespace fdp {

class Substrate;

/// Which exclusion the problem variant demands for leaving processes.
enum class Exclusion : std::uint8_t {
  Gone,         ///< FDP: exit was executed
  Hibernating,  ///< FSP: asleep forever
  Either,       ///< accepted by both (used by mixed experiments)
};

class LegitimacyChecker {
 public:
  /// Captures the component structure of the world's *current* (initial)
  /// process graph.
  explicit LegitimacyChecker(const Substrate& w, Exclusion excl);

  struct Verdict {
    bool staying_awake = false;       ///< condition (i)
    bool leaving_excluded = false;    ///< condition (ii)
    bool components_preserved = false;///< condition (iii)
    [[nodiscard]] bool legitimate() const {
      return staying_awake && leaving_excluded && components_preserved;
    }
    std::string detail;  ///< first violated condition, for diagnostics
  };

  [[nodiscard]] Verdict check(const Substrate& w) const;
  [[nodiscard]] bool legitimate(const Substrate& w) const {
    return check(w).legitimate();
  }

  /// Lemma 2's running safety invariant: initially-connected STAYING
  /// processes remain weakly connected via relevant processes (see the
  /// file comment for why the endpoints are restricted to stayers).
  [[nodiscard]] bool safety_holds(const Substrate& w) const;

  /// Initial component label per process.
  [[nodiscard]] const Components& initial_components() const {
    return initial_;
  }

 private:
  /// Are all `endpoints` of one initial component in one weak component
  /// of PG induced on `paths`? (endpoints must be a subset of paths.)
  [[nodiscard]] bool groups_connected(
      const Snapshot& s, const std::vector<bool>& paths,
      const std::vector<bool>& endpoints) const;

  Exclusion excl_;
  Components initial_;
};

}  // namespace fdp
