// The four primitives (paper Section 2) and the per-action audit.
//
// Introduction: u holds refs to v and w; u sends w's ref to v and KEEPS it.
// Delegation:   u holds refs to v and w; u sends w's ref to v and DELETES it.
// Fusion:       u holds two copies of the same ref; it keeps only one.
// Reversal:     u holds a ref to v; u sends its OWN ref to v and deletes
//               the ref to v.
//
// Lemma 1: each primitive preserves weak connectivity. The auditor below
// turns that into a machine-checkable *local conservation law* over every
// executed action A of a process u:
//
//   For every reference r (r != u) known to u before A (stored in local
//   memory or carried by the consumed message), after A either
//     (a) at least one copy of r survives (still stored, or inside a sent
//         message — including messages u sent to itself), or
//     (b) u sent its own reference TO r during A (Reversal: the edge (u,r)
//         is replaced by the implicit edge (r,u)).
//   Furthermore u never fabricates references: every reference appearing
//   after A either appeared before A or is u's own.
//
// An action satisfying this law is decomposable into the four primitives
// (plus free self-reference handling), and therefore preserves weak
// connectivity; an action violating it may disconnect the graph. The only
// exception is `exit`, which destroys u's references wholesale and is
// guarded by the oracle — the auditor records exits separately so tests can
// pair them with the connectivity monitor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/observer.hpp"

namespace fdp {

enum class Primitive : std::uint8_t {
  Introduction,
  Delegation,
  Fusion,
  Reversal,
};

[[nodiscard]] constexpr const char* to_string(Primitive p) {
  switch (p) {
    case Primitive::Introduction: return "introduction";
    case Primitive::Delegation: return "delegation";
    case Primitive::Fusion: return "fusion";
    case Primitive::Reversal: return "reversal";
  }
  return "?";
}

/// Counts of primitive applications classified from an action's effect.
struct PrimitiveCounts {
  std::uint64_t introductions = 0;
  std::uint64_t delegations = 0;
  std::uint64_t fusions = 0;
  std::uint64_t reversals = 0;

  PrimitiveCounts& operator+=(const PrimitiveCounts& o) {
    introductions += o.introductions;
    delegations += o.delegations;
    fusions += o.fusions;
    reversals += o.reversals;
    return *this;
  }
  [[nodiscard]] std::uint64_t total() const {
    return introductions + delegations + fusions + reversals;
  }
};

/// Classify one action's reference movements. Returns false (and appends a
/// description to `violations`) if the conservation law is broken.
/// `counts` accumulates the primitive classification.
[[nodiscard]] bool audit_action(const ActionRecord& rec,
                                PrimitiveCounts& counts,
                                std::vector<std::string>& violations);

/// Observer that audits every executed action. Attach to a World; after a
/// run, `ok()` reports whether every action obeyed the law.
class PrimitiveAuditor final : public Observer {
 public:
  void on_action(const Substrate& world, const ActionRecord& rec) override;

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] const PrimitiveCounts& counts() const { return counts_; }
  [[nodiscard]] std::uint64_t actions_checked() const { return actions_; }
  [[nodiscard]] std::uint64_t exits_seen() const { return exits_; }

  void reset();

 private:
  PrimitiveCounts counts_;
  std::vector<std::string> violations_;
  std::uint64_t actions_ = 0;
  std::uint64_t exits_ = 0;
};

}  // namespace fdp
