// Observation of atomic actions.
//
// Observers see a complete record of every executed action: the consumed
// message (if any), all sends, and the actor's stored references before and
// after. Monitors (connectivity, potential, primitive audit) are built on
// this interface; when no observer is registered the kernel skips record
// construction entirely.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "sim/ids.hpp"
#include "sim/message.hpp"

namespace fdp {

class Substrate;

/// Runtime fault classes injected by the FaultScheduler (sim/fault.hpp).
/// Declared here (not in fault.hpp) because the Observer interface is the
/// consumer: monitors react to fault announcements without depending on
/// the injector.
enum class FaultKind : std::uint8_t {
  CrashRestart,    ///< a process wiped its local state and rebuilt it
  Scramble,        ///< stored mode knowledge flipped / anchor juggled
  DuplicateBurst,  ///< a burst of adversarial message duplications
  PartitionStart,  ///< a delivery-withholding window opened
  PartitionEnd,    ///< the window closed; withheld deliveries released
};

[[nodiscard]] constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::CrashRestart: return "crash-restart";
    case FaultKind::Scramble: return "scramble";
    case FaultKind::DuplicateBurst: return "dup-burst";
    case FaultKind::PartitionStart: return "partition";
    case FaultKind::PartitionEnd: return "partition-end";
  }
  return "?";
}

struct ActionRecord {
  enum class Kind { Timeout, Deliver };

  Kind kind = Kind::Timeout;
  ProcessId actor = kNoProcess;
  /// The delivered message (Kind::Deliver only).
  std::optional<Message> consumed;
  /// Messages sent during the action, with destinations.
  std::vector<std::pair<Ref, Message>> sent;
  /// The actor's stored references immediately before / after the action.
  std::vector<RefInfo> refs_before;
  std::vector<RefInfo> refs_after;
  bool exited = false;
  bool slept = false;
  /// True when the delivery woke an asleep process.
  bool woke = false;
  /// Substrate clock at which this action executed (the simulator's
  /// step index, post-increment value).
  std::uint64_t step = 0;
};

class Observer {
 public:
  virtual ~Observer() = default;
  /// Called after the action's effects (sends, exit/sleep) are applied.
  virtual void on_action(const Substrate& sub, const ActionRecord& rec) = 0;

  /// A message entered `to`'s channel OUTSIDE any action: Substrate::inject
  /// (scenario construction) or adversarial duplication (ChaosScheduler).
  /// Fired after the message is enqueued. Incremental monitors need these
  /// events — such mutations change the process graph and Φ without any
  /// ActionRecord being emitted.
  virtual void on_inject(const Substrate& sub, ProcessId to, const Message& m) {
    (void)sub;
    (void)to;
    (void)m;
  }

  /// A message left `from`'s channel without being delivered (fault
  /// injection via discard_message, or clear_channel). Fired after
  /// removal.
  virtual void on_remove(const Substrate& sub, ProcessId from,
                         const Message& m) {
    (void)sub;
    (void)from;
    (void)m;
  }

  /// A runtime fault is being injected (World::announce_fault, driven by
  /// the FaultScheduler). Fired twice per fault: once with
  /// `applied = false` immediately BEFORE the mutation (so monitors can
  /// snapshot pre-fault state — a before-announcement may be left dangling
  /// when the victim turns out not to support the fault) and once with
  /// `applied = true` after it took effect. `target` is kNoProcess for
  /// world-scoped faults (duplication bursts, partitions). Incremental
  /// monitors must re-baseline on the applied announcement: a fault may
  /// legally jump Φ upward or perturb state no ActionRecord describes.
  virtual void on_fault(const Substrate& sub, FaultKind kind, ProcessId target,
                        bool applied) {
    (void)sub;
    (void)kind;
    (void)target;
    (void)applied;
  }
};

}  // namespace fdp
