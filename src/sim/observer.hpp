// Observation of atomic actions.
//
// Observers see a complete record of every executed action: the consumed
// message (if any), all sends, and the actor's stored references before and
// after. Monitors (connectivity, potential, primitive audit) are built on
// this interface; when no observer is registered the kernel skips record
// construction entirely.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "sim/ids.hpp"
#include "sim/message.hpp"

namespace fdp {

class World;

struct ActionRecord {
  enum class Kind { Timeout, Deliver };

  Kind kind = Kind::Timeout;
  ProcessId actor = kNoProcess;
  /// The delivered message (Kind::Deliver only).
  std::optional<Message> consumed;
  /// Messages sent during the action, with destinations.
  std::vector<std::pair<Ref, Message>> sent;
  /// The actor's stored references immediately before / after the action.
  std::vector<RefInfo> refs_before;
  std::vector<RefInfo> refs_after;
  bool exited = false;
  bool slept = false;
  /// True when the delivery woke an asleep process.
  bool woke = false;
  /// World step index of this action (post-increment value).
  std::uint64_t step = 0;
};

class Observer {
 public:
  virtual ~Observer() = default;
  /// Called after the action's effects (sends, exit/sleep) are applied.
  virtual void on_action(const World& world, const ActionRecord& rec) = 0;

  /// A message entered `to`'s channel OUTSIDE any action: World::post
  /// (scenario construction) or adversarial duplication (ChaosScheduler).
  /// Fired after the message is enqueued. Incremental monitors need these
  /// events — such mutations change the process graph and Φ without any
  /// ActionRecord being emitted.
  virtual void on_inject(const World& world, ProcessId to, const Message& m) {
    (void)world;
    (void)to;
    (void)m;
  }

  /// A message left `from`'s channel without being delivered (fault
  /// injection via discard_message, or clear_channel). Fired after
  /// removal.
  virtual void on_remove(const World& world, ProcessId from,
                         const Message& m) {
    (void)world;
    (void)from;
    (void)m;
  }
};

}  // namespace fdp
