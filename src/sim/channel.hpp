// Channels.
//
// The paper's channel u.Ch is a *set* of messages with unbounded capacity,
// no loss and no ordering guarantee (non-FIFO delivery). We expose messages
// in arrival order but let the scheduler remove any element, which yields
// exactly the paper's semantics: the dense order carries no meaning beyond
// supporting age-based fair-receipt scheduling.
//
// Storage is a slot pool: messages live in a stable arena (`slots_`), dead
// slots go onto a freelist, and a dense index array (`order_`) presents the
// same arrival-order-with-swap-remove view the old message vector had —
// peek(i) enumerates byte-identically to the previous layout, but take()
// moves one 8-byte index instead of a Message, and a drained-and-refilled
// channel allocates nothing (slots, freelist, hash and heap all keep their
// capacity; see DESIGN.md, "memory model").
//
// index_of_seq/contains/oldest_index are linear scans of the dense view.
// The channel used to carry a seq -> slot flat hash and a lazy min-heap
// for these, but with the paper's workloads a live channel holds
// single-digit messages (E12 peak in-flight is ~7.5 per process), so the
// scans stay within a cache line or two while the hash alone cost a
// ~256-byte minimum table per channel — at n = 10^7 that is ~2.5 GB of
// index for queries a scan answers faster (ISSUE 9 memory diet).
// Sequence numbers must be unique within a channel (the kernel's are
// globally unique); push() checks this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "util/check.hpp"

namespace fdp {

class MessagePool;

class Channel {
 public:
  void push(Message m);

  [[nodiscard]] bool empty() const { return order_.empty(); }
  [[nodiscard]] std::size_t size() const { return order_.size(); }

  /// The message at dense position i (arrival order modulo swap-removes —
  /// the enumeration order every scan-equivalent query is defined over).
  [[nodiscard]] const Message& peek(std::size_t i) const {
    FDP_DCHECK(i < order_.size());
    return slots_[order_[i]];
  }

  /// Lightweight range view over the live messages in dense order — the
  /// drop-in replacement for the old `const std::vector<Message>&` return
  /// (messages no longer sit contiguously; they live in pooled slots).
  class View {
   public:
    class iterator {
     public:
      using value_type = Message;
      using reference = const Message&;
      using difference_type = std::ptrdiff_t;
      iterator(const Channel* ch, std::size_t i) : ch_(ch), i_(i) {}
      reference operator*() const { return ch_->peek(i_); }
      const Message* operator->() const { return &ch_->peek(i_); }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      iterator operator++(int) {
        iterator t = *this;
        ++i_;
        return t;
      }
      friend bool operator==(iterator a, iterator b) { return a.i_ == b.i_; }
      friend bool operator!=(iterator a, iterator b) { return a.i_ != b.i_; }

     private:
      const Channel* ch_;
      std::size_t i_;
    };

    explicit View(const Channel* ch) : ch_(ch) {}
    [[nodiscard]] iterator begin() const { return {ch_, 0}; }
    [[nodiscard]] iterator end() const { return {ch_, ch_->size()}; }
    [[nodiscard]] std::size_t size() const { return ch_->size(); }
    [[nodiscard]] bool empty() const { return ch_->empty(); }
    [[nodiscard]] const Message& operator[](std::size_t i) const {
      return ch_->peek(i);
    }
    [[nodiscard]] const Message& front() const { return ch_->peek(0); }
    [[nodiscard]] const Message& back() const {
      return ch_->peek(ch_->size() - 1);
    }

   private:
    const Channel* ch_;
  };

  [[nodiscard]] View messages() const { return View(this); }

  /// Remove and return the message at dense index i (any index — non-FIFO).
  [[nodiscard]] Message take(std::size_t i);

  /// Index of the message with the smallest sequence number (oldest send),
  /// or size() when empty. Used by fair-receipt scheduling.
  [[nodiscard]] std::size_t oldest_index() const;

  /// Find a message by its kernel sequence number; size() if absent.
  [[nodiscard]] std::size_t index_of_seq(std::uint64_t seq) const;

  /// Whether a message with this sequence number is present.
  [[nodiscard]] bool contains(std::uint64_t seq) const {
    return index_of_seq(seq) < order_.size();
  }

  void clear();

  /// Rewind to empty without freeing anything: the arena, freelist and
  /// dense view keep their capacity, and spilled ref buffers of live
  /// messages are handed to `pool` (when given) instead of freed. After
  /// reset the slot-assignment order matches a freshly constructed
  /// channel, so a reused world replays byte-identically.
  void reset(MessagePool* pool);

  /// Heap bytes owned by this channel: arena, freelist and dense view plus
  /// the spilled ref buffers of live messages (capacity mode), or just the
  /// live messages' logical bytes (deterministic across world reuse —
  /// safe for worker-count-invariant output).
  [[nodiscard]] std::size_t heap_bytes(bool capacity) const;

 private:
  /// Stable message arena; dead slots keep a moved-out Message.
  std::vector<Message> slots_;
  /// Arena indices of dead slots, ready for reuse.
  std::vector<std::uint32_t> free_;
  /// Dense view: order_[i] is the arena slot of the i-th live message.
  /// Seq lookups (index_of_seq, oldest_index) are linear scans of this
  /// view: live channel sizes are single digits in steady state, where a
  /// scan of a few contiguous u32s beats a hash table whose 16-byte slots
  /// and power-of-two sizing used to cost more memory than the messages
  /// themselves (~256 B minimum per non-empty channel, ~n tables).
  std::vector<std::uint32_t> order_;
};

/// The channel slot unit IS a Message: the per-message storage cost at
/// rest is sizeof(Message) + 4 B of dense index. Keep it diet-audited
/// alongside message.hpp's asserts (a Message growing past 48 B inflates
/// every channel arena in the 10^7-process campaign).
static_assert(sizeof(Message) == 48, "channel slot unit grew");

}  // namespace fdp
