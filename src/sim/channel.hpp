// Channels.
//
// The paper's channel u.Ch is a *set* of messages with unbounded capacity,
// no loss and no ordering guarantee (non-FIFO delivery). We store messages
// in arrival order but let the scheduler remove any element, which yields
// exactly the paper's semantics: the order of the backing vector carries no
// meaning beyond supporting age-based fair-receipt scheduling.
//
// Alongside the backing vector the channel maintains two indices so that
// the kernel's hot-path queries never scan the message set:
//  * a seq -> slot hash, making index_of_seq/contains O(1) expected, and
//  * a lazily-compacted min-heap of sequence numbers, making oldest_index
//    O(log m) amortized (each pushed seq is popped at most once; stale
//    heads — seqs already taken — are discarded on query). The heap is
//    itself built lazily, on the first oldest_index() call: channels whose
//    oldest message is never queried carry no heap at all.
// Sequence numbers must be unique within a channel (the kernel's are
// globally unique); push() checks this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/message.hpp"

namespace fdp {

class Channel {
 public:
  void push(Message m);

  [[nodiscard]] bool empty() const { return msgs_.empty(); }
  [[nodiscard]] std::size_t size() const { return msgs_.size(); }

  [[nodiscard]] const Message& peek(std::size_t i) const { return msgs_[i]; }
  [[nodiscard]] const std::vector<Message>& messages() const { return msgs_; }

  /// Remove and return the message at index i (any index — non-FIFO).
  [[nodiscard]] Message take(std::size_t i);

  /// Index of the message with the smallest sequence number (oldest send),
  /// or size() when empty. Used by fair-receipt scheduling.
  [[nodiscard]] std::size_t oldest_index() const;

  /// Find a message by its kernel sequence number; size() if absent.
  [[nodiscard]] std::size_t index_of_seq(std::uint64_t seq) const;

  /// Whether a message with this sequence number is present.
  [[nodiscard]] bool contains(std::uint64_t seq) const {
    return slot_.find(seq) != slot_.end();
  }

  void clear();

 private:
  std::vector<Message> msgs_;
  /// seq -> index into msgs_.
  std::unordered_map<std::uint64_t, std::size_t> slot_;
  /// Min-heap of seqs, compacted lazily in oldest_index(). Built on the
  /// first oldest_index() call and maintained from then on; channels that
  /// are never asked for their oldest message pay nothing on push().
  mutable std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                              std::greater<>>
      min_seq_;
  mutable bool heap_synced_ = false;
};

}  // namespace fdp
