// Channels.
//
// The paper's channel u.Ch is a *set* of messages with unbounded capacity,
// no loss and no ordering guarantee (non-FIFO delivery). We expose messages
// in arrival order but let the scheduler remove any element, which yields
// exactly the paper's semantics: the dense order carries no meaning beyond
// supporting age-based fair-receipt scheduling.
//
// Storage is a slot pool: messages live in a stable arena (`slots_`), dead
// slots go onto a freelist, and a dense index array (`order_`) presents the
// same arrival-order-with-swap-remove view the old message vector had —
// peek(i) enumerates byte-identically to the previous layout, but take()
// moves one 8-byte index instead of a Message, and a drained-and-refilled
// channel allocates nothing (slots, freelist, hash and heap all keep their
// capacity; see DESIGN.md, "memory model").
//
// Alongside the arena the channel maintains two indices so that the
// kernel's hot-path queries never scan the message set:
//  * a seq -> dense-slot flat hash, making index_of_seq/contains O(1)
//    expected with no per-entry allocation, and
//  * a lazily-compacted min-heap of sequence numbers, making oldest_index
//    O(log m) amortized (each pushed seq is popped at most once; stale
//    heads — seqs already taken — are discarded on query). The heap is
//    itself built lazily, on the first oldest_index() call: channels whose
//    oldest message is never queried carry no heap at all.
// Sequence numbers must be unique within a channel (the kernel's are
// globally unique); push() checks this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "util/check.hpp"
#include "util/flat_map.hpp"
#include "util/min_heap.hpp"

namespace fdp {

class MessagePool;

class Channel {
 public:
  void push(Message m);

  [[nodiscard]] bool empty() const { return order_.empty(); }
  [[nodiscard]] std::size_t size() const { return order_.size(); }

  /// The message at dense position i (arrival order modulo swap-removes —
  /// the enumeration order every scan-equivalent query is defined over).
  [[nodiscard]] const Message& peek(std::size_t i) const {
    FDP_DCHECK(i < order_.size());
    return slots_[order_[i]];
  }

  /// Lightweight range view over the live messages in dense order — the
  /// drop-in replacement for the old `const std::vector<Message>&` return
  /// (messages no longer sit contiguously; they live in pooled slots).
  class View {
   public:
    class iterator {
     public:
      using value_type = Message;
      using reference = const Message&;
      using difference_type = std::ptrdiff_t;
      iterator(const Channel* ch, std::size_t i) : ch_(ch), i_(i) {}
      reference operator*() const { return ch_->peek(i_); }
      const Message* operator->() const { return &ch_->peek(i_); }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      iterator operator++(int) {
        iterator t = *this;
        ++i_;
        return t;
      }
      friend bool operator==(iterator a, iterator b) { return a.i_ == b.i_; }
      friend bool operator!=(iterator a, iterator b) { return a.i_ != b.i_; }

     private:
      const Channel* ch_;
      std::size_t i_;
    };

    explicit View(const Channel* ch) : ch_(ch) {}
    [[nodiscard]] iterator begin() const { return {ch_, 0}; }
    [[nodiscard]] iterator end() const { return {ch_, ch_->size()}; }
    [[nodiscard]] std::size_t size() const { return ch_->size(); }
    [[nodiscard]] bool empty() const { return ch_->empty(); }
    [[nodiscard]] const Message& operator[](std::size_t i) const {
      return ch_->peek(i);
    }
    [[nodiscard]] const Message& front() const { return ch_->peek(0); }
    [[nodiscard]] const Message& back() const {
      return ch_->peek(ch_->size() - 1);
    }

   private:
    const Channel* ch_;
  };

  [[nodiscard]] View messages() const { return View(this); }

  /// Remove and return the message at dense index i (any index — non-FIFO).
  [[nodiscard]] Message take(std::size_t i);

  /// Index of the message with the smallest sequence number (oldest send),
  /// or size() when empty. Used by fair-receipt scheduling.
  [[nodiscard]] std::size_t oldest_index() const;

  /// Find a message by its kernel sequence number; size() if absent.
  [[nodiscard]] std::size_t index_of_seq(std::uint64_t seq) const;

  /// Whether a message with this sequence number is present.
  [[nodiscard]] bool contains(std::uint64_t seq) const {
    return slot_.contains(seq);
  }

  void clear();

  /// Rewind to empty without freeing anything: the arena, freelist, hash
  /// and heap all keep their capacity, and spilled ref buffers of live
  /// messages are handed to `pool` (when given) instead of freed. After
  /// reset the slot-assignment order matches a freshly constructed
  /// channel, so a reused world replays byte-identically.
  void reset(MessagePool* pool);

 private:
  /// Stable message arena; dead slots keep a moved-out Message.
  std::vector<Message> slots_;
  /// Arena indices of dead slots, ready for reuse.
  std::vector<std::uint32_t> free_;
  /// Dense view: order_[i] is the arena slot of the i-th live message.
  std::vector<std::uint32_t> order_;
  /// seq -> dense index into order_.
  FlatMap64<std::uint32_t> slot_;
  /// Min-heap of seqs, compacted lazily in oldest_index(). Built on the
  /// first oldest_index() call and maintained from then on; channels that
  /// are never asked for their oldest message pay nothing on push().
  mutable MinHeap<std::uint64_t> min_seq_;
  mutable bool heap_synced_ = false;
};

}  // namespace fdp
