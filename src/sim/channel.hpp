// Channels.
//
// The paper's channel u.Ch is a *set* of messages with unbounded capacity,
// no loss and no ordering guarantee (non-FIFO delivery). We store messages
// in arrival order but let the scheduler remove any element, which yields
// exactly the paper's semantics: the order of the backing vector carries no
// meaning beyond supporting age-based fair-receipt scheduling.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/message.hpp"

namespace fdp {

class Channel {
 public:
  void push(Message m) { msgs_.push_back(std::move(m)); }

  [[nodiscard]] bool empty() const { return msgs_.empty(); }
  [[nodiscard]] std::size_t size() const { return msgs_.size(); }

  [[nodiscard]] const Message& peek(std::size_t i) const { return msgs_[i]; }
  [[nodiscard]] const std::vector<Message>& messages() const { return msgs_; }

  /// Remove and return the message at index i (any index — non-FIFO).
  [[nodiscard]] Message take(std::size_t i);

  /// Index of the message with the smallest sequence number (oldest send),
  /// or size() when empty. Used by fair-receipt scheduling.
  [[nodiscard]] std::size_t oldest_index() const;

  /// Find a message by its kernel sequence number; size() if absent.
  [[nodiscard]] std::size_t index_of_seq(std::uint64_t seq) const;

  void clear() { msgs_.clear(); }

 private:
  std::vector<Message> msgs_;
};

}  // namespace fdp
