// Process base class.
//
// A process owns protocol variables plus the system-managed read-only
// `mode` (staying/leaving) and life-cycle state (awake/asleep/gone). All
// interaction with the outside world happens through the Context passed to
// the two action entry points; a process cannot mutate channels or other
// processes directly, which is what lets the kernel audit every action's
// effect on the process graph (see core/primitives.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/ids.hpp"
#include "sim/message.hpp"

namespace fdp {

class Context;
class Rng;

class Process {
 public:
  Process(Ref self, Mode mode, std::uint64_t key)
      : self_(self), mode_(mode), key_(key) {}
  virtual ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// The periodically executed timeout action (guard = true). Only ever
  /// invoked while the process is awake.
  virtual void on_timeout(Context& ctx) = 0;

  /// Message delivery. Invoked for awake or asleep processes (an asleep
  /// process is woken by the kernel immediately before this call).
  virtual void on_message(Context& ctx, const Message& m) = 0;

  /// Enumerate every process reference currently stored in local memory
  /// together with the stored knowledge about it. This defines the
  /// *explicit edges* of the process graph; subclasses must report all
  /// reference-holding variables (N, anchor, overlay links, mlist, ...).
  virtual void collect_refs(std::vector<RefInfo>& out) const = 0;

  /// Human-readable protocol name for traces.
  [[nodiscard]] virtual const char* protocol_name() const = 0;

  /// Bytes this process occupies: object size plus owned heap storage.
  /// `capacity` counts allocated backing stores; false counts only live
  /// entries (deterministic for a given action trace, so it may feed
  /// worker-count-invariant driver output). The default covers only the
  /// base-class footprint; the shipped protocol types override it, and a
  /// test type that does not override merely under-reports its bucket.
  [[nodiscard]] virtual std::size_t footprint_bytes(bool capacity) const {
    (void)capacity;
    return sizeof(Process);
  }

  /// Runtime fault hooks (driven by the FaultScheduler, sim/fault.hpp).
  /// Both must leave the process in a *legal* copy-store-send state: the
  /// set of distinct references stored afterwards must equal the set
  /// stored before (knowledge about them may be arbitrarily wrong, and
  /// duplicate copies may be fused) — dropping the last copy of a
  /// reference would delete a process-graph edge, which no fault model in
  /// this repo is allowed to do (DESIGN.md "Fault model"). Return false
  /// when the process type does not support the fault; the injector then
  /// skips the victim.
  virtual bool fault_crash_restart(Rng& rng) {
    (void)rng;
    return false;
  }
  /// Flip stored mode knowledge / juggle the anchor without restarting.
  virtual bool fault_scramble(Rng& rng) {
    (void)rng;
    return false;
  }

  [[nodiscard]] Ref self() const { return self_; }
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::uint64_t key() const { return key_; }
  [[nodiscard]] LifeState life() const { return life_; }

  /// Information about oneself — always valid (paper: "the information
  /// sent about oneself is always valid").
  [[nodiscard]] RefInfo self_info() const {
    return RefInfo{self_, to_info(mode_), key_};
  }

 private:
  friend class World;
  friend class ShardedWorld;  // buffered life transitions at epoch barriers
  friend class Substrate;     // set_process_life, for non-sim runtimes

  Ref self_;
  Mode mode_;
  std::uint64_t key_;
  LifeState life_ = LifeState::Awake;
};

}  // namespace fdp
