// The Substrate: the protocol/execution boundary.
//
// The paper's protocols are copy-store-send programs over an abstract
// message-passing substrate: a process can be delivered a message, run its
// timeout, send, consult an oracle, and exit/sleep — nothing in the
// protocol layer depends on *how* actions are executed or messages move.
// This interface makes that boundary explicit. Everything above it
// (oracles, monitors, snapshots, Φ, legitimacy/topology checks, workload
// generators) observes the system exclusively through this surface, so the
// same protocol code and the same analysis stack run over
//
//  * the deterministic simulator (sim/world.hpp, sim/sharded_world.hpp):
//    seeded schedulers, byte-identical traces, logical step clock; and
//  * the live async-socket runtime (net/runtime.hpp): event-loop actors
//    speaking the versioned wire format over UDP/loopback, wall-clock (or
//    deterministic event-count) time.
//
// The split of responsibilities:
//  * population/state reads: size / process / life / mode / channel_depth /
//    each_pending — enough to take a full process-graph Snapshot;
//  * clock(): a monotone logical time stamped onto observations (steps for
//    the simulator, events or microseconds for the socket runtime);
//  * inject(): out-of-band message admission (scenario construction,
//    workload generators issuing requests at a node);
//  * oracle_query() and its support queries quiet_count /
//    incident_nongone / referenced_by_other — the oracle implementations
//    in core/oracle.cpp are written against these, so one oracle
//    definition serves every substrate that can answer them.
//
// Substrates are the only components allowed to drive Process life-cycle
// transitions and action contexts; the protected helpers at the bottom are
// the single point where that capability is handed to implementations.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/ids.hpp"

namespace fdp {

class Process;
struct Message;
class Substrate;

/// An oracle is a predicate over the current system state and the calling
/// process (paper Section 1.3). Installed once per substrate. Written
/// against the Substrate surface so the same oracle runs on the simulator
/// and (where the runtime can answer the support queries) on the live
/// socket runtime.
using OracleFn = std::function<bool(const Substrate&, ProcessId)>;

class Substrate {
 public:
  virtual ~Substrate();

  // --- population / per-process state ---

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual const Process& process(ProcessId id) const = 0;
  [[nodiscard]] virtual LifeState life(ProcessId id) const = 0;
  [[nodiscard]] bool gone(ProcessId id) const {
    return life(id) == LifeState::Gone;
  }
  /// True departure intention of `id` (paper: mode(u)); reads the process.
  [[nodiscard]] Mode mode(ProcessId id) const;

  // --- clock ---

  /// Monotone logical time: the simulator's step count, the socket
  /// runtime's event count (deterministic mode) or microseconds since
  /// start (wall-clock mode). Only ordering and differences are
  /// meaningful; units are substrate-defined.
  [[nodiscard]] virtual std::uint64_t clock() const = 0;

  // --- messaging ---

  /// Admit a message into `to`'s pending set from OUTSIDE any action:
  /// scenario construction, adversarial duplication, or a workload
  /// generator issuing a request at an access node. Observers see it as
  /// an inject event.
  virtual void inject(Ref to, Message m) = 0;

  /// Number of pending (admitted, not yet delivered) messages for `id` —
  /// the simulator's channel size, the socket runtime's inbox depth.
  [[nodiscard]] virtual std::size_t channel_depth(ProcessId id) const = 0;

  /// Enumerate `id`'s pending messages. The enumeration order is
  /// substrate-defined; snapshot construction and Φ only need the
  /// multiset. O(channel_depth(id)) — a slow path by contract.
  virtual void each_pending(
      ProcessId id, const std::function<void(const Message&)>& fn) const = 0;

  // --- oracle ---

  /// Consult the installed oracle on behalf of `caller` (the paper's
  /// "relying on an oracle"; only ever reached from a leaving process's
  /// timeout). Implementations without an installed oracle must treat the
  /// consult as a contract violation.
  [[nodiscard]] virtual bool oracle_query(ProcessId caller) const = 0;

  // --- oracle support queries (see core/oracle.cpp) ---

  /// Number of asleep processes with no pending messages (hibernation
  /// candidates). When zero, "relevant" degenerates to "non-gone" and
  /// snapshot-free oracle fast paths apply.
  [[nodiscard]] virtual std::uint64_t quiet_count() const = 0;

  /// Number of distinct non-gone processes q != p sharing a process-graph
  /// edge with p in either direction (an explicit or implicit reference
  /// instance held by a non-gone process).
  [[nodiscard]] virtual std::size_t incident_nongone(ProcessId p) const = 0;

  /// Whether any non-gone process q != p holds a reference instance of p
  /// (stored or pending in q's channel) — the NIDEC oracle's scan, minus
  /// the caller's own channel.
  [[nodiscard]] virtual bool referenced_by_other(ProcessId p) const = 0;

  /// Implementation name for tables, traces and diagnostics ("sim",
  /// "net/loopback", "net/udp").
  [[nodiscard]] virtual const char* substrate_name() const = 0;

 protected:
  /// Life-cycle transitions are substrate business: Process befriends
  /// Substrate, and implementations route every transition through here
  /// (plus whatever index bookkeeping they maintain themselves).
  static void set_process_life(Process& p, LifeState s);
};

}  // namespace fdp
