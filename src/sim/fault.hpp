// Runtime fault injection.
//
// ChaosScheduler (sim/chaos.hpp) perturbs *delivery*; the FaultScheduler
// perturbs *running state*. It wraps any scheduler and, at scheduled or
// stochastic step points, injects the mid-flight faults the paper's
// self-stabilization argument (Lemmas 2–3) promises to survive:
//
//  * crash-restart — a victim wipes its local protocol state and rebuilds
//    an arbitrary-but-legal copy-store-send state from the references it
//    held (Process::fault_crash_restart). No reference is destroyed, so
//    Lemma 2 safety must survive; Φ may jump and must re-drain.
//  * scramble — stored mode knowledge is flipped / the anchor demoted
//    without a full restart (Process::fault_scramble).
//  * duplication burst — a batch of adversarial message duplications
//    (copies only; an adversarial Introduction, like ChaosScheduler's
//    p_duplicate but in bursts).
//  * partition window — for `partition_window` steps, deliveries INTO a
//    randomly chosen victim side are withheld, then released. Since the
//    kernel does not track message origin, the cut is modeled as the
//    victim side's inbound links being down; delivery is only delayed,
//    never denied (bounded retry falls back to a timeout on the live
//    side, and when nothing but blocked deliveries is enabled one
//    delivery leaks through, counted, so fair receipt still holds).
//
// Faults draw from their own seeded Rng stream (like ChaosScheduler), so a
// fault-injected run replays byte-identically for any worker count and
// across World::reset reuse. Every injection is announced to observers via
// World::announce_fault; monitors re-baseline there (a fault may legally
// jump Φ), and the RecoveryMonitor (analysis/monitors.hpp) measures
// steps-to-Φ-drain and steps-to-re-legitimacy per perturbation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/world.hpp"

namespace fdp {

/// One scheduled fault. `count` is the number of victims (crash/scramble)
/// or the burst size (DuplicateBurst; 0 means FaultPlan::duplicate_burst);
/// it is ignored for PartitionStart (the window length comes from the
/// plan).
struct FaultEvent {
  std::uint64_t step = 0;
  FaultKind kind = FaultKind::CrashRestart;
  std::uint32_t count = 1;
};

/// A campaign description: explicit events plus per-step probabilities for
/// a stochastic regime that lasts until `stochastic_until`.
struct FaultPlan {
  /// Scheduled events, non-decreasing by step (validate() enforces this).
  std::vector<FaultEvent> events;

  // Per-step probabilities, rolled once per world step while
  // steps < stochastic_until.
  double p_crash = 0.0;
  double p_scramble = 0.0;
  double p_duplicate = 0.0;
  double p_partition = 0.0;
  std::uint64_t stochastic_until = 0;

  /// Duplications per DuplicateBurst event (when the event doesn't carry
  /// its own count).
  std::uint32_t duplicate_burst = 4;
  /// Steps a partition window stays closed.
  std::uint64_t partition_window = 64;

  /// Base seed of the fault stream; mixed with the scenario seed by
  /// run_to_legitimacy so trials stay independent.
  std::uint64_t seed = 0xFA17ED;

  /// Convenience: append a scheduled event.
  FaultPlan& at(std::uint64_t step, FaultKind kind, std::uint32_t count = 1) {
    events.push_back(FaultEvent{step, kind, count});
    return *this;
  }

  /// True when the plan injects nothing (no events, no stochastic regime).
  [[nodiscard]] bool empty() const {
    return events.empty() &&
           (stochastic_until == 0 ||
            (p_crash <= 0.0 && p_scramble <= 0.0 && p_duplicate <= 0.0 &&
             p_partition <= 0.0));
  }

  /// "" when well-formed, else a human-readable complaint.
  [[nodiscard]] std::string validate() const;
};

class FaultScheduler final : public Scheduler {
 public:
  /// `seed` seeds the private fault stream (callers mix plan.seed with the
  /// trial seed; see run_to_legitimacy).
  FaultScheduler(std::unique_ptr<Scheduler> inner, FaultPlan plan,
                 std::uint64_t seed)
      : inner_(std::move(inner)), plan_(std::move(plan)), fault_rng_(seed) {}

  /// The world must be passed mutably for fault injection; the Scheduler
  /// interface is const, so a FaultScheduler is bound to one world.
  void bind(World* world) { world_ = world; }

  ActionChoice next(const KernelView& view, Rng& rng) override;

  /// The wrapped scheduler (run loops read per-kind state off it, e.g.
  /// RoundScheduler::rounds()).
  [[nodiscard]] Scheduler* inner() const { return inner_.get(); }

  /// True once every scheduled event fired, the stochastic regime is over
  /// and no partition window is open — i.e. the run can terminate once
  /// legitimate without cutting a perturbation short.
  [[nodiscard]] bool exhausted(std::uint64_t now) const {
    return cursor_ >= plan_.events.size() && now >= plan_.stochastic_until &&
           partition_until_ <= now;
  }

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t scrambles() const { return scrambles_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t partitions() const { return partitions_; }
  /// Delivery choices vetoed inside partition windows.
  [[nodiscard]] std::uint64_t withheld() const { return withheld_; }
  /// Deliveries let through a partition because nothing else was enabled.
  [[nodiscard]] std::uint64_t partition_leaks() const {
    return partition_leaks_;
  }
  /// Total applied perturbations (crash + scramble + burst + partition
  /// events — what the RecoveryMonitor sees as `applied` announcements).
  [[nodiscard]] std::uint64_t injected() const {
    return crashes_ + scrambles_ + bursts_ + partitions_;
  }

 private:
  void apply(const FaultEvent& ev, std::uint64_t now);

  std::unique_ptr<Scheduler> inner_;
  FaultPlan plan_;
  Rng fault_rng_;
  World* world_ = nullptr;
  std::size_t cursor_ = 0;  ///< next unfired scheduled event
  std::uint64_t last_stochastic_step_ = ~std::uint64_t{0};
  std::uint64_t partition_until_ = 0;
  /// A window is open and its PartitionEnd has not been announced yet.
  bool window_open_ = false;
  std::vector<char> blocked_;  ///< inbound-blocked side of the open window
  std::uint64_t crashes_ = 0;
  std::uint64_t scrambles_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t bursts_ = 0;
  std::uint64_t partitions_ = 0;
  std::uint64_t withheld_ = 0;
  std::uint64_t partition_leaks_ = 0;
};

}  // namespace fdp
