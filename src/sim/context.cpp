#include "sim/context.hpp"

#include "sim/substrate.hpp"
#include "util/check.hpp"

namespace fdp {

void Context::send(Ref to, Message m) {
  FDP_CHECK_MSG(to.valid(), "send to null reference");
  sends_->emplace_back(to, std::move(m));
}

bool Context::oracle() const {
  if (oracle_pre_ != nullptr) {
    // Sharded epoch execution: the verdict was precomputed at the epoch
    // barrier (sim/sharded_world.hpp). A zero entry means the kernel did
    // not anticipate this consult — a bug in the precompute filter, not a
    // legal "ask again later".
    FDP_CHECK_MSG(*oracle_pre_ != 0,
                  "oracle consulted without an epoch precompute");
    return *oracle_pre_ == 2;
  }
  return sub_->oracle_query(self_.id());
}

}  // namespace fdp
