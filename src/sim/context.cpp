#include "sim/context.hpp"

#include "sim/world.hpp"
#include "util/check.hpp"

namespace fdp {

void Context::send(Ref to, Message m) {
  FDP_CHECK_MSG(to.valid(), "send to null reference");
  sends_->emplace_back(to, std::move(m));
}

bool Context::oracle() const {
  return world_->oracle_value(self_.id());
}

}  // namespace fdp
