// Fault injection.
//
// The paper's channels never lose messages (loss would destroy references
// and no local protocol could preserve connectivity), but they are allowed
// to behave arbitrarily otherwise. ChaosScheduler wraps any scheduler and
// injects faults at delivery time:
//
//  * duplication — with probability p_duplicate, a delivered message is
//    re-posted to the same channel first. Duplication only COPIES
//    references (it is an adversarial Introduction), so the departure
//    protocol must tolerate it: safety and liveness must survive. Tests
//    use this to probe robustness beyond the model.
//  * loss — with probability p_drop, a message is removed from its channel
//    without being delivered. This BREAKS the model (references are
//    destroyed); the point of supporting it is negative testing: the
//    safety monitors must detect the resulting disconnections, proving the
//    instrumentation is not vacuous.
//
// Faults draw from their own Rng stream so a chaos run stays reproducible.
#pragma once

#include <memory>

#include "sim/scheduler.hpp"
#include "sim/world.hpp"

namespace fdp {

class ChaosScheduler final : public Scheduler {
 public:
  ChaosScheduler(std::unique_ptr<Scheduler> inner, double p_duplicate,
                 double p_drop, std::uint64_t seed)
      : inner_(std::move(inner)),
        p_duplicate_(p_duplicate),
        p_drop_(p_drop),
        chaos_rng_(seed) {}

  /// The world must be passed mutably for fault injection; the Scheduler
  /// interface is const, so ChaosScheduler is bound to one world.
  void bind(World* world) { world_ = world; }

  ActionChoice next(const KernelView& view, Rng& rng) override;

  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::unique_ptr<Scheduler> inner_;
  double p_duplicate_;
  double p_drop_;
  Rng chaos_rng_;
  World* world_ = nullptr;
  std::uint64_t duplicated_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace fdp
