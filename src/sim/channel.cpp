#include "sim/channel.hpp"

#include <utility>

#include "sim/message_pool.hpp"
#include "util/check.hpp"

namespace fdp {

void Channel::push(Message m) {
  const bool fresh = slot_.emplace(
      m.seq, static_cast<std::uint32_t>(order_.size()));
  FDP_CHECK_MSG(fresh, "duplicate sequence number pushed into channel");
  if (heap_synced_) min_seq_.push(m.seq);
  std::uint32_t s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
    slots_[s] = std::move(m);
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(m));
  }
  order_.push_back(s);
}

Message Channel::take(std::size_t i) {
  FDP_CHECK(i < order_.size());
  const std::uint32_t s = order_[i];
  Message m = std::move(slots_[s]);
  slot_.erase(m.seq);
  free_.push_back(s);
  if (i != order_.size() - 1) {
    order_[i] = order_.back();
    slot_.insert_or_assign(slots_[order_[i]].seq,
                           static_cast<std::uint32_t>(i));
  }
  order_.pop_back();
  // m.seq's heap entry (if any) goes stale; oldest_index() discards it
  // lazily.
  return m;
}

std::size_t Channel::oldest_index() const {
  if (!heap_synced_) {
    // First oldest-message query on this channel: build the heap from the
    // live message set. O(m) once; maintained incrementally afterwards.
    min_seq_.clear();
    for (std::size_t i = 0; i < order_.size(); ++i)
      min_seq_.push(slots_[order_[i]].seq);
    heap_synced_ = true;
  }
  while (!min_seq_.empty()) {
    const std::uint32_t* idx = slot_.find(min_seq_.top());
    if (idx != nullptr) return *idx;
    min_seq_.pop();  // stale: that message was taken
  }
  return order_.size();
}

std::size_t Channel::index_of_seq(std::uint64_t seq) const {
  const std::uint32_t* idx = slot_.find(seq);
  return idx != nullptr ? *idx : order_.size();
}

void Channel::clear() { reset(nullptr); }

void Channel::reset(MessagePool* pool) {
  if (pool != nullptr) {
    // Only live slots can hold a spilled buffer (take() move-empties the
    // dead ones), so harvesting the dense view covers everything.
    for (const std::uint32_t s : order_) pool->recycle(slots_[s]);
  }
  order_.clear();
  slot_.clear();
  min_seq_.clear();
  heap_synced_ = false;
  // Refill the freelist so pushes reuse slots in ascending arena order —
  // the same order a fresh channel would assign them.
  free_.clear();
  for (std::uint32_t s = static_cast<std::uint32_t>(slots_.size()); s > 0;
       --s)
    free_.push_back(s - 1);
}

}  // namespace fdp
