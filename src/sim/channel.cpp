#include "sim/channel.hpp"

#include <utility>

#include "util/check.hpp"

namespace fdp {

Message Channel::take(std::size_t i) {
  FDP_CHECK(i < msgs_.size());
  Message m = std::move(msgs_[i]);
  msgs_[i] = std::move(msgs_.back());
  msgs_.pop_back();
  return m;
}

std::size_t Channel::oldest_index() const {
  std::size_t best = msgs_.size();
  std::uint64_t best_seq = ~0ULL;
  for (std::size_t i = 0; i < msgs_.size(); ++i) {
    if (msgs_[i].seq < best_seq) {
      best_seq = msgs_[i].seq;
      best = i;
    }
  }
  return best;
}

std::size_t Channel::index_of_seq(std::uint64_t seq) const {
  for (std::size_t i = 0; i < msgs_.size(); ++i)
    if (msgs_[i].seq == seq) return i;
  return msgs_.size();
}

}  // namespace fdp
