#include "sim/channel.hpp"

#include <utility>

#include "sim/message_pool.hpp"
#include "util/check.hpp"

namespace fdp {

void Channel::push(Message m) {
  FDP_CHECK_MSG(index_of_seq(m.seq) == order_.size(),
                "duplicate sequence number pushed into channel");
  std::uint32_t s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
    slots_[s] = std::move(m);
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(m));
  }
  order_.push_back(s);
}

Message Channel::take(std::size_t i) {
  FDP_CHECK(i < order_.size());
  const std::uint32_t s = order_[i];
  Message m = std::move(slots_[s]);
  free_.push_back(s);
  if (i != order_.size() - 1) order_[i] = order_.back();
  order_.pop_back();
  return m;
}

std::size_t Channel::oldest_index() const {
  std::size_t best = order_.size();
  std::uint64_t best_seq = ~std::uint64_t{0};
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const std::uint64_t s = slots_[order_[i]].seq;
    if (s <= best_seq) {
      best_seq = s;
      best = i;
    }
  }
  return best;
}

std::size_t Channel::index_of_seq(std::uint64_t seq) const {
  for (std::size_t i = 0; i < order_.size(); ++i)
    if (slots_[order_[i]].seq == seq) return i;
  return order_.size();
}

std::size_t Channel::heap_bytes(bool capacity) const {
  if (!capacity) {
    // Deterministic live bytes: one slot per live message plus its spilled
    // refs (spill size is trace-determined; pooled slack is not counted).
    std::size_t b = order_.size() * (sizeof(Message) + sizeof(std::uint32_t));
    for (const std::uint32_t s : order_) b += slots_[s].refs.heap_bytes();
    return b;
  }
  std::size_t b = slots_.capacity() * sizeof(Message) +
                  (free_.capacity() + order_.capacity()) *
                      sizeof(std::uint32_t);
  for (const std::uint32_t s : order_) b += slots_[s].refs.heap_bytes();
  return b;
}

void Channel::clear() { reset(nullptr); }

void Channel::reset(MessagePool* pool) {
  if (pool != nullptr) {
    // Only live slots can hold a spilled buffer (take() move-empties the
    // dead ones), so harvesting the dense view covers everything.
    for (const std::uint32_t s : order_) pool->recycle(slots_[s]);
  }
  order_.clear();
  // Refill the freelist so pushes reuse slots in ascending arena order —
  // the same order a fresh channel would assign them.
  free_.clear();
  for (std::uint32_t s = static_cast<std::uint32_t>(slots_.size()); s > 0;
       --s)
    free_.push_back(s - 1);
}

}  // namespace fdp
