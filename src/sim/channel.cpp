#include "sim/channel.hpp"

#include <utility>

#include "util/check.hpp"

namespace fdp {

void Channel::push(Message m) {
  const bool fresh = slot_.emplace(m.seq, msgs_.size()).second;
  FDP_CHECK_MSG(fresh, "duplicate sequence number pushed into channel");
  if (heap_synced_) min_seq_.push(m.seq);
  msgs_.push_back(std::move(m));
}

Message Channel::take(std::size_t i) {
  FDP_CHECK(i < msgs_.size());
  Message m = std::move(msgs_[i]);
  slot_.erase(m.seq);
  if (i != msgs_.size() - 1) {
    msgs_[i] = std::move(msgs_.back());
    slot_[msgs_[i].seq] = i;
  }
  msgs_.pop_back();
  // m.seq's heap entry (if any) goes stale; oldest_index() discards it
  // lazily.
  return m;
}

std::size_t Channel::oldest_index() const {
  if (!heap_synced_) {
    // First oldest-message query on this channel: build the heap from the
    // live message set. O(m) once; maintained incrementally afterwards.
    min_seq_ = {};
    for (const Message& m : msgs_) min_seq_.push(m.seq);
    heap_synced_ = true;
  }
  while (!min_seq_.empty()) {
    const auto it = slot_.find(min_seq_.top());
    if (it != slot_.end()) return it->second;
    min_seq_.pop();  // stale: that message was taken
  }
  return msgs_.size();
}

std::size_t Channel::index_of_seq(std::uint64_t seq) const {
  const auto it = slot_.find(seq);
  return it != slot_.end() ? it->second : msgs_.size();
}

void Channel::clear() {
  msgs_.clear();
  slot_.clear();
  min_seq_ = {};
  heap_synced_ = false;
}

}  // namespace fdp
