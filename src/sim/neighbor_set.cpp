#include "sim/neighbor_set.hpp"

#include "util/check.hpp"

namespace fdp {

NeighborSet::InsertResult NeighborSet::insert(const RefInfo& info) {
  FDP_CHECK(info.ref.valid());
  if (info.ref == owner_) return InsertResult::SelfDrop;
  auto [it, added] = entries_.insert_or_assign(
      info.ref, Entry{info.mode, info.key});
  (void)it;
  return added ? InsertResult::Added : InsertResult::Fused;
}

bool NeighborSet::erase(Ref r) { return entries_.erase(r) > 0; }

ModeInfo NeighborSet::mode_of(Ref r) const {
  auto it = entries_.find(r);
  FDP_CHECK_MSG(it != entries_.end(), "mode_of on absent neighbor");
  return it->second.mode;
}

std::uint64_t NeighborSet::key_of(Ref r) const {
  auto it = entries_.find(r);
  FDP_CHECK_MSG(it != entries_.end(), "key_of on absent neighbor");
  return it->second.key;
}

void NeighborSet::set_mode(Ref r, ModeInfo m) {
  auto it = entries_.find(r);
  FDP_CHECK_MSG(it != entries_.end(), "set_mode on absent neighbor");
  it->second.mode = m;
}

std::vector<RefInfo> NeighborSet::snapshot() const {
  std::vector<RefInfo> out;
  out.reserve(entries_.size());
  for (const auto& [ref, e] : entries_)
    out.push_back(RefInfo{ref, e.mode, e.key});
  return out;
}

}  // namespace fdp
