#include "sim/neighbor_set.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fdp {

namespace {

struct RefLess {
  bool operator()(const std::pair<Ref, NeighborSet::Entry>& e, Ref r) const {
    return e.first < r;
  }
};

}  // namespace

const std::pair<Ref, NeighborSet::Entry>* NeighborSet::find(Ref r) const {
  const auto it =
      std::lower_bound(entries_.begin(), entries_.end(), r, RefLess{});
  if (it == entries_.end() || !(it->first == r)) return nullptr;
  return &*it;
}

std::pair<Ref, NeighborSet::Entry>* NeighborSet::find(Ref r) {
  return const_cast<std::pair<Ref, Entry>*>(
      static_cast<const NeighborSet*>(this)->find(r));
}

NeighborSet::InsertResult NeighborSet::insert(const RefInfo& info) {
  FDP_CHECK(info.ref.valid());
  if (info.ref == owner_) return InsertResult::SelfDrop;
  const auto it = std::lower_bound(entries_.begin(), entries_.end(),
                                   info.ref, RefLess{});
  if (it != entries_.end() && it->first == info.ref) {
    it->second = Entry{info.mode, info.key};
    return InsertResult::Fused;
  }
  entries_.insert(it, {info.ref, Entry{info.mode, info.key}});
  return InsertResult::Added;
}

bool NeighborSet::erase(Ref r) {
  const auto it =
      std::lower_bound(entries_.begin(), entries_.end(), r, RefLess{});
  if (it == entries_.end() || !(it->first == r)) return false;
  entries_.erase(it);
  return true;
}

ModeInfo NeighborSet::mode_of(Ref r) const {
  const auto* e = find(r);
  FDP_CHECK_MSG(e != nullptr, "mode_of on absent neighbor");
  return e->second.mode;
}

std::uint64_t NeighborSet::key_of(Ref r) const {
  const auto* e = find(r);
  FDP_CHECK_MSG(e != nullptr, "key_of on absent neighbor");
  return e->second.key;
}

void NeighborSet::set_mode(Ref r, ModeInfo m) {
  auto* e = find(r);
  FDP_CHECK_MSG(e != nullptr, "set_mode on absent neighbor");
  e->second.mode = m;
}

std::vector<RefInfo> NeighborSet::snapshot() const {
  std::vector<RefInfo> out;
  out.reserve(entries_.size());
  append_to(out);
  return out;
}

void NeighborSet::append_to(std::vector<RefInfo>& out) const {
  for (const auto& [ref, e] : entries_)
    out.push_back(RefInfo{ref, e.mode, e.key});
}

}  // namespace fdp
