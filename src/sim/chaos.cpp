#include "sim/chaos.hpp"

#include "sim/kernel_view.hpp"
#include "util/check.hpp"

namespace fdp {

ActionChoice ChaosScheduler::next(const KernelView& view, Rng& rng) {
  FDP_CHECK_MSG(world_ != nullptr,
                "ChaosScheduler::bind(world) must be called before next()");
  FDP_CHECK_MSG(world_ == &view.world(),
                "ChaosScheduler is bound to a different world");
  // Bounded retry: dropping a message invalidates the inner scheduler's
  // choice, so ask again.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const ActionChoice c = inner_->next(view, rng);
    if (c.kind != ActionChoice::Kind::Deliver) return c;
    if (p_drop_ > 0.0 && chaos_rng_.chance(p_drop_)) {
      if (world_->discard_message(c.proc, c.msg_seq)) {
        ++dropped_;
        continue;  // message gone; pick another action
      }
    }
    if (p_duplicate_ > 0.0 && chaos_rng_.chance(p_duplicate_)) {
      if (world_->duplicate_message(c.proc, c.msg_seq)) ++duplicated_;
    }
    return c;
  }
  return inner_->next(view, rng);
}

}  // namespace fdp
