// The World: the complete system state of the paper's model.
//
// A World owns the processes, their channels and the step loop. One call to
// step() executes exactly one atomic action chosen by a Scheduler — the
// paper's "computation is an infinite fair sequence of system states such
// that s_{i+1} is obtained by executing an action enabled in s_i".
//
// The kernel is single-threaded by design: the paper's concurrency model is
// interleaving (atomic actions), so simulating it with real threads would
// only re-derive an interleaving nondeterministically; a seeded scheduler
// gives the same adversarial power reproducibly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/channel.hpp"
#include "sim/context.hpp"
#include "sim/ids.hpp"
#include "sim/observer.hpp"
#include "sim/process.hpp"
#include "sim/scheduler.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fdp {

/// An oracle is a predicate over the current system state and the calling
/// process (paper Section 1.3). Installed once per World.
using OracleFn = std::function<bool(const World&, ProcessId)>;

class World {
 public:
  explicit World(std::uint64_t seed = 1);

  // --- population ---

  /// Construct a process of type P in this world. P's constructor must
  /// accept (Ref self, Mode mode, std::uint64_t key, Args...).
  template <typename P, typename... Args>
  Ref spawn(Mode mode, std::uint64_t key, Args&&... args) {
    const ProcessId id = static_cast<ProcessId>(procs_.size());
    const Ref r = Ref::make(id);
    procs_.push_back(
        std::make_unique<P>(r, mode, key, std::forward<Args>(args)...));
    channels_.emplace_back();
    return r;
  }

  [[nodiscard]] std::size_t size() const { return procs_.size(); }

  [[nodiscard]] const Process& process(ProcessId id) const {
    FDP_CHECK(id < procs_.size());
    return *procs_[id];
  }
  /// Mutable access — for scenario construction and tests only; protocol
  /// code never holds a World.
  [[nodiscard]] Process& process_mut(ProcessId id) {
    FDP_CHECK(id < procs_.size());
    return *procs_[id];
  }
  /// Typed mutable access.
  template <typename P>
  [[nodiscard]] P& process_as(ProcessId id) {
    auto* p = dynamic_cast<P*>(&process_mut(id));
    FDP_CHECK_MSG(p != nullptr, "process type mismatch");
    return *p;
  }

  [[nodiscard]] const Channel& channel(ProcessId id) const {
    FDP_CHECK(id < channels_.size());
    return channels_[id];
  }

  [[nodiscard]] Mode mode(ProcessId id) const { return process(id).mode(); }
  [[nodiscard]] LifeState life(ProcessId id) const {
    return process(id).life();
  }
  [[nodiscard]] bool gone(ProcessId id) const {
    return life(id) == LifeState::Gone;
  }

  // --- scenario construction ---

  /// Inject a message into `to`'s channel from outside any action (used to
  /// build arbitrary initial states with in-flight messages). Assigns
  /// kernel bookkeeping like a regular send.
  void post(Ref to, Message m);

  /// Force a life state during initial-state construction (e.g. FSP
  /// scenarios that start with asleep processes).
  void force_life(ProcessId id, LifeState s) { procs_[id]->life_ = s; }

  // --- fault injection (see sim/chaos.hpp) ---

  /// Remove a message without delivering it. Model-breaking (destroys the
  /// references it carries); used only for negative testing. Returns true
  /// when the message existed.
  bool discard_message(ProcessId id, std::uint64_t seq);

  /// Enqueue a copy of an existing message (fresh sequence number) —
  /// adversarial duplication; only copies references, so protocols must
  /// tolerate it. Returns true when the message existed.
  bool duplicate_message(ProcessId id, std::uint64_t seq);

  /// Drop every message in a channel (state reconstruction by the model
  /// checker; model-breaking if used mid-run).
  void clear_channel(ProcessId id) {
    FDP_CHECK(id < channels_.size());
    channels_[id].clear();
  }

  // --- oracle ---

  void set_oracle(OracleFn fn) { oracle_ = std::move(fn); }
  [[nodiscard]] bool oracle_value(ProcessId id) const;

  // --- observers ---

  void add_observer(Observer* obs) { observers_.push_back(obs); }
  void remove_observer(Observer* obs);

  // --- execution ---

  /// Execute one atomic action chosen by `sched`. Returns false when the
  /// scheduler reports no enabled action (terminal configuration).
  bool step(Scheduler& sched);

  /// Run until `done(world)` holds or `max_steps` actions executed.
  /// Returns true when `done` held (checked before each step and after the
  /// last one).
  bool run_until(Scheduler& sched, std::uint64_t max_steps,
                 const std::function<bool(const World&)>& done);

  // --- scheduler support queries ---

  /// Ids of awake processes (timeout enabled).
  [[nodiscard]] std::vector<ProcessId> awake_ids() const;
  /// Ids of non-gone processes with non-empty channels (delivery enabled).
  [[nodiscard]] std::vector<ProcessId> deliverable_ids() const;
  /// Total messages in channels of non-gone processes.
  [[nodiscard]] std::uint64_t live_message_count() const;
  /// (proc, seq) of the globally oldest live message; proc == kNoProcess
  /// when there is none.
  [[nodiscard]] std::pair<ProcessId, std::uint64_t> oldest_live_message()
      const;

  // --- statistics ---

  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t sends() const { return sends_; }
  [[nodiscard]] std::uint64_t exits() const { return exits_; }
  [[nodiscard]] std::uint64_t sleeps() const { return sleeps_; }
  [[nodiscard]] std::uint64_t wakes() const { return wakes_; }

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  void execute(ActionChoice choice);
  void finish_action(ActionRecord* rec, Context& ctx, Process& p);

  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<Channel> channels_;
  std::vector<Observer*> observers_;
  OracleFn oracle_;
  Rng rng_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t steps_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t exits_ = 0;
  std::uint64_t sleeps_ = 0;
  std::uint64_t wakes_ = 0;
};

}  // namespace fdp
