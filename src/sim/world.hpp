// The World: the complete system state of the paper's model.
//
// A World owns the processes, their channels and the step loop. One call to
// step() executes exactly one atomic action chosen by a Scheduler — the
// paper's "computation is an infinite fair sequence of system states such
// that s_{i+1} is obtained by executing an action enabled in s_i".
//
// The kernel is single-threaded by design: the paper's concurrency model is
// interleaving (atomic actions), so simulating it with real threads would
// only re-derive an interleaving nondeterministically; a seeded scheduler
// gives the same adversarial power reproducibly.
//
// Every scheduler-support query is backed by indices the kernel maintains
// incrementally inside post/execute/discard/life transitions, so per-step
// cost is independent of world size (see DESIGN.md, "kernel complexity"):
//  * a Fenwick tree over "awake" indicators — O(log n) count/sample/
//    next-awake, in ascending-id order (byte-identical to the scans these
//    replaced);
//  * a Fenwick tree over per-process live-channel sizes — O(1) live
//    message count, O(log n) k-th-live-message and next-deliverable;
//  * a seq -> process hash of every live message — O(1) existence checks
//    (the AdversarialScheduler's candidate feed);
//  * a lazily-compacted min-seq heap — O(log m) amortized
//    oldest_live_message;
//  * a lazy PG edge-instance index (holder <-> target instance counts) —
//    O(degree) incident_nongone/referenced_by_other, the snapshot-free
//    fast path of the SINGLE and NIDEC oracles. Lazy because scenario
//    construction and tests mutate stored references behind the kernel's
//    back (via process_mut); the index is rebuilt at the next query and
//    maintained incrementally from then on, so worlds that never consult
//    it pay nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/channel.hpp"
#include "sim/context.hpp"
#include "sim/ids.hpp"
#include "sim/message_pool.hpp"
#include "sim/observer.hpp"
#include "sim/process.hpp"
#include "sim/scheduler.hpp"
#include "sim/substrate.hpp"
#include "util/alloc_stats.hpp"
#include "util/check.hpp"
#include "util/fenwick.hpp"
#include "util/flat_map.hpp"
#include "util/min_heap.hpp"
#include "util/rng.hpp"
#include "util/row_arena.hpp"

namespace fdp {

/// The deterministic simulator substrate. `final` on purpose: every hot
/// kernel path calls through a concrete World&/KernelView, so the
/// Substrate virtuals devirtualize to the same loads as before the
/// interface was extracted (the ShardedWorld wraps a World, it does not
/// derive from it).
class World final : public Substrate {
 public:
  /// One (peer, instance-count) entry of the lazy edge index. A plain
  /// struct rather than std::pair so it is trivially copyable (RowArena
  /// relocates rows by memcpy); the member names keep pair-style call
  /// sites working.
  struct EdgePair {
    ProcessId first;
    std::uint32_t second;
  };
  /// Flat adjacency row of the lazy edge index — arena-backed (see
  /// util/row_arena.hpp): a 16-byte handle per process instead of a
  /// std::vector header plus its own heap block.
  using EdgeRow = RowArena<EdgePair>::Row;
  /// Arena-backed stored-ref cache row.
  using RefRow = RowArena<RefInfo>::Row;

  explicit World(std::uint64_t seed = 1);

  /// Rewind to the freshly-constructed-with-`seed` state WITHOUT freeing
  /// memory: every channel arena, Fenwick tree, hash table, heap and
  /// scratch buffer keeps its capacity, and spilled message-ref buffers
  /// are recycled into the message pool. A reset world re-populated by the
  /// same spawn/wiring sequence replays byte-identically to a fresh one —
  /// which is what lets ExperimentDriver workers reuse one World across a
  /// whole trial sweep instead of reallocating it per trial.
  void reset(std::uint64_t seed);

  // --- population ---

  /// Construct a process of type P in this world. P's constructor must
  /// accept (Ref self, Mode mode, std::uint64_t key, Args...). Per-id
  /// kernel rows left behind by World::reset are reused, not reallocated.
  template <typename P, typename... Args>
  Ref spawn(Mode mode, std::uint64_t key, Args&&... args) {
    const ProcessId id = static_cast<ProcessId>(procs_.size());
    const Ref r = Ref::make(id);
    procs_.push_back(
        std::make_unique<P>(r, mode, key, std::forward<Args>(args)...));
    if (id < channels_.size()) {
      // Row retained across a reset; the channel was drained by reset().
      FDP_DCHECK(channels_[id].empty());
      life_mirror_[id] = LifeState::Awake;  // processes spawn awake
      ref_out_[id].clear();
      ref_in_[id].clear();
      ref_list_[id].clear();
    } else {
      channels_.emplace_back();
      life_mirror_.push_back(LifeState::Awake);
      ref_out_.emplace_back();
      ref_in_.emplace_back();
      ref_list_.emplace_back();
    }
    awake_fw_.push_back(1);
    live_fw_.push_back(0);
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return procs_.size(); }

  [[nodiscard]] const Process& process(ProcessId id) const override {
    FDP_CHECK(id < procs_.size());
    return *procs_[id];
  }
  /// Mutable access — for scenario construction and tests only; protocol
  /// code never holds a World. The caller may mutate stored references
  /// directly, so this drops the edge-instance index; it is rebuilt at
  /// the next incident_nongone / referenced_by_other query.
  [[nodiscard]] Process& process_mut(ProcessId id) {
    FDP_CHECK(id < procs_.size());
    edges_synced_ = false;
    return *procs_[id];
  }
  /// Typed mutable access.
  template <typename P>
  [[nodiscard]] P& process_as(ProcessId id) {
    auto* p = dynamic_cast<P*>(&process_mut(id));
    FDP_CHECK_MSG(p != nullptr, "process type mismatch");
    return *p;
  }

  [[nodiscard]] const Channel& channel(ProcessId id) const {
    FDP_CHECK(id < channels_.size());
    return channels_[id];
  }

  [[nodiscard]] Mode mode(ProcessId id) const { return process(id).mode(); }
  /// Reads the dense life mirror (kept in lock-step with Process::life by
  /// set_life) — no pointer chase into the process object on hot paths.
  [[nodiscard]] LifeState life(ProcessId id) const override {
    FDP_CHECK(id < life_mirror_.size());
    return life_mirror_[id];
  }
  [[nodiscard]] bool gone(ProcessId id) const {
    return life(id) == LifeState::Gone;
  }

  // --- Substrate surface (sim/substrate.hpp) ---

  /// The simulator's logical clock is its step count.
  [[nodiscard]] std::uint64_t clock() const override { return steps_; }
  /// Out-of-band admission == World::post.
  void inject(Ref to, Message m) override { post(to, std::move(m)); }
  [[nodiscard]] std::size_t channel_depth(ProcessId id) const override {
    return channel(id).size();
  }
  void each_pending(
      ProcessId id,
      const std::function<void(const Message&)>& fn) const override {
    for (const Message& m : channel(id).messages()) fn(m);
  }
  [[nodiscard]] bool oracle_query(ProcessId caller) const override {
    return oracle_value(caller);
  }
  [[nodiscard]] const char* substrate_name() const override { return "sim"; }

  // --- scenario construction ---

  /// Inject a message into `to`'s channel from outside any action (used to
  /// build arbitrary initial states with in-flight messages). Assigns
  /// kernel bookkeeping like a regular send.
  void post(Ref to, Message m);

  /// Force a life state during initial-state construction (e.g. FSP
  /// scenarios that start with asleep processes, or the model checker
  /// reconstructing an arbitrary state — including Gone -> Awake). Routes
  /// through the same transition bookkeeping as regular execution so every
  /// maintained index stays consistent.
  void force_life(ProcessId id, LifeState s) {
    FDP_CHECK(id < procs_.size());
    set_life(id, s);
  }

  // --- fault injection (see sim/chaos.hpp) ---

  /// Remove a message without delivering it. Model-breaking (destroys the
  /// references it carries); used only for negative testing. Returns true
  /// when the message existed.
  bool discard_message(ProcessId id, std::uint64_t seq);

  /// Enqueue a copy of an existing message (fresh sequence number) —
  /// adversarial duplication; only copies references, so protocols must
  /// tolerate it. Returns true when the message existed.
  bool duplicate_message(ProcessId id, std::uint64_t seq);

  /// Drop every message in a channel (state reconstruction by the model
  /// checker; model-breaking if used mid-run).
  void clear_channel(ProcessId id);

  /// Announce a runtime fault to every observer (called by the
  /// FaultScheduler around each injected perturbation; see
  /// Observer::on_fault for the before/after contract).
  void announce_fault(FaultKind kind, ProcessId target, bool applied) {
    for (Observer* o : observers_) o->on_fault(*this, kind, target, applied);
  }

  // --- oracle ---

  void set_oracle(OracleFn fn) { oracle_ = std::move(fn); }
  [[nodiscard]] bool oracle_value(ProcessId id) const;

  // --- observers ---

  void add_observer(Observer* obs) { observers_.push_back(obs); }
  void remove_observer(Observer* obs);

  // --- execution ---

  /// Execute one atomic action chosen by `sched`. Returns false when the
  /// scheduler reports no enabled action (terminal configuration).
  bool step(Scheduler& sched);

  /// Run until `done(world)` holds or `max_steps` actions executed.
  /// Returns true when `done` held (checked before each step and after the
  /// last one).
  bool run_until(Scheduler& sched, std::uint64_t max_steps,
                 const std::function<bool(const World&)>& done);

  // --- scheduler support queries (all sub-linear; see file comment) ---

  /// Ids of awake processes (timeout enabled). O(n): kept for tests, the
  /// model checker and per-round planning; hot paths use the queries
  /// below.
  [[nodiscard]] std::vector<ProcessId> awake_ids() const;
  /// Ids of non-gone processes with non-empty channels (delivery enabled).
  /// O(n); same audience as awake_ids().
  [[nodiscard]] std::vector<ProcessId> deliverable_ids() const;

  /// Number of awake processes. O(1).
  [[nodiscard]] std::uint64_t awake_count() const { return awake_fw_.total(); }
  /// The k-th awake process in ascending id order, k < awake_count().
  /// O(log n).
  [[nodiscard]] ProcessId kth_awake(std::uint64_t k) const {
    return static_cast<ProcessId>(awake_fw_.select(k));
  }
  /// Smallest awake id >= from, or kNoProcess. O(log n).
  [[nodiscard]] ProcessId next_awake(ProcessId from) const {
    const std::size_t p = awake_fw_.next_positive(from);
    return p < size() ? static_cast<ProcessId>(p) : kNoProcess;
  }

  /// Total messages in channels of non-gone processes. O(1).
  [[nodiscard]] std::uint64_t live_message_count() const {
    return live_fw_.total();
  }
  /// The k-th live message in (process ascending, channel slot) order —
  /// the enumeration order of a full channel scan. O(log n).
  [[nodiscard]] std::pair<ProcessId, std::uint64_t> kth_live_message(
      std::uint64_t k) const {
    const std::size_t p = live_fw_.select(k);
    const std::uint64_t within = k - live_fw_.prefix(p);
    return {static_cast<ProcessId>(p),
            channels_[p].peek(static_cast<std::size_t>(within)).seq};
  }
  /// Smallest non-gone id >= from with a non-empty channel, or kNoProcess.
  /// O(log n).
  [[nodiscard]] ProcessId next_deliverable(ProcessId from) const {
    const std::size_t p = live_fw_.next_positive(from);
    return p < size() ? static_cast<ProcessId>(p) : kNoProcess;
  }

  /// (proc, seq) of the globally oldest live message; proc == kNoProcess
  /// when there is none. O(log m) amortized.
  [[nodiscard]] std::pair<ProcessId, std::uint64_t> oldest_live_message()
      const;

  // --- oracle support queries (see core/oracle.cpp) ---

  /// Number of asleep processes with empty channels. Hibernation requires
  /// such a "quiet" process, so when this is zero "relevant" degenerates
  /// to "non-gone" and the oracles can skip the snapshot. O(1).
  [[nodiscard]] std::uint64_t quiet_count() const override {
    return quiet_count_;
  }

  /// Number of distinct non-gone processes q != p sharing a PG edge with
  /// p in either direction (an explicit or implicit reference instance
  /// held by a non-gone process). Equals Snapshot::incident_relevant(p)
  /// whenever quiet_count() == 0. O(degree of p) after the first call.
  [[nodiscard]] std::size_t incident_nongone(ProcessId p) const override;

  /// Whether any non-gone process q != p holds a reference instance of p
  /// (stored or in q's channel) — the NIDEC oracle's scan, minus the
  /// caller's own channel. O(holders of p) after the first call.
  [[nodiscard]] bool referenced_by_other(ProcessId p) const override;

  /// Every sequence number ever assigned is < seq_watermark(). Monotone;
  /// lets consumers (AdversarialScheduler) ingest new messages by cursor
  /// instead of rescanning channels.
  [[nodiscard]] std::uint64_t seq_watermark() const { return next_seq_; }
  /// The process whose channel holds the live message `seq`, or
  /// kNoProcess (consumed, dropped, or in a gone process's channel). O(1)
  /// expected.
  [[nodiscard]] ProcessId find_live_message(std::uint64_t seq) const {
    const ProcessId* p = live_seq_.find(seq);
    return p != nullptr ? *p : kNoProcess;
  }

  // --- statistics ---

  [[nodiscard]] std::uint64_t steps() const { return steps_; }

  // --- memory accounting (util/alloc_stats.hpp) ---

  /// Per-subsystem byte breakdown of everything this world owns. Capacity
  /// mode counts allocated backing stores (the world's real heap
  /// footprint, including high-water slack retained across reset());
  /// size mode counts only live entries, which is deterministic for a
  /// given action trace — the form safe to surface in worker-count-
  /// invariant driver output. O(n + m); not for hot paths.
  [[nodiscard]] alloc_stats::ByteBuckets footprint(bool capacity) const;

  /// Deterministic logical bytes of the live world state (size-mode
  /// footprint total).
  [[nodiscard]] std::uint64_t live_bytes() const {
    return footprint(false).total();
  }

  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t sends() const { return sends_; }
  [[nodiscard]] std::uint64_t exits() const { return exits_; }
  [[nodiscard]] std::uint64_t sleeps() const { return sleeps_; }
  [[nodiscard]] std::uint64_t wakes() const { return wakes_; }

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  /// The scheduler-facing window type reads the maintained indices
  /// directly (sim/kernel_view.hpp); the sharded kernel steps whole
  /// epochs against the internals (sim/sharded_world.hpp).
  friend class KernelView;
  friend class ShardedWorld;

  void execute(ActionChoice choice);

  /// Assign kernel bookkeeping (seq, enqueued_at), register the message
  /// with every maintained index and enqueue it. Returns the enqueued
  /// message (reference valid until the channel is next mutated).
  const Message& admit(ProcessId to, Message&& m);
  /// Remove the message at channel slot `idx` of `p`, deregistering it.
  Message take_message(ProcessId p, std::size_t idx);
  /// Apply a life transition, updating the awake roster and — on Gone
  /// transitions in either direction — the live-message indices.
  void set_life(ProcessId p, LifeState to);

  void notify_inject(ProcessId to, const Message& m);
  void notify_remove(ProcessId from, const Message& m);

  // Edge-instance index plumbing. The helpers are const because they only
  // touch the mutable lazy index; kernel mutation paths call them guarded
  // by edges_synced_.
  void add_edge_instance(ProcessId holder, ProcessId target) const;
  void remove_edge_instance(ProcessId holder, ProcessId target) const;
  void add_message_refs(ProcessId holder, const Message& m) const;
  void remove_message_refs(ProcessId holder, const Message& m) const;
  /// Register/deregister every instance held by p (stored + own channel).
  void register_process_edges(ProcessId p) const;
  void deregister_process_edges(ProcessId p) const;
  void ensure_edge_index() const;

  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<Channel> channels_;
  /// Dense copy of every process's LifeState (authoritative copy lives in
  /// the Process; set_life writes both). Hot paths read this instead of
  /// chasing the unique_ptr.
  std::vector<LifeState> life_mirror_;
  std::vector<Observer*> observers_;
  OracleFn oracle_;
  Rng rng_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t steps_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t exits_ = 0;
  std::uint64_t sleeps_ = 0;
  std::uint64_t wakes_ = 0;

  // --- maintained world indices (see file comment) ---
  // Half-width trees: their totals (awake processes, live in-flight
  // messages) stay far below 2^32 even at n = 10^7, and the two rosters
  // together cost 16 B/process at u32 instead of 32.
  Fenwick32 awake_fw_;  ///< weight 1 per awake process
  Fenwick32 live_fw_;   ///< channel size per non-gone process, else 0
  /// seq -> holder for every live message. Flat open-addressing table:
  /// steady-state insert/erase never touch the allocator.
  FlatMap64<ProcessId> live_seq_;
  /// Min-heap over (seq, proc) of every registration; stale entries
  /// (consumed/dropped/gone) are discarded lazily in oldest_live_message.
  mutable MinHeap<std::pair<std::uint64_t, ProcessId>> oldest_heap_;
  /// Recycler for spilled Message::refs buffers (see sim/message_pool.hpp).
  MessagePool msg_pool_;
  /// Reused Context output buffer — one action's sends, cleared (capacity
  /// kept) at the start of every execute().
  std::vector<std::pair<Ref, Message>> sends_scratch_;
  /// Context::ref_scratch() backing store: the departure timeout's
  /// neighborhood iterations borrow this instead of each process keeping
  /// (and paying ~a cache line of capacity for) its own buffer.
  std::vector<RefInfo> proc_ref_scratch_;
  /// Asleep processes with empty channels (hibernation candidates).
  std::uint64_t quiet_count_ = 0;
  /// Lazy PG edge-instance index over instances held by non-gone
  /// processes: ref_out_[h] / ref_in_[t] hold (peer, count) pairs — the
  /// number of reference instances of t that h holds (stored or in h's
  /// channel). Flat unsorted vectors: degrees are small, so a linear scan
  /// stays in one cache line where a hash map would chase buckets. Built
  /// on first query; dropped whenever process_mut hands out direct
  /// mutable access; maintained incrementally in between.
  mutable bool edges_synced_ = false;
  /// Slab arenas backing the three row tables below. Shared-cursor, so
  /// the sharded kernel's worker threads can grow their own rows
  /// concurrently (span growth locks; everything else is row-local).
  mutable RowArena<EdgePair> edge_arena_;
  mutable RowArena<RefInfo> ref_arena_;
  mutable std::vector<EdgeRow> ref_out_;
  mutable std::vector<EdgeRow> ref_in_;
  /// Per-process cache of the last collect_refs result while synced: the
  /// stored-ref side of the index. Lets execute() diff the actor with a
  /// single collect_refs call and touch the count rows only for targets
  /// that actually changed (refs cannot change while a process is Gone, so
  /// the cache stays valid across exit/resurrection).
  mutable std::vector<RefRow> ref_list_;
  mutable std::vector<RefInfo> scratch_refs_;
  mutable std::vector<char> scratch_matched_;
};

}  // namespace fdp
