#include "sim/fault.hpp"

#include "sim/kernel_view.hpp"
#include "util/check.hpp"

namespace fdp {

std::string FaultPlan::validate() const {
  auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!prob_ok(p_crash) || !prob_ok(p_scramble) || !prob_ok(p_duplicate) ||
      !prob_ok(p_partition)) {
    return "fault probabilities must lie in [0, 1]";
  }
  const bool stochastic =
      p_crash > 0.0 || p_scramble > 0.0 || p_duplicate > 0.0 ||
      p_partition > 0.0;
  if (stochastic && stochastic_until == 0) {
    return "stochastic fault probabilities set but stochastic_until == 0 "
           "(the regime would never fire)";
  }
  if (partition_window == 0) return "partition_window must be positive";
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].step < events[i - 1].step) {
      return "scheduled fault events must be sorted by step";
    }
  }
  return "";
}

ActionChoice FaultScheduler::next(const KernelView& view, Rng& rng) {
  FDP_CHECK_MSG(world_ != nullptr,
                "FaultScheduler::bind(world) must be called before next()");
  FDP_CHECK_MSG(world_ == &view.world(),
                "FaultScheduler is bound to a different world");
  const std::uint64_t now = view.steps();

  // Announce the close of a partition window exactly once, before any new
  // fault can fire this step: RecoveryMonitor attributes steps-to-Φ-drain
  // to this boundary (the cut only *delays* progress, so recovery starts
  // when deliveries are released, not when the window opened).
  if (window_open_ && partition_until_ <= now) {
    window_open_ = false;
    world_->announce_fault(FaultKind::PartitionEnd, kNoProcess,
                           /*applied=*/false);
    world_->announce_fault(FaultKind::PartitionEnd, kNoProcess,
                           /*applied=*/true);
  }

  // Scheduled events due now (or overdue — the plan may schedule several
  // at one step).
  while (cursor_ < plan_.events.size() && plan_.events[cursor_].step <= now) {
    apply(plan_.events[cursor_], now);
    ++cursor_;
  }

  // Stochastic regime: one roll per fault class per world step.
  if (now < plan_.stochastic_until && now != last_stochastic_step_) {
    last_stochastic_step_ = now;
    if (plan_.p_crash > 0.0 && fault_rng_.chance(plan_.p_crash)) {
      apply(FaultEvent{now, FaultKind::CrashRestart, 1}, now);
    }
    if (plan_.p_scramble > 0.0 && fault_rng_.chance(plan_.p_scramble)) {
      apply(FaultEvent{now, FaultKind::Scramble, 1}, now);
    }
    if (plan_.p_duplicate > 0.0 && fault_rng_.chance(plan_.p_duplicate)) {
      apply(FaultEvent{now, FaultKind::DuplicateBurst, 0}, now);
    }
    if (plan_.p_partition > 0.0 && fault_rng_.chance(plan_.p_partition)) {
      apply(FaultEvent{now, FaultKind::PartitionStart, 1}, now);
    }
  }

  if (partition_until_ > now) {
    // Veto deliveries into the blocked side; bounded retry against the
    // inner scheduler (stateful inners advance their cursors, so retries
    // make progress).
    for (int attempt = 0; attempt < 32; ++attempt) {
      const ActionChoice c = inner_->next(view, rng);
      if (c.kind != ActionChoice::Kind::Deliver) return c;
      if (c.proc >= blocked_.size() || !blocked_[c.proc]) return c;
      ++withheld_;
    }
    // The inner scheduler keeps proposing blocked deliveries. Let time
    // pass on the live side instead.
    if (view.awake_count() > 0) {
      const ProcessId p = view.kth_awake(fault_rng_.below(view.awake_count()));
      return ActionChoice::timeout(p);
    }
    // Nothing but blocked deliveries is enabled: leak one (counted), so
    // fair receipt is delayed, never denied.
    ++partition_leaks_;
  }
  return inner_->next(view, rng);
}

void FaultScheduler::apply(const FaultEvent& ev, std::uint64_t now) {
  switch (ev.kind) {
    case FaultKind::CrashRestart:
    case FaultKind::Scramble: {
      for (std::uint32_t i = 0; i < ev.count; ++i) {
        if (world_->awake_count() == 0) break;
        const ProcessId victim = world_->kth_awake(
            fault_rng_.below(world_->awake_count()));
        world_->announce_fault(ev.kind, victim, /*applied=*/false);
        const bool ok =
            ev.kind == FaultKind::CrashRestart
                ? world_->process_mut(victim).fault_crash_restart(fault_rng_)
                : world_->process_mut(victim).fault_scramble(fault_rng_);
        if (!ok) continue;  // victim type doesn't support the fault
        if (ev.kind == FaultKind::CrashRestart) {
          ++crashes_;
        } else {
          ++scrambles_;
        }
        world_->announce_fault(ev.kind, victim, /*applied=*/true);
      }
      break;
    }
    case FaultKind::DuplicateBurst: {
      if (world_->live_message_count() == 0) break;
      world_->announce_fault(ev.kind, kNoProcess, /*applied=*/false);
      const std::uint32_t burst =
          ev.count > 0 ? ev.count : plan_.duplicate_burst;
      std::uint64_t done = 0;
      for (std::uint32_t i = 0; i < burst; ++i) {
        const std::uint64_t live = world_->live_message_count();
        if (live == 0) break;
        const auto [p, seq] = world_->kth_live_message(fault_rng_.below(live));
        if (world_->duplicate_message(p, seq)) ++done;
      }
      if (done > 0) {
        duplicates_ += done;
        ++bursts_;
        world_->announce_fault(ev.kind, kNoProcess, /*applied=*/true);
      }
      break;
    }
    case FaultKind::PartitionStart: {
      if (partition_until_ > now) break;  // a window is already open
      const std::size_t n = world_->size();
      if (n == 0) break;
      world_->announce_fault(ev.kind, kNoProcess, /*applied=*/false);
      blocked_.assign(n, 0);
      bool any = false;
      for (std::size_t p = 0; p < n; ++p) {
        if (fault_rng_.chance(0.5)) {
          blocked_[p] = 1;
          any = true;
        }
      }
      if (!any) blocked_[fault_rng_.below(n)] = 1;
      partition_until_ = now + plan_.partition_window;
      window_open_ = true;
      ++partitions_;
      world_->announce_fault(ev.kind, kNoProcess, /*applied=*/true);
      break;
    }
  }
}

}  // namespace fdp
