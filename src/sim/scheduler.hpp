// Schedulers.
//
// A computation in the paper is an infinite fair sequence of atomic action
// executions under two assumptions: *weakly fair action execution* (an
// always-enabled timeout of a process that is awake infinitely often runs
// infinitely often) and *fair message receipt* (every message in the channel
// of a non-gone process is eventually processed). Beyond fairness there are
// no bounds: delivery is fully asynchronous and non-FIFO.
//
// Each scheduler below realizes one family of fair schedules:
//  - RandomScheduler: i.i.d. random interleaving; fairness holds almost
//    surely, and the oldest-message bias makes starvation probability decay
//    geometrically. The default for stochastic experiments.
//  - RoundRobinScheduler: deterministic alternation of deliver/timeout per
//    process; fairness holds surely.
//  - RoundScheduler: executes in *asynchronous rounds* (deliver everything
//    enqueued before the round, then timeout everyone); gives the round
//    complexity metric used for the O(log n) clique-building claim.
//  - AdversarialScheduler: withholds every message for a configurable
//    number of steps and then delivers newest-first, maximizing reordering
//    while still satisfying fair receipt.
//
// All schedulers run against a KernelView (sim/kernel_view.hpp) — the
// scheduler-facing window onto the kernel's maintained indices. The classic
// step loop hands them the full-window view (implicitly converted from the
// World), so no scheduler allocates or scans per step and choosing an
// action costs O(log n) regardless of population or backlog size; the
// sharded kernel hands them a shard-local sub-window instead. The random
// and round-robin samplers enumerate candidates in exactly the
// ascending-id / channel-slot order the previous O(n) scans used, which
// keeps seeded traces byte-identical across the index rewrite.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "sim/ids.hpp"
#include "util/rng.hpp"

namespace fdp {

class KernelView;

struct ActionChoice {
  enum class Kind : std::uint8_t { None, Timeout, Deliver };
  Kind kind = Kind::None;
  ProcessId proc = kNoProcess;
  /// Message identified by kernel sequence number (Kind::Deliver).
  std::uint64_t msg_seq = 0;

  [[nodiscard]] static ActionChoice none() { return {}; }
  [[nodiscard]] static ActionChoice timeout(ProcessId p) {
    return {Kind::Timeout, p, 0};
  }
  [[nodiscard]] static ActionChoice deliver(ProcessId p, std::uint64_t seq) {
    return {Kind::Deliver, p, seq};
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Choose the next enabled action, or Kind::None when no action is
  /// enabled (all channels of non-gone processes empty and no process
  /// awake — the computation has reached a terminal configuration).
  virtual ActionChoice next(const KernelView& view, Rng& rng) = 0;
};

/// Uniformly random fair interleaving (see file comment).
///
/// By default the next action is drawn uniformly over ALL enabled actions
/// (every live message is one action, every awake process's timeout is
/// one action). This keeps channel backlogs bounded: when queues build
/// up, deliveries dominate automatically. Pass p_deliver in [0,1] to fix
/// the deliver-vs-timeout ratio instead (p_deliver < 0 = proportional).
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(double p_deliver = -1.0, double p_oldest = 0.25)
      : p_deliver_(p_deliver), p_oldest_(p_oldest) {}
  ActionChoice next(const KernelView& view, Rng& rng) override;

 private:
  double p_deliver_;
  double p_oldest_;
};

/// Deterministic fair scheduler: messages are delivered with priority
/// (round-robin over processes, oldest first), but every `timeout_share`-th
/// action is a timeout (round-robin over awake processes), so weak
/// fairness holds no matter how deep the queues are.
class RoundRobinScheduler final : public Scheduler {
 public:
  explicit RoundRobinScheduler(std::uint32_t timeout_share = 6)
      : timeout_share_(timeout_share == 0 ? 1 : timeout_share) {}
  ActionChoice next(const KernelView& view, Rng& rng) override;

 private:
  std::uint32_t timeout_share_;
  std::uint64_t tick_ = 0;
  std::uint64_t deliver_cursor_ = 0;
  std::uint64_t timeout_cursor_ = 0;
};

/// Asynchronous rounds; exposes the completed-round counter.
class RoundScheduler final : public Scheduler {
 public:
  ActionChoice next(const KernelView& view, Rng& rng) override;
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

 private:
  void refill(const KernelView& view, Rng& rng);

  std::deque<ActionChoice> plan_;
  std::uint64_t rounds_ = 0;
  bool started_ = false;
};

/// Maximal-delay newest-first delivery within fair receipt.
///
/// Instead of rescanning every channel per step, the scheduler ingests
/// messages from the kernel's live-message index through a sequence-number
/// cursor (seq assignment order has non-decreasing enqueue step, so the
/// pending queue is age-sorted for free), graduates them into a max-seq
/// heap once the age gate opens, and validates heap tops lazily against
/// the index — consumed or dropped messages simply fall out. O(log m)
/// amortized per choice.
class AdversarialScheduler final : public Scheduler {
 public:
  /// `min_age`: a message is withheld until it has aged this many world
  /// steps. `deliver_burst`: after the age gate opens, how many deliveries
  /// happen per timeout (controls message pressure).
  explicit AdversarialScheduler(std::uint64_t min_age = 8,
                                unsigned deliver_burst = 8)
      : min_age_(min_age), deliver_burst_(deliver_burst) {}
  ActionChoice next(const KernelView& view, Rng& rng) override;

 private:
  struct Pending {
    std::uint64_t seq;
    ProcessId proc;
    std::uint64_t enqueued_at;
  };

  /// Ingest messages assigned since the last call; graduate aged ones.
  void sync(const KernelView& view);

  std::uint64_t min_age_;
  unsigned deliver_burst_;
  unsigned burst_used_ = 0;
  /// Round-robin cursor over the STABLE ProcessId space (not over a
  /// freshly built awake vector, whose contents shift as processes
  /// sleep/wake and could starve a process under weak fairness).
  std::uint64_t timeout_cursor_ = 0;
  /// All seqs < synced_seq_ have been ingested.
  std::uint64_t synced_seq_ = 1;
  /// Ingested but not yet aged, in enqueue (== age) order.
  std::deque<Pending> pending_;
  /// Aged candidates, newest (max seq) first; validated lazily.
  std::priority_queue<std::pair<std::uint64_t, ProcessId>> aged_;
};

}  // namespace fdp
