// Messages.
//
// The paper requires every message to name the action it triggers at the
// receiver ("every message must be of the form <label>(<parameters>)").
// `Verb` is that label for the actions the library itself defines; overlay
// protocols multiplex their own actions under Verb::Overlay via `tag`.
//
// Every process reference carried by a message appears in `refs`; the kernel
// derives the *implicit edges* of the process graph from exactly this field,
// so a protocol cannot smuggle references past the connectivity accounting.
//
// `refs` is a SmallVec with two inline slots: the paper's protocol actions
// carry at most one or two references (present(v), forward(v), verify(u),
// process(v)), so constructing, copying and consuming a message never
// touches the allocator in the common case. Only overlay batch messages
// with three or more references spill to the heap; those spilled buffers
// are recycled by the per-world MessagePool instead of freed.
#pragma once

#include <cstdint>

#include "sim/ids.hpp"
#include "util/check.hpp"
#include "util/small_vec.hpp"

namespace fdp {

enum class Verb : std::uint8_t {
  /// present(v): Introduction — the sender keeps its reference to v.
  Present,
  /// forward(v): Delegation — the sender deleted its reference to v.
  Forward,
  /// verify(u): Section-4 framework — asks the receiver to report its mode
  /// to u (the carried reference).
  Verify,
  /// process(v): Section-4 framework — the reply to verify; v is the
  /// replying process with its true mode, `token` echoes the request.
  ProcessReply,
  /// An action of the wrapped overlay protocol P; `tag` selects which.
  Overlay,
  /// Free-form payload for tests.
  User,
};

[[nodiscard]] constexpr const char* to_string(Verb v) {
  switch (v) {
    case Verb::Present: return "present";
    case Verb::Forward: return "forward";
    case Verb::Verify: return "verify";
    case Verb::ProcessReply: return "process";
    case Verb::Overlay: return "overlay";
    case Verb::User: return "user";
  }
  return "?";
}

/// Reference payload of a message: one inline slot, heap beyond. The
/// departure protocol's traffic is overwhelmingly single-ref (measured:
/// 100% of in-flight messages in the E4/E12 churn campaigns), so one
/// inline slot covers the hot path and multi-ref messages spill to
/// pool-recycled heap buffers.
using RefList = SmallVec<RefInfo, 1>;

/// Overlay-protocol tags occupy 29 bits (verb + tag share one word below).
inline constexpr std::uint32_t kMaxTag = (1u << 29) - 1;

// Compact 64-byte message — the channel slot arenas store millions of
// these, so every field earns its width:
//  * verb and tag share one u32 (3 + 29 bits; six verbs, and overlay tags
//    are small enum-like selectors — kMaxTag bounds them);
//  * the enqueue step is stored as its low 32 bits and reconstructed
//    against the current step on read: a message's age is bounded by the
//    channel's lifetime, which is far below 2^32 steps;
//  * seq stays u64 — it is globally unique across a campaign and 10^7-
//    process runs execute > 2^32 sends.
struct Message {
  /// Correlation token (Section-4 framework: mlist entry id).
  std::uint64_t token = 0;
  /// Globally unique, monotonically increasing send sequence number (set
  /// by the kernel on send).
  std::uint64_t seq = 0;
  /// Every process reference this message carries.
  RefList refs;

  Message() = default;
  Message(Verb v, std::uint32_t tag, std::uint64_t tok, RefList rs)
      : token(tok), refs(std::move(rs)) {
    set_verb(v);
    set_tag(tag);
  }

  [[nodiscard]] Verb verb() const {
    return static_cast<Verb>(verb_tag_ & 0x7u);
  }
  void set_verb(Verb v) {
    verb_tag_ = (verb_tag_ & ~0x7u) | static_cast<std::uint32_t>(v);
  }
  /// Overlay-protocol action selector (meaningful for Verb::Overlay).
  [[nodiscard]] std::uint32_t tag() const { return verb_tag_ >> 3; }
  void set_tag(std::uint32_t t) {
    FDP_DCHECK(t <= kMaxTag);
    verb_tag_ = (verb_tag_ & 0x7u) | (t << 3);
  }

  /// Record the kernel time (world step / epoch / event count) at which
  /// the message entered the channel.
  void stamp_enqueued(std::uint64_t now) {
    enq_lo_ = static_cast<std::uint32_t>(now);
  }
  /// The absolute enqueue time, reconstructed against `now` (any kernel
  /// time >= the stamp and < 2^32 ticks past it — i.e. "the current
  /// step"): the unique T <= now with T = stamp (mod 2^32).
  [[nodiscard]] std::uint64_t enqueued_at(std::uint64_t now) const {
    return now - static_cast<std::uint32_t>(
                     static_cast<std::uint32_t>(now) - enq_lo_);
  }
  /// Raw stored low bits — for frame-to-frame copies only.
  [[nodiscard]] std::uint32_t enqueued_lo() const { return enq_lo_; }

  /// Convenience constructors for the departure protocol's two actions.
  [[nodiscard]] static Message present(RefInfo v) {
    Message m;
    m.set_verb(Verb::Present);
    m.refs = {v};
    return m;
  }
  [[nodiscard]] static Message forward(RefInfo v) {
    Message m;
    m.set_verb(Verb::Forward);
    m.refs = {v};
    return m;
  }

 private:
  std::uint32_t verb_tag_ = static_cast<std::uint32_t>(Verb::User);
  std::uint32_t enq_lo_ = 0;
};

static_assert(sizeof(RefInfo) == 16, "RefInfo is the wire/storage unit");
static_assert(sizeof(RefList) == 24, "RefList: union'd small-buffer layout");
static_assert(sizeof(Message) == 48,
              "Message is the channel slot unit; keep it diet-audited");

}  // namespace fdp
