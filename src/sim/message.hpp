// Messages.
//
// The paper requires every message to name the action it triggers at the
// receiver ("every message must be of the form <label>(<parameters>)").
// `Verb` is that label for the actions the library itself defines; overlay
// protocols multiplex their own actions under Verb::Overlay via `tag`.
//
// Every process reference carried by a message appears in `refs`; the kernel
// derives the *implicit edges* of the process graph from exactly this field,
// so a protocol cannot smuggle references past the connectivity accounting.
//
// `refs` is a SmallVec with two inline slots: the paper's protocol actions
// carry at most one or two references (present(v), forward(v), verify(u),
// process(v)), so constructing, copying and consuming a message never
// touches the allocator in the common case. Only overlay batch messages
// with three or more references spill to the heap; those spilled buffers
// are recycled by the per-world MessagePool instead of freed.
#pragma once

#include <cstdint>

#include "sim/ids.hpp"
#include "util/small_vec.hpp"

namespace fdp {

enum class Verb : std::uint8_t {
  /// present(v): Introduction — the sender keeps its reference to v.
  Present,
  /// forward(v): Delegation — the sender deleted its reference to v.
  Forward,
  /// verify(u): Section-4 framework — asks the receiver to report its mode
  /// to u (the carried reference).
  Verify,
  /// process(v): Section-4 framework — the reply to verify; v is the
  /// replying process with its true mode, `token` echoes the request.
  ProcessReply,
  /// An action of the wrapped overlay protocol P; `tag` selects which.
  Overlay,
  /// Free-form payload for tests.
  User,
};

[[nodiscard]] constexpr const char* to_string(Verb v) {
  switch (v) {
    case Verb::Present: return "present";
    case Verb::Forward: return "forward";
    case Verb::Verify: return "verify";
    case Verb::ProcessReply: return "process";
    case Verb::Overlay: return "overlay";
    case Verb::User: return "user";
  }
  return "?";
}

/// Reference payload of a message: two inline slots, heap beyond.
using RefList = SmallVec<RefInfo, 2>;

struct Message {
  Verb verb = Verb::User;
  /// Overlay-protocol action selector (meaningful for Verb::Overlay).
  std::uint32_t tag = 0;
  /// Correlation token (Section-4 framework: mlist entry id).
  std::uint64_t token = 0;
  /// Every process reference this message carries.
  RefList refs;

  // --- kernel bookkeeping (set by World::step on send) ---
  /// Globally unique, monotonically increasing send sequence number.
  std::uint64_t seq = 0;
  /// World step count at which the message entered the channel.
  std::uint64_t enqueued_at = 0;

  /// Convenience constructors for the departure protocol's two actions.
  [[nodiscard]] static Message present(RefInfo v) {
    Message m;
    m.verb = Verb::Present;
    m.refs = {v};
    return m;
  }
  [[nodiscard]] static Message forward(RefInfo v) {
    Message m;
    m.verb = Verb::Forward;
    m.refs = {v};
    return m;
  }
};

}  // namespace fdp
