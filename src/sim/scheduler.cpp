#include "sim/scheduler.hpp"

#include <algorithm>

#include "sim/world.hpp"

namespace fdp {

namespace {

/// Pick the i-th live message (uniform index over all live messages).
ActionChoice pick_uniform_message(const World& w, std::uint64_t index) {
  for (ProcessId p = 0; p < w.size(); ++p) {
    if (w.gone(p)) continue;
    const Channel& ch = w.channel(p);
    if (index < ch.size()) return ActionChoice::deliver(p, ch.peek(static_cast<std::size_t>(index)).seq);
    index -= ch.size();
  }
  return ActionChoice::none();
}

}  // namespace

ActionChoice RandomScheduler::next(const World& world, Rng& rng) {
  const std::uint64_t msgs = world.live_message_count();
  std::vector<ProcessId> awake = world.awake_ids();

  const bool can_deliver = msgs > 0;
  const bool can_timeout = !awake.empty();
  if (!can_deliver && !can_timeout) return ActionChoice::none();

  bool deliver;
  if (can_deliver && can_timeout) {
    if (p_deliver_ < 0.0) {
      // Uniform over enabled actions: each message and each awake
      // process's timeout is one candidate.
      const std::uint64_t total = msgs + awake.size();
      deliver = rng.below(total) < msgs;
    } else {
      deliver = rng.chance(p_deliver_);
    }
  } else {
    deliver = can_deliver;
  }

  if (deliver) {
    if (rng.chance(p_oldest_)) {
      auto [proc, seq] = world.oldest_live_message();
      return ActionChoice::deliver(proc, seq);
    }
    return pick_uniform_message(world, rng.below(msgs));
  }
  return ActionChoice::timeout(rng.pick(awake));
}

ActionChoice RoundRobinScheduler::next(const World& world, Rng& rng) {
  (void)rng;
  const std::uint64_t n = world.size();
  if (n == 0) return ActionChoice::none();
  ++tick_;
  const bool timeout_turn = tick_ % timeout_share_ == 0;

  auto try_deliver = [&]() -> ActionChoice {
    for (std::uint64_t tried = 0; tried < n; ++tried) {
      const ProcessId p =
          static_cast<ProcessId>(deliver_cursor_++ % n);
      if (!world.gone(p) && !world.channel(p).empty()) {
        const std::size_t idx = world.channel(p).oldest_index();
        return ActionChoice::deliver(p, world.channel(p).peek(idx).seq);
      }
    }
    return ActionChoice::none();
  };
  auto try_timeout = [&]() -> ActionChoice {
    for (std::uint64_t tried = 0; tried < n; ++tried) {
      const ProcessId p =
          static_cast<ProcessId>(timeout_cursor_++ % n);
      if (world.life(p) == LifeState::Awake)
        return ActionChoice::timeout(p);
    }
    return ActionChoice::none();
  };

  ActionChoice c = timeout_turn ? try_timeout() : try_deliver();
  if (c.kind == ActionChoice::Kind::None)
    c = timeout_turn ? try_deliver() : try_timeout();
  return c;
}

void RoundScheduler::refill(const World& world, Rng& rng) {
  // One asynchronous round: deliver every message currently enqueued (in
  // random order), then run every currently-awake process's timeout (in
  // random order). Items that become disabled mid-round are skipped at
  // execution time in next().
  std::vector<ActionChoice> items;
  for (ProcessId p = 0; p < world.size(); ++p) {
    if (world.gone(p)) continue;
    for (const Message& m : world.channel(p).messages())
      items.push_back(ActionChoice::deliver(p, m.seq));
  }
  rng.shuffle(items);
  std::vector<ActionChoice> touts;
  for (ProcessId p : world.awake_ids())
    touts.push_back(ActionChoice::timeout(p));
  rng.shuffle(touts);
  items.insert(items.end(), touts.begin(), touts.end());
  plan_.assign(items.begin(), items.end());
}

ActionChoice RoundScheduler::next(const World& world, Rng& rng) {
  for (int refills = 0; refills < 2; ++refills) {
    while (!plan_.empty()) {
      ActionChoice c = plan_.front();
      plan_.pop_front();
      if (c.kind == ActionChoice::Kind::Deliver) {
        if (world.gone(c.proc)) continue;
        if (world.channel(c.proc).index_of_seq(c.msg_seq) >=
            world.channel(c.proc).size())
          continue;  // message already taken (cannot happen) or proc exited
        return c;
      }
      if (world.life(c.proc) != LifeState::Awake) continue;
      return c;
    }
    if (started_) ++rounds_;  // a full plan was drained: one round completed
    started_ = true;
    refill(world, rng);
  }
  return ActionChoice::none();
}

ActionChoice AdversarialScheduler::next(const World& world, Rng& rng) {
  (void)rng;
  // Deliver newest-first, but only messages older than min_age_ steps; mix
  // in timeouts round-robin so weak fairness holds. If only young messages
  // remain and someone is awake, prefer the timeout (maximizes delay).
  ProcessId best_proc = kNoProcess;
  std::uint64_t best_seq = 0;
  bool have_old = false;
  bool have_any = false;
  for (ProcessId p = 0; p < world.size(); ++p) {
    if (world.gone(p)) continue;
    for (const Message& m : world.channel(p).messages()) {
      have_any = true;
      const bool aged = world.steps() >= m.enqueued_at + min_age_;
      if (aged && (!have_old || m.seq > best_seq)) {
        have_old = true;
        best_seq = m.seq;
        best_proc = p;
      }
    }
  }

  const std::vector<ProcessId> awake = world.awake_ids();
  const bool want_timeout = burst_used_ >= deliver_burst_;

  if (have_old && (!want_timeout || awake.empty())) {
    ++burst_used_;
    return ActionChoice::deliver(best_proc, best_seq);
  }
  if (!awake.empty()) {
    burst_used_ = 0;
    const ProcessId p = awake[timeout_cursor_++ % awake.size()];
    return ActionChoice::timeout(p);
  }
  if (have_old) {
    ++burst_used_;
    return ActionChoice::deliver(best_proc, best_seq);
  }
  if (have_any) {
    // Only young messages and nobody awake: the age gate must yield or the
    // schedule would violate fair receipt — deliver the oldest young one.
    auto [proc, seq] = world.oldest_live_message();
    return ActionChoice::deliver(proc, seq);
  }
  return ActionChoice::none();
}

}  // namespace fdp
