#include "sim/scheduler.hpp"

#include <algorithm>

#include "sim/kernel_view.hpp"

namespace fdp {

namespace {

/// Round-robin successor search over a stable id window [view.lo, view.hi):
/// the first position >= cursor (mod span) accepted by `next_at` (a wrapped
/// index query), advancing the monotone cursor exactly as the old linear
/// probe did — by (offset of the hit) + 1 on success, by span on failure.
/// The cursor counts window-relative positions, so a full-window view
/// reproduces the historical global-cursor arithmetic bit for bit.
template <typename NextAt>
ProcessId rr_advance(std::uint64_t& cursor, const KernelView& view,
                     NextAt next_at) {
  const std::uint64_t n = view.span();
  const ProcessId start = view.lo() + static_cast<ProcessId>(cursor % n);
  ProcessId p = next_at(start);
  if (p == kNoProcess && start != view.lo())
    p = next_at(view.lo());  // wrap around
  if (p == kNoProcess) {
    cursor += n;  // probed everyone, found nothing
    return kNoProcess;
  }
  const std::uint64_t offset = p >= start ? p - start : n - (start - p);
  cursor += offset + 1;
  return p;
}

}  // namespace

ActionChoice RandomScheduler::next(const KernelView& view, Rng& rng) {
  const std::uint64_t msgs = view.live_message_count();
  const std::uint64_t awake = view.awake_count();

  const bool can_deliver = msgs > 0;
  const bool can_timeout = awake > 0;
  if (!can_deliver && !can_timeout) return ActionChoice::none();

  bool deliver;
  if (can_deliver && can_timeout) {
    if (p_deliver_ < 0.0) {
      // Uniform over enabled actions: each message and each awake
      // process's timeout is one candidate.
      deliver = rng.below(msgs + awake) < msgs;
    } else {
      deliver = rng.chance(p_deliver_);
    }
  } else {
    deliver = can_deliver;
  }

  if (deliver) {
    if (rng.chance(p_oldest_)) {
      auto [proc, seq] = view.oldest_live_message();
      return ActionChoice::deliver(proc, seq);
    }
    auto [proc, seq] = view.kth_live_message(rng.below(msgs));
    return ActionChoice::deliver(proc, seq);
  }
  return ActionChoice::timeout(view.kth_awake(rng.below(awake)));
}

ActionChoice RoundRobinScheduler::next(const KernelView& view, Rng& rng) {
  (void)rng;
  if (view.span() == 0) return ActionChoice::none();
  ++tick_;
  const bool timeout_turn = tick_ % timeout_share_ == 0;

  auto try_deliver = [&]() -> ActionChoice {
    const ProcessId p = rr_advance(
        deliver_cursor_, view,
        [&](ProcessId from) { return view.next_deliverable(from); });
    if (p == kNoProcess) return ActionChoice::none();
    const std::size_t idx = view.channel(p).oldest_index();
    return ActionChoice::deliver(p, view.channel(p).peek(idx).seq);
  };
  auto try_timeout = [&]() -> ActionChoice {
    const ProcessId p = rr_advance(
        timeout_cursor_, view,
        [&](ProcessId from) { return view.next_awake(from); });
    if (p == kNoProcess) return ActionChoice::none();
    return ActionChoice::timeout(p);
  };

  ActionChoice c = timeout_turn ? try_timeout() : try_deliver();
  if (c.kind == ActionChoice::Kind::None)
    c = timeout_turn ? try_deliver() : try_timeout();
  return c;
}

void RoundScheduler::refill(const KernelView& view, Rng& rng) {
  // One asynchronous round: deliver every message currently enqueued (in
  // random order), then run every currently-awake process's timeout (in
  // random order). Items that become disabled mid-round are skipped at
  // execution time in next(). Building the plan is O(window + m), paid
  // once per round, so the amortized per-step cost stays constant.
  std::vector<ActionChoice> items;
  for (ProcessId p = view.lo(); p < view.hi(); ++p) {
    if (view.gone(p)) continue;
    for (const Message& m : view.channel(p).messages())
      items.push_back(ActionChoice::deliver(p, m.seq));
  }
  rng.shuffle(items);
  std::vector<ActionChoice> touts;
  for (ProcessId p : view.awake_ids())
    touts.push_back(ActionChoice::timeout(p));
  rng.shuffle(touts);
  items.insert(items.end(), touts.begin(), touts.end());
  plan_.assign(items.begin(), items.end());
}

ActionChoice RoundScheduler::next(const KernelView& view, Rng& rng) {
  for (int refills = 0; refills < 2; ++refills) {
    while (!plan_.empty()) {
      ActionChoice c = plan_.front();
      plan_.pop_front();
      if (c.kind == ActionChoice::Kind::Deliver) {
        if (view.gone(c.proc)) continue;
        if (!view.channel(c.proc).contains(c.msg_seq))
          continue;  // dropped out from under the plan by ChaosScheduler /
                     // discard_message, or the receiver exited mid-round
        return c;
      }
      if (view.life(c.proc) != LifeState::Awake) continue;
      return c;
    }
    if (started_) ++rounds_;  // a full plan was drained: one round completed
    started_ = true;
    refill(view, rng);
  }
  return ActionChoice::none();
}

void AdversarialScheduler::sync(const KernelView& view) {
  // Ingest every sequence number assigned since the last call. Each seq is
  // visited exactly once over the scheduler's lifetime, so this is O(1)
  // amortized per sent message. Seqs already consumed (or in a gone
  // process's channel, or outside the view's window) are simply absent
  // from the filtered live index and skipped.
  const std::uint64_t watermark = view.seq_watermark();
  for (std::uint64_t seq = synced_seq_; seq < watermark; ++seq) {
    const ProcessId p = view.find_live_message(seq);
    if (p == kNoProcess) continue;
    const Channel& ch = view.channel(p);
    pending_.push_back(
        Pending{seq, p,
                ch.peek(ch.index_of_seq(seq)).enqueued_at(view.steps())});
  }
  synced_seq_ = watermark;
  // Graduate messages whose age gate opened. Seq order implies enqueue
  // order, so pending_ is age-sorted and the front is always the next to
  // graduate.
  while (!pending_.empty() &&
         view.steps() >= pending_.front().enqueued_at + min_age_) {
    aged_.emplace(pending_.front().seq, pending_.front().proc);
    pending_.pop_front();
  }
}

ActionChoice AdversarialScheduler::next(const KernelView& view, Rng& rng) {
  (void)rng;
  // Deliver newest-first, but only messages older than min_age_ steps; mix
  // in timeouts round-robin so weak fairness holds. If only young messages
  // remain and someone is awake, prefer the timeout (maximizes delay).
  sync(view);
  while (!aged_.empty() &&
         view.find_live_message(aged_.top().first) != aged_.top().second)
    aged_.pop();  // consumed, dropped, or receiver exited

  const bool have_old = !aged_.empty();
  const bool have_any = view.live_message_count() > 0;
  const std::uint64_t awake = view.awake_count();
  const bool want_timeout = burst_used_ >= deliver_burst_;

  if (have_old && (!want_timeout || awake == 0)) {
    ++burst_used_;
    return ActionChoice::deliver(aged_.top().second, aged_.top().first);
  }
  if (awake > 0) {
    burst_used_ = 0;
    // Round-robin over the stable ProcessId space. (Indexing a freshly
    // built awake vector with a free-running cursor — as this scheduler
    // once did — lets a process slip ahead of the cursor every time the
    // vector's contents shift, which can starve it indefinitely.)
    const ProcessId p = rr_advance(
        timeout_cursor_, view,
        [&](ProcessId from) { return view.next_awake(from); });
    return ActionChoice::timeout(p);
  }
  if (have_old) {
    ++burst_used_;
    return ActionChoice::deliver(aged_.top().second, aged_.top().first);
  }
  if (have_any) {
    // Only young messages and nobody awake: the age gate must yield or the
    // schedule would violate fair receipt — deliver the oldest young one.
    auto [proc, seq] = view.oldest_live_message();
    return ActionChoice::deliver(proc, seq);
  }
  return ActionChoice::none();
}

}  // namespace fdp
