#include "sim/sharded_world.hpp"

#include <algorithm>
#include <string>

#include "util/check.hpp"

namespace fdp {

namespace {

// Duplicates of world.cpp's file-local edge-count helpers: the sharded
// kernel updates rows of the same lazy edge index, but its own-row /
// bucketed-remote-row split means it cannot route through World's
// add/remove_edge_instance (those touch both rows at once).
void counts_add(RowArena<World::EdgePair>& arena, World::EdgeRow& v,
                ProcessId peer) {
  for (auto& [q, cnt] : v) {
    if (q == peer) {
      ++cnt;
      return;
    }
  }
  arena.push_back(v, {peer, 1});
}

void counts_remove(World::EdgeRow& v, ProcessId peer) {
  for (auto& e : v) {
    if (e.first == peer) {
      if (--e.second == 0) {
        e = v.back();
        v.pop_back();
      }
      return;
    }
  }
  FDP_DCHECK(false);
}

constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

}  // namespace

ShardedWorld::ShardedWorld(World& w, unsigned shards, ShardPolicy policy,
                           std::uint64_t seed)
    : w_(&w), k_(shards == 0 ? 1 : shards), policy_(policy), seed_(seed) {
  FDP_CHECK_MSG(w.size() > 0, "sharded execution needs a populated world");
  if (k_ > w.size()) k_ = static_cast<unsigned>(w.size());
  const std::size_t n = w.size();
  shards_.resize(k_);
  for (unsigned s = 0; s < k_; ++s) {
    // Contiguous ascending-id blocks: concatenating per-shard output in
    // shard order yields global id order for every k — the determinism
    // invariant rests on exactly this.
    shards_[s].lo = static_cast<ProcessId>(n * s / k_);
    shards_[s].hi = static_cast<ProcessId>(n * (s + 1) / k_);
    shards_[s].pool = std::make_unique<MessagePool>();
  }
  ref_buckets_.resize(static_cast<std::size_t>(k_) * k_);
  seq_base_.assign(k_, 0);
  mode_cache_.resize(n);
  for (ProcessId p = 0; p < n; ++p) mode_cache_[p] = w.process(p).mode();
  oracle_bits_.assign(n, 0);
  // The edge index backs the oracle precompute and is maintained
  // incrementally by the turn phases; build it once up front.
  w.ensure_edge_index();
  if (k_ > 1) {
    bar_ = std::make_unique<std::barrier<std::function<void()>>>(
        static_cast<std::ptrdiff_t>(k_),
        std::function<void()>([this] { on_phase_barrier(); }));
    workers_.reserve(k_ - 1);
    for (unsigned s = 1; s < k_; ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
  }
}

ShardedWorld::~ShardedWorld() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

void ShardedWorld::set_fault_plan(FaultPlan plan, std::uint64_t seed) {
  const std::string err = plan.validate();
  FDP_CHECK_MSG(err.empty(), "invalid fault plan");
  fault_plan_ = std::move(plan);
  fault_rng_ = Rng(seed);
  have_faults_ = true;
  fault_cursor_ = 0;
}

std::uint64_t ShardedWorld::turn_seed(ProcessId p, std::uint64_t e) const {
  // Stateless per-(process, epoch) stream: two SplitMix64 steps over a
  // state that folds in the run seed, the id and the epoch. No shard- or
  // order-dependent input — this is what makes every turn's randomness
  // identical for every k.
  std::uint64_t st =
      seed_ ^ ((static_cast<std::uint64_t>(p) + 1) * 0x9e3779b97f4a7c15ULL);
  (void)splitmix64(st);
  st ^= (e + 1) * 0xbf58476d1ce4e5b9ULL;
  return splitmix64(st);
}

// ---------------------------------------------------------------------------
// Epoch driver

bool ShardedWorld::epoch() {
  FDP_CHECK_MSG(!finalized_, "epoch() called after finalize()");
  // Re-sync the edge index: barrier faults (and any between-epoch
  // process_mut from scenario code) drop it; the rebuild also refreshes
  // the ref_list_ stored-ref cache the turn diff relies on.
  w_->ensure_edge_index();
  for (Shard& sh : shards_) {
    sh.outbox.clear();
    sh.records.clear();
    sh.life_events.clear();
    sh.actions = sh.timeouts = sh.deliveries = sh.sends_n = 0;
    sh.exits = sh.sleeps = sh.wakes = sh.withheld = 0;
    sh.quiet_delta = 0;
    sh.error = nullptr;
  }
  for (auto& b : ref_buckets_) b.clear();
  epoch_progress_ = false;
  barrier_fault_applied_ = false;

  if (k_ == 1) {
    phase1_oracle(0);
    phase2_turns(0);
    compute_seq_bases();
    phase3_admit(0);
    phase4_edges(0);
  } else {
    {
      std::lock_guard<std::mutex> lk(m_);
      ++ticket_;
    }
    cv_.notify_all();
    run_shard_epoch(0);
    for (Shard& sh : shards_) {
      if (sh.error) std::rethrow_exception(sh.error);
    }
  }
  epilogue();
  // A zero-action epoch is NOT terminal when an enabled action merely
  // wasn't scheduled this epoch: RoundRobin runs timeouts only every
  // timeout_share-th epoch, and Adversarial ages messages before
  // delivering them. Progress is guaranteed within a bounded number of
  // epochs whenever some process is awake or some live channel is
  // non-empty, so only true quiescence ends the run (the scan is O(n) but
  // runs only on empty epochs, which come in bounded streaks).
  return epoch_progress_ || barrier_fault_applied_ || !quiescent();
}

bool ShardedWorld::quiescent() const {
  for (ProcessId p = 0; p < w_->size(); ++p) {
    const LifeState l = w_->life_mirror_[p];
    if (l == LifeState::Awake) return false;
    if (l == LifeState::Asleep && !w_->channels_[p].empty()) return false;
  }
  return true;
}

void ShardedWorld::worker_loop(unsigned s) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [&] { return stop_ || ticket_ > seen; });
      if (stop_) return;
      seen = ticket_;
    }
    run_shard_epoch(s);
  }
}

void ShardedWorld::run_shard_epoch(unsigned s) {
  Shard& sh = shards_[s];
  // A phase that throws poisons only this shard; it still arrives at every
  // barrier so the others drain the epoch, and the main thread rethrows
  // before the epilogue. (Model-invariant violations FDP_CHECK-abort and
  // never get here; this guards real exceptions like bad_alloc.)
  try {
    phase1_oracle(s);
  } catch (...) {
    sh.error = std::current_exception();
  }
  bar_->arrive_and_wait();
  if (!sh.error) {
    try {
      phase2_turns(s);
    } catch (...) {
      sh.error = std::current_exception();
    }
  }
  bar_->arrive_and_wait();
  if (!sh.error) {
    try {
      phase3_admit(s);
    } catch (...) {
      sh.error = std::current_exception();
    }
  }
  bar_->arrive_and_wait();
  if (!sh.error) {
    try {
      phase4_edges(s);
    } catch (...) {
      sh.error = std::current_exception();
    }
  }
  bar_->arrive_and_wait();
}

void ShardedWorld::on_phase_barrier() {
  if (stage_ == 1) compute_seq_bases();
  stage_ = (stage_ + 1) & 3u;
}

void ShardedWorld::compute_seq_bases() {
  // Prefix sums over outbox sizes: the j-th send emitted by shard s gets
  // seq_base_[s] + j, so the assignment is identical for every k (the
  // concatenation of outboxes in shard order is the 1-shard emission
  // order).
  std::uint64_t base = w_->next_seq_;
  for (unsigned s = 0; s < k_; ++s) {
    seq_base_[s] = base;
    base += shards_[s].outbox.size();
  }
  w_->next_seq_ = base;
}

// ---------------------------------------------------------------------------
// Phase 1: oracle precompute

void ShardedWorld::phase1_oracle(unsigned s) {
  const Shard& sh = shards_[s];
  const bool have_oracle = static_cast<bool>(w_->oracle_);
  for (ProcessId p = sh.lo; p < sh.hi; ++p) {
    std::uint8_t bits = 0;
    // Any non-gone leaving-mode process that can act this epoch (awake, or
    // deliverable) may consult the oracle from its action body; evaluate
    // the predicate against the stable inter-epoch state. Staying
    // processes never consult (paper: oracles are for leaving processes).
    if (have_oracle && mode_cache_[p] == Mode::Leaving) {
      const LifeState l = w_->life_mirror_[p];
      if (l == LifeState::Awake ||
          (l != LifeState::Gone && !w_->channels_[p].empty())) {
        bits = w_->oracle_(*w_, p) ? 2 : 1;
      }
    }
    oracle_bits_[p] = bits;
  }
}

// ---------------------------------------------------------------------------
// Phase 2: turns

void ShardedWorld::phase2_turns(unsigned s) {
  Shard& sh = shards_[s];
  for (ProcessId p = sh.lo; p < sh.hi; ++p) run_turn(sh, p);
}

void ShardedWorld::run_turn(Shard& sh, ProcessId p) {
  const LifeState l0 = w_->life_mirror_[p];
  if (l0 == LifeState::Gone) return;
  Channel& ch = w_->channels_[p];
  const std::size_t m0 = ch.size();
  const bool blocked =
      window_open_ && p < blocked_.size() && blocked_[p] != 0;
  if (l0 != LifeState::Awake && (m0 == 0 || blocked)) {
    // Asleep with nothing deliverable: no enabled action this epoch.
    if (blocked) sh.withheld += m0;
    return;
  }

  const std::uint64_t e = epochs_;
  Rng trng(turn_seed(p, e));

  // Plan the turn: the pending set is the channel content at turn start
  // (same-epoch sends are parked in outboxes until the barrier, so the
  // channel only shrinks while the turn runs).
  auto& seqs = sh.seq_scratch;
  seqs.clear();
  bool timeout_first = false;
  std::uint64_t timeout_slot = kNoSlot;
  switch (policy_.kind) {
    case ShardPolicy::Kind::Random: {
      seqs.reserve(m0);
      for (std::size_t i = 0; i < m0; ++i) seqs.push_back(ch.peek(i).seq);
      trng.shuffle(seqs);
      if (l0 == LifeState::Awake)
        timeout_slot = trng.below(static_cast<std::uint64_t>(m0) + 1);
      break;
    }
    case ShardPolicy::Kind::RoundRobin: {
      seqs.reserve(m0);
      for (std::size_t i = 0; i < m0; ++i) seqs.push_back(ch.peek(i).seq);
      std::sort(seqs.begin(), seqs.end());  // oldest send first
      if (l0 == LifeState::Awake && e % policy_.timeout_share == 0)
        timeout_slot = seqs.size();
      break;
    }
    case ShardPolicy::Kind::Rounds: {
      // The paper's asynchronous round: every pending message delivered,
      // then one timeout — an epoch IS a round.
      seqs.reserve(m0);
      for (std::size_t i = 0; i < m0; ++i) seqs.push_back(ch.peek(i).seq);
      std::sort(seqs.begin(), seqs.end());
      if (l0 == LifeState::Awake) timeout_slot = seqs.size();
      break;
    }
    case ShardPolicy::Kind::Adversarial: {
      // Maximal within-fairness delay: timeout first, then only messages
      // aged at least min_age epochs, newest first, burst-capped.
      if (l0 == LifeState::Awake) timeout_first = true;
      for (std::size_t i = 0; i < m0; ++i) {
        const Message& m = ch.peek(i);
        if (m.enqueued_at(e) + policy_.adv_min_age <= e)
          seqs.push_back(m.seq);
      }
      std::sort(seqs.begin(), seqs.end(), std::greater<std::uint64_t>());
      if (seqs.size() > policy_.adv_deliver_burst)
        seqs.resize(policy_.adv_deliver_burst);
      break;
    }
  }

  if (blocked) {
    // Partition window: deliveries into this process are withheld (the
    // blocked set is chosen serially at the barrier, so it is k-invariant
    // and the turn stays deterministic). Timeouts still run — time passes
    // on both sides of a cut.
    sh.withheld += seqs.size();
    seqs.clear();
    if (timeout_slot != kNoSlot) timeout_slot = 0;
  }

  if (timeout_first && w_->life_mirror_[p] == LifeState::Awake) {
    exec_action(sh, p, /*is_timeout=*/true, 0, trng);
    if (w_->life_mirror_[p] == LifeState::Gone) return;  // exit ends the turn
  }
  for (std::uint64_t j = 0; j <= seqs.size(); ++j) {
    if (j == timeout_slot && w_->life_mirror_[p] == LifeState::Awake) {
      // The slot is fixed at planning time; if an earlier delivery put the
      // process to sleep, the timeout is silently skipped (not enabled).
      exec_action(sh, p, /*is_timeout=*/true, 0, trng);
      if (w_->life_mirror_[p] == LifeState::Gone) return;
    }
    if (j == seqs.size()) break;
    exec_action(sh, p, /*is_timeout=*/false, seqs[j], trng);
    if (w_->life_mirror_[p] == LifeState::Gone) return;
  }
}

void ShardedWorld::exec_action(Shard& sh, ProcessId p, bool is_timeout,
                               std::uint64_t seq, Rng& trng) {
  const unsigned s = static_cast<unsigned>(&sh - shards_.data());
  Process& proc = *w_->procs_[p];
  Channel& ch = w_->channels_[p];
  const bool want_record = !w_->observers_.empty();

  PendingRecord pr;
  ActionRecord& rec = pr.rec;
  if (want_record) {
    rec.actor = p;
    // Synced: ref_list_ already holds the actor's current stored refs.
    const World::RefRow& row = w_->ref_list_[p];
    rec.refs_before.assign(row.begin(), row.end());
  }

  sh.sends.clear();
  Context ctx(w_, proc.self(), epochs_, &trng, &sh.sends, &sh.proc_scratch);
  ctx.oracle_pre_ = &oracle_bits_[p];

  if (is_timeout) {
    FDP_CHECK_MSG(w_->life_mirror_[p] == LifeState::Awake,
                  "timeout scheduled for non-awake process");
    ++sh.timeouts;
    if (want_record) rec.kind = ActionRecord::Kind::Timeout;
    proc.on_timeout(ctx);
  } else {
    const std::size_t idx = ch.index_of_seq(seq);
    FDP_CHECK_MSG(idx < ch.size(), "scheduled message vanished");
    Message m = ch.take(idx);
    // Every message in a non-gone process's channel is registered in the
    // edge index; remove the own-row side here and bucket the remote side.
    for (const RefInfo& r : m.refs) {
      if (r.ref.id() < w_->size()) {
        counts_remove(w_->ref_out_[p], r.ref.id());
        bucket_ref(s, r.ref.id(), p, -1);
      }
    }
    if (w_->life_mirror_[p] == LifeState::Asleep && ch.empty())
      ++sh.quiet_delta;
    ++sh.deliveries;
    const bool woke = w_->life_mirror_[p] == LifeState::Asleep;
    if (woke) {
      set_life_buffered(sh, p, LifeState::Awake);
      ++sh.wakes;
    }
    if (want_record) {
      rec.kind = ActionRecord::Kind::Deliver;
      rec.woke = woke;
      rec.consumed = m;
    }
    proc.on_message(ctx, m);
    sh.pool->recycle(m);
  }

  // Buffered outputs. Sends — self-sends included — go to the shard
  // outbox; their k-invariant seqs are assigned at the barrier.
  pr.outbox_start = static_cast<std::uint32_t>(sh.outbox.size());
  for (auto& [to, msg] : sh.sends) {
    FDP_CHECK(to.valid() && to.id() < w_->size());
    ++sh.sends_n;
    msg.stamp_enqueued(epochs_);  // epoch granularity (see DESIGN.md)
    if (want_record) rec.sent.emplace_back(to, msg);  // seq patched at flush
    sh.outbox.emplace_back(to, std::move(msg));
  }
  pr.outbox_count =
      static_cast<std::uint32_t>(sh.outbox.size()) - pr.outbox_start;

  // Stored-ref diff — identical to World::execute's, except the ref_in
  // side of every change is bucketed to the target's owner shard.
  sh.ref_scratch.clear();
  proc.collect_refs(sh.ref_scratch);
  World::RefRow& stored = w_->ref_list_[p];
  if (!stored.equals(sh.ref_scratch.data(), sh.ref_scratch.size())) {
    sh.match_scratch.assign(stored.size(), 0);
    for (const RefInfo& a : sh.ref_scratch) {
      bool matched = false;
      for (std::size_t i = 0; i < stored.size(); ++i) {
        if (!sh.match_scratch[i] && stored[i].ref.id() == a.ref.id()) {
          sh.match_scratch[i] = 1;
          matched = true;
          break;
        }
      }
      if (!matched && a.ref.id() < w_->size()) {
        counts_add(w_->edge_arena_, w_->ref_out_[p], a.ref.id());
        bucket_ref(s, a.ref.id(), p, +1);
      }
    }
    for (std::size_t i = 0; i < stored.size(); ++i) {
      if (!sh.match_scratch[i] && stored[i].ref.id() < w_->size()) {
        counts_remove(w_->ref_out_[p], stored[i].ref.id());
        bucket_ref(s, stored[i].ref.id(), p, -1);
      }
    }
    w_->ref_arena_.assign(stored, sh.ref_scratch.data(),
                          sh.ref_scratch.size());
  }
  if (want_record) rec.refs_after.assign(stored.begin(), stored.end());

  if (ctx.exit_requested_) {
    FDP_CHECK_MSG(!ctx.sleep_requested_, "action requested exit AND sleep");
    set_life_buffered(sh, p, LifeState::Gone);
    ++sh.exits;
    // Deregister every instance p still holds (stored refs + remaining
    // channel messages) — the sharded mirror of deregister_process_edges.
    // Same-epoch sends TO p are never registered: admission sees the Gone
    // state, exactly like classic admit() after an exit.
    for (const RefInfo& r : stored) {
      if (r.ref.id() < w_->size()) {
        counts_remove(w_->ref_out_[p], r.ref.id());
        bucket_ref(s, r.ref.id(), p, -1);
      }
    }
    for (const Message& m : ch.messages()) {
      for (const RefInfo& r : m.refs) {
        if (r.ref.id() < w_->size()) {
          counts_remove(w_->ref_out_[p], r.ref.id());
          bucket_ref(s, r.ref.id(), p, -1);
        }
      }
    }
    if (want_record) rec.exited = true;
  } else if (ctx.sleep_requested_) {
    set_life_buffered(sh, p, LifeState::Asleep);
    ++sh.sleeps;
    if (want_record) rec.slept = true;
  }

  ++sh.actions;
  if (want_record) sh.records.push_back(std::move(pr));
}

void ShardedWorld::set_life_buffered(Shard& sh, ProcessId p, LifeState to) {
  Process& proc = *w_->procs_[p];
  const LifeState from = proc.life_;
  if (from == to) return;
  const bool empty = w_->channels_[p].empty();
  if (from == LifeState::Asleep && empty) --sh.quiet_delta;
  proc.life_ = to;
  w_->life_mirror_[p] = to;
  if (to == LifeState::Asleep && empty) ++sh.quiet_delta;
  // awake_fw_ is shared; reconcile at the barrier (last event wins).
  sh.life_events.emplace_back(p, to);
}

void ShardedWorld::bucket_ref(unsigned src, ProcessId target,
                              ProcessId holder, std::int32_t delta) {
  ref_buckets_[static_cast<std::size_t>(src) * k_ + owner(target)].push_back(
      RefEvent{target, holder, delta});
}

// ---------------------------------------------------------------------------
// Phase 3: cross-shard admission

void ShardedWorld::phase3_admit(unsigned d) {
  Shard& dst = shards_[d];
  for (unsigned s = 0; s < k_; ++s) {
    auto& out = shards_[s].outbox;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const ProcessId to = out[i].first.id();
      if (to < dst.lo || to >= dst.hi) continue;
      // Each outbox entry is claimed by exactly one destination shard, so
      // moving out of the source vector is race-free.
      Message m = std::move(out[i].second);
      m.seq = seq_base_[s] + i;
      m.stamp_enqueued(epochs_);
      const LifeState l = w_->life_mirror_[to];
      if (l == LifeState::Asleep && w_->channels_[to].empty())
        --dst.quiet_delta;  // no longer quiet
      if (l != LifeState::Gone) {
        for (const RefInfo& r : m.refs) {
          if (r.ref.id() < w_->size()) {
            counts_add(w_->edge_arena_, w_->ref_out_[to], r.ref.id());
            bucket_ref(d, r.ref.id(), to, +1);
          }
        }
      }
      w_->channels_[to].push(std::move(m));
    }
  }
}

// ---------------------------------------------------------------------------
// Phase 4: remote edge rows

void ShardedWorld::phase4_edges(unsigned d) {
  const Shard& dst = shards_[d];
  (void)dst;
  for (unsigned s = 0; s < k_; ++s) {
    for (const RefEvent& ev :
         ref_buckets_[static_cast<std::size_t>(s) * k_ + d]) {
      if (ev.delta > 0) {
        counts_add(w_->edge_arena_, w_->ref_in_[ev.target], ev.holder);
      } else {
        counts_remove(w_->ref_in_[ev.target], ev.holder);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Serial epilogue

void ShardedWorld::epilogue() {
  std::uint64_t total_actions = 0;
  std::int64_t quiet_delta = 0;
  for (unsigned s = 0; s < k_; ++s) {
    Shard& sh = shards_[s];
    for (const auto& [p, l] : sh.life_events) {
      w_->awake_fw_.set(p, l == LifeState::Awake ? 1 : 0);
    }
    w_->timeouts_ += sh.timeouts;
    w_->deliveries_ += sh.deliveries;
    w_->sends_ += sh.sends_n;
    w_->exits_ += sh.exits;
    w_->sleeps_ += sh.sleeps;
    w_->wakes_ += sh.wakes;
    withheld_total_ += sh.withheld;
    quiet_delta += sh.quiet_delta;
    total_actions += sh.actions;
  }
  w_->quiet_count_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(w_->quiet_count_) + quiet_delta);

  if (!w_->observers_.empty()) {
    // Flush the epoch's records in (shard, emission) order — the global
    // id order — assigning consecutive step numbers and the final seqs of
    // each record's sends. Observers see the end-of-epoch world state
    // (the sharded contract; monitors doing full recomputes are exact,
    // per-action incremental ones belong to the classic engine).
    for (unsigned s = 0; s < k_; ++s) {
      for (PendingRecord& pr : shards_[s].records) {
        pr.rec.step = w_->steps_++;
        for (std::uint32_t j = 0; j < pr.outbox_count; ++j) {
          pr.rec.sent[j].second.seq = seq_base_[s] + pr.outbox_start + j;
        }
        for (Observer* o : w_->observers_) o->on_action(*w_, pr.rec);
      }
    }
  } else {
    w_->steps_ += total_actions;
  }

  epoch_progress_ = total_actions > 0;
  if (have_faults_) inject_due_faults();
  ++epochs_;
}

// ---------------------------------------------------------------------------
// Barrier-time fault injection

void ShardedWorld::inject_due_faults() {
  const std::uint64_t now = w_->steps_;

  // Close a due window first (and announce it exactly once): recovery
  // attribution starts where withheld deliveries are released.
  if (window_open_ && partition_until_ <= now) {
    window_open_ = false;
    barrier_fault_applied_ = true;
    w_->announce_fault(FaultKind::PartitionEnd, kNoProcess, false);
    w_->announce_fault(FaultKind::PartitionEnd, kNoProcess, true);
  }

  while (fault_cursor_ < fault_plan_.events.size() &&
         fault_plan_.events[fault_cursor_].step <= now) {
    apply_fault(fault_plan_.events[fault_cursor_]);
    ++fault_cursor_;
  }

  // Stochastic regime: the classic injector rolls once per step; at epoch
  // granularity that collapses to one roll per fault class per EPOCH — a
  // documented reinterpretation (DESIGN.md, "sharded kernel").
  if (now < fault_plan_.stochastic_until &&
      epochs_ != last_stochastic_epoch_) {
    last_stochastic_epoch_ = epochs_;
    if (fault_plan_.p_crash > 0.0 && fault_rng_.chance(fault_plan_.p_crash))
      apply_fault(FaultEvent{now, FaultKind::CrashRestart, 1});
    if (fault_plan_.p_scramble > 0.0 &&
        fault_rng_.chance(fault_plan_.p_scramble))
      apply_fault(FaultEvent{now, FaultKind::Scramble, 1});
    if (fault_plan_.p_duplicate > 0.0 &&
        fault_rng_.chance(fault_plan_.p_duplicate))
      apply_fault(FaultEvent{now, FaultKind::DuplicateBurst, 0});
    if (fault_plan_.p_partition > 0.0 &&
        fault_rng_.chance(fault_plan_.p_partition))
      apply_fault(FaultEvent{now, FaultKind::PartitionStart, 1});
  }

  // Progress guarantee: an epoch in which everything enabled was blocked
  // deliveries must still terminate the window — the sharded analogue of
  // the classic injector's partition leak.
  if (!epoch_progress_ && !barrier_fault_applied_ && window_open_) {
    window_open_ = false;
    partition_until_ = now;
    barrier_fault_applied_ = true;
    w_->announce_fault(FaultKind::PartitionEnd, kNoProcess, false);
    w_->announce_fault(FaultKind::PartitionEnd, kNoProcess, true);
  }
}

void ShardedWorld::apply_fault(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::CrashRestart:
    case FaultKind::Scramble: {
      for (std::uint32_t i = 0; i < ev.count; ++i) {
        if (w_->awake_count() == 0) break;  // awake_fw_ reconciled above
        const ProcessId victim =
            w_->kth_awake(fault_rng_.below(w_->awake_count()));
        w_->announce_fault(ev.kind, victim, false);
        const bool ok =
            ev.kind == FaultKind::CrashRestart
                ? w_->process_mut(victim).fault_crash_restart(fault_rng_)
                : w_->process_mut(victim).fault_scramble(fault_rng_);
        if (!ok) continue;
        if (ev.kind == FaultKind::CrashRestart) {
          ++crashes_;
        } else {
          ++scrambles_;
        }
        barrier_fault_applied_ = true;
        // process_mut dropped the edge index; the next epoch() rebuilds it
        // before the oracle precompute reads it.
        w_->announce_fault(ev.kind, victim, true);
      }
      break;
    }
    case FaultKind::DuplicateBurst: {
      // The live-message Fenwick is stale during a sharded run; count and
      // select by scanning channels (serial, fault-path only).
      std::uint64_t live = 0;
      for (ProcessId p = 0; p < w_->size(); ++p) {
        if (w_->life_mirror_[p] != LifeState::Gone)
          live += w_->channels_[p].size();
      }
      if (live == 0) break;
      w_->announce_fault(ev.kind, kNoProcess, false);
      const std::uint32_t burst =
          ev.count > 0 ? ev.count : fault_plan_.duplicate_burst;
      std::uint64_t done = 0;
      for (std::uint32_t i = 0; i < burst; ++i) {
        if (live == 0) break;
        const auto [p, seq] = scan_kth_live(fault_rng_.below(live));
        if (p == kNoProcess) break;
        const Channel& ch = w_->channels_[p];
        const std::size_t idx = ch.index_of_seq(seq);
        if (idx >= ch.size()) continue;
        const Message& src = ch.peek(idx);
        Message copy;
        copy.set_verb(src.verb());
        copy.set_tag(src.tag());
        copy.token = src.token;
        w_->msg_pool_.assign_refs(copy.refs, {src.refs.data(),
                                              src.refs.size()});
        copy.seq = w_->next_seq_++;
        copy.stamp_enqueued(epochs_);
        if (w_->life_mirror_[p] == LifeState::Asleep &&
            w_->channels_[p].empty())
          --w_->quiet_count_;
        if (w_->edges_synced_) {
          for (const RefInfo& r : copy.refs) {
            if (r.ref.id() < w_->size()) {
              counts_add(w_->edge_arena_, w_->ref_out_[p], r.ref.id());
              counts_add(w_->edge_arena_, w_->ref_in_[r.ref.id()], p);
            }
          }
        }
        w_->channels_[p].push(std::move(copy));
        if (!w_->observers_.empty())
          w_->notify_inject(p, w_->channels_[p].messages().back());
        ++live;
        ++done;
      }
      if (done > 0) {
        duplicates_ += done;
        ++bursts_;
        barrier_fault_applied_ = true;
        w_->announce_fault(ev.kind, kNoProcess, true);
      }
      break;
    }
    case FaultKind::PartitionStart: {
      if (window_open_) break;  // one window at a time
      const std::size_t n = w_->size();
      if (n == 0) break;
      w_->announce_fault(ev.kind, kNoProcess, false);
      blocked_.assign(n, 0);
      bool any = false;
      for (std::size_t p = 0; p < n; ++p) {
        if (fault_rng_.chance(0.5)) {
          blocked_[p] = 1;
          any = true;
        }
      }
      if (!any) blocked_[fault_rng_.below(n)] = 1;
      partition_until_ = w_->steps_ + fault_plan_.partition_window;
      window_open_ = true;
      ++partitions_;
      barrier_fault_applied_ = true;
      w_->announce_fault(ev.kind, kNoProcess, true);
      break;
    }
    case FaultKind::PartitionEnd:
      break;  // synthesized at window close, never scheduled
  }
}

std::pair<ProcessId, std::uint64_t> ShardedWorld::scan_kth_live(
    std::uint64_t k) const {
  for (ProcessId p = 0; p < w_->size(); ++p) {
    if (w_->life_mirror_[p] == LifeState::Gone) continue;
    const std::size_t sz = w_->channels_[p].size();
    if (k < sz) return {p, w_->channels_[p].peek(k).seq};
    k -= sz;
  }
  return {kNoProcess, 0};
}

// ---------------------------------------------------------------------------
// Handover back to the classic engine

void ShardedWorld::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Rebuild the live-message indices the epoch loop left stale.
  w_->live_seq_.clear();
  w_->oldest_heap_.clear();
  for (ProcessId p = 0; p < w_->size(); ++p) {
    const Channel& ch = w_->channels_[p];
    const bool live = w_->life_mirror_[p] != LifeState::Gone;
    w_->live_fw_.set(p, live ? static_cast<std::uint32_t>(ch.size()) : 0);
    if (!live) continue;
    for (const Message& m : ch.messages()) {
      w_->live_seq_.emplace(m.seq, p);
      w_->oldest_heap_.emplace(m.seq, p);
    }
  }
}

}  // namespace fdp
