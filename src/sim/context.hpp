// Action execution context.
//
// One Context instance exists for the duration of one atomic action
// (timeout execution or message delivery). It buffers the action's outputs
// — sent messages and the special commands exit/sleep — which the kernel
// applies after the action body returns; this gives the paper's atomic
// interleaving semantics and a precise before/after pair for the primitive
// audit.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/ids.hpp"
#include "sim/message.hpp"
#include "util/rng.hpp"

namespace fdp {

class Substrate;
namespace net {
class NetRuntime;
}

class Context {
 public:
  /// Send `m` to the process referenced by `to` (which may be self()).
  /// Corresponds to the paper's `to <- label(parameters)`.
  void send(Ref to, Message m);

  /// Execute the paper's `exit` command: the process becomes gone after
  /// this action completes. Irrevocable.
  void exit_process() { exit_requested_ = true; }

  /// Execute the paper's `sleep` command: the process becomes asleep after
  /// this action completes; it is woken by the next delivered message.
  void sleep_process() { sleep_requested_ = true; }

  /// Consult the oracle installed in the Substrate for the calling
  /// process. (The departure protocol calls this only from a leaving
  /// process's timeout, per the paper's definition of "relying on an
  /// oracle".)
  [[nodiscard]] bool oracle() const;

  /// Per-world RNG stream (protocol-visible randomness, reproducible).
  [[nodiscard]] Rng& rng() const { return *rng_; }

  [[nodiscard]] Ref self() const { return self_; }
  [[nodiscard]] std::uint64_t step() const { return step_; }

  /// Action-scoped scratch for RefInfo lists (the departure timeout's
  /// neighborhood iterations). Borrowers clear() before filling; capacity
  /// is retained by the owning substrate across actions, so the steady-
  /// state step path never allocates. Actions never nest, so one buffer
  /// per substrate (per shard in the sharded kernel) suffices — the same
  /// ownership story as sends().
  [[nodiscard]] std::vector<RefInfo>& ref_scratch() const {
    return *ref_scratch_;
  }

  // --- kernel access ---
  [[nodiscard]] const std::vector<std::pair<Ref, Message>>& sends() const {
    return *sends_;
  }
  [[nodiscard]] bool exit_requested() const { return exit_requested_; }
  [[nodiscard]] bool sleep_requested() const { return sleep_requested_; }

 private:
  friend class World;
  friend class ShardedWorld;
  friend class net::NetRuntime;  // the socket runtime builds contexts too
  /// `sends` is a substrate-owned scratch buffer, cleared (capacity kept)
  /// by the kernel before each action — a Context per step must not cost a
  /// vector allocation. The kernel is single-threaded and actions never
  /// nest, so one buffer per substrate suffices. (The sharded kernel hands
  /// each shard its own buffer instead.)
  Context(const Substrate* sub, Ref self, std::uint64_t step, Rng* rng,
          std::vector<std::pair<Ref, Message>>* sends,
          std::vector<RefInfo>* ref_scratch)
      : sub_(sub),
        self_(self),
        step_(step),
        rng_(rng),
        sends_(sends),
        ref_scratch_(ref_scratch) {}

  const Substrate* sub_;
  Ref self_;
  std::uint64_t step_;
  Rng* rng_;
  std::vector<std::pair<Ref, Message>>* sends_;
  std::vector<RefInfo>* ref_scratch_;
  /// Sharded-kernel oracle override: when set, oracle() reads this
  /// precomputed verdict (0 = not precomputed — consulting is an error,
  /// 1 = false, 2 = true) instead of calling into the World, whose
  /// edge/quiet indices are not safe to read from a parallel turn phase.
  const std::uint8_t* oracle_pre_ = nullptr;
  bool exit_requested_ = false;
  bool sleep_requested_ = false;
};

}  // namespace fdp
