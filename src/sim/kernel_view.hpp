// KernelView: the scheduler-facing surface of the kernel.
//
// A Scheduler never needs the whole World — it needs the maintained
// sampling indices (awake roster, live-message counts, oldest-seq heap),
// read access to channels and life states, and the step clock. KernelView
// packages exactly that surface behind an id *window* [lo, hi):
//
//  * The full-window view (implicitly constructible from `const World&`)
//    delegates every query 1:1 to the World's O(log n) indices, so the
//    classic single-threaded step loop keeps its hot path — and its byte-
//    identical golden traces — unchanged.
//  * A sub-window view restricts every query to processes in [lo, hi):
//    counts become Fenwick prefix differences, k-th selection offsets into
//    the window, and cursor wrap-around stays inside the window. This is
//    the shard-local view of the sharded kernel (sim/sharded_world.hpp):
//    a scheduler handed a sub-window can only observe and schedule its own
//    shard's processes.
//
// The class is a concrete, non-virtual friend of World: every full-window
// query inlines to the same loads the schedulers previously did on the
// World directly, so the redesign costs nothing on the ~95 ns steady-state
// step path.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/world.hpp"
#include "util/check.hpp"

namespace fdp {

class KernelView {
 public:
  /// Full-window view. Implicit on purpose: existing `sched.next(world,
  /// rng)` call sites keep compiling — this conversion is the migration
  /// shim promised by the Scheduler-API redesign.
  KernelView(const World& w)  // NOLINT(google-explicit-constructor)
      : w_(&w), lo_(0), hi_(static_cast<ProcessId>(w.size())) {}

  /// Shard-local view over processes with id in [lo, hi).
  KernelView(const World& w, ProcessId lo, ProcessId hi)
      : w_(&w), lo_(lo), hi_(hi) {
    FDP_DCHECK(lo <= hi && hi <= w.size());
  }

  [[nodiscard]] const World& world() const { return *w_; }
  [[nodiscard]] ProcessId lo() const { return lo_; }
  [[nodiscard]] ProcessId hi() const { return hi_; }
  /// Number of process ids inside the window.
  [[nodiscard]] std::uint64_t span() const { return hi_ - lo_; }
  [[nodiscard]] bool full() const { return lo_ == 0 && hi_ == w_->size(); }

  // --- per-process state (any id; window-independent) ---

  [[nodiscard]] std::size_t size() const { return w_->size(); }
  [[nodiscard]] LifeState life(ProcessId p) const { return w_->life(p); }
  [[nodiscard]] bool gone(ProcessId p) const { return w_->gone(p); }
  [[nodiscard]] const Channel& channel(ProcessId p) const {
    return w_->channel(p);
  }
  [[nodiscard]] std::uint64_t steps() const { return w_->steps(); }

  // --- awake roster (window-filtered) ---

  [[nodiscard]] std::uint64_t awake_count() const {
    if (full()) return w_->awake_count();
    return w_->awake_fw_.prefix(hi_) - w_->awake_fw_.prefix(lo_);
  }
  /// The k-th awake process of the window in ascending id order.
  [[nodiscard]] ProcessId kth_awake(std::uint64_t k) const {
    if (full()) return w_->kth_awake(k);
    return static_cast<ProcessId>(
        w_->awake_fw_.select(w_->awake_fw_.prefix(lo_) + k));
  }
  /// Smallest awake id in [max(from, lo), hi), or kNoProcess.
  [[nodiscard]] ProcessId next_awake(ProcessId from) const {
    const ProcessId p = w_->next_awake(from < lo_ ? lo_ : from);
    return p < hi_ ? p : kNoProcess;
  }
  /// Awake ids inside the window (O(window); tests and per-round plans).
  [[nodiscard]] std::vector<ProcessId> awake_ids() const {
    if (full()) return w_->awake_ids();
    std::vector<ProcessId> out;
    for (ProcessId p = lo_; p < hi_; ++p)
      if (w_->life(p) == LifeState::Awake) out.push_back(p);
    return out;
  }

  // --- live messages (window-filtered) ---

  [[nodiscard]] std::uint64_t live_message_count() const {
    if (full()) return w_->live_message_count();
    return w_->live_fw_.prefix(hi_) - w_->live_fw_.prefix(lo_);
  }
  /// The k-th live message of the window in (process ascending, channel
  /// slot) order.
  [[nodiscard]] std::pair<ProcessId, std::uint64_t> kth_live_message(
      std::uint64_t k) const {
    if (full()) return w_->kth_live_message(k);
    return w_->kth_live_message(w_->live_fw_.prefix(lo_) + k);
  }
  /// Smallest non-gone id in [max(from, lo), hi) with a non-empty channel.
  [[nodiscard]] ProcessId next_deliverable(ProcessId from) const {
    const ProcessId p = w_->next_deliverable(from < lo_ ? lo_ : from);
    return p < hi_ ? p : kNoProcess;
  }
  /// (proc, seq) of the window's oldest live message; kNoProcess when
  /// none. Full window: O(log m) amortized off the world's heap. Sub
  /// window: O(window) channel scan (shard-local schedulers that need
  /// this per step should track their own candidates instead).
  [[nodiscard]] std::pair<ProcessId, std::uint64_t> oldest_live_message()
      const {
    if (full()) return w_->oldest_live_message();
    ProcessId best = kNoProcess;
    std::uint64_t best_seq = ~0ULL;
    for (ProcessId p = w_->next_deliverable(lo_); p != kNoProcess && p < hi_;
         p = w_->next_deliverable(p + 1)) {
      const Channel& ch = w_->channel(p);
      const std::uint64_t seq = ch.peek(ch.oldest_index()).seq;
      if (seq < best_seq) {
        best_seq = seq;
        best = p;
      }
    }
    return {best, best == kNoProcess ? ~0ULL : best_seq};
  }

  // --- message identity (window-filtered) ---

  [[nodiscard]] std::uint64_t seq_watermark() const {
    return w_->seq_watermark();
  }
  /// Holder of live message `seq` if it lies inside the window, else
  /// kNoProcess.
  [[nodiscard]] ProcessId find_live_message(std::uint64_t seq) const {
    const ProcessId p = w_->find_live_message(seq);
    if (p == kNoProcess || full()) return p;
    return (p >= lo_ && p < hi_) ? p : kNoProcess;
  }

  // --- oracle context (deliberately NOT window-filtered: oracles are
  // predicates over the whole system state) ---

  [[nodiscard]] std::uint64_t quiet_count() const { return w_->quiet_count(); }

 private:
  const World* w_;
  ProcessId lo_;
  ProcessId hi_;
};

}  // namespace fdp
