// Core identity types of the simulation model.
//
// The paper's model (Section 1.1) has processes with unique references;
// protocols are "copy-store-send": they may copy references, store them,
// send them in messages and compare them for equality — nothing else. The
// `Ref` type encodes exactly that contract: protocol code receives `Ref`s,
// can compare them, and can hand them back to the kernel (store / send), but
// has no arithmetic access to the underlying identity. The raw id is exposed
// only through `Ref::id()`, which is reserved for kernel, analysis and test
// code (the paper's "underlying communication layer").
#pragma once

#include <cstdint>
#include <limits>

namespace fdp {

/// Dense process identity; index into the World's process array.
using ProcessId = std::uint32_t;

inline constexpr ProcessId kNoProcess =
    std::numeric_limits<ProcessId>::max();

/// The read-only departure intention of a process (paper: mode(u)).
enum class Mode : std::uint8_t { Staying, Leaving };

/// The life-cycle state graph of a process (paper Fig. 1):
/// awake --exit--> gone (absorbing), awake --sleep--> asleep,
/// asleep --message received--> awake.
enum class LifeState : std::uint8_t { Awake, Asleep, Gone };

/// A process's *knowledge* of another process's mode. Unlike Mode this can
/// be stale/invalid (self-stabilization starts from arbitrary states) or,
/// inside the Section-4 framework's message list, still unverified.
enum class ModeInfo : std::uint8_t { Staying, Leaving, Unknown };

[[nodiscard]] constexpr ModeInfo to_info(Mode m) {
  return m == Mode::Staying ? ModeInfo::Staying : ModeInfo::Leaving;
}

[[nodiscard]] constexpr bool matches(ModeInfo info, Mode m) {
  return info == to_info(m);
}

[[nodiscard]] constexpr const char* to_string(Mode m) {
  return m == Mode::Staying ? "staying" : "leaving";
}

[[nodiscard]] constexpr const char* to_string(LifeState s) {
  switch (s) {
    case LifeState::Awake: return "awake";
    case LifeState::Asleep: return "asleep";
    case LifeState::Gone: return "gone";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(ModeInfo i) {
  switch (i) {
    case ModeInfo::Staying: return "staying";
    case ModeInfo::Leaving: return "leaving";
    case ModeInfo::Unknown: return "unknown";
  }
  return "?";
}

/// An opaque process reference. Equality-comparable (the only operation the
/// paper's protocols need: "it can check via v = w whether two references
/// point to the same process"). Ordering is provided solely so references
/// can key ordered containers; protocol logic must not branch on it.
class Ref {
 public:
  constexpr Ref() = default;

  [[nodiscard]] constexpr bool valid() const { return id_ != kNoProcess; }

  friend constexpr bool operator==(Ref a, Ref b) { return a.id_ == b.id_; }
  friend constexpr bool operator!=(Ref a, Ref b) { return a.id_ != b.id_; }
  /// Container-ordering only; not part of the protocol-visible interface.
  friend constexpr bool operator<(Ref a, Ref b) { return a.id_ < b.id_; }

  /// Kernel/analysis-layer access to the raw identity.
  [[nodiscard]] constexpr ProcessId id() const { return id_; }

  /// Kernel/analysis-layer constructor.
  [[nodiscard]] static constexpr Ref make(ProcessId id) { return Ref(id); }

 private:
  constexpr explicit Ref(ProcessId id) : id_(id) {}
  ProcessId id_ = kNoProcess;
};

/// A reference together with the knowledge that travels with it.
///
/// The paper (Section 3): "whenever a process a sends a request to call
/// present or forward containing a reference of a process b to another
/// process c, it automatically sends some relevant information it knows
/// about b along with it" — here the believed mode. Overlay protocols
/// additionally piggyback an application-level key (e.g. the position used
/// by linearization); the departure layer never reads it, matching the
/// paper's remark that the underlying layer keeps full flexibility over
/// referencing information.
struct RefInfo {
  Ref ref;
  ModeInfo mode = ModeInfo::Unknown;
  std::uint64_t key = 0;

  friend bool operator==(const RefInfo&, const RefInfo&) = default;
};

}  // namespace fdp
