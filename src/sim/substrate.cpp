#include "sim/substrate.hpp"

#include "sim/process.hpp"

namespace fdp {

Substrate::~Substrate() = default;

Mode Substrate::mode(ProcessId id) const { return process(id).mode(); }

void Substrate::set_process_life(Process& p, LifeState s) { p.life_ = s; }

}  // namespace fdp
