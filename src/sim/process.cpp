#include "sim/process.hpp"

namespace fdp {

// Out-of-line key function: anchors the vtable in one translation unit.
Process::~Process() = default;

}  // namespace fdp
