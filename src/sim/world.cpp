#include "sim/world.hpp"

#include <algorithm>

namespace fdp {

World::World(std::uint64_t seed) : rng_(seed) {}

void World::post(Ref to, Message m) {
  FDP_CHECK(to.valid() && to.id() < size());
  m.seq = next_seq_++;
  m.enqueued_at = steps_;
  channels_[to.id()].push(std::move(m));
}

bool World::discard_message(ProcessId id, std::uint64_t seq) {
  FDP_CHECK(id < size());
  Channel& ch = channels_[id];
  const std::size_t idx = ch.index_of_seq(seq);
  if (idx >= ch.size()) return false;
  (void)ch.take(idx);
  return true;
}

bool World::duplicate_message(ProcessId id, std::uint64_t seq) {
  FDP_CHECK(id < size());
  Channel& ch = channels_[id];
  const std::size_t idx = ch.index_of_seq(seq);
  if (idx >= ch.size()) return false;
  Message copy = ch.peek(idx);
  copy.seq = next_seq_++;
  copy.enqueued_at = steps_;
  ch.push(std::move(copy));
  return true;
}

bool World::oracle_value(ProcessId id) const {
  FDP_CHECK_MSG(static_cast<bool>(oracle_), "no oracle installed");
  return oracle_(*this, id);
}

void World::remove_observer(Observer* obs) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), obs),
                   observers_.end());
}

std::vector<ProcessId> World::awake_ids() const {
  std::vector<ProcessId> out;
  for (ProcessId i = 0; i < procs_.size(); ++i)
    if (procs_[i]->life() == LifeState::Awake) out.push_back(i);
  return out;
}

std::vector<ProcessId> World::deliverable_ids() const {
  std::vector<ProcessId> out;
  for (ProcessId i = 0; i < procs_.size(); ++i)
    if (procs_[i]->life() != LifeState::Gone && !channels_[i].empty())
      out.push_back(i);
  return out;
}

std::uint64_t World::live_message_count() const {
  std::uint64_t n = 0;
  for (ProcessId i = 0; i < procs_.size(); ++i)
    if (procs_[i]->life() != LifeState::Gone) n += channels_[i].size();
  return n;
}

std::pair<ProcessId, std::uint64_t> World::oldest_live_message() const {
  ProcessId best_proc = kNoProcess;
  std::uint64_t best_seq = ~0ULL;
  for (ProcessId i = 0; i < procs_.size(); ++i) {
    if (procs_[i]->life() == LifeState::Gone) continue;
    for (const Message& m : channels_[i].messages()) {
      if (m.seq < best_seq) {
        best_seq = m.seq;
        best_proc = i;
      }
    }
  }
  return {best_proc, best_seq};
}

bool World::step(Scheduler& sched) {
  ActionChoice choice = sched.next(*this, rng_);
  if (choice.kind == ActionChoice::Kind::None) return false;
  execute(choice);
  return true;
}

bool World::run_until(Scheduler& sched, std::uint64_t max_steps,
                      const std::function<bool(const World&)>& done) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (done(*this)) return true;
    if (!step(sched)) return done(*this);
  }
  return done(*this);
}

void World::execute(ActionChoice choice) {
  FDP_CHECK(choice.proc < procs_.size());
  Process& p = *procs_[choice.proc];
  const bool want_record = !observers_.empty();

  ActionRecord rec;
  if (want_record) {
    rec.actor = choice.proc;
    rec.step = steps_;
    p.collect_refs(rec.refs_before);
  }

  Context ctx(this, p.self(), steps_, &rng_);

  if (choice.kind == ActionChoice::Kind::Timeout) {
    FDP_CHECK_MSG(p.life() == LifeState::Awake,
                  "timeout scheduled for non-awake process");
    ++timeouts_;
    if (want_record) rec.kind = ActionRecord::Kind::Timeout;
    p.on_timeout(ctx);
  } else {
    FDP_CHECK_MSG(p.life() != LifeState::Gone,
                  "delivery scheduled for gone process");
    Channel& ch = channels_[choice.proc];
    const std::size_t idx = ch.index_of_seq(choice.msg_seq);
    FDP_CHECK_MSG(idx < ch.size(), "scheduled message vanished");
    Message m = ch.take(idx);
    ++deliveries_;
    const bool woke = p.life() == LifeState::Asleep;
    if (woke) {
      // Paper: "p becomes awake again as soon as the corresponding message
      // is processed" — the wake precedes the action body.
      p.life_ = LifeState::Awake;
      ++wakes_;
    }
    if (want_record) {
      rec.kind = ActionRecord::Kind::Deliver;
      rec.woke = woke;
      rec.consumed = m;
    }
    p.on_message(ctx, m);
  }

  // Apply buffered outputs: sends first, then the special commands. The
  // paper's exit/sleep take effect as part of the same atomic action.
  for (auto& [to, msg] : ctx.sends_) {
    FDP_CHECK(to.valid() && to.id() < size());
    msg.seq = next_seq_++;
    msg.enqueued_at = steps_;
    ++sends_;
    if (want_record) rec.sent.emplace_back(to, msg);
    channels_[to.id()].push(std::move(msg));
  }

  if (ctx.exit_requested_) {
    FDP_CHECK_MSG(!ctx.sleep_requested_, "action requested exit AND sleep");
    p.life_ = LifeState::Gone;
    ++exits_;
    if (want_record) rec.exited = true;
  } else if (ctx.sleep_requested_) {
    p.life_ = LifeState::Asleep;
    ++sleeps_;
    if (want_record) rec.slept = true;
  }

  ++steps_;

  if (want_record) {
    p.collect_refs(rec.refs_after);
    for (Observer* obs : observers_) obs->on_action(*this, rec);
  }
}

}  // namespace fdp
