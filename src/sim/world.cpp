#include "sim/world.hpp"

#include <algorithm>

#include "sim/kernel_view.hpp"

namespace fdp {

World::World(std::uint64_t seed) : rng_(seed) {}

void World::reset(std::uint64_t seed) {
  // Drain every channel into the message pool first: only live messages
  // can own spilled ref buffers, and recycling them is what makes a reused
  // world's next trial allocation-free even for oversized messages.
  for (Channel& ch : channels_) ch.reset(&msg_pool_);
  procs_.clear();  // protocol state is per-trial; processes are rebuilt
  // channels_/life_mirror_/ref rows are retained: spawn() reuses row id
  // when present, and rows beyond the next population's size are never
  // read (every kernel loop is bounded by procs_.size()).
  observers_.clear();
  oracle_ = nullptr;
  rng_ = Rng(seed);
  next_seq_ = 1;
  steps_ = timeouts_ = deliveries_ = sends_ = exits_ = sleeps_ = wakes_ = 0;
  awake_fw_.clear();
  live_fw_.clear();
  live_seq_.clear();
  oldest_heap_.clear();
  quiet_count_ = 0;
  edges_synced_ = false;  // rebuilt lazily; rows cleared by the rebuild
}

const Message& World::admit(ProcessId to, Message&& m) {
  m.seq = next_seq_++;
  m.stamp_enqueued(steps_);
  const LifeState to_life = life_mirror_[to];
  const bool live = to_life != LifeState::Gone;
  if (live) {
    live_seq_.emplace(m.seq, to);
    live_fw_.add(to, 1);
    oldest_heap_.emplace(m.seq, to);
  }
  if (to_life == LifeState::Asleep && channels_[to].empty())
    --quiet_count_;  // no longer quiet: something to wake up for
  channels_[to].push(std::move(m));
  const Message& admitted = channels_[to].messages().back();
  if (live && edges_synced_) add_message_refs(to, admitted);
  return admitted;
}

Message World::take_message(ProcessId p, std::size_t idx) {
  Message m = channels_[p].take(idx);
  // Registered iff the holder was live; its oldest_heap_ entry goes stale
  // and is discarded lazily.
  if (live_seq_.erase(m.seq)) {
    live_fw_.add(p, -1);
    if (edges_synced_) remove_message_refs(p, m);
  }
  if (life_mirror_[p] == LifeState::Asleep && channels_[p].empty())
    ++quiet_count_;
  return m;
}

void World::set_life(ProcessId p, LifeState to) {
  Process& proc = *procs_[p];
  const LifeState from = proc.life_;
  if (from == to) return;
  if (from == LifeState::Asleep && channels_[p].empty()) --quiet_count_;
  proc.life_ = to;
  life_mirror_[p] = to;
  if (to == LifeState::Asleep && channels_[p].empty()) ++quiet_count_;
  awake_fw_.set(p, to == LifeState::Awake ? 1 : 0);
  if (to == LifeState::Gone) {
    // The channel's messages are dead: they can never be delivered, and
    // none of p's reference instances can ever propagate again.
    for (const Message& m : channels_[p].messages()) live_seq_.erase(m.seq);
    live_fw_.set(p, 0);
    if (edges_synced_) deregister_process_edges(p);
  } else if (from == LifeState::Gone) {
    // Resurrection (model-checker state reconstruction): the channel's
    // messages — and every instance p holds — become live again.
    for (const Message& m : channels_[p].messages()) {
      live_seq_.emplace(m.seq, p);
      oldest_heap_.emplace(m.seq, p);
    }
    live_fw_.set(p, channels_[p].size());
    if (edges_synced_) register_process_edges(p);
  }
}

namespace {

void counts_add(RowArena<World::EdgePair>& arena, World::EdgeRow& v,
                ProcessId peer) {
  for (auto& [q, cnt] : v) {
    if (q == peer) {
      ++cnt;
      return;
    }
  }
  arena.push_back(v, {peer, 1});
}

void counts_remove(World::EdgeRow& v, ProcessId peer) {
  for (auto& e : v) {
    if (e.first == peer) {
      if (--e.second == 0) {
        e = v.back();
        v.pop_back();
      }
      return;
    }
  }
  FDP_DCHECK(false);
}

}  // namespace

void World::add_edge_instance(ProcessId holder, ProcessId target) const {
  if (target >= size()) return;  // out-of-system reference: no edge
  counts_add(edge_arena_, ref_out_[holder], target);
  counts_add(edge_arena_, ref_in_[target], holder);
}

void World::remove_edge_instance(ProcessId holder, ProcessId target) const {
  if (target >= size()) return;
  counts_remove(ref_out_[holder], target);
  counts_remove(ref_in_[target], holder);
}

void World::add_message_refs(ProcessId holder, const Message& m) const {
  for (const RefInfo& r : m.refs) add_edge_instance(holder, r.ref.id());
}

void World::remove_message_refs(ProcessId holder, const Message& m) const {
  for (const RefInfo& r : m.refs) remove_edge_instance(holder, r.ref.id());
}

void World::register_process_edges(ProcessId p) const {
  for (const RefInfo& r : ref_list_[p]) add_edge_instance(p, r.ref.id());
  for (const Message& m : channels_[p].messages()) add_message_refs(p, m);
}

void World::deregister_process_edges(ProcessId p) const {
  for (const RefInfo& r : ref_list_[p]) remove_edge_instance(p, r.ref.id());
  for (const Message& m : channels_[p].messages()) remove_message_refs(p, m);
}

void World::ensure_edge_index() const {
  if (edges_synced_) return;
  // Clear row by row instead of assign(): assign would free every inner
  // vector's capacity, turning each rebuild into O(n) fresh allocations.
  if (ref_out_.size() < size()) {
    ref_out_.resize(size());
    ref_in_.resize(size());
  }
  for (ProcessId p = 0; p < size(); ++p) {
    ref_out_[p].clear();
    ref_in_[p].clear();
  }
  for (ProcessId p = 0; p < size(); ++p) {
    // Refresh the stored-ref cache for everyone — including gone
    // processes, whose refs can no longer change but must be re-added
    // verbatim if the model checker resurrects them.
    scratch_refs_.clear();
    procs_[p]->collect_refs(scratch_refs_);
    ref_arena_.assign(ref_list_[p], scratch_refs_.data(),
                      scratch_refs_.size());
    if (life_mirror_[p] != LifeState::Gone) register_process_edges(p);
  }
  edges_synced_ = true;
}

std::size_t World::incident_nongone(ProcessId p) const {
  FDP_CHECK(p < size());
  if (gone(p)) return 0;
  ensure_edge_index();
  const EdgeRow& out = ref_out_[p];
  std::size_t count = 0;
  for (const auto& [q, cnt] : out) {
    (void)cnt;
    if (q != p && !gone(q)) ++count;
  }
  for (const auto& [q, cnt] : ref_in_[p]) {
    (void)cnt;
    if (q == p || gone(q)) continue;
    bool also_out = false;
    for (const auto& [t, c] : out) {
      (void)c;
      if (t == q) {
        also_out = true;
        break;
      }
    }
    if (!also_out) ++count;
  }
  return count;
}

bool World::referenced_by_other(ProcessId p) const {
  FDP_CHECK(p < size());
  ensure_edge_index();
  for (const auto& [q, cnt] : ref_in_[p]) {
    (void)cnt;
    if (q != p && !gone(q)) return true;
  }
  return false;
}

alloc_stats::ByteBuckets World::footprint(bool capacity) const {
  alloc_stats::ByteBuckets b;
  const std::size_t n = size();

  // Processes: roster slots plus each object and its protocol storage.
  b.processes = (capacity ? procs_.capacity() : n) *
                sizeof(std::unique_ptr<Process>);
  for (ProcessId p = 0; p < n; ++p)
    b.processes += procs_[p]->footprint_bytes(capacity);

  // Channels and messages (arena slack beyond size() rows counts only in
  // capacity mode; rows beyond the population are drained by reset()).
  const std::size_t ch_rows = capacity ? channels_.capacity() : n;
  b.channels_messages = ch_rows * sizeof(Channel);
  const std::size_t ch_n = capacity ? channels_.size() : n;
  for (std::size_t p = 0; p < ch_n; ++p)
    b.channels_messages += channels_[p].heap_bytes(capacity);
  if (capacity) b.channels_messages += msg_pool_.heap_bytes();

  // Maintained world indices: rosters, seq hash, oldest heap, edge rows.
  if (capacity) {
    b.indices += awake_fw_.heap_bytes() + live_fw_.heap_bytes() +
                 live_seq_.heap_bytes() + life_mirror_.capacity();
  } else {
    // Logical sizes: weight + tree arrays of both Fenwicks, live hash
    // entries, life mirror bytes.
    b.indices += 2 * (2 * n + 1) * sizeof(std::uint32_t) +
                 live_seq_.size() * (sizeof(std::uint64_t) + sizeof(ProcessId)) +
                 n;
  }
  b.indices += capacity ? oldest_heap_.heap_bytes()
                        : oldest_heap_.size() *
                              sizeof(std::pair<std::uint64_t, ProcessId>);
  // Edge-index rows: 16-byte handles plus the shared slab arenas. In
  // capacity mode the arenas' slab totals are the true footprint (they
  // include abandoned generations and slab tails); in size mode sum the
  // live entries.
  const std::size_t rows = capacity ? ref_out_.size() : std::min(n, ref_out_.size());
  b.indices += (capacity ? ref_out_.capacity() + ref_in_.capacity()
                         : 2 * rows) *
               sizeof(EdgeRow);
  const std::size_t lrows =
      capacity ? ref_list_.size() : std::min(n, ref_list_.size());
  b.indices += (capacity ? ref_list_.capacity() : lrows) * sizeof(RefRow);
  if (capacity) {
    b.indices += edge_arena_.heap_bytes() + ref_arena_.heap_bytes();
  } else {
    for (std::size_t p = 0; p < rows; ++p)
      b.indices += (ref_out_[p].size() + ref_in_[p].size()) *
                   sizeof(EdgePair);
    for (std::size_t p = 0; p < lrows; ++p)
      b.indices += ref_list_[p].size() * sizeof(RefInfo);
  }

  // Reused per-action buffers are pure capacity (empty between steps).
  if (capacity) {
    b.scratch = sends_scratch_.capacity() * sizeof(std::pair<Ref, Message>) +
                scratch_refs_.capacity() * sizeof(RefInfo) +
                proc_ref_scratch_.capacity() * sizeof(RefInfo) +
                scratch_matched_.capacity();
  }
  return b;
}

void World::notify_inject(ProcessId to, const Message& m) {
  for (Observer* obs : observers_) obs->on_inject(*this, to, m);
}

void World::notify_remove(ProcessId from, const Message& m) {
  for (Observer* obs : observers_) obs->on_remove(*this, from, m);
}

void World::post(Ref to, Message m) {
  FDP_CHECK(to.valid() && to.id() < size());
  const Message& admitted = admit(to.id(), std::move(m));
  if (!observers_.empty()) notify_inject(to.id(), admitted);
}

bool World::discard_message(ProcessId id, std::uint64_t seq) {
  FDP_CHECK(id < size());
  const std::size_t idx = channels_[id].index_of_seq(seq);
  if (idx >= channels_[id].size()) return false;
  Message taken = take_message(id, idx);
  if (!observers_.empty()) notify_remove(id, taken);
  msg_pool_.recycle(taken);
  return true;
}

bool World::duplicate_message(ProcessId id, std::uint64_t seq) {
  FDP_CHECK(id < size());
  const Channel& ch = channels_[id];
  const std::size_t idx = ch.index_of_seq(seq);
  if (idx >= ch.size()) return false;
  const Message& src = ch.peek(idx);
  Message copy;
  copy.set_verb(src.verb());
  copy.set_tag(src.tag());
  copy.token = src.token;
  // Pool-backed ref copy: a duplicated oversized message reuses a recycled
  // spill buffer instead of allocating one.
  msg_pool_.assign_refs(copy.refs, {src.refs.data(), src.refs.size()});
  const Message& admitted = admit(id, std::move(copy));
  if (!observers_.empty()) notify_inject(id, admitted);
  return true;
}

void World::clear_channel(ProcessId id) {
  FDP_CHECK(id < channels_.size());
  Channel& ch = channels_[id];
  while (!ch.empty()) {
    Message taken = take_message(id, ch.size() - 1);
    if (!observers_.empty()) notify_remove(id, taken);
    msg_pool_.recycle(taken);
  }
}

bool World::oracle_value(ProcessId id) const {
  FDP_CHECK_MSG(static_cast<bool>(oracle_), "no oracle installed");
  return oracle_(*this, id);
}

void World::remove_observer(Observer* obs) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), obs),
                   observers_.end());
}

std::vector<ProcessId> World::awake_ids() const {
  std::vector<ProcessId> out;
  out.reserve(static_cast<std::size_t>(awake_fw_.total()));
  for (ProcessId i = 0; i < procs_.size(); ++i)
    if (life_mirror_[i] == LifeState::Awake) out.push_back(i);
  return out;
}

std::vector<ProcessId> World::deliverable_ids() const {
  std::vector<ProcessId> out;
  for (ProcessId i = 0; i < procs_.size(); ++i)
    if (live_fw_.weight(i) > 0) out.push_back(i);
  return out;
}

std::pair<ProcessId, std::uint64_t> World::oldest_live_message() const {
  while (!oldest_heap_.empty()) {
    const auto [seq, p] = oldest_heap_.top();
    const ProcessId* holder = live_seq_.find(seq);
    if (holder != nullptr && *holder == p) return {p, seq};
    oldest_heap_.pop();  // stale: consumed, dropped, or holder gone
  }
  return {kNoProcess, ~0ULL};
}

bool World::step(Scheduler& sched) {
  ActionChoice choice = sched.next(*this, rng_);
  if (choice.kind == ActionChoice::Kind::None) return false;
  execute(choice);
  return true;
}

bool World::run_until(Scheduler& sched, std::uint64_t max_steps,
                      const std::function<bool(const World&)>& done) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (done(*this)) return true;
    if (!step(sched)) return done(*this);
  }
  return done(*this);
}

void World::execute(ActionChoice choice) {
  FDP_CHECK(choice.proc < procs_.size());
  Process& p = *procs_[choice.proc];
  const bool want_record = !observers_.empty();

  ActionRecord rec;
  if (want_record) {
    rec.actor = choice.proc;
    rec.step = steps_;
    // While the edge index is synced, ref_list_ already holds the actor's
    // current refs — no pre-action collect_refs needed.
    if (edges_synced_) {
      const RefRow& row = ref_list_[choice.proc];
      rec.refs_before.assign(row.begin(), row.end());
    } else {
      p.collect_refs(rec.refs_before);
    }
  }

  sends_scratch_.clear();  // capacity retained across steps
  Context ctx(this, p.self(), steps_, &rng_, &sends_scratch_,
              &proc_ref_scratch_);

  if (choice.kind == ActionChoice::Kind::Timeout) {
    FDP_CHECK_MSG(p.life() == LifeState::Awake,
                  "timeout scheduled for non-awake process");
    ++timeouts_;
    if (want_record) rec.kind = ActionRecord::Kind::Timeout;
    p.on_timeout(ctx);
  } else {
    FDP_CHECK_MSG(p.life() != LifeState::Gone,
                  "delivery scheduled for gone process");
    const std::size_t idx = channels_[choice.proc].index_of_seq(choice.msg_seq);
    FDP_CHECK_MSG(idx < channels_[choice.proc].size(),
                  "scheduled message vanished");
    Message m = take_message(choice.proc, idx);
    ++deliveries_;
    const bool woke = p.life() == LifeState::Asleep;
    if (woke) {
      // Paper: "p becomes awake again as soon as the corresponding message
      // is processed" — the wake precedes the action body.
      set_life(choice.proc, LifeState::Awake);
      ++wakes_;
    }
    if (want_record) {
      rec.kind = ActionRecord::Kind::Deliver;
      rec.woke = woke;
      rec.consumed = m;
    }
    p.on_message(ctx, m);
    msg_pool_.recycle(m);  // consumed: pool any spilled ref buffer
  }

  // Apply buffered outputs: sends first, then the special commands. The
  // paper's exit/sleep take effect as part of the same atomic action.
  for (auto& [to, msg] : sends_scratch_) {
    FDP_CHECK(to.valid() && to.id() < size());
    ++sends_;
    const Message& admitted = admit(to.id(), std::move(msg));
    if (want_record) rec.sent.emplace_back(to, admitted);
  }

  if (edges_synced_) {
    // Stored-ref diff for the actor — before any exit deregisters it, so
    // deregister_process_edges sees the index matching the new refs. One
    // collect_refs into a reused scratch buffer; the count maps are only
    // touched when the refs actually changed.
    scratch_refs_.clear();
    p.collect_refs(scratch_refs_);
    RefRow& before = ref_list_[choice.proc];
    if (!before.equals(scratch_refs_.data(), scratch_refs_.size())) {
      // Minimal multiset diff on target ids: edges only care about the
      // target, so a mode/key-only change costs no index update and a
      // single inserted ref touches one counter, not the whole row.
      scratch_matched_.assign(before.size(), 0);
      for (const RefInfo& a : scratch_refs_) {
        bool matched = false;
        for (std::size_t i = 0; i < before.size(); ++i) {
          if (!scratch_matched_[i] && before[i].ref.id() == a.ref.id()) {
            scratch_matched_[i] = 1;
            matched = true;
            break;
          }
        }
        if (!matched) add_edge_instance(choice.proc, a.ref.id());
      }
      for (std::size_t i = 0; i < before.size(); ++i)
        if (!scratch_matched_[i])
          remove_edge_instance(choice.proc, before[i].ref.id());
      ref_arena_.assign(before, scratch_refs_.data(), scratch_refs_.size());
    }
    if (want_record) {
      const RefRow& row = ref_list_[choice.proc];
      rec.refs_after.assign(row.begin(), row.end());
    }
  } else if (want_record) {
    p.collect_refs(rec.refs_after);
  }

  if (ctx.exit_requested_) {
    FDP_CHECK_MSG(!ctx.sleep_requested_, "action requested exit AND sleep");
    set_life(choice.proc, LifeState::Gone);
    ++exits_;
    if (want_record) rec.exited = true;
  } else if (ctx.sleep_requested_) {
    set_life(choice.proc, LifeState::Asleep);
    ++sleeps_;
    if (want_record) rec.slept = true;
  }

  ++steps_;

  if (want_record)
    for (Observer* obs : observers_) obs->on_action(*this, rec);
}

}  // namespace fdp
