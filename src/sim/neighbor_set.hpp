// The neighborhood set u.N of the paper's Section 3.
//
// u.N is a *set* of references with attached mode knowledge: inserting a
// reference that is already present fuses the two copies (the Fusion
// primitive) rather than creating a duplicate. Self-references are never
// stored: a process trivially knows itself, the paper's primitives assume
// pairwise-distinct endpoints, and self-loops are irrelevant for (weak)
// connectivity — dropping them is therefore always safe.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/ids.hpp"

namespace fdp {

class NeighborSet {
 public:
  struct Entry {
    ModeInfo mode = ModeInfo::Unknown;
    std::uint64_t key = 0;
  };

  /// Result of an insert, so callers can account primitives precisely.
  enum class InsertResult {
    Added,     ///< reference was new
    Fused,     ///< reference already present — duplicate fused away
    SelfDrop,  ///< reference to the owner itself — dropped
  };

  explicit NeighborSet(Ref owner) : owner_(owner) {}

  /// Insert (or fuse). On fusion the incoming knowledge overwrites the
  /// stored knowledge: the message is treated as the fresher observation.
  InsertResult insert(const RefInfo& info);

  /// Remove the reference; returns true when it was present.
  bool erase(Ref r);

  [[nodiscard]] bool contains(Ref r) const { return find(r) != nullptr; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Stored mode knowledge for a contained reference.
  [[nodiscard]] ModeInfo mode_of(Ref r) const;
  [[nodiscard]] std::uint64_t key_of(Ref r) const;

  /// Overwrite the stored mode knowledge of a contained reference.
  void set_mode(Ref r, ModeInfo m);

  /// Snapshot as RefInfo list (deterministic order: by reference id).
  [[nodiscard]] std::vector<RefInfo> snapshot() const;
  /// Append the snapshot to `out` without allocating a temporary (same
  /// order) — the kernel's per-step collect_refs path.
  void append_to(std::vector<RefInfo>& out) const;

  void clear() { entries_.clear(); }

  /// Heap bytes of the entry vector. `capacity` counts the allocated
  /// backing store; false counts only live entries (deterministic across
  /// world reuse, so it is safe in worker-count-invariant output).
  [[nodiscard]] std::size_t heap_bytes(bool capacity) const {
    return (capacity ? entries_.capacity() : entries_.size()) *
           sizeof(std::pair<Ref, Entry>);
  }

  [[nodiscard]] Ref owner() const { return owner_; }

 private:
  // Flat vector sorted by Ref id: neighborhoods are small, so binary
  // search + shifting beats a node-based map, and iteration is one cache
  // line instead of a pointer chase per neighbor. Order (and thus every
  // snapshot) is identical to the std::map this replaced.
  [[nodiscard]] const std::pair<Ref, Entry>* find(Ref r) const;
  [[nodiscard]] std::pair<Ref, Entry>* find(Ref r);

  Ref owner_;
  std::vector<std::pair<Ref, Entry>> entries_;
};

}  // namespace fdp
