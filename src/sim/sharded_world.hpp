// The sharded kernel: epoch-stepped parallel execution of the paper's
// interleaving model (conservative PDES).
//
// A ShardedWorld partitions the process-id space into k contiguous shards
// and executes the system in *epochs*. Within one epoch every shard runs
// the turns of its own processes in parallel; all cross-process effects —
// sends (including self-sends), edge-index updates of remote rows, life
// and counter reconciliation, observer notification and fault injection —
// are buffered into bounded per-shard queues and drained at a
// deterministic epoch barrier in (source shard ascending, emission order)
// order. Because the shards are ascending-id blocks, that concatenation
// order equals ascending (actor id, emission index) for EVERY k, which is
// the whole determinism argument:
//
//   the action trace of a k-shard run is byte-identical to the 1-shard
//   run for any k — tests/test_sharded.cpp pins this with the same
//   FNV-1a trace hash the classic golden-trace tests use.
//
// What a "turn" is depends on the scheduler family (ShardPolicy, mapped
// from SchedulerSpec by the experiment layer). Global stateful schedulers
// cannot be partition-invariant (their cursor/RNG state would depend on
// k), so the sharded kernel re-derives each family as a per-(process,
// epoch) policy driven by a stateless Rng(mix(seed, p, epoch)):
//
//   Random      — deliver this epoch's pending messages in shuffled order
//                 with the timeout inserted at a random position;
//   RoundRobin  — oldest-first deliveries; timeout only on epochs that
//                 are multiples of timeout_share;
//   Rounds      — the paper's asynchronous rounds: deliver everything
//                 enqueued before the epoch, then timeout (one epoch ==
//                 one round);
//   Adversarial — timeout first, then messages aged >= min_age epochs,
//                 newest-first, capped at deliver_burst.
//
// An epoch is four phases over k threads plus a serial barrier epilogue:
//   P1  oracle precompute — verdicts for every active leaving-mode
//       process, read by Context::oracle() during turns (the shared edge
//       index is stable between barriers, so the parallel reads are safe);
//   P2  turns — own-process mutation only; sends go to the shard outbox,
//       remote edge-index updates to per-(src,dst) buckets;
//   P3  admission — each shard drains every outbox into its own channels;
//       sequence numbers are preassigned from per-shard bases (prefix sums
//       over outbox sizes), so they too are k-invariant;
//   P4  remote edge rows — each shard applies the ref_in updates targeting
//       its processes;
//   epilogue (serial) — reconcile counters and the awake Fenwick, flush
//       ActionRecords to observers in shard order (assigning the global
//       step index), inject runtime faults, decide termination.
//
// The World's live-message indices (live Fenwick, seq map, oldest heap)
// are deliberately left stale during a sharded run and rebuilt once by
// finalize(); the classic step loop composes before/after a sharded run
// on the same World.
#pragma once

#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/fault.hpp"
#include "sim/world.hpp"

namespace fdp {

/// The per-epoch scheduling family of a sharded run. Defined here (not in
/// the analysis layer) so sim/ stays self-contained; the experiment layer
/// maps SchedulerSpec onto this (analysis/experiment.cpp).
struct ShardPolicy {
  enum class Kind : std::uint8_t { Random, RoundRobin, Rounds, Adversarial };
  Kind kind = Kind::Random;
  /// RoundRobin: timeouts run on epochs with epoch % timeout_share == 0.
  std::uint32_t timeout_share = 6;
  /// Adversarial: a message is deliverable after aging this many epochs.
  std::uint64_t adv_min_age = 8;
  /// Adversarial: deliveries per process per epoch once aged.
  std::uint32_t adv_deliver_burst = 8;
};

class ShardedWorld {
 public:
  /// `shards` >= 1; processes are partitioned into contiguous id blocks.
  /// `seed` drives every per-(process, epoch) turn Rng. The world must be
  /// fully populated; spawning after construction is not supported.
  ShardedWorld(World& w, unsigned shards, ShardPolicy policy,
               std::uint64_t seed);
  ~ShardedWorld();

  ShardedWorld(const ShardedWorld&) = delete;
  ShardedWorld& operator=(const ShardedWorld&) = delete;

  /// Install a runtime fault campaign (same FaultPlan vocabulary as the
  /// classic FaultScheduler). Scheduled steps and stochastic_until are
  /// measured in world steps (actions), checked at epoch barriers; the
  /// stochastic probabilities are rolled once per EPOCH (documented
  /// reinterpretation of the per-step regime), and partition windows
  /// withhold deliveries into the blocked side for partition_window steps.
  void set_fault_plan(FaultPlan plan, std::uint64_t seed);

  /// Run one epoch. Returns false when the epoch executed no action and
  /// injected no fault — the sharded analogue of a terminal configuration.
  bool epoch();

  /// Rebuild the World's live-message indices from the channels so the
  /// classic step loop (closure checks, mixed-mode tests) can take over.
  /// Idempotent; call after the last epoch().
  void finalize();

  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] unsigned shards() const { return k_; }

  /// True once every scheduled fault fired, the stochastic regime is past
  /// and no partition window is open (mirrors FaultScheduler::exhausted).
  [[nodiscard]] bool faults_exhausted() const {
    return fault_cursor_ >= fault_plan_.events.size() &&
           w_->steps() >= fault_plan_.stochastic_until && !window_open_;
  }
  [[nodiscard]] std::uint64_t faults_injected() const {
    return crashes_ + scrambles_ + bursts_ + partitions_;
  }
  [[nodiscard]] std::uint64_t withheld() const { return withheld_total_; }

 private:
  struct PendingRecord {
    ActionRecord rec;
    std::uint32_t outbox_start = 0;
    std::uint32_t outbox_count = 0;
  };

  /// A remote edge-index update: holder gained/lost one reference
  /// instance of target; applied to ref_in_[target] by target's shard.
  struct RefEvent {
    ProcessId target;
    ProcessId holder;
    std::int32_t delta;
  };

  struct Shard {
    ProcessId lo = 0;
    ProcessId hi = 0;
    std::vector<std::pair<Ref, Message>> outbox;
    std::vector<std::pair<Ref, Message>> sends;  ///< one action's Context buffer
    std::vector<RefInfo> proc_scratch;  ///< Context::ref_scratch() backing
    std::vector<PendingRecord> records;
    std::vector<std::pair<ProcessId, LifeState>> life_events;
    std::vector<std::uint64_t> seq_scratch;
    std::vector<RefInfo> ref_scratch;
    std::vector<char> match_scratch;
    /// World's pool is not thread-safe; one per shard (unique_ptr keeps
    /// Shard movable — MessagePool itself is pinned).
    std::unique_ptr<MessagePool> pool;
    // per-epoch tallies, reconciled at the barrier
    std::uint64_t actions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t sends_n = 0;
    std::uint64_t exits = 0;
    std::uint64_t sleeps = 0;
    std::uint64_t wakes = 0;
    std::uint64_t withheld = 0;
    std::int64_t quiet_delta = 0;
    std::exception_ptr error;
  };

  [[nodiscard]] unsigned owner(ProcessId p) const {
    unsigned s = 1;
    while (s < k_ && shards_[s].lo <= p) ++s;
    return s - 1;
  }
  [[nodiscard]] std::uint64_t turn_seed(ProcessId p, std::uint64_t e) const;

  void run_shard_epoch(unsigned s);
  void phase1_oracle(unsigned s);
  void phase2_turns(unsigned s);
  void phase3_admit(unsigned s);
  void phase4_edges(unsigned s);
  void compute_seq_bases();  ///< serial, between P2 and P3
  void on_phase_barrier();   ///< barrier completion; dispatches on stage_
  void epilogue();           ///< serial end-of-epoch work

  void run_turn(Shard& sh, ProcessId p);
  void exec_action(Shard& sh, ProcessId p, bool is_timeout, std::uint64_t seq,
                   Rng& trng);
  void set_life_buffered(Shard& sh, ProcessId p, LifeState to);
  void bucket_ref(unsigned src, ProcessId target, ProcessId holder,
                  std::int32_t delta);

  [[nodiscard]] bool quiescent() const;

  void inject_due_faults();
  void apply_fault(const FaultEvent& ev);
  [[nodiscard]] std::pair<ProcessId, std::uint64_t> scan_kth_live(
      std::uint64_t k) const;

  void worker_loop(unsigned s);

  World* w_;
  unsigned k_;
  ShardPolicy policy_;
  std::uint64_t seed_;
  std::uint64_t epochs_ = 0;
  bool finalized_ = false;

  std::vector<Shard> shards_;
  /// (src * k + dst) remote-edge buckets; src writes, dst applies.
  std::vector<std::vector<RefEvent>> ref_buckets_;
  std::vector<std::uint64_t> seq_base_;  ///< per-src-shard first seq
  std::vector<Mode> mode_cache_;         ///< modes are immutable
  std::vector<std::uint8_t> oracle_bits_;  ///< 0 absent / 1 false / 2 true
  bool epoch_progress_ = false;

  // --- fault injection (barrier-time) ---
  FaultPlan fault_plan_;
  Rng fault_rng_{0};
  bool have_faults_ = false;
  std::size_t fault_cursor_ = 0;
  std::uint64_t last_stochastic_epoch_ = ~std::uint64_t{0};
  std::uint64_t partition_until_ = 0;
  bool window_open_ = false;
  std::vector<char> blocked_;
  bool barrier_fault_applied_ = false;
  std::uint64_t crashes_ = 0;
  std::uint64_t scrambles_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t bursts_ = 0;
  std::uint64_t partitions_ = 0;
  std::uint64_t withheld_total_ = 0;

  // --- worker coordination (k > 1 only) ---
  unsigned stage_ = 0;
  std::unique_ptr<std::barrier<std::function<void()>>> bar_;
  std::vector<std::thread> workers_;
  std::mutex m_;
  std::condition_variable cv_;
  std::uint64_t ticket_ = 0;
  bool stop_ = false;
};

}  // namespace fdp
