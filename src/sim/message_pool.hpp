// Recycler for the rare spilled Message::refs buffers.
//
// Messages carry their references inline (RefList keeps two slots in the
// Message object), so the hot path never allocates. Overlay batch messages
// can exceed two references and spill to a heap buffer; when the kernel
// consumes or drops such a message, the World hands it to its MessagePool,
// which detaches the buffer into a freelist instead of freeing it.
// duplicate_message and other kernel-side copy paths then draw from the
// freelist, so a channel that drains and refills — even with oversized
// messages — reaches zero steady-state allocations.
//
// Debug builds assert the freelist never receives the same buffer twice
// (a double release would hand one buffer to two messages).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/message.hpp"
#include "util/check.hpp"

namespace fdp {

class MessagePool {
 public:
  MessagePool() = default;
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;
  ~MessagePool() {
    for (const RefList::HeapBuf& b : free_) ::operator delete(b.ptr);
  }

  /// Harvest the spilled buffer of a dead message (if any) into the
  /// freelist. The message is left empty on inline storage.
  void recycle(Message& m) { release(m.refs.release_heap()); }

  /// Return a detached buffer to the freelist. No-op for {nullptr, 0}.
  void release(RefList::HeapBuf b) {
    if (b.ptr == nullptr) return;
#if !defined(NDEBUG)
    for (const RefList::HeapBuf& f : free_)
      FDP_DCHECK(f.ptr != b.ptr);  // double release: buffer already pooled
#endif
    free_.push_back(b);
  }

  /// Take a pooled buffer with capacity >= need, or {nullptr, 0} when the
  /// freelist has none (the caller falls back to a plain allocation).
  [[nodiscard]] RefList::HeapBuf acquire(std::size_t need) {
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].cap >= need) {
        const RefList::HeapBuf b = free_[i];
        free_[i] = free_.back();
        free_.pop_back();
        return b;
      }
    }
    return {};
  }

  /// Copy `src` into `dst` using pooled storage when `src` does not fit
  /// inline — the allocation-free message copy used by kernel duplication.
  void assign_refs(RefList& dst, std::span<const RefInfo> src) {
    if (src.size() > dst.capacity()) {
      const RefList::HeapBuf b = acquire(src.size());
      if (b.ptr != nullptr) {
        release(dst.release_heap());
        dst.adopt_heap(b);
      }
    }
    dst.assign(src.data(), src.size());
  }

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }

  /// Heap bytes held: the freelist vector plus every pooled buffer.
  [[nodiscard]] std::size_t heap_bytes() const {
    std::size_t b = free_.capacity() * sizeof(RefList::HeapBuf);
    for (const RefList::HeapBuf& f : free_)
      b += static_cast<std::size_t>(f.cap) * sizeof(RefInfo);
    return b;
  }

 private:
  std::vector<RefList::HeapBuf> free_;
};

}  // namespace fdp
