// Hierarchical timer wheel for the live runtime's pump loop.
//
// The runtime used to scan every actor every pump to decide who times out
// and whether anything needs retransmitting — an O(n) walk per cycle that
// dominates the loop at 1024+ actors when almost nothing is due. The
// wheel makes "what is due this tick?" O(expired): timers live in the
// slot of their expiry tick, the pump advances one tick per cycle, and
// only the slot under the cursor is touched.
//
// Layout: kLevels levels of kSlots slots each (64 slots, 6 bits per
// level). Level 0 resolves single ticks; level L resolves 64^L ticks.
// A timer further out than level 0 covers parks in the coarsest level
// that can hold it; each time the cursor wraps a level, the next slot of
// the level above is *cascaded* — its timers are re-inserted and fall
// into finer levels until they reach level 0 and fire at exactly their
// scheduled tick (the cascade tests pin this: no early fire, no drift).
// Delays beyond the wheel's horizon (64^4 ticks ≈ 16.7M) are clamped to
// the horizon; they re-cascade and still fire, just late — the same
// contract as the kernel wheels this layout comes from.
//
// Deterministic: firing order within a tick is insertion order, and the
// wheel draws no randomness, so MemTransport runs stay reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace fdp::net {

class TimerWheel {
 public:
  static constexpr std::size_t kLevels = 4;
  static constexpr std::size_t kSlots = 64;    // per level
  static constexpr std::size_t kLevelBits = 6;  // log2(kSlots)

  /// Ticks after which any delay is clamped (64^kLevels - 1).
  [[nodiscard]] static constexpr std::uint64_t horizon() {
    return (std::uint64_t{1} << (kLevelBits * kLevels)) - 1;
  }

  /// Schedule `payload` to fire at absolute tick `when`. A `when` at or
  /// before the current tick fires on the next advance().
  void schedule(std::uint64_t when, std::uint64_t payload) {
    if (when <= now_) when = now_ + 1;
    if (when - now_ > horizon()) when = now_ + horizon();
    place(when, payload);
    ++armed_;
  }

  /// Advance the wheel to `now`, invoking `fire(payload)` for every timer
  /// whose tick has come. Ticks are processed in order; timers within a
  /// tick fire in insertion order.
  template <typename Fn>
  void advance(std::uint64_t now, Fn&& fire) {
    while (now_ < now) {
      ++now_;
      const std::size_t idx = index_of(now_, 0);
      if (idx == 0) cascade(1);
      auto& slot = slots_[0][idx];
      // Copy into a scratch list first: `fire` may schedule new timers,
      // and those must not land in the slot currently being drained. A
      // copy (not a swap) so every vector keeps its own capacity — swaps
      // would circulate one small allocation around the wheel forever.
      firing_.clear();
      firing_.insert(firing_.end(), slot.begin(), slot.end());
      slot.clear();
      for (const Timer& t : firing_) {
        FDP_DCHECK(t.when == now_);
        --armed_;
        fire(t.payload);
      }
    }
  }

  [[nodiscard]] std::uint64_t now() const { return now_; }
  /// Scheduled-but-unfired timer count.
  [[nodiscard]] std::size_t armed() const { return armed_; }

 private:
  struct Timer {
    std::uint64_t when = 0;
    std::uint64_t payload = 0;
  };

  [[nodiscard]] std::size_t index_of(std::uint64_t when,
                                     std::size_t level) const {
    return static_cast<std::size_t>(when >> (kLevelBits * level)) &
           (kSlots - 1);
  }

  /// Put a timer in the finest level whose slot granularity still
  /// distinguishes it from the current tick.
  void place(std::uint64_t when, std::uint64_t payload) {
    const std::uint64_t delta = when - now_;
    std::size_t level = 0;
    std::uint64_t span = kSlots;
    while (level + 1 < kLevels && delta >= span) {
      ++level;
      span <<= kLevelBits;
    }
    slots_[level][index_of(when, level)].push_back(Timer{when, payload});
  }

  /// Re-distribute the upcoming slot of `level` into finer levels; if
  /// that slot position is 0, the level above wraps too and must cascade
  /// first (the hierarchical step).
  void cascade(std::size_t level) {
    if (level >= kLevels) return;
    const std::size_t idx = index_of(now_, level);
    if (idx == 0) cascade(level + 1);
    auto& slot = slots_[level][idx];
    cascading_.clear();
    cascading_.insert(cascading_.end(), slot.begin(), slot.end());
    slot.clear();
    for (const Timer& t : cascading_) place(t.when, t.payload);
  }

  std::uint64_t now_ = 0;
  std::size_t armed_ = 0;
  std::vector<Timer> slots_[kLevels][kSlots];
  std::vector<Timer> firing_;
  std::vector<Timer> cascading_;
};

}  // namespace fdp::net
