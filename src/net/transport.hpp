// Frame transports for the live runtime.
//
// A Transport moves opaque encoded frames between actor endpoints; the
// NetRuntime above it owns actors, outboxes and delivery. Three
// implementations:
//
//  * MemTransport — in-process per-destination FIFO queues drained by a
//    deterministic single-threaded poller. No sockets, no syscalls, no
//    reordering: the substrate-equivalence tests run churn on it and
//    compare final states against the simulator without any flakiness
//    real sockets would add. Queue slots are ring buffers with reusable
//    byte storage, so the steady-state medium allocates nothing.
//  * DropMemTransport — MemTransport plus deterministic loss: every k-th
//    accepted frame is destroyed instead of queued. The retransmit tests
//    use it to prove departures still complete on a lossy medium without
//    UDP's timing flakiness.
//  * UdpTransport — one non-blocking UDP socket per actor bound to
//    127.0.0.1 (an OS-assigned port each), readiness via epoll on Linux
//    and poll(2) elsewhere. One datagram carries exactly one frame.
//    try_send honours EAGAIN (full socket buffer) by refusing the frame,
//    which is what keeps the runtime's per-peer outboxes meaningful.
//    Where the platform provides sendmmsg/recvmmsg (probed at runtime,
//    toggleable via UdpTransport(bool)), whole batches of frames cross
//    the syscall boundary at once; the per-frame path is the portable
//    fallback behind the same interface.
//
// All transports are loopback-only on purpose: the wire format and the
// runtime are transport-agnostic, and binding beyond 127.0.0.1 is a
// deployment concern this repo does not take on yet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/ids.hpp"
#include "util/ring_buffer.hpp"

namespace fdp::net {

/// Receiver callback: destination actor, frame bytes.
using RxFn =
    std::function<void(ProcessId dst, const std::uint8_t* data,
                       std::size_t len)>;

/// One staged outbound frame for a batch submission.
struct FrameView {
  ProcessId dst = kNoProcess;
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
};

/// Syscall/frame accounting (zeros for transports without syscalls).
/// syscalls-per-frame = (send_calls + recv_calls) / frames_sent is the
/// number the batching work drives below 1.
struct TransportStats {
  std::uint64_t send_calls = 0;   ///< sendto/sendmmsg invocations
  std::uint64_t recv_calls = 0;   ///< recv/recvmmsg invocations
  std::uint64_t poll_calls = 0;   ///< epoll_wait/poll invocations
  std::uint64_t frames_sent = 0;  ///< frames accepted by the medium
  std::uint64_t frames_received = 0;
};

class Transport {
 public:
  virtual ~Transport();

  /// Create the endpoints for actors [0, n). Called once before any
  /// send/poll.
  virtual void open(std::size_t n) = 0;

  /// Hand one frame from `src` to the medium for `dst`. Returns false
  /// when the medium is not ready to accept it (EAGAIN); the caller keeps
  /// the frame queued and retries after the next poll().
  virtual bool try_send(ProcessId src, ProcessId dst,
                        const std::uint8_t* data, std::size_t len) = 0;

  /// Hand up to `count` frames from `src` to the medium in one call.
  /// Returns how many were accepted — always a PREFIX of `frames`: on
  /// partial completion (medium full mid-batch) the caller keeps frames
  /// [accepted, count) queued and retries after the next poll(). The
  /// base implementation is the portable per-frame loop; batching
  /// transports override it with one syscall per batch.
  virtual std::size_t try_send_many(ProcessId src, const FrameView* frames,
                                    std::size_t count);

  /// Deliver every readable frame to `rx`. `timeout_ms` = 0 polls without
  /// blocking; > 0 blocks up to that long waiting for the first frame.
  virtual void poll(int timeout_ms, const RxFn& rx) = 0;

  /// Frames accepted by try_send but not yet handed to rx. Exact for the
  /// in-memory medium; transports that cannot know (UDP: the kernel owns
  /// them) return 0 — callers must treat this as a lower bound.
  [[nodiscard]] virtual std::size_t in_medium() const = 0;

  /// True when an accepted frame may silently fail to arrive (UDP buffer
  /// overflow, injected drops). The runtime arms retransmit timers only
  /// on lossy media — the deterministic medium needs none.
  [[nodiscard]] virtual bool lossy() const { return false; }

  [[nodiscard]] virtual TransportStats stats() const { return {}; }

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Deterministic in-process medium (see file comment).
class MemTransport : public Transport {
 public:
  void open(std::size_t n) override;
  bool try_send(ProcessId src, ProcessId dst, const std::uint8_t* data,
                std::size_t len) override;
  /// Drains every queue in ascending destination order, FIFO within a
  /// queue — a fixed, documented order so runs are reproducible.
  void poll(int timeout_ms, const RxFn& rx) override;
  [[nodiscard]] std::size_t in_medium() const override { return pending_; }
  [[nodiscard]] TransportStats stats() const override { return stats_; }
  [[nodiscard]] const char* name() const override { return "mem"; }

 protected:
  /// Hook for loss injection: return false to destroy the frame after it
  /// was accepted (the sender believes it is in the medium — UDP's lie).
  [[nodiscard]] virtual bool should_carry(ProcessId src, ProcessId dst) {
    (void)src;
    (void)dst;
    return true;
  }

 private:
  struct Frame {
    std::vector<std::uint8_t> bytes;  ///< capacity reused across frames
    std::size_t len = 0;
  };
  std::vector<RingBuffer<Frame>> queues_;
  /// poll() swap-target for the frame being delivered (capacity reused).
  std::vector<std::uint8_t> scratch_;
  std::size_t pending_ = 0;
  TransportStats stats_;
};

/// MemTransport that deterministically destroys every `drop_period`-th
/// accepted frame (the first frame lost is frame number `drop_period`).
class DropMemTransport final : public MemTransport {
 public:
  explicit DropMemTransport(std::uint64_t drop_period)
      : drop_period_(drop_period) {
    FDP_CHECK_MSG(drop_period >= 2, "drop period must be >= 2");
  }
  [[nodiscard]] bool lossy() const override { return true; }
  [[nodiscard]] const char* name() const override { return "mem-drop"; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 protected:
  [[nodiscard]] bool should_carry(ProcessId, ProcessId) override {
    if (++accepted_ % drop_period_ != 0) return true;
    ++dropped_;
    return false;
  }

 private:
  std::uint64_t drop_period_;
  std::uint64_t accepted_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Loopback UDP medium (see file comment).
class UdpTransport final : public Transport {
 public:
  /// `batching` requests sendmmsg/recvmmsg syscall batching; the per-frame
  /// path is used when the platform lacks the calls (probed at runtime:
  /// ENOSYS on first use downgrades permanently) or when batching=false.
  explicit UdpTransport(bool batching = true);
  ~UdpTransport() override;

  void open(std::size_t n) override;
  bool try_send(ProcessId src, ProcessId dst, const std::uint8_t* data,
                std::size_t len) override;
  std::size_t try_send_many(ProcessId src, const FrameView* frames,
                            std::size_t count) override;
  void poll(int timeout_ms, const RxFn& rx) override;
  [[nodiscard]] std::size_t in_medium() const override { return 0; }
  [[nodiscard]] bool lossy() const override { return true; }
  [[nodiscard]] TransportStats stats() const override;
  [[nodiscard]] const char* name() const override { return "udp"; }

  /// True when mmsg batching was requested and the platform supports it.
  [[nodiscard]] bool batching() const;
  /// Compile-time support for the mmsg calls on this platform (the CI
  /// perf gate auto-skips when false).
  [[nodiscard]] static bool mmsg_supported();

  /// Bound loopback port of actor `id` (diagnostics / monitor output).
  [[nodiscard]] std::uint16_t port(ProcessId id) const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace fdp::net
