// Frame transports for the live runtime.
//
// A Transport moves opaque encoded frames between actor endpoints; the
// NetRuntime above it owns actors, outboxes and delivery. Two
// implementations:
//
//  * MemTransport — in-process per-destination FIFO queues drained by a
//    deterministic single-threaded poller. No sockets, no syscalls, no
//    reordering: the substrate-equivalence tests run churn on it and
//    compare final states against the simulator without any flakiness
//    real sockets would add.
//  * UdpTransport — one non-blocking UDP socket per actor bound to
//    127.0.0.1 (an OS-assigned port each), readiness via epoll on Linux
//    and poll(2) elsewhere. One datagram carries exactly one frame.
//    try_send honours EAGAIN (full socket buffer) by refusing the frame,
//    which is what keeps the runtime's per-peer outboxes meaningful.
//
// Both transports are loopback-only on purpose: the wire format and the
// runtime are transport-agnostic, and binding beyond 127.0.0.1 is a
// deployment concern this repo does not take on yet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/ids.hpp"

namespace fdp::net {

/// Receiver callback: destination actor, frame bytes.
using RxFn =
    std::function<void(ProcessId dst, const std::uint8_t* data,
                       std::size_t len)>;

class Transport {
 public:
  virtual ~Transport();

  /// Create the endpoints for actors [0, n). Called once before any
  /// send/poll.
  virtual void open(std::size_t n) = 0;

  /// Hand one frame from `src` to the medium for `dst`. Returns false
  /// when the medium is not ready to accept it (EAGAIN); the caller keeps
  /// the frame queued and retries after the next poll().
  virtual bool try_send(ProcessId src, ProcessId dst,
                        const std::uint8_t* data, std::size_t len) = 0;

  /// Deliver every readable frame to `rx`. `timeout_ms` = 0 polls without
  /// blocking; > 0 blocks up to that long waiting for the first frame.
  virtual void poll(int timeout_ms, const RxFn& rx) = 0;

  /// Frames accepted by try_send but not yet handed to rx. Exact for the
  /// in-memory medium; transports that cannot know (UDP: the kernel owns
  /// them) return 0 — callers must treat this as a lower bound.
  [[nodiscard]] virtual std::size_t in_medium() const = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Deterministic in-process medium (see file comment).
class MemTransport final : public Transport {
 public:
  void open(std::size_t n) override;
  bool try_send(ProcessId src, ProcessId dst, const std::uint8_t* data,
                std::size_t len) override;
  /// Drains every queue in ascending destination order, FIFO within a
  /// queue — a fixed, documented order so runs are reproducible.
  void poll(int timeout_ms, const RxFn& rx) override;
  [[nodiscard]] std::size_t in_medium() const override { return pending_; }
  [[nodiscard]] const char* name() const override { return "mem"; }

 private:
  std::vector<std::deque<std::vector<std::uint8_t>>> queues_;
  std::size_t pending_ = 0;
};

/// Loopback UDP medium (see file comment).
class UdpTransport final : public Transport {
 public:
  UdpTransport();
  ~UdpTransport() override;

  void open(std::size_t n) override;
  bool try_send(ProcessId src, ProcessId dst, const std::uint8_t* data,
                std::size_t len) override;
  void poll(int timeout_ms, const RxFn& rx) override;
  [[nodiscard]] std::size_t in_medium() const override { return 0; }
  [[nodiscard]] const char* name() const override { return "udp"; }

  /// Bound loopback port of actor `id` (diagnostics / monitor output).
  [[nodiscard]] std::uint16_t port(ProcessId id) const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace fdp::net
