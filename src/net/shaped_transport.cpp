#include "net/shaped_transport.hpp"

#include <cstring>

#include "util/check.hpp"

namespace fdp::net {

std::string ShapeConfig::validate() const {
  auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!prob_ok(loss) || !prob_ok(burst_to_bad) || !prob_ok(burst_to_good) ||
      !prob_ok(burst_loss) || !prob_ok(reorder) || !prob_ok(duplicate)) {
    return "shaping probabilities must lie in [0, 1]";
  }
  if (burst_to_bad > 0.0 && burst_to_good <= 0.0) {
    return "burst_to_good must be positive when burst loss is enabled "
           "(a link that never leaves the bad state is a partition, not "
           "burst loss)";
  }
  if (reorder > 0.0 && reorder_ticks == 0) {
    return "reorder_ticks must be positive when reordering is enabled";
  }
  return "";
}

ShapedTransport::ShapedTransport(std::unique_ptr<Transport> inner,
                                 ShapeConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg) {
  FDP_CHECK_MSG(inner_ != nullptr, "ShapedTransport needs an inner medium");
  const std::string complaint = cfg_.validate();
  FDP_CHECK_MSG(complaint.empty(), complaint.c_str());
  name_ = std::string("shaped+") + inner_->name();
}

void ShapedTransport::open(std::size_t n) {
  inner_->open(n);
  blocked_.assign(n, 0);
}

ShapedTransport::Link& ShapedTransport::link(ProcessId src, ProcessId dst) {
  // +1 keeps the (0, 0) link off the FlatMap64 empty-key sentinel.
  const std::uint64_t key =
      ((static_cast<std::uint64_t>(src) << 32) | dst) + 1;
  const std::uint32_t* idx = link_index_.find(key);
  if (idx != nullptr) return links_[*idx];
  // The link stream is a pure function of (shaper seed, src, dst):
  // shaping decisions on one link never depend on what other links
  // carried in between — the determinism contract in the file comment.
  std::uint64_t mix = cfg_.seed + key * 0x9E3779B97F4A7C15ULL;
  const std::uint32_t slot = static_cast<std::uint32_t>(links_.size());
  links_.emplace_back(splitmix64(mix));
  link_index_.emplace(key, slot);
  return links_[slot];
}

bool ShapedTransport::try_send(ProcessId src, ProcessId dst,
                               const std::uint8_t* data, std::size_t len) {
  shape(src, dst, data, len);
  return true;
}

std::size_t ShapedTransport::try_send_many(ProcessId src,
                                           const FrameView* frames,
                                           std::size_t count) {
  for (std::size_t i = 0; i < count; ++i)
    shape(src, frames[i].dst, frames[i].data, frames[i].len);
  return count;
}

void ShapedTransport::shape(ProcessId src, ProcessId dst,
                            const std::uint8_t* data, std::size_t len) {
  ++shape_stats_.shaped;
  // An open window severs the link outright; the datagram is accepted
  // and destroyed (the sender's ledger entry survives to retransmit).
  if (severed(src, dst)) {
    ++shape_stats_.dropped_partition;
    return;
  }
  Link& l = link(src, dst);
  // Gilbert–Elliott: step the chain once per datagram, then sample loss
  // from the state it landed in.
  if (cfg_.burst_to_bad > 0.0) {
    if (l.bad) {
      if (l.rng.chance(cfg_.burst_to_good)) l.bad = false;
    } else if (l.rng.chance(cfg_.burst_to_bad)) {
      l.bad = true;
    }
    if (l.bad && l.rng.chance(cfg_.burst_loss)) {
      ++shape_stats_.dropped_burst;
      return;
    }
  }
  if (cfg_.loss > 0.0 && l.rng.chance(cfg_.loss)) {
    ++shape_stats_.dropped_loss;
    return;
  }
  std::uint64_t delay = cfg_.latency_ticks;
  if (cfg_.jitter_ticks > 0) delay += l.rng.below(cfg_.jitter_ticks + 1);
  if (cfg_.reorder > 0.0 && l.rng.chance(cfg_.reorder)) {
    // Held back past its cohort: datagrams shaped later (with smaller
    // delays) overtake it — bounded reordering.
    delay += 1 + l.rng.below(cfg_.reorder_ticks);
    ++shape_stats_.reordered;
  }
  hold(src, dst, data, len, delay);
  if (cfg_.duplicate > 0.0 && l.rng.chance(cfg_.duplicate)) {
    ++shape_stats_.duplicated;
    hold(src, dst, data, len, delay + 1 + l.rng.below(
        cfg_.reorder_ticks > 0 ? cfg_.reorder_ticks : 4));
  }
}

void ShapedTransport::hold(ProcessId src, ProcessId dst,
                           const std::uint8_t* data, std::size_t len,
                           std::uint64_t delay) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Held& h = slots_[slot];
  h.src = src;
  h.dst = dst;
  if (h.bytes.size() < len) h.bytes.resize(len);
  std::memcpy(h.bytes.data(), data, len);
  h.len = len;
  ++held_count_;
  // schedule() clamps a due-now tick to tick_ + 1: a datagram is never
  // delivered inside the poll that accepted it, even at zero latency.
  wheel_.schedule(tick_ + delay, slot);
}

void ShapedTransport::release(std::uint32_t slot) {
  FDP_DCHECK(held_count_ > 0);
  --held_count_;
  free_.push_back(slot);
}

void ShapedTransport::forward(std::uint32_t slot) {
  Held& h = slots_[slot];
  // The link is checked again at delivery: a window opened while the
  // datagram was in the delay queue still severs it (the cut is a
  // property of the medium at delivery time, not of the send).
  if (severed(h.src, h.dst)) {
    ++shape_stats_.dropped_partition;
    release(slot);
    return;
  }
  if (inner_->try_send(h.src, h.dst, h.bytes.data(), h.len)) {
    ++shape_stats_.delivered;
    release(slot);
    return;
  }
  retry_.push_back(slot);  // inner medium full: retry next poll
}

void ShapedTransport::poll(int timeout_ms, const RxFn& rx) {
  ++tick_;
  if (partition_open_ && partition_until_ != 0 && tick_ >= partition_until_)
    partition_open_ = false;
  if (!retry_.empty()) {
    retry_scratch_.clear();
    retry_scratch_.swap(retry_);
    for (const std::uint32_t slot : retry_scratch_) forward(slot);
  }
  wheel_.advance(tick_, [this](std::uint64_t payload) {
    forward(static_cast<std::uint32_t>(payload));
  });
  inner_->poll(timeout_ms, rx);
}

void ShapedTransport::start_partition(const std::vector<char>& blocked,
                                      std::uint64_t until_tick) {
  FDP_CHECK_MSG(cfg_.partitions,
                "partition window on a shaper not configured for them "
                "(ShapeConfig::partitions gates lossy(), which the runtime "
                "samples at start())");
  FDP_CHECK_MSG(blocked.size() == blocked_.size(),
                "partition cut size does not match the endpoint count");
  blocked_ = blocked;
  partition_open_ = true;
  partition_until_ = until_tick;
}

}  // namespace fdp::net
