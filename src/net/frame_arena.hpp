// Recycled slab of wire-frame buffers for the live runtime.
//
// The pump used to heap-encode every outbound frame; at 1024 actors that
// is one allocator round-trip per frame per flush. FrameArena hands out
// fixed-size buffer slots from a freelist and takes them back after the
// transport call, so once the arena has grown to the flush batch's
// high-water size the encode path performs zero heap allocations — the
// MessagePool contract applied to wire bytes.
//
// Slots are `slot_bytes` wide (default 512: a 44-byte header plus 36
// references, far beyond any legal overlay message in this repo). The
// rare frame larger than a slot gets an exact-sized heap buffer and is
// counted in `oversize_acquires` — a visible spill, like SmallVec's heap
// fallback, never a failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace fdp::net {

class FrameArena {
 public:
  struct Buf {
    std::uint8_t* data = nullptr;
    std::uint32_t cap = 0;
    std::uint32_t len = 0;  ///< bytes encoded by the caller
    /// Slot index, or kOversize for an exact-sized heap buffer.
    std::uint32_t slot = 0;
  };
  static constexpr std::uint32_t kOversize = ~std::uint32_t{0};

  explicit FrameArena(std::size_t slot_bytes = 512)
      : slot_bytes_(slot_bytes) {}

  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  /// Take a buffer with capacity >= need. Freelist hit: no allocation.
  [[nodiscard]] Buf acquire(std::size_t need) {
    if (need <= slot_bytes_) {
      if (free_.empty()) {
        slots_.push_back(std::make_unique<std::uint8_t[]>(slot_bytes_));
        free_.push_back(static_cast<std::uint32_t>(slots_.size() - 1));
        high_water_ = slots_.size() > high_water_ ? slots_.size()
                                                  : high_water_;
      }
      const std::uint32_t s = free_.back();
      free_.pop_back();
      return Buf{slots_[s].get(), static_cast<std::uint32_t>(slot_bytes_), 0,
                 s};
    }
    ++oversize_acquires_;
    return Buf{new std::uint8_t[need], static_cast<std::uint32_t>(need), 0,
               kOversize};
  }

  /// Return a buffer. No-op for a default-constructed Buf.
  void release(const Buf& b) {
    if (b.data == nullptr) return;
    if (b.slot == kOversize) {
      delete[] b.data;
      return;
    }
    FDP_DCHECK(b.slot < slots_.size() && b.data == slots_[b.slot].get());
#if !defined(NDEBUG)
    for (const std::uint32_t f : free_)
      FDP_DCHECK(f != b.slot);  // double release: slot already free
#endif
    free_.push_back(b.slot);
  }

  [[nodiscard]] std::size_t slot_bytes() const { return slot_bytes_; }
  [[nodiscard]] std::size_t slots() const { return slots_.size(); }
  [[nodiscard]] std::size_t free_slots() const { return free_.size(); }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] std::uint64_t oversize_acquires() const {
    return oversize_acquires_;
  }

 private:
  std::size_t slot_bytes_;
  std::vector<std::unique_ptr<std::uint8_t[]>> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t high_water_ = 0;
  std::uint64_t oversize_acquires_ = 0;
};

}  // namespace fdp::net
