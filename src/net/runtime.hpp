// The live async-socket runtime: the second Substrate implementation.
//
// Each process is an event-loop actor. An action's sends are encoded into
// wire frames (net/wire.hpp) and queued in the sender's bounded outbox; the
// pump cycle flushes outboxes into the Transport, polls it for readable
// frames, delivers inbox messages and runs one timeout per awake actor.
// With MemTransport the whole cycle is single-threaded and deterministic;
// with UdpTransport every frame really crosses the kernel's loopback UDP
// path.
//
// ## The in-flight ledger (oracle as an omniscient service)
//
// The paper's oracles answer global predicates ("is any reference of p
// still stored or in flight?"). On a real network no process could answer
// that locally — an oracle is an omniscient service by definition (paper
// Section 1.3). This runtime hosts every actor in one OS process, so it
// plays that service itself: every admitted-but-undelivered message is
// kept in a per-destination ledger (outbox + medium + inbox, exactly the
// simulator's "channel"), and the Substrate support queries
// (channel_depth / each_pending / referenced_by_other / Φ) read it. A
// frame the medium loses (UDP buffer overflow) leaves its ledger entry in
// place: the oracle then keeps reporting the reference in flight and the
// affected exit is delayed — a liveness stall, never a safety violation,
// which is precisely the failure direction the paper's model allows.
//
// ## Bounded outboxes
//
// Outboxes are bounded per peer but never drop: dropping a frame would
// destroy the reference copies it carries, and no component in this repo
// is allowed to delete process-graph edges (DESIGN.md, fault model). When
// an actor's queue to some peer reaches the high-water mark the runtime
// throttles the *source* instead — its timeout actions are skipped until
// the queue drains — so back-pressure slows reference production rather
// than losing references.
//
// ## Monitor socket
//
// With Config::monitor set, start() binds a loopback TCP socket; each
// accepted connection receives one JSON document (process states, Φ,
// channel depths, counters) and is closed — the serval-dna monitor-socket
// idiom (docs/substrate_idioms.md): introspection rides a socket anyone
// can poll with nc, not a debugger.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/transport.hpp"
#include "sim/context.hpp"
#include "sim/ids.hpp"
#include "sim/message.hpp"
#include "sim/observer.hpp"
#include "sim/process.hpp"
#include "sim/substrate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fdp::net {

struct NetConfig {
  std::uint64_t seed = 1;
  /// Per-peer outbox high-water mark: at or above this many queued
  /// frames to one peer, the source actor's timeouts are throttled.
  std::size_t outbox_high_water = 64;
  /// Serve live JSON on a loopback TCP monitor socket (see monitor_port).
  bool monitor = false;
};

class NetRuntime final : public Substrate {
 public:
  using Config = NetConfig;

  explicit NetRuntime(std::unique_ptr<Transport> transport,
                      NetConfig cfg = {});
  ~NetRuntime() override;

  // --- population (pre-start construction) ---

  template <typename P, typename... Args>
  Ref spawn(Mode mode, std::uint64_t key, Args&&... args) {
    FDP_CHECK_MSG(!started_, "spawn after start()");
    const ProcessId id = static_cast<ProcessId>(actors_.size());
    const Ref r = Ref::make(id);
    actors_.emplace_back();
    actors_.back().proc =
        std::make_unique<P>(r, mode, key, std::forward<Args>(args)...);
    return r;
  }

  /// Mutable access for scenario construction and tests only (the live
  /// equivalents of World::process_mut / process_as).
  [[nodiscard]] Process& process_mut(ProcessId id) {
    FDP_CHECK(id < actors_.size());
    return *actors_[id].proc;
  }
  template <typename P>
  [[nodiscard]] P& process_as(ProcessId id) {
    auto* p = dynamic_cast<P*>(&process_mut(id));
    FDP_CHECK_MSG(p != nullptr, "process type mismatch");
    return *p;
  }

  /// Force a life state during initial-state construction (initial
  /// sleepers — the live twin of World::force_life).
  void force_life(ProcessId id, LifeState s);

  void set_oracle(OracleFn fn) { oracle_ = std::move(fn); }
  void add_observer(Observer* obs) { observers_.push_back(obs); }

  /// Open the transport endpoints (and the monitor socket, if configured).
  /// Population is frozen from here on.
  void start();

  // --- event loop ---

  /// One pump cycle: flush outboxes, poll the transport (blocking up to
  /// `timeout_ms` for the first frame), deliver every inbox message, run
  /// one timeout per awake un-throttled actor, serve monitor connections.
  /// Returns the number of actions executed.
  std::size_t pump(int timeout_ms = 0);

  /// Pump until `done(*this)` holds or `max_pumps` cycles ran. Returns
  /// true when `done` held.
  bool run_until(const std::function<bool(const NetRuntime&)>& done,
                 std::uint64_t max_pumps, int timeout_ms = 1);

  // --- Substrate surface ---

  [[nodiscard]] std::size_t size() const override { return actors_.size(); }
  [[nodiscard]] const Process& process(ProcessId id) const override {
    FDP_CHECK(id < actors_.size());
    return *actors_[id].proc;
  }
  [[nodiscard]] LifeState life(ProcessId id) const override {
    return process(id).life();
  }
  /// The live runtime's logical clock: executed-action count. Monotone
  /// and deterministic on MemTransport; event-ordered on UDP.
  [[nodiscard]] std::uint64_t clock() const override { return events_; }
  void inject(Ref to, Message m) override;
  [[nodiscard]] std::size_t channel_depth(ProcessId id) const override {
    FDP_CHECK(id < pending_.size());
    return pending_[id].size();
  }
  void each_pending(
      ProcessId id,
      const std::function<void(const Message&)>& fn) const override;
  [[nodiscard]] bool oracle_query(ProcessId caller) const override;
  [[nodiscard]] std::uint64_t quiet_count() const override;
  [[nodiscard]] std::size_t incident_nongone(ProcessId p) const override;
  [[nodiscard]] bool referenced_by_other(ProcessId p) const override;
  [[nodiscard]] const char* substrate_name() const override {
    return name_.c_str();
  }

  // --- introspection ---

  [[nodiscard]] Transport& transport() { return *transport_; }
  /// Monitor TCP port (0 when the monitor is disabled / not started).
  [[nodiscard]] std::uint16_t monitor_port() const { return monitor_port_; }
  /// The JSON document the monitor socket serves.
  [[nodiscard]] std::string monitor_json() const;

  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t sends() const { return sends_; }
  [[nodiscard]] std::uint64_t exits() const { return exits_; }
  [[nodiscard]] std::uint64_t wakes() const { return wakes_; }
  /// Malformed frames rejected by the wire decoder (typed, non-aborting).
  [[nodiscard]] std::uint64_t wire_errors() const { return wire_errors_; }
  /// Well-formed frames whose seq was not in the ledger (duplicates or
  /// frames for already-delivered messages) — dropped.
  [[nodiscard]] std::uint64_t stale_frames() const { return stale_frames_; }
  /// Timeout actions skipped by outbox back-pressure.
  [[nodiscard]] std::uint64_t throttle_skips() const {
    return throttle_skips_;
  }
  /// Admitted-but-undelivered messages across all destinations.
  [[nodiscard]] std::uint64_t in_flight() const;

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  struct Actor {
    std::unique_ptr<Process> proc;
    /// Received, decoded, not yet delivered: (seq, message).
    std::deque<std::pair<std::uint64_t, Message>> inbox;
    /// Accepted sends awaiting the transport: (dst, seq). Frames are
    /// encoded at flush time from the ledger entry.
    std::deque<std::pair<ProcessId, std::uint64_t>> outbox;
    /// Queued-frame count per destination peer (throttling).
    std::map<ProcessId, std::size_t> out_counts;
  };

  enum class ActionKind { Timeout, Deliver };
  void execute(ProcessId actor, ActionKind kind, const Message* consumed);
  void admit_send(ProcessId src, Ref to, Message&& m);
  void flush_outboxes();
  void on_frame(ProcessId dst, const std::uint8_t* data, std::size_t len);
  [[nodiscard]] bool throttled(const Actor& a) const;
  void open_monitor();
  void serve_monitor();

  std::unique_ptr<Transport> transport_;
  Config cfg_;
  std::string name_;
  std::vector<Actor> actors_;
  /// The in-flight ledger: per destination, seq -> message for every
  /// admitted-but-undelivered message (see file comment). Ordered map so
  /// each_pending enumerates deterministically.
  std::vector<std::map<std::uint64_t, Message>> pending_;
  std::vector<Observer*> observers_;
  OracleFn oracle_;
  Rng rng_;
  bool started_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t exits_ = 0;
  std::uint64_t sleeps_ = 0;
  std::uint64_t wakes_ = 0;
  std::uint64_t wire_errors_ = 0;
  std::uint64_t stale_frames_ = 0;
  std::uint64_t throttle_skips_ = 0;
  int monitor_fd_ = -1;
  std::uint16_t monitor_port_ = 0;
  std::vector<std::pair<Ref, Message>> sends_scratch_;
  std::vector<std::uint8_t> frame_scratch_;
  mutable std::vector<RefInfo> refs_scratch_;
};

}  // namespace fdp::net
