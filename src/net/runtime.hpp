// The live async-socket runtime: the second Substrate implementation.
//
// Each process is an event-loop actor. An action's sends are encoded into
// wire frames (net/wire.hpp) and queued in the sender's outbox ring; the
// pump cycle flushes outbox batches into the Transport (one sendmmsg per
// batch where the platform has it), polls it for readable frames,
// delivers inbox messages and fires due timers from a hierarchical timer
// wheel. With MemTransport the whole cycle is single-threaded and
// deterministic; with UdpTransport every frame really crosses the
// kernel's loopback UDP path.
//
// ## The in-flight ledger (oracle as an omniscient service)
//
// The paper's oracles answer global predicates ("is any reference of p
// still stored or in flight?"). On a real network no process could answer
// that locally — an oracle is an omniscient service by definition (paper
// Section 1.3). This runtime hosts every actor in one OS process, so it
// plays that service itself: every admitted-but-undelivered message is
// kept in a per-destination ledger (outbox + medium + inbox, exactly the
// simulator's "channel"), and the Substrate support queries
// (channel_depth / each_pending / referenced_by_other / Φ) read it. The
// ledger is a slot arena indexed by an open-addressing seq map, so
// admit/lookup/erase never touch the allocator in steady state; spilled
// Message ref buffers recycle through a MessagePool exactly like the
// simulator kernel's.
//
// ## Loss and retransmission
//
// A frame the medium loses (UDP buffer overflow, injected drops) leaves
// its ledger entry in place: the oracle keeps reporting the reference in
// flight, so the affected exit is delayed — a liveness stall, never a
// safety violation. On lossy transports the runtime now closes that
// stall: each sent frame arms a timer-wheel retransmit; if the entry is
// still marked in-medium when the timer fires, the frame is re-queued
// and re-sent with exponential backoff. Duplicates this creates are
// dropped by the ledger state machine (an entry already in an inbox
// counts further arrivals as stale), so retransmission is idempotent.
//
// ## Bounded outboxes
//
// Outboxes are bounded per peer but never drop: dropping a frame would
// destroy the reference copies it carries, and no component in this repo
// is allowed to delete process-graph edges (DESIGN.md, fault model). When
// an actor's queue to some peer reaches the high-water mark the runtime
// throttles the *source* instead — its timer-wheel timeout is deferred by
// a backoff delay until the queue drains — so back-pressure slows
// reference production rather than losing references.
//
// ## Timer wheel instead of per-actor scans
//
// Earlier revisions walked every actor every pump to coin-flip timeouts
// and scan for timeout state — O(n) per cycle even when idle. Timeouts
// now live on a hierarchical timer wheel (net/timer_wheel.hpp): each
// awake actor schedules its next timeout a geometric(1/2)-distributed
// number of ticks ahead (the same per-pump firing probability as before,
// so schedules keep the jitter that breaks synchronous-round limit
// cycles), and a pump touches only the actors actually due. Delivery and
// flush work is likewise driven by ready/dirty lists, so a pump's cost is
// O(work due), not O(n).
//
// ## Monitor socket
//
// With Config::monitor set, start() binds a loopback TCP socket; each
// accepted connection receives one JSON document (process states, Φ,
// channel depths, counters) and is closed — the serval-dna monitor-socket
// idiom (docs/substrate_idioms.md): introspection rides a socket anyone
// can poll with nc, not a debugger. The document is serialized into a
// buffer reused across connections, built at most once per pump, and its
// per-process listing is capped (Config::monitor_max_processes) so a
// monitor poll cannot stall the event loop at large n.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/frame_arena.hpp"
#include "net/timer_wheel.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "sim/context.hpp"
#include "sim/ids.hpp"
#include "sim/message.hpp"
#include "sim/message_pool.hpp"
#include "sim/observer.hpp"
#include "sim/process.hpp"
#include "sim/substrate.hpp"
#include "util/check.hpp"
#include "util/flat_map.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

namespace fdp::net {

struct NetConfig {
  std::uint64_t seed = 1;
  /// Per-peer outbox high-water mark: at or above this many queued
  /// frames to one peer, the source actor's timeouts are throttled.
  std::size_t outbox_high_water = 64;
  /// Serve live JSON on a loopback TCP monitor socket (see monitor_port).
  bool monitor = false;
  /// Monitor JSON lists at most this many processes (0 = unlimited); the
  /// omitted count is reported in the document.
  std::size_t monitor_max_processes = 256;
  /// Frames staged per flush batch per source (one sendmmsg's worth).
  std::size_t send_batch = 32;
  /// Pack staged frames that share a destination into one datagram (the
  /// wire format is self-delimiting, so the receiver just decodes in a
  /// loop). This is where the real per-frame win lives: syscall *entry*
  /// is cheap next to the kernel's per-datagram stack traversal, and
  /// coalescing divides that whole cost by the frames per datagram.
  bool coalesce_frames = true;
  /// Pump ticks before a frame on a lossy transport is presumed lost and
  /// re-queued (doubles per attempt, capped). 0 disables retransmission.
  std::uint32_t retransmit_ticks = 32;
  /// Send attempts per frame before the runtime stops retransmitting it
  /// (0 = retry forever). The ledger entry survives a give-up — the
  /// references it carries may never be destroyed — so the oracle keeps
  /// reporting them in flight and the affected exit stalls: give-up
  /// converts an invisible infinite retry (e.g. into a permanent
  /// partition) into a counted, monitorable liveness signal. At the
  /// default ceiling a frame survives ~30 independent losses; even at
  /// 20% loss the chance of exhausting it is ~1e-21 per frame, so any
  /// nonzero retransmit_gave_up in a non-partitioned run is a bug, and
  /// E13/E14 assert exactly that.
  std::uint32_t retransmit_max_attempts = 30;
  /// Pump ticks a throttled actor's timeout is deferred by.
  std::uint32_t throttle_backoff_ticks = 4;
};

class NetRuntime final : public Substrate {
 public:
  /// (peer, count) rows of the reference-edge instance index (public for
  /// the maintenance helpers in runtime.cpp's anonymous namespace).
  using EdgeCounts = std::vector<std::pair<ProcessId, std::uint32_t>>;
  using Config = NetConfig;

  explicit NetRuntime(std::unique_ptr<Transport> transport,
                      NetConfig cfg = {});
  ~NetRuntime() override;

  // --- population (pre-start construction) ---

  template <typename P, typename... Args>
  Ref spawn(Mode mode, std::uint64_t key, Args&&... args) {
    FDP_CHECK_MSG(!started_, "spawn after start()");
    const ProcessId id = static_cast<ProcessId>(actors_.size());
    const Ref r = Ref::make(id);
    actors_.emplace_back();
    actors_.back().proc =
        std::make_unique<P>(r, mode, key, std::forward<Args>(args)...);
    return r;
  }

  /// Mutable access for scenario construction and tests only (the live
  /// equivalents of World::process_mut / process_as).
  [[nodiscard]] Process& process_mut(ProcessId id) {
    FDP_CHECK(id < actors_.size());
    return *actors_[id].proc;
  }
  template <typename P>
  [[nodiscard]] P& process_as(ProcessId id) {
    auto* p = dynamic_cast<P*>(&process_mut(id));
    FDP_CHECK_MSG(p != nullptr, "process type mismatch");
    return *p;
  }

  /// Force a life state during initial-state construction (initial
  /// sleepers — the live twin of World::force_life).
  void force_life(ProcessId id, LifeState s);

  void set_oracle(OracleFn fn) { oracle_ = std::move(fn); }
  void add_observer(Observer* obs) { observers_.push_back(obs); }

  // --- fault injection (the live twins of World's fault surface; used
  // --- by net/net_faults.hpp to drive a FaultPlan on this substrate) ---

  /// Announce a runtime fault to every observer (same before/after
  /// contract as World::announce_fault; see Observer::on_fault).
  void announce_fault(FaultKind kind, ProcessId target, bool applied) {
    for (Observer* o : observers_) o->on_fault(*this, kind, target, applied);
  }
  /// Awake-actor count / k-th awake actor in ascending id order. O(n)
  /// scans: fault victim selection is rare (per fault, not per pump), so
  /// the simulator's Fenwick roster would be dead weight here.
  [[nodiscard]] std::uint64_t awake_count() const;
  [[nodiscard]] ProcessId kth_awake(std::uint64_t k) const;
  /// Admitted-but-undelivered messages owned by non-gone actors (the
  /// duplication adversary's pick pool; gone actors' messages can never
  /// be delivered, so duplicating them perturbs nothing).
  [[nodiscard]] std::uint64_t live_message_count() const;
  /// The k-th live message in (actor ascending, ledger order) order.
  [[nodiscard]] std::pair<ProcessId, std::uint64_t> kth_live_message(
      std::uint64_t k) const;
  /// Admit a copy of a ledgered message (fresh seq) straight into its
  /// destination's inbox — adversarial duplication, the live twin of
  /// World::duplicate_message: references are only ever copied, and the
  /// copy needs no wire hop (an adversarial Introduction is client-side
  /// admission, exactly like inject()). Returns true when `seq` existed.
  bool duplicate_message(ProcessId id, std::uint64_t seq);
  /// Repair the edge index after a fault hook mutated an actor's store
  /// behind the action stream's back (crash-restart / scramble call the
  /// Process fault hooks directly; the per-action diff never sees it).
  void note_store_mutation(ProcessId id);

  /// Open the transport endpoints (and the monitor socket, if configured)
  /// and arm the timeout timers. Population is frozen from here on.
  void start();

  // --- event loop ---

  /// One pump cycle: flush dirty outbox batches, poll the transport
  /// (blocking up to `timeout_ms` for the first frame), deliver every
  /// ready inbox message, fire due timers (timeouts, retransmits), serve
  /// monitor connections. Returns the number of actions executed.
  std::size_t pump(int timeout_ms = 0);

  /// Pump until `done(*this)` holds or `max_pumps` cycles ran. Returns
  /// true when `done` held.
  bool run_until(const std::function<bool(const NetRuntime&)>& done,
                 std::uint64_t max_pumps, int timeout_ms = 1);

  // --- Substrate surface ---

  [[nodiscard]] std::size_t size() const override { return actors_.size(); }
  [[nodiscard]] const Process& process(ProcessId id) const override {
    FDP_CHECK(id < actors_.size());
    return *actors_[id].proc;
  }
  [[nodiscard]] LifeState life(ProcessId id) const override {
    return process(id).life();
  }
  /// The live runtime's logical clock: executed-action count. Monotone
  /// and deterministic on MemTransport; event-ordered on UDP.
  [[nodiscard]] std::uint64_t clock() const override { return events_; }
  void inject(Ref to, Message m) override;
  [[nodiscard]] std::size_t channel_depth(ProcessId id) const override {
    FDP_CHECK(id < pending_.size());
    return pending_[id].order.size();
  }
  void each_pending(
      ProcessId id,
      const std::function<void(const Message&)>& fn) const override;
  [[nodiscard]] bool oracle_query(ProcessId caller) const override;
  [[nodiscard]] std::uint64_t quiet_count() const override;
  [[nodiscard]] std::size_t incident_nongone(ProcessId p) const override;
  [[nodiscard]] bool referenced_by_other(ProcessId p) const override;
  [[nodiscard]] const char* substrate_name() const override {
    return name_.c_str();
  }

  // --- introspection ---

  [[nodiscard]] Transport& transport() { return *transport_; }
  [[nodiscard]] const Transport& transport() const { return *transport_; }
  /// Monitor TCP port (0 when the monitor is disabled / not started).
  [[nodiscard]] std::uint16_t monitor_port() const { return monitor_port_; }
  /// The JSON document the monitor socket serves, (re)built into a buffer
  /// reused across calls.
  [[nodiscard]] const std::string& monitor_json() const;

  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t sends() const { return sends_; }
  [[nodiscard]] std::uint64_t exits() const { return exits_; }
  [[nodiscard]] std::uint64_t wakes() const { return wakes_; }
  /// Malformed frames rejected by the wire decoder (typed, non-aborting).
  [[nodiscard]] std::uint64_t wire_errors() const { return wire_errors_; }
  /// Well-formed frames whose seq was not awaiting arrival (duplicate
  /// datagrams, retransmit echoes, already-delivered seqs) — dropped.
  [[nodiscard]] std::uint64_t stale_frames() const { return stale_frames_; }
  /// Timeout firings deferred by outbox back-pressure.
  [[nodiscard]] std::uint64_t throttle_skips() const {
    return throttle_skips_;
  }
  /// Frames re-queued by the retransmit timer (lossy transports only).
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  /// Frames whose retransmit ceiling was exhausted (total / per source
  /// actor). Nonzero outside a partition window means the medium is worse
  /// than the ceiling was provisioned for — E13/E14 assert 0.
  [[nodiscard]] std::uint64_t retransmit_gave_up() const {
    return retransmit_gave_up_;
  }
  [[nodiscard]] std::uint64_t actor_retransmit_gave_up(ProcessId id) const {
    FDP_CHECK(id < actors_.size());
    return actors_[id].retransmit_gave_up;
  }
  /// Admitted-but-undelivered messages across all destinations.
  [[nodiscard]] std::uint64_t in_flight() const;
  /// Pump cycles completed (the timer wheel's tick clock).
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  /// Outbound frame-buffer arena (introspection for tests/benches).
  [[nodiscard]] const FrameArena& arena() const { return arena_; }

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  /// One queued outbound frame: destination and ledger key. The bytes are
  /// encoded at flush time from the ledger entry (the single source of
  /// truth — a retransmit re-encodes the same entry).
  struct OutEntry {
    ProcessId dst = kNoProcess;
    std::uint64_t seq = 0;
  };
  struct InEntry {
    std::uint64_t seq = 0;
    Message msg;  ///< slot reused by the ring; spill capacity retained
  };

  struct Actor {
    std::unique_ptr<Process> proc;
    /// Received, decoded, not yet delivered.
    RingBuffer<InEntry> inbox;
    /// Accepted sends awaiting the transport.
    RingBuffer<OutEntry> outbox;
    /// Queued-frame count per destination peer, keyed by dst+1 (0 is the
    /// FlatMap64 empty sentinel).
    FlatMap64<std::uint32_t> out_counts;
    /// Destinations at or above the high-water mark (throttling is O(1)).
    std::uint32_t over_high_water = 0;
    /// Frames this actor sent whose retransmit ceiling was exhausted.
    std::uint64_t retransmit_gave_up = 0;
    bool timer_armed = false;
    bool outbox_dirty = false;  ///< queued in dirty_outboxes_
    bool inbox_ready = false;   ///< queued in ready_inboxes_
  };

  /// Where an admitted message currently is. Frames are re-sendable until
  /// they reach an inbox; arrivals for an entry already past Sent are
  /// duplicates and dropped.
  enum class Where : std::uint8_t {
    Queued,   ///< in the source outbox (not yet accepted by the medium)
    Sent,     ///< handed to the medium; may be lost (lossy transports)
    Arrived,  ///< decoded into the destination inbox; awaiting delivery
  };

  struct LedgerEntry {
    Message msg;
    ProcessId src = kNoProcess;  ///< kNoProcess for injected messages
    Where where = Where::Queued;
    std::uint8_t attempts = 0;  ///< send attempts (retransmit backoff)
  };

  /// Per-destination slot arena of admitted-but-undelivered messages:
  /// seq-indexed, allocation-free in steady state, deterministic
  /// enumeration via the dense order view (insertion order, swap-remove).
  struct Ledger {
    std::vector<LedgerEntry> slots;
    std::vector<std::uint32_t> free;
    std::vector<std::uint32_t> order;  ///< live slots, dense
    std::vector<std::uint32_t> pos;    ///< slot -> index in order
    FlatMap64<std::uint32_t> index;    ///< seq -> slot

    LedgerEntry& emplace(std::uint64_t seq);
    [[nodiscard]] LedgerEntry* find(std::uint64_t seq);
    [[nodiscard]] const LedgerEntry* find(std::uint64_t seq) const;
    void erase(std::uint64_t seq, MessagePool& pool);
  };

  enum class ActionKind { Timeout, Deliver };
  void execute(ProcessId actor, ActionKind kind, const Message* consumed);
  // Reference-edge instance index (the simulator's idiom, ported to the
  // ledger): ref_out_[h] / ref_in_[t] hold (peer, count) rows over stored
  // refs of non-gone actors plus refs carried by ledger messages, keyed
  // by the destination actor that owns the channel. Maintained
  // incrementally once built, so the oracle queries below are O(degree)
  // instead of a full O(n + in-flight) scan per call — at n=1024 the
  // scan-per-leaver-timeout was the bottleneck of the whole run.
  void add_edge_instance(ProcessId holder, ProcessId target) const;
  void remove_edge_instance(ProcessId holder, ProcessId target) const;
  void add_message_refs(ProcessId holder, const Message& m) const;
  void remove_message_refs(ProcessId holder, const Message& m) const;
  void apply_store_diff(ProcessId actor);
  void deregister_gone_actor(ProcessId p) const;
  void ensure_edge_index() const;
  const Message& admit_send(ProcessId src, Ref to, Message&& m);
  void flush_outboxes();
  bool flush_one(ProcessId src);  ///< false on medium EAGAIN
  void on_frame(ProcessId dst, const std::uint8_t* data, std::size_t len);
  void handle_frame(ProcessId dst);  ///< one decoded frame (in rx_frame_)
  std::size_t deliver_ready();
  void fire_timer(std::uint64_t payload);
  void arm_timeout(ProcessId id);
  void arm_retransmit(ProcessId dst, const LedgerEntry& e,
                      std::uint64_t seq);
  void mark_outbox_dirty(ProcessId src);
  void mark_inbox_ready(ProcessId dst);
  void bump_out_count(Actor& a, ProcessId dst);
  void drop_out_count(Actor& a, ProcessId dst);
  [[nodiscard]] bool throttled(const Actor& a) const {
    return a.over_high_water > 0;
  }
  void open_monitor();
  void serve_monitor();

  std::unique_ptr<Transport> transport_;
  Config cfg_;
  std::string name_;
  std::vector<Actor> actors_;
  /// The in-flight ledger (see file comment).
  std::vector<Ledger> pending_;
  MessagePool pool_;
  FrameArena arena_;
  TimerWheel wheel_;
  std::vector<Observer*> observers_;
  OracleFn oracle_;
  Rng rng_;
  bool started_ = false;
  bool transport_lossy_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t exits_ = 0;
  std::uint64_t sleeps_ = 0;
  std::uint64_t wakes_ = 0;
  std::uint64_t wire_errors_ = 0;
  std::uint64_t stale_frames_ = 0;
  std::uint64_t throttle_skips_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t retransmit_gave_up_ = 0;
  std::size_t executed_this_pump_ = 0;
  int monitor_fd_ = -1;
  std::uint16_t monitor_port_ = 0;
  mutable std::uint64_t monitor_built_tick_ = ~std::uint64_t{0};
  mutable std::string monitor_buf_;
  std::vector<ProcessId> dirty_outboxes_;
  std::vector<ProcessId> ready_inboxes_;
  std::vector<ProcessId> flush_scratch_;
  std::vector<FrameView> stage_views_;   ///< one per staged datagram
  std::vector<FrameArena::Buf> stage_bufs_;
  std::vector<OutEntry> stage_entries_;  ///< staged frames, outbox order
  std::vector<std::uint32_t> stage_group_of_;  ///< frame -> datagram index
  std::vector<std::pair<Ref, Message>> sends_scratch_;
  std::vector<RefInfo> proc_ref_scratch_;  ///< Context::ref_scratch() backing
  RxFn rx_fn_;             ///< built once in start() (no per-pump alloc)
  DecodedFrame rx_frame_;  ///< reused across decodes (spill cap retained)
  ActionRecord rec_;       ///< reused across executes (vector cap retained)
  mutable std::vector<RefInfo> refs_scratch_;
  /// Edge-instance index state. Lazily built at the first oracle query
  /// (force_life drops it — scenario corruption mutates stores directly),
  /// then kept in sync by execute/admit/inject/deliver/exit. ref_cache_
  /// mirrors each actor's stored refs so the post-action diff needs no
  /// "before" snapshot.
  mutable bool edges_synced_ = false;
  mutable std::vector<EdgeCounts> ref_out_;
  mutable std::vector<EdgeCounts> ref_in_;
  mutable std::vector<std::vector<RefInfo>> ref_cache_;
  std::vector<char> diff_matched_;
};

}  // namespace fdp::net
