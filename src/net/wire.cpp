#include "net/wire.hpp"

#include "util/check.hpp"

namespace fdp::net {

namespace {

void wr_u16(std::uint8_t*& p, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) *p++ = static_cast<std::uint8_t>(v >> (8 * i));
}

void wr_u32(std::uint8_t*& p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) *p++ = static_cast<std::uint8_t>(v >> (8 * i));
}

void wr_u64(std::uint8_t*& p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) *p++ = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

const char* to_string(WireError e) {
  switch (e) {
    case WireError::None: return "none";
    case WireError::Truncated: return "truncated";
    case WireError::Overlong: return "overlong";
    case WireError::BadMagic: return "bad-magic";
    case WireError::BadVersion: return "bad-version";
    case WireError::BadVerb: return "bad-verb";
    case WireError::BadPad: return "bad-pad";
    case WireError::BadMode: return "bad-mode";
    case WireError::BadRefCount: return "bad-ref-count";
    case WireError::LengthMismatch: return "length-mismatch";
    case WireError::BadTag: return "bad-tag";
  }
  return "?";
}

std::size_t encoded_size(const Message& m) {
  return kFrameHeaderBytes + kRefBytes * m.refs.size();
}

void encode_frame(const Message& m, ProcessId src, ProcessId dst,
                  std::vector<std::uint8_t>& out) {
  const std::size_t len = encoded_size(m);
  const std::size_t at = out.size();
  out.resize(at + len);
  (void)encode_frame(m, src, dst, out.data() + at, len);
}

std::size_t encode_frame(const Message& m, ProcessId src, ProcessId dst,
                         std::uint8_t* out, std::size_t cap) {
  FDP_CHECK_MSG(m.refs.size() <= kMaxWireRefs,
                "message exceeds the wire-format reference cap");
  const std::size_t len = encoded_size(m);
  FDP_CHECK_MSG(cap >= len, "encode buffer smaller than the frame");
  std::uint8_t* p = out;
  wr_u32(p, static_cast<std::uint32_t>(len));
  wr_u32(p, kWireMagic);
  wr_u16(p, kWireVersion);
  *p++ = static_cast<std::uint8_t>(m.verb());
  *p++ = 0;  // pad
  wr_u32(p, m.tag());
  wr_u64(p, m.token);
  wr_u64(p, m.seq);
  wr_u32(p, src);
  wr_u32(p, dst);
  wr_u32(p, static_cast<std::uint32_t>(m.refs.size()));
  for (const RefInfo& r : m.refs) {
    wr_u32(p, r.ref.id());
    *p++ = static_cast<std::uint8_t>(r.mode);
    wr_u64(p, r.key);
  }
  FDP_DCHECK(static_cast<std::size_t>(p - out) == len);
  return len;
}

WireError decode_frame(const std::uint8_t* data, std::size_t len,
                       DecodedFrame& out, std::size_t* consumed) {
  std::size_t skip = len;  // default resync: drop everything we were given
  const auto fail = [&](WireError e) {
    if (consumed != nullptr) *consumed = skip;
    return e;
  };

  if (len < 4) return fail(WireError::Truncated);
  const std::uint32_t frame_len = get_u32(data);
  if (frame_len > max_frame_bytes()) return fail(WireError::Overlong);
  if (frame_len < kFrameHeaderBytes) {
    // A claimed length too small to hold the header: the prefix itself is
    // garbage, so it cannot be trusted for resynchronization either.
    return fail(WireError::Truncated);
  }
  if (frame_len > len) return fail(WireError::Truncated);
  // From here the frame is fully in the buffer; resync past it on error.
  skip = frame_len;

  if (get_u32(data + 4) != kWireMagic) return fail(WireError::BadMagic);
  if (get_u16(data + 8) != kWireVersion) return fail(WireError::BadVersion);
  const std::uint8_t verb = data[10];
  if (verb > static_cast<std::uint8_t>(Verb::User))
    return fail(WireError::BadVerb);
  if (data[11] != 0) return fail(WireError::BadPad);
  const std::uint32_t ref_count = get_u32(data + 40);
  if (ref_count > kMaxWireRefs) return fail(WireError::BadRefCount);
  if (frame_len !=
      kFrameHeaderBytes + kRefBytes * static_cast<std::size_t>(ref_count))
    return fail(WireError::LengthMismatch);

  // Reset in place: refs.clear() keeps any spill capacity from earlier
  // frames, so a reused DecodedFrame decodes without allocating.
  out.msg.refs.clear();
  out.msg.stamp_enqueued(0);  // not carried on the wire
  out.msg.set_verb(static_cast<Verb>(verb));
  const std::uint32_t tag = get_u32(data + 12);
  if (tag > kMaxTag) return fail(WireError::BadTag);
  out.msg.set_tag(tag);
  out.msg.token = get_u64(data + 16);
  out.msg.seq = get_u64(data + 24);
  out.src = get_u32(data + 32);
  out.dst = get_u32(data + 36);
  const std::uint8_t* p = data + kFrameHeaderBytes;
  for (std::uint32_t i = 0; i < ref_count; ++i, p += kRefBytes) {
    const std::uint8_t mode = p[4];
    if (mode > static_cast<std::uint8_t>(ModeInfo::Unknown))
      return fail(WireError::BadMode);
    out.msg.refs.push_back(RefInfo{Ref::make(get_u32(p)),
                                   static_cast<ModeInfo>(mode),
                                   get_u64(p + 5)});
  }
  if (consumed != nullptr) *consumed = frame_len;
  return WireError::None;
}

}  // namespace fdp::net
