#include "net/net_faults.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fdp::net {

namespace {

bool plan_partitions(const FaultPlan& plan) {
  if (plan.p_partition > 0.0 && plan.stochastic_until > 0) return true;
  return std::any_of(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent& e) {
                       return e.kind == FaultKind::PartitionStart;
                     });
}

}  // namespace

NetFaultInjector::NetFaultInjector(NetRuntime& net, ShapedTransport* shaper,
                                   FaultPlan plan, std::uint64_t seed)
    : net_(net), shaper_(shaper), plan_(std::move(plan)), fault_rng_(seed) {
  const std::string complaint = plan_.validate();
  FDP_CHECK_MSG(complaint.empty(), complaint.c_str());
  FDP_CHECK_MSG(shaper_ != nullptr || !plan_partitions(plan_),
                "the plan opens partition windows but no ShapedTransport "
                "was given to realize them");
}

void NetFaultInjector::pump() {
  const std::uint64_t now = net_.clock();

  // Close an expired window first, exactly once, before any new fault can
  // fire: RecoveryMonitor rebases the partition's recovery clock to this
  // boundary (the cut only delays progress; recovery starts when frames
  // flow again).
  if (window_open_ && partition_until_ <= now) {
    window_open_ = false;
    shaper_->end_partition();
    net_.announce_fault(FaultKind::PartitionEnd, kNoProcess,
                        /*applied=*/false);
    net_.announce_fault(FaultKind::PartitionEnd, kNoProcess,
                        /*applied=*/true);
  }

  while (cursor_ < plan_.events.size() &&
         plan_.events[cursor_].step <= now) {
    apply(plan_.events[cursor_], now);
    ++cursor_;
  }

  // Stochastic regime: the simulator rolls once per world step; the live
  // clock advances in per-pump bursts, so catch up one roll per elapsed
  // step, in the simulator's per-step draw order.
  const std::uint64_t until = std::min(now, plan_.stochastic_until);
  while (next_stochastic_step_ < until) {
    const std::uint64_t step = next_stochastic_step_++;
    if (plan_.p_crash > 0.0 && fault_rng_.chance(plan_.p_crash))
      apply(FaultEvent{step, FaultKind::CrashRestart, 1}, now);
    if (plan_.p_scramble > 0.0 && fault_rng_.chance(plan_.p_scramble))
      apply(FaultEvent{step, FaultKind::Scramble, 1}, now);
    if (plan_.p_duplicate > 0.0 && fault_rng_.chance(plan_.p_duplicate))
      apply(FaultEvent{step, FaultKind::DuplicateBurst, 0}, now);
    if (plan_.p_partition > 0.0 && fault_rng_.chance(plan_.p_partition))
      apply(FaultEvent{step, FaultKind::PartitionStart, 1}, now);
  }
}

void NetFaultInjector::apply(const FaultEvent& ev, std::uint64_t now) {
  switch (ev.kind) {
    case FaultKind::CrashRestart:
    case FaultKind::Scramble: {
      for (std::uint32_t i = 0; i < ev.count; ++i) {
        const std::uint64_t awake = net_.awake_count();
        if (awake == 0) break;
        const ProcessId victim = net_.kth_awake(fault_rng_.below(awake));
        net_.announce_fault(ev.kind, victim, /*applied=*/false);
        const bool ok =
            ev.kind == FaultKind::CrashRestart
                ? net_.process_mut(victim).fault_crash_restart(fault_rng_)
                : net_.process_mut(victim).fault_scramble(fault_rng_);
        if (!ok) continue;  // victim type doesn't support the fault
        // The hook mutated the victim's store behind the action stream's
        // back; repair the edge index before the next oracle query.
        net_.note_store_mutation(victim);
        if (ev.kind == FaultKind::CrashRestart) {
          ++crashes_;
        } else {
          ++scrambles_;
        }
        net_.announce_fault(ev.kind, victim, /*applied=*/true);
      }
      break;
    }
    case FaultKind::DuplicateBurst: {
      if (net_.live_message_count() == 0) break;
      net_.announce_fault(ev.kind, kNoProcess, /*applied=*/false);
      const std::uint32_t burst =
          ev.count > 0 ? ev.count : plan_.duplicate_burst;
      std::uint64_t done = 0;
      for (std::uint32_t i = 0; i < burst; ++i) {
        const std::uint64_t live = net_.live_message_count();
        if (live == 0) break;
        const auto [p, seq] = net_.kth_live_message(fault_rng_.below(live));
        if (net_.duplicate_message(p, seq)) ++done;
      }
      if (done > 0) {
        duplicates_ += done;
        ++bursts_;
        net_.announce_fault(ev.kind, kNoProcess, /*applied=*/true);
      }
      break;
    }
    case FaultKind::PartitionStart: {
      if (window_open_) break;  // one window at a time, like the simulator
      const std::size_t n = net_.size();
      if (n == 0) break;
      net_.announce_fault(ev.kind, kNoProcess, /*applied=*/false);
      blocked_.assign(n, 0);
      bool any = false;
      for (std::size_t p = 0; p < n; ++p) {
        if (fault_rng_.chance(0.5)) {
          blocked_[p] = 1;
          any = true;
        }
      }
      if (!any) blocked_[fault_rng_.below(n)] = 1;
      shaper_->start_partition(blocked_);
      partition_until_ = now + plan_.partition_window;
      window_open_ = true;
      ++partitions_;
      net_.announce_fault(ev.kind, kNoProcess, /*applied=*/true);
      break;
    }
    case FaultKind::PartitionEnd:
      break;  // emitted by pump(), never scheduled
  }
}

}  // namespace fdp::net
