// FaultPlan execution on the live substrate.
//
// The simulator's FaultScheduler (sim/fault.hpp) injects mid-run
// perturbations by wrapping the scheduler — a seam the live runtime does
// not have (the kernel's datagram scheduling IS the scheduler). The
// NetFaultInjector closes the asymmetry from the other side: it consumes
// the SAME FaultPlan, is pumped once per runtime pump cycle, and uses the
// runtime's action clock (NetRuntime::clock()) as the plan's step clock —
// so one plan drives both substrates and a "crash at step 500" means the
// same thing in a simulator trial and a live one.
//
// Fault classes map like this:
//
//  * CrashRestart / Scramble — victim picked uniformly over awake actors
//    from the injector's own seeded stream, then the very same Process
//    fault hooks the simulator uses (fault_crash_restart rebuilds an
//    arbitrary-but-legal copy-store-send state from the references held;
//    nothing is destroyed). The runtime's edge index is repaired via
//    note_store_mutation, and the announce-before/after observer contract
//    matches World::announce_fault, so RecoveryMonitor works unchanged.
//  * DuplicateBurst — NetRuntime::duplicate_message, the live twin of the
//    simulator's (fresh seq, client-side admission, references copied).
//  * PartitionStart / PartitionEnd — realized in the medium: the injector
//    draws a random ~half cut and severs it via
//    ShapedTransport::start_partition. The plan's partition_window is in
//    plan steps (= runtime actions), like the simulator's; the injector
//    closes the window and announces PartitionEnd when the clock passes
//    it. Frames destroyed by the window are recovered by the ledger
//    retransmit protocol once it closes — delivery is delayed, never
//    denied, unless the retransmit ceiling is exhausted first
//    (NetConfig::retransmit_max_attempts), which the give-up counters
//    make visible.
//
// The injector draws from a private Rng stream (mix the plan seed with
// the trial seed, as run_to_legitimacy does), so a fault campaign over
// MemTransport replays deterministically.
#pragma once

#include <cstdint>

#include "net/runtime.hpp"
#include "net/shaped_transport.hpp"
#include "sim/fault.hpp"

namespace fdp::net {

class NetFaultInjector {
 public:
  /// `shaper` realizes partition windows; it may be null when the plan
  /// opens none (checked at construction). `seed` seeds the private
  /// fault stream.
  NetFaultInjector(NetRuntime& net, ShapedTransport* shaper, FaultPlan plan,
                   std::uint64_t seed);

  /// Advance the plan against the runtime's current clock: close an
  /// expired partition window, fire due scheduled events, roll the
  /// stochastic regime once per elapsed clock step. Call once per pump
  /// cycle.
  void pump();

  /// True once every scheduled event fired, the stochastic regime is
  /// over and no partition window is open — the run may terminate
  /// without cutting a perturbation short.
  [[nodiscard]] bool exhausted() const {
    return cursor_ >= plan_.events.size() &&
           next_stochastic_step_ >= plan_.stochastic_until && !window_open_;
  }
  [[nodiscard]] bool partition_open() const { return window_open_; }

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t scrambles() const { return scrambles_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t partitions() const { return partitions_; }
  /// Total applied perturbations (what RecoveryMonitor sees as `applied`
  /// announcements, PartitionEnd aside).
  [[nodiscard]] std::uint64_t injected() const {
    return crashes_ + scrambles_ + bursts_ + partitions_;
  }

 private:
  void apply(const FaultEvent& ev, std::uint64_t now);

  NetRuntime& net_;
  ShapedTransport* shaper_;
  FaultPlan plan_;
  Rng fault_rng_;
  std::size_t cursor_ = 0;  ///< next unfired scheduled event
  std::uint64_t next_stochastic_step_ = 0;
  std::uint64_t partition_until_ = 0;
  bool window_open_ = false;
  std::vector<char> blocked_;
  std::uint64_t crashes_ = 0;
  std::uint64_t scrambles_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t bursts_ = 0;
  std::uint64_t partitions_ = 0;
};

}  // namespace fdp::net
