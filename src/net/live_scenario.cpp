#include "net/live_scenario.hpp"

#include "core/framework.hpp"
#include "core/oracle.hpp"
#include "overlay/topology_checks.hpp"

namespace fdp::net {

LiveScenario build_live_framework_scenario(const ScenarioConfig& cfg,
                                           const std::string& overlay,
                                           std::unique_ptr<Transport> transport,
                                           NetRuntime::Config rcfg) {
  Rng rng(cfg.seed);
  const PopulationPlan pop = plan_population(cfg, rng);

  LiveScenario sc;
  // Mirror the simulator builder's world seed derivation so the two
  // substrates' protocol-visible RNG streams are seeded alike.
  rcfg.seed = cfg.seed ^ 0x5eedULL;
  sc.net = std::make_unique<NetRuntime>(std::move(transport), rcfg);
  sc.leaving = pop.leaving;
  sc.leaving_count = pop.leaving_count;
  for (std::size_t i = 0; i < cfg.n; ++i) {
    sc.refs.push_back(sc.net->spawn<FrameworkProcess>(
        pop.leaving[i] ? Mode::Leaving : Mode::Staying, pop.keys[i],
        make_overlay(overlay), cfg.policy));
  }
  pop.topology.for_each_edge([&](NodeId u, NodeId v) {
    auto& proc = sc.net->process_as<FrameworkProcess>(u);
    proc.overlay_mut().integrate(
        RefInfo{sc.refs[v], knowledge_of(cfg, pop, v, rng), pop.keys[v]});
  });
  // Corruption injects messages, which needs open endpoints.
  sc.net->start();
  corrupt_population(
      cfg, pop, sc.refs, rng,
      [&](ProcessId p, const RefInfo& a) {
        sc.net->process_as<FrameworkProcess>(p).set_anchor(a);
      },
      [&](Ref to, Message m) { sc.net->inject(to, std::move(m)); },
      [&](ProcessId p) { sc.net->force_life(p, LifeState::Asleep); });
  OracleFn oracle = oracle_by_name(cfg.oracle);
  if (cfg.oracle_p_false_pos > 0.0 || cfg.oracle_p_false_neg > 0.0) {
    oracle = make_unreliable_oracle(std::move(oracle), cfg.oracle_p_false_pos,
                                    cfg.oracle_p_false_neg,
                                    cfg.seed ^ 0x0bac1eULL);
  }
  sc.net->set_oracle(std::move(oracle));
  sc.seed = cfg.seed;
  return sc;
}

}  // namespace fdp::net
