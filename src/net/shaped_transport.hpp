// Deterministic link shaping for the live runtime — tc netem in-process.
//
// ShapedTransport decorates any Transport with per-link traffic shaping:
// Bernoulli loss, Gilbert–Elliott burst loss, fixed latency plus jittered
// delay, bounded reordering, duplication, and timed bidirectional
// partition windows. The decorated medium is what E14 measures the
// retransmit protocol against, and what the live fault injector
// (net/net_faults.hpp) uses to realize FaultPlan partition windows.
//
// ## Shaping unit: the datagram
//
// The runtime coalesces frames that share a destination into one datagram
// before the transport sees them, so the shaper's unit is the datagram —
// exactly tc netem's: every frame inside a lost datagram is lost together
// (shared fate). The ledger tracks each frame's seq independently, so a
// multi-frame loss is recovered one retransmit per frame; the duplicates
// a duplicated datagram creates are dropped as stale by the ledger state
// machine, like any other duplicate.
//
// ## Determinism contract
//
// Every shaping decision draws from a per-link Rng stream seeded by
// mixing the shaper seed with the (src, dst) pair, and the delay queue
// runs on the same hierarchical TimerWheel as the runtime (one tick per
// poll, insertion-order firing within a tick). Decisions therefore depend
// only on the link's own datagram sequence — never on cross-link
// interleaving — so a ShapedTransport-over-MemTransport run is a pure
// function of (population seed, shaper seed): the compound-chaos tests
// replay it exactly, and the E14 loss grid is reproducible row by row.
// Over UDP the same stream shapes a kernel-scheduled frame order, so
// runs are honest but not replayable — same as unshapen UDP.
//
// ## What shaping never does
//
// The shaper destroys datagrams only in ways the retransmit protocol is
// built to recover (the sender's ledger entry survives every drop); it
// never reaches into the runtime's state. Loss + retransmission composes
// to delay, which the paper's model absorbs — see DESIGN.md "Fault
// model" and docs/substrate_idioms.md §4.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/timer_wheel.hpp"
#include "net/transport.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace fdp::net {

/// Per-link shaping parameters. All probabilities are per *datagram*.
struct ShapeConfig {
  /// Seed of the shaping streams (mixed per link; independent of the
  /// runtime's protocol RNG).
  std::uint64_t seed = 1;

  /// Bernoulli loss probability.
  double loss = 0.0;

  // Gilbert–Elliott burst loss: a per-link good/bad Markov chain stepped
  // once per datagram; datagrams sampled in the bad state are lost with
  // `burst_loss`. Disabled while `burst_to_bad` is 0.
  double burst_to_bad = 0.0;   ///< P(good -> bad) per datagram
  double burst_to_good = 0.25; ///< P(bad -> good) per datagram
  double burst_loss = 0.75;    ///< loss probability while in the bad state

  /// Fixed delivery delay, in poll ticks (0 still incurs the one-tick
  /// queue hop: a shaped datagram is never delivered in the poll that
  /// accepted it).
  std::uint32_t latency_ticks = 0;
  /// Uniform extra delay in [0, jitter_ticks] ticks.
  std::uint32_t jitter_ticks = 0;

  /// Probability a datagram is held back an extra 1..reorder_ticks ticks
  /// — bounded reordering: it arrives after datagrams shaped later.
  double reorder = 0.0;
  std::uint32_t reorder_ticks = 4;

  /// Probability a datagram is delivered twice (the copy rides the delay
  /// queue separately, so the pair may arrive in either order).
  double duplicate = 0.0;

  /// Declare partition capability up front: the runtime samples lossy()
  /// once at start(), so a transport that will host fault-injected
  /// partition windows must already report itself lossy even when every
  /// probability above is 0.
  bool partitions = false;

  /// True when this configuration can destroy datagrams.
  [[nodiscard]] bool can_lose() const {
    return loss > 0.0 || burst_to_bad > 0.0 || partitions;
  }

  /// "" when well-formed, else a human-readable complaint.
  [[nodiscard]] std::string validate() const;
};

/// Shaping outcome counters (datagram granularity).
struct ShapeStats {
  std::uint64_t shaped = 0;             ///< datagrams accepted for shaping
  std::uint64_t delivered = 0;          ///< handed to the inner medium
  std::uint64_t dropped_loss = 0;       ///< Bernoulli losses
  std::uint64_t dropped_burst = 0;      ///< Gilbert–Elliott bad-state losses
  std::uint64_t dropped_partition = 0;  ///< destroyed by an open window
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_loss + dropped_burst + dropped_partition;
  }
};

class ShapedTransport final : public Transport {
 public:
  ShapedTransport(std::unique_ptr<Transport> inner, ShapeConfig cfg);

  void open(std::size_t n) override;
  /// Always accepts: the shaper's delay queue is unbounded (back-pressure
  /// stays where it belongs — at the inner medium, surfaced when held
  /// datagrams are forwarded).
  bool try_send(ProcessId src, ProcessId dst, const std::uint8_t* data,
                std::size_t len) override;
  std::size_t try_send_many(ProcessId src, const FrameView* frames,
                            std::size_t count) override;
  /// One shaper tick per poll: forward due datagrams into the inner
  /// medium (EAGAIN re-queues for the next poll), then poll it.
  void poll(int timeout_ms, const RxFn& rx) override;
  [[nodiscard]] std::size_t in_medium() const override {
    return held_count_ + retry_.size() + inner_->in_medium();
  }
  [[nodiscard]] bool lossy() const override {
    return cfg_.can_lose() || inner_->lossy();
  }
  [[nodiscard]] TransportStats stats() const override {
    return inner_->stats();
  }
  [[nodiscard]] const char* name() const override { return name_.c_str(); }

  // --- partition windows ---

  /// Open a bidirectional partition: datagrams with exactly one endpoint
  /// in `blocked` (size n, nonzero = blocked side) are destroyed — both
  /// fresh sends and held datagrams coming due while the window is open.
  /// `until_tick` > 0 closes the window automatically at that shaper
  /// tick; 0 keeps it open until end_partition().
  void start_partition(const std::vector<char>& blocked,
                       std::uint64_t until_tick = 0);
  void end_partition() { partition_open_ = false; }
  [[nodiscard]] bool partition_open() const { return partition_open_; }

  /// Shaper clock: polls completed (the delay queue's tick unit).
  [[nodiscard]] std::uint64_t now() const { return tick_; }
  [[nodiscard]] const ShapeStats& shape_stats() const { return shape_stats_; }
  [[nodiscard]] Transport& inner() { return *inner_; }

 private:
  /// One delayed datagram; byte capacity is recycled through the free
  /// list, so the steady-state delay queue allocates nothing.
  struct Held {
    ProcessId src = kNoProcess;
    ProcessId dst = kNoProcess;
    std::vector<std::uint8_t> bytes;
    std::size_t len = 0;
  };
  /// Per-link shaping state: a private Rng stream plus the
  /// Gilbert–Elliott chain position.
  struct Link {
    Rng rng;
    bool bad = false;
    explicit Link(std::uint64_t seed) : rng(seed) {}
  };

  Link& link(ProcessId src, ProcessId dst);
  void shape(ProcessId src, ProcessId dst, const std::uint8_t* data,
             std::size_t len);
  void hold(ProcessId src, ProcessId dst, const std::uint8_t* data,
            std::size_t len, std::uint64_t delay);
  void forward(std::uint32_t slot);
  void release(std::uint32_t slot);
  [[nodiscard]] bool severed(ProcessId src, ProcessId dst) const {
    return partition_open_ && src < blocked_.size() &&
           dst < blocked_.size() && (blocked_[src] != blocked_[dst]);
  }

  std::unique_ptr<Transport> inner_;
  ShapeConfig cfg_;
  std::string name_;
  ShapeStats shape_stats_;
  TimerWheel wheel_;
  std::uint64_t tick_ = 0;
  std::vector<Held> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t held_count_ = 0;
  /// Due datagrams the inner medium refused (EAGAIN); retried FIFO at the
  /// start of the next poll, before new expiries.
  std::vector<std::uint32_t> retry_;
  std::vector<std::uint32_t> retry_scratch_;
  FlatMap64<std::uint32_t> link_index_;
  std::vector<Link> links_;
  bool partition_open_ = false;
  std::uint64_t partition_until_ = 0;  ///< 0 = manual close
  std::vector<char> blocked_;
};

}  // namespace fdp::net
