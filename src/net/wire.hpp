// Versioned wire format for the live socket runtime.
//
// One frame carries one Message between two actors. The layout is
// explicit little-endian with a length prefix, so a frame is
// self-delimiting: stream transports resynchronize on it, and a datagram
// may carry several frames back to back (the flush path coalesces frames
// that share a destination into one datagram; the receiver decodes in a
// loop):
//
//   offset  size  field
//        0     4  frame length L (bytes, including this prefix)
//        4     4  magic "FDP1"
//        8     2  wire version (kWireVersion)
//       10     1  verb (Verb)
//       11     1  pad (must be 0)
//       12     4  tag
//       16     8  token
//       24     8  seq        (sender-side send counter; diagnostics only)
//       32     4  src        (sender ProcessId)
//       36     4  dst        (receiver ProcessId)
//       40     4  ref count R (<= kMaxWireRefs)
//       44   13R  refs: R x { u32 id, u8 mode (ModeInfo), u64 key }
//
// Decoding NEVER aborts: a frame off the network is attacker-controlled
// input, so every malformed shape maps to a typed WireError the caller
// handles (count it, drop the frame) — FDP_CHECK is for programming
// errors, not for peers speaking garbage. Encoding of an overlong
// message (more references than kMaxWireRefs) is the one programming
// error, and is checked.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"

namespace fdp::net {

inline constexpr std::uint32_t kWireMagic = 0x31504446;  // "FDP1" LE
inline constexpr std::uint16_t kWireVersion = 1;
/// Per-frame reference cap. Far above any legal overlay degree in this
/// repo (the paper's messages carry one or two references; batch overlay
/// frames a handful) — the cap exists so a hostile length field cannot
/// make the decoder allocate unbounded memory.
inline constexpr std::uint32_t kMaxWireRefs = 4096;
inline constexpr std::size_t kFrameHeaderBytes = 44;
inline constexpr std::size_t kRefBytes = 13;

/// Largest frame encode_frame can produce / decode_frame will accept.
[[nodiscard]] constexpr std::size_t max_frame_bytes() {
  return kFrameHeaderBytes + kRefBytes * static_cast<std::size_t>(kMaxWireRefs);
}

/// Typed decode failures (ISSUE 7: reject malformed frames with a typed
/// error rather than FDP_CHECK aborts).
enum class WireError : std::uint8_t {
  None,
  Truncated,     ///< buffer shorter than the length prefix / header
  Overlong,      ///< length prefix exceeds the buffer or max_frame_bytes()
  BadMagic,      ///< not an FDP frame
  BadVersion,    ///< version this build does not speak
  BadVerb,       ///< verb byte outside the Verb enum
  BadPad,        ///< pad byte not zero
  BadMode,       ///< ref mode byte outside the ModeInfo enum
  BadRefCount,   ///< ref count > kMaxWireRefs
  LengthMismatch,///< length prefix disagrees with 44 + 13R
  BadTag         ///< overlay tag exceeds kMaxTag (29 bits)
};

[[nodiscard]] const char* to_string(WireError e);

/// Exact encoded size of `m` as a frame.
[[nodiscard]] std::size_t encoded_size(const Message& m);

/// Append the frame for `m` (from `src` to `dst`) to `out`. Aborts (the
/// only wire-layer FDP_CHECK) if m.refs exceeds kMaxWireRefs — a protocol
/// bug, not peer input.
void encode_frame(const Message& m, ProcessId src, ProcessId dst,
                  std::vector<std::uint8_t>& out);

/// Encode into caller-owned storage (a FrameArena slot, a stack buffer):
/// writes exactly encoded_size(m) bytes at `out` and returns that count.
/// Aborts if `cap` cannot hold the frame or m.refs exceeds kMaxWireRefs —
/// both are programming errors on the sending side, never peer input.
std::size_t encode_frame(const Message& m, ProcessId src, ProcessId dst,
                         std::uint8_t* out, std::size_t cap);

struct DecodedFrame {
  Message msg;
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
};

/// Decode one frame from data[0..len). On success fills `out`, sets
/// `consumed` to the frame length and returns WireError::None. `out` may
/// be reused across calls: out.msg.refs keeps its spill capacity (the
/// decoder clears, never reconstructs), so a warm decode allocates only
/// when a frame carries more references than any previous one. On failure
/// returns the error; `consumed` is then the number of bytes that can be
/// safely skipped (the claimed frame length when it is trustworthy, else
/// `len` — stream callers resynchronize, datagram callers drop).
[[nodiscard]] WireError decode_frame(const std::uint8_t* data,
                                     std::size_t len, DecodedFrame& out,
                                     std::size_t* consumed = nullptr);

}  // namespace fdp::net
