#include "net/runtime.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <span>

#include "core/potential.hpp"
#include "net/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FDP_NET_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace fdp::net {

namespace {

// Timer-wheel payload packing: bit 63 selects the kind. Timeouts carry an
// actor id; retransmits carry (dst, seq) in 23 + 40 bits — seqs are a
// per-run send counter, so 2^40 admitted messages is out of reach, and
// the actor cap is checked at start().
constexpr std::uint64_t kRetransmitBit = std::uint64_t{1} << 63;
constexpr std::uint64_t kSeqBits = 40;
constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kSeqBits) - 1;
constexpr std::uint64_t kDstBits = 23;

std::uint64_t pack_retransmit(ProcessId dst, std::uint64_t seq) {
  FDP_DCHECK(seq <= kSeqMask);
  FDP_DCHECK(dst < (std::uint32_t{1} << kDstBits));
  return kRetransmitBit | (static_cast<std::uint64_t>(dst) << kSeqBits) |
         seq;
}

}  // namespace

NetRuntime::NetRuntime(std::unique_ptr<Transport> transport, Config cfg)
    : transport_(std::move(transport)),
      cfg_(cfg),
      rng_(cfg.seed) {
  FDP_CHECK_MSG(transport_ != nullptr, "NetRuntime needs a transport");
  FDP_CHECK_MSG(cfg_.send_batch > 0, "send_batch must be positive");
  name_ = std::string("net/") + transport_->name();
}

NetRuntime::~NetRuntime() {
#ifdef FDP_NET_HAVE_SOCKETS
  if (monitor_fd_ >= 0) ::close(monitor_fd_);
#endif
}

void NetRuntime::force_life(ProcessId id, LifeState s) {
  FDP_CHECK(id < actors_.size());
  set_process_life(*actors_[id].proc, s);
  // Scenario construction / tests mutate life (and stores) behind the
  // action stream's back; rebuild the edge index at the next query.
  edges_synced_ = false;
}

void NetRuntime::start() {
  FDP_CHECK_MSG(!started_, "start() called twice");
  FDP_CHECK_MSG(actors_.size() < (std::uint32_t{1} << kDstBits),
                "actor count exceeds the retransmit-payload id width");
  started_ = true;
  transport_lossy_ = transport_->lossy();
  pending_.resize(actors_.size());
  transport_->open(actors_.size());
  rx_fn_ = [this](ProcessId dst, const std::uint8_t* data,
                  std::size_t len) { on_frame(dst, data, len); };
  for (ProcessId id = 0; id < actors_.size(); ++id)
    if (actors_[id].proc->life() == LifeState::Awake) arm_timeout(id);
  if (cfg_.monitor) open_monitor();
}

// --- the in-flight ledger ---

NetRuntime::LedgerEntry& NetRuntime::Ledger::emplace(std::uint64_t seq) {
  std::uint32_t slot;
  if (!free.empty()) {
    slot = free.back();
    free.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots.size());
    slots.emplace_back();
    pos.push_back(0);
  }
  const bool fresh = index.emplace(seq, slot);
  FDP_CHECK_MSG(fresh, "duplicate seq admitted to the ledger");
  pos[slot] = static_cast<std::uint32_t>(order.size());
  order.push_back(slot);
  return slots[slot];
}

NetRuntime::LedgerEntry* NetRuntime::Ledger::find(std::uint64_t seq) {
  const std::uint32_t* s = index.find(seq);
  return s == nullptr ? nullptr : &slots[*s];
}

const NetRuntime::LedgerEntry* NetRuntime::Ledger::find(
    std::uint64_t seq) const {
  const std::uint32_t* s = index.find(seq);
  return s == nullptr ? nullptr : &slots[*s];
}

void NetRuntime::Ledger::erase(std::uint64_t seq, MessagePool& pool) {
  const std::uint32_t* sp = index.find(seq);
  FDP_CHECK_MSG(sp != nullptr, "erasing a seq the ledger does not hold");
  const std::uint32_t slot = *sp;
  index.erase(seq);
  const std::uint32_t at = pos[slot];
  const std::uint32_t last = order.back();
  order[at] = last;
  pos[last] = at;
  order.pop_back();
  // Harvest the message's spill buffer (if any); the slot itself stays
  // allocated for the next emplace.
  pool.recycle(slots[slot].msg);
  free.push_back(slot);
}

// --- admission / injection ---

const Message& NetRuntime::admit_send(ProcessId src, Ref to, Message&& m) {
  FDP_CHECK(to.valid() && to.id() < actors_.size());
  const ProcessId dst = to.id();
  m.seq = next_seq_++;
  m.stamp_enqueued(events_);
  ++sends_;
  Actor& a = actors_[src];
  OutEntry& oe = a.outbox.push_slot();
  oe.dst = dst;
  oe.seq = m.seq;
  bump_out_count(a, dst);
  mark_outbox_dirty(src);
  LedgerEntry& e = pending_[dst].emplace(m.seq);
  e.msg = std::move(m);
  e.src = src;
  e.where = Where::Queued;
  e.attempts = 0;
  // The admitted copy enters dst's channel; index its carried refs (a
  // gone destination's channel is not part of the edge set).
  if (edges_synced_ && !gone(dst)) add_message_refs(dst, e.msg);
  return e.msg;
}

void NetRuntime::inject(Ref to, Message m) {
  FDP_CHECK_MSG(started_, "inject before start()");
  FDP_CHECK(to.valid() && to.id() < actors_.size());
  // Injection is local client admission (a workload generator or scenario
  // builder handing a request to its access node), not peer traffic: the
  // message enters the ledger and the destination inbox directly, without
  // a wire hop — there is no source actor whose outbox could carry it.
  const ProcessId dst = to.id();
  m.seq = next_seq_++;
  m.stamp_enqueued(events_);
  LedgerEntry& e = pending_[dst].emplace(m.seq);
  e.msg = std::move(m);
  e.src = kNoProcess;
  e.where = Where::Arrived;
  e.attempts = 0;
  if (edges_synced_ && !gone(dst)) add_message_refs(dst, e.msg);
  Actor& a = actors_[dst];
  InEntry& in = a.inbox.push_slot();
  in.seq = e.msg.seq;
  in.msg.set_verb(e.msg.verb());
  in.msg.set_tag(e.msg.tag());
  in.msg.token = e.msg.token;
  in.msg.seq = e.msg.seq;
  in.msg.stamp_enqueued(e.msg.enqueued_lo());
  pool_.assign_refs(in.msg.refs, std::span<const RefInfo>(
                                     e.msg.refs.data(), e.msg.refs.size()));
  mark_inbox_ready(dst);
  for (Observer* o : observers_) o->on_inject(*this, dst, e.msg);
}

void NetRuntime::each_pending(
    ProcessId id, const std::function<void(const Message&)>& fn) const {
  FDP_CHECK(id < pending_.size());
  const Ledger& l = pending_[id];
  for (const std::uint32_t slot : l.order) fn(l.slots[slot].msg);
}

// --- dirty/ready bookkeeping ---

void NetRuntime::mark_outbox_dirty(ProcessId src) {
  Actor& a = actors_[src];
  if (a.outbox_dirty) return;
  a.outbox_dirty = true;
  dirty_outboxes_.push_back(src);
}

void NetRuntime::mark_inbox_ready(ProcessId dst) {
  Actor& a = actors_[dst];
  if (a.inbox_ready) return;
  a.inbox_ready = true;
  ready_inboxes_.push_back(dst);
}

void NetRuntime::bump_out_count(Actor& a, ProcessId dst) {
  const std::uint64_t key = static_cast<std::uint64_t>(dst) + 1;
  std::uint32_t* c = a.out_counts.find_mut(key);
  if (c == nullptr) {
    a.out_counts.emplace(key, 1);
    if (cfg_.outbox_high_water <= 1) ++a.over_high_water;
    return;
  }
  if (++*c == cfg_.outbox_high_water) ++a.over_high_water;
}

void NetRuntime::drop_out_count(Actor& a, ProcessId dst) {
  const std::uint64_t key = static_cast<std::uint64_t>(dst) + 1;
  std::uint32_t* c = a.out_counts.find_mut(key);
  FDP_DCHECK(c != nullptr && *c > 0);
  if (*c == cfg_.outbox_high_water) {
    FDP_DCHECK(a.over_high_water > 0);
    --a.over_high_water;
  }
  if (--*c == 0) a.out_counts.erase(key);
}

// --- pump phases ---

void NetRuntime::flush_outboxes() {
  if (dirty_outboxes_.empty()) return;
  flush_scratch_.clear();
  flush_scratch_.swap(dirty_outboxes_);
  for (const ProcessId src : flush_scratch_) {
    // A gone actor's outbox keeps flushing: the references in those frames
    // were sent before the exit and must still travel.
    actors_[src].outbox_dirty = false;
    if (!flush_one(src)) mark_outbox_dirty(src);  // EAGAIN: retry next pump
  }
}

bool NetRuntime::flush_one(ProcessId src) {
  Actor& a = actors_[src];
  for (;;) {
    // Drop moot front entries: the seq was delivered (a late original
    // outran its retransmit) or re-queued elsewhere — the ledger state,
    // not the outbox, is the source of truth for what still travels.
    while (!a.outbox.empty()) {
      const OutEntry oe = a.outbox.front();
      const LedgerEntry* e = pending_[oe.dst].find(oe.seq);
      if (e != nullptr && e->where == Where::Queued) break;
      drop_out_count(a, oe.dst);
      a.outbox.pop_front();
    }
    if (a.outbox.empty()) return true;

    // Stage a batch of consecutive live frames, packing frames that share
    // a destination into one datagram (the wire format is self-delimiting;
    // the receiver decodes in a loop). Syscall entry is cheap next to the
    // kernel's per-datagram stack traversal, so coalescing — not sendmmsg
    // alone — is what divides the per-frame wire cost.
    constexpr std::uint32_t kNoGroup = ~std::uint32_t{0};
    stage_views_.clear();
    stage_entries_.clear();
    stage_group_of_.clear();
    const std::size_t limit = std::min(a.outbox.size(), cfg_.send_batch);
    for (std::size_t i = 0; i < limit; ++i) {
      const OutEntry& oe = a.outbox.at(i);
      const LedgerEntry* e = pending_[oe.dst].find(oe.seq);
      if (e == nullptr || e->where != Where::Queued)
        break;  // moot mid-batch: send what is staged, re-scan after
      const std::size_t sz = encoded_size(e->msg);
      std::uint32_t g = kNoGroup;
      if (cfg_.coalesce_frames) {
        for (std::uint32_t j = 0; j < stage_views_.size(); ++j)
          if (stage_views_[j].dst == oe.dst &&
              stage_bufs_[j].len + sz <= stage_bufs_[j].cap) {
            g = j;
            break;
          }
      }
      if (g == kNoGroup) {
        g = static_cast<std::uint32_t>(stage_views_.size());
        const FrameArena::Buf b = arena_.acquire(sz);  // cap is a full slot
        stage_bufs_.push_back(b);
        stage_views_.push_back(FrameView{oe.dst, b.data, 0});
      }
      FrameArena::Buf& b = stage_bufs_[g];
      b.len += static_cast<std::uint32_t>(
          encode_frame(e->msg, src, oe.dst, b.data + b.len, b.cap - b.len));
      stage_views_[g].len = b.len;
      stage_entries_.push_back(oe);
      stage_group_of_.push_back(g);
    }

    const std::size_t groups = stage_views_.size();
    const std::size_t accepted =
        groups == 0 ? 0
                    : transport_->try_send_many(src, stage_views_.data(),
                                                groups);
    // Pop every staged frame: members of accepted datagrams become Sent,
    // the rest return to the tail still Queued (their out_counts are
    // untouched — they never left the queue, logically). The re-push can
    // reorder frames across destinations; the medium is unordered anyway
    // and the ledger tracks every seq independently.
    for (std::size_t i = 0; i < stage_entries_.size(); ++i) {
      const OutEntry oe = a.outbox.front();
      a.outbox.pop_front();
      FDP_DCHECK(oe.dst == stage_entries_[i].dst &&
                 oe.seq == stage_entries_[i].seq);
      if (stage_group_of_[i] >= accepted) {
        a.outbox.push_back(oe);
        continue;
      }
      drop_out_count(a, oe.dst);
      LedgerEntry* e = pending_[oe.dst].find(oe.seq);
      FDP_DCHECK(e != nullptr && e->where == Where::Queued);
      e->where = Where::Sent;
      if (e->attempts < 255) ++e->attempts;
      if (transport_lossy_ && cfg_.retransmit_ticks != 0)
        arm_retransmit(oe.dst, *e, oe.seq);
    }
    for (const FrameArena::Buf& b : stage_bufs_) arena_.release(b);
    stage_bufs_.clear();
    if (accepted < groups) return false;  // medium full: retry next pump
  }
}

void NetRuntime::on_frame(ProcessId dst, const std::uint8_t* data,
                          std::size_t len) {
  // One datagram carries one or more self-delimiting frames (the sender
  // coalesces frames that share a destination); decode them all. A bad
  // frame is skipped by its claimed length when that is trustworthy,
  // else the rest of the datagram is dropped — per-frame accounting
  // either way.
  std::size_t off = 0;
  while (off < len) {
    std::size_t consumed = len - off;
    const WireError err =
        decode_frame(data + off, len - off, rx_frame_, &consumed);
    if (err != WireError::None) {
      ++wire_errors_;
      if (consumed == 0) break;
      off += consumed;
      continue;
    }
    off += consumed;
    handle_frame(dst);
  }
}

void NetRuntime::handle_frame(ProcessId dst) {
  if (rx_frame_.dst != dst || dst >= actors_.size()) {
    ++wire_errors_;  // well-formed but misrouted
    return;
  }
  LedgerEntry* e = pending_[dst].find(rx_frame_.msg.seq);
  if (e == nullptr || e->where == Where::Arrived) {
    // Duplicate datagram or retransmit echo of a seq already in an inbox
    // (or already delivered) — arrivals are idempotent, drop it.
    ++stale_frames_;
    return;
  }
  e->where = Where::Arrived;
  // Deliver the message as decoded off the wire (the honest end-to-end
  // path); the ledger entry is only accounting from here on.
  Actor& a = actors_[dst];
  InEntry& in = a.inbox.push_slot();
  in.seq = rx_frame_.msg.seq;
  in.msg.set_verb(rx_frame_.msg.verb());
  in.msg.set_tag(rx_frame_.msg.tag());
  in.msg.token = rx_frame_.msg.token;
  in.msg.seq = rx_frame_.msg.seq;
  // not carried on the wire; restamp from the ledger copy
  in.msg.stamp_enqueued(e->msg.enqueued_lo());
  pool_.assign_refs(in.msg.refs,
                    std::span<const RefInfo>(rx_frame_.msg.refs.data(),
                                             rx_frame_.msg.refs.size()));
  mark_inbox_ready(dst);
}

std::size_t NetRuntime::deliver_ready() {
  std::size_t executed = 0;
  // Deliveries never add inbox entries (sends go to outboxes and cross the
  // medium first; inject is not callable from handlers), so the ready list
  // is stable while it drains.
  for (const ProcessId id : ready_inboxes_) {
    Actor& a = actors_[id];
    a.inbox_ready = false;
    // Messages for gone actors stay queued (and in the ledger) — the
    // simulator's "messages to gone processes are never delivered".
    while (!a.inbox.empty() && a.proc->life() != LifeState::Gone) {
      InEntry& in = a.inbox.front();
      if (edges_synced_) {
        const LedgerEntry* le = pending_[id].find(in.seq);
        FDP_DCHECK(le != nullptr);
        remove_message_refs(id, le->msg);
      }
      pending_[id].erase(in.seq, pool_);
      execute(id, ActionKind::Deliver, &in.msg);
      a.inbox.pop_front();
      ++executed;
    }
  }
  ready_inboxes_.clear();
  return executed;
}

// --- timers ---

void NetRuntime::arm_timeout(ProcessId id) {
  Actor& a = actors_[id];
  if (a.timer_armed) return;
  a.timer_armed = true;
  // Geometric(1/2) gap: the wheel-driven twin of the old per-pump coin
  // flip. Real timers drift; modeling that jitter matters for correctness,
  // not just realism — firing EVERY actor EVERY cycle is a synchronous
  // schedule, and self-stabilizing maintenance (e.g. linearization's
  // delegate-and-reintroduce) can phase-lock into a limit cycle under
  // lockstep rounds that any jittered/fair schedule escapes almost surely.
  // The gap is capped at 32 ticks: the geometric tail beyond that has
  // probability 2^-32 (unobservable), and a bounded gap keeps every
  // timeout in a bounded band of wheel slots, so slot capacities reach
  // their high water during warm-up and the pump stays allocation-free.
  const std::uint64_t gap = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(std::countr_zero(rng_())) + 1, 32);
  wheel_.schedule(ticks_ + gap, static_cast<std::uint64_t>(id));
}

void NetRuntime::arm_retransmit(ProcessId dst, const LedgerEntry& e,
                                std::uint64_t seq) {
  // Exponential backoff per attempt, capped at 64x the base delay.
  const std::uint32_t shift =
      std::min<std::uint32_t>(e.attempts > 0 ? e.attempts - 1 : 0, 6);
  const std::uint64_t delay =
      static_cast<std::uint64_t>(cfg_.retransmit_ticks) << shift;
  wheel_.schedule(ticks_ + delay, pack_retransmit(dst, seq));
}

void NetRuntime::fire_timer(std::uint64_t payload) {
  if ((payload & kRetransmitBit) == 0) {
    const ProcessId id = static_cast<ProcessId>(payload);
    Actor& a = actors_[id];
    a.timer_armed = false;
    // Asleep/gone actors do not time out; waking re-arms (execute()).
    if (a.proc->life() != LifeState::Awake) return;
    if (throttled(a)) {
      // Back-pressure: defer rather than drop — slow the producer until
      // the congested peer queue drains.
      ++throttle_skips_;
      a.timer_armed = true;
      wheel_.schedule(ticks_ + cfg_.throttle_backoff_ticks, payload);
      return;
    }
    execute(id, ActionKind::Timeout, nullptr);
    ++executed_this_pump_;
    if (a.proc->life() == LifeState::Awake) arm_timeout(id);
    return;
  }
  const ProcessId dst =
      static_cast<ProcessId>((payload >> kSeqBits) & ~(~std::uint64_t{0}
                                                       << kDstBits));
  const std::uint64_t seq = payload & kSeqMask;
  LedgerEntry* e = pending_[dst].find(seq);
  // Arrived (or delivered and erased): the frame made it, nothing to do.
  // Queued: a flush already owns it. Only a frame still marked in-medium
  // is presumed lost and re-queued at its source.
  if (e == nullptr || e->where != Where::Sent) return;
  if (cfg_.retransmit_max_attempts != 0 &&
      e->attempts >= cfg_.retransmit_max_attempts) {
    // Ceiling exhausted: stop retransmitting, keep the ledger entry (its
    // references may never be destroyed — the oracle keeps reporting
    // them in flight and the affected exit stalls, visibly). See
    // NetConfig::retransmit_max_attempts for why this is a counted
    // liveness signal rather than silent infinite retry.
    ++retransmit_gave_up_;
    if (e->src != kNoProcess) ++actors_[e->src].retransmit_gave_up;
    return;
  }
  e->where = Where::Queued;
  ++retransmits_;
  FDP_DCHECK(e->src != kNoProcess);
  Actor& a = actors_[e->src];
  OutEntry& oe = a.outbox.push_slot();
  oe.dst = dst;
  oe.seq = seq;
  bump_out_count(a, dst);
  mark_outbox_dirty(e->src);
}

// --- the pump ---

std::size_t NetRuntime::pump(int timeout_ms) {
  FDP_CHECK_MSG(started_, "pump before start()");
  ++ticks_;
  executed_this_pump_ = 0;
  flush_outboxes();
  transport_->poll(timeout_ms, rx_fn_);
  executed_this_pump_ += deliver_ready();
  wheel_.advance(ticks_,
                 [this](std::uint64_t payload) { fire_timer(payload); });
  if (monitor_fd_ >= 0) serve_monitor();
  return executed_this_pump_;
}

bool NetRuntime::run_until(
    const std::function<bool(const NetRuntime&)>& done,
    std::uint64_t max_pumps, int timeout_ms) {
  for (std::uint64_t i = 0; i < max_pumps; ++i) {
    if (done(*this)) return true;
    pump(timeout_ms);
  }
  return done(*this);
}

// --- action execution (mirrors World::execute) ---

void NetRuntime::execute(ProcessId actor, ActionKind kind,
                         const Message* consumed) {
  Process& p = *actors_[actor].proc;
  const bool want_record = !observers_.empty();

  if (want_record) {
    // rec_ is reused across actions: clearing keeps the vectors' capacity
    // so steady-state recording stays off the allocator too.
    rec_.sent.clear();
    rec_.refs_before.clear();
    rec_.refs_after.clear();
    rec_.consumed.reset();
    rec_.exited = rec_.slept = rec_.woke = false;
    rec_.actor = actor;
    rec_.step = events_;
    p.collect_refs(rec_.refs_before);
  }

  sends_scratch_.clear();
  Context ctx(this, p.self(), events_, &rng_, &sends_scratch_,
              &proc_ref_scratch_);

  if (kind == ActionKind::Timeout) {
    FDP_CHECK(p.life() == LifeState::Awake);
    ++timeouts_;
    if (want_record) rec_.kind = ActionRecord::Kind::Timeout;
    p.on_timeout(ctx);
  } else {
    ++deliveries_;
    const bool woke = p.life() == LifeState::Asleep;
    if (woke) {
      set_process_life(p, LifeState::Awake);
      ++wakes_;
      arm_timeout(actor);
    }
    if (want_record) {
      rec_.kind = ActionRecord::Kind::Deliver;
      rec_.woke = woke;
      rec_.consumed = *consumed;
    }
    p.on_message(ctx, *consumed);
  }

  for (auto& [to, msg] : sends_scratch_) {
    // The admitted copy (with seq assigned) lives in the ledger.
    const Message& stored = admit_send(actor, to, std::move(msg));
    if (want_record) rec_.sent.emplace_back(to, stored);
  }

  // Stored-ref diff for the actor — before any exit deregisters it, so
  // deregister_gone_actor sees the index matching the new refs.
  if (edges_synced_) apply_store_diff(actor);

  if (want_record) p.collect_refs(rec_.refs_after);

  if (ctx.exit_requested_) {
    FDP_CHECK_MSG(!ctx.sleep_requested_, "action requested exit AND sleep");
    set_process_life(p, LifeState::Gone);
    ++exits_;
    if (edges_synced_) deregister_gone_actor(actor);
    if (want_record) rec_.exited = true;
  } else if (ctx.sleep_requested_) {
    set_process_life(p, LifeState::Asleep);
    ++sleeps_;
    if (want_record) rec_.slept = true;
  }

  ++events_;

  if (want_record)
    for (Observer* obs : observers_) obs->on_action(*this, rec_);
}

// --- oracle + support queries (the "omniscient service" scans) ---

bool NetRuntime::oracle_query(ProcessId caller) const {
  FDP_CHECK_MSG(oracle_ != nullptr, "oracle consulted but none installed");
  return oracle_(*this, caller);
}

std::uint64_t NetRuntime::quiet_count() const {
  std::uint64_t n = 0;
  for (ProcessId id = 0; id < actors_.size(); ++id)
    if (actors_[id].proc->life() == LifeState::Asleep &&
        pending_[id].order.empty())
      ++n;
  return n;
}

// --- the fault surface (live twins of World's; see net/net_faults.hpp) ---

std::uint64_t NetRuntime::awake_count() const {
  std::uint64_t n = 0;
  for (const Actor& a : actors_)
    if (a.proc->life() == LifeState::Awake) ++n;
  return n;
}

ProcessId NetRuntime::kth_awake(std::uint64_t k) const {
  for (ProcessId id = 0; id < actors_.size(); ++id) {
    if (actors_[id].proc->life() != LifeState::Awake) continue;
    if (k == 0) return id;
    --k;
  }
  FDP_CHECK_MSG(false, "kth_awake(k) with k >= awake_count()");
  return kNoProcess;
}

std::uint64_t NetRuntime::live_message_count() const {
  std::uint64_t n = 0;
  for (ProcessId id = 0; id < actors_.size(); ++id)
    if (!gone(id)) n += pending_[id].order.size();
  return n;
}

std::pair<ProcessId, std::uint64_t> NetRuntime::kth_live_message(
    std::uint64_t k) const {
  for (ProcessId id = 0; id < actors_.size(); ++id) {
    if (gone(id)) continue;
    const Ledger& l = pending_[id];
    if (k < l.order.size())
      return {id, l.slots[l.order[k]].msg.seq};
    k -= l.order.size();
  }
  FDP_CHECK_MSG(false, "kth_live_message(k) with k >= live_message_count()");
  return {kNoProcess, 0};
}

bool NetRuntime::duplicate_message(ProcessId id, std::uint64_t seq) {
  FDP_CHECK_MSG(started_, "duplicate_message before start()");
  FDP_CHECK(id < actors_.size());
  const LedgerEntry* src_e = pending_[id].find(seq);
  if (src_e == nullptr) return false;
  // Copy everything out of the source entry first: emplacing the copy may
  // grow the same ledger's slot arena and invalidate src_e.
  Message copy;
  copy.set_verb(src_e->msg.verb());
  copy.set_tag(src_e->msg.tag());
  copy.token = src_e->msg.token;
  pool_.assign_refs(copy.refs, std::span<const RefInfo>(
                                   src_e->msg.refs.data(),
                                   src_e->msg.refs.size()));
  copy.seq = next_seq_++;
  copy.stamp_enqueued(events_);
  LedgerEntry& e = pending_[id].emplace(copy.seq);
  e.msg = std::move(copy);
  e.src = kNoProcess;
  e.where = Where::Arrived;
  e.attempts = 0;
  if (edges_synced_ && !gone(id)) add_message_refs(id, e.msg);
  Actor& a = actors_[id];
  InEntry& in = a.inbox.push_slot();
  in.seq = e.msg.seq;
  in.msg.set_verb(e.msg.verb());
  in.msg.set_tag(e.msg.tag());
  in.msg.token = e.msg.token;
  in.msg.seq = e.msg.seq;
  in.msg.stamp_enqueued(e.msg.enqueued_lo());
  pool_.assign_refs(in.msg.refs, std::span<const RefInfo>(
                                     e.msg.refs.data(), e.msg.refs.size()));
  mark_inbox_ready(id);
  for (Observer* o : observers_) o->on_inject(*this, id, e.msg);
  return true;
}

void NetRuntime::note_store_mutation(ProcessId id) {
  FDP_CHECK(id < actors_.size());
  // Only relevant once the index exists; an unsynced index rebuilds from
  // the stores (including this mutation) at the next oracle query.
  if (edges_synced_) apply_store_diff(id);
}

// --- the reference-edge instance index ---

namespace {

void counts_add(NetRuntime::EdgeCounts& v, ProcessId peer) {
  for (auto& [q, cnt] : v) {
    if (q == peer) {
      ++cnt;
      return;
    }
  }
  v.emplace_back(peer, 1);
}

void counts_remove(NetRuntime::EdgeCounts& v, ProcessId peer) {
  for (auto& e : v) {
    if (e.first == peer) {
      if (--e.second == 0) {
        e = v.back();
        v.pop_back();
      }
      return;
    }
  }
  FDP_DCHECK(false);
}

}  // namespace

void NetRuntime::add_edge_instance(ProcessId holder, ProcessId target) const {
  if (target >= actors_.size()) return;  // out-of-system ref: no edge
  counts_add(ref_out_[holder], target);
  counts_add(ref_in_[target], holder);
}

void NetRuntime::remove_edge_instance(ProcessId holder,
                                      ProcessId target) const {
  if (target >= actors_.size()) return;
  counts_remove(ref_out_[holder], target);
  counts_remove(ref_in_[target], holder);
}

void NetRuntime::add_message_refs(ProcessId holder, const Message& m) const {
  for (const RefInfo& r : m.refs) add_edge_instance(holder, r.ref.id());
}

void NetRuntime::remove_message_refs(ProcessId holder,
                                     const Message& m) const {
  for (const RefInfo& r : m.refs) remove_edge_instance(holder, r.ref.id());
}

void NetRuntime::ensure_edge_index() const {
  if (edges_synced_) return;
  if (ref_out_.size() < actors_.size()) {
    ref_out_.resize(actors_.size());
    ref_in_.resize(actors_.size());
    ref_cache_.resize(actors_.size());
  }
  // Clear row by row: assign() would free every row's capacity and turn
  // each rebuild into O(n) fresh allocations.
  for (ProcessId p = 0; p < actors_.size(); ++p) {
    ref_out_[p].clear();
    ref_in_[p].clear();
    ref_cache_[p].clear();
    actors_[p].proc->collect_refs(ref_cache_[p]);
  }
  for (ProcessId p = 0; p < actors_.size(); ++p) {
    if (gone(p)) continue;
    for (const RefInfo& r : ref_cache_[p]) add_edge_instance(p, r.ref.id());
    if (p < pending_.size()) {
      const Ledger& l = pending_[p];
      for (const std::uint32_t slot : l.order)
        add_message_refs(p, l.slots[slot].msg);
    }
  }
  edges_synced_ = true;
}

void NetRuntime::apply_store_diff(ProcessId actor) {
  refs_scratch_.clear();
  actors_[actor].proc->collect_refs(refs_scratch_);
  std::vector<RefInfo>& before = ref_cache_[actor];
  if (refs_scratch_ != before) {
    // Minimal multiset diff on target ids (mirrors World::step): a
    // mode/key-only change costs no index update and a single inserted
    // ref touches one counter, not the whole row.
    diff_matched_.assign(before.size(), 0);
    for (const RefInfo& r : refs_scratch_) {
      bool matched = false;
      for (std::size_t i = 0; i < before.size(); ++i) {
        if (!diff_matched_[i] && before[i].ref.id() == r.ref.id()) {
          diff_matched_[i] = 1;
          matched = true;
          break;
        }
      }
      if (!matched) add_edge_instance(actor, r.ref.id());
    }
    for (std::size_t i = 0; i < before.size(); ++i)
      if (!diff_matched_[i])
        remove_edge_instance(actor, before[i].ref.id());
    before.swap(refs_scratch_);
  }
}

void NetRuntime::deregister_gone_actor(ProcessId p) const {
  // A gone actor's store and channel leave the edge set: its messages can
  // never be delivered and its instances can never propagate again.
  for (const RefInfo& r : ref_cache_[p]) remove_edge_instance(p, r.ref.id());
  const Ledger& l = pending_[p];
  for (const std::uint32_t slot : l.order)
    remove_message_refs(p, l.slots[slot].msg);
}

std::size_t NetRuntime::incident_nongone(ProcessId p) const {
  FDP_CHECK(p < actors_.size());
  if (gone(p)) return 0;
  ensure_edge_index();
  const EdgeCounts& out = ref_out_[p];
  std::size_t count = 0;
  for (const auto& [t, cnt] : out) {
    (void)cnt;
    if (t != p && !gone(t)) ++count;
  }
  for (const auto& [q, cnt] : ref_in_[p]) {
    (void)cnt;
    if (q == p || gone(q)) continue;
    bool also_out = false;
    for (const auto& [t, c] : out) {
      (void)c;
      if (t == q) {
        also_out = true;
        break;
      }
    }
    if (!also_out) ++count;
  }
  return count;
}

bool NetRuntime::referenced_by_other(ProcessId p) const {
  FDP_CHECK(p < actors_.size());
  ensure_edge_index();
  for (const auto& [q, cnt] : ref_in_[p]) {
    (void)cnt;
    if (q != p && !gone(q)) return true;
  }
  return false;
}

std::uint64_t NetRuntime::in_flight() const {
  std::uint64_t n = 0;
  for (const Ledger& l : pending_) n += l.order.size();
  return n;
}

// --- monitor socket ---

const std::string& NetRuntime::monitor_json() const {
  // Built at most once per pump tick, into a buffer reused across calls:
  // a monitor poll storm costs one serialization, not one per connection.
  if (monitor_built_tick_ == ticks_) return monitor_buf_;
  monitor_built_tick_ = ticks_;
  std::string& j = monitor_buf_;
  j.clear();
  j += "{\"substrate\":\"";
  j += name_;
  j += "\",\"clock\":";
  j += std::to_string(events_);
  j += ",\"phi\":";
  j += std::to_string(phi(*this));
  j += ",\"in_flight\":";
  j += std::to_string(in_flight());
  j += ",\"wire_errors\":";
  j += std::to_string(wire_errors_);
  j += ",\"stale_frames\":";
  j += std::to_string(stale_frames_);
  j += ",\"throttle_skips\":";
  j += std::to_string(throttle_skips_);
  j += ",\"retransmits\":";
  j += std::to_string(retransmits_);
  j += ",\"retransmit_gave_up\":";
  j += std::to_string(retransmit_gave_up_);
  j += ",\"exits\":";
  j += std::to_string(exits_);
  j += ",\"processes\":[";
  // Cap the per-process listing so serving a monitor poll stays O(cap)
  // however large the run is; the tail count is reported instead.
  const std::size_t shown =
      cfg_.monitor_max_processes == 0
          ? actors_.size()
          : std::min(actors_.size(), cfg_.monitor_max_processes);
  for (ProcessId id = 0; id < shown; ++id) {
    const Process& p = *actors_[id].proc;
    if (id != 0) j += ',';
    j += "{\"id\":";
    j += std::to_string(id);
    j += ",\"key\":";
    j += std::to_string(p.key());
    j += ",\"mode\":\"";
    j += p.mode() == Mode::Leaving ? "leaving" : "staying";
    j += "\",\"life\":\"";
    switch (p.life()) {
      case LifeState::Awake: j += "awake"; break;
      case LifeState::Asleep: j += "asleep"; break;
      case LifeState::Gone: j += "gone"; break;
    }
    refs_scratch_.clear();
    p.collect_refs(refs_scratch_);
    j += "\",\"stored\":";
    j += std::to_string(refs_scratch_.size());
    j += ",\"channel\":";
    j += std::to_string(pending_[id].order.size());
    if (actors_[id].retransmit_gave_up > 0) {
      j += ",\"gave_up\":";
      j += std::to_string(actors_[id].retransmit_gave_up);
    }
    j += '}';
  }
  j += ']';
  if (shown < actors_.size()) {
    j += ",\"omitted\":";
    j += std::to_string(actors_.size() - shown);
  }
  j += "}\n";
  return j;
}

#ifdef FDP_NET_HAVE_SOCKETS

void NetRuntime::open_monitor() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  FDP_CHECK_MSG(fd >= 0, "monitor socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  FDP_CHECK_MSG(
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0,
      "monitor bind(127.0.0.1:0) failed");
  FDP_CHECK(::listen(fd, 8) == 0);
  socklen_t alen = sizeof addr;
  FDP_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen) == 0);
  monitor_port_ = ntohs(addr.sin_port);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FDP_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
  monitor_fd_ = fd;
}

void NetRuntime::serve_monitor() {
  for (;;) {
    const int conn = ::accept(monitor_fd_, nullptr, nullptr);
    if (conn < 0) return;  // EAGAIN: no one waiting
    // The accepted socket is blocking (accept does not inherit O_NONBLOCK
    // on Linux), and the document is small, so a plain send loop is fine.
    // MSG_NOSIGNAL: a client that hangs up mid-read must surface as EPIPE,
    // not kill the runtime with SIGPIPE.
    const std::string& doc = monitor_json();
    std::size_t off = 0;
    while (off < doc.size()) {
      const ssize_t w = ::send(conn, doc.data() + off, doc.size() - off,
                               MSG_NOSIGNAL);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
    ::close(conn);
  }
}

#else

void NetRuntime::open_monitor() {
  FDP_CHECK_MSG(false, "the monitor socket requires a POSIX socket API");
}
void NetRuntime::serve_monitor() {}

#endif

}  // namespace fdp::net
