#include "net/runtime.hpp"

#include <algorithm>
#include <cerrno>

#include "core/potential.hpp"
#include "net/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FDP_NET_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace fdp::net {

NetRuntime::NetRuntime(std::unique_ptr<Transport> transport, Config cfg)
    : transport_(std::move(transport)),
      cfg_(cfg),
      rng_(cfg.seed) {
  FDP_CHECK_MSG(transport_ != nullptr, "NetRuntime needs a transport");
  name_ = std::string("net/") + transport_->name();
}

NetRuntime::~NetRuntime() {
#ifdef FDP_NET_HAVE_SOCKETS
  if (monitor_fd_ >= 0) ::close(monitor_fd_);
#endif
}

void NetRuntime::force_life(ProcessId id, LifeState s) {
  FDP_CHECK(id < actors_.size());
  set_process_life(*actors_[id].proc, s);
}

void NetRuntime::start() {
  FDP_CHECK_MSG(!started_, "start() called twice");
  started_ = true;
  pending_.resize(actors_.size());
  transport_->open(actors_.size());
  if (cfg_.monitor) open_monitor();
}

// --- admission / injection ---

void NetRuntime::admit_send(ProcessId src, Ref to, Message&& m) {
  FDP_CHECK(to.valid() && to.id() < actors_.size());
  const ProcessId dst = to.id();
  m.seq = next_seq_++;
  m.enqueued_at = events_;
  ++sends_;
  Actor& a = actors_[src];
  a.outbox.emplace_back(dst, m.seq);
  ++a.out_counts[dst];
  pending_[dst].emplace(m.seq, std::move(m));
}

void NetRuntime::inject(Ref to, Message m) {
  FDP_CHECK_MSG(started_, "inject before start()");
  FDP_CHECK(to.valid() && to.id() < actors_.size());
  // Injection is local client admission (a workload generator or scenario
  // builder handing a request to its access node), not peer traffic: the
  // message enters the ledger and the destination inbox directly, without
  // a wire hop — there is no source actor whose outbox could carry it.
  const ProcessId dst = to.id();
  m.seq = next_seq_++;
  m.enqueued_at = events_;
  auto [it, fresh] = pending_[dst].emplace(m.seq, std::move(m));
  FDP_CHECK(fresh);
  actors_[dst].inbox.emplace_back(it->first, it->second);
  for (Observer* o : observers_) o->on_inject(*this, dst, it->second);
}

void NetRuntime::each_pending(
    ProcessId id, const std::function<void(const Message&)>& fn) const {
  FDP_CHECK(id < pending_.size());
  for (const auto& [seq, m] : pending_[id]) fn(m);
}

// --- pump phases ---

void NetRuntime::flush_outboxes() {
  for (ProcessId src = 0; src < actors_.size(); ++src) {
    Actor& a = actors_[src];
    // A gone actor's outbox keeps flushing: the references in those frames
    // were sent before the exit and must still travel.
    while (!a.outbox.empty()) {
      const auto [dst, seq] = a.outbox.front();
      const auto it = pending_[dst].find(seq);
      // The ledger owns the message until delivery, so the entry must
      // exist for anything still in an outbox.
      FDP_CHECK(it != pending_[dst].end());
      frame_scratch_.clear();
      encode_frame(it->second, src, dst, frame_scratch_);
      if (!transport_->try_send(src, dst, frame_scratch_.data(),
                                frame_scratch_.size()))
        break;  // medium full: retry after the next poll
      a.outbox.pop_front();
      const auto cit = a.out_counts.find(dst);
      if (--cit->second == 0) a.out_counts.erase(cit);
    }
  }
}

void NetRuntime::on_frame(ProcessId dst, const std::uint8_t* data,
                          std::size_t len) {
  DecodedFrame f;
  if (decode_frame(data, len, f) != WireError::None) {
    ++wire_errors_;
    return;
  }
  if (f.dst != dst || dst >= actors_.size()) {
    ++wire_errors_;  // well-formed but misrouted
    return;
  }
  if (pending_[dst].find(f.msg.seq) == pending_[dst].end()) {
    ++stale_frames_;  // duplicate datagram or already-delivered seq
    return;
  }
  // Deliver the message as decoded off the wire (the honest end-to-end
  // path); the ledger entry is only accounting from here on.
  actors_[dst].inbox.emplace_back(f.msg.seq, std::move(f.msg));
}

bool NetRuntime::throttled(const Actor& a) const {
  for (const auto& [dst, count] : a.out_counts)
    if (count >= cfg_.outbox_high_water) return true;
  return false;
}

std::size_t NetRuntime::pump(int timeout_ms) {
  FDP_CHECK_MSG(started_, "pump before start()");
  flush_outboxes();
  transport_->poll(timeout_ms,
                   [this](ProcessId dst, const std::uint8_t* data,
                          std::size_t len) { on_frame(dst, data, len); });

  std::size_t executed = 0;

  // Deliveries: drain every inbox. Messages for gone actors stay queued
  // (and in the ledger) — the simulator's "messages to gone processes are
  // never delivered".
  for (ProcessId id = 0; id < actors_.size(); ++id) {
    Actor& a = actors_[id];
    while (!a.inbox.empty() && a.proc->life() != LifeState::Gone) {
      auto [seq, m] = std::move(a.inbox.front());
      a.inbox.pop_front();
      pending_[id].erase(seq);
      execute(id, ActionKind::Deliver, &m);
      ++executed;
    }
  }

  // Timeouts: each awake, un-throttled actor fires with probability 1/2
  // per cycle (drawn from the seeded rng, so runs stay reproducible).
  // Real timers drift; modeling that jitter matters for correctness, not
  // just realism — firing EVERY actor EVERY cycle is a synchronous
  // schedule, and self-stabilizing maintenance (e.g. linearization's
  // delegate-and-reintroduce) can phase-lock into a limit cycle under
  // lockstep rounds that any jittered/fair schedule escapes almost surely.
  for (ProcessId id = 0; id < actors_.size(); ++id) {
    Actor& a = actors_[id];
    if (a.proc->life() != LifeState::Awake) continue;
    if (throttled(a)) {
      ++throttle_skips_;
      continue;
    }
    if (rng_.below(2) != 0) continue;
    execute(id, ActionKind::Timeout, nullptr);
    ++executed;
  }

  if (monitor_fd_ >= 0) serve_monitor();
  return executed;
}

bool NetRuntime::run_until(
    const std::function<bool(const NetRuntime&)>& done,
    std::uint64_t max_pumps, int timeout_ms) {
  for (std::uint64_t i = 0; i < max_pumps; ++i) {
    if (done(*this)) return true;
    pump(timeout_ms);
  }
  return done(*this);
}

// --- action execution (mirrors World::execute) ---

void NetRuntime::execute(ProcessId actor, ActionKind kind,
                         const Message* consumed) {
  Process& p = *actors_[actor].proc;
  const bool want_record = !observers_.empty();

  ActionRecord rec;
  if (want_record) {
    rec.actor = actor;
    rec.step = events_;
    p.collect_refs(rec.refs_before);
  }

  sends_scratch_.clear();
  Context ctx(this, p.self(), events_, &rng_, &sends_scratch_);

  if (kind == ActionKind::Timeout) {
    FDP_CHECK(p.life() == LifeState::Awake);
    ++timeouts_;
    if (want_record) rec.kind = ActionRecord::Kind::Timeout;
    p.on_timeout(ctx);
  } else {
    ++deliveries_;
    const bool woke = p.life() == LifeState::Asleep;
    if (woke) {
      set_process_life(p, LifeState::Awake);
      ++wakes_;
    }
    if (want_record) {
      rec.kind = ActionRecord::Kind::Deliver;
      rec.woke = woke;
      rec.consumed = *consumed;
    }
    p.on_message(ctx, *consumed);
  }

  for (auto& [to, msg] : sends_scratch_) {
    admit_send(actor, to, std::move(msg));
    if (want_record) {
      // The admitted copy (with seq assigned) lives in the ledger.
      rec.sent.emplace_back(to, pending_[to.id()].rbegin()->second);
    }
  }

  if (want_record) p.collect_refs(rec.refs_after);

  if (ctx.exit_requested_) {
    FDP_CHECK_MSG(!ctx.sleep_requested_, "action requested exit AND sleep");
    set_process_life(p, LifeState::Gone);
    ++exits_;
    if (want_record) rec.exited = true;
  } else if (ctx.sleep_requested_) {
    set_process_life(p, LifeState::Asleep);
    ++sleeps_;
    if (want_record) rec.slept = true;
  }

  ++events_;

  if (want_record)
    for (Observer* obs : observers_) obs->on_action(*this, rec);
}

// --- oracle + support queries (the "omniscient service" scans) ---

bool NetRuntime::oracle_query(ProcessId caller) const {
  FDP_CHECK_MSG(oracle_ != nullptr, "oracle consulted but none installed");
  return oracle_(*this, caller);
}

std::uint64_t NetRuntime::quiet_count() const {
  std::uint64_t n = 0;
  for (ProcessId id = 0; id < actors_.size(); ++id)
    if (actors_[id].proc->life() == LifeState::Asleep &&
        pending_[id].empty())
      ++n;
  return n;
}

std::size_t NetRuntime::incident_nongone(ProcessId p) const {
  FDP_CHECK(p < actors_.size());
  std::vector<bool> peer(actors_.size(), false);
  const auto mark_targets = [&](ProcessId holder) {
    refs_scratch_.clear();
    actors_[holder].proc->collect_refs(refs_scratch_);
    for (const RefInfo& r : refs_scratch_) {
      const ProcessId t = r.ref.id();
      if (holder == p) {
        if (t != p && t < actors_.size() && !gone(t)) peer[t] = true;
      } else if (t == p) {
        peer[holder] = true;
      }
    }
    for (const auto& [seq, m] : pending_[holder]) {
      for (const RefInfo& r : m.refs) {
        const ProcessId t = r.ref.id();
        if (holder == p) {
          if (t != p && t < actors_.size() && !gone(t)) peer[t] = true;
        } else if (t == p) {
          peer[holder] = true;
        }
      }
    }
  };
  mark_targets(p);
  for (ProcessId q = 0; q < actors_.size(); ++q)
    if (q != p && !gone(q)) mark_targets(q);
  std::size_t n = 0;
  for (ProcessId q = 0; q < actors_.size(); ++q)
    if (q != p && peer[q]) ++n;
  return n;
}

bool NetRuntime::referenced_by_other(ProcessId p) const {
  FDP_CHECK(p < actors_.size());
  const Ref target = actors_[p].proc->self();
  for (ProcessId q = 0; q < actors_.size(); ++q) {
    if (q == p || gone(q)) continue;
    refs_scratch_.clear();
    actors_[q].proc->collect_refs(refs_scratch_);
    for (const RefInfo& r : refs_scratch_)
      if (r.ref == target) return true;
    for (const auto& [seq, m] : pending_[q])
      for (const RefInfo& r : m.refs)
        if (r.ref == target) return true;
  }
  return false;
}

std::uint64_t NetRuntime::in_flight() const {
  std::uint64_t n = 0;
  for (const auto& ledger : pending_) n += ledger.size();
  return n;
}

// --- monitor socket ---

std::string NetRuntime::monitor_json() const {
  std::string j;
  j.reserve(256 + 96 * actors_.size());
  j += "{\"substrate\":\"";
  j += name_;
  j += "\",\"clock\":";
  j += std::to_string(events_);
  j += ",\"phi\":";
  j += std::to_string(phi(*this));
  j += ",\"in_flight\":";
  j += std::to_string(in_flight());
  j += ",\"wire_errors\":";
  j += std::to_string(wire_errors_);
  j += ",\"stale_frames\":";
  j += std::to_string(stale_frames_);
  j += ",\"throttle_skips\":";
  j += std::to_string(throttle_skips_);
  j += ",\"exits\":";
  j += std::to_string(exits_);
  j += ",\"processes\":[";
  for (ProcessId id = 0; id < actors_.size(); ++id) {
    const Process& p = *actors_[id].proc;
    if (id != 0) j += ',';
    j += "{\"id\":";
    j += std::to_string(id);
    j += ",\"key\":";
    j += std::to_string(p.key());
    j += ",\"mode\":\"";
    j += p.mode() == Mode::Leaving ? "leaving" : "staying";
    j += "\",\"life\":\"";
    switch (p.life()) {
      case LifeState::Awake: j += "awake"; break;
      case LifeState::Asleep: j += "asleep"; break;
      case LifeState::Gone: j += "gone"; break;
    }
    refs_scratch_.clear();
    p.collect_refs(refs_scratch_);
    j += "\",\"stored\":";
    j += std::to_string(refs_scratch_.size());
    j += ",\"channel\":";
    j += std::to_string(pending_[id].size());
    j += '}';
  }
  j += "]}\n";
  return j;
}

#ifdef FDP_NET_HAVE_SOCKETS

void NetRuntime::open_monitor() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  FDP_CHECK_MSG(fd >= 0, "monitor socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  FDP_CHECK_MSG(
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0,
      "monitor bind(127.0.0.1:0) failed");
  FDP_CHECK(::listen(fd, 8) == 0);
  socklen_t alen = sizeof addr;
  FDP_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen) == 0);
  monitor_port_ = ntohs(addr.sin_port);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FDP_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
  monitor_fd_ = fd;
}

void NetRuntime::serve_monitor() {
  for (;;) {
    const int conn = ::accept(monitor_fd_, nullptr, nullptr);
    if (conn < 0) return;  // EAGAIN: no one waiting
    // The accepted socket is blocking (accept does not inherit O_NONBLOCK
    // on Linux), and the document is small, so a plain send loop is fine.
    // MSG_NOSIGNAL: a client that hangs up mid-read must surface as EPIPE,
    // not kill the runtime with SIGPIPE.
    const std::string doc = monitor_json();
    std::size_t off = 0;
    while (off < doc.size()) {
      const ssize_t w = ::send(conn, doc.data() + off, doc.size() - off,
                               MSG_NOSIGNAL);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
    ::close(conn);
  }
}

#else

void NetRuntime::open_monitor() {
  FDP_CHECK_MSG(false, "the monitor socket requires a POSIX socket API");
}
void NetRuntime::serve_monitor() {}

#endif

}  // namespace fdp::net
