#include "net/transport.hpp"

#include <cerrno>
#include <cstring>

#include "net/wire.hpp"
#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FDP_NET_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#if defined(__linux__)
#define FDP_NET_HAVE_MMSG 1
#include <sys/epoll.h>
#else
#include <poll.h>
#endif
#endif

namespace fdp::net {

Transport::~Transport() = default;

std::size_t Transport::try_send_many(ProcessId src, const FrameView* frames,
                                     std::size_t count) {
  // Portable fallback: one medium hand-off per frame. Batching transports
  // override this with one syscall per batch.
  std::size_t accepted = 0;
  while (accepted < count) {
    const FrameView& f = frames[accepted];
    if (!try_send(src, f.dst, f.data, f.len)) break;
    ++accepted;
  }
  return accepted;
}

// --- MemTransport ---

void MemTransport::open(std::size_t n) {
  queues_.assign(n, {});
  pending_ = 0;
  stats_ = {};
}

bool MemTransport::try_send(ProcessId src, ProcessId dst,
                            const std::uint8_t* data, std::size_t len) {
  FDP_CHECK(dst < queues_.size());
  ++stats_.frames_sent;
  if (!should_carry(src, dst)) return true;  // accepted, then "lost"
  // The ring slot's byte vector keeps its capacity from earlier frames,
  // so a warm queue accepts frames without touching the allocator.
  Frame& f = queues_[dst].push_slot();
  f.bytes.resize(len);
  std::memcpy(f.bytes.data(), data, len);
  f.len = len;
  ++pending_;
  return true;
}

void MemTransport::poll(int timeout_ms, const RxFn& rx) {
  (void)timeout_ms;  // nothing ever arrives later than "now"
  for (ProcessId dst = 0; dst < queues_.size(); ++dst) {
    auto& q = queues_[dst];
    while (!q.empty()) {
      // Swap the frame bytes out first: rx may send, growing this very
      // queue (which would invalidate a reference into it). The swap
      // trades capacities, so neither side allocates in steady state.
      Frame& front = q.front();
      scratch_.swap(front.bytes);
      const std::size_t len = front.len;
      q.pop_front();
      --pending_;
      ++stats_.frames_received;
      rx(dst, scratch_.data(), len);
    }
  }
}

// --- UdpTransport ---

#ifdef FDP_NET_HAVE_SOCKETS

namespace {
constexpr std::size_t kSendBatch = 64;  ///< frames per sendmmsg call
constexpr std::size_t kRecvBatch = 32;  ///< frames per recvmmsg call
}  // namespace

struct UdpTransport::Impl {
  std::vector<int> fds;
  std::vector<sockaddr_in> addrs;
  std::vector<std::uint16_t> ports;
  std::vector<std::uint8_t> rxbuf;
  TransportStats stats;
  bool want_batch = true;
  /// Cleared permanently if the kernel answers ENOSYS (runtime probe).
  bool mmsg_ok = true;
#if defined(__linux__)
  int epfd = -1;
#endif
#ifdef FDP_NET_HAVE_MMSG
  /// recvmmsg scatter targets: kRecvBatch slots of max_frame_bytes each,
  /// one slab, reused every call.
  std::vector<std::uint8_t> rxslab;
  mmsghdr rxmsgs[kRecvBatch];
  iovec rxiov[kRecvBatch];
  mmsghdr txmsgs[kSendBatch];
  iovec txiov[kSendBatch];
#endif

  ~Impl() { close_all(); }

  [[nodiscard]] bool batching() const {
    return want_batch && mmsg_ok && UdpTransport::mmsg_supported();
  }

  void close_all() {
    for (int fd : fds)
      if (fd >= 0) ::close(fd);
    fds.clear();
    addrs.clear();
    ports.clear();
#if defined(__linux__)
    if (epfd >= 0) ::close(epfd);
    epfd = -1;
#endif
  }
};

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FDP_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "failed to set O_NONBLOCK on a runtime socket");
}

}  // namespace

UdpTransport::UdpTransport(bool batching) : impl_(new Impl) {
  impl_->want_batch = batching;
}

UdpTransport::~UdpTransport() { delete impl_; }

bool UdpTransport::mmsg_supported() {
#ifdef FDP_NET_HAVE_MMSG
  return true;
#else
  return false;
#endif
}

bool UdpTransport::batching() const { return impl_->batching(); }

TransportStats UdpTransport::stats() const { return impl_->stats; }

void UdpTransport::open(std::size_t n) {
  impl_->close_all();
  impl_->rxbuf.resize(max_frame_bytes());
#ifdef FDP_NET_HAVE_MMSG
  impl_->rxslab.resize(kRecvBatch * max_frame_bytes());
  for (std::size_t i = 0; i < kRecvBatch; ++i) {
    impl_->rxiov[i] =
        iovec{impl_->rxslab.data() + i * max_frame_bytes(),
              max_frame_bytes()};
    impl_->rxmsgs[i] = mmsghdr{};
    impl_->rxmsgs[i].msg_hdr.msg_iov = &impl_->rxiov[i];
    impl_->rxmsgs[i].msg_hdr.msg_iovlen = 1;
  }
#endif
#if defined(__linux__)
  impl_->epfd = ::epoll_create1(0);
  FDP_CHECK_MSG(impl_->epfd >= 0, "epoll_create1 failed");
#endif
  impl_->fds.resize(n, -1);
  impl_->addrs.resize(n);
  impl_->ports.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    FDP_CHECK_MSG(fd >= 0, "socket(AF_INET, SOCK_DGRAM) failed");
    impl_->fds[i] = fd;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // OS-assigned
    FDP_CHECK_MSG(
        ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0,
        "bind(127.0.0.1:0) failed");
    socklen_t alen = sizeof addr;
    FDP_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen) ==
              0);
    impl_->addrs[i] = addr;
    impl_->ports[i] = ntohs(addr.sin_port);
    set_nonblocking(fd);
    // Departure bursts briefly fan many frames into one inbox; a roomy
    // receive buffer keeps loopback loss (-> retransmit delays) rare.
    const int rcvbuf = 1 << 20;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
#if defined(__linux__)
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<std::uint32_t>(i);
    FDP_CHECK(::epoll_ctl(impl_->epfd, EPOLL_CTL_ADD, fd, &ev) == 0);
#endif
  }
}

bool UdpTransport::try_send(ProcessId src, ProcessId dst,
                            const std::uint8_t* data, std::size_t len) {
  FDP_CHECK(src < impl_->fds.size() && dst < impl_->fds.size());
  ++impl_->stats.send_calls;
  const ssize_t r = ::sendto(
      impl_->fds[src], data, len, 0,
      reinterpret_cast<const sockaddr*>(&impl_->addrs[dst]),
      sizeof(sockaddr_in));
  if (r >= 0) {
    ++impl_->stats.frames_sent;
    return true;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS)
    return false;  // medium full: the caller's outbox keeps the frame
  // Anything else (e.g. ECONNREFUSED bounced back on loopback) counts as
  // "handed to the medium and lost there": UDP gives no delivery promise,
  // and the runtime's ledger already models loss as a lingering entry.
  ++impl_->stats.frames_sent;
  return true;
}

std::size_t UdpTransport::try_send_many(ProcessId src, const FrameView* frames,
                                        std::size_t count) {
#ifdef FDP_NET_HAVE_MMSG
  if (impl_->batching()) {
    FDP_CHECK(src < impl_->fds.size());
    std::size_t accepted = 0;
    while (accepted < count) {
      const std::size_t chunk =
          count - accepted < kSendBatch ? count - accepted : kSendBatch;
      for (std::size_t i = 0; i < chunk; ++i) {
        const FrameView& f = frames[accepted + i];
        FDP_CHECK(f.dst < impl_->fds.size());
        impl_->txiov[i] =
            iovec{const_cast<std::uint8_t*>(f.data), f.len};
        impl_->txmsgs[i] = mmsghdr{};
        impl_->txmsgs[i].msg_hdr.msg_name = &impl_->addrs[f.dst];
        impl_->txmsgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
        impl_->txmsgs[i].msg_hdr.msg_iov = &impl_->txiov[i];
        impl_->txmsgs[i].msg_hdr.msg_iovlen = 1;
      }
      ++impl_->stats.send_calls;
      const int r = ::sendmmsg(impl_->fds[src], impl_->txmsgs,
                               static_cast<unsigned>(chunk), 0);
      if (r < 0) {
        if (errno == ENOSYS) {
          // Kernel without the batched call: downgrade permanently to the
          // portable per-frame path (this is the runtime selection).
          impl_->mmsg_ok = false;
          return accepted + Transport::try_send_many(
                                src, frames + accepted, count - accepted);
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS)
          return accepted;  // partial completion: caller retries the rest
        // First datagram of the chunk failed hard: count it as carried
        // and lost (same contract as the per-frame path) and move on.
        ++impl_->stats.frames_sent;
        return accepted + 1;
      }
      accepted += static_cast<std::size_t>(r);
      impl_->stats.frames_sent += static_cast<std::uint64_t>(r);
      if (static_cast<std::size_t>(r) < chunk)
        return accepted;  // partial completion (EAGAIN mid-batch)
    }
    return accepted;
  }
#endif
  return Transport::try_send_many(src, frames, count);
}

void UdpTransport::poll(int timeout_ms, const RxFn& rx) {
  const auto drain = [&](std::size_t actor) {
#ifdef FDP_NET_HAVE_MMSG
    if (impl_->batching()) {
      for (;;) {
        ++impl_->stats.recv_calls;
        const int r = ::recvmmsg(impl_->fds[actor], impl_->rxmsgs,
                                 kRecvBatch, MSG_DONTWAIT, nullptr);
        if (r < 0) {
          if (errno == ENOSYS) {
            impl_->mmsg_ok = false;
            break;  // fall through to the per-frame drain below
          }
          return;  // EAGAIN: inbox drained (other errors: next poll)
        }
        for (int i = 0; i < r; ++i) {
          ++impl_->stats.frames_received;
          rx(static_cast<ProcessId>(actor),
             impl_->rxslab.data() + static_cast<std::size_t>(i) *
                                        max_frame_bytes(),
             impl_->rxmsgs[i].msg_len);
        }
        if (static_cast<std::size_t>(r) < kRecvBatch) return;
      }
    }
#endif
    for (;;) {
      ++impl_->stats.recv_calls;
      const ssize_t r = ::recv(impl_->fds[actor], impl_->rxbuf.data(),
                               impl_->rxbuf.size(), 0);
      if (r < 0) break;  // EAGAIN: inbox drained (other errors: next poll)
      ++impl_->stats.frames_received;
      rx(static_cast<ProcessId>(actor), impl_->rxbuf.data(),
         static_cast<std::size_t>(r));
    }
  };
#if defined(__linux__)
  epoll_event evs[64];
  // Loop so one poll() drains everything readable, not just 64 actors.
  for (;;) {
    ++impl_->stats.poll_calls;
    const int k = ::epoll_wait(impl_->epfd, evs, 64, timeout_ms);
    if (k <= 0) return;
    for (int i = 0; i < k; ++i) drain(evs[i].data.u32);
    if (k < 64) return;
    timeout_ms = 0;  // keep draining, but never block twice
  }
#else
  std::vector<pollfd> pfds(impl_->fds.size());
  for (std::size_t i = 0; i < impl_->fds.size(); ++i)
    pfds[i] = pollfd{impl_->fds[i], POLLIN, 0};
  ++impl_->stats.poll_calls;
  if (::poll(pfds.data(), pfds.size(), timeout_ms) <= 0) return;
  for (std::size_t i = 0; i < pfds.size(); ++i)
    if ((pfds[i].revents & POLLIN) != 0) drain(i);
#endif
}

std::uint16_t UdpTransport::port(ProcessId id) const {
  FDP_CHECK(id < impl_->ports.size());
  return impl_->ports[id];
}

#else  // !FDP_NET_HAVE_SOCKETS — stub that fails loudly if ever used

struct UdpTransport::Impl {};
UdpTransport::UdpTransport(bool) : impl_(nullptr) {}
UdpTransport::~UdpTransport() = default;
bool UdpTransport::mmsg_supported() { return false; }
bool UdpTransport::batching() const { return false; }
TransportStats UdpTransport::stats() const { return {}; }
void UdpTransport::open(std::size_t) {
  FDP_CHECK_MSG(false, "UdpTransport requires a POSIX socket API");
}
bool UdpTransport::try_send(ProcessId, ProcessId, const std::uint8_t*,
                            std::size_t) {
  return false;
}
std::size_t UdpTransport::try_send_many(ProcessId, const FrameView*,
                                        std::size_t) {
  return 0;
}
void UdpTransport::poll(int, const RxFn&) {}
std::uint16_t UdpTransport::port(ProcessId) const { return 0; }

#endif

}  // namespace fdp::net
