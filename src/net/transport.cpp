#include "net/transport.hpp"

#include <cerrno>
#include <cstring>

#include "net/wire.hpp"
#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FDP_NET_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/epoll.h>
#else
#include <poll.h>
#endif
#endif

namespace fdp::net {

Transport::~Transport() = default;

// --- MemTransport ---

void MemTransport::open(std::size_t n) {
  queues_.assign(n, {});
  pending_ = 0;
}

bool MemTransport::try_send(ProcessId src, ProcessId dst,
                            const std::uint8_t* data, std::size_t len) {
  (void)src;
  FDP_CHECK(dst < queues_.size());
  queues_[dst].emplace_back(data, data + len);
  ++pending_;
  return true;
}

void MemTransport::poll(int timeout_ms, const RxFn& rx) {
  (void)timeout_ms;  // nothing ever arrives later than "now"
  for (ProcessId dst = 0; dst < queues_.size(); ++dst) {
    auto& q = queues_[dst];
    while (!q.empty()) {
      // Move the frame out first: rx may send, growing this very queue.
      const std::vector<std::uint8_t> frame = std::move(q.front());
      q.pop_front();
      --pending_;
      rx(dst, frame.data(), frame.size());
    }
  }
}

// --- UdpTransport ---

#ifdef FDP_NET_HAVE_SOCKETS

struct UdpTransport::Impl {
  std::vector<int> fds;
  std::vector<sockaddr_in> addrs;
  std::vector<std::uint16_t> ports;
  std::vector<std::uint8_t> rxbuf;
#if defined(__linux__)
  int epfd = -1;
#endif

  ~Impl() { close_all(); }

  void close_all() {
    for (int fd : fds)
      if (fd >= 0) ::close(fd);
    fds.clear();
    addrs.clear();
    ports.clear();
#if defined(__linux__)
    if (epfd >= 0) ::close(epfd);
    epfd = -1;
#endif
  }
};

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FDP_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "failed to set O_NONBLOCK on a runtime socket");
}

}  // namespace

UdpTransport::UdpTransport() : impl_(new Impl) {}

UdpTransport::~UdpTransport() { delete impl_; }

void UdpTransport::open(std::size_t n) {
  impl_->close_all();
  impl_->rxbuf.resize(max_frame_bytes());
#if defined(__linux__)
  impl_->epfd = ::epoll_create1(0);
  FDP_CHECK_MSG(impl_->epfd >= 0, "epoll_create1 failed");
#endif
  impl_->fds.resize(n, -1);
  impl_->addrs.resize(n);
  impl_->ports.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    FDP_CHECK_MSG(fd >= 0, "socket(AF_INET, SOCK_DGRAM) failed");
    impl_->fds[i] = fd;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // OS-assigned
    FDP_CHECK_MSG(
        ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0,
        "bind(127.0.0.1:0) failed");
    socklen_t alen = sizeof addr;
    FDP_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen) ==
              0);
    impl_->addrs[i] = addr;
    impl_->ports[i] = ntohs(addr.sin_port);
    set_nonblocking(fd);
    // Departure bursts briefly fan many frames into one inbox; a roomy
    // receive buffer keeps loopback loss (-> delayed exits) rare.
    const int rcvbuf = 1 << 20;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
#if defined(__linux__)
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<std::uint32_t>(i);
    FDP_CHECK(::epoll_ctl(impl_->epfd, EPOLL_CTL_ADD, fd, &ev) == 0);
#endif
  }
}

bool UdpTransport::try_send(ProcessId src, ProcessId dst,
                            const std::uint8_t* data, std::size_t len) {
  FDP_CHECK(src < impl_->fds.size() && dst < impl_->fds.size());
  const ssize_t r = ::sendto(
      impl_->fds[src], data, len, 0,
      reinterpret_cast<const sockaddr*>(&impl_->addrs[dst]),
      sizeof(sockaddr_in));
  if (r >= 0) return true;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS)
    return false;  // medium full: the caller's outbox keeps the frame
  // Anything else (e.g. ECONNREFUSED bounced back on loopback) counts as
  // "handed to the medium and lost there": UDP gives no delivery promise,
  // and the runtime's ledger already models loss as a lingering entry.
  return true;
}

void UdpTransport::poll(int timeout_ms, const RxFn& rx) {
  const auto drain = [&](std::size_t actor) {
    for (;;) {
      const ssize_t r = ::recv(impl_->fds[actor], impl_->rxbuf.data(),
                               impl_->rxbuf.size(), 0);
      if (r < 0) break;  // EAGAIN: inbox drained (other errors: next poll)
      rx(static_cast<ProcessId>(actor), impl_->rxbuf.data(),
         static_cast<std::size_t>(r));
    }
  };
#if defined(__linux__)
  epoll_event evs[64];
  // Loop so one poll() drains everything readable, not just 64 actors.
  for (;;) {
    const int k = ::epoll_wait(impl_->epfd, evs, 64, timeout_ms);
    if (k <= 0) return;
    for (int i = 0; i < k; ++i) drain(evs[i].data.u32);
    if (k < 64) return;
    timeout_ms = 0;  // keep draining, but never block twice
  }
#else
  std::vector<pollfd> pfds(impl_->fds.size());
  for (std::size_t i = 0; i < impl_->fds.size(); ++i)
    pfds[i] = pollfd{impl_->fds[i], POLLIN, 0};
  if (::poll(pfds.data(), pfds.size(), timeout_ms) <= 0) return;
  for (std::size_t i = 0; i < pfds.size(); ++i)
    if ((pfds[i].revents & POLLIN) != 0) drain(i);
#endif
}

std::uint16_t UdpTransport::port(ProcessId id) const {
  FDP_CHECK(id < impl_->ports.size());
  return impl_->ports[id];
}

#else  // !FDP_NET_HAVE_SOCKETS — stub that fails loudly if ever used

struct UdpTransport::Impl {};
UdpTransport::UdpTransport() : impl_(nullptr) {}
UdpTransport::~UdpTransport() = default;
void UdpTransport::open(std::size_t) {
  FDP_CHECK_MSG(false, "UdpTransport requires a POSIX socket API");
}
bool UdpTransport::try_send(ProcessId, ProcessId, const std::uint8_t*,
                            std::size_t) {
  return false;
}
void UdpTransport::poll(int, const RxFn&) {}
std::uint16_t UdpTransport::port(ProcessId) const { return 0; }

#endif

}  // namespace fdp::net
