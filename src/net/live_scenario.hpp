// Live-runtime scenario construction.
//
// Builds the same FrameworkProcess-hosting-an-overlay populations as
// analysis/scenario.cpp, but on a NetRuntime instead of a World. Both
// builders consume the SAME ScenarioConfig and draw the SAME
// PopulationPlan / knowledge / corruption sequence from the same seed, so
// a simulator trial and a live trial with equal configs start from
// byte-identical initial populations — which is what the substrate
// equivalence tests compare against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "net/runtime.hpp"

namespace fdp::net {

struct LiveScenario {
  std::unique_ptr<NetRuntime> net;
  std::vector<Ref> refs;      ///< by process id
  std::vector<bool> leaving;  ///< by process id
  std::size_t leaving_count = 0;
  std::uint64_t seed = 0;
};

/// Live twin of build_framework_scenario: FrameworkProcess nodes hosting
/// the named overlay, running as actors over `transport`. The runtime is
/// started (inject-corruption requires open endpoints) and the configured
/// oracle installed.
[[nodiscard]] LiveScenario build_live_framework_scenario(
    const ScenarioConfig& cfg, const std::string& overlay,
    std::unique_ptr<Transport> transport, NetRuntime::Config rcfg = {});

}  // namespace fdp::net
