// NetFaultInjector: the FaultPlan running on the live substrate (ISSUE
// 10). The simulator's fault campaign (tests/test_fault.cpp, E10) pins
// that mid-run perturbations never break safety and always recover; these
// tests pin the same contract on the socket runtime — same plan type,
// same Process fault hooks, same observer announcements — plus the
// runtime-only machinery: the retransmit give-up ceiling under a
// permanent partition, and byte-identical campaign replay over the
// deterministic transport.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/monitors.hpp"
#include "analysis/scenario.hpp"
#include "core/framework.hpp"
#include "net/live_scenario.hpp"
#include "net/net_faults.hpp"
#include "net/shaped_transport.hpp"
#include "overlay/topology_checks.hpp"

namespace fdp::net {
namespace {

ScenarioConfig churn_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = 16;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.25;
  cfg.invalid_mode_prob = 0.3;
  cfg.random_anchor_prob = 0.2;
  cfg.inflight_per_node = 0.5;
  cfg.seed = seed;
  return cfg;
}

struct CampaignResult {
  std::uint64_t exits = 0;
  std::vector<ProcessId> gone;
  std::uint64_t clock = 0;
  std::uint64_t crashes = 0;
  std::uint64_t scrambles = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t partitions = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t safety_violations = 0;
  bool done = false;
  bool recovered = false;
};

/// Run an E4-style churn scenario over ShapedTransport(MemTransport) with
/// `plan` injected live. Deterministic end to end.
CampaignResult run_campaign(const ScenarioConfig& cfg, const FaultPlan& plan,
                            ShapeConfig shape) {
  auto shaped = std::make_unique<ShapedTransport>(
      std::make_unique<MemTransport>(), shape);
  ShapedTransport* sp = shaped.get();
  NetConfig rcfg;
  rcfg.retransmit_ticks = 8;
  LiveScenario sc = build_live_framework_scenario(cfg, "linearization",
                                                  std::move(shaped), rcfg);
  SafetyMonitor safety(*sc.net, 1);
  sc.net->add_observer(&safety);
  RecoveryMonitor recovery(*sc.net);
  sc.net->add_observer(&recovery);
  NetFaultInjector injector(*sc.net, sp, plan, cfg.seed ^ plan.seed);

  CampaignResult res;
  bool done = false;
  for (int pumps = 0; pumps < 200'000 && !done; ++pumps) {
    injector.pump();
    sc.net->pump(0);
    done = injector.exhausted() && all_leaving_gone(*sc.net) &&
           check_topology(*sc.net, "linearization").converged;
  }
  recovery.finalize(*sc.net);
  res.done = done;
  res.exits = sc.net->exits();
  for (ProcessId p = 0; p < sc.net->size(); ++p)
    if (sc.net->gone(p)) res.gone.push_back(p);
  res.clock = sc.net->clock();
  res.crashes = injector.crashes();
  res.scrambles = injector.scrambles();
  res.duplicates = injector.duplicates();
  res.partitions = injector.partitions();
  res.retransmits = sc.net->retransmits();
  res.gave_up = sc.net->retransmit_gave_up();
  res.safety_violations = safety.violations().size();
  res.recovered = recovery.all_recovered();
  return res;
}

TEST(NetFaults, CrashRestartRecoversOnLive) {
  FaultPlan plan;
  plan.at(30, FaultKind::CrashRestart).at(90, FaultKind::CrashRestart);
  const CampaignResult r = run_campaign(churn_config(3), plan, ShapeConfig{});
  EXPECT_TRUE(r.done) << "departures stalled after live crash-restarts";
  EXPECT_EQ(r.crashes, 2u);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_TRUE(r.recovered) << "a perturbation never re-reached legitimacy";
}

TEST(NetFaults, ScrambleRecoversOnLive) {
  FaultPlan plan;
  plan.at(25, FaultKind::Scramble, 3);
  const CampaignResult r = run_campaign(churn_config(4), plan, ShapeConfig{});
  EXPECT_TRUE(r.done);
  EXPECT_GE(r.scrambles, 1u);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_TRUE(r.recovered);
}

TEST(NetFaults, DuplicateBurstIsHarmless) {
  FaultPlan plan;
  plan.at(10, FaultKind::DuplicateBurst, 8)
      .at(40, FaultKind::DuplicateBurst, 8)
      .at(80, FaultKind::DuplicateBurst, 8);
  const CampaignResult r = run_campaign(churn_config(5), plan, ShapeConfig{});
  EXPECT_TRUE(r.done);
  // With corrupted-in-flight churn there are live messages at these
  // steps; at least one burst must have found targets.
  EXPECT_GT(r.duplicates, 0u);
  EXPECT_EQ(r.safety_violations, 0u);
}

TEST(NetFaults, PartitionWindowDelaysButNeverDenies) {
  FaultPlan plan;
  plan.at(40, FaultKind::PartitionStart);
  plan.partition_window = 300;
  ShapeConfig shape;
  shape.partitions = true;
  const CampaignResult r = run_campaign(churn_config(6), plan, shape);
  EXPECT_TRUE(r.done) << "the healed overlay must still drain every leaver";
  EXPECT_EQ(r.partitions, 1u);
  // Frames crossing the cut were destroyed and came back via retransmit.
  EXPECT_GT(r.retransmits, 0u);
  EXPECT_EQ(r.safety_violations, 0u);
  // The window is bounded, so the ceiling must not be exhausted.
  EXPECT_EQ(r.gave_up, 0u);
}

TEST(NetFaults, CompoundCampaignReplaysByteIdentically) {
  FaultPlan plan;
  plan.at(20, FaultKind::CrashRestart)
      .at(50, FaultKind::DuplicateBurst, 4)
      .at(70, FaultKind::Scramble, 2)
      .at(100, FaultKind::PartitionStart);
  plan.partition_window = 150;
  ShapeConfig shape;
  shape.partitions = true;
  shape.loss = 0.05;
  shape.latency_ticks = 1;
  shape.jitter_ticks = 2;
  const CampaignResult a = run_campaign(churn_config(7), plan, shape);
  const CampaignResult b = run_campaign(churn_config(7), plan, shape);
  EXPECT_TRUE(a.done);
  EXPECT_EQ(a.safety_violations, 0u);
  EXPECT_EQ(a.exits, b.exits);
  EXPECT_EQ(a.gone, b.gone);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.scrambles, b.scrambles);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.partitions, b.partitions);
  EXPECT_EQ(a.retransmits, b.retransmits);
}

TEST(NetFaults, InjectorWithoutShaperRejectsPartitionPlans) {
  ScenarioConfig cfg = churn_config(8);
  cfg.n = 4;
  LiveScenario sc = build_live_framework_scenario(
      cfg, "linearization", std::make_unique<MemTransport>());
  FaultPlan plan;
  plan.at(10, FaultKind::PartitionStart);
  EXPECT_DEATH((NetFaultInjector{*sc.net, nullptr, plan, 1}),
               "no ShapedTransport");
}

// A permanent partition is the one fault class the retransmit protocol
// cannot out-wait: the ceiling must trip, the give-up counters must say
// where, and the monitor JSON must carry both (the satellite-2 contract).
TEST(NetFaults, PermanentPartitionExhaustsTheRetransmitCeiling) {
  ScenarioConfig cfg = churn_config(9);
  ShapeConfig shape;
  shape.partitions = true;
  auto shaped = std::make_unique<ShapedTransport>(
      std::make_unique<MemTransport>(), shape);
  ShapedTransport* sp = shaped.get();
  NetConfig rcfg;
  rcfg.retransmit_ticks = 2;
  rcfg.retransmit_max_attempts = 3;
  LiveScenario sc = build_live_framework_scenario(cfg, "linearization",
                                                  std::move(shaped), rcfg);
  std::vector<char> blocked(cfg.n, 0);
  for (std::size_t p = 0; p < cfg.n; p += 2) blocked[p] = 1;
  sp->start_partition(blocked);  // never closed
  for (int pumps = 0; pumps < 4'000; ++pumps) sc.net->pump(0);

  EXPECT_GT(sc.net->retransmit_gave_up(), 0u)
      << "a permanent cut must exhaust the ceiling";
  std::uint64_t per_actor = 0;
  for (ProcessId p = 0; p < sc.net->size(); ++p)
    per_actor += sc.net->actor_retransmit_gave_up(p);
  EXPECT_EQ(per_actor, sc.net->retransmit_gave_up())
      << "per-actor counters must sum to the total";
  const std::string& doc = sc.net->monitor_json();
  EXPECT_NE(doc.find("\"retransmit_gave_up\":"), std::string::npos);
  EXPECT_NE(doc.find("\"gave_up\":"), std::string::npos);
}

}  // namespace
}  // namespace fdp::net
