// The sharded kernel's headline contract (sim/sharded_world.hpp): the
// action trace of a k-shard run is byte-identical to the 1-shard run of
// the SAME engine for every k — across all four scheduling policies, with
// and without a fault campaign, and across World::reset reuse. The hashes
// are compared, not baked in: the invariant is cross-k equality, not a
// pinned sequence (the per-epoch policies are a different — equally
// legal — adversary than the classic schedulers, so classic golden hashes
// do not apply).
#include "sim/sharded_world.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "analysis/experiment.hpp"
#include "analysis/monitors.hpp"
#include "core/potential.hpp"

namespace fdp {
namespace {

// Same mixer as the GoldenTrace suite: every decision feeds the hash.
class TraceHasher final : public Observer {
 public:
  void on_action(const Substrate& world, const ActionRecord& rec) override {
    (void)world;
    mix(static_cast<std::uint64_t>(rec.kind));
    mix(rec.actor);
    mix(rec.consumed ? rec.consumed->seq : 0);
    mix(rec.sent.size());
    mix((rec.exited ? 1u : 0u) | (rec.slept ? 2u : 0u) | (rec.woke ? 4u : 0u));
  }
  void on_fault(const Substrate& world, FaultKind kind, ProcessId target,
                bool applied) override {
    (void)world;
    mix(static_cast<std::uint64_t>(kind));
    mix(target);
    mix(applied ? 1 : 0);
  }
  [[nodiscard]] std::uint64_t hash() const { return h_; }

 private:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

// Every life state and message path: asleep starts, leavers, invalid
// modes, anchors, initial in-flight traffic (the GoldenTrace scenario).
ScenarioConfig wild_config() {
  ScenarioConfig cfg;
  cfg.n = 24;
  cfg.topology = "wild";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.random_anchor_prob = 0.2;
  cfg.inflight_per_node = 1.0;
  cfg.initial_asleep_prob = 0.2;
  cfg.seed = 4242;
  return cfg;
}

FaultPlan full_campaign() {
  FaultPlan plan;
  plan.at(50, FaultKind::CrashRestart)
      .at(150, FaultKind::Scramble)
      .at(250, FaultKind::DuplicateBurst, 6)
      .at(350, FaultKind::PartitionStart);
  plan.partition_window = 48;
  plan.p_crash = 0.002;
  plan.p_scramble = 0.002;
  plan.p_duplicate = 0.002;
  plan.stochastic_until = 900;
  return plan;
}

struct ShardRun {
  std::uint64_t hash, steps, sends, exits, epochs, injected;
  std::uint64_t phi_final;

  friend bool operator==(const ShardRun&, const ShardRun&) = default;
};

ShardRun sharded_run(unsigned k, ShardPolicy::Kind kind, bool faults,
                     std::unique_ptr<World> reuse = nullptr,
                     std::unique_ptr<World>* retired = nullptr) {
  ScenarioSpec scen;
  scen.config = wild_config();
  Scenario sc = scen.build(wild_config().seed, std::move(reuse));
  World& w = *sc.world;

  ShardPolicy pol;
  pol.kind = kind;
  ShardedWorld sw(w, k, pol, /*seed=*/0xC0FFEE);
  if (faults) sw.set_fault_plan(full_campaign(), /*seed=*/515);

  TraceHasher hasher;
  w.add_observer(&hasher);
  for (int e = 0; e < 20'000; ++e) {
    if (!sw.epoch()) break;
  }
  sw.finalize();
  w.remove_observer(&hasher);
  if (faults) {
    EXPECT_GT(sw.faults_injected(), 0u);
  }
  if (retired != nullptr) *retired = std::move(sc.world);
  return ShardRun{hasher.hash(), w.steps(), w.sends(),
                  w.exits(),     sw.epochs(), sw.faults_injected(),
                  phi(w)};
}

class ShardInvariance
    : public testing::TestWithParam<std::tuple<ShardPolicy::Kind, bool>> {};

TEST_P(ShardInvariance, TraceIsShardCountInvariant) {
  const auto [kind, faults] = GetParam();
  const ShardRun one = sharded_run(1, kind, faults);
  EXPECT_GT(one.steps, 0u);
  for (unsigned k : {2u, 4u, 8u}) {
    const ShardRun many = sharded_run(k, kind, faults);
    EXPECT_TRUE(one == many) << "k=" << k << " diverged (hash "
                             << std::hex << many.hash << " vs " << one.hash
                             << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardInvariance,
    testing::Combine(testing::Values(ShardPolicy::Kind::Random,
                                     ShardPolicy::Kind::RoundRobin,
                                     ShardPolicy::Kind::Rounds,
                                     ShardPolicy::Kind::Adversarial),
                     testing::Bool()));

TEST(Sharded, ShardCountClampsToPopulation) {
  // k > n clamps to n one-process shards; the invariance must still hold.
  const ShardRun one = sharded_run(1, ShardPolicy::Kind::Random, false);
  const ShardRun many = sharded_run(64, ShardPolicy::Kind::Random, false);
  EXPECT_TRUE(one == many);
}

TEST(Sharded, ConvergesAndDrainsPhi) {
  const ShardRun r = sharded_run(4, ShardPolicy::Kind::Rounds, false);
  EXPECT_EQ(r.phi_final, 0u);
  EXPECT_GT(r.epochs, 0u);
}

TEST(Sharded, ResetReuseReplaysByteIdentically) {
  std::unique_ptr<World> retired;
  const ShardRun fresh =
      sharded_run(4, ShardPolicy::Kind::Random, true, nullptr, &retired);
  ASSERT_NE(retired, nullptr);
  const ShardRun reused =
      sharded_run(4, ShardPolicy::Kind::Random, true, std::move(retired));
  EXPECT_TRUE(fresh == reused);
}

// --- experiment-layer integration --------------------------------------

struct Fingerprint {
  std::uint64_t steps, sends, exits, sleeps, wakes, injected;
  std::uint64_t phi0, phi1;
  bool legit;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint exp_run(unsigned shards, SchedulerKind sk, bool faults) {
  Scenario sc = build_departure_scenario(wild_config());
  ExperimentSpec spec;
  spec.max_steps(400'000)
      .monitors(true, 1)
      .closure_steps(200)
      .shards(shards)
      .scheduler(SchedulerSpec::of(sk));
  if (faults) spec.faults(full_campaign());
  const RunResult r = run_to_legitimacy(sc, spec);
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_TRUE(r.safety_ok) << r.failure;
  EXPECT_TRUE(r.phi_monotone) << r.failure;
  EXPECT_TRUE(r.audit_ok) << r.failure;
  EXPECT_TRUE(r.closure_held);
  if (faults) {
    EXPECT_GE(r.faults_injected, 4u);  // at least the scheduled events
    EXPECT_EQ(r.faults_recovered, r.faults_injected);
    EXPECT_LT(r.recovery_steps_max, RecoveryMonitor::kNotRecovered);
  }
  return Fingerprint{r.steps,  r.sends, r.exits,       r.sleeps, r.wakes,
                     r.faults_injected, r.phi_initial, r.phi_final,
                     r.reached_legitimate};
}

class ShardedExperiment
    : public testing::TestWithParam<std::tuple<SchedulerKind, bool>> {};

TEST_P(ShardedExperiment, RunToLegitimacyIsShardCountInvariant) {
  const auto [sk, faults] = GetParam();
  const Fingerprint one = exp_run(1, sk, faults);
  const Fingerprint four = exp_run(4, sk, faults);
  EXPECT_TRUE(one == four);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardedExperiment,
    testing::Combine(testing::Values(SchedulerKind::Random,
                                     SchedulerKind::RoundRobin,
                                     SchedulerKind::Rounds,
                                     SchedulerKind::Adversarial),
                     testing::Bool()));

TEST(ShardedExperimentSpec, CountsEpochsAsRounds) {
  Scenario sc = build_departure_scenario(wild_config());
  ExperimentSpec spec;
  spec.max_steps(400'000)
      .shards(2)
      .scheduler(SchedulerSpec::of(SchedulerKind::Rounds));
  const RunResult r = run_to_legitimacy(sc, spec);
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_GT(r.rounds, 0u);
}

TEST(ShardedExperimentSpec, RejectsStatefulOracles) {
  ScenarioSpec scen;
  scen.config = wild_config();
  ExperimentSpec spec;
  spec.scenario(scen).shards(2);
  EXPECT_TRUE(spec.validate().empty());

  // quiet:* keeps a per-call counter — consultation-order-dependent.
  scen.config.oracle = "quiet:2";
  spec.scenario(scen);
  EXPECT_FALSE(spec.validate().empty());
  spec.shards(0);
  EXPECT_TRUE(spec.validate().empty());  // fine on the classic engine

  // The unreliable wrapper draws lies from a shared Rng stream.
  scen.config = wild_config();
  scen.config.oracle_p_false_neg = 0.5;
  spec.scenario(scen).shards(2);
  EXPECT_FALSE(spec.validate().empty());
  spec.shards(0);
  EXPECT_TRUE(spec.validate().empty());
}

}  // namespace
}  // namespace fdp
