#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fdp {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAlign) {
  Table t("t");
  t.set_header({"x", "yy"});
  t.add_row({"abcdef", "1"});
  const std::string out = t.render();
  // Each rendered line after the title must have the same length.
  std::size_t first_len = 0;
  std::size_t pos = out.find('\n') + 1;
  while (pos < out.size()) {
    const std::size_t end = out.find('\n', pos);
    if (end == std::string::npos) break;
    const std::size_t len = end - pos;
    if (first_len == 0) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = end + 1;
  }
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(-5)), "-5");
  EXPECT_EQ(Table::num(static_cast<std::uint64_t>(7)), "7");
  EXPECT_EQ(Table::fixed(1.2345, 2), "1.23");
  EXPECT_EQ(Table::pm(1.5, 0.25, 1), "1.5 +- 0.2");
}

TEST(TableDeath, RowArityMismatchAborts) {
  Table t("t");
  t.set_header({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = testing::TempDir() + "fdp_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.row({"1", "plain"});
    csv.row({"has,comma", "has\"quote"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"has\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fdp
