#include "core/legitimacy.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace fdp {
namespace {

using testsupport::ScriptedProcess;

struct Fixture {
  World w{1};
  std::vector<Ref> refs;

  /// modes[i]: true = leaving. Installs a bidirected line topology.
  explicit Fixture(const std::vector<bool>& leaving) {
    for (std::size_t i = 0; i < leaving.size(); ++i) {
      refs.push_back(w.spawn<ScriptedProcess>(
          leaving[i] ? Mode::Leaving : Mode::Staying, i));
    }
    for (std::size_t i = 0; i + 1 < leaving.size(); ++i) {
      link(i, i + 1);
      link(i + 1, i);
    }
  }
  void link(std::size_t a, std::size_t b) {
    w.process_as<ScriptedProcess>(static_cast<ProcessId>(a))
        .nbrs()
        .insert({refs[b], to_info(w.mode(static_cast<ProcessId>(b))), b});
  }
  void unlink(std::size_t a, std::size_t b) {
    w.process_as<ScriptedProcess>(static_cast<ProcessId>(a))
        .nbrs()
        .erase(refs[b]);
  }
};

TEST(Legitimacy, AllStayingConnectedIsLegitimate) {
  Fixture f({false, false, false});
  LegitimacyChecker checker(f.w, Exclusion::Gone);
  const auto v = checker.check(f.w);
  EXPECT_TRUE(v.legitimate()) << v.detail;
}

TEST(Legitimacy, LeavingStillAwakeIsNotLegitimate) {
  Fixture f({false, true, false});
  LegitimacyChecker checker(f.w, Exclusion::Gone);
  EXPECT_FALSE(checker.legitimate(f.w));
}

TEST(Legitimacy, LeavingGoneIsLegitimateOnceStayersLinked) {
  Fixture f({false, true, false});
  LegitimacyChecker checker(f.w, Exclusion::Gone);
  // Splice the stayers around the departing middle, then exit it.
  f.link(0, 2);
  f.unlink(0, 1);
  f.unlink(2, 1);
  f.w.force_life(1, LifeState::Gone);
  const auto v = checker.check(f.w);
  EXPECT_TRUE(v.legitimate()) << v.detail;
}

TEST(Legitimacy, GoneLeavingButStayersSplitViolatesIII) {
  Fixture f({false, true, false});
  LegitimacyChecker checker(f.w, Exclusion::Gone);
  // Middle exits without splicing: stayers 0 and 2 are now separated.
  f.unlink(0, 1);
  f.unlink(2, 1);
  f.w.force_life(1, LifeState::Gone);
  const auto v = checker.check(f.w);
  EXPECT_FALSE(v.components_preserved);
  EXPECT_FALSE(v.legitimate());
}

TEST(Legitimacy, StayingAsleepViolatesI) {
  Fixture f({false, false});
  LegitimacyChecker checker(f.w, Exclusion::Gone);
  f.w.force_life(0, LifeState::Asleep);
  const auto v = checker.check(f.w);
  EXPECT_FALSE(v.staying_awake);
}

TEST(Legitimacy, FspAcceptsHibernatingLeaving) {
  Fixture f({false, true});
  // Remove the stayer's link to the leaver so the leaver can hibernate;
  // the leaver may keep its anchor-like link to the stayer.
  f.unlink(0, 1);
  LegitimacyChecker checker(f.w, Exclusion::Hibernating);
  f.w.force_life(1, LifeState::Asleep);
  const auto v = checker.check(f.w);
  EXPECT_TRUE(v.legitimate()) << v.detail;
}

TEST(Legitimacy, FspRejectsAwakeReferencedSleeper) {
  Fixture f({false, true});
  // Stayer still references the sleeper: an awake ancestor prevents
  // hibernation.
  LegitimacyChecker checker(f.w, Exclusion::Hibernating);
  f.w.force_life(1, LifeState::Asleep);
  EXPECT_FALSE(checker.legitimate(f.w));
}

TEST(Legitimacy, EitherAcceptsGoneOrHibernating) {
  Fixture f({false, true, true});
  f.unlink(0, 1);
  f.unlink(1, 2);
  f.unlink(2, 1);
  f.unlink(1, 0);
  LegitimacyChecker checker(f.w, Exclusion::Either);
  f.w.force_life(1, LifeState::Gone);
  f.w.force_life(2, LifeState::Asleep);
  const auto v = checker.check(f.w);
  EXPECT_TRUE(v.legitimate()) << v.detail;
}

TEST(Legitimacy, SeparateInitialComponentsStaySeparate) {
  // Two disjoint pairs: legitimacy does NOT require joining them.
  World w(1);
  std::vector<Ref> refs;
  for (int i = 0; i < 4; ++i)
    refs.push_back(w.spawn<ScriptedProcess>(Mode::Staying, i));
  auto link = [&](ProcessId a, ProcessId b) {
    w.process_as<ScriptedProcess>(a).nbrs().insert(
        {refs[b], ModeInfo::Staying, b});
  };
  link(0, 1);
  link(1, 0);
  link(2, 3);
  link(3, 2);
  LegitimacyChecker checker(w, Exclusion::Gone);
  EXPECT_TRUE(checker.legitimate(w));
  EXPECT_EQ(checker.initial_components().count, 2u);
}

TEST(Legitimacy, SafetyHoldsTracksRelevantConnectivity) {
  Fixture f({false, true, false});
  LegitimacyChecker checker(f.w, Exclusion::Gone);
  EXPECT_TRUE(checker.safety_holds(f.w));
  // Cut the middle out while it is still relevant: the relevant subgraph
  // splits into {0},{1?}.. removing links both ways around 1.
  f.unlink(0, 1);
  f.unlink(1, 0);
  f.unlink(1, 2);
  f.unlink(2, 1);
  EXPECT_FALSE(checker.safety_holds(f.w));
  // Once 1 is gone, only stayers 0 and 2 matter — still split.
  f.w.force_life(1, LifeState::Gone);
  EXPECT_FALSE(checker.safety_holds(f.w));
}

}  // namespace
}  // namespace fdp
