// RowArena unit tests: the slab-pooled row storage behind the world's
// edge-instance index (ISSUE 9). The interesting paths are the recycling
// machinery — pow2 span growth through the per-class free lists, in-place
// tail extension at the bump cursor, and dying-slab tail carving — plus
// the steady-state contract: once every row has reached its high-water
// capacity, further mutation performs zero heap allocations.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/alloc_stats.hpp"
#include "util/row_arena.hpp"
#include "util/rng.hpp"

namespace fdp {
namespace {

struct Pair {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  bool operator==(const Pair& o) const { return a == o.a && b == o.b; }
};

using Arena = RowArena<Pair>;
using Row = Arena::Row;

TEST(RowArena, PushBackGrowsThroughPow2Capacities) {
  Arena arena;
  Row r;
  for (std::uint32_t i = 0; i < 100; ++i) {
    arena.push_back(r, Pair{i, i * 2});
    ASSERT_EQ(r.size(), i + 1u);
    // Capacity is always a power of two >= 4.
    ASSERT_GE(r.capacity(), 4u);
    ASSERT_EQ(r.capacity() & (r.capacity() - 1), 0u);
  }
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(r[i].a, i);
    EXPECT_EQ(r[i].b, i * 2);
  }
}

TEST(RowArena, AssignReplacesContentsAndReusesSpan) {
  Arena arena;
  Row r;
  std::vector<Pair> src;
  for (std::uint32_t i = 0; i < 6; ++i) src.push_back(Pair{i, 100 + i});
  arena.assign(r, src.data(), src.size());
  ASSERT_EQ(r.size(), 6u);
  const Pair* span = r.begin();
  // A shorter assign must reuse the same span (capacity kept).
  arena.assign(r, src.data(), 3);
  EXPECT_EQ(r.begin(), span);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.equals(src.data(), 3));
  EXPECT_FALSE(r.equals(src.data(), 6));
}

TEST(RowArena, RecyclesOutgrownSpansThroughFreeLists) {
  Arena arena;
  // Grow one row 4 -> 8 -> 16: the abandoned 4- and 8-spans must be
  // recycled, so two later rows of those sizes add no slab footprint.
  Row big;
  for (std::uint32_t i = 0; i < 16; ++i) arena.push_back(big, Pair{i, i});
  const std::size_t after_grow = arena.heap_bytes();
  Row small_a, small_b;
  for (std::uint32_t i = 0; i < 4; ++i) arena.push_back(small_a, Pair{i, 1});
  for (std::uint32_t i = 0; i < 8; ++i) arena.push_back(small_b, Pair{i, 2});
  EXPECT_EQ(arena.heap_bytes(), after_grow);  // served from free lists
  // All three rows stay intact — spans never alias.
  for (std::uint32_t i = 0; i < 16; ++i) EXPECT_EQ(big[i].a, i);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(small_a[i].b, 1u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(small_b[i].b, 2u);
}

TEST(RowArena, ManyRowsRandomizedAgainstVectorModel) {
  Arena arena;
  Rng rng(42);
  constexpr std::size_t kRows = 257;
  std::vector<Row> rows(kRows);
  std::vector<std::vector<Pair>> model(kRows);
  for (std::uint64_t step = 0; step < 20'000; ++step) {
    const std::size_t r = rng.below(kRows);
    const std::uint64_t op = rng.below(10);
    if (op < 6) {
      const Pair p{static_cast<std::uint32_t>(rng()),
                   static_cast<std::uint32_t>(rng())};
      arena.push_back(rows[r], p);
      model[r].push_back(p);
    } else if (op < 8 && !model[r].empty()) {
      // Swap-remove, the index's counts_remove idiom.
      const std::size_t at = rng.below(model[r].size());
      rows[r][at] = rows[r].back();
      rows[r].pop_back();
      model[r][at] = model[r].back();
      model[r].pop_back();
    } else if (op == 8) {
      rows[r].clear();
      model[r].clear();
    } else {
      // assign from another row's model (the rebuild-row idiom).
      const std::size_t s = rng.below(kRows);
      arena.assign(rows[r], model[s].data(), model[s].size());
      model[r] = model[s];
    }
  }
  for (std::size_t r = 0; r < kRows; ++r) {
    ASSERT_EQ(rows[r].size(), model[r].size());
    EXPECT_TRUE(rows[r].equals(model[r].data(), model[r].size()));
  }
}

TEST(RowArena, SteadyStateMutationIsAllocationFree) {
  if (!alloc_stats::hooked()) GTEST_SKIP() << "alloc hook not linked";
  Arena arena;
  constexpr std::size_t kRows = 64;
  std::vector<Row> rows(kRows);
  // Warm to high water: every row reaches capacity 16.
  for (std::size_t r = 0; r < kRows; ++r)
    for (std::uint32_t i = 0; i < 16; ++i)
      arena.push_back(rows[r], Pair{i, i});
  for (std::size_t r = 0; r < kRows; ++r) rows[r].clear();
  const alloc_stats::Counters before = alloc_stats::snapshot();
  // Churn within capacity: clear/refill cycles must never hit the heap.
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (std::size_t r = 0; r < kRows; ++r) {
      for (std::uint32_t i = 0; i < 16; ++i)
        arena.push_back(rows[r], Pair{i, static_cast<std::uint32_t>(cycle)});
      rows[r].clear();
    }
  }
  EXPECT_EQ(alloc_stats::allocs_since(before), 0u);
}

}  // namespace
}  // namespace fdp
