// Multi-component worlds: the paper's legitimacy condition (iii) is
// per-initial-component — disjoint islands must each stay internally
// connected, but nothing may require joining them.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "analysis/monitors.hpp"
#include "core/departure_process.hpp"
#include "core/legitimacy.hpp"
#include "core/oracle.hpp"
#include "sim/world.hpp"

namespace fdp {
namespace {

/// Two disjoint bidirected lines with one leaver each; each island keeps
/// at least one stayer (the paper's standing assumption).
struct TwoIslands {
  World w{7};
  std::vector<Ref> refs;

  TwoIslands() {
    // Island A: 0(S) - 1(L) - 2(S); island B: 3(S) - 4(L).
    const Mode modes[5] = {Mode::Staying, Mode::Leaving, Mode::Staying,
                           Mode::Staying, Mode::Leaving};
    for (int i = 0; i < 5; ++i)
      refs.push_back(
          w.spawn<DepartureProcess>(modes[i], 100 + i * 10));
    link(0, 1);
    link(1, 0);
    link(1, 2);
    link(2, 1);
    link(3, 4);
    link(4, 3);
    w.set_oracle(make_single_oracle());
  }
  void link(ProcessId a, ProcessId b) {
    w.process_as<DepartureProcess>(a).nbrs_mut().insert(
        RefInfo{refs[b], to_info(w.mode(b)), w.process(b).key()});
  }
};

TEST(Components, EachIslandReachesLegitimacyIndependently) {
  TwoIslands t;
  LegitimacyChecker checker(t.w, Exclusion::Gone);
  ASSERT_EQ(checker.initial_components().count, 2u);
  SafetyMonitor safety(t.w, 1);
  t.w.add_observer(&safety);
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  bool legit = false;
  for (int i = 0; i < 100'000 && !legit; ++i) {
    (void)t.w.step(*sched);
    if (i % 64 == 0) legit = checker.legitimate(t.w);
  }
  EXPECT_TRUE(legit) << checker.check(t.w).detail;
  EXPECT_TRUE(safety.ok());
  EXPECT_EQ(t.w.exits(), 2u);
}

TEST(Components, IslandsNeverMerge) {
  TwoIslands t;
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  for (int i = 0; i < 20'000; ++i) (void)t.w.step(*sched);
  // No reference may ever cross islands: copy-store-send cannot invent
  // one, and the kernel audit would catch fabrication. Verify directly.
  const Snapshot s = take_snapshot(t.w);
  for (ProcessId p = 0; p < 3; ++p) {
    for (const RefInfo& r : s.stored[p]) EXPECT_LT(r.ref.id(), 3u);
    for (const RefInfo& r : s.in_flight[p]) EXPECT_LT(r.ref.id(), 3u);
  }
  for (ProcessId p = 3; p < 5; ++p) {
    for (const RefInfo& r : s.stored[p]) EXPECT_GE(r.ref.id(), 3u);
    for (const RefInfo& r : s.in_flight[p]) EXPECT_GE(r.ref.id(), 3u);
  }
}

TEST(Components, CrossIslandDisconnectionOfOneIslandIsDetected) {
  // Sanity of the per-component check: breaking ONE island's internal
  // connectivity must flip the verdict even though the other island is
  // fine.
  TwoIslands t;
  LegitimacyChecker checker(t.w, Exclusion::Gone);
  // Cut island A's stayers apart around the (still relevant) leaver.
  auto& p0 = t.w.process_as<DepartureProcess>(0);
  auto& p1 = t.w.process_as<DepartureProcess>(1);
  auto& p2 = t.w.process_as<DepartureProcess>(2);
  p0.nbrs_mut().erase(t.refs[1]);
  p1.nbrs_mut().erase(t.refs[0]);
  p1.nbrs_mut().erase(t.refs[2]);
  p2.nbrs_mut().erase(t.refs[1]);
  EXPECT_FALSE(checker.safety_holds(t.w));
}

}  // namespace
}  // namespace fdp
