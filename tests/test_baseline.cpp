// The Foreback-style sorted-list baseline: works on its home topology,
// demonstrating the contrast experiment E5 quantifies.
#include "baseline/sorted_list_departure.hpp"

#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "core/oracle.hpp"

namespace fdp {
namespace {

TEST(Baseline, StayersLinearizeFromScrambledState) {
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "wild";
  cfg.leave_fraction = 0.0;
  cfg.seed = 3;
  Scenario sc = build_baseline_scenario(cfg);
  RandomScheduler sched;
  for (int i = 0; i < 80'000; ++i) (void)sc.world->step(sched);
  // Every process must know its sorted-order neighbors (at least).
  std::vector<ProcessId> by_key;
  for (ProcessId p = 0; p < sc.world->size(); ++p) by_key.push_back(p);
  std::sort(by_key.begin(), by_key.end(), [&](ProcessId a, ProcessId b) {
    return sc.world->process(a).key() < sc.world->process(b).key();
  });
  for (std::size_t i = 0; i + 1 < by_key.size(); ++i) {
    const auto& left =
        sc.world->process_as<SortedListDeparture>(by_key[i]);
    EXPECT_TRUE(left.nbrs().contains(sc.refs[by_key[i + 1]]))
        << "gap between rank " << i << " and " << i + 1;
  }
}

class BaselineDepartures : public testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineDepartures, ExcludesLeaversOnListWorkload) {
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "line";  // its home topology (by id; keys are random)
  cfg.leave_fraction = 0.3;
  cfg.seed = GetParam();
  Scenario sc = build_baseline_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(600'000);
  const RunResult r = run_to_legitimacy(sc, opt);
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_EQ(r.exits, sc.leaving_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineDepartures,
                         testing::Range<std::uint64_t>(1, 9));

TEST(Baseline, NidecGateRespectsInFlightReferences) {
  // A leaving process must not exit while someone still references it.
  World w(1);
  const Ref a = w.spawn<SortedListDeparture>(Mode::Leaving, 10);
  const Ref b = w.spawn<SortedListDeparture>(Mode::Staying, 20);
  w.process_as<SortedListDeparture>(1).nbrs_mut().insert(
      {a, ModeInfo::Leaving, 10});
  w.set_oracle(make_nidec_oracle());
  (void)b;
  // Timeout the leaver directly: oracle must refuse (b references it).
  struct One : Scheduler {
    bool fired = false;
    ActionChoice next(const KernelView&, Rng&) override {
      if (fired) return ActionChoice::none();
      fired = true;
      return ActionChoice::timeout(0);
    }
  } s;
  ASSERT_TRUE(w.step(s));
  EXPECT_EQ(w.life(0), LifeState::Awake);
}

TEST(Baseline, BypassSplicesNeighbors) {
  World w(1);
  std::vector<Ref> refs;
  refs.push_back(w.spawn<SortedListDeparture>(Mode::Staying, 10));
  refs.push_back(w.spawn<SortedListDeparture>(Mode::Leaving, 20));
  refs.push_back(w.spawn<SortedListDeparture>(Mode::Staying, 30));
  auto link = [&](ProcessId x, ProcessId y, ModeInfo m) {
    w.process_as<SortedListDeparture>(x).nbrs_mut().insert(
        {refs[y], m, w.process(y).key()});
  };
  link(0, 1, ModeInfo::Leaving);
  link(1, 0, ModeInfo::Staying);
  link(1, 2, ModeInfo::Staying);
  link(2, 1, ModeInfo::Leaving);
  w.set_oracle(make_nidec_oracle());
  RandomScheduler sched;
  for (int i = 0; i < 40'000 && w.exits() == 0; ++i) (void)w.step(sched);
  EXPECT_EQ(w.exits(), 1u);
  // The stayers are spliced together.
  EXPECT_TRUE(
      w.process_as<SortedListDeparture>(0).nbrs().contains(refs[2]));
  EXPECT_TRUE(
      w.process_as<SortedListDeparture>(2).nbrs().contains(refs[0]));
}

TEST(Baseline, RequiresKeysUnlikeOurProtocol) {
  // Documentation-as-test: the baseline reads keys (closest_left/right);
  // the paper's protocol never does. We verify the baseline's behavior
  // DEPENDS on keys by checking that its kept neighbors are key-ordered.
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.topology = "clique";
  cfg.leave_fraction = 0.0;
  cfg.seed = 4;
  Scenario sc = build_baseline_scenario(cfg);
  RandomScheduler sched;
  for (int i = 0; i < 60'000; ++i) (void)sc.world->step(sched);
  // From a clique, linearization prunes to the sorted list: every node
  // keeps at most 2 neighbors.
  for (ProcessId p = 0; p < sc.world->size(); ++p) {
    EXPECT_LE(
        sc.world->process_as<SortedListDeparture>(p).nbrs().size(), 2u);
  }
}

}  // namespace
}  // namespace fdp
