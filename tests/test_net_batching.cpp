// Batched hot-path tests for the live runtime: ring-buffer wrap-around,
// timer-wheel cascade exactness, frame-arena recycling, partial batch
// completion (a medium that accepts only a prefix), retransmit-on-loss on
// a drop-injecting medium, duplicate-frame idempotence, and the
// zero-allocation steady-state pump.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/monitors.hpp"
#include "analysis/scenario.hpp"
#include "net/frame_arena.hpp"
#include "net/live_scenario.hpp"
#include "net/runtime.hpp"
#include "net/timer_wheel.hpp"
#include "net/wire.hpp"
#include "overlay/topology_checks.hpp"
#include "util/alloc_stats.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

namespace fdp::net {
namespace {

// --- RingBuffer ---

TEST(RingBuffer, WrapAroundKeepsFifoOrderThroughGrowth) {
  RingBuffer<int> rb;
  std::deque<int> model;
  Rng rng(7);
  int next = 0;
  for (int step = 0; step < 10'000; ++step) {
    if (model.empty() || rng.below(2) == 0) {
      rb.push_back(next);
      model.push_back(next);
      ++next;
    } else {
      ASSERT_EQ(rb.front(), model.front());
      rb.pop_front();
      model.pop_front();
    }
    ASSERT_EQ(rb.size(), model.size());
    if (!model.empty()) {
      const std::size_t i = rng.below(model.size());
      ASSERT_EQ(rb.at(i), model[i]);
    }
  }
}

TEST(RingBuffer, PoppedSlotsAreRecycledWithTheirCapacity) {
  RingBuffer<std::vector<int>> rb;
  std::vector<const int*> storage;
  for (int i = 0; i < 8; ++i) rb.push_slot().assign(50, i);
  ASSERT_EQ(rb.capacity(), 8u);  // exactly full: the next lap reuses slots
  for (std::size_t i = 0; i < 8; ++i) storage.push_back(rb.at(i).data());
  for (int i = 0; i < 8; ++i) rb.pop_front();
  EXPECT_TRUE(rb.empty());
  for (int i = 0; i < 8; ++i) {
    std::vector<int>& slot = rb.push_slot();
    // pop_front did not destroy the occupant: same heap storage, same
    // contents, ready for in-place reuse.
    EXPECT_EQ(slot.data(), storage[static_cast<std::size_t>(i)]);
    EXPECT_EQ(slot.size(), 50u);
  }
}

// --- TimerWheel ---

TEST(TimerWheel, FiresAtExactTickAcrossLevelBoundaries) {
  // Delays straddling every level boundary: 64^1, 64^2, 64^3.
  for (const std::uint64_t delay :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{63},
        std::uint64_t{64}, std::uint64_t{65}, std::uint64_t{4095},
        std::uint64_t{4096}, std::uint64_t{4097}, std::uint64_t{262143},
        std::uint64_t{262144}, std::uint64_t{300000}}) {
    TimerWheel w;
    std::uint64_t fired_at = 0;
    std::size_t fires = 0;
    w.schedule(delay, 42);
    w.advance(delay + 10, [&](std::uint64_t p) {
      EXPECT_EQ(p, 42u);
      fired_at = w.now();
      ++fires;
    });
    EXPECT_EQ(fires, 1u) << "delay " << delay;
    EXPECT_EQ(fired_at, delay) << "cascade drift at delay " << delay;
    EXPECT_EQ(w.armed(), 0u);
  }
}

TEST(TimerWheel, SameTickFiresInInsertionOrder) {
  TimerWheel w;
  std::vector<std::uint64_t> order;
  // Delay 100 parks in level 1; the cascade must preserve insertion order
  // while re-distributing into level 0.
  for (std::uint64_t p = 0; p < 10; ++p) w.schedule(100, p);
  w.advance(100, [&](std::uint64_t p) { order.push_back(p); });
  const std::vector<std::uint64_t> expect{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, expect);
}

TEST(TimerWheel, RandomizedScheduleFiresEveryTimerExactlyOnce) {
  TimerWheel w;
  Rng rng(1234);
  std::unordered_map<std::uint64_t, std::uint64_t> when_of;
  std::uint64_t next_payload = 0;
  std::size_t fired = 0;
  std::uint64_t now = 0;
  const auto fire = [&](std::uint64_t p) {
    ++fired;
    const auto it = when_of.find(p);
    ASSERT_NE(it, when_of.end());
    EXPECT_EQ(w.now(), it->second);
    when_of.erase(it);  // firing twice would fail the find above
  };
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t delay = rng.below(300'000) + 1;
      when_of[next_payload] = now + delay;
      w.schedule(now + delay, next_payload++);
    }
    now += rng.below(40'000) + 1;
    w.advance(now, fire);
  }
  w.advance(now + 600'000, fire);  // drain everything still armed
  EXPECT_EQ(fired, next_payload);
  EXPECT_EQ(w.armed(), 0u);
  EXPECT_TRUE(when_of.empty());
}

TEST(TimerWheel, BeyondHorizonClampsButStillFires) {
  TimerWheel w;
  std::uint64_t fired_at = 0;
  w.schedule(w.horizon() + 5'000, 7);
  w.advance(w.horizon(), [&](std::uint64_t) { fired_at = w.now(); });
  EXPECT_EQ(fired_at, w.horizon());
  EXPECT_EQ(w.armed(), 0u);
}

// --- FrameArena ---

TEST(FrameArena, ReleasedSlotsAreReacquired) {
  FrameArena arena(128);
  const FrameArena::Buf a = arena.acquire(100);
  ASSERT_NE(a.data, nullptr);
  EXPECT_EQ(a.cap, 128u);
  arena.release(a);
  EXPECT_EQ(arena.slots(), 1u);
  EXPECT_EQ(arena.free_slots(), 1u);
  const FrameArena::Buf b = arena.acquire(50);
  EXPECT_EQ(b.data, a.data);  // freelist hit, no new slot
  EXPECT_EQ(arena.slots(), 1u);
  arena.release(b);
  EXPECT_EQ(arena.oversize_acquires(), 0u);
}

TEST(FrameArena, OversizeFramesSpillAndAreCounted) {
  FrameArena arena(128);
  const FrameArena::Buf big = arena.acquire(1000);
  ASSERT_NE(big.data, nullptr);
  EXPECT_EQ(big.cap, 1000u);
  EXPECT_EQ(big.slot, FrameArena::kOversize);
  EXPECT_EQ(arena.oversize_acquires(), 1u);
  EXPECT_EQ(arena.slots(), 0u);  // the slab is untouched
  arena.release(big);            // exact heap buffer freed, not pooled
  EXPECT_EQ(arena.free_slots(), 0u);
}

TEST(FrameArena, OversizeFrameRoundTripsThroughWireCodec) {
  // A message with enough references encodes past the default 512-byte
  // slot; the arena must hand out an exact-sized spill buffer that the
  // normal encode/decode path treats like any slot.
  FrameArena arena;  // default 512-byte slots
  Message m;
  m.set_verb(Verb::User);
  m.set_tag(77u);
  m.token = 0xdeadbeefcafef00dULL;
  m.seq = 41;
  for (std::size_t i = 0; i < 40; ++i)
    m.refs.push_back(RefInfo{Ref::make(static_cast<ProcessId>(i + 1)),
                             ModeInfo::Staying, 1000 + i});
  const std::size_t sz = encoded_size(m);
  ASSERT_GT(sz, arena.slot_bytes());
  FrameArena::Buf b = arena.acquire(sz);
  ASSERT_NE(b.data, nullptr);
  EXPECT_EQ(b.slot, FrameArena::kOversize);
  EXPECT_EQ(b.cap, sz);
  EXPECT_EQ(arena.oversize_acquires(), 1u);
  b.len = static_cast<std::uint32_t>(encode_frame(m, 3, 9, b.data, b.cap));
  EXPECT_EQ(b.len, sz);
  DecodedFrame out;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(b.data, b.len, out, &consumed), WireError::None);
  EXPECT_EQ(consumed, sz);
  EXPECT_EQ(out.src, ProcessId{3});
  EXPECT_EQ(out.dst, ProcessId{9});
  EXPECT_EQ(out.msg.verb(), m.verb());
  EXPECT_EQ(out.msg.tag(), m.tag());
  EXPECT_EQ(out.msg.token, m.token);
  ASSERT_EQ(out.msg.refs.size(), m.refs.size());
  for (std::size_t i = 0; i < m.refs.size(); ++i) {
    EXPECT_EQ(out.msg.refs[i].ref, m.refs[i].ref);
    EXPECT_EQ(out.msg.refs[i].mode, m.refs[i].mode);
    EXPECT_EQ(out.msg.refs[i].key, m.refs[i].key);
  }
  arena.release(b);
  EXPECT_EQ(arena.slots(), 0u);
}

TEST(FrameArena, RecycledOversizeBuffersDoNotLeak) {
  if (!alloc_stats::hooked()) GTEST_SKIP() << "alloc hook not linked";
  FrameArena arena(64);
  const alloc_stats::Counters before = alloc_stats::snapshot();
  constexpr std::uint64_t kRounds = 256;
  for (std::uint64_t i = 0; i < kRounds; ++i) {
    FrameArena::Buf b = arena.acquire(4096);
    ASSERT_EQ(b.slot, FrameArena::kOversize);
    b.data[0] = static_cast<std::uint8_t>(i);
    arena.release(b);
  }
  const alloc_stats::Counters after = alloc_stats::snapshot();
  // Every oversize acquire allocates exactly one exact-sized buffer and
  // release frees it: allocs and deallocs advance in lockstep, nothing
  // accumulates in the arena (oversize buffers are never pooled).
  EXPECT_EQ(after.allocs - before.allocs, kRounds);
  EXPECT_EQ(after.deallocs - before.deallocs, kRounds);
  EXPECT_EQ(arena.oversize_acquires(), kRounds);
  EXPECT_EQ(arena.slots(), 0u);
  EXPECT_EQ(arena.free_slots(), 0u);
}

// --- runtime-level batching behavior ---

ScenarioConfig churn_config(std::uint64_t seed, std::size_t n = 12) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.25;
  cfg.invalid_mode_prob = 0.2;
  cfg.seed = seed;
  return cfg;
}

bool run_to_departures(LiveScenario& sc, std::uint64_t max_pumps = 100'000,
                       int timeout_ms = 0) {
  return sc.net->run_until(
      [](const NetRuntime& rt) { return all_leaving_gone(rt); }, max_pumps,
      timeout_ms);
}

/// Medium that accepts at most `max_per_call` frames per batch call — the
/// deterministic stand-in for sendmmsg returning a partial completion.
class ChokedMemTransport final : public MemTransport {
 public:
  explicit ChokedMemTransport(std::size_t max_per_call)
      : max_(max_per_call) {}
  std::size_t try_send_many(ProcessId src, const FrameView* frames,
                            std::size_t count) override {
    max_batch_offered_ = std::max(max_batch_offered_, count);
    return MemTransport::try_send_many(src, frames,
                                       std::min(count, max_));
  }
  [[nodiscard]] std::size_t max_batch_offered() const {
    return max_batch_offered_;
  }

 private:
  std::size_t max_;
  std::size_t max_batch_offered_ = 0;
};

TEST(NetRuntime, PartialBatchCompletionLosesNothing) {
  auto transport = std::make_unique<ChokedMemTransport>(3);
  ChokedMemTransport* choked = transport.get();
  LiveScenario sc = build_live_framework_scenario(
      churn_config(21), "linearization", std::move(transport));
  SafetyMonitor safety(*sc.net);
  sc.net->add_observer(&safety);
  ASSERT_TRUE(run_to_departures(sc));
  // The runtime really offered batches larger than the medium would take,
  // so the accepted-prefix path (keep the tail queued, retry next pump)
  // was exercised — and nothing was lost or double-sent along the way.
  EXPECT_GT(choked->max_batch_offered(), 3u);
  EXPECT_EQ(sc.net->exits(), sc.leaving_count);
  EXPECT_TRUE(safety.ok()) << safety.violations().size()
                           << " safety violations";
  EXPECT_EQ(sc.net->wire_errors(), 0u);
  EXPECT_EQ(sc.net->stale_frames(), 0u);
}

TEST(NetRuntime, DroppedFramesAreRetransmittedToCompletion) {
  auto transport = std::make_unique<DropMemTransport>(7);
  DropMemTransport* drop = transport.get();
  LiveScenario sc = build_live_framework_scenario(
      churn_config(23), "linearization", std::move(transport));
  SafetyMonitor safety(*sc.net);
  sc.net->add_observer(&safety);
  ASSERT_TRUE(run_to_departures(sc));
  // The medium really destroyed frames, the retransmit timers really
  // re-queued them, and every departure still completed safely: loss is a
  // liveness delay, never a safety violation (DESIGN.md, fault model).
  EXPECT_GT(drop->dropped(), 0u);
  EXPECT_GT(sc.net->retransmits(), 0u);
  EXPECT_EQ(sc.net->exits(), sc.leaving_count);
  EXPECT_TRUE(safety.ok()) << safety.violations().size()
                           << " safety violations";
  EXPECT_EQ(sc.net->wire_errors(), 0u);
}

TEST(NetRuntime, DropRunsAreDeterministic) {
  const auto run = [] {
    LiveScenario sc = build_live_framework_scenario(
        churn_config(25), "linearization",
        std::make_unique<DropMemTransport>(5));
    EXPECT_TRUE(run_to_departures(sc));
    return std::to_string(sc.net->clock()) + "/" +
           std::to_string(sc.net->retransmits()) + "/" +
           std::to_string(sc.net->exits());
  };
  EXPECT_EQ(run(), run());
}

/// Medium that delivers every 5th frame twice — retransmit echoes without
/// the timing. The ledger must treat arrivals as idempotent.
class DupMemTransport final : public MemTransport {
 public:
  bool try_send(ProcessId src, ProcessId dst, const std::uint8_t* data,
                std::size_t len) override {
    const bool ok = MemTransport::try_send(src, dst, data, len);
    if (ok && ++accepted_ % 5 == 0)
      (void)MemTransport::try_send(src, dst, data, len);
    return ok;
  }

 private:
  std::uint64_t accepted_ = 0;
};

TEST(NetRuntime, DuplicateFramesAreDroppedAsStale) {
  LiveScenario sc = build_live_framework_scenario(
      churn_config(27), "linearization", std::make_unique<DupMemTransport>());
  SafetyMonitor safety(*sc.net);
  sc.net->add_observer(&safety);
  ASSERT_TRUE(run_to_departures(sc));
  EXPECT_GT(sc.net->stale_frames(), 0u);  // the dups were seen and dropped
  EXPECT_EQ(sc.net->exits(), sc.leaving_count);
  EXPECT_TRUE(safety.ok()) << safety.violations().size()
                           << " safety violations";
  EXPECT_EQ(sc.net->wire_errors(), 0u);
}

/// Sends one burst of `burst` messages to a single target on its first
/// timeout, then goes quiet.
class BurstProcess final : public Process {
 public:
  BurstProcess(Ref self, Mode mode, std::uint64_t key)
      : Process(self, mode, key) {}
  void set_target(Ref to, int burst) {
    to_ = to;
    burst_ = burst;
  }
  void on_timeout(Context& ctx) override {
    for (int i = 0; i < burst_; ++i)
      ctx.send(to_, Message{Verb::User, static_cast<std::uint32_t>(i), 0,
                            {self_info()}});
    burst_ = 0;
  }
  void on_message(Context&, const Message&) override { ++received_; }
  void collect_refs(std::vector<RefInfo>& out) const override {
    out.push_back(RefInfo{to_, ModeInfo::Unknown, 0});
  }
  [[nodiscard]] const char* protocol_name() const override { return "burst"; }
  [[nodiscard]] int received() const { return received_; }

 private:
  Ref to_;
  int burst_ = 0;
  int received_ = 0;
};

int run_burst(bool coalesce, TransportStats* out) {
  NetConfig rcfg;
  rcfg.seed = 5;
  rcfg.coalesce_frames = coalesce;
  auto transport = std::make_unique<MemTransport>();
  MemTransport* mem = transport.get();
  NetRuntime rt(std::move(transport), rcfg);
  for (ProcessId id = 0; id < 2; ++id)
    (void)rt.spawn<BurstProcess>(Mode::Staying, id + 1);
  rt.process_as<BurstProcess>(0).set_target(Ref::make(1), 5);
  rt.process_as<BurstProcess>(1).set_target(Ref::make(0), 0);
  rt.start();
  for (int i = 0; i < 1'000 && rt.process_as<BurstProcess>(1).received() < 5;
       ++i)
    rt.pump(0);
  *out = mem->stats();
  return rt.process_as<BurstProcess>(1).received();
}

TEST(NetRuntime, CoalescingPacksABurstIntoOneDatagram) {
  // Five 57-byte frames to the same peer, enqueued by one action: with
  // coalescing they fit a single arena slot and cross the medium as one
  // datagram the receiver unpacks; without it, five datagrams carry the
  // same bytes. Delivery is identical either way.
  TransportStats packed{}, loose{};
  EXPECT_EQ(run_burst(true, &packed), 5);
  EXPECT_EQ(run_burst(false, &loose), 5);
  EXPECT_EQ(packed.frames_sent, 1u);
  EXPECT_EQ(packed.frames_received, 1u);
  EXPECT_EQ(loose.frames_sent, 5u);
  EXPECT_EQ(loose.frames_received, 5u);
}

/// Minimal traffic generator whose handlers never allocate: each timeout
/// pings the next peer round-robin with one inline-reference message.
/// Framework protocols allocate inside their own handlers (pending lists,
/// snapshot vectors — the same cost on the simulator path), so the
/// zero-allocation claim is pinned on the runtime's machinery — admit,
/// encode, flush, medium, decode, deliver, timers — with a workload that
/// adds nothing of its own.
class PingProcess final : public Process {
 public:
  PingProcess(Ref self, Mode mode, std::uint64_t key)
      : Process(self, mode, key) {}
  void set_peers(std::vector<Ref> peers) { peers_ = std::move(peers); }
  void on_timeout(Context& ctx) override {
    if (peers_.empty()) return;
    const Ref to = peers_[next_++ % peers_.size()];
    ctx.send(to, Message{Verb::User, 0, 0, {self_info()}});
  }
  void on_message(Context&, const Message&) override {}
  void collect_refs(std::vector<RefInfo>& out) const override {
    for (const Ref r : peers_)
      out.push_back(RefInfo{r, ModeInfo::Unknown, 0});
  }
  [[nodiscard]] const char* protocol_name() const override { return "ping"; }

 private:
  std::vector<Ref> peers_;
  std::size_t next_ = 0;
};

TEST(NetRuntime, SteadyStatePumpIsAllocationFree) {
  if (!alloc_stats::hooked())
    GTEST_SKIP() << "allocation hook not linked into this binary";
  NetConfig rcfg;
  rcfg.seed = 99;
  auto rt = std::make_unique<NetRuntime>(std::make_unique<MemTransport>(),
                                         rcfg);
  constexpr ProcessId kN = 16;
  for (ProcessId id = 0; id < kN; ++id)
    (void)rt->spawn<PingProcess>(Mode::Staying, id + 1);
  for (ProcessId id = 0; id < kN; ++id) {
    std::vector<Ref> peers;
    for (ProcessId p = 0; p < kN; ++p)
      if (p != id) peers.push_back(Ref::make(p));
    rt->process_as<PingProcess>(id).set_peers(std::move(peers));
  }
  rt->start();
  // Warm-up: every pool, ring, arena, wheel slot and hash table reaches
  // its high-water capacity. Burst sizes (timers per wheel slot, frames
  // per inbox per pump) set new records ~logarithmically over time, so
  // the warm-up must dwarf the measured window; the run is deterministic
  // (seeded rng, in-memory medium), so a clean window stays clean.
  for (int i = 0; i < 60'000; ++i) rt->pump(0);
  const alloc_stats::Counters before = alloc_stats::snapshot();
  std::uint64_t executed = 0;
  for (int i = 0; i < 2'000; ++i) executed += rt->pump(0);
  EXPECT_GT(executed, 1'000u) << "window measured an idle loop, not load";
  EXPECT_EQ(alloc_stats::allocs_since(before), 0u)
      << "pump allocated during steady state (" << executed
      << " actions executed in the window)";
}

}  // namespace
}  // namespace fdp::net
