// Overlay maintenance protocols P in isolation (PlainOverlayHost, no
// departures): each must converge to its legitimate topology from random
// weakly connected initial states — topological self-stabilization.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "core/primitives.hpp"
#include "graph/generators.hpp"
#include "overlay/ring.hpp"
#include "overlay/topology_checks.hpp"
#include "sim/world.hpp"

namespace fdp {
namespace {

struct PlainWorld {
  World w;
  std::vector<Ref> refs;

  PlainWorld(const std::string& overlay, std::size_t n, std::uint64_t seed,
             const char* topo = "wild")
      : w(seed) {
    Rng rng(seed * 1000 + 7);
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < n; ++i) keys.push_back(rng() | 1);
    for (std::size_t i = 0; i < n; ++i) {
      refs.push_back(w.spawn<PlainOverlayHost>(Mode::Staying, keys[i],
                                               make_overlay(overlay)));
    }
    const DiGraph g = gen::by_name(topo, n, rng);
    for (const auto& [u, v] : g.simple_edges()) {
      w.process_as<PlainOverlayHost>(u).overlay_mut().integrate(
          RefInfo{refs[v], ModeInfo::Staying, keys[v]});
    }
  }

  bool converge(const std::string& overlay, int max_blocks = 400) {
    RandomScheduler sched;
    for (int block = 0; block < max_blocks; ++block) {
      for (int i = 0; i < 250; ++i) (void)w.step(sched);
      if (check_topology(w, overlay).converged) return true;
    }
    return false;
  }
};

class OverlayConvergence
    : public testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(OverlayConvergence, ReachesLegitimateTopology) {
  const auto [overlay, seed] = GetParam();
  PlainWorld pw(overlay, 10, seed);
  EXPECT_TRUE(pw.converge(overlay))
      << overlay << " seed " << seed << ": "
      << check_topology(pw.w, overlay).detail;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OverlayConvergence,
    testing::Combine(testing::Values("linearization", "ring", "clique",
                                     "star", "skiplist"),
                     testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6)));

TEST(OverlayConvergence, LinearizationFromLineIsStable) {
  PlainWorld pw("linearization", 8, 42, "line");
  // Note: the initial "line" topology is by node id, not by key, so this
  // still exercises sorting.
  EXPECT_TRUE(pw.converge("linearization"));
  // Stability: keep running, topology stays converged.
  RandomScheduler sched;
  for (int i = 0; i < 5'000; ++i) (void)pw.w.step(sched);
  EXPECT_TRUE(check_topology(pw.w, "linearization").converged);
}

TEST(OverlayConvergence, RingUntanglesWronglyOrderedCycle) {
  // The stuck state a naive circular-distance rule cannot escape: a
  // symmetric cycle in the wrong key order.
  World w(1);
  std::vector<Ref> refs;
  const std::uint64_t keys[4] = {10, 20, 30, 40};
  for (int i = 0; i < 4; ++i)
    refs.push_back(
        w.spawn<PlainOverlayHost>(Mode::Staying, keys[i], make_overlay("ring")));
  // Cycle order 0-2-1-3 (wrong): symmetric adjacency.
  const int order[4] = {0, 2, 1, 3};
  for (int i = 0; i < 4; ++i) {
    const int a = order[i];
    const int b = order[(i + 1) % 4];
    w.process_as<PlainOverlayHost>(static_cast<ProcessId>(a))
        .overlay_mut()
        .integrate(RefInfo{refs[static_cast<std::size_t>(b)],
                           ModeInfo::Staying, keys[b]});
    w.process_as<PlainOverlayHost>(static_cast<ProcessId>(b))
        .overlay_mut()
        .integrate(RefInfo{refs[static_cast<std::size_t>(a)],
                           ModeInfo::Staying, keys[a]});
  }
  RandomScheduler sched;
  bool ok = false;
  for (int block = 0; block < 200 && !ok; ++block) {
    for (int i = 0; i < 200; ++i) (void)w.step(sched);
    ok = check_topology(w, "ring").converged;
  }
  EXPECT_TRUE(ok) << check_topology(w, "ring").detail;
}

TEST(OverlayConvergence, StarCenterHoldsEveryone) {
  PlainWorld pw("star", 9, 77);
  ASSERT_TRUE(pw.converge("star"));
  // Identify the center (min key) and check degrees explicitly.
  ProcessId center = 0;
  for (ProcessId p = 1; p < pw.w.size(); ++p)
    if (pw.w.process(p).key() < pw.w.process(center).key()) center = p;
  const auto& host =
      dynamic_cast<const OverlayHost&>(pw.w.process(center));
  EXPECT_EQ(host.hosted_overlay().stored().size(), pw.w.size() - 1);
}

TEST(OverlayConvergence, CliqueIsFast) {
  PlainWorld pw("clique", 8, 5);
  EXPECT_TRUE(pw.converge("clique", /*max_blocks=*/40));
}

TEST(Overlays, AllActionsPassThePrimitiveAudit) {
  for (const char* overlay : {"linearization", "ring", "clique", "star", "skiplist"}) {
    PlainWorld pw(overlay, 8, 9);
    PrimitiveAuditor audit;
    pw.w.add_observer(&audit);
    RandomScheduler sched;
    for (int i = 0; i < 20'000; ++i) (void)pw.w.step(sched);
    EXPECT_TRUE(audit.ok())
        << overlay << ": "
        << (audit.violations().empty() ? "" : audit.violations().front());
  }
}

TEST(Overlays, MakeOverlayDispatch) {
  for (const char* name : {"linearization", "ring", "clique", "star", "skiplist"}) {
    auto o = make_overlay(name);
    ASSERT_NE(o, nullptr);
    EXPECT_STREQ(o->name(), name);
  }
}

TEST(OverlaysDeath, UnknownNameAborts) {
  EXPECT_DEATH((void)make_overlay("torus"), "unknown overlay");
}

TEST(Overlays, StorageInterface) {
  auto o = make_overlay("linearization");
  o->bind(Ref::make(0), 100);
  EXPECT_TRUE(o->empty());
  o->integrate(RefInfo{Ref::make(1), ModeInfo::Staying, 50});
  o->integrate(RefInfo{Ref::make(2), ModeInfo::Staying, 150});
  EXPECT_EQ(o->stored().size(), 2u);
  o->update_mode(Ref::make(1), ModeInfo::Leaving);
  bool found = false;
  for (const RefInfo& r : o->stored())
    if (r.ref == Ref::make(1)) found = r.mode == ModeInfo::Leaving;
  EXPECT_TRUE(found);
  EXPECT_TRUE(o->remove(Ref::make(1)));
  EXPECT_FALSE(o->remove(Ref::make(1)));
  const auto all = o->take_all();
  EXPECT_EQ(all.size(), 1u);
  EXPECT_TRUE(o->empty());
}

TEST(Overlays, RingWrapSlotParticipatesInStorage) {
  auto o = make_overlay("ring");
  o->bind(Ref::make(0), 100);  // we are (say) the minimum
  // Deliver a wrap reference for a max candidate via the message path.
  struct NullCtx final : OverlayCtx {
    Ref self_v;
    std::uint64_t key_v;
    [[nodiscard]] Ref self() const override { return self_v; }
    [[nodiscard]] std::uint64_t self_key() const override { return key_v; }
    [[nodiscard]] RefInfo self_info() const override {
      return RefInfo{self_v, ModeInfo::Staying, key_v};
    }
    void send_overlay(Ref, std::uint32_t, std::vector<RefInfo>,
                      std::uint64_t) override {}
  } ctx;
  ctx.self_v = Ref::make(0);
  ctx.key_v = 100;
  o->on_overlay_message(ctx, kTagWrap,
                        {RefInfo{Ref::make(5), ModeInfo::Staying, 900}});
  EXPECT_EQ(o->stored().size(), 1u);
  EXPECT_TRUE(o->remove(Ref::make(5)));
  EXPECT_TRUE(o->empty());
}

}  // namespace
}  // namespace fdp
