#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace fdp {
namespace {

TEST(UnionFind, BasicMerging) {
  UnionFind uf(4);
  EXPECT_EQ(uf.component_count(), 4u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.component_count(), 2u);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_EQ(uf.component_count(), 1u);
}

TEST(Connectivity, WeakComponentsIgnoreDirection) {
  DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 1);  // 0->1<-2 weakly connects {0,1,2}
  const Components c = weak_components(g);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[1], c.label[2]);
  EXPECT_NE(c.label[3], c.label[0]);
}

TEST(Connectivity, InducedComponentsExcludeNodes) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<bool> inc{true, false, true};
  const Components c = weak_components_induced(g, inc);
  EXPECT_EQ(c.count, 2u);  // 0 and 2 separated once 1 is excluded
  EXPECT_EQ(c.label[1], kNoComponent);
  EXPECT_NE(c.label[0], c.label[2]);
}

TEST(Connectivity, IsWeaklyConnectedTrivialCases) {
  EXPECT_TRUE(is_weakly_connected(DiGraph(0)));
  EXPECT_TRUE(is_weakly_connected(DiGraph(1)));
  EXPECT_FALSE(is_weakly_connected(DiGraph(2)));
}

TEST(Connectivity, ReachableFromFollowsDirection) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto r = reachable_from(g, 0);
  EXPECT_TRUE(r[0] && r[1] && r[2]);
  const auto r2 = reachable_from(g, 2);
  EXPECT_TRUE(r2[2]);
  EXPECT_FALSE(r2[0]);
}

TEST(Connectivity, StronglyConnectedCycle) {
  DiGraph cyc(3);
  cyc.add_edge(0, 1);
  cyc.add_edge(1, 2);
  cyc.add_edge(2, 0);
  EXPECT_TRUE(is_strongly_connected(cyc));
  DiGraph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  EXPECT_FALSE(is_strongly_connected(path));
}

TEST(Connectivity, BidirectedOfConnectedIsStronglyConnected) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const DiGraph g = gen::random_weakly_connected(12, 6, 0.3, rng);
    ASSERT_TRUE(is_weakly_connected(g));
    EXPECT_TRUE(is_strongly_connected(g.bidirected()));
  }
}

TEST(Connectivity, ShortestPathEndpointsInclusive) {
  DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  const auto p = shortest_path(g, 0, 3);
  EXPECT_EQ(p, (std::vector<NodeId>{0, 3}));
  const auto p2 = shortest_path(g, 0, 2);
  EXPECT_EQ(p2, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Connectivity, ShortestPathUnreachableIsEmpty) {
  DiGraph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(shortest_path(g, 1, 0).empty());
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
}

TEST(Connectivity, ShortestPathToSelf) {
  DiGraph g(2);
  g.add_edge(0, 1);
  const auto p = shortest_path(g, 0, 0);
  EXPECT_EQ(p, (std::vector<NodeId>{0}));
}

}  // namespace
}  // namespace fdp
