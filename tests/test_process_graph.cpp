#include "graph/process_graph.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "test_support.hpp"

namespace fdp {
namespace {

using testsupport::ScriptedProcess;
using testsupport::spawn_scripted;

TEST(Snapshot, ExplicitEdgesFromStoredRefs) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  const Snapshot s = take_snapshot(w);
  const DiGraph g = s.graph();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Snapshot, ImplicitEdgesFromChannelMessages) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  // A message to p0 carrying p2's reference: implicit edge (0,2).
  w.post(refs[0], Message::present(RefInfo{refs[2], ModeInfo::Staying, 0}));
  const Snapshot s = take_snapshot(w);
  EXPECT_TRUE(s.graph().has_edge(0, 2));
  EXPECT_EQ(s.in_flight[0].size(), 1u);
}

TEST(Snapshot, SelfLoopsExcludedFromGraph) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.post(refs[0], Message::present(RefInfo{refs[0], ModeInfo::Staying, 0}));
  const Snapshot s = take_snapshot(w);
  EXPECT_EQ(s.graph().edge_count(), 0u);
}

TEST(Snapshot, InducedGraphDropsExcludedEndpoints) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  w.process_as<ScriptedProcess>(1).nbrs().insert(
      {refs[2], ModeInfo::Staying, 0});
  std::vector<bool> inc{true, true, false};
  const DiGraph g = take_snapshot(w).graph_induced(inc);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(Snapshot, HibernatingRequiresQuietAncestors) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  // 0 (awake) -> 1 (asleep, empty channel): 1 is NOT hibernating.
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  w.force_life(1, LifeState::Asleep);
  w.force_life(2, LifeState::Asleep);
  const Snapshot s = take_snapshot(w);
  const auto hib = s.hibernating();
  EXPECT_FALSE(hib[0]);  // awake
  EXPECT_FALSE(hib[1]);  // awake ancestor 0
  EXPECT_TRUE(hib[2]);   // asleep, empty channel, no ancestors
}

TEST(Snapshot, HibernationBlockedByPendingMessage) {
  World w(1);
  const auto refs = spawn_scripted(w, 1);
  w.force_life(0, LifeState::Asleep);
  w.post(refs[0], Message{});
  const auto hib = take_snapshot(w).hibernating();
  EXPECT_FALSE(hib[0]);
}

TEST(Snapshot, HibernationChainOfSleepers) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  // 0 -> 1 -> 2, all asleep with empty channels: all hibernate.
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  w.process_as<ScriptedProcess>(1).nbrs().insert(
      {refs[2], ModeInfo::Staying, 0});
  for (ProcessId p = 0; p < 3; ++p) w.force_life(p, LifeState::Asleep);
  const auto hib = take_snapshot(w).hibernating();
  EXPECT_TRUE(hib[0] && hib[1] && hib[2]);
}

TEST(Snapshot, GoneAncestorDoesNotBlockHibernation) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  w.force_life(0, LifeState::Gone);  // gone processes are inert
  w.force_life(1, LifeState::Asleep);
  const auto hib = take_snapshot(w).hibernating();
  EXPECT_TRUE(hib[1]);
}

TEST(Snapshot, RelevantExcludesGoneAndHibernating) {
  World w(1);
  spawn_scripted(w, 3);
  w.force_life(0, LifeState::Gone);
  w.force_life(1, LifeState::Asleep);
  const auto rel = take_snapshot(w).relevant();
  EXPECT_FALSE(rel[0]);
  EXPECT_FALSE(rel[1]);  // hibernating (no ancestors, empty channel)
  EXPECT_TRUE(rel[2]);
}

TEST(Snapshot, IncidentRelevantCountsBothDirectionsOnce) {
  World w(1);
  const auto refs = spawn_scripted(w, 4);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.nbrs().insert({refs[1], ModeInfo::Staying, 0});
  // 1 also stores 0 (mutual edge counts once) and a message to 0 carries
  // 2's ref (edge 0->2).
  w.process_as<ScriptedProcess>(1).nbrs().insert(
      {refs[0], ModeInfo::Staying, 0});
  w.post(refs[0], Message::present(RefInfo{refs[2], ModeInfo::Staying, 0}));
  const Snapshot s = take_snapshot(w);
  EXPECT_EQ(s.incident_relevant(0), 2u);  // {1, 2}
  EXPECT_EQ(s.incident_relevant(3), 0u);
}

TEST(Snapshot, ReferencedAnywhereChecksStoredAndInFlight) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  const Snapshot s0 = take_snapshot(w);
  EXPECT_FALSE(s0.referenced_anywhere(1));
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  EXPECT_TRUE(take_snapshot(w).referenced_anywhere(1));
  w.process_as<ScriptedProcess>(0).nbrs().erase(refs[1]);
  w.post(refs[2], Message::present(RefInfo{refs[1], ModeInfo::Staying, 0}));
  EXPECT_TRUE(take_snapshot(w).referenced_anywhere(1));
}

TEST(Snapshot, ReferencedAnywhereIgnoresGoneHolders) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  w.force_life(0, LifeState::Gone);
  EXPECT_FALSE(take_snapshot(w).referenced_anywhere(1));
}

}  // namespace
}  // namespace fdp
