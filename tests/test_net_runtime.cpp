// Live-runtime tests: deterministic loopback (MemTransport) churn, real
// UDP smoke, served lookups via the workload generator, malformed-frame
// tolerance, and the monitor socket (including serving while a client
// thread reads — the TSan job runs this file).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "analysis/scenario.hpp"
#include "analysis/monitors.hpp"
#include "analysis/workload.hpp"
#include "net/live_scenario.hpp"
#include "net/runtime.hpp"
#include "net/wire.hpp"
#include "overlay/topology_checks.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace fdp::net {
namespace {

ScenarioConfig churn_config(std::uint64_t seed, std::size_t n = 12) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.25;
  cfg.invalid_mode_prob = 0.2;
  cfg.seed = seed;
  return cfg;
}

bool run_to_departures(LiveScenario& sc, std::uint64_t max_pumps = 20'000,
                       int timeout_ms = 0) {
  return sc.net->run_until(
      [](const NetRuntime& rt) { return all_leaving_gone(rt); }, max_pumps,
      timeout_ms);
}

TEST(NetRuntime, MemChurnCompletesDepartures) {
  LiveScenario sc = build_live_framework_scenario(
      churn_config(3), "linearization", std::make_unique<MemTransport>());
  SafetyMonitor safety(*sc.net);
  sc.net->add_observer(&safety);
  ASSERT_TRUE(run_to_departures(sc));
  EXPECT_EQ(sc.net->exits(), sc.leaving_count);
  EXPECT_TRUE(safety.ok()) << safety.violations().size()
                           << " safety violations";
  EXPECT_EQ(sc.net->wire_errors(), 0u);
}

TEST(NetRuntime, MemRunsAreDeterministic) {
  const auto run = [](std::uint64_t seed) {
    LiveScenario sc = build_live_framework_scenario(
        churn_config(seed), "linearization", std::make_unique<MemTransport>());
    EXPECT_TRUE(run_to_departures(sc));
    // Fingerprint: clock, counters and every process's stored refs.
    std::string fp = std::to_string(sc.net->clock()) + "/" +
                     std::to_string(sc.net->sends()) + "/" +
                     std::to_string(sc.net->exits());
    std::vector<RefInfo> refs;
    for (ProcessId p = 0; p < sc.net->size(); ++p) {
      refs.clear();
      sc.net->process(p).collect_refs(refs);
      fp += "|";
      for (const RefInfo& r : refs)
        fp += std::to_string(r.ref.id()) + "," +
              std::to_string(static_cast<int>(r.mode)) + ";";
    }
    return fp;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // and the seed actually matters
}

TEST(NetRuntime, MemStayersConvergeToOverlayTopology) {
  LiveScenario sc = build_live_framework_scenario(
      churn_config(11), "linearization", std::make_unique<MemTransport>());
  ASSERT_TRUE(run_to_departures(sc));
  bool converged = false;
  std::string detail;
  for (int block = 0; block < 400 && !converged; ++block) {
    sc.net->pump(0);
    const TopologyVerdict v = check_topology(*sc.net, "linearization");
    converged = v.converged;
    detail = v.detail;
  }
  EXPECT_TRUE(converged) << detail;
}

TEST(NetRuntime, ServedLookupsResolveDuringChurn) {
  LiveScenario sc = build_live_framework_scenario(
      churn_config(7, 16), "linearization", std::make_unique<MemTransport>());
  WorkloadConfig wcfg;
  wcfg.total = 40;
  wcfg.interval = 2;
  wcfg.absent_prob = 0.25;
  wcfg.seed = 7;
  LookupWorkload workload(sc.refs, [&] {
    std::vector<std::uint64_t> keys;
    for (ProcessId p = 0; p < sc.net->size(); ++p)
      keys.push_back(sc.net->process(p).key());
    return keys;
  }(), sc.leaving, wcfg);
  sc.net->add_observer(&workload);
  for (int i = 0; i < 20'000; ++i) {
    workload.pump(*sc.net);
    sc.net->pump(0);
    if (workload.all_resolved() && all_leaving_gone(*sc.net)) break;
  }
  const WorkloadReport r = workload.report();
  EXPECT_EQ(r.issued, 40u);
  // Deterministic loopback loses nothing: every lookup must resolve.
  EXPECT_EQ(r.resolved, r.issued);
  EXPECT_GT(r.hits, 0u);
  EXPECT_GE(r.p95_clock, r.p50_clock);
}

TEST(NetRuntime, UdpChurnSmoke) {
  LiveScenario sc = build_live_framework_scenario(
      churn_config(9, 8), "linearization", std::make_unique<UdpTransport>());
  SafetyMonitor safety(*sc.net);
  sc.net->add_observer(&safety);
  // Real sockets: block briefly in poll so the loop is not a busy spin.
  ASSERT_TRUE(run_to_departures(sc, 50'000, 1));
  EXPECT_EQ(sc.net->exits(), sc.leaving_count);
  EXPECT_TRUE(safety.ok());
  EXPECT_EQ(sc.net->wire_errors(), 0u);
}

#if defined(__unix__) || defined(__APPLE__)

/// Minimal loopback TCP client: connect, read everything, return it.
/// A receive timeout bounds the read in case the server stops pumping
/// (accept/serve happen inside pump(), so an unpumped runtime never
/// answers a connection the kernel already queued on the backlog).
std::string slurp_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  timeval tv{};
  tv.tv_usec = 200 * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  std::string out;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
      0) {
    char buf[4096];
    for (;;) {
      const ssize_t r = ::read(fd, buf, sizeof buf);
      if (r <= 0) break;
      out.append(buf, static_cast<std::size_t>(r));
    }
  }
  ::close(fd);
  return out;
}

/// Read one monitor document while keeping the runtime pumping on this
/// thread until the client thread is done — the serving itself happens
/// inside pump(), so the pump loop must outlive the read.
std::string slurp_while_pumping(NetRuntime& rt) {
  std::string out;
  std::atomic<bool> done{false};
  std::thread client([&] {
    for (int i = 0; i < 20 && out.empty(); ++i)
      out = slurp_tcp(rt.monitor_port());
    done.store(true);
  });
  for (int i = 0; i < 200'000 && !done.load(); ++i) rt.pump(0);
  client.join();
  return out;
}

TEST(NetRuntime, MonitorSocketServesLiveJson) {
  NetConfig rcfg;
  rcfg.monitor = true;
  LiveScenario sc =
      build_live_framework_scenario(churn_config(13, 8), "linearization",
                                    std::make_unique<MemTransport>(), rcfg);
  ASSERT_NE(sc.net->monitor_port(), 0);

  // A client thread polls the monitor while the main thread pumps — the
  // arrangement the TSan job checks (serving happens inside pump(), so
  // the JSON snapshot itself is built on the pumping thread).
  const std::string seen = slurp_while_pumping(*sc.net);

  ASSERT_FALSE(seen.empty()) << "monitor socket never answered";
  EXPECT_NE(seen.find("\"substrate\":\"net/mem\""), std::string::npos) << seen;
  EXPECT_NE(seen.find("\"phi\":"), std::string::npos);
  EXPECT_NE(seen.find("\"processes\":["), std::string::npos);
  EXPECT_NE(seen.find("\"channel\":"), std::string::npos);

  // Drive the churn to completion, then a fresh connection must see the
  // final state (served by a fresh pump loop — the monitor lives as long
  // as something pumps).
  ASSERT_TRUE(run_to_departures(sc));
  const std::string after = slurp_while_pumping(*sc.net);
  EXPECT_NE(after.find("\"gone\""), std::string::npos) << after;
}

TEST(NetRuntime, GarbageDatagramsCountedNotFatal) {
  auto transport = std::make_unique<UdpTransport>();
  UdpTransport* udp = transport.get();
  LiveScenario sc = build_live_framework_scenario(
      churn_config(15, 4), "linearization", std::move(transport));

  // Fire junk straight at actor 0's bound port from a throwaway socket.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(udp->port(0));
  const char junk[] = "definitely not an FDP1 frame";
  for (int i = 0; i < 5; ++i)
    (void)::sendto(fd, junk, sizeof junk, 0,
                   reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  ::close(fd);

  for (int i = 0; i < 2'000; ++i) {
    sc.net->pump(1);
    if (sc.net->wire_errors() >= 5) break;
  }
  EXPECT_GE(sc.net->wire_errors(), 5u);
  // The protocol keeps running regardless.
  ASSERT_TRUE(run_to_departures(sc, 50'000, 1));
}

#endif  // sockets

}  // namespace
}  // namespace fdp::net
